package wehey

import (
	"math/rand"
	"testing"
	"time"

	"github.com/nal-epfl/wehey/internal/core"
)

// TestLocalizeOverTestbed drives the complete localization through real
// UDP sockets: WeHe detection, simultaneous replays through a shared
// middlebox TBF, and the throughput comparison — the per-client signature
// end to end on the real network stack.
func TestLocalizeOverTestbed(t *testing.T) {
	if testing.Short() {
		t.Skip("tens of seconds of real-time replay")
	}
	rng := rand.New(rand.NewSource(21))
	l := testLocalizer(rng)
	tdiff := l.TDiff("", "netflix", "carrier-1")

	session, err := NewTestbedSession(TestbedConfig{
		Rate:     3e6,
		Duration: 4 * time.Second,
		Seed:     21,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := l.Localize(session, tdiff)
	if err != nil {
		t.Fatal(err)
	}
	if !v.WeHeDetected {
		t.Fatal("WeHe missed real-socket differentiation")
	}
	if !v.Confirmed {
		t.Fatal("differentiation not confirmed on both real-socket paths")
	}
	if !v.LocalizedToISP {
		t.Fatalf("not localized over the testbed: %s", v)
	}
	if v.Evidence != core.EvidencePerClient {
		t.Errorf("evidence = %v, want per-client", v.Evidence)
	}
}

func TestNewTestbedSessionValidation(t *testing.T) {
	if _, err := NewTestbedSession(TestbedConfig{App: "myspace"}); err == nil {
		t.Error("unknown app accepted")
	}
	s, err := NewTestbedSession(TestbedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.App != "netflix" || s.cfg.Rate != 3e6 {
		t.Errorf("defaults not applied: %+v", s.cfg)
	}
}
