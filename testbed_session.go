package wehey

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/nal-epfl/wehey/internal/testbed"
	"github.com/nal-epfl/wehey/internal/trace"
)

// TestbedConfig parameterizes a TestbedSession — a ReplaySession that
// performs every replay over real UDP sockets through an in-process
// differentiating middlebox (the loopback stand-in for the paper's
// wide-area testbed, §6.2).
type TestbedConfig struct {
	// App selects the trace (default "netflix"); the middlebox's DPI
	// throttles this app's SNI.
	App string
	// Rate is the middlebox's per-client throttling rate in bits/s
	// (default 3 Mbit/s).
	Rate float64
	// Delay is the middlebox's one-way propagation delay (default 10 ms).
	Delay time.Duration
	// Duration of each replay (default 5 s; keep short — this is real
	// wall-clock time).
	Duration time.Duration
	// Seed drives trace generation.
	Seed int64
}

func (c *TestbedConfig) fill() {
	if c.App == "" {
		c.App = "netflix"
	}
	if c.Rate <= 0 {
		c.Rate = 3e6
	}
	if c.Delay <= 0 {
		c.Delay = 10 * time.Millisecond
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
}

// TestbedSession runs localization replays over real sockets. Each replay
// gets a fresh middlebox with identical configuration (sequential replays
// in the real system traverse the same device; a fresh instance resets
// bucket state exactly like an idle period would).
type TestbedSession struct {
	cfg    TestbedConfig
	orig   *trace.Trace
	inv    *trace.Trace
	connID uint32
	mu     sync.Mutex
}

// NewTestbedSession creates the session.
func NewTestbedSession(cfg TestbedConfig) (*TestbedSession, error) {
	cfg.fill()
	tr, err := trace.Generate(cfg.App, rand.New(rand.NewSource(cfg.Seed)), cfg.Duration+time.Second)
	if err != nil {
		return nil, fmt.Errorf("wehey: testbed session: %w", err)
	}
	return &TestbedSession{cfg: cfg, orig: tr, inv: trace.BitInvert(tr)}, nil
}

func (s *TestbedSession) middlebox() *testbed.Middlebox {
	return testbed.NewMiddlebox(testbed.MiddleboxConfig{
		Delay: s.cfg.Delay,
		SNIs:  testbed.SNIsForApps(s.cfg.App),
		Rate:  s.cfg.Rate,
		Burst: int(s.cfg.Rate / 8 * (2 * s.cfg.Delay).Seconds()),
	})
}

func (s *TestbedSession) nextConn() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.connID++
	return s.connID
}

func (s *TestbedSession) pick(original bool) *trace.Trace {
	if original {
		return s.orig
	}
	return s.inv
}

// SingleReplay implements ReplaySession over real sockets.
func (s *TestbedSession) SingleReplay(original bool) (PathReplay, error) {
	mb := s.middlebox()
	defer mb.Close()
	res, err := testbed.RunReliableReplay(context.Background(), mb, "p0",
		s.pick(original), s.cfg.Duration, s.nextConn())
	if err != nil {
		return PathReplay{}, err
	}
	m := res.Measurements
	return PathReplay{Throughput: res.Throughput, Measurements: &m}, nil
}

// SimultaneousReplay implements ReplaySession: both replays run truly
// concurrently through one shared middlebox (the per-client bottleneck).
func (s *TestbedSession) SimultaneousReplay(original bool) ([2]PathReplay, error) {
	mb := s.middlebox()
	defer mb.Close()
	tr := s.pick(original)

	var wg sync.WaitGroup
	var out [2]PathReplay
	errs := [2]error{}
	for i := 0; i < 2; i++ {
		i := i
		name := fmt.Sprintf("p%d", i+1)
		id := s.nextConn()
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := testbed.RunReliableReplay(context.Background(), mb, name, tr, s.cfg.Duration, id)
			if err != nil {
				errs[i] = err
				return
			}
			m := res.Measurements
			out[i] = PathReplay{Throughput: res.Throughput, Measurements: &m}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

var _ ReplaySession = (*TestbedSession)(nil)
