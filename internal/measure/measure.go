// Package measure defines the transport-agnostic measurement records that
// flow from the measurement substrates (the netsim simulator, the loopback
// testbed, or recorded files) into the detection algorithms of
// internal/core and the tomography baselines of internal/tomo.
package measure

import (
	"errors"
	"time"
)

// Path holds the packet-loss measurements M collected along one path
// during a replay (§3.4): the times data packets were transmitted and the
// times loss events were *registered* by whoever measures them (the client
// for UDP, the server — via retransmissions — for TCP). Registration times
// lag and jitter relative to the actual drops; the detection algorithms are
// designed around that noise.
type Path struct {
	// RTT is the path's base round-trip time (used to size the interval
	// sweep of Alg. 1).
	RTT time.Duration
	// Duration is the replay duration covered by the logs.
	Duration time.Duration
	// Tx are the transmission times of data packets (including TCP
	// retransmissions), relative to replay start.
	Tx []time.Duration
	// Loss are the registration times of loss events, relative to replay
	// start.
	Loss []time.Duration
}

// Validate checks structural sanity of the record.
func (p *Path) Validate() error {
	if p.Duration <= 0 {
		return errors.New("measure: non-positive duration")
	}
	if p.RTT <= 0 {
		return errors.New("measure: non-positive RTT")
	}
	if len(p.Loss) > len(p.Tx) {
		return errors.New("measure: more losses than transmissions")
	}
	return nil
}

// LossRate returns the overall loss fraction of the path.
func (p *Path) LossRate() float64 {
	if len(p.Tx) == 0 {
		return 0
	}
	return float64(len(p.Loss)) / float64(len(p.Tx))
}

// Series is a pair of per-interval counters for one path.
type Series struct {
	Txed []int // packets transmitted per interval
	Lost []int // loss events registered per interval
}

// Bin divides [0, dur) into intervals of size sigma and counts p's
// transmissions and losses per interval. Events beyond dur fall into the
// last interval.
func (p *Path) Bin(sigma, dur time.Duration) Series {
	n := int(dur / sigma)
	if n < 1 {
		n = 1
	}
	s := Series{Txed: make([]int, n), Lost: make([]int, n)}
	idx := func(t time.Duration) int {
		i := int(t / sigma)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return i
	}
	for _, t := range p.Tx {
		s.Txed[idx(t)]++
	}
	for _, t := range p.Loss {
		s.Lost[idx(t)]++
	}
	return s
}

// Throughput holds per-interval throughput samples (bits/s) for one replay.
type Throughput struct {
	Interval time.Duration
	Samples  []float64
}

// Mean returns the mean of the samples, or 0 when empty.
func (t Throughput) Mean() float64 {
	if len(t.Samples) == 0 {
		return 0
	}
	var s float64
	for _, v := range t.Samples {
		s += v
	}
	return s / float64(len(t.Samples))
}

// Delivery is one data arrival at the measuring endpoint.
type Delivery struct {
	At    time.Duration
	Bytes int
}

// BinThroughput converts arrival events in [start, start+dur) into
// per-interval throughput samples (bits/s) with the given interval.
//
// Only complete intervals are sampled: when dur is not a whole multiple of
// interval, arrivals in the partial tail [n·interval, dur) are ignored.
// (They used to be clamped into bin n−1, which inflated that throughput
// sample by up to the tail's share — every sample must cover exactly one
// interval for the per-interval rates to be comparable.)
func BinThroughput(events []Delivery, start, dur, interval time.Duration) Throughput {
	n := int(dur / interval)
	if n < 1 {
		n = 1
	}
	covered := time.Duration(n) * interval
	if covered > dur {
		covered = dur // single-bin fallback when interval > dur
	}
	bytes := make([]int64, n)
	for _, e := range events {
		t := e.At - start
		if t < 0 || t >= covered {
			continue
		}
		idx := int(t / interval)
		if idx >= n { // interval > dur: the single bin covers [0, dur)
			idx = n - 1
		}
		bytes[idx] += int64(e.Bytes)
	}
	out := Throughput{Interval: interval, Samples: make([]float64, n)}
	sec := interval.Seconds()
	for i, b := range bytes {
		out.Samples[i] = float64(b) * 8 / sec
	}
	return out
}

// WeHeIntervals is the number of intervals WeHe divides a replay into when
// computing its throughput CDFs (§2.1).
const WeHeIntervals = 100

// WeHeThroughput bins arrivals into the standard 100 WeHe intervals.
func WeHeThroughput(events []Delivery, start, dur time.Duration) Throughput {
	return BinThroughput(events, start, dur, dur/WeHeIntervals)
}

// SumSamples adds two equally-long sample series element-wise (the
// aggregate Y series of §4.1). Series of different lengths are summed over
// the shorter prefix.
func SumSamples(a, b []float64) []float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = a[i] + b[i]
	}
	return out
}
