package measure

import (
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestPathValidateAndLossRate(t *testing.T) {
	p := &Path{RTT: ms(30), Duration: time.Second,
		Tx:   []time.Duration{0, ms(100), ms(200), ms(300)},
		Loss: []time.Duration{ms(150)}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.LossRate(); got != 0.25 {
		t.Errorf("LossRate = %v", got)
	}
	bad := &Path{RTT: ms(30), Duration: time.Second, Tx: []time.Duration{0}, Loss: []time.Duration{0, ms(1)}}
	if err := bad.Validate(); err == nil {
		t.Error("more losses than tx accepted")
	}
	if err := (&Path{RTT: ms(30)}).Validate(); err == nil {
		t.Error("zero duration accepted")
	}
	if err := (&Path{Duration: time.Second}).Validate(); err == nil {
		t.Error("zero RTT accepted")
	}
	if got := (&Path{}).LossRate(); got != 0 {
		t.Errorf("empty LossRate = %v", got)
	}
}

func TestPathBin(t *testing.T) {
	p := &Path{RTT: ms(10), Duration: time.Second,
		Tx:   []time.Duration{ms(50), ms(150), ms(250), ms(950), ms(2000)},
		Loss: []time.Duration{ms(150), ms(999)},
	}
	s := p.Bin(ms(100), time.Second)
	if len(s.Txed) != 10 {
		t.Fatalf("bins = %d", len(s.Txed))
	}
	if s.Txed[0] != 1 || s.Txed[1] != 1 || s.Txed[2] != 1 {
		t.Errorf("Txed head = %v", s.Txed[:3])
	}
	// The 2000 ms event clamps into the last bin alongside 950 ms.
	if s.Txed[9] != 2 {
		t.Errorf("Txed[9] = %d, want 2 (clamped)", s.Txed[9])
	}
	if s.Lost[1] != 1 || s.Lost[9] != 1 {
		t.Errorf("Lost = %v", s.Lost)
	}
}

func TestBinThroughput(t *testing.T) {
	events := []Delivery{
		{At: ms(10), Bytes: 1000},
		{At: ms(110), Bytes: 2000},
		{At: ms(190), Bytes: 1000},
		{At: ms(999), Bytes: 500},
		{At: ms(1500), Bytes: 9999}, // outside window
	}
	th := BinThroughput(events, 0, time.Second, ms(100))
	if len(th.Samples) != 10 {
		t.Fatalf("samples = %d", len(th.Samples))
	}
	if th.Samples[0] != 1000*8/0.1 {
		t.Errorf("sample 0 = %v", th.Samples[0])
	}
	if th.Samples[1] != 3000*8/0.1 {
		t.Errorf("sample 1 = %v", th.Samples[1])
	}
	if th.Samples[9] != 500*8/0.1 {
		t.Errorf("sample 9 = %v", th.Samples[9])
	}
	// Mean over all bins.
	want := (1000 + 3000 + 500) * 8.0 / 0.1 / 10
	if got := th.Mean(); got != want {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if (Throughput{}).Mean() != 0 {
		t.Error("empty mean")
	}
}

func TestBinThroughputPartialTailIgnored(t *testing.T) {
	// dur = 1.05 s with 100 ms intervals: 10 complete bins plus a 50 ms
	// partial tail. Arrivals in the tail must not be counted — they used to
	// be clamped into bin 9, inflating that sample.
	events := []Delivery{
		{At: ms(950), Bytes: 1000},  // bin 9 proper
		{At: ms(1020), Bytes: 4000}, // partial tail: ignored
		{At: ms(1049), Bytes: 4000}, // partial tail: ignored
	}
	th := BinThroughput(events, 0, ms(1050), ms(100))
	if len(th.Samples) != 10 {
		t.Fatalf("samples = %d, want 10 complete intervals", len(th.Samples))
	}
	if want := 1000 * 8 / 0.1; th.Samples[9] != want {
		t.Errorf("Samples[9] = %v, want %v (tail arrivals must not inflate the last bin)", th.Samples[9], want)
	}
}

func TestBinThroughputIntervalLargerThanDur(t *testing.T) {
	// Degenerate single-bin fallback: interval > dur keeps one bin covering
	// all of [0, dur).
	events := []Delivery{{At: ms(10), Bytes: 100}, {At: ms(90), Bytes: 100}}
	th := BinThroughput(events, 0, ms(100), ms(250))
	if len(th.Samples) != 1 {
		t.Fatalf("samples = %d, want 1", len(th.Samples))
	}
	if want := 200 * 8 / 0.25; th.Samples[0] != want {
		t.Errorf("Samples[0] = %v, want %v", th.Samples[0], want)
	}
}

func TestWeHeThroughputUses100Intervals(t *testing.T) {
	th := WeHeThroughput([]Delivery{{At: ms(500), Bytes: 100}}, 0, 10*time.Second)
	if len(th.Samples) != WeHeIntervals {
		t.Errorf("intervals = %d", len(th.Samples))
	}
}

func TestSumSamples(t *testing.T) {
	got := SumSamples([]float64{1, 2, 3}, []float64{10, 20})
	if len(got) != 2 || got[0] != 11 || got[1] != 22 {
		t.Errorf("SumSamples = %v", got)
	}
}

func TestFilteredLossRates(t *testing.T) {
	// Construct two paths with controlled per-interval counts over 1 s with
	// σ = 100 ms: interval k gets k+10 transmissions on both paths.
	mk := func(lossIvals map[int]int) *Path {
		p := &Path{RTT: ms(10), Duration: time.Second}
		for k := 0; k < 10; k++ {
			for i := 0; i < 20; i++ {
				p.Tx = append(p.Tx, time.Duration(k)*ms(100)+time.Duration(i)*ms(4))
			}
			for i := 0; i < lossIvals[k]; i++ {
				p.Loss = append(p.Loss, time.Duration(k)*ms(100)+ms(50))
			}
		}
		return p
	}
	p1 := mk(map[int]int{0: 2, 3: 4})
	p2 := mk(map[int]int{0: 1, 5: 2})
	r1, r2 := FilteredLossRates(p1, p2, ms(100), 10)
	// Retained intervals: 0 (both lost), 3 (p1 lost), 5 (p2 lost) = 3.
	if len(r1) != 3 || len(r2) != 3 {
		t.Fatalf("retained %d/%d intervals", len(r1), len(r2))
	}
	if r1[0] != 0.1 || r2[0] != 0.05 {
		t.Errorf("interval 0 rates: %v %v", r1[0], r2[0])
	}
	if r1[1] != 0.2 || r2[1] != 0 {
		t.Errorf("interval 3 rates: %v %v", r1[1], r2[1])
	}
}

func TestFilteredLossRatesMinPackets(t *testing.T) {
	// p2 transmits too little everywhere → all intervals discarded.
	p1 := &Path{RTT: ms(10), Duration: time.Second}
	p2 := &Path{RTT: ms(10), Duration: time.Second}
	for i := 0; i < 100; i++ {
		p1.Tx = append(p1.Tx, time.Duration(i)*ms(10))
	}
	p1.Loss = []time.Duration{ms(500)}
	p2.Tx = []time.Duration{ms(100), ms(600)}
	r1, _ := FilteredLossRates(p1, p2, ms(100), 10)
	if len(r1) != 0 {
		t.Errorf("retained %d intervals, want 0", len(r1))
	}
}

func TestIntervalSweep(t *testing.T) {
	got := IntervalSweep(ms(35), 10, 50, 5)
	if len(got) != 9 {
		t.Fatalf("sweep = %v", got)
	}
	if got[0] != 350*time.Millisecond || got[8] != 1750*time.Millisecond {
		t.Errorf("sweep bounds: %v .. %v", got[0], got[8])
	}
	// Defaults kick in for nonsense arguments.
	if def := IntervalSweep(ms(10), 0, 0, 0); len(def) == 0 {
		t.Error("defaults produced empty sweep")
	}
}

func TestMaxRTT(t *testing.T) {
	a := &Path{RTT: ms(35)}
	b := &Path{RTT: ms(120)}
	if MaxRTT(a, b) != ms(120) || MaxRTT(b, a) != ms(120) {
		t.Error("MaxRTT")
	}
}
