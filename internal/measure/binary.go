package measure

// Exact binary codec for measurement values. The JSON Record/Session
// codec in codec.go is the *interchange* format: human-inspectable, but
// it rounds times through float64 milliseconds. The encoders here are the
// *cache* format: every bit of every field round-trips, including float64
// payloads (via their IEEE-754 bit patterns) and nil-vs-empty slice
// distinctions, so a decoded value is indistinguishable from the original
// under reflect.DeepEqual. internal/simcache consumers rely on that
// exactness for their determinism guarantee.
//
// Layout conventions: all integers are little-endian fixed-width;
// float64s travel as math.Float64bits; slices are a presence byte
// (0 = nil, 1 = present) followed by a uint64 length and the elements.
// Decoders consume from the front of the buffer and return the rest, so
// encoders compose by concatenation.

import (
	"encoding/binary"
	"errors"
	"math"
	"time"
)

// ErrTruncated reports a buffer that ended before the value did.
var ErrTruncated = errors.New("measure: truncated binary value")

// AppendUint64 appends v little-endian.
func AppendUint64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// AppendInt64 appends v as its two's-complement bit pattern.
func AppendInt64(b []byte, v int64) []byte {
	return AppendUint64(b, uint64(v))
}

// AppendFloat64 appends v's IEEE-754 bit pattern (exact for every value,
// including negative zero, NaN payloads, and infinities).
func AppendFloat64(b []byte, v float64) []byte {
	return AppendUint64(b, math.Float64bits(v))
}

// AppendDurations appends ds with the presence+length prefix.
func AppendDurations(b []byte, ds []time.Duration) []byte {
	b = appendSliceHeader(b, ds == nil, len(ds))
	for _, d := range ds {
		b = AppendInt64(b, int64(d))
	}
	return b
}

// AppendFloat64s appends xs with the presence+length prefix.
func AppendFloat64s(b []byte, xs []float64) []byte {
	b = appendSliceHeader(b, xs == nil, len(xs))
	for _, v := range xs {
		b = AppendFloat64(b, v)
	}
	return b
}

// AppendString appends s length-prefixed.
func AppendString(b []byte, s string) []byte {
	b = AppendUint64(b, uint64(len(s)))
	return append(b, s...)
}

func appendSliceHeader(b []byte, isNil bool, n int) []byte {
	if isNil {
		return append(b, 0)
	}
	b = append(b, 1)
	return AppendUint64(b, uint64(n))
}

// DecodeUint64 consumes a uint64 from the front of b.
func DecodeUint64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, ErrTruncated
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}

// DecodeInt64 consumes an int64.
func DecodeInt64(b []byte) (int64, []byte, error) {
	v, rest, err := DecodeUint64(b)
	return int64(v), rest, err
}

// DecodeFloat64 consumes a float64 bit pattern.
func DecodeFloat64(b []byte) (float64, []byte, error) {
	v, rest, err := DecodeUint64(b)
	return math.Float64frombits(v), rest, err
}

// decodeSliceHeader consumes the presence byte and length. elemSize
// bounds the length claim against the remaining bytes so a corrupt
// length can't trigger a huge allocation.
func decodeSliceHeader(b []byte, elemSize int) (n int, present bool, rest []byte, err error) {
	if len(b) < 1 {
		return 0, false, nil, ErrTruncated
	}
	switch b[0] {
	case 0:
		return 0, false, b[1:], nil
	case 1:
	default:
		return 0, false, nil, errors.New("measure: invalid slice presence byte")
	}
	v, rest, err := DecodeUint64(b[1:])
	if err != nil {
		return 0, false, nil, err
	}
	if v > uint64(len(rest)/elemSize) {
		return 0, false, nil, ErrTruncated
	}
	return int(v), true, rest, nil
}

// DecodeDurations consumes a duration slice.
func DecodeDurations(b []byte) ([]time.Duration, []byte, error) {
	n, present, rest, err := decodeSliceHeader(b, 8)
	if err != nil || !present {
		return nil, rest, err
	}
	out := make([]time.Duration, n)
	for i := range out {
		var v int64
		if v, rest, err = DecodeInt64(rest); err != nil {
			return nil, nil, err
		}
		out[i] = time.Duration(v)
	}
	return out, rest, nil
}

// DecodeFloat64s consumes a float64 slice.
func DecodeFloat64s(b []byte) ([]float64, []byte, error) {
	n, present, rest, err := decodeSliceHeader(b, 8)
	if err != nil || !present {
		return nil, rest, err
	}
	out := make([]float64, n)
	for i := range out {
		if out[i], rest, err = DecodeFloat64(rest); err != nil {
			return nil, nil, err
		}
	}
	return out, rest, nil
}

// DecodeString consumes a length-prefixed string.
func DecodeString(b []byte) (string, []byte, error) {
	n, rest, err := DecodeUint64(b)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(rest)) {
		return "", nil, ErrTruncated
	}
	return string(rest[:n]), rest[n:], nil
}

// AppendPathBinary appends the exact encoding of p.
func AppendPathBinary(b []byte, p *Path) []byte {
	b = AppendInt64(b, int64(p.RTT))
	b = AppendInt64(b, int64(p.Duration))
	b = AppendDurations(b, p.Tx)
	return AppendDurations(b, p.Loss)
}

// DecodePathBinary consumes a Path written by AppendPathBinary.
func DecodePathBinary(b []byte) (Path, []byte, error) {
	var p Path
	var rtt, dur int64
	var err error
	if rtt, b, err = DecodeInt64(b); err != nil {
		return p, nil, err
	}
	if dur, b, err = DecodeInt64(b); err != nil {
		return p, nil, err
	}
	p.RTT, p.Duration = time.Duration(rtt), time.Duration(dur)
	if p.Tx, b, err = DecodeDurations(b); err != nil {
		return p, nil, err
	}
	if p.Loss, b, err = DecodeDurations(b); err != nil {
		return p, nil, err
	}
	return p, b, nil
}

// AppendThroughputBinary appends the exact encoding of t.
func AppendThroughputBinary(b []byte, t Throughput) []byte {
	b = AppendInt64(b, int64(t.Interval))
	return AppendFloat64s(b, t.Samples)
}

// DecodeThroughputBinary consumes a Throughput written by
// AppendThroughputBinary.
func DecodeThroughputBinary(b []byte) (Throughput, []byte, error) {
	var t Throughput
	iv, b, err := DecodeInt64(b)
	if err != nil {
		return t, nil, err
	}
	t.Interval = time.Duration(iv)
	if t.Samples, b, err = DecodeFloat64s(b); err != nil {
		return t, nil, err
	}
	return t, b, nil
}
