package measure

import "time"

// MinPacketsPerInterval is the default minimum number of transmitted
// packets a path needs in an interval for the interval's loss rate to be
// meaningful (Alg. 1 line 4 uses 10).
const MinPacketsPerInterval = 10

// FilteredLossRates implements the CreateTimeSeries step shared by Alg. 1
// and the tomography baselines (Algs. 2–4): it divides time into intervals
// of size sigma, computes each path's per-interval loss rate, and discards
// intervals where one or both paths transmitted fewer than minPkts packets
// or where neither path lost anything.
//
// The two returned series are aligned: element i of both corresponds to the
// same retained interval.
func FilteredLossRates(m1, m2 *Path, sigma time.Duration, minPkts int) (r1, r2 []float64) {
	if minPkts <= 0 {
		minPkts = MinPacketsPerInterval
	}
	dur := m1.Duration
	if m2.Duration > dur {
		dur = m2.Duration
	}
	s1 := m1.Bin(sigma, dur)
	s2 := m2.Bin(sigma, dur)
	n := len(s1.Txed)
	if len(s2.Txed) < n {
		n = len(s2.Txed)
	}
	for t := 0; t < n; t++ {
		if s1.Txed[t] < minPkts || s2.Txed[t] < minPkts {
			continue
		}
		if s1.Lost[t] == 0 && s2.Lost[t] == 0 {
			continue
		}
		r1 = append(r1, lossRate(s1.Lost[t], s1.Txed[t]))
		r2 = append(r2, lossRate(s2.Lost[t], s2.Txed[t]))
	}
	return r1, r2
}

func lossRate(lost, txed int) float64 {
	if txed == 0 {
		return 0
	}
	r := float64(lost) / float64(txed)
	if r > 1 {
		// Registered losses can exceed transmissions within one interval
		// (registration lags transmission); clamp for sanity.
		r = 1
	}
	return r
}

// IntervalSweep returns the interval sizes Alg. 1 and Alg. 4 iterate over:
// multiples of the larger of the two paths' RTTs, from loRTTs to hiRTTs in
// steps of stepRTTs (the paper uses 10–50 RTTs).
func IntervalSweep(rtt time.Duration, loRTTs, hiRTTs, stepRTTs int) []time.Duration {
	if loRTTs <= 0 {
		loRTTs = 10
	}
	if hiRTTs < loRTTs {
		hiRTTs = loRTTs
	}
	if stepRTTs <= 0 {
		stepRTTs = 5
	}
	var out []time.Duration
	for k := loRTTs; k <= hiRTTs; k += stepRTTs {
		out = append(out, time.Duration(k)*rtt)
	}
	return out
}

// MaxRTT returns the larger of the two paths' RTTs.
func MaxRTT(m1, m2 *Path) time.Duration {
	if m1.RTT > m2.RTT {
		return m1.RTT
	}
	return m2.RTT
}
