package measure

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// Record is the on-disk form of one replay's measurements: what a WeHeY
// server would persist after a simultaneous replay, and what offline
// analysis (cmd/wehey-analyze) consumes.
type Record struct {
	// Path labels which path the record belongs to ("p0", "p1", "p2").
	Path string `json:"path"`
	// RTTMs is the path's base RTT in milliseconds.
	RTTMs float64 `json:"rtt_ms"`
	// DurationMs is the replay duration in milliseconds.
	DurationMs float64 `json:"duration_ms"`
	// TxMs are packet transmission times (ms since replay start).
	TxMs []float64 `json:"tx_ms"`
	// LossMs are loss-event registration times (ms since replay start).
	LossMs []float64 `json:"loss_ms"`
	// ThroughputBps are per-interval throughput samples in bits/s
	// (typically WeHe's 100 intervals).
	ThroughputBps []float64 `json:"throughput_bps,omitempty"`
}

// ToPath converts the record to the in-memory measurement type.
func (r *Record) ToPath() (*Path, error) {
	if r.DurationMs <= 0 || r.RTTMs <= 0 {
		return nil, errors.New("measure: record needs positive rtt_ms and duration_ms")
	}
	p := &Path{
		RTT:      time.Duration(r.RTTMs * float64(time.Millisecond)),
		Duration: time.Duration(r.DurationMs * float64(time.Millisecond)),
	}
	p.Tx = msToDurations(r.TxMs)
	p.Loss = msToDurations(r.LossMs)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// NewRecord builds a record from a measurement path and its throughput
// samples.
func NewRecord(pathName string, p *Path, tput Throughput) *Record {
	return &Record{
		Path:          pathName,
		RTTMs:         float64(p.RTT) / float64(time.Millisecond),
		DurationMs:    float64(p.Duration) / float64(time.Millisecond),
		TxMs:          durationsToMs(p.Tx),
		LossMs:        durationsToMs(p.Loss),
		ThroughputBps: append([]float64(nil), tput.Samples...),
	}
}

func msToDurations(ms []float64) []time.Duration {
	out := make([]time.Duration, len(ms))
	for i, v := range ms {
		out[i] = time.Duration(v * float64(time.Millisecond))
	}
	return out
}

func durationsToMs(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = float64(d) / float64(time.Millisecond)
	}
	return out
}

// Session is a full localization test's worth of records plus the T_diff
// distribution in effect.
type Session struct {
	// Client/App/Carrier identify the test.
	Client  string `json:"client,omitempty"`
	App     string `json:"app,omitempty"`
	Carrier string `json:"carrier,omitempty"`
	// Records holds p0 (single original), p1 and p2 (simultaneous
	// original); the bit-inverted controls may be included with "-inv"
	// suffixed path names.
	Records []*Record `json:"records"`
	// TDiff is the historical throughput-variation distribution.
	TDiff []float64 `json:"tdiff,omitempty"`
}

// Find returns the record with the given path label.
func (s *Session) Find(path string) (*Record, bool) {
	for _, r := range s.Records {
		if r.Path == path {
			return r, true
		}
	}
	return nil, false
}

// WriteSession encodes a session as indented JSON.
func WriteSession(w io.Writer, s *Session) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// ReadSession decodes a session written by WriteSession.
func ReadSession(r io.Reader) (*Session, error) {
	var s Session
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("measure: session: %w", err)
	}
	return &s, nil
}
