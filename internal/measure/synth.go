package measure

import (
	"math/rand"
	"time"
)

// SynthSpec describes a synthetic pair of path measurements with a
// controllable correlation structure. It exists for tests and benchmarks of
// the detection algorithms: a common bottleneck manifests as a shared
// time-varying loss intensity; independent bottlenecks as per-path
// intensities (§4.2-4.3: loss rates at a shared bottleneck "increase and
// decrease together" without being equal).
type SynthSpec struct {
	// Duration of the measurement window (default 45 s).
	Duration time.Duration
	// RTT1, RTT2 are the two paths' RTTs (default 35 ms each).
	RTT1, RTT2 time.Duration
	// PacketRate is each path's transmission rate in packets/s
	// (default 400).
	PacketRate float64
	// BaseLoss is the long-run mean loss probability (default 0.04).
	BaseLoss float64
	// CommonWeight in [0,1] is the fraction of loss intensity driven by
	// the shared process; the rest is per-path independent. 1 = pure
	// common bottleneck, 0 = fully independent bottlenecks.
	CommonWeight float64
	// ModPeriod is the intensity-modulation step (default 250 ms).
	ModPeriod time.Duration
	// RegLagRTTs delays each loss registration by this many path RTTs
	// plus jitter, modelling retransmission-based measurement (default 1).
	RegLagRTTs float64
}

func (s *SynthSpec) fill() {
	if s.Duration <= 0 {
		s.Duration = 45 * time.Second
	}
	if s.RTT1 <= 0 {
		s.RTT1 = 35 * time.Millisecond
	}
	if s.RTT2 <= 0 {
		s.RTT2 = 35 * time.Millisecond
	}
	if s.PacketRate <= 0 {
		s.PacketRate = 400
	}
	if s.BaseLoss <= 0 {
		s.BaseLoss = 0.04
	}
	if s.ModPeriod <= 0 {
		s.ModPeriod = 250 * time.Millisecond
	}
	//lint:ignore floateq exact sentinel: zero means unset, filled with the default
	if s.RegLagRTTs == 0 {
		s.RegLagRTTs = 1
	}
}

// SynthPair generates the two synthetic measurement records.
func SynthPair(rng *rand.Rand, spec SynthSpec) (m1, m2 *Path) {
	spec.fill()
	steps := int(spec.Duration/spec.ModPeriod) + 1

	// Shared and per-path intensity multipliers: mean-reverting random
	// walks around 1, clipped to [0.1, 3].
	walk := func() []float64 {
		out := make([]float64, steps)
		x := 1.0
		for i := range out {
			x += -0.3*(x-1) + rng.NormFloat64()*0.45
			if x < 0.1 {
				x = 0.1
			}
			if x > 3 {
				x = 3
			}
			out[i] = x
		}
		return out
	}
	common := walk()
	ind1 := walk()
	ind2 := walk()

	gen := func(rtt time.Duration, ind []float64) *Path {
		p := &Path{RTT: rtt, Duration: spec.Duration}
		meanGap := time.Duration(float64(time.Second) / spec.PacketRate)
		for t := time.Duration(0); t < spec.Duration; t += jitterExp(rng, meanGap) {
			p.Tx = append(p.Tx, t)
			step := int(t / spec.ModPeriod)
			if step >= steps {
				step = steps - 1
			}
			intensity := spec.CommonWeight*common[step] + (1-spec.CommonWeight)*ind[step]
			if rng.Float64() < spec.BaseLoss*intensity {
				lag := time.Duration(spec.RegLagRTTs * float64(rtt) * (0.8 + 0.4*rng.Float64()))
				reg := t + lag
				if reg > spec.Duration {
					reg = spec.Duration
				}
				p.Loss = append(p.Loss, reg)
			}
		}
		return p
	}
	return gen(spec.RTT1, ind1), gen(spec.RTT2, ind2)
}

func jitterExp(rng *rand.Rand, mean time.Duration) time.Duration {
	d := time.Duration(rng.ExpFloat64() * float64(mean))
	if d <= 0 {
		d = time.Nanosecond
	}
	return d
}
