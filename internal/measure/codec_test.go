package measure

import (
	"bytes"
	"testing"
	"time"
)

func TestRecordRoundTrip(t *testing.T) {
	p := &Path{
		RTT:      35 * time.Millisecond,
		Duration: 45 * time.Second,
		Tx:       []time.Duration{0, 10 * time.Millisecond, 20 * time.Millisecond},
		Loss:     []time.Duration{15 * time.Millisecond},
	}
	tput := Throughput{Samples: []float64{1e6, 2e6}}
	rec := NewRecord("p1", p, tput)
	if rec.RTTMs != 35 || rec.DurationMs != 45000 {
		t.Fatalf("header: %+v", rec)
	}
	back, err := rec.ToPath()
	if err != nil {
		t.Fatal(err)
	}
	if back.RTT != p.RTT || back.Duration != p.Duration {
		t.Error("rtt/duration mismatch")
	}
	if len(back.Tx) != 3 || back.Tx[1] != 10*time.Millisecond {
		t.Errorf("tx: %v", back.Tx)
	}
	if len(back.Loss) != 1 || back.Loss[0] != 15*time.Millisecond {
		t.Errorf("loss: %v", back.Loss)
	}
}

func TestRecordValidation(t *testing.T) {
	bad := &Record{Path: "p1"} // missing rtt/duration
	if _, err := bad.ToPath(); err == nil {
		t.Error("invalid record accepted")
	}
	inconsistent := &Record{Path: "p1", RTTMs: 30, DurationMs: 1000,
		TxMs: []float64{1}, LossMs: []float64{1, 2}}
	if _, err := inconsistent.ToPath(); err == nil {
		t.Error("more losses than tx accepted")
	}
}

func TestSessionRoundTripAndFind(t *testing.T) {
	p := &Path{RTT: 30 * time.Millisecond, Duration: time.Second,
		Tx: []time.Duration{0, time.Millisecond}}
	s := &Session{
		Client: "c", App: "netflix", Carrier: "x",
		TDiff: []float64{0.1, -0.2},
		Records: []*Record{
			NewRecord("p1", p, Throughput{}),
			NewRecord("p2", p, Throughput{}),
		},
	}
	var buf bytes.Buffer
	if err := WriteSession(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSession(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != "netflix" || len(got.Records) != 2 || len(got.TDiff) != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	if _, ok := got.Find("p1"); !ok {
		t.Error("Find(p1) failed")
	}
	if _, ok := got.Find("p9"); ok {
		t.Error("Find(p9) succeeded")
	}
	if _, err := ReadSession(bytes.NewReader([]byte("{"))); err == nil {
		t.Error("garbage session accepted")
	}
}
