package measure

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

func randomPath(rng *rand.Rand) Path {
	p := Path{
		RTT:      time.Duration(rng.Int63n(int64(200 * time.Millisecond))),
		Duration: time.Duration(rng.Int63n(int64(60 * time.Second))),
	}
	// Cover nil, empty-but-non-nil, and populated slices.
	switch rng.Intn(3) {
	case 0: // nil
	case 1:
		p.Tx = []time.Duration{}
	default:
		p.Tx = make([]time.Duration, rng.Intn(200))
		for i := range p.Tx {
			p.Tx[i] = time.Duration(rng.Int63())
		}
	}
	if rng.Intn(2) == 0 {
		p.Loss = make([]time.Duration, rng.Intn(50))
		for i := range p.Loss {
			p.Loss[i] = -time.Duration(rng.Int63()) // negative durations must survive too
		}
	}
	return p
}

func randomThroughput(rng *rand.Rand) Throughput {
	t := Throughput{Interval: time.Duration(rng.Int63())}
	if rng.Intn(4) > 0 {
		t.Samples = make([]float64, rng.Intn(120))
		for i := range t.Samples {
			// Exercise the full float64 bit space, not just round values.
			t.Samples[i] = math.Float64frombits(rng.Uint64())
			if math.IsNaN(t.Samples[i]) {
				t.Samples[i] = rng.NormFloat64() * 1e9
			}
		}
	}
	return t
}

// TestPathBinaryRoundTripProperty: decode(encode(p)) must reproduce p
// exactly, including nil-vs-empty slice identity, across random values.
func TestPathBinaryRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		p := randomPath(rng)
		buf := AppendPathBinary([]byte("prefix"), &p)
		got, rest, err := DecodePathBinary(buf[len("prefix"):])
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if len(rest) != 0 {
			t.Fatalf("trial %d: %d leftover bytes", trial, len(rest))
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("trial %d: round trip mismatch:\n got %#v\nwant %#v", trial, got, p)
		}
	}
}

func TestThroughputBinaryRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		tp := randomThroughput(rng)
		buf := AppendThroughputBinary(nil, tp)
		got, rest, err := DecodeThroughputBinary(buf)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if len(rest) != 0 {
			t.Fatalf("trial %d: %d leftover bytes", trial, len(rest))
		}
		if !reflect.DeepEqual(got, tp) {
			t.Fatalf("trial %d: round trip mismatch:\n got %#v\nwant %#v", trial, got, tp)
		}
	}
}

func TestFloat64BinaryExactBits(t *testing.T) {
	specials := []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1),
		math.MaxFloat64, math.SmallestNonzeroFloat64, 0.1, 1.0 / 3.0}
	buf := AppendFloat64s(nil, specials)
	got, _, err := DecodeFloat64s(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range specials {
		if math.Float64bits(got[i]) != math.Float64bits(want) {
			t.Errorf("value %d: bits %x != %x", i, math.Float64bits(got[i]), math.Float64bits(want))
		}
	}
	// NaN must round-trip by bit pattern (DeepEqual can't check it).
	nan := AppendFloat64(nil, math.NaN())
	v, _, err := DecodeFloat64(nan)
	if err != nil || !math.IsNaN(v) {
		t.Errorf("NaN did not round trip: %v %v", v, err)
	}
}

// TestBinaryDecodeTruncation: every strict prefix of a valid encoding
// must fail with an error — never panic, never succeed with wrong data.
func TestBinaryDecodeTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomPath(rng)
	for len(p.Tx) == 0 { // make sure there is a payload to truncate
		p = randomPath(rng)
	}
	full := AppendPathBinary(nil, &p)
	for cut := 0; cut < len(full); cut++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("cut=%d: decode panicked: %v", cut, r)
				}
			}()
			got, rest, err := DecodePathBinary(full[:cut])
			if err == nil && len(rest) == 0 {
				if !reflect.DeepEqual(got, p) {
					t.Fatalf("cut=%d: truncated decode silently succeeded with wrong data", cut)
				}
			}
		}()
	}
	// A huge length claim must error out instead of allocating.
	evil := AppendInt64(nil, 1)
	evil = AppendInt64(evil, 1)
	evil = append(evil, 1) // present
	evil = AppendUint64(evil, math.MaxUint64)
	if _, _, err := DecodePathBinary(evil); err == nil {
		t.Fatal("oversized length claim decoded without error")
	}
}

func TestStringBinaryRoundTrip(t *testing.T) {
	for _, s := range []string{"", "tcpbulk", "exotic \x00\xff bytes", "日本語"} {
		buf := AppendString(nil, s)
		got, rest, err := DecodeString(buf)
		if err != nil || got != s || len(rest) != 0 {
			t.Errorf("%q: got %q rest=%d err=%v", s, got, len(rest), err)
		}
	}
	if _, _, err := DecodeString(AppendUint64(nil, 99)); err == nil {
		t.Error("string length beyond buffer decoded without error")
	}
}
