// Package simcache is a content-addressed result store for deterministic
// computations: given a stable binary encoding of a computation's full
// input (its "spec") and a schema stamp, it memoizes the result in
// process — with single-flight deduplication, so N concurrent requests
// for one key execute the computation exactly once — and optionally on
// disk, so a later process can skip the computation entirely.
//
// The cache is only sound for *pure* computations: the result must be a
// function of the encoded spec and nothing else. Callers must also treat
// returned values as immutable — the in-process layer hands the same
// value (including any backing slices and maps) to every requester of a
// key.
//
// Invalidation is by key derivation, not by scanning: the schema stamp
// participates in the key hash (KeyOf), so bumping the stamp orphans
// every existing entry — a version mismatch is indistinguishable from a
// miss. Corrupt or truncated disk entries are detected by checksum and
// likewise degrade to a miss (and are deleted), never to a panic or a
// wrong result.
package simcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Key addresses one cached result: the SHA-256 of the schema stamp and
// the canonical binary encoding of the computation's full input.
type Key [sha256.Size]byte

// KeyOf derives the cache key for a spec encoding under a schema stamp.
// The stamp is length-prefixed so (stamp, spec) pairs cannot collide by
// shifting bytes between the two.
func KeyOf(stamp string, spec []byte) Key {
	h := sha256.New()
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(stamp)))
	h.Write(n[:])
	h.Write([]byte(stamp))
	h.Write(spec)
	var k Key
	h.Sum(k[:0])
	return k
}

// String renders the key as lowercase hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Codec round-trips values through the disk layer. Encode must be
// deterministic and Decode(Encode(v)) must reproduce v exactly — a cached
// result has to be indistinguishable from a recomputed one.
type Codec[V any] struct {
	Encode func(V) []byte
	Decode func([]byte) (V, error)
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts in-process hits, including single-flight waiters that
	// blocked on a computation already running.
	Hits int64
	// DiskHits counts results loaded from the disk layer.
	DiskHits int64
	// Misses counts computations actually executed.
	Misses int64
	// Corrupt counts disk entries that were unreadable, truncated,
	// checksum-mismatched, or undecodable; each was treated as a miss.
	Corrupt int64
	// BytesRead and BytesWritten count disk-layer payload traffic.
	BytesRead    int64
	BytesWritten int64
	// WriteErrors counts failed disk writes (non-fatal: the result is
	// still returned, it just isn't persisted).
	WriteErrors int64
}

// Requests returns the total number of Get calls accounted for.
func (s Stats) Requests() int64 { return s.Hits + s.DiskHits + s.Misses }

// HitRate returns the fraction of requests served without computing.
func (s Stats) HitRate() float64 {
	if s.Requests() == 0 {
		return 0
	}
	return float64(s.Hits+s.DiskHits) / float64(s.Requests())
}

// String renders the counters in the stable `k=v` form the CI gate and
// the cmds grep for.
func (s Stats) String() string {
	return fmt.Sprintf("hits=%d disk-hits=%d misses=%d corrupt=%d read=%dB written=%dB write-errors=%d hit-rate=%.1f%%",
		s.Hits, s.DiskHits, s.Misses, s.Corrupt, s.BytesRead, s.BytesWritten, s.WriteErrors, 100*s.HitRate())
}

// Cache is a content-addressed memoization table for one value type.
// The zero value is not usable; construct with New or NewDisk.
type Cache[V any] struct {
	dir   string // "" = memory only
	codec Codec[V]

	mu      sync.Mutex
	flights map[Key]*flight[V]

	hits, diskHits, misses, corrupt  atomic.Int64
	bytesRead, bytesWritten, wErrors atomic.Int64
}

// flight is one key's computation: the first requester (the leader)
// computes and publishes val, everyone else blocks on done. A flight
// doubles as the memoized entry once done is closed.
type flight[V any] struct {
	done   chan struct{}
	val    V
	failed bool // the leader panicked; waiters must re-request
}

// New returns a memory-only cache.
func New[V any]() *Cache[V] {
	return &Cache[V]{flights: make(map[Key]*flight[V])}
}

// NewDisk returns a cache persisting entries under dir (created if
// missing) using codec for the round-trip.
func NewDisk[V any](dir string, codec Codec[V]) (*Cache[V], error) {
	if dir == "" {
		return nil, fmt.Errorf("simcache: empty cache directory")
	}
	if codec.Encode == nil || codec.Decode == nil {
		return nil, fmt.Errorf("simcache: disk cache needs a complete codec")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("simcache: %w", err)
	}
	c := New[V]()
	c.dir = dir
	c.codec = codec
	return c, nil
}

// Stats snapshots the counters.
func (c *Cache[V]) Stats() Stats {
	return Stats{
		Hits:         c.hits.Load(),
		DiskHits:     c.diskHits.Load(),
		Misses:       c.misses.Load(),
		Corrupt:      c.corrupt.Load(),
		BytesRead:    c.bytesRead.Load(),
		BytesWritten: c.bytesWritten.Load(),
		WriteErrors:  c.wErrors.Load(),
	}
}

// Get returns the value for key, computing it at most once per process
// (and at most once ever, with a disk layer): concurrent requests for the
// same key block until the single leader finishes. compute must be pure
// with respect to key.
func (c *Cache[V]) Get(key Key, compute func() V) V {
	for {
		c.mu.Lock()
		if f, ok := c.flights[key]; ok {
			c.mu.Unlock()
			<-f.done
			if !f.failed {
				c.hits.Add(1)
				return f.val
			}
			continue // leader panicked: race to become the new leader
		}
		f := &flight[V]{done: make(chan struct{})}
		c.flights[key] = f
		c.mu.Unlock()
		return c.lead(key, f, compute)
	}
}

// lead runs the leader side of one flight: disk probe, compute, publish.
func (c *Cache[V]) lead(key Key, f *flight[V], compute func() V) V {
	completed := false
	defer func() {
		if completed {
			return
		}
		// compute panicked. Unpublish the flight so a waiter (or a later
		// request) can retry, release the waiters, and let the panic
		// propagate to the leader's caller.
		c.mu.Lock()
		delete(c.flights, key)
		c.mu.Unlock()
		f.failed = true
		close(f.done)
	}()
	if v, ok := c.loadDisk(key); ok {
		c.diskHits.Add(1)
		f.val = v
		completed = true
		close(f.done)
		return v
	}
	v := compute()
	c.misses.Add(1)
	f.val = v
	completed = true
	c.storeDisk(key, v)
	close(f.done)
	return v
}

// Disk entry layout: an 8-byte magic (doubling as the file-format
// version), the payload length, the payload's SHA-256, then the payload.
// The key never appears inside the file — it is the file name.
const entryMagic = "WHYSIMC1"

const entryHeaderSize = len(entryMagic) + 8 + sha256.Size

// entryPath fans entries out over 256 subdirectories so huge grids don't
// produce one enormous flat directory.
func (c *Cache[V]) entryPath(key Key) string {
	hx := key.String()
	return filepath.Join(c.dir, hx[:2], hx[2:]+".sim")
}

// loadDisk probes the disk layer. Any malformed entry counts as corrupt,
// is deleted best-effort, and reads as a miss.
func (c *Cache[V]) loadDisk(key Key) (V, bool) {
	var zero V
	if c.dir == "" {
		return zero, false
	}
	path := c.entryPath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			c.dropCorrupt(path)
		}
		return zero, false
	}
	payload, ok := checkEntry(raw)
	if !ok {
		c.dropCorrupt(path)
		return zero, false
	}
	v, err := c.codec.Decode(payload)
	if err != nil {
		c.dropCorrupt(path)
		return zero, false
	}
	c.bytesRead.Add(int64(len(payload)))
	return v, true
}

// checkEntry validates the framing and checksum, returning the payload.
func checkEntry(raw []byte) ([]byte, bool) {
	if len(raw) < entryHeaderSize {
		return nil, false
	}
	if string(raw[:len(entryMagic)]) != entryMagic {
		return nil, false
	}
	n := binary.LittleEndian.Uint64(raw[len(entryMagic):])
	payload := raw[entryHeaderSize:]
	if uint64(len(payload)) != n {
		return nil, false
	}
	var want [sha256.Size]byte
	copy(want[:], raw[len(entryMagic)+8:])
	if sha256.Sum256(payload) != want {
		return nil, false
	}
	return payload, true
}

func (c *Cache[V]) dropCorrupt(path string) {
	c.corrupt.Add(1)
	// Best-effort: leaving the entry behind only costs a recheck.
	_ = os.Remove(path)
}

// storeDisk persists a computed value. Failures are counted, not fatal:
// the caller already has the value.
func (c *Cache[V]) storeDisk(key Key, v V) {
	if c.dir == "" {
		return
	}
	payload := c.codec.Encode(v)
	buf := make([]byte, entryHeaderSize+len(payload))
	copy(buf, entryMagic)
	binary.LittleEndian.PutUint64(buf[len(entryMagic):], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(buf[len(entryMagic)+8:], sum[:])
	copy(buf[entryHeaderSize:], payload)

	path := c.entryPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		c.wErrors.Add(1)
		return
	}
	// Write-then-rename keeps concurrent processes (two cold runs sharing
	// a directory) from observing a torn entry; the checksum catches
	// whatever slips through anyway.
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		c.wErrors.Add(1)
		return
	}
	if _, err := tmp.Write(buf); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		c.wErrors.Add(1)
		return
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		c.wErrors.Add(1)
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		c.wErrors.Add(1)
		return
	}
	c.bytesWritten.Add(int64(len(payload)))
}
