package simcache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// stringCodec is the trivial identity codec used by the disk tests.
var stringCodec = Codec[string]{
	Encode: func(s string) []byte { return []byte(s) },
	Decode: func(b []byte) (string, error) { return string(b), nil },
}

func TestKeyOfSeparatesStampAndSpec(t *testing.T) {
	a := KeyOf("v1", []byte("spec"))
	if a != KeyOf("v1", []byte("spec")) {
		t.Fatal("KeyOf is not deterministic")
	}
	for name, other := range map[string]Key{
		"stamp":          KeyOf("v2", []byte("spec")),
		"spec":           KeyOf("v1", []byte("spec!")),
		"boundary shift": KeyOf("v1s", []byte("pec")),
	} {
		if other == a {
			t.Errorf("changing the %s did not change the key", name)
		}
	}
}

// TestSingleFlight is the -race verified dedup guarantee: N concurrent
// requests for one key run exactly one computation, and everyone gets its
// value.
func TestSingleFlight(t *testing.T) {
	c := New[int]()
	key := KeyOf("v1", []byte("the one spec"))
	const goroutines = 32
	var computes atomic.Int64
	var wg sync.WaitGroup
	var release sync.WaitGroup
	release.Add(1)
	results := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			release.Wait() // line everyone up on the same key
			results[g] = c.Get(key, func() int {
				computes.Add(1)
				return 42
			})
		}(g)
	}
	release.Done()
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want exactly 1", n)
	}
	for g, v := range results {
		if v != 42 {
			t.Fatalf("goroutine %d got %d", g, v)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != goroutines-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d hits", st, goroutines-1)
	}
}

func TestMemoryHitAcrossSequentialGets(t *testing.T) {
	c := New[string]()
	key := KeyOf("v1", []byte("k"))
	calls := 0
	compute := func() string { calls++; return "value" }
	if got := c.Get(key, compute); got != "value" {
		t.Fatalf("first Get = %q", got)
	}
	if got := c.Get(key, compute); got != "value" {
		t.Fatalf("second Get = %q", got)
	}
	if calls != 1 {
		t.Fatalf("compute called %d times", calls)
	}
}

func TestDiskRoundTripAcrossProcessLifetimes(t *testing.T) {
	dir := t.TempDir()
	key := KeyOf("v1", []byte("spec"))

	cold, err := NewDisk(dir, stringCodec)
	if err != nil {
		t.Fatal(err)
	}
	if got := cold.Get(key, func() string { return "payload" }); got != "payload" {
		t.Fatalf("cold Get = %q", got)
	}
	if st := cold.Stats(); st.Misses != 1 || st.BytesWritten == 0 {
		t.Fatalf("cold stats = %+v, want 1 miss and a disk write", st)
	}

	// A fresh cache over the same directory stands in for a new process.
	warm, err := NewDisk(dir, stringCodec)
	if err != nil {
		t.Fatal(err)
	}
	got := warm.Get(key, func() string {
		t.Error("warm Get recomputed despite a valid disk entry")
		return "recomputed"
	})
	if got != "payload" {
		t.Fatalf("warm Get = %q", got)
	}
	if st := warm.Stats(); st.DiskHits != 1 || st.Misses != 0 || st.BytesRead == 0 {
		t.Fatalf("warm stats = %+v, want 1 disk hit", st)
	}
}

// corruptions maps a name to a mutation of a valid on-disk entry. Every
// one must read as a miss — recompute, never a panic or a wrong value.
var corruptions = map[string]func([]byte) []byte{
	"truncated header":  func(b []byte) []byte { return b[:entryHeaderSize/2] },
	"truncated payload": func(b []byte) []byte { return b[:len(b)-1] },
	"empty file":        func([]byte) []byte { return nil },
	"bad magic":         func(b []byte) []byte { b[0] ^= 0xff; return b },
	"flipped payload":   func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b },
	"flipped checksum":  func(b []byte) []byte { b[len(entryMagic)+9] ^= 0xff; return b },
	"extra bytes":       func(b []byte) []byte { return append(b, 0xaa) },
}

func TestCorruptEntryIsAMiss(t *testing.T) {
	for name, corrupt := range corruptions {
		t.Run(strings.ReplaceAll(name, " ", "-"), func(t *testing.T) {
			dir := t.TempDir()
			key := KeyOf("v1", []byte("spec"))
			seed, err := NewDisk(dir, stringCodec)
			if err != nil {
				t.Fatal(err)
			}
			seed.Get(key, func() string { return "truth" })

			path := seed.entryPath(key)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			c, err := NewDisk(dir, stringCodec)
			if err != nil {
				t.Fatal(err)
			}
			recomputed := false
			if got := c.Get(key, func() string { recomputed = true; return "truth" }); got != "truth" {
				t.Fatalf("Get over corrupt entry = %q", got)
			}
			if !recomputed {
				t.Fatal("corrupt entry served without recompute")
			}
			st := c.Stats()
			if st.Corrupt != 1 || st.DiskHits != 0 || st.Misses != 1 {
				t.Fatalf("stats = %+v, want corrupt=1 misses=1", st)
			}
			// The recompute must have replaced the bad entry with a good one.
			fresh, err := NewDisk(dir, stringCodec)
			if err != nil {
				t.Fatal(err)
			}
			fresh.Get(key, func() string {
				t.Error("repaired entry not served from disk")
				return "truth"
			})
		})
	}
}

func TestDecodeFailureIsAMiss(t *testing.T) {
	dir := t.TempDir()
	key := KeyOf("v1", []byte("spec"))
	strict := Codec[string]{
		Encode: stringCodec.Encode,
		Decode: func(b []byte) (string, error) { return "", fmt.Errorf("schema drift") },
	}
	seed, err := NewDisk(dir, stringCodec)
	if err != nil {
		t.Fatal(err)
	}
	seed.Get(key, func() string { return "truth" })

	c, err := NewDisk(dir, strict)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Get(key, func() string { return "truth" }); got != "truth" {
		t.Fatalf("Get = %q", got)
	}
	if st := c.Stats(); st.Corrupt != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want the undecodable entry counted corrupt", st)
	}
}

// TestVersionStampMismatchIsAMiss pins the invalidation rule: the stamp
// participates in the key, so entries written under one schema are
// invisible — a plain miss, not an error — under another.
func TestVersionStampMismatchIsAMiss(t *testing.T) {
	dir := t.TempDir()
	spec := []byte("same spec bytes")

	v1, err := NewDisk(dir, stringCodec)
	if err != nil {
		t.Fatal(err)
	}
	v1.Get(KeyOf("schema/v1", spec), func() string { return "old-schema result" })

	v2, err := NewDisk(dir, stringCodec)
	if err != nil {
		t.Fatal(err)
	}
	recomputed := false
	got := v2.Get(KeyOf("schema/v2", spec), func() string {
		recomputed = true
		return "new-schema result"
	})
	if !recomputed || got != "new-schema result" {
		t.Fatalf("recomputed=%v got=%q: v2 must not see v1 entries", recomputed, got)
	}
	if st := v2.Stats(); st.DiskHits != 0 || st.Corrupt != 0 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want a clean miss", st)
	}
}

// TestPanickedLeaderReleasesWaiters: a panicking compute must not wedge
// concurrent waiters on the same key, and a retry must succeed.
func TestPanickedLeaderReleasesWaiters(t *testing.T) {
	c := New[int]()
	key := KeyOf("v1", []byte("k"))

	leaderStarted := make(chan struct{})
	release := make(chan struct{})
	done := make(chan int, 1)
	go func() {
		defer func() {
			if recover() == nil {
				t.Error("leader panic did not propagate")
			}
		}()
		c.Get(key, func() int {
			close(leaderStarted)
			<-release
			panic("simulated compute failure")
		})
	}()

	<-leaderStarted
	go func() {
		// This waiter blocks on the leader's flight, observes the failure,
		// and becomes the new leader.
		done <- c.Get(key, func() int { return 7 })
	}()
	close(release)
	if got := <-done; got != 7 {
		t.Fatalf("waiter after failed leader got %d", got)
	}
}

func TestEntryPathFansOut(t *testing.T) {
	c, err := NewDisk(t.TempDir(), stringCodec)
	if err != nil {
		t.Fatal(err)
	}
	k := KeyOf("v1", []byte("x"))
	p := c.entryPath(k)
	sub := filepath.Base(filepath.Dir(p))
	if len(sub) != 2 || !strings.HasPrefix(filepath.Base(p), k.String()[2:]) {
		t.Fatalf("unexpected entry path layout: %s", p)
	}
}
