package tomo

import (
	"sort"
	"strconv"
	"strings"
)

// This file generalizes System 1 from the fixed two-path topology of
// Figure 1 to the fleet's many-path setting. In the two-path system the
// three link sequences l_c, l_1, l_2 are solvable precisely because their
// path-incidence columns — {p1,p2}, {p1}, {p2} — are pairwise distinct:
// each unknown x is pinned by a distinct combination of observed path
// equations. With N paths over M candidate segments the same criterion
// decides *identifiability* before any measurement arrives: a segment
// whose column equals another segment's column contributes to every
// observation identically, so no amount of data can attribute blame
// between the two (cf. "Network Capability in Localizing Node Failures",
// PAPERS.md); a segment crossed by no path at all is unobservable outright.
//
// The fleet aggregation layer (internal/fleet) runs this pass over the
// synthetic-Internet path sets to report "unidentifiable" instead of a
// false posterior for networks the campaign's path matrix cannot separate.

// PathMatrix is the boolean incidence of observed measurement paths
// (rows) over candidate network segments (columns). Duplicate paths —
// millions of sessions riding the same route — collapse onto one row, so
// the matrix stays bounded by the number of *distinct* routes.
type PathMatrix struct {
	pathIdx map[string]int   // canonical path key -> row index
	segs    map[string][]int // segment ID -> sorted distinct row indices
}

// NewPathMatrix returns an empty matrix.
func NewPathMatrix() *PathMatrix {
	return &PathMatrix{
		pathIdx: make(map[string]int),
		segs:    make(map[string][]int),
	}
}

// AddSegment declares a candidate segment even if no path crosses it, so
// the identifiability report can call out path-starved networks instead
// of silently omitting them.
func (m *PathMatrix) AddSegment(id string) {
	if _, ok := m.segs[id]; !ok {
		m.segs[id] = nil
	}
}

// AddPath records one observed path as the set of segments it traverses.
// Segment order and duplicates within the path are irrelevant; adding the
// same segment set again is a no-op (the route is already a row).
func (m *PathMatrix) AddPath(segments []string) {
	if len(segments) == 0 {
		return
	}
	uniq := append([]string(nil), segments...)
	sort.Strings(uniq)
	k := 0
	for i, s := range uniq {
		if i == 0 || s != uniq[k-1] {
			uniq[k] = s
			k++
		}
	}
	uniq = uniq[:k]
	key := strings.Join(uniq, "\x00")
	if _, seen := m.pathIdx[key]; seen {
		return
	}
	row := len(m.pathIdx)
	m.pathIdx[key] = row
	for _, s := range uniq {
		m.segs[s] = append(m.segs[s], row)
	}
}

// Paths reports the number of distinct routes recorded.
func (m *PathMatrix) Paths() int { return len(m.pathIdx) }

// Segments reports the number of candidate segments (observed or declared).
func (m *PathMatrix) Segments() int { return len(m.segs) }

// SegmentIdent is one segment's entry in the identifiability report.
type SegmentIdent struct {
	// ID names the segment.
	ID string `json:"id"`
	// Paths is the number of distinct routes crossing the segment.
	Paths int `json:"paths"`
	// Observed: at least one route crosses the segment.
	Observed bool `json:"observed"`
	// Identifiable: the segment is observed and no other segment shares
	// its exact route set — the many-path System 1 can attribute blame to
	// it alone.
	Identifiable bool `json:"identifiable"`
	// ConfusedWith lists the segments with an identical route set (sorted;
	// empty when identifiable or simply unobserved alone).
	ConfusedWith []string `json:"confused_with,omitempty"`
}

// Identify computes the per-segment identifiability report, sorted by
// segment ID. The result is invariant to the order paths were added: row
// indices relabel under reordering, but column-set equality — the only
// thing the report depends on — does not.
func (m *PathMatrix) Identify() []SegmentIdent {
	ids := make([]string, 0, len(m.segs))
	for id := range m.segs {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	// Group segments by column signature. Rows were appended in path
	// insertion order per segment, so each column is already sorted.
	groups := make(map[string][]string, len(ids))
	sigOf := make(map[string]string, len(ids))
	for _, id := range ids {
		var sb strings.Builder
		for _, row := range m.segs[id] {
			sb.WriteString(strconv.Itoa(row))
			sb.WriteByte(',')
		}
		sig := sb.String()
		sigOf[id] = sig
		groups[sig] = append(groups[sig], id)
	}

	out := make([]SegmentIdent, 0, len(ids))
	for _, id := range ids {
		col := m.segs[id]
		group := groups[sigOf[id]]
		ent := SegmentIdent{
			ID:       id,
			Paths:    len(col),
			Observed: len(col) > 0,
		}
		ent.Identifiable = ent.Observed && len(group) == 1
		if len(group) > 1 {
			for _, other := range group {
				if other != id {
					ent.ConfusedWith = append(ent.ConfusedWith, other)
				}
			}
		}
		out = append(out, ent)
	}
	return out
}
