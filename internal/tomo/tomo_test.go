package tomo

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/nal-epfl/wehey/internal/measure"
)

func TestBinLossTomoSystemSolution(t *testing.T) {
	// Hand-crafted rate series with known lossy patterns at tau = 0.05:
	// intervals:        0     1     2     3     4     5     6     7
	r1 := []float64{0.10, 0.00, 0.10, 0.00, 0.10, 0.00, 0.00, 0.00}
	r2 := []float64{0.10, 0.00, 0.00, 0.10, 0.10, 0.00, 0.00, 0.00}
	// lossy1 = {0,2,4}, lossy2 = {0,3,4} → good1 = 5/8, good2 = 5/8,
	// good12 = |{1,5,6,7}| = 4/8.
	perf, ok := binLossTomoRates(r1, r2, 0.05)
	if !ok {
		t.Fatal("inference failed")
	}
	y1, y2, y12 := 5.0/8, 5.0/8, 4.0/8
	if got, want := perf.Xc, y1*y2/y12; math.Abs(got-want) > 1e-12 {
		t.Errorf("Xc = %v, want %v", got, want)
	}
	if got, want := perf.X1, y12/y2; math.Abs(got-want) > 1e-12 {
		t.Errorf("X1 = %v, want %v", got, want)
	}
	if got, want := perf.X2, y12/y1; math.Abs(got-want) > 1e-12 {
		t.Errorf("X2 = %v, want %v", got, want)
	}
}

func TestBinLossTomoDegenerateCases(t *testing.T) {
	if _, ok := binLossTomoRates(nil, nil, 0.1); ok {
		t.Error("empty series inferred")
	}
	// Always-lossy path: y = 0 → degenerate.
	r := []float64{0.5, 0.5, 0.5, 0.5}
	if _, ok := binLossTomoRates(r, r, 0.1); ok {
		t.Error("always-lossy series inferred")
	}
}

func TestBinLossTomoIdentifiesCommonBottleneckWithGoodTau(t *testing.T) {
	// Pure common bottleneck, bimodal-ish rates: a threshold well below the
	// base loss rate separates quiet from busy intervals, and the common
	// link should be inferred as the worse performer.
	rng := rand.New(rand.NewSource(1))
	m1, m2 := measure.SynthPair(rng, measure.SynthSpec{CommonWeight: 1})
	sigma := 10 * measure.MaxRTT(m1, m2)
	if !BinLossTomoPlus(m1, m2, sigma, 0.02) {
		t.Error("BinLossTomo++ missed a pure common bottleneck at a good threshold")
	}
}

func TestBinLossTomoParameterSensitivity(t *testing.T) {
	// The Figure 3 pathology: as tau approaches the true average loss rate,
	// the inferred gap x1 − xc shrinks (the two curves approach/cross)
	// because the paths' rates oscillate around tau and land on opposite
	// sides. We check the gap at a good threshold exceeds the gap near the
	// mean loss rate.
	rng := rand.New(rand.NewSource(2))
	m1, m2 := measure.SynthPair(rng, measure.SynthSpec{CommonWeight: 1, BaseLoss: 0.04})
	sigma := 10 * measure.MaxRTT(m1, m2)
	good, ok1 := BinLossTomo(m1, m2, sigma, 0.015)
	bad, ok2 := BinLossTomo(m1, m2, sigma, 0.04)
	if !ok1 || !ok2 {
		t.Fatal("inference failed")
	}
	gapGood := good.X1 - good.Xc
	gapBad := bad.X1 - bad.Xc
	if gapGood <= gapBad {
		t.Errorf("expected sensitivity: gap(τ=0.015)=%v should exceed gap(τ=0.04)=%v",
			gapGood, gapBad)
	}
}

func TestBinLossTomoNoParamsOnCommonBottleneck(t *testing.T) {
	detected := 0
	const trials = 10
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m1, m2 := measure.SynthPair(rng, measure.SynthSpec{CommonWeight: 1})
		res := BinLossTomoNoParams(m1, m2, NoParamsConfig{})
		if res.Combos == 0 {
			t.Fatalf("seed %d: no admissible parameter combinations", seed)
		}
		if res.CommonBottleneck {
			detected++
		}
	}
	// Classic tomography is *worse* than loss-trend correlation (Fig. 6)
	// but should still catch a decent share of clean pure-common cases.
	if detected < trials/3 {
		t.Errorf("detected %d/%d pure-common cases; suspiciously low", detected, trials)
	}
}

func TestBinLossTomoNoParamsOnIndependentBottlenecks(t *testing.T) {
	positives := 0
	const trials = 20
	for seed := int64(50); seed < 50+trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m1, m2 := measure.SynthPair(rng, measure.SynthSpec{CommonWeight: 0})
		res := BinLossTomoNoParams(m1, m2, NoParamsConfig{})
		if res.CommonBottleneck {
			positives++
		}
	}
	if positives > trials/4 {
		t.Errorf("independent bottlenecks: %d/%d positives", positives, trials)
	}
}

func TestTrendTomoBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mc1, mc2 := measure.SynthPair(rng, measure.SynthSpec{CommonWeight: 1})
	res := TrendTomo(mc1, mc2, NoParamsConfig{})
	if res.Combos == 0 {
		t.Fatal("no combinations")
	}
	if !res.CommonBottleneck {
		t.Error("TrendTomo missed a pure common bottleneck")
	}

	positives := 0
	const trials = 15
	for seed := int64(200); seed < 200+trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		mi1, mi2 := measure.SynthPair(rng, measure.SynthSpec{CommonWeight: 0})
		if TrendTomo(mi1, mi2, NoParamsConfig{}).CommonBottleneck {
			positives++
		}
	}
	if positives > trials/3 {
		t.Errorf("TrendTomo FP: %d/%d", positives, trials)
	}
}

func TestTrendLabels(t *testing.T) {
	got := trendLabels([]float64{0.1, 0.2, 0.2, 0.1, 0.3})
	want := []bool{true, false, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trendLabels = %v, want %v", got, want)
		}
	}
}

func TestThresholdAdmissible(t *testing.T) {
	rates := []float64{0, 0, 0, 0, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1}
	if !thresholdAdmissible(rates, 0.05) { // 60% lossy
		t.Error("60% lossy should be admissible")
	}
	if thresholdAdmissible(rates, 0.2) { // 0% lossy
		t.Error("0% lossy should not be admissible")
	}
	if thresholdAdmissible([]float64{1, 1, 1}, 0.5) { // 100% lossy
		t.Error("100% lossy should not be admissible")
	}
}

func TestQuantileSorted(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := quantileSorted(xs, 0.5); got != 2.5 {
		t.Errorf("median = %v", got)
	}
	if got := quantileSorted(xs, 1); got != 4 {
		t.Errorf("q1.0 = %v", got)
	}
	if !math.IsNaN(quantileSorted(nil, 0.5)) {
		t.Error("empty quantile")
	}
}

func TestBinLossTomoRespectsIntervalSize(t *testing.T) {
	// Wiring check: public BinLossTomo bins with the given sigma.
	m := &measure.Path{RTT: 10 * time.Millisecond, Duration: time.Second}
	for ts := time.Duration(0); ts < time.Second; ts += time.Millisecond {
		m.Tx = append(m.Tx, ts)
	}
	m.Loss = []time.Duration{500 * time.Millisecond}
	if _, ok := BinLossTomo(m, m, 100*time.Millisecond, 0.5); !ok {
		t.Error("valid measurements failed to infer")
	}
}
