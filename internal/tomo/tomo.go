// Package tomo implements the classic binary-loss network-tomography
// algorithms that WeHeY evolved away from (§4.3 and Appendix B of the
// paper): BinLossTomo (Alg. 2), BinLossTomo++ (Alg. 3),
// BinLossTomoNoParams (Alg. 4), and the intermediate "V2" trend-labelled
// tomography. They serve as the baselines in Figure 6 and as the
// demonstration of the parameter-sensitivity pathology in Figure 3.
//
// All algorithms operate on the topology of the paper's Figure 1: two
// paths p1, p2 that intersect exactly at a common link sequence l_c, with
// non-common sequences l_1 and l_2. The tomographic system of equations
// (System 1, assuming independent link sequences) is
//
//	y1  = xc·x1,   y2 = xc·x2,   y12 = xc·x1·x2,
//
// where y are observed path non-lossy probabilities and x the inferred
// link-sequence non-lossy probabilities, giving the closed-form solution
//
//	xc = y1·y2/y12,   x1 = y12/y2,   x2 = y12/y1.
package tomo

import (
	"math"
	"sort"
	"time"

	"github.com/nal-epfl/wehey/internal/measure"
)

// LinkPerf is the output of BinLossTomo: each link sequence's inferred
// probability of being non-lossy.
type LinkPerf struct {
	Xc, X1, X2 float64
}

// BinLossTomo (Alg. 2) runs binary loss tomography at one interval size and
// loss threshold. For each retained interval it labels each path lossy when
// its loss rate exceeds tau, estimates the path and joint non-lossy
// probabilities, and solves System 1.
//
// ok is false when the measurements cannot support an inference (no
// retained intervals, or a path that is lossy in every interval, which
// makes System 1 degenerate).
func BinLossTomo(m1, m2 *measure.Path, sigma time.Duration, tau float64) (perf LinkPerf, ok bool) {
	r1, r2 := measure.FilteredLossRates(m1, m2, sigma, measure.MinPacketsPerInterval)
	return binLossTomoRates(r1, r2, tau)
}

func binLossTomoRates(r1, r2 []float64, tau float64) (LinkPerf, bool) {
	n := len(r1)
	if n == 0 {
		return LinkPerf{}, false
	}
	var good1, good2, good12 int
	for t := 0; t < n; t++ {
		ok1 := r1[t] <= tau
		ok2 := r2[t] <= tau
		if ok1 {
			good1++
		}
		if ok2 {
			good2++
		}
		if ok1 && ok2 {
			good12++
		}
	}
	y1 := float64(good1) / float64(n)
	y2 := float64(good2) / float64(n)
	y12 := float64(good12) / float64(n)
	// Integer count checks: the yields are exact ratios, zero iff the
	// underlying count is zero.
	if good12 == 0 || good1 == 0 || good2 == 0 {
		return LinkPerf{}, false
	}
	perf := LinkPerf{
		Xc: clamp01(y1 * y2 / y12),
		X1: clamp01(y12 / y2),
		X2: clamp01(y12 / y1),
	}
	return perf, true
}

func clamp01(x float64) float64 {
	switch {
	case math.IsNaN(x):
		return 0
	case x < 0:
		return 0
	case x > 1:
		return 1
	}
	return x
}

// BinLossTomoPlus (Alg. 3) declares a common bottleneck when the common
// link sequence's inferred performance is worse than both non-common ones.
func BinLossTomoPlus(m1, m2 *measure.Path, sigma time.Duration, tau float64) bool {
	perf, ok := BinLossTomo(m1, m2, sigma, tau)
	if !ok {
		return false
	}
	return perf.X1 > perf.Xc && perf.X2 > perf.Xc
}

// NoParamsConfig tunes BinLossTomoNoParams. Zero values give the paper's
// settings.
type NoParamsConfig struct {
	// LoRTTs, HiRTTs, StepRTTs bound the interval-size sweep in units of
	// the larger path RTT (defaults 10, 50, 5).
	LoRTTs, HiRTTs, StepRTTs int
	// ThresholdQuantiles are the quantiles of the pooled per-interval loss
	// rates tried as loss thresholds (defaults 0.1..0.9 step 0.1). Each
	// candidate is kept only if it leaves both paths lossy in 10–90% of
	// intervals (the Alg. 4 constraint 0.1 ≤ y_i ≤ 0.9).
	ThresholdQuantiles []float64
}

func (c *NoParamsConfig) fill() {
	if c.LoRTTs == 0 {
		c.LoRTTs = 10
	}
	if c.HiRTTs == 0 {
		c.HiRTTs = 50
	}
	if c.StepRTTs == 0 {
		c.StepRTTs = 5
	}
	if len(c.ThresholdQuantiles) == 0 {
		for q := 0.1; q < 0.95; q += 0.1 {
			c.ThresholdQuantiles = append(c.ThresholdQuantiles, q)
		}
	}
}

// NoParamsResult reports BinLossTomoNoParams' decision and the averaged
// performance gaps behind it.
type NoParamsResult struct {
	CommonBottleneck bool
	AvgGap1, AvgGap2 float64 // mean (x1−xc), (x2−xc) over all combinations
	Combos           int     // parameter combinations that yielded an inference
}

// BinLossTomoNoParams (Alg. 4) sweeps interval sizes (10–50 RTT) and loss
// thresholds (constrained so neither path is lossy too often or too
// rarely), averages the performance gap between the non-common and common
// link sequences across all combinations, and declares a common bottleneck
// when both average gaps are positive.
func BinLossTomoNoParams(m1, m2 *measure.Path, cfg NoParamsConfig) NoParamsResult {
	cfg.fill()
	rtt := measure.MaxRTT(m1, m2)
	var sum1, sum2 float64
	combos := 0
	for _, sigma := range measure.IntervalSweep(rtt, cfg.LoRTTs, cfg.HiRTTs, cfg.StepRTTs) {
		r1, r2 := measure.FilteredLossRates(m1, m2, sigma, measure.MinPacketsPerInterval)
		if len(r1) == 0 {
			continue
		}
		pooled := append(append([]float64(nil), r1...), r2...)
		sort.Float64s(pooled)
		for _, q := range cfg.ThresholdQuantiles {
			tau := quantileSorted(pooled, q)
			if !thresholdAdmissible(r1, tau) || !thresholdAdmissible(r2, tau) {
				continue
			}
			perf, ok := binLossTomoRates(r1, r2, tau)
			if !ok {
				continue
			}
			sum1 += perf.X1 - perf.Xc
			sum2 += perf.X2 - perf.Xc
			combos++
		}
	}
	res := NoParamsResult{Combos: combos}
	if combos == 0 {
		return res
	}
	res.AvgGap1 = sum1 / float64(combos)
	res.AvgGap2 = sum2 / float64(combos)
	res.CommonBottleneck = res.AvgGap1 > 0 && res.AvgGap2 > 0
	return res
}

// thresholdAdmissible enforces Alg. 4's constraint 0.1 ≤ y ≤ 0.9: the path
// must be lossy in between 10% and 90% of the intervals at threshold tau.
func thresholdAdmissible(rates []float64, tau float64) bool {
	lossy := 0
	for _, r := range rates {
		if r > tau {
			lossy++
		}
	}
	frac := float64(lossy) / float64(len(rates))
	return frac >= 0.1 && frac <= 0.9
}

// TrendResult reports TrendTomo's decision.
type TrendResult struct {
	CommonBottleneck bool
	AvgGap1, AvgGap2 float64
	Combos           int
}

// TrendTomo is the paper's intermediate "V2": binary tomography where a
// path is labelled lossy in an interval when its loss rate *increased*
// relative to the previous interval — eliminating the loss threshold and
// reducing interval-size sensitivity. Gaps are averaged over the interval
// sweep as in Alg. 4.
func TrendTomo(m1, m2 *measure.Path, cfg NoParamsConfig) TrendResult {
	cfg.fill()
	rtt := measure.MaxRTT(m1, m2)
	var sum1, sum2 float64
	combos := 0
	for _, sigma := range measure.IntervalSweep(rtt, cfg.LoRTTs, cfg.HiRTTs, cfg.StepRTTs) {
		r1, r2 := measure.FilteredLossRates(m1, m2, sigma, measure.MinPacketsPerInterval)
		if len(r1) < 2 {
			continue
		}
		inc1 := trendLabels(r1)
		inc2 := trendLabels(r2)
		perf, ok := trendSystem(inc1, inc2)
		if !ok {
			continue
		}
		sum1 += perf.X1 - perf.Xc
		sum2 += perf.X2 - perf.Xc
		combos++
	}
	res := TrendResult{Combos: combos}
	if combos == 0 {
		return res
	}
	res.AvgGap1 = sum1 / float64(combos)
	res.AvgGap2 = sum2 / float64(combos)
	res.CommonBottleneck = res.AvgGap1 > 0 && res.AvgGap2 > 0
	return res
}

// trendLabels marks intervals whose loss rate increased vs the previous one.
func trendLabels(rates []float64) []bool {
	out := make([]bool, 0, len(rates)-1)
	for i := 1; i < len(rates); i++ {
		out = append(out, rates[i] > rates[i-1])
	}
	return out
}

// trendSystem solves System 1 with "lossy" = "loss rate increased".
func trendSystem(l1, l2 []bool) (LinkPerf, bool) {
	n := len(l1)
	if n == 0 || len(l2) != n {
		return LinkPerf{}, false
	}
	var good1, good2, good12 int
	for t := 0; t < n; t++ {
		if !l1[t] {
			good1++
		}
		if !l2[t] {
			good2++
		}
		if !l1[t] && !l2[t] {
			good12++
		}
	}
	y1 := float64(good1) / float64(n)
	y2 := float64(good2) / float64(n)
	y12 := float64(good12) / float64(n)
	// Integer count checks: the yields are exact ratios, zero iff the
	// underlying count is zero.
	if good12 == 0 || good1 == 0 || good2 == 0 {
		return LinkPerf{}, false
	}
	return LinkPerf{
		Xc: clamp01(y1 * y2 / y12),
		X1: clamp01(y12 / y2),
		X2: clamp01(y12 / y1),
	}, true
}

// quantileSorted is a type-7 quantile over an already-sorted sample.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
