package tomo

import (
	"math/rand"
	"reflect"
	"testing"
)

func identByID(t *testing.T, idents []SegmentIdent, id string) SegmentIdent {
	t.Helper()
	for _, e := range idents {
		if e.ID == id {
			return e
		}
	}
	t.Fatalf("segment %q missing from report", id)
	return SegmentIdent{}
}

// TestPathMatrixSystem1 encodes the paper's Figure 1 topology: two paths
// sharing l_c, with non-common l_1 and l_2. All three columns are
// distinct, matching System 1's closed-form solvability.
func TestPathMatrixSystem1(t *testing.T) {
	m := NewPathMatrix()
	m.AddPath([]string{"lc", "l1"})
	m.AddPath([]string{"lc", "l2"})
	if m.Paths() != 2 || m.Segments() != 3 {
		t.Fatalf("got %d paths, %d segments; want 2, 3", m.Paths(), m.Segments())
	}
	for _, id := range []string{"lc", "l1", "l2"} {
		e := identByID(t, m.Identify(), id)
		if !e.Observed || !e.Identifiable || len(e.ConfusedWith) != 0 {
			t.Errorf("%s: got %+v; want observed, identifiable, unconfused", id, e)
		}
	}
}

// TestPathMatrixConfusion: two segments always traversed together are
// mutually confused; a segment crossed by no path is unobserved.
func TestPathMatrixConfusion(t *testing.T) {
	m := NewPathMatrix()
	m.AddPath([]string{"a", "b", "x"})
	m.AddPath([]string{"a", "b", "y"})
	m.AddSegment("starved")

	idents := m.Identify()
	a := identByID(t, idents, "a")
	b := identByID(t, idents, "b")
	if a.Identifiable || b.Identifiable {
		t.Errorf("a/b should be confused: %+v %+v", a, b)
	}
	if !reflect.DeepEqual(a.ConfusedWith, []string{"b"}) || !reflect.DeepEqual(b.ConfusedWith, []string{"a"}) {
		t.Errorf("confusion sets wrong: a=%v b=%v", a.ConfusedWith, b.ConfusedWith)
	}
	s := identByID(t, idents, "starved")
	if s.Observed || s.Identifiable || s.Paths != 0 {
		t.Errorf("starved segment: got %+v; want unobserved", s)
	}
	for _, id := range []string{"x", "y"} {
		if e := identByID(t, idents, id); !e.Identifiable {
			t.Errorf("%s: got %+v; want identifiable", id, e)
		}
	}
}

// Two unobserved segments share the empty column and are reported as
// confused with each other — neither can be blamed.
func TestPathMatrixTwoStarved(t *testing.T) {
	m := NewPathMatrix()
	m.AddPath([]string{"a"})
	m.AddSegment("s1")
	m.AddSegment("s2")
	idents := m.Identify()
	s1 := identByID(t, idents, "s1")
	if s1.Identifiable || !reflect.DeepEqual(s1.ConfusedWith, []string{"s2"}) {
		t.Errorf("s1: got %+v; want confused with s2", s1)
	}
}

// TestPathMatrixDuplicatesCollapse: re-adding a route (in any segment
// order) does not create a new row or perturb the report.
func TestPathMatrixDuplicatesCollapse(t *testing.T) {
	m := NewPathMatrix()
	m.AddPath([]string{"a", "b"})
	m.AddPath([]string{"b", "a"})
	m.AddPath([]string{"a", "b", "a"})
	if m.Paths() != 1 {
		t.Fatalf("got %d paths; want 1", m.Paths())
	}
}

// TestPathMatrixOrderInvariant: the report is identical no matter the
// order paths arrive in, as required for shard-parallel fleet aggregation.
func TestPathMatrixOrderInvariant(t *testing.T) {
	paths := [][]string{
		{"ispA", "core1", "srv1"},
		{"ispA", "core2", "srv2"},
		{"ispB", "core1", "srv1"},
		{"ispB", "core2", "srv3"},
		{"ispC", "core2", "srv3"},
	}
	base := NewPathMatrix()
	for _, p := range paths {
		base.AddPath(p)
	}
	want := base.Identify()

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		shuffled := append([][]string(nil), paths...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		m := NewPathMatrix()
		for _, p := range shuffled {
			m.AddPath(p)
		}
		if got := m.Identify(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: report differs under reordering:\ngot  %+v\nwant %+v", trial, got, want)
		}
	}
}
