package experiments

import (
	"math/rand"
	"sort"
	"time"

	"github.com/nal-epfl/wehey/internal/core"
	"github.com/nal-epfl/wehey/internal/measure"
	"github.com/nal-epfl/wehey/internal/simcache"
)

// This file is the experiments half of the fleet-inference subsystem
// (DESIGN.md §16): the shared per-session verdict path that the service's
// sim backend and internal/fleet's direct ground-truth harness both call
// — so a verdict computed in-process is bit-identical to the one a
// wehey-serve job would report — and the planted-ground-truth campaign
// generator that turns a FleetCampaignSpec into a deterministic session
// plan plus its evaluated outcomes.

// detectSeedTag is the fixed identity string mixed into a sim job's seed
// to derive its detector rng. It matches the service backend's
// jobSeed("sim-detect", seed) so both evaluation paths agree.
const detectSeedTag = "sim-detect"

// DetectSeed derives the detector rng seed for a sim run from the run's
// spec seed: seed ^ FNV-1a("sim-detect"). A pure function of the spec, so
// the verdict — like the simulation itself — is deterministic in the spec
// alone.
func DetectSeed(seed int64) int64 { return seed ^ int64(hash64(detectSeedTag)) }

// SimVerdict is the localization verdict of one simulated session.
type SimVerdict struct {
	// LocalizedToISP: the common-bottleneck detector found evidence that
	// differentiation happens on the shared (ISP-side) link sequence.
	LocalizedToISP bool `json:"localized_to_isp"`
	// Evidence is the detector's evidence summary.
	Evidence string `json:"evidence"`
	// LossRate is the two paths' overall loss rates.
	LossRate [2]float64 `json:"loss_rates"`
}

// Verdict runs one simulated session through the configured cache and
// classifies it with the common-bottleneck detector (loss-trend
// correlation; a sim session has no historical T_diff). The detector rng
// is seeded by DetectSeed(spec.Seed), making the verdict a deterministic
// function of the spec and identical to what the service's sim backend
// reports for the same spec.
func (c Config) Verdict(spec SimSpec) (SimVerdict, error) {
	res := c.Sim(spec)
	rng := rand.New(rand.NewSource(DetectSeed(spec.Seed)))
	out, err := core.DetectCommonBottleneck(rng,
		core.DetectorInput{M1: &res.M1, M2: &res.M2}, core.DetectorConfig{})
	if err != nil {
		return SimVerdict{}, err
	}
	return SimVerdict{
		LocalizedToISP: out.Evidence.Found(),
		Evidence:       out.Evidence.String(),
		LossRate:       res.LossRate,
	}, nil
}

// fleetCacheSchema stamps FleetCampaignSpec cache keys. Bump it whenever a
// FleetCampaignSpec field changes meaning, the session-plan derivation
// changes (assignment, seeding, placement mapping), or the underlying
// per-session verdict changes behaviour at a fixed spec.
// TestFleetCampaignSchemaGuards pins the struct shape this stamp covers.
const fleetCacheSchema = "wehey/fleetcache/v1"

// FleetCampaignSpec describes one planted-ground-truth campaign over the
// synthetic Internet: which ISPs throttle, which are deliberately starved
// of sessions (to exercise the identifiability pass), and how many
// sessions the fleet contributes.
type FleetCampaignSpec struct {
	// ISPs is the number of candidate access ISPs (default 12, matching
	// topology.SynthSpec).
	ISPs int
	// Servers is the number of server sites sessions rotate through
	// (default 8, matching topology.SynthSpec).
	Servers int
	// ThrottledISPs lists the ISP indices with planted throttling
	// (sessions through them simulate a common-link limiter).
	ThrottledISPs []int
	// StarvedISPs lists ISP indices that contribute no sessions at all —
	// their path-matrix columns stay empty, so the identifiability pass
	// must flag them instead of the posterior scoring them.
	StarvedISPs []int
	// Sessions is the total session count across all non-starved ISPs
	// (default 2048).
	Sessions int
	// App is the replayed trace pair (default tcpbulk).
	App string
	// Duration of each session's replay (default 45 s: the loss-trend
	// detector needs ≥8 retained intervals at its largest interval size,
	// which short replays cannot provide).
	Duration time.Duration
	// SeedPool is the number of distinct sim seeds per placement class.
	// Sessions reuse seeds round-robin, so a campaign of any size costs at
	// most 2×SeedPool distinct simulations — the rest are cache hits,
	// exactly as the service's content-addressed sim cache dedups repeated
	// specs at scale (default 32).
	SeedPool int
	// Seed drives the campaign's seed derivation.
	Seed int64
}

func (s *FleetCampaignSpec) fill() {
	if s.ISPs <= 0 {
		s.ISPs = 12
	}
	if s.Servers <= 0 {
		s.Servers = 8
	}
	if s.Sessions <= 0 {
		s.Sessions = 2048
	}
	if s.App == "" {
		s.App = TCPBulkApp
	}
	if s.Duration <= 0 {
		s.Duration = 45 * time.Second
	}
	if s.SeedPool <= 0 {
		s.SeedPool = 32
	}
	s.ThrottledISPs = canonIndices(s.ThrottledISPs)
	s.StarvedISPs = canonIndices(s.StarvedISPs)
}

// Filled returns a copy of the spec with defaults applied and index lists
// canonicalized (sorted, deduplicated).
func (s FleetCampaignSpec) Filled() FleetCampaignSpec {
	s.fill()
	return s
}

// canonIndices sorts and deduplicates, mapping empty to nil so a spec
// relying on defaults and one spelling out an empty list share a key.
func canonIndices(in []int) []int {
	if len(in) == 0 {
		return nil
	}
	out := append([]int(nil), in...)
	sort.Ints(out)
	k := 0
	for i, v := range out {
		if i == 0 || v != out[k-1] {
			out[k] = v
			k++
		}
	}
	return out[:k]
}

// FleetSession is one planned session of a campaign.
type FleetSession struct {
	// Index is the session's position in the campaign plan.
	Index int
	// ISP is the access ISP the session runs through.
	ISP int
	// Server is the server site the session measures against.
	Server int
	// Throttled is the planted ground truth for the session's ISP.
	Throttled bool
	// Spec is the simulation the session runs: common-link limiter
	// placement when the ISP throttles (differentiation inside the ISP),
	// non-common placement otherwise.
	Spec SimSpec
}

// SessionPlan enumerates the campaign's sessions deterministically:
// sessions round-robin over the non-starved ISPs and rotate through the
// server sites, and each draws its sim seed from a fixed per-placement
// pool via specSeed — a function of what the session is, never of
// submission or completion order.
func (s FleetCampaignSpec) SessionPlan() []FleetSession {
	s.fill()
	starved := make(map[int]bool, len(s.StarvedISPs))
	for _, i := range s.StarvedISPs {
		starved[i] = true
	}
	throttled := make(map[int]bool, len(s.ThrottledISPs))
	for _, i := range s.ThrottledISPs {
		throttled[i] = true
	}
	active := make([]int, 0, s.ISPs)
	for i := 0; i < s.ISPs; i++ {
		if !starved[i] {
			active = append(active, i)
		}
	}
	if len(active) == 0 {
		return nil
	}

	plan := make([]FleetSession, s.Sessions)
	for i := range plan {
		isp := active[i%len(active)]
		sess := FleetSession{
			Index:     i,
			ISP:       isp,
			Server:    (i / len(active)) % s.Servers,
			Throttled: throttled[isp],
		}
		placement, key := LimiterNonCommon, "noncommon"
		if sess.Throttled {
			placement, key = LimiterCommon, "common"
		}
		sess.Spec = SimSpec{
			App:       s.App,
			Duration:  s.Duration,
			Placement: placement,
			Seed:      specSeed(s.Seed, "fleet-campaign", key, i%s.SeedPool),
		}
		plan[i] = sess
	}
	return plan
}

// SessionOutcome is one session's evaluated result: the planted ground
// truth alongside the verdict the detector actually reached.
type SessionOutcome struct {
	Index     int    `json:"index"`
	ISP       int    `json:"isp"`
	Server    int    `json:"server"`
	Throttled bool   `json:"throttled"`
	Localized bool   `json:"localized"`
	Err       string `json:"err,omitempty"`
}

// EvalCampaign evaluates every planned session directly (no service in
// the loop). Verdicts are computed once per distinct SimSpec — the plan's
// seed pooling collapses thousands of sessions onto at most 2×SeedPool
// simulations — on the configured worker pool, then fanned back out to
// sessions in plan order, so the result is independent of worker count.
func (c Config) EvalCampaign(spec FleetCampaignSpec) []SessionOutcome {
	plan := spec.SessionPlan()
	uniq := make(map[SimSpec]int)
	var order []SimSpec
	for _, sess := range plan {
		if _, ok := uniq[sess.Spec]; !ok {
			uniq[sess.Spec] = len(order)
			order = append(order, sess.Spec)
		}
	}
	type evaled struct {
		v   SimVerdict
		err error
	}
	verdicts := ForEach(len(order), c.workers(), func(i int) evaled {
		v, err := c.Verdict(order[i])
		return evaled{v, err}
	})

	out := make([]SessionOutcome, len(plan))
	for i, sess := range plan {
		ev := verdicts[uniq[sess.Spec]]
		out[i] = SessionOutcome{
			Index:     sess.Index,
			ISP:       sess.ISP,
			Server:    sess.Server,
			Throttled: sess.Throttled,
			Localized: ev.v.LocalizedToISP,
		}
		if ev.err != nil {
			out[i].Err = ev.err.Error()
		}
	}
	return out
}

// FleetCache memoizes EvalCampaign results keyed on the canonical
// campaign spec, so repeated scoring of one campaign (watch, then score;
// or CI re-asserts) evaluates it once. Outcome slices handed out are
// shared: callers must not mutate them.
type FleetCache struct {
	cfg   Config
	inner *simcache.Cache[[]SessionOutcome]
}

// NewFleetCache returns an in-process campaign cache evaluating through
// cfg (so a Config.Cache sim cache dedups the underlying simulations too).
func NewFleetCache(cfg Config) *FleetCache {
	return &FleetCache{cfg: cfg, inner: simcache.New[[]SessionOutcome]()}
}

// Eval returns EvalCampaign(spec), computing it at most once per key.
func (fc *FleetCache) Eval(spec FleetCampaignSpec) []SessionOutcome {
	spec.fill() // canonicalize before keying: defaulted == spelled out
	key := simcache.KeyOf(fleetCacheSchema, appendFleetSpec(nil, &spec))
	return fc.inner.Get(key, func() []SessionOutcome { return fc.cfg.EvalCampaign(spec) })
}

// Stats snapshots the campaign-cache counters.
func (fc *FleetCache) Stats() simcache.Stats { return fc.inner.Stats() }

// appendFleetSpec appends the canonical binary encoding of s — every
// field, in declaration order. TestFleetCampaignSchemaGuards fails if
// FleetCampaignSpec grows a field without this encoder (and
// fleetCacheSchema) being updated.
func appendFleetSpec(b []byte, s *FleetCampaignSpec) []byte {
	b = measure.AppendInt64(b, int64(s.ISPs))
	b = measure.AppendInt64(b, int64(s.Servers))
	b = appendIntSlice(b, s.ThrottledISPs)
	b = appendIntSlice(b, s.StarvedISPs)
	b = measure.AppendInt64(b, int64(s.Sessions))
	b = measure.AppendString(b, s.App)
	b = measure.AppendInt64(b, int64(s.Duration))
	b = measure.AppendInt64(b, int64(s.SeedPool))
	return measure.AppendInt64(b, s.Seed)
}

func appendIntSlice(b []byte, vs []int) []byte {
	b = measure.AppendUint64(b, uint64(len(vs)))
	for _, v := range vs {
		b = measure.AppendInt64(b, int64(v))
	}
	return b
}
