package experiments

import (
	"fmt"
	"time"

	"github.com/nal-epfl/wehey/internal/core"
)

// ExtensionBBR answers the §7 open question: "it is an open question how
// loss rate correlations would occur with BBR flows. On the one hand, BBR
// uses pacing like our approach. On the other hand, BBR adjusts its
// sending rate such that loss should occur only during the
// probe-bandwidth phase." It runs the standard FN and FP scenarios with
// the TCP replays under Reno vs BBR and compares the loss-trend
// correlation outcomes and the replays' loss characteristics.
func ExtensionBBR(cfg Config) *Report {
	cfg.fill()
	trials := cfg.trials(4, 16)

	type row struct {
		name      string
		bbr       bool
		placement LimiterPlacement
		detects   int
		runs      int
		lossSum   float64
	}
	rows := []*row{
		{name: "Reno replays, common limiter (FN scenario)", bbr: false, placement: LimiterCommon},
		{name: "BBR replays, common limiter (FN scenario)", bbr: true, placement: LimiterCommon},
		{name: "Reno replays, independent limiters (FP scenario)", bbr: false, placement: LimiterNonCommon},
		{name: "BBR replays, independent limiters (FP scenario)", bbr: true, placement: LimiterNonCommon},
	}
	var specs []SimSpec
	for _, r := range rows {
		for i := 0; i < trials; i++ {
			specs = append(specs, SimSpec{
				App:         TCPBulkApp,
				InputFactor: 1.5,
				BgShare:     0.5,
				RTT1:        25 * time.Millisecond,
				RTT2:        60 * time.Millisecond,
				Placement:   r.placement,
				BBR:         r.bbr,
				Duration:    cfg.Duration,
				Seed:        specSeed(cfg.Seed, "extension-bbr", r.name, i),
			})
		}
	}
	type verdict struct {
		loss    float64
		detects bool
	}
	verdicts := ForEach(len(specs), cfg.workers(), func(i int) verdict {
		res := cfg.Sim(specs[i])
		v := verdict{loss: (res.M1.LossRate() + res.M2.LossRate()) / 2}
		if lt, err := core.LossTrendCorrelation(&res.M1, &res.M2, core.LossTrendConfig{}); err == nil && lt.CommonBottleneck {
			v.detects = true
		}
		return v
	})
	for idx, v := range verdicts {
		r := rows[idx/trials]
		r.runs++
		r.lossSum += v.loss
		if v.detects {
			r.detects++
		}
	}

	report := &Report{
		ID:    "extension-bbr",
		Title: "§7 open question: loss-trend correlation with BBR replay flows",
		Paper: "§7: BBR paces (helpful) but only loses during bandwidth probes (possibly harmful); the paper leaves the outcome open",
	}
	var tr [][]string
	for _, r := range rows {
		tr = append(tr, []string{
			r.name,
			pct(r.detects, r.runs),
			fmt.Sprintf("%.3f", r.lossSum/float64(r.runs)),
			fmt.Sprintf("%d", r.runs),
		})
	}
	report.Tables = []Table{{
		Header: []string{"scenario", "common bottleneck detected", "avg replay loss rate", "runs"},
		Rows:   tr,
	}}
	report.Notes = append(report.Notes,
		"FN scenarios should detect (high %), FP scenarios should not (≤5%); the BBR rows answer whether its loss pattern preserves the trend signal")
	return report
}
