package experiments

import (
	"errors"
	"sort"
	"time"

	"github.com/nal-epfl/wehey/internal/measure"
	"github.com/nal-epfl/wehey/internal/simcache"
)

// This file routes RunSim through internal/simcache. Since PR 1 a trial's
// randomness is a pure function of SimSpec (the seed is part of the
// spec), so RunSim(spec) is deterministic in spec alone — memoizing it is
// sound. The cache key is the SHA-256 of simCacheSchema plus a canonical
// binary encoding of the *filled* spec (appendSpec), so a spec relying on
// defaults and one spelling them out share an entry. SimResult round-trips
// through the exact binary codec of internal/measure: a result served
// from disk is bit-for-bit the result a recompute would produce,
// including map-valued fields (Drops) and nil-vs-empty slice identity.

// simCacheSchema stamps every cache key. Bump it whenever anything that
// RunSim's output depends on changes meaning: a SimSpec or SimResult
// field is added/removed/reinterpreted, the wire encoding changes, or the
// simulator's behaviour at a fixed spec changes (netsim, trace
// generation, calibration constants). Old entries then simply miss.
// TestSimCacheSchemaGuards pins the struct shapes this stamp covers.
// v2: SimSpec gained BackgroundMode + BgFlowRate, SimResult gained
// Events/BgEvents/BgFlows (PR 8's hybrid fluid background).
const simCacheSchema = "wehey/simcache/v2"

// SimCache memoizes RunSim results. Results handed out are shared:
// callers must not mutate them (the experiment generators only read).
type SimCache struct {
	inner *simcache.Cache[SimResult]
}

// NewSimCache returns an in-process (memory-only) simulation cache.
func NewSimCache() *SimCache {
	return &SimCache{inner: simcache.New[SimResult]()}
}

// NewDiskSimCache returns a simulation cache persisted under dir, so a
// later process skips every simulation this one ran.
func NewDiskSimCache(dir string) (*SimCache, error) {
	inner, err := simcache.NewDisk(dir, simcache.Codec[SimResult]{
		Encode: encodeResult,
		Decode: decodeResult,
	})
	if err != nil {
		return nil, err
	}
	return &SimCache{inner: inner}, nil
}

// Run returns RunSim(spec), computing it at most once per key: concurrent
// requests for the same spec single-flight onto one simulation.
func (sc *SimCache) Run(spec SimSpec) SimResult {
	spec.fill() // canonicalize before keying: defaulted == spelled out
	key := simcache.KeyOf(simCacheSchema, appendSpec(nil, &spec))
	return sc.inner.Get(key, func() SimResult { return RunSim(spec) })
}

// Stats snapshots the cache counters.
func (sc *SimCache) Stats() simcache.Stats { return sc.inner.Stats() }

// Sim runs one simulation through the configured cache, or directly when
// none is set. Generators call this (or Grid) instead of RunSim so a
// process-wide cache dedups identical trials across experiments.
func (c Config) Sim(spec SimSpec) SimResult {
	if c.BackgroundMode != "" && spec.BackgroundMode == "" {
		// The config-level mode is a default for specs that don't pin one;
		// experiments explicitly about the mode (ablation-scale) set it per
		// spec and win.
		spec.BackgroundMode = c.BackgroundMode
	}
	if c.Cache != nil {
		return c.Cache.Run(spec)
	}
	return RunSim(spec)
}

// Grid is the cache-aware RunGrid: every spec through Sim on the
// configured worker pool, results in submission order.
func (c Config) Grid(specs []SimSpec) []SimResult {
	return ForEach(len(specs), c.workers(), func(i int) SimResult {
		return c.Sim(specs[i])
	})
}

// appendSpec appends the canonical binary encoding of s — every field, in
// declaration order. TestSimCacheSchemaGuards fails if SimSpec grows a
// field without this encoder (and simCacheSchema) being updated.
func appendSpec(b []byte, s *SimSpec) []byte {
	b = measure.AppendString(b, s.App)
	b = measure.AppendFloat64(b, s.InputFactor)
	b = measure.AppendFloat64(b, s.QueueFactor)
	b = measure.AppendFloat64(b, s.BgShare)
	b = measure.AppendFloat64(b, s.BgAggregate)
	b = measure.AppendInt64(b, int64(s.RTT1))
	b = measure.AppendInt64(b, int64(s.RTT2))
	b = measure.AppendInt64(b, int64(s.Placement))
	b = measure.AppendFloat64(b, s.CongestionFactor)
	b = measure.AppendInt64(b, int64(s.Duration))
	b = appendBool(b, s.Unmodified)
	b = appendBool(b, s.BBR)
	b = measure.AppendString(b, s.BackgroundMode)
	b = measure.AppendFloat64(b, s.BgFlowRate)
	return measure.AppendInt64(b, s.Seed)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func decodeBool(b []byte) (bool, []byte, error) {
	if len(b) < 1 {
		return false, nil, measure.ErrTruncated
	}
	switch b[0] {
	case 0:
		return false, b[1:], nil
	case 1:
		return true, b[1:], nil
	}
	return false, nil, errors.New("experiments: invalid bool byte")
}

// encodeResult is the exact wire form of a SimResult, field by field in
// declaration order; the Drops map travels as sorted key/value pairs so
// the encoding is deterministic.
func encodeResult(r SimResult) []byte {
	b := measure.AppendPathBinary(nil, &r.M1)
	b = measure.AppendPathBinary(b, &r.M2)
	for i := range r.RetransRate {
		b = measure.AppendFloat64(b, r.RetransRate[i])
	}
	for i := range r.QueueDelay {
		b = measure.AppendInt64(b, int64(r.QueueDelay[i]))
	}
	for i := range r.LossRate {
		b = measure.AppendFloat64(b, r.LossRate[i])
	}
	for i := range r.Tput {
		b = measure.AppendThroughputBinary(b, r.Tput[i])
	}
	if r.Drops == nil {
		b = append(b, 0)
	} else {
		b = append(b, 1)
		keys := make([]string, 0, len(r.Drops))
		for k := range r.Drops {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b = measure.AppendUint64(b, uint64(len(keys)))
		for _, k := range keys {
			b = measure.AppendString(b, k)
			b = measure.AppendInt64(b, int64(r.Drops[k]))
		}
	}
	b = measure.AppendInt64(b, r.Events)
	b = measure.AppendInt64(b, r.BgEvents)
	return measure.AppendInt64(b, r.BgFlows)
}

// decodeResult inverts encodeResult. Any framing problem — truncation,
// trailing garbage, invalid tags — is an error (the cache treats it as a
// miss and recomputes); it can never yield a wrong result silently.
func decodeResult(b []byte) (SimResult, error) {
	var r SimResult
	var err error
	fail := func(err error) (SimResult, error) { return SimResult{}, err }
	if r.M1, b, err = measure.DecodePathBinary(b); err != nil {
		return fail(err)
	}
	if r.M2, b, err = measure.DecodePathBinary(b); err != nil {
		return fail(err)
	}
	for i := range r.RetransRate {
		if r.RetransRate[i], b, err = measure.DecodeFloat64(b); err != nil {
			return fail(err)
		}
	}
	for i := range r.QueueDelay {
		var v int64
		if v, b, err = measure.DecodeInt64(b); err != nil {
			return fail(err)
		}
		r.QueueDelay[i] = time.Duration(v)
	}
	for i := range r.LossRate {
		if r.LossRate[i], b, err = measure.DecodeFloat64(b); err != nil {
			return fail(err)
		}
	}
	for i := range r.Tput {
		if r.Tput[i], b, err = measure.DecodeThroughputBinary(b); err != nil {
			return fail(err)
		}
	}
	present, b, err := decodeBool(b)
	if err != nil {
		return fail(err)
	}
	if present {
		var n uint64
		if n, b, err = measure.DecodeUint64(b); err != nil {
			return fail(err)
		}
		if n > uint64(len(b)/16) { // ≥16 bytes per entry: 8-byte key length + 8-byte value
			return fail(measure.ErrTruncated)
		}
		r.Drops = make(map[string]int, n)
		for i := uint64(0); i < n; i++ {
			var k string
			var v int64
			if k, b, err = measure.DecodeString(b); err != nil {
				return fail(err)
			}
			if v, b, err = measure.DecodeInt64(b); err != nil {
				return fail(err)
			}
			r.Drops[k] = int(v)
		}
	}
	if r.Events, b, err = measure.DecodeInt64(b); err != nil {
		return fail(err)
	}
	if r.BgEvents, b, err = measure.DecodeInt64(b); err != nil {
		return fail(err)
	}
	if r.BgFlows, b, err = measure.DecodeInt64(b); err != nil {
		return fail(err)
	}
	if len(b) != 0 {
		return fail(errors.New("experiments: trailing bytes after SimResult"))
	}
	return r, nil
}
