package experiments

import (
	"strconv"
	"time"
)

// Grid encodes Table 2, the parameter grid of the emulation/simulation
// experiments. Bold (default) values first.
type Grid struct {
	InputFactors      []float64       // input traffic / rate
	QueueFactors      []float64       // queue size / burst
	BgShares          []float64       // % of background directed to limiter
	CongestionFactors []float64       // input traffic / link bandwidth
	RTT1s             []time.Duration // path 1 RTTs
	RTT2s             []time.Duration // path 2 RTTs
	UDPApps           []string
}

// DefaultGrid returns Table 2.
func DefaultGrid() Grid {
	return Grid{
		InputFactors:      []float64{1.5, 1.3, 2, 2.5},
		QueueFactors:      []float64{0.5, 0.25, 1},
		BgShares:          []float64{0.5, 0.25, 0.75},
		CongestionFactors: []float64{0.95, 1.05, 1.15},
		RTT1s:             []time.Duration{35 * time.Millisecond, 10 * time.Millisecond},
		RTT2s: []time.Duration{
			35 * time.Millisecond, 10 * time.Millisecond, 15 * time.Millisecond,
			25 * time.Millisecond, 60 * time.Millisecond, 120 * time.Millisecond,
		},
		UDPApps: []string{"skype", "whatsapp", "msteams", "zoom", "webex"},
	}
}

// AllApps returns the six trace pairs of §6.2 (one TCP + five UDP).
func (g Grid) AllApps() []string {
	return append([]string{TCPBulkApp}, g.UDPApps...)
}

// Table2 renders the parameter grid itself (the paper's Table 2 is a
// configuration table, not a measurement).
func Table2(cfg Config) *Report {
	g := DefaultGrid()
	r := &Report{
		ID:    "table2",
		Title: "Parameters for emulation/simulation experiments (defaults first)",
		Paper: "Table 2 lists the same ranges; bold defaults: input/rate 1.5, queue 0.5×burst, 50% background, RTTs 35 ms",
	}
	rows := [][]string{
		{"input/rate", fmtFloats(g.InputFactors)},
		{"queue (×burst)", fmtFloats(g.QueueFactors)},
		{"% of background", fmtFloats(g.BgShares)},
		{"input/link bandwidth", fmtFloats(g.CongestionFactors)},
		{"RTT1", fmtDurs(g.RTT1s)},
		{"RTT2", fmtDurs(g.RTT2s)},
		{"UDP trace pairs", joinStrings(g.UDPApps)},
		{"TCP trace pair", TCPBulkApp},
	}
	r.Tables = []Table{{Header: []string{"parameter", "values"}, Rows: rows}}
	return r
}

func fmtFloats(xs []float64) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += ", "
		}
		out += strconv.FormatFloat(x, 'g', -1, 64)
	}
	return out
}

func fmtDurs(ds []time.Duration) string {
	out := ""
	for i, d := range ds {
		if i > 0 {
			out += ", "
		}
		out += fms(d)
	}
	return out
}

func joinStrings(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ", "
		}
		out += s
	}
	return out
}
