package experiments

import (
	"fmt"
	"time"

	"github.com/nal-epfl/wehey/internal/core"
	"github.com/nal-epfl/wehey/internal/measure"
	"github.com/nal-epfl/wehey/internal/netsim"
)

// perFlowRun executes one simultaneous replay against per-flow throttling.
// merged presents both replays as one flow signature (the §7 trace
// modification); placement selects the shared device (common) vs the FP
// control (independent identical devices on the non-common links).
func perFlowRun(seed int64, merged bool, placement LimiterPlacement, dur time.Duration) (m1, m2 measure.Path, d1, d2 []measure.Delivery) {
	var eng netsim.Engine
	// Stops at a fixed horizon with timers still queued; Release recycles
	// the event queue and packet freelist for the next trial.
	defer eng.Release()
	const (
		rtt1      = 35 * time.Millisecond
		rtt2      = 42 * time.Millisecond // real paths are never twins
		rate      = 3e6                   // the per-flow plan rate
		replayApp = 6e6                   // replays offer more than the bucket allows
	)
	lim := &netsim.LimiterSpec{Rate: rate, Burst: netsim.BurstForRTT(rate, rtt2), Queue: netsim.BurstForRTT(rate, rtt2) / 2}

	common := netsim.CommonSpec{}
	paths := []netsim.PathSpec{{RTT: rtt1}, {RTT: rtt2}}
	if placement == LimiterCommon {
		common.PerFlowLimiter = lim
	} else {
		for i := range paths {
			paths[i].PerFlowLimiter = lim
		}
	}
	sc := netsim.NewScenario(&eng, seed, common, paths...)

	flows := [2]*netsim.TCPFlow{}
	for i := 0; i < 2; i++ {
		cfg := netsim.TCPConfig{
			Pacing:  true,
			Class:   netsim.ClassDifferentiated,
			AppRate: replayApp,
			Stop:    dur,
		}
		if merged {
			cfg.PolicyKey = "merged" // both replays present one flow signature
		}
		f := netsim.NewTCPFlow(&eng, i+1, cfg, sc.Entry(i), sc.BackDelay(i))
		flows[i] = f
		sc.Register(i+1, f.Receiver())
		// Staggered starts, as the client's back-to-back commands give.
		f.Start(time.Duration(i) * 120 * time.Millisecond)
	}
	eng.Run(dur + 2*time.Second)

	m1 = flows[0].Measurements(0, dur, rtt1)
	m2 = flows[1].Measurements(0, dur, rtt2)
	d1 = flows[0].Deliveries(0)
	d2 = flows[1].Deliveries(0)
	return m1, m2, d1, d2
}

// ExtensionPerFlow evaluates the §7 per-flow-throttling extension:
//
//   - baseline: per-flow policer on l_c, replays unmodified — WeHeY's
//     loss-trend correlation cannot find the (real) differentiation; this
//     is the §3.2 limitation, not a bug;
//   - extension: replays modified to share one flow signature — they
//     become the sole tenants of one bucket; the shared-fate detector
//     reads the resulting anti-correlated throughput as evidence;
//   - FP control: the same merged replays against *independent* identical
//     per-flow policers on l_1/l_2 — the shared-fate detector must stay
//     quiet.
func ExtensionPerFlow(cfg Config) *Report {
	cfg.fill()
	trials := cfg.trials(4, 16)
	dur := cfg.Duration
	if dur <= 0 {
		dur = 30 * time.Second
	}

	type row struct {
		name                 string
		merged               bool
		placement            LimiterPlacement
		lossTrend, sharedFat int
		runs                 int
	}
	rows := []*row{
		{name: "per-flow policer, unmodified replays", merged: false, placement: LimiterCommon},
		{name: "per-flow policer, merged replays (§7)", merged: true, placement: LimiterCommon},
		{name: "independent per-flow policers, merged (FP control)", merged: true, placement: LimiterNonCommon},
	}
	type verdict struct{ lossTrend, sharedFate bool }
	verdicts := ForEach(len(rows)*trials, cfg.workers(), func(idx int) verdict {
		r := rows[idx/trials]
		i := idx % trials
		seed := specSeed(cfg.Seed, "extension-perflow", r.name, i)
		m1, m2, d1, d2 := perFlowRun(seed, r.merged, r.placement, dur)
		var v verdict
		if lt, err := core.LossTrendCorrelation(&m1, &m2, core.LossTrendConfig{}); err == nil && lt.CommonBottleneck {
			v.lossTrend = true
		}
		if sf, err := core.SharedFateThroughput(d1, d2, dur, 42*time.Millisecond, core.SharedFateConfig{}); err == nil && sf.SharedBottleneck {
			v.sharedFate = true
		}
		return v
	})
	for idx, v := range verdicts {
		r := rows[idx/trials]
		r.runs++
		if v.lossTrend {
			r.lossTrend++
		}
		if v.sharedFate {
			r.sharedFat++
		}
	}

	report := &Report{
		ID:    "extension-perflow",
		Title: "§7 extension: localizing per-flow throttling via merged replays + shared-fate detection",
		Paper: "§3.2/§7: base WeHeY cannot localize per-flow throttling; merging the replays' flow identity makes them sole tenants of one bucket, requiring \"different statistical tools\"",
	}
	var tr [][]string
	for _, r := range rows {
		tr = append(tr, []string{
			r.name,
			pct(r.lossTrend, r.runs),
			pct(r.sharedFat, r.runs),
			fmt.Sprintf("%d", r.runs),
		})
	}
	report.Tables = []Table{{
		Header: []string{"scenario", "loss-trend detects", "shared-fate detects", "runs"},
		Rows:   tr,
	}}
	report.Notes = append(report.Notes,
		"expected shape: row 1 ≈ 0/0 (the documented limitation); row 2 shared-fate ≈ 100%; row 3 ≈ 0 (FP control)")
	return report
}
