package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the experiment execution engine: a deterministic seed
// derivation (specSeed) plus a worker pool (ForEach/RunGrid) that fans
// simulation runs out over GOMAXPROCS goroutines while keeping results in
// submission order. Every generator that sweeps RunSim over a parameter
// grid goes through here, so serial (-workers=1) and parallel (-workers=N)
// execution render byte-identical reports.

// specSeed derives the seed of one simulation run from its identity — the
// experiment it belongs to, the grid cell it occupies, and its trial index
// — rather than from a shared counter. This makes a run's randomness a
// function of *what* it is, not *when* it ran: trimming the grid,
// reordering loops, or executing cells concurrently leaves every surviving
// run's seed unchanged.
//
// The derivation chains an FNV-1a hash of the strings through splitmix64
// finalizers, which gives well-mixed 64-bit outputs with no measurable
// collision risk at grid scale (thousands of cells).
func specSeed(base int64, experimentID, cellKey string, trial int) int64 {
	h := splitmix64(uint64(base))
	h = splitmix64(h ^ hash64(experimentID))
	h = splitmix64(h ^ hash64(cellKey))
	h = splitmix64(h ^ uint64(int64(trial)))
	return int64(h)
}

// splitmix64 is the SplitMix64 finalizer: a cheap bijective mixer whose
// output passes BigCrush even on sequential inputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash64 is FNV-1a over s.
func hash64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// workers resolves the worker-pool width: an explicit Config.Workers wins,
// otherwise every available core.
func (c *Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach evaluates fn(i) for every i in [0, n) on up to workers
// goroutines and returns the results indexed by i — submission order,
// regardless of completion order. fn must be safe to call concurrently:
// in particular each call must build its own netsim.Engine and *rand.Rand
// (RunSim already does) and must not write shared state.
func ForEach[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	if n == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// RunGrid executes every spec through RunSim on a pool of workers
// goroutines and returns the results in submission order. Seeds must
// already be set (normally via specSeed), so the output is independent of
// the worker count. This is the uncached path; generators go through
// Config.Grid, which consults Config.Cache first (see cache.go).
func RunGrid(specs []SimSpec, workers int) []SimResult {
	return ForEach(len(specs), workers, func(i int) SimResult {
		return RunSim(specs[i])
	})
}
