package experiments

import (
	"fmt"
	"time"

	"github.com/nal-epfl/wehey/internal/core"
)

// scaleArm is one row of the fluid-background scale ablation.
type scaleArm struct {
	label     string
	aggregate float64 // BgAggregate, bits/s
	mode      string
	flowRate  float64 // BgFlowRate, bits/s
}

// scaleArms defines the ablation grid: the historical 32 Mbit/s scaled-down
// aggregate in both background modes (the equivalence anchor), and the
// paper's full CAIDA-replay scale — 168 Mbit/s with ~400 concurrent flows —
// which only the fluid mode can run routinely.
func scaleArms() []scaleArm {
	return []scaleArm{
		{"32 Mbit/s, packet bg (baseline)", 32e6, BgModePacket, 8e6},
		{"32 Mbit/s, fluid bg", 32e6, BgModeFluid, 8e6},
		{"168 Mbit/s, fluid bg, 105 kbit/s flows", 168e6, BgModeFluid, 105e3},
	}
}

// scaleStats aggregates one arm's trials.
type scaleStats struct {
	events, bgEvents float64 // per-trial means
	peakFlows        int64
	detected, trials int
}

// scaleProjection projects the packet-mode background event count of a
// 168 Mbit/s run from the measured 32 Mbit/s arms: packet-mode events
// minus the foreground events observed in the fluid run of the identical
// spec isolates the per-packet background cost, which scales linearly
// with the aggregate rate (packet-event count ∝ packets offered).
func scaleProjection(packet32, fluid32 scaleStats) float64 {
	fg32 := fluid32.events - fluid32.bgEvents // foreground cost, mode-independent
	return (packet32.events - fg32) * (168e6 / 32e6)
}

// ScaleReduction computes the headline number of the ablation: projected
// packet-mode background events divided by measured fluid background
// events at 168 Mbit/s — how many simulated events the fluid background
// saves at full rate.
func ScaleReduction(packet32, fluid32, fluid168 scaleStats) float64 {
	if !(fluid168.bgEvents > 0) {
		return 0
	}
	return scaleProjection(packet32, fluid32) / fluid168.bgEvents
}

// runScaleArms simulates every arm × trial and aggregates. Shared by the
// report generator and the regression test that pins the ≥50x target.
func runScaleArms(cfg Config) []scaleStats {
	arms := scaleArms()
	trials := cfg.trials(1, 3)
	var specs []SimSpec
	for _, a := range arms {
		for i := 0; i < trials; i++ {
			specs = append(specs, SimSpec{
				App:            TCPBulkApp,
				BgAggregate:    a.aggregate,
				BackgroundMode: a.mode,
				BgFlowRate:     a.flowRate,
				Duration:       cfg.Duration,
				Seed:           specSeed(cfg.Seed, "ablation-scale", a.label, i),
			})
		}
	}
	runs := cfg.Grid(specs)
	stats := make([]scaleStats, len(arms))
	for ai := range arms {
		st := &stats[ai]
		for i := 0; i < trials; i++ {
			r := &runs[ai*trials+i]
			st.events += float64(r.Events)
			st.bgEvents += float64(r.BgEvents)
			if r.BgFlows > st.peakFlows {
				st.peakFlows = r.BgFlows
			}
			st.trials++
			if lt, err := core.LossTrendCorrelation(&r.M1, &r.M2, core.LossTrendConfig{}); err == nil && lt.CommonBottleneck {
				st.detected++
			}
		}
		st.events /= float64(trials)
		st.bgEvents /= float64(trials)
	}
	return stats
}

// AblationScale runs the hybrid-background scale ablation of DESIGN.md §14:
// the same common-bottleneck scenario at the scaled-down 32 Mbit/s aggregate
// (packet and fluid) and at the paper's 168 Mbit/s with ~400 concurrent
// background flows (fluid only — packet mode at that rate is projected, not
// run). Registered outside the default set: `wehey-experiments -run
// ablation-scale`; RunAll output is unchanged.
func AblationScale(cfg Config) *Report {
	cfg.fill()
	if cfg.Duration <= 0 {
		// Full-rate trials are foreground-bound; the default 45 s replay is
		// unnecessary for an event-count comparison.
		cfg.Duration = 20 * time.Second
	}
	arms := scaleArms()
	stats := runScaleArms(cfg)
	rows := make([][]string, len(arms))
	for i, a := range arms {
		st := stats[i]
		rows[i] = []string{
			a.label,
			fmt.Sprintf("%.0f", st.events),
			fmt.Sprintf("%.0f", st.bgEvents),
			fmt.Sprintf("%d", st.peakFlows),
			pct(st.detected, st.trials),
		}
	}
	red := ScaleReduction(stats[0], stats[1], stats[2])
	return &Report{
		ID:    "ablation-scale",
		Title: "Ablation: hybrid fluid background at paper scale (DESIGN.md §14)",
		Paper: "§6.1 replays a 168 Mbit/s CAIDA aggregate (~400 concurrent flows); the repo's packet-mode default scales it down to 32 Mbit/s",
		Tables: []Table{{
			Header: []string{"scenario", "events/trial", "bg events/trial", "peak bg flows", "detected"},
			Rows:   rows,
		}},
		Notes: []string{
			fmt.Sprintf("projected packet-mode background events at 168 Mbit/s: %.0f (32 Mbit/s packet cost scaled by rate)",
				scaleProjection(stats[0], stats[1])),
			fmt.Sprintf("fluid background reduces simulated background events %.0fx at full rate (target ≥50x)", red),
		},
	}
}
