package experiments

import (
	"fmt"
	"time"

	"github.com/nal-epfl/wehey/internal/core"
)

// Figure7 reproduces the severe-throttling limit study (§6.3): TCP
// simultaneous replays with RTTs ≈35 ms and increasingly harsh throttling
// (higher input/rate factors, larger background shares). Each experiment
// becomes one point (average retransmission rate, average queueing delay),
// classified as true positive or false negative. The paper's finding: FN
// concentrates above ~20% retransmission rate, where too-frequent losses
// desynchronize the two flows beyond what pacing can absorb.
func Figure7(cfg Config) *Report {
	cfg.fill()
	seeds := cfg.trials(1, 4)
	// Push beyond the Table 2 grid: the paper's severe-throttling study
	// reaches 50% retransmission rates.
	factors := []float64{1.5, 2, 2.5, 3.5, 5, 6.5, 8}
	shares := DefaultGrid().BgShares

	type point struct {
		retrans float64
		delay   time.Duration
		fn      bool
	}
	var specs []SimSpec
	for _, f := range factors {
		for _, share := range shares {
			for s := 0; s < seeds; s++ {
				specs = append(specs, SimSpec{
					App:         TCPBulkApp,
					InputFactor: f,
					BgShare:     share,
					RTT1:        35 * time.Millisecond,
					RTT2:        35 * time.Millisecond,
					Duration:    cfg.Duration,
					Seed:        specSeed(cfg.Seed, "figure7", fmt.Sprintf("f=%g/share=%g", f, share), s),
				})
			}
		}
	}
	type outcome struct {
		p  point
		ok bool
	}
	outcomes := ForEach(len(specs), cfg.workers(), func(i int) outcome {
		res := cfg.Sim(specs[i])
		lt, err := core.LossTrendCorrelation(&res.M1, &res.M2, core.LossTrendConfig{})
		if err != nil {
			return outcome{}
		}
		return outcome{ok: true, p: point{
			retrans: (res.RetransRate[0] + res.RetransRate[1]) / 2,
			delay:   (res.QueueDelay[0] + res.QueueDelay[1]) / 2,
			fn:      !lt.CommonBottleneck,
		}}
	})
	var points []point
	for _, o := range outcomes {
		if o.ok {
			points = append(points, o.p)
		}
	}

	var tpX, tpY, fnX, fnY []float64
	var fnLow, fnHigh, nLow, nHigh int
	for _, p := range points {
		x := p.retrans * 100
		y := float64(p.delay) / float64(time.Millisecond)
		if p.retrans > 0.2 {
			nHigh++
			if p.fn {
				fnHigh++
			}
		} else {
			nLow++
			if p.fn {
				fnLow++
			}
		}
		if p.fn {
			fnX = append(fnX, x)
			fnY = append(fnY, y)
		} else {
			tpX = append(tpX, x)
			tpY = append(tpY, y)
		}
	}

	return &Report{
		ID:    "figure7",
		Title: "False negatives vs TCP retransmission rate under severe throttling (RTT ≈ 35 ms)",
		Paper: "Figure 7 + §6.3: overall FN 19.2%, concentrated above 20% retransmission rate",
		Series: []Series{
			{Name: "true positives", XLabel: "avg retransmission rate (%)", YLabel: "avg queueing delay (ms)", X: tpX, Y: tpY},
			{Name: "false negatives", XLabel: "avg retransmission rate (%)", YLabel: "avg queueing delay (ms)", X: fnX, Y: fnY},
		},
		Notes: []string{
			fmt.Sprintf("FN with retrans ≤ 20%%: %s (%d runs); FN with retrans > 20%%: %s (%d runs); overall %s",
				pct(fnLow, nLow), nLow, pct(fnHigh, nHigh), nHigh, pct(fnLow+fnHigh, nLow+nHigh)),
		},
	}
}
