package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/nal-epfl/wehey/internal/core"
	"github.com/nal-epfl/wehey/internal/isp"
	"github.com/nal-epfl/wehey/internal/measure"
)

// ablationRuns generates a pool of FN-scenario and FP-scenario
// measurements shared by the detector ablations. The pool deliberately
// includes stressful configurations (severe throttling, asymmetric RTTs):
// at the easy defaults every design variant succeeds and the ablation
// would show nothing.
func ablationRuns(cfg Config) (fnRuns, fpRuns []SimResult) {
	trials := cfg.trials(2, 6)
	var fnSpecs, fpSpecs []SimSpec
	for _, f := range []float64{1.5, 2.5, 4} {
		for _, share := range []float64{0.5, 0.75} {
			for i := 0; i < trials; i++ {
				base := SimSpec{
					App: TCPBulkApp, InputFactor: f, BgShare: share,
					RTT1: 25 * time.Millisecond, RTT2: 60 * time.Millisecond,
					Duration: cfg.Duration,
				}
				cell := fmt.Sprintf("f=%g/share=%g", f, share)
				fn := base
				fn.Seed = specSeed(cfg.Seed, "ablation/fn", cell, i)
				fnSpecs = append(fnSpecs, fn)
				fp := base
				fp.Placement = LimiterNonCommon
				fp.Seed = specSeed(cfg.Seed, "ablation/fp", cell, i)
				fpSpecs = append(fpSpecs, fp)
			}
		}
	}
	all := cfg.Grid(append(append([]SimSpec(nil), fnSpecs...), fpSpecs...))
	return all[:len(fnSpecs)], all[len(fnSpecs):]
}

func countVerdicts(runs []SimResult, cfg core.LossTrendConfig) (positives int) {
	for i := range runs {
		lt, err := core.LossTrendCorrelation(&runs[i].M1, &runs[i].M2, cfg)
		if err == nil && lt.CommonBottleneck {
			positives++
		}
	}
	return positives
}

// AblationCorrelation compares Alg. 1's Spearman correlation against a
// Pearson variant on the same measurements. Spearman is the paper's choice
// for its rank-based outlier robustness.
func AblationCorrelation(cfg Config) *Report {
	cfg.fill()
	fnRuns, fpRuns := ablationRuns(cfg)
	rows := [][]string{}
	for _, v := range []struct {
		name string
		kind core.CorrelationKind
	}{
		{"Spearman (paper)", core.SpearmanCorrelation},
		{"Pearson", core.PearsonCorrelation},
	} {
		c := core.LossTrendConfig{Correlation: v.kind}
		tp := countVerdicts(fnRuns, c)
		fp := countVerdicts(fpRuns, c)
		rows = append(rows, []string{
			v.name,
			pct(len(fnRuns)-tp, len(fnRuns)),
			pct(fp, len(fpRuns)),
		})
	}
	return &Report{
		ID:     "ablation-correlation",
		Title:  "Ablation: correlation statistic in the loss-trend algorithm",
		Paper:  "§4.2 picks Spearman for rank-based outlier robustness",
		Tables: []Table{{Header: []string{"statistic", "FN", "FP"}, Rows: rows}},
	}
}

// AblationIntervals compares the 10–50 RTT interval sweep against single
// interval sizes (the sweep is the paper's guard against picking a bad σ).
func AblationIntervals(cfg Config) *Report {
	cfg.fill()
	fnRuns, fpRuns := ablationRuns(cfg)
	rows := [][]string{}
	for _, v := range []struct {
		name         string
		lo, hi, step int
	}{
		{"sweep 10–50 RTT (paper)", 10, 50, 5},
		{"single σ = 10 RTT", 10, 10, 5},
		{"single σ = 50 RTT", 50, 50, 5},
	} {
		c := core.LossTrendConfig{LoRTTs: v.lo, HiRTTs: v.hi, StepRTTs: v.step}
		tp := countVerdicts(fnRuns, c)
		fp := countVerdicts(fpRuns, c)
		rows = append(rows, []string{v.name, pct(len(fnRuns)-tp, len(fnRuns)), pct(fp, len(fpRuns))})
	}
	return &Report{
		ID:     "ablation-intervals",
		Title:  "Ablation: interval-size sweep vs a single interval size",
		Paper:  "§4.2: iterating over sizes makes the algorithm conservative toward false positives",
		Tables: []Table{{Header: []string{"interval policy", "FN", "FP"}, Rows: rows}},
	}
}

// AblationVote compares the paper's >1−FP vote threshold against a simple
// majority vote across interval sizes.
func AblationVote(cfg Config) *Report {
	cfg.fill()
	fnRuns, fpRuns := ablationRuns(cfg)
	majority := func(runs []SimResult) int {
		positives := 0
		for i := range runs {
			lt, err := core.LossTrendCorrelation(&runs[i].M1, &runs[i].M2, core.LossTrendConfig{})
			if err != nil {
				continue
			}
			if lt.Sizes > 0 && lt.Correlations*2 > lt.Sizes {
				positives++
			}
		}
		return positives
	}
	strict := core.LossTrendConfig{}
	rows := [][]string{
		{"all sizes must correlate (paper)",
			pct(len(fnRuns)-countVerdicts(fnRuns, strict), len(fnRuns)),
			pct(countVerdicts(fpRuns, strict), len(fpRuns))},
		{"majority of sizes",
			pct(len(fnRuns)-majority(fnRuns), len(fnRuns)),
			pct(majority(fpRuns), len(fpRuns))},
	}
	return &Report{
		ID:     "ablation-vote",
		Title:  "Ablation: vote threshold across interval sizes",
		Paper:  "§4.2: requiring a 1−FP fraction keeps the FP rate at the target at the cost of some FN",
		Tables: []Table{{Header: []string{"decision rule", "FN", "FP"}, Rows: rows}},
	}
}

// AblationMWU compares the Mann-Whitney U test of §4.1 against KS- and
// Welch-based variants on per-client vs alternative scenarios.
func AblationMWU(cfg Config) *Report {
	cfg.fill()
	trials := cfg.trials(8, 24)
	rng := rand.New(rand.NewSource(cfg.Seed + 9500))
	tdiff := cellularTDiff(rng)
	dur := cfg.Duration
	if dur <= 0 {
		dur = 20 * time.Second
	}
	p := isp.FiveISPs()[0]

	// Outlier contamination: WeHe's historical data has occasional wild
	// relative differences (network blips, app restarts). The paper picks
	// MWU over KS and the t-test precisely for robustness to these.
	contaminate := func(td []float64, rng *rand.Rand) []float64 {
		out := append([]float64(nil), td...)
		for i := range out {
			if rng.Float64() < 0.08 {
				out[i] = 2 + 3*rng.Float64() // wild historical outlier
				if rng.Intn(2) == 0 {
					out[i] = -out[i]
				}
			}
		}
		return out
	}

	type counts struct{ fn, fp, fnDirty, fpDirty, runs int }
	variants := []struct {
		name string
		test core.ThroughputTest
	}{
		{"Mann-Whitney U (paper)", core.MWUTest},
		{"Kolmogorov-Smirnov", core.KSTest},
		{"Welch t", core.WelchTest},
	}
	perTrial := ForEach(trials, cfg.workers(), func(i int) []counts {
		trng := rand.New(rand.NewSource(specSeed(cfg.Seed, "ablation-mwu", "trial", i)))
		trig := p.DrawTrigger(trng)
		single := p.Replays(trng.Int63(), dur, trig, 1, true)
		sim := p.Replays(trng.Int63(), dur, trig, 2, true)
		sim3 := p.Replays(trng.Int63(), dur, trig, 3, true)
		x := single[0].Throughput.Samples
		y := measure.SumSamples(sim[0].Throughput.Samples, sim[1].Throughput.Samples)
		ySanity := measure.SumSamples(sim3[0].Throughput.Samples, sim3[1].Throughput.Samples)
		dirty := contaminate(tdiff, trng)
		tally := make([]counts, len(variants))
		for vi, v := range variants {
			c := core.ThroughputCmpConfig{Test: v.test}
			if res, err := core.ThroughputComparison(trng, x, y, tdiff, c); err == nil {
				tally[vi].runs++
				if !res.CommonBottleneck {
					tally[vi].fn++
				}
			}
			if res, err := core.ThroughputComparison(trng, x, ySanity, tdiff, c); err == nil {
				if res.CommonBottleneck {
					tally[vi].fp++
				}
			}
			if res, err := core.ThroughputComparison(trng, x, y, dirty, c); err == nil {
				if !res.CommonBottleneck {
					tally[vi].fnDirty++
				}
			}
			if res, err := core.ThroughputComparison(trng, x, ySanity, dirty, c); err == nil {
				if res.CommonBottleneck {
					tally[vi].fpDirty++
				}
			}
		}
		return tally
	})
	tally := make([]counts, len(variants))
	for _, tt := range perTrial {
		for vi := range tally {
			tally[vi].fn += tt[vi].fn
			tally[vi].fp += tt[vi].fp
			tally[vi].fnDirty += tt[vi].fnDirty
			tally[vi].fpDirty += tt[vi].fpDirty
			tally[vi].runs += tt[vi].runs
		}
	}
	rows := [][]string{}
	for vi, v := range variants {
		rows = append(rows, []string{
			v.name,
			pct(tally[vi].fn, tally[vi].runs), pct(tally[vi].fp, tally[vi].runs),
			pct(tally[vi].fnDirty, tally[vi].runs), pct(tally[vi].fpDirty, tally[vi].runs),
		})
	}
	return &Report{
		ID:    "ablation-mwu",
		Title: "Ablation: hypothesis test in the throughput comparison",
		Paper: "§4.1 rejects the T-test (distributional assumptions) and KS (outlier sensitivity) in favour of MWU",
		Tables: []Table{{
			Header: []string{"test", "FN", "FP", "FN (outliers in T_diff)", "FP (outliers in T_diff)"},
			Rows:   rows,
		}},
		Notes: []string{fmt.Sprintf("%d per-client and %d sanity-check runs per variant; the outlier columns contaminate 8%% of T_diff with wild values", trials, trials)},
	}
}

// AblationPacing isolates the §3.4 trace modifications: the FN rate of the
// loss-trend algorithm with paced vs unpaced TCP and Poisson vs recorded
// UDP timing (a compact view of Figure 6's message).
func AblationPacing(cfg Config) *Report {
	cfg.fill()
	trials := cfg.trials(3, 12)
	rows := [][]string{}
	variants := []struct {
		app      string
		modified bool
		label    string
	}{
		{TCPBulkApp, true, "TCP paced (paper)"},
		{TCPBulkApp, false, "TCP unpaced"},
		{"zoom", true, "UDP Poisson (paper)"},
		{"zoom", false, "UDP recorded timing"},
	}
	var specs []SimSpec
	for _, v := range variants {
		for i := 0; i < trials; i++ {
			specs = append(specs, SimSpec{
				App: v.app, InputFactor: 1.5, BgShare: 0.5,
				Unmodified: !v.modified, Duration: cfg.Duration,
				Seed: specSeed(cfg.Seed, "ablation-pacing", v.label, i),
			})
		}
	}
	fnFlags := ForEach(len(specs), cfg.workers(), func(i int) bool {
		res := cfg.Sim(specs[i])
		lt, err := core.LossTrendCorrelation(&res.M1, &res.M2, core.LossTrendConfig{})
		return err != nil || !lt.CommonBottleneck
	})
	for vi, v := range variants {
		fn := 0
		for _, miss := range fnFlags[vi*trials : (vi+1)*trials] {
			if miss {
				fn++
			}
		}
		rows = append(rows, []string{v.label, pct(fn, trials)})
	}
	return &Report{
		ID:     "ablation-pacing",
		Title:  "Ablation: replay modifications (TCP pacing, UDP Poisson retiming)",
		Paper:  "Figure 6: unmodified traces add 3–11% FN on top of the algorithm choice",
		Tables: []Table{{Header: []string{"replay mode", "FN"}, Rows: rows}},
	}
}
