package experiments

import (
	"fmt"
	"math/rand"

	"github.com/nal-epfl/wehey/internal/topology"
)

// TopologyYield reproduces the §3.3 statistics: running the
// topology-construction module over a month's worth of traceroutes, the
// fraction of clients with at least one complete traceroute, and — among
// those — the fraction with at least one suitable topology.
func TopologyYield(cfg Config) *Report {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	spec := topology.SynthSpec{}
	if cfg.Full {
		spec.ISPs = 30
		spec.ClientsPerISP = 60
		spec.Servers = 12
	}
	net := topology.Synthesize(rng, spec)
	clients := make([]string, len(net.Clients))
	for i, c := range net.Clients {
		clients[i] = c.IP
	}
	stats, db := topology.Yield(net.Raws, net.Annotations, clients)

	return &Report{
		ID:    "topoyield",
		Title: "Topology-construction yield over one month of traceroutes",
		Paper: "§3.3: ≥1 complete traceroute for 52% of WeHe clients; ≥1 suitable topology for 74% of those (a lower bound)",
		Tables: []Table{{
			Header: []string{"metric", "value"},
			Rows: [][]string{
				{"clients", fmt.Sprintf("%d", stats.Clients)},
				{"traceroutes ingested", fmt.Sprintf("%d", len(net.Raws))},
				{"traceroutes discarded by filters", fmt.Sprintf("%d", stats.Discarded)},
				{"clients with ≥1 complete traceroute", pct(stats.WithCompleteTraceroute, stats.Clients)},
				{"of those, with ≥1 suitable topology", pct(stats.WithSuitableTopology, stats.WithCompleteTraceroute)},
				{"topology DB prefixes", fmt.Sprintf("%d", db.Len())},
			},
		}},
		Notes: []string{
			"synthetic Internet: ICMP-filtering ISPs, IP aliasing, and truncated traceroutes drive the filter discards",
		},
	}
}
