package experiments

import (
	"testing"
	"time"

	"github.com/nal-epfl/wehey/internal/core"
)

func TestRunSimFNRegimeTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("45 s simulation")
	}
	misses := 0
	for seed := int64(1); seed <= 3; seed++ {
		res := RunSim(SimSpec{App: TCPBulkApp, InputFactor: 1.5, BgShare: 0.5, Seed: seed})
		lt, err := core.LossTrendCorrelation(&res.M1, &res.M2, core.LossTrendConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if !lt.CommonBottleneck {
			misses++
			t.Logf("seed %d: missed (%d/%d), loss rates %.3f/%.3f",
				seed, lt.Correlations, lt.Sizes, res.M1.LossRate(), res.M2.LossRate())
		}
	}
	if misses > 0 {
		t.Errorf("FN = %d/3 on the default §6.2 configuration; paper reports FN = 0", misses)
	}
}

func TestRunSimFNRegimeUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("45 s simulation")
	}
	res := RunSim(SimSpec{App: "zoom", InputFactor: 1.5, BgShare: 0.5, Seed: 7})
	lt, err := core.LossTrendCorrelation(&res.M1, &res.M2, core.LossTrendConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !lt.CommonBottleneck {
		t.Errorf("UDP FN on default config (%d/%d), loss %.3f/%.3f",
			lt.Correlations, lt.Sizes, res.M1.LossRate(), res.M2.LossRate())
	}
}

func TestRunSimFPRegime(t *testing.T) {
	if testing.Short() {
		t.Skip("45 s simulations")
	}
	positives := 0
	const trials = 4
	for seed := int64(10); seed < 10+trials; seed++ {
		res := RunSim(SimSpec{App: TCPBulkApp, InputFactor: 1.5, BgShare: 0.5,
			Placement: LimiterNonCommon, Seed: seed})
		if res.Drops["tbf_c"] != 0 {
			t.Fatal("FP topology dropped at a (nonexistent) common limiter")
		}
		if res.Drops["tbf_1"] == 0 || res.Drops["tbf_2"] == 0 {
			t.Fatal("path limiters did not throttle")
		}
		lt, err := core.LossTrendCorrelation(&res.M1, &res.M2, core.LossTrendConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if lt.CommonBottleneck {
			positives++
		}
	}
	if positives > 1 {
		t.Errorf("FP = %d/%d under identical independent limiters; target ≤5%%", positives, trials)
	}
}

func TestRunSimCongestion(t *testing.T) {
	if testing.Short() {
		t.Skip("45 s simulation")
	}
	res := RunSim(SimSpec{App: TCPBulkApp, InputFactor: 1.5, BgShare: 0.5,
		CongestionFactor: 1.15, Seed: 3, Duration: 20 * time.Second})
	if res.Drops["link_1"] == 0 && res.Drops["link_2"] == 0 {
		t.Error("congested non-common links dropped nothing")
	}
}
