package experiments

import (
	"fmt"
	"time"

	"github.com/nal-epfl/wehey/internal/measure"
	"github.com/nal-epfl/wehey/internal/tomo"
)

// Figure3 reproduces the binary-tomography parameter-sensitivity
// demonstration (§4.3): two long-running TCP flows share a rate limiter on
// the common link (average loss ≈ 4%, sole loss cause); panel (a) shows
// the two paths' loss rates over time (σ = 0.6 s), panel (b) the link
// performance BinLossTomo infers as a function of the loss threshold τ —
// with the characteristic crossing of the x_c and x_1 curves as τ
// approaches the true average loss rate.
func Figure3(cfg Config) *Report {
	cfg.fill()
	dur := cfg.Duration
	if dur <= 0 {
		dur = 30 * time.Second // the figure's measurement duration
	}
	// Input factor calibrated for ≈4% average loss on the default mix.
	res := cfg.Sim(SimSpec{
		App:         TCPBulkApp,
		InputFactor: 1.5,
		BgShare:     0.5,
		Duration:    dur,
		Seed:        cfg.Seed,
	})

	report := &Report{
		ID:    "figure3",
		Title: "Loss rates over time and BinLossTomo's inferred link performance vs loss threshold",
		Paper: "Figure 3: x_1 should be flat at 100% and x_c monotone, but the curves dip and cross near τ = the true loss rate",
	}

	// (a) loss-rate time series at σ = 0.6 s.
	const sigma = 600 * time.Millisecond
	r1, r2 := measure.FilteredLossRates(&res.M1, &res.M2, sigma, measure.MinPacketsPerInterval)
	ts := make([]float64, len(r1))
	for i := range ts {
		ts[i] = float64(i) * sigma.Seconds()
	}
	report.Series = append(report.Series,
		Series{Name: "(a) p1 loss rate", XLabel: "time (s)", YLabel: "loss rate", X: ts, Y: r1},
		Series{Name: "(a) p2 loss rate", XLabel: "time (s)", YLabel: "loss rate", X: append([]float64(nil), ts...), Y: r2},
	)

	// (b) inferred performance vs τ.
	avgLoss := (res.M1.LossRate() + res.M2.LossRate()) / 2
	var taus, xcs, x1s, x2s []float64
	for tau := avgLoss / 8; tau <= avgLoss*2; tau += avgLoss / 16 {
		perf, ok := tomo.BinLossTomo(&res.M1, &res.M2, sigma, tau)
		if !ok {
			continue
		}
		taus = append(taus, tau)
		xcs = append(xcs, perf.Xc*100)
		x1s = append(x1s, perf.X1*100)
		x2s = append(x2s, perf.X2*100)
	}
	report.Series = append(report.Series,
		Series{Name: "(b) x_c (common link)", XLabel: "loss threshold τ", YLabel: "inferred performance (%)", X: taus, Y: xcs},
		Series{Name: "(b) x_1 (non-common link)", XLabel: "loss threshold τ", YLabel: "inferred performance (%)", X: append([]float64(nil), taus...), Y: x1s},
		Series{Name: "(b) x_2 (non-common link)", XLabel: "loss threshold τ", YLabel: "inferred performance (%)", X: append([]float64(nil), taus...), Y: x2s},
	)

	// Quantify the pathology: gap at a good threshold vs near the mean.
	goodGap, badGap := fig3Gaps(&res.M1, &res.M2, sigma, avgLoss)
	report.Notes = append(report.Notes,
		fmt.Sprintf("average measured loss rate = %.4f (paper: 0.04)", avgLoss),
		fmt.Sprintf("x_1−x_c gap at τ=loss/3: %.3f; near τ=loss: %.3f (the shrinking gap is the Figure 3b failure)", goodGap, badGap),
	)
	return report
}

func fig3Gaps(m1, m2 *measure.Path, sigma time.Duration, avgLoss float64) (good, bad float64) {
	if perf, ok := tomo.BinLossTomo(m1, m2, sigma, avgLoss/3); ok {
		good = perf.X1 - perf.Xc
	}
	if perf, ok := tomo.BinLossTomo(m1, m2, sigma, avgLoss); ok {
		bad = perf.X1 - perf.Xc
	}
	return good, bad
}
