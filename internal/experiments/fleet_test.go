package experiments

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

// TestFleetCampaignSchemaGuards pins the shape fleetCacheSchema covers: if
// FleetCampaignSpec grows, shrinks, or reorders fields, this fails until
// appendFleetSpec is extended AND fleetCacheSchema is bumped.
func TestFleetCampaignSchemaGuards(t *testing.T) {
	if n := reflect.TypeOf(FleetCampaignSpec{}).NumField(); n != 9 {
		t.Errorf("FleetCampaignSpec has %d fields, appendFleetSpec encodes 9: extend appendFleetSpec and bump fleetCacheSchema", n)
	}
	if fleetCacheSchema != "wehey/fleetcache/v1" {
		t.Log("fleetCacheSchema bumped; confirm the field count in this test was revisited")
	}
}

func TestAppendFleetSpecCanonicalizesDefaults(t *testing.T) {
	// A spec leaning on fill() defaults and one spelling them out must
	// share a cache key; index lists canonicalize (order, duplicates).
	sparse := FleetCampaignSpec{ThrottledISPs: []int{5, 2, 5}, Seed: 7}
	sparse.fill()
	explicit := FleetCampaignSpec{
		ISPs: 12, Servers: 8, ThrottledISPs: []int{2, 5}, Sessions: 2048,
		App: TCPBulkApp, Duration: 45 * time.Second, SeedPool: 32, Seed: 7,
	}
	explicit.fill()
	if !bytes.Equal(appendFleetSpec(nil, &sparse), appendFleetSpec(nil, &explicit)) {
		t.Error("filled defaulted spec and explicit-default spec encode differently")
	}
	// ...while every real parameter change must change the encoding.
	base := appendFleetSpec(nil, &explicit)
	for name, mut := range map[string]func(*FleetCampaignSpec){
		"ISPs":          func(s *FleetCampaignSpec) { s.ISPs = 24 },
		"Servers":       func(s *FleetCampaignSpec) { s.Servers = 4 },
		"ThrottledISPs": func(s *FleetCampaignSpec) { s.ThrottledISPs = []int{2, 6} },
		"StarvedISPs":   func(s *FleetCampaignSpec) { s.StarvedISPs = []int{11} },
		"Sessions":      func(s *FleetCampaignSpec) { s.Sessions = 4096 },
		"App":           func(s *FleetCampaignSpec) { s.App = "zoom" },
		"Duration":      func(s *FleetCampaignSpec) { s.Duration = 60 * time.Second },
		"SeedPool":      func(s *FleetCampaignSpec) { s.SeedPool = 16 },
		"Seed":          func(s *FleetCampaignSpec) { s.Seed = 8 },
	} {
		mod := explicit
		mut(&mod)
		if bytes.Equal(base, appendFleetSpec(nil, &mod)) {
			t.Errorf("changing %s did not change the spec encoding", name)
		}
	}
}

// TestSessionPlanDeterminism: the plan is a pure function of the spec —
// same spec, same plan — and starved ISPs really get zero sessions while
// every other ISP gets an even share and full server rotation.
func TestSessionPlanDeterminism(t *testing.T) {
	spec := FleetCampaignSpec{
		ThrottledISPs: []int{3},
		StarvedISPs:   []int{7},
		Sessions:      2200,
		Seed:          42,
	}
	plan := spec.SessionPlan()
	if !reflect.DeepEqual(plan, spec.SessionPlan()) {
		t.Fatal("SessionPlan is not deterministic")
	}
	if len(plan) != 2200 {
		t.Fatalf("got %d sessions; want 2200", len(plan))
	}
	perISP := make(map[int]int)
	servers := make(map[int]map[int]bool)
	seeds := make(map[int64]bool)
	for _, sess := range plan {
		perISP[sess.ISP]++
		if servers[sess.ISP] == nil {
			servers[sess.ISP] = make(map[int]bool)
		}
		servers[sess.ISP][sess.Server] = true
		seeds[sess.Spec.Seed] = true
		if sess.Throttled != (sess.ISP == 3) {
			t.Fatalf("session %d: Throttled=%v for ISP %d", sess.Index, sess.Throttled, sess.ISP)
		}
		if sess.Throttled != (sess.Spec.Placement == LimiterCommon) {
			t.Fatalf("session %d: placement %v does not encode plant", sess.Index, sess.Spec.Placement)
		}
	}
	if perISP[7] != 0 {
		t.Errorf("starved ISP 7 got %d sessions; want 0", perISP[7])
	}
	for isp := 0; isp < 12; isp++ {
		if isp == 7 {
			continue
		}
		if perISP[isp] == 0 {
			t.Errorf("ISP %d got no sessions", isp)
		}
		if len(servers[isp]) != 8 {
			t.Errorf("ISP %d covered %d servers; want all 8", isp, len(servers[isp]))
		}
	}
	// The seed pool bounds distinct sims: at most 2×SeedPool seeds.
	if len(seeds) > 2*32 {
		t.Errorf("%d distinct seeds; want ≤ %d", len(seeds), 2*32)
	}
}

// TestVerdictMatchesDetectSeed: Verdict must seed its detector from
// DetectSeed(spec.Seed) — the same derivation as the service backend's
// jobSeed("sim-detect", seed) — so both paths agree bit-for-bit. The FNV
// constant is pinned here against silent drift.
func TestVerdictMatchesDetectSeed(t *testing.T) {
	if got, want := DetectSeed(0), int64(hash64("sim-detect")); got != want {
		t.Fatalf("DetectSeed(0) = %d; want FNV-1a(sim-detect) = %d", got, want)
	}
	if got := DetectSeed(99); got != 99^int64(hash64("sim-detect")) {
		t.Fatalf("DetectSeed(99) = %d; want seed^FNV-1a", got)
	}
}

// TestEvalCampaignWorkerInvariance: outcomes are identical at 1 and N
// workers (ForEach keeps plan order; verdict dedup is order-independent).
// A tiny short-duration campaign keeps this fast — verdicts may be
// degenerate at 2 s, but they must be *identically* degenerate.
func TestEvalCampaignWorkerInvariance(t *testing.T) {
	spec := FleetCampaignSpec{
		ISPs: 4, Servers: 2, ThrottledISPs: []int{1}, Sessions: 40,
		Duration: 2 * time.Second, SeedPool: 4, Seed: 9,
	}
	cache := NewSimCache()
	serial := Config{Workers: 1, Cache: cache}.EvalCampaign(spec)
	parallel := Config{Workers: 8, Cache: cache}.EvalCampaign(spec)
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("EvalCampaign differs across worker counts")
	}
	if len(serial) != 40 {
		t.Fatalf("got %d outcomes; want 40", len(serial))
	}
}

// TestFleetCacheSingleEval: the campaign cache computes once per
// canonical spec, and a defaulted spelling hits the same entry.
func TestFleetCacheSingleEval(t *testing.T) {
	fc := NewFleetCache(Config{Workers: 2, Cache: NewSimCache()})
	spec := FleetCampaignSpec{
		ISPs: 3, Servers: 2, Sessions: 6, Duration: 2 * time.Second,
		SeedPool: 2, Seed: 5,
	}
	a := fc.Eval(spec)
	b := fc.Eval(spec.Filled())
	if !reflect.DeepEqual(a, b) {
		t.Error("cached campaign outcomes differ between spellings")
	}
	st := fc.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v; want exactly 1 miss, 1 hit", st)
	}
}
