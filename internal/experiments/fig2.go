package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/nal-epfl/wehey/internal/core"
	"github.com/nal-epfl/wehey/internal/isp"
	"github.com/nal-epfl/wehey/internal/measure"
	"github.com/nal-epfl/wehey/internal/stats"
)

// Figure2 reproduces the §4.1 illustration: the CDFs of X (single-replay
// throughput) and Y (aggregate simultaneous throughput), and the PDFs of
// O_diff vs T_diff, in (a) the per-client throttling scenario — curves
// overlap, MWU p tiny — and (b) an alternative scenario where the replays
// share a bottleneck with other traffic — no overlap, p large.
func Figure2(cfg Config) *Report {
	cfg.fill()
	dur := cfg.Duration
	if dur <= 0 {
		dur = 20 * time.Second
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tdiff := cellularTDiff(rng)

	report := &Report{
		ID:    "figure2",
		Title: "CDFs of single vs simultaneous throughput and PDFs of O_diff vs T_diff",
		Paper: "Figure 2: per-client scenario p = 7.54e-18 (<0.05, detected); alternative p = 0.99 (not detected)",
	}

	// (a) Per-client throttling: ISP1-style dedicated policer.
	p := isp.FiveISPs()[0]
	trig := p.DrawTrigger(rng)
	single := p.Replays(rng.Int63(), dur, trig, 1, true)
	sim := p.Replays(rng.Int63(), dur, trig, 2, true)
	xA := single[0].Throughput.Samples
	yA := measure.SumSamples(sim[0].Throughput.Samples, sim[1].Throughput.Samples)
	report.appendFig2Scenario(rng, "(a) per-client throttling", xA, yA, tdiff)

	// (b) Alternative: the two replays share a collective bottleneck with
	// other traffic; the aggregate exceeds the single replay's share.
	collective := func(n int, seed int64) []measure.Throughput {
		out := make([]measure.Throughput, n)
		res := cfg.Sim(SimSpec{App: TCPBulkApp, InputFactor: 1.5, BgShare: 0.5,
			Duration: dur, Seed: seed})
		if n == 1 {
			// Single replay through the same kind of bottleneck: rerun with
			// one path by using path 1's series only (p0 coincides with p1's
			// route in this scenario).
			out[0] = res.Tput[0]
			return out
		}
		out[0], out[1] = res.Tput[0], res.Tput[1]
		return out
	}
	sB := collective(1, cfg.Seed+10)
	mB := collective(2, cfg.Seed+11)
	xB := sB[0].Samples
	yB := measure.SumSamples(mB[0].Samples, mB[1].Samples)
	report.appendFig2Scenario(rng, "(b) alternative (shared bottleneck)", xB, yB, tdiff)
	return report
}

// appendFig2Scenario adds one scenario's four curves and its MWU verdict.
func (r *Report) appendFig2Scenario(rng *rand.Rand, name string, x, y, tdiff []float64) {
	res, err := core.ThroughputComparison(rng, x, y, tdiff, core.ThroughputCmpConfig{})
	if err != nil {
		r.Notes = append(r.Notes, fmt.Sprintf("%s: %v", name, err))
		return
	}
	// CDFs of X and Y (Mbit/s).
	for _, c := range []struct {
		label   string
		samples []float64
	}{
		{name + " CDF X (single)", x},
		{name + " CDF Y (simultaneous sum)", y},
	} {
		e := stats.NewEmpirical(scale(c.samples, 1e-6))
		xs, fs := e.CDFPoints()
		r.Series = append(r.Series, Series{
			Name: c.label, XLabel: "throughput (Mbit/s)", YLabel: "CDF", X: xs, Y: fs,
		})
	}
	// PDFs of |O_diff| and |T_diff| via KDE on a shared grid.
	lo, hi := 0.0, 0.0
	for _, v := range append(append([]float64(nil), res.ODiff...), res.TDiff...) {
		if v > hi {
			hi = v
		}
	}
	grid := stats.Linspace(lo, hi*1.05+1e-9, 120)
	od := stats.NewEmpirical(res.ODiff)
	td := stats.NewEmpirical(res.TDiff)
	r.Series = append(r.Series,
		Series{Name: name + " PDF O_diff", XLabel: "|relative difference|", YLabel: "density", X: grid, Y: od.KDE(grid)},
		Series{Name: name + " PDF T_diff", XLabel: "|relative difference|", YLabel: "density", X: grid, Y: td.KDE(grid)},
	)
	r.Notes = append(r.Notes, fmt.Sprintf("%s: MWU p = %.3g → common bottleneck = %v", name, res.P, res.CommonBottleneck))
}

func scale(xs []float64, f float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = v * f
	}
	return out
}
