// Package experiments regenerates every table and figure of the paper's
// evaluation (§5 Table 1, Figures 2–7, Tables 3–5, and the §3.3 topology
// yield statistics), plus the ablation studies DESIGN.md calls out. Each
// experiment returns a Report that renders the same rows/series the paper
// presents; the benchmark harness in the repository root wraps them one
// bench per table/figure.
package experiments

import (
	"math/rand"
	"time"

	"github.com/nal-epfl/wehey/internal/measure"
	"github.com/nal-epfl/wehey/internal/netsim"
	"github.com/nal-epfl/wehey/internal/trace"
)

// LimiterPlacement selects where the rate limiter(s) sit in the Figure-1
// topology.
type LimiterPlacement int

const (
	// LimiterCommon places one limiter on the common link sequence l_c
	// (the FN experiments: a common bottleneck exists).
	LimiterCommon LimiterPlacement = iota
	// LimiterNonCommon places two identically configured limiters on l_1
	// and l_2 (the FP experiments: no common bottleneck exists).
	LimiterNonCommon
)

// SimSpec is one §6-style simulation experiment: a simultaneous replay of
// a trace pair through the Figure-1 topology with configured throttling.
type SimSpec struct {
	// App names the trace pair ("tcpbulk" for the TCP pair, or one of the
	// five UDP applications).
	App string
	// InputFactor is offered/rate at the limiter (Table 2: 1.3–2.5).
	InputFactor float64
	// QueueFactor sizes the TBF queue in bursts (Table 2: 0.25, 0.5, 1;
	// default 0.5, the bold value).
	QueueFactor float64
	// BgShare is the fraction of the background aggregate directed to the
	// limiter (Table 2: 25–75%).
	BgShare float64
	// BgAggregate is the total background rate the share is taken from
	// (the scaled-down CAIDA stand-in; default 32 Mbit/s).
	BgAggregate float64
	// RTT1, RTT2 are the two paths' base RTTs (default 35 ms — the
	// baseline of §6.3 and Tables 3–4, and close to the real RTTs of the
	// §6.2 wide-area testbed).
	RTT1, RTT2 time.Duration
	// Placement selects FN (common) vs FP (non-common) topologies.
	Placement LimiterPlacement
	// CongestionFactor, when positive, additionally congests the
	// non-common links: (replay+bg)/linkRate = CongestionFactor
	// (Table 4: 0.95, 1.05, 1.15).
	CongestionFactor float64
	// Duration of the replay (default 45 s, the paper's minimum).
	Duration time.Duration
	// Unmodified replays the traces without WeHeY's modifications
	// (no TCP pacing / no Poisson retiming) — the Figure 6 ablation.
	Unmodified bool
	// BBR runs the TCP replays under the BBR controller instead of Reno
	// (the §7 open question; see extension-bbr).
	BBR bool
	// BackgroundMode selects how the background aggregate is simulated:
	// BgModePacket (the default; every background packet is simulated) or
	// BgModeFluid (the hybrid mode of DESIGN.md §14 — background becomes
	// piecewise-constant fluid at each bottleneck, foreground stays
	// packet-granular). fill canonicalizes "" to BgModePacket so both
	// spellings share a cache key.
	BackgroundMode string
	// BgFlowRate is the per-flow application rate of the elastic background
	// flows in bits/s (default 8 Mbit/s). Full-rate scale runs lower it so
	// the paper's ~400-flow concurrency emerges from the same aggregate.
	BgFlowRate float64
	// Seed drives all randomness of this run.
	Seed int64
}

// BackgroundMode values for SimSpec and Config.
const (
	BgModePacket = "packet"
	BgModeFluid  = "fluid"
)

func (s *SimSpec) fill() {
	if s.InputFactor <= 0 {
		s.InputFactor = 1.5
	}
	if s.QueueFactor <= 0 {
		s.QueueFactor = 0.5
	}
	if s.BgShare <= 0 {
		s.BgShare = 0.5
	}
	if s.BgAggregate <= 0 {
		s.BgAggregate = 32e6
	}
	if s.RTT1 <= 0 {
		s.RTT1 = 35 * time.Millisecond
	}
	if s.RTT2 <= 0 {
		s.RTT2 = 35 * time.Millisecond
	}
	if s.Duration <= 0 {
		s.Duration = 45 * time.Second
	}
	if s.BackgroundMode == "" {
		s.BackgroundMode = BgModePacket
	}
	if s.BgFlowRate <= 0 {
		s.BgFlowRate = 8e6
	}
}

// TCPBulkApp is the SimSpec.App value selecting the TCP trace pair.
const TCPBulkApp = "tcpbulk"

// tcpReplayRate is the app rate of the TCP video replay (bits/s).
const tcpReplayRate = 4e6

// SimResult carries one experiment's measurements and summary metrics.
type SimResult struct {
	M1, M2      measure.Path
	RetransRate [2]float64       // TCP only
	QueueDelay  [2]time.Duration // avg−min RTT (TCP); TBF ground truth (UDP)
	LossRate    [2]float64
	// Throughput per path (WeHe 100-interval bins), for detection
	// accounting.
	Tput [2]measure.Throughput
	// GroundTruthDrops per location name.
	Drops map[string]int
	// Events is the total number of engine events the run processed — the
	// cost metric the hybrid fluid mode optimizes (DESIGN.md §14).
	Events int64
	// BgEvents is the subset of Events spent on fluid background
	// bookkeeping (rate updates, flow arrivals/departures, phase
	// crossings); 0 in packet mode.
	BgEvents int64
	// BgFlows is the peak concurrent elastic background flow population
	// (fluid mode only) — the paper-scale target is ~400.
	BgFlows int64
}

// RunSim executes the simultaneous replay described by spec and returns
// the measurements Alg. 1 and the tomography baselines consume.
func RunSim(spec SimSpec) SimResult {
	spec.fill()
	var eng netsim.Engine
	// The run stops at a fixed horizon with timers still queued; Release
	// recycles the event queue and packet freelist for the next trial.
	defer eng.Release()

	maxRTT := spec.RTT1
	if spec.RTT2 > maxRTT {
		maxRTT = spec.RTT2
	}

	// Replay rates.
	var replayRate float64
	var udpTraces [2]*trace.Trace
	isTCP := spec.App == TCPBulkApp
	if isTCP {
		replayRate = tcpReplayRate
	} else {
		for i := 0; i < 2; i++ {
			tr, err := trace.Generate(spec.App, rand.New(rand.NewSource(spec.Seed+int64(i))), 12*time.Second)
			if err != nil {
				panic(err) // unknown app: programmer error in the harness
			}
			tr = trace.ExtendTo(tr, spec.Duration)
			if !spec.Unmodified {
				tr = trace.PoissonRetime(rand.New(rand.NewSource(spec.Seed+100+int64(i))), tr)
			}
			udpTraces[i] = tr
		}
		replayRate = udpTraces[0].AvgRate(trace.ServerToClient)
	}

	// Background mix standing in for the CAIDA replay: the directed share
	// bgDiff splits into elastic TCP flows ("other users" of the throttled
	// service, replayed closed-loop as the paper replays CAIDA TCP
	// payloads from the application layer) and a rate-modulated open-loop
	// component whose variation drives the loss-rate trends.
	bgDiff := spec.BgShare * spec.BgAggregate
	openLoopBg := 0.5 * bgDiff
	elasticBg := bgDiff - openLoopBg

	common := netsim.CommonSpec{}
	paths := []netsim.PathSpec{
		{RTT: spec.RTT1},
		{RTT: spec.RTT2},
	}

	// InputFactor → bottleneck utilization. The paper's input/rate factor
	// describes the *natural* (pre-adaptation) input of a mostly TCP mix;
	// its realized average loss sits far below the open-loop 1−1/factor
	// (Fig. 3 targets ≈4% average loss). Our background keeps offering at
	// its natural rate (churn arrivals don't slow down), so applying the
	// factor directly would overshoot the paper's loss levels several-fold.
	// The affine map below lands the realized loss in the paper's range:
	// 1.3→mild (~2–4%), 2.5→severe (~15–25%).
	util := 0.8 + 0.2*spec.InputFactor
	switch spec.Placement {
	case LimiterNonCommon:
		// Identical limiters on l_1 and l_2, each fed by its own
		// independent background of the same composition.
		offered := replayRate + bgDiff
		rate := offered / util
		burst := netsim.BurstForRTT(rate, maxRTT)
		for i := range paths {
			paths[i].Limiter = &netsim.LimiterSpec{
				Rate: rate, Burst: burst, Queue: int(spec.QueueFactor * float64(burst)),
			}
			paths[i].BgRate = openLoopBg
			paths[i].BgDiffFraction = 1
			paths[i].BgModPeriod = 1500 * time.Millisecond
			paths[i].BgModSpread = 0.9
		}
	default: // LimiterCommon
		offered := 2*replayRate + bgDiff
		rate := offered / util
		burst := netsim.BurstForRTT(rate, maxRTT)
		common.Limiter = &netsim.LimiterSpec{
			Rate: rate, Burst: burst, Queue: int(spec.QueueFactor * float64(burst)),
		}
		common.BgRate = openLoopBg
		common.BgDiffFraction = 1
		common.BgModPeriod = 1500 * time.Millisecond
		common.BgModSpread = 0.9
		// The elastic background flows reach l_c over their own paths
		// (other users converge at the shared bottleneck from elsewhere).
		paths = append(paths,
			netsim.PathSpec{RTT: 30 * time.Millisecond},
			netsim.PathSpec{RTT: 70 * time.Millisecond},
		)
	}

	// Congestion on the non-common links (Table 4): size each link so the
	// crossing traffic slightly exceeds (or approaches) its bandwidth.
	if spec.CongestionFactor > 0 {
		const crossBgRate = 6e6
		for i := range paths[:2] {
			// Steady class-default cross traffic congests the non-common
			// link; the knob is the link's sustained utilization
			// input/bandwidth. (Volatile or heavy-tailed cross traffic
			// would create strong *independent* loss trends on l_1/l_2 and
			// overstate the FN rate relative to the paper's setup.)
			paths[i].BgRate += crossBgRate
			//lint:ignore floateq exact sentinel: 1 is the literal untouched default
			if paths[i].BgDiffFraction == 1 {
				paths[i].BgDiffFraction = bgDiff / (bgDiff + crossBgRate)
			}
			paths[i].BgModPeriod = 2 * time.Second
			paths[i].BgModSpread = 0.25
			paths[i].Rate = (replayRate + paths[i].BgRate) / spec.CongestionFactor
		}
	}

	mode := netsim.BGPacket
	if spec.BackgroundMode == BgModeFluid {
		mode = netsim.BGFluid
	}
	sc := netsim.NewScenarioMode(&eng, spec.Seed, mode, common, paths...)

	// Elastic background: churning TCP flows (Poisson arrivals, bounded
	// Pareto sizes) — the flow-population variation is the primary source
	// of loss-rate trends at the bottleneck. In fluid mode the same
	// population dynamics drive per-flow fluid contributions instead.
	var churnPaths []int
	if spec.Placement == LimiterNonCommon {
		churnPaths = []int{0, 1} // share the replay paths' limiters
	} else {
		churnPaths = []int{2, 3} // dedicated background paths into l_c
	}
	churnCfg := netsim.ChurnConfig{
		MeanRate:    elasticBg,
		Class:       netsim.ClassDifferentiated,
		Stop:        spec.Duration,
		PerFlowRate: spec.BgFlowRate,
	}
	churnRng := rand.New(rand.NewSource(spec.Seed + 999))
	var fluidChurn *netsim.FluidChurn
	if mode == netsim.BGFluid {
		fc, err := netsim.NewFluidChurn(&eng, churnCfg, churnRng, sc, churnPaths)
		if err != nil {
			panic(err) // spec-derived config: invalid means a harness bug
		}
		fluidChurn = fc
		fc.Start(0)
	} else {
		churn, err := netsim.NewChurn(&eng, churnCfg, churnRng, sc, churnPaths)
		if err != nil {
			panic(err)
		}
		churn.Start(0)
	}

	res := SimResult{}
	if isTCP {
		flows := [2]*netsim.TCPFlow{}
		for i := 0; i < 2; i++ {
			cfg := netsim.TCPConfig{
				Pacing:  !spec.Unmodified,
				Class:   netsim.ClassDifferentiated,
				AppRate: replayRate,
				Stop:    spec.Duration,
			}
			if spec.BBR {
				cfg.CC = netsim.BBR
			}
			f := netsim.NewTCPFlow(&eng, i+1, cfg, sc.Entry(i), sc.BackDelay(i))
			flows[i] = f
			sc.Register(i+1, f.Receiver())
			f.Start(0)
		}
		sc.StartBackground(0, spec.Duration)
		res.Events = int64(eng.Run(spec.Duration + 2*time.Second))
		ms := [2]measure.Path{}
		for i, f := range flows {
			ms[i] = f.Measurements(0, spec.Duration, sc.RTT(i))
			res.RetransRate[i] = f.RetransmissionRate()
			res.QueueDelay[i] = f.AvgQueuingDelay()
			res.LossRate[i] = f.RetransmissionRate()
			res.Tput[i] = measure.WeHeThroughput(f.Deliveries(0), 0, spec.Duration)
		}
		res.M1, res.M2 = ms[0], ms[1]
	} else {
		flows := [2]*netsim.UDPFlow{}
		for i := 0; i < 2; i++ {
			f := netsim.NewUDPFlow(&eng, i+1, netsim.ClassDifferentiated, sc.Entry(i))
			flows[i] = f
			sc.Register(i+1, f.Receiver())
			f.Start(udpTraces[i], 0)
		}
		sc.StartBackground(0, spec.Duration)
		res.Events = int64(eng.Run(spec.Duration + 2*time.Second))
		ms := [2]measure.Path{}
		for i, f := range flows {
			f.Finish(spec.Duration)
			ms[i] = f.Measurements(0, spec.Duration, sc.RTT(i))
			res.LossRate[i] = f.LossRate()
			res.Tput[i] = measure.WeHeThroughput(f.Deliveries(0), 0, spec.Duration)
		}
		res.M1, res.M2 = ms[0], ms[1]
	}
	if mode == netsim.BGFluid {
		// Settle the analytic state and fold fluid loss into the drop log
		// before it is published, then account the bookkeeping events that
		// replaced per-packet background work.
		sc.FinishFluid(spec.Duration + 2*time.Second)
		res.BgEvents = sc.FluidEvents()
		if fluidChurn != nil {
			res.BgEvents += fluidChurn.Events
			res.BgFlows = fluidChurn.MaxActive
		}
	}
	res.Drops = sc.DropLog
	return res
}
