package experiments

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/nal-epfl/wehey/internal/measure"
)

// TestSimCacheSchemaGuards pins the shapes simCacheSchema covers: if
// SimSpec or SimResult grows, shrinks, or reorders fields, this fails
// until appendSpec/encodeResult/decodeResult are extended AND
// simCacheSchema is bumped (stale entries would otherwise alias the new
// meaning).
func TestSimCacheSchemaGuards(t *testing.T) {
	if n := reflect.TypeOf(SimSpec{}).NumField(); n != 15 {
		t.Errorf("SimSpec has %d fields, appendSpec encodes 15: extend appendSpec and bump simCacheSchema", n)
	}
	if n := reflect.TypeOf(SimResult{}).NumField(); n != 10 {
		t.Errorf("SimResult has %d fields, the codec handles 10: extend encodeResult/decodeResult and bump simCacheSchema", n)
	}
	if simCacheSchema != "wehey/simcache/v2" {
		// Not an error — just force the author of a bump to also refresh
		// the two counts above deliberately.
		t.Log("simCacheSchema bumped; confirm the field counts in this test were revisited")
	}
}

func TestAppendSpecCanonicalizesDefaults(t *testing.T) {
	// A spec leaning on fill() defaults and one spelling them out must
	// share a cache key...
	sparse := SimSpec{App: TCPBulkApp, Seed: 7}
	sparse.fill()
	explicit := SimSpec{
		App: TCPBulkApp, InputFactor: 1.5, QueueFactor: 0.5, BgShare: 0.5,
		BgAggregate: 32e6, RTT1: 35 * time.Millisecond, RTT2: 35 * time.Millisecond,
		Duration: 45 * time.Second, Seed: 7,
	}
	explicit.fill()
	if !bytes.Equal(appendSpec(nil, &sparse), appendSpec(nil, &explicit)) {
		t.Error("filled defaulted spec and explicit-default spec encode differently")
	}
	// ...while every real parameter change must change the encoding.
	base := appendSpec(nil, &explicit)
	for name, mut := range map[string]func(*SimSpec){
		"App":              func(s *SimSpec) { s.App = "zoom" },
		"InputFactor":      func(s *SimSpec) { s.InputFactor = 2.5 },
		"QueueFactor":      func(s *SimSpec) { s.QueueFactor = 1 },
		"BgShare":          func(s *SimSpec) { s.BgShare = 0.75 },
		"BgAggregate":      func(s *SimSpec) { s.BgAggregate = 64e6 },
		"RTT1":             func(s *SimSpec) { s.RTT1 = 10 * time.Millisecond },
		"RTT2":             func(s *SimSpec) { s.RTT2 = 120 * time.Millisecond },
		"Placement":        func(s *SimSpec) { s.Placement = LimiterNonCommon },
		"CongestionFactor": func(s *SimSpec) { s.CongestionFactor = 1.15 },
		"Duration":         func(s *SimSpec) { s.Duration = 20 * time.Second },
		"Unmodified":       func(s *SimSpec) { s.Unmodified = true },
		"BBR":              func(s *SimSpec) { s.BBR = true },
		"BackgroundMode":   func(s *SimSpec) { s.BackgroundMode = BgModeFluid },
		"BgFlowRate":       func(s *SimSpec) { s.BgFlowRate = 105e3 },
		"Seed":             func(s *SimSpec) { s.Seed = 8 },
	} {
		mod := explicit
		mut(&mod)
		if bytes.Equal(base, appendSpec(nil, &mod)) {
			t.Errorf("changing %s did not change the spec encoding", name)
		}
	}
}

// randomResult builds a SimResult with adversarial shapes: nil, empty,
// and populated slices/maps, full-bit-space floats, negative durations.
func randomResult(rng *rand.Rand) SimResult {
	randPath := func() measure.Path {
		p := measure.Path{
			RTT:      time.Duration(rng.Int63n(int64(time.Second))),
			Duration: time.Duration(rng.Int63n(int64(time.Minute))),
		}
		if rng.Intn(4) > 0 {
			p.Tx = make([]time.Duration, rng.Intn(100))
			for i := range p.Tx {
				p.Tx[i] = time.Duration(rng.Int63())
			}
		}
		if rng.Intn(2) == 0 {
			p.Loss = []time.Duration{}
		}
		return p
	}
	r := SimResult{M1: randPath(), M2: randPath()}
	for i := 0; i < 2; i++ {
		r.RetransRate[i] = math.Float64frombits(rng.Uint64())
		if math.IsNaN(r.RetransRate[i]) {
			r.RetransRate[i] = rng.Float64()
		}
		r.QueueDelay[i] = time.Duration(rng.Int63())
		r.LossRate[i] = rng.Float64()
		r.Tput[i] = measure.Throughput{Interval: time.Duration(rng.Int63n(int64(time.Second)))}
		if rng.Intn(3) > 0 {
			r.Tput[i].Samples = make([]float64, rng.Intn(100))
			for j := range r.Tput[i].Samples {
				r.Tput[i].Samples[j] = rng.NormFloat64() * 1e7
			}
		}
	}
	r.Events = rng.Int63()
	r.BgEvents = rng.Int63()
	r.BgFlows = rng.Int63()
	switch rng.Intn(3) {
	case 0: // nil map
	case 1:
		r.Drops = map[string]int{}
	default:
		r.Drops = map[string]int{}
		for _, k := range []string{"tbf_c", "tbf_1", "tbf_2", "link_1", "link_2"} {
			if rng.Intn(2) == 0 {
				r.Drops[k] = int(rng.Int31())
			}
		}
	}
	return r
}

// TestSimResultCodecRoundTripProperty: decode(encode(r)) must be
// DeepEqual to r — the cached-equals-recomputed requirement — across
// random result shapes.
func TestSimResultCodecRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		r := randomResult(rng)
		got, err := decodeResult(encodeResult(r))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(got, r) {
			t.Fatalf("trial %d: round trip mismatch:\n got %#v\nwant %#v", trial, got, r)
		}
	}
}

// TestSimResultCodecTruncation: no prefix of a valid encoding may panic
// or decode into a different result.
func TestSimResultCodecTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	r := randomResult(rng)
	full := encodeResult(r)
	for cut := 0; cut < len(full); cut++ {
		got, err := decodeResult(full[:cut])
		if err == nil && !reflect.DeepEqual(got, r) {
			t.Fatalf("cut=%d: truncated encoding decoded into a different result", cut)
		}
	}
	if _, err := decodeResult(append(encodeResult(r), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}

// shortSpec is a fast (2 s) but real simulation for cache-behaviour tests.
func shortSpec(seed int64) SimSpec {
	return SimSpec{
		App: TCPBulkApp, InputFactor: 1.5, BgShare: 0.5,
		Duration: 2 * time.Second, Seed: seed,
	}
}

// TestDiskSimCacheServesExactResult: a result served from a fresh cache
// over a populated directory must be DeepEqual to the recomputed one, and
// a corrupted entry must fall back to recomputation — never a wrong
// result.
func TestDiskSimCacheServesExactResult(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	dir := t.TempDir()
	spec := shortSpec(41)
	truth := RunSim(spec)

	cold, err := NewDiskSimCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := cold.Run(spec); !reflect.DeepEqual(got, truth) {
		t.Fatal("cold cache result differs from direct RunSim")
	}

	warm, err := NewDiskSimCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.Run(spec); !reflect.DeepEqual(got, truth) {
		t.Fatal("disk-served result differs from recomputed result")
	}
	if st := warm.Stats(); st.DiskHits != 1 || st.Misses != 0 {
		t.Fatalf("warm stats = %+v, want one disk hit", st)
	}

	// Corrupt every byte-flipped entry under dir: the next cache must
	// recompute the identical result.
	var entries []string
	err = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			entries = append(entries, path)
		}
		return err
	})
	if err != nil || len(entries) != 1 {
		t.Fatalf("want exactly 1 cache entry, have %d (err=%v)", len(entries), err)
	}
	raw, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(entries[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	repaired, err := NewDiskSimCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := repaired.Run(spec); !reflect.DeepEqual(got, truth) {
		t.Fatal("result after corruption differs from truth")
	}
	if st := repaired.Stats(); st.Corrupt != 1 || st.Misses != 1 {
		t.Fatalf("stats after corruption = %+v, want corrupt=1 misses=1", st)
	}
}

// TestAblationPoolSimulatesOncePerSpec is the dedup satellite: the
// detector ablations (correlation, intervals, vote) each regenerate the
// same ablationRuns pool; with a shared cache the pool must simulate
// exactly once per unique spec, with every later request a hit.
func TestAblationPoolSimulatesOncePerSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	cfg := Config{Trials: 1, Seed: 3, Duration: 2 * time.Second, Cache: NewSimCache()}
	// 3 input factors × 2 background shares × Trials=1, FN + FP variants.
	const unique = 3 * 2 * 1 * 2

	AblationCorrelation(cfg)
	st := cfg.Cache.Stats()
	if st.Misses != unique || st.Hits != 0 {
		t.Fatalf("first ablation: stats = %+v, want %d misses", st, unique)
	}
	AblationIntervals(cfg)
	AblationVote(cfg)
	st = cfg.Cache.Stats()
	if st.Misses != unique {
		t.Errorf("pool re-simulated: %d misses across three ablations, want %d", st.Misses, unique)
	}
	if st.Hits != 2*unique {
		t.Errorf("hits = %d, want %d (two full re-requests of the pool)", st.Hits, 2*unique)
	}
}

// TestCacheModesRenderByteIdentically is the determinism oracle at test
// scale: cache off, cold disk cache, and warm disk cache must render
// byte-identical reports — a cached result is indistinguishable from a
// recomputed one.
func TestCacheModesRenderByteIdentically(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	names := []string{"figure3", "table5", "ablation-vote"}
	render := func(cache *SimCache) []byte {
		var buf bytes.Buffer
		cfg := Config{Trials: 1, Seed: 5, Duration: 2 * time.Second, Workers: 2, Cache: cache}
		for _, name := range names {
			if err := Run(&buf, name, cfg); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}

	off := render(nil)

	dir := t.TempDir()
	coldCache, err := NewDiskSimCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := render(coldCache)
	if !bytes.Equal(off, cold) {
		t.Error("cache-off and cold-cache renders differ")
	}
	if st := coldCache.Stats(); st.Misses == 0 {
		t.Errorf("cold cache ran no simulations: %+v", st)
	}

	warmCache, err := NewDiskSimCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := render(warmCache)
	if !bytes.Equal(off, warm) {
		t.Error("cache-off and warm-cache renders differ")
	}
	if st := warmCache.Stats(); st.Misses != 0 {
		t.Errorf("warm cache re-simulated %d specs: %+v", st.Misses, st)
	}
}
