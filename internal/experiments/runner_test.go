package experiments

import (
	"bytes"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

func TestSpecSeedInjectiveOverGrid(t *testing.T) {
	// Enumerate a realistic multi-experiment grid and require all-distinct
	// seeds: a collision would silently replay one run's randomness as
	// another's.
	g := DefaultGrid()
	seen := map[int64]string{}
	add := func(id, cell string, trial int) {
		s := specSeed(1, id, cell, trial)
		key := fmt.Sprintf("%s/%s/%d", id, cell, trial)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: %s and %s both map to %d", prev, key, s)
		}
		seen[s] = key
	}
	for _, app := range g.AllApps() {
		for _, mode := range []string{"modified", "unmodified"} {
			for _, f := range g.InputFactors {
				for _, q := range g.QueueFactors {
					for trial := 0; trial < 5; trial++ {
						add("figure6", fmt.Sprintf("%s/%s/f=%g/q=%g", app, mode, f, q), trial)
					}
				}
			}
		}
	}
	for _, f := range g.InputFactors {
		for _, q := range g.QueueFactors {
			for trial := 0; trial < 5; trial++ {
				add("figure5", fmt.Sprintf("f=%g/q=%g", f, q), trial)
			}
		}
	}
	if len(seen) == 0 {
		t.Fatal("empty grid")
	}
}

func TestSpecSeedStableUnderTruncation(t *testing.T) {
	// A run's seed is a function of its identity only: enumerating the full
	// grid and a truncated grid must assign identical seeds to the cells
	// they share. (With counter-based seeding, trimming the grid reshuffled
	// every downstream seed — the bug this scheme fixes.)
	factors := []float64{1.5, 1.3, 2, 2.5}
	full := map[string]int64{}
	for _, f := range factors {
		for trial := 0; trial < 3; trial++ {
			full[fmt.Sprintf("f=%g/%d", f, trial)] = specSeed(1, "exp", fmt.Sprintf("f=%g", f), trial)
		}
	}
	for _, f := range factors[:2] { // the !cfg.Full truncation
		for trial := 0; trial < 3; trial++ {
			k := fmt.Sprintf("f=%g/%d", f, trial)
			if got := specSeed(1, "exp", fmt.Sprintf("f=%g", f), trial); got != full[k] {
				t.Errorf("%s: truncated grid seed %d != full grid seed %d", k, got, full[k])
			}
		}
	}
}

func TestSpecSeedSensitivity(t *testing.T) {
	base := specSeed(1, "figure6", "tcpbulk/f=1.5", 0)
	for name, other := range map[string]int64{
		"base":       specSeed(2, "figure6", "tcpbulk/f=1.5", 0),
		"experiment": specSeed(1, "figure7", "tcpbulk/f=1.5", 0),
		"cell":       specSeed(1, "figure6", "tcpbulk/f=2.5", 0),
		"trial":      specSeed(1, "figure6", "tcpbulk/f=1.5", 1),
	} {
		if other == base {
			t.Errorf("changing %s did not change the seed", name)
		}
	}
	if specSeed(1, "figure6", "tcpbulk/f=1.5", 0) != base {
		t.Error("specSeed is not deterministic")
	}
}

func TestForEachOrderAndCoverage(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		var calls atomic.Int64
		out := ForEach(100, workers, func(i int) int {
			calls.Add(1)
			return i * i
		})
		if calls.Load() != 100 {
			t.Fatalf("workers=%d: fn called %d times", workers, calls.Load())
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, results not in submission order", workers, i, v)
			}
		}
	}
	if got := ForEach(0, 4, func(int) int { return 1 }); len(got) != 0 {
		t.Errorf("n=0 returned %d results", len(got))
	}
}

func TestRunGridMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	// Identity-seeded specs through 1 worker and through a pool must yield
	// byte-for-byte the same results in the same order.
	var specs []SimSpec
	for trial := 0; trial < 4; trial++ {
		specs = append(specs, SimSpec{
			App: TCPBulkApp, InputFactor: 1.5, BgShare: 0.5,
			Duration: 5 * time.Second,
			Seed:     specSeed(1, "runner-test", "cell", trial),
		})
	}
	serial := RunGrid(specs, 1)
	parallel := RunGrid(specs, 4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("RunGrid results differ between workers=1 and workers=4")
	}
}

// TestExperimentsDeterministicAcrossWorkers is the headline guarantee:
// every registered experiment renders byte-identical reports across
// repeated runs and across worker-pool widths. Run under -race it also
// verifies the fan-out keeps each engine and rng goroutine-local.
func TestExperimentsDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every registered experiment three times")
	}
	render := func(name string, workers int) []byte {
		t.Helper()
		cfg := Config{Trials: 1, Seed: 5, Duration: 6 * time.Second, Workers: workers}
		var buf bytes.Buffer
		if err := Run(&buf, name, cfg); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return buf.Bytes()
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			one := render(name, 1)
			again := render(name, 1)
			pool := render(name, 4)
			if !bytes.Equal(one, again) {
				t.Errorf("%s: two workers=1 runs differ", name)
			}
			if !bytes.Equal(one, pool) {
				t.Errorf("%s: workers=1 and workers=4 renders differ", name)
			}
		})
	}
}
