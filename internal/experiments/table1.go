package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/nal-epfl/wehey/internal/isp"
	"github.com/nal-epfl/wehey/internal/wehe"
)

// cellularTDiff builds the T_diff distribution used by the wild-style
// experiments (cellular throughput varies ~15% test-to-test).
func cellularTDiff(rng *rand.Rand) []float64 {
	h := wehe.SynthHistory(rng, wehe.SynthHistorySpec{
		Clients: 15, TestsPerClient: 9, Spread: 0.15,
	})
	return h.TDiff("", "netflix", "carrier-1")
}

// Table1 reproduces the in-the-wild evaluation (§5): the successful
// localization rate of WeHeY's throughput-comparison algorithm against the
// five cellular-ISP throttling profiles, plus the sanity-check row (a
// third concurrent replay must suppress detection).
func Table1(cfg Config) *Report {
	cfg.fill()
	trials := cfg.trials(12, 50)
	dur := cfg.Duration
	if dur <= 0 {
		dur = 20 * time.Second
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tdiff := cellularTDiff(rng)

	profiles := isp.FiveISPs()
	header := []string{"metric"}
	rateRow := []string{"localization rate"}
	weheRow := []string{"WeHe detected"}
	sanityRow := []string{"sanity-check false detections"}

	sanityTrials := trials / 3
	if sanityTrials < 3 {
		sanityTrials = 3
	}
	for _, p := range profiles {
		p := p
		header = append(header, p.Name)
		// Each trial runs on its own identity-derived rng, so trials are
		// independent of one another and safe to execute concurrently.
		basic := ForEach(trials, cfg.workers(), func(i int) isp.TestResult {
			trng := rand.New(rand.NewSource(specSeed(cfg.Seed, "table1", p.Name, i)))
			return isp.RunLocalizationTest(trng, p, tdiff, isp.TestOptions{Duration: dur})
		})
		localized, detected := 0, 0
		for _, res := range basic {
			if res.WeHeDetected {
				detected++
			}
			if res.Localized {
				localized++
			}
		}
		rateRow = append(rateRow, pct(localized, trials))
		weheRow = append(weheRow, pct(detected, trials))

		sanityHits := ForEach(sanityTrials, cfg.workers(), func(i int) bool {
			trng := rand.New(rand.NewSource(specSeed(cfg.Seed, "table1", p.Name+"/sanity", i)))
			res := isp.RunLocalizationTest(trng, p, tdiff, isp.TestOptions{Duration: dur, ExtraReplay: true})
			return res.Evidence.Found()
		})
		falsePos := 0
		for _, hit := range sanityHits {
			if hit {
				falsePos++
			}
		}
		sanityRow = append(sanityRow, fmt.Sprintf("%d/%d", falsePos, sanityTrials))
	}

	return &Report{
		ID:    "table1",
		Title: "Successful localization rate of traffic differentiation in five ISP profiles",
		Paper: "Table 1: 89.8% / 89.83% / 94% / 98.18% / 16.28%; sanity check misbehaved once across all tests",
		Tables: []Table{{
			Header: header,
			Rows:   [][]string{rateRow, weheRow, sanityRow},
		}},
		Notes: []string{
			fmt.Sprintf("%d basic tests and %d sanity-check tests per profile, %v replays", trials, sanityTrials, dur),
			"ISP5 implements conditional (rate-triggered) throttling; its failures are the Figure 4 mechanism",
		},
	}
}

// Figure4 reproduces the ISP5 throughput-over-time comparison: during the
// simultaneous replay the fixed-rate throttling engages within seconds,
// during the single replay much later, so the aggregate simultaneous
// throughput does not add up to the single-replay throughput.
func Figure4(cfg Config) *Report {
	cfg.fill()
	dur := cfg.Duration
	if dur <= 0 {
		dur = 20 * time.Second
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tdiff := cellularTDiff(rng)
	p := isp.FiveISPs()[4] // ISP5
	p.TriggerJitter = 0    // the representative test of the figure

	res := isp.RunLocalizationTest(rng, p, tdiff, isp.TestOptions{Duration: dur})

	toXY := func(t []float64, interval time.Duration) ([]float64, []float64) {
		xs := make([]float64, len(t))
		ys := make([]float64, len(t))
		for i := range t {
			xs[i] = float64(i) * interval.Seconds()
			ys[i] = t[i] / 1e6
		}
		return xs, ys
	}
	sx, sy := toXY(res.SingleSeries.Samples, res.SingleSeries.Interval)
	mx, my := toXY(res.SimSeries.Samples, res.SimSeries.Interval)

	report := &Report{
		ID:    "figure4",
		Title: "Throughput over time during the single and simultaneous original replays (ISP5)",
		Paper: "Figure 4: simultaneous replay throttles to 2.5 Mbit/s after ~5 s, single replay after ~22 s",
		Series: []Series{
			{Name: "single replay", XLabel: "time (s)", YLabel: "Mbit/s", X: sx, Y: sy},
			{Name: "simultaneous replay (aggregate)", XLabel: "time (s)", YLabel: "Mbit/s", X: mx, Y: my},
		},
		Notes: []string{
			fmt.Sprintf("localized=%v (the throughput comparison fails on this profile most of the time)", res.Localized),
		},
	}
	return report
}
