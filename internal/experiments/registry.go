package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Generator produces one experiment's report.
type Generator func(Config) *Report

// registry maps experiment IDs to their generators.
var registry = map[string]Generator{
	"table1":               Table1,
	"table2":               Table2,
	"table3":               Table3,
	"table4":               Table4,
	"table5":               Table5,
	"figure2":              Figure2,
	"figure3":              Figure3,
	"figure4":              Figure4,
	"figure5":              Figure5,
	"figure6":              Figure6,
	"figure7":              Figure7,
	"topoyield":            TopologyYield,
	"extension-perflow":    ExtensionPerFlow,
	"extension-bbr":        ExtensionBBR,
	"ablation-correlation": AblationCorrelation,
	"ablation-intervals":   AblationIntervals,
	"ablation-vote":        AblationVote,
	"ablation-mwu":         AblationMWU,
	"ablation-pacing":      AblationPacing,
}

// Names returns the registered experiment IDs, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the generator for an experiment ID.
func Lookup(name string) (Generator, bool) {
	g, ok := registry[name]
	return g, ok
}

// Run generates and renders one experiment.
func Run(w io.Writer, name string, cfg Config) error {
	g, ok := Lookup(name)
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	g(cfg).Render(w)
	return nil
}

// RunAll generates and renders every registered experiment.
func RunAll(w io.Writer, cfg Config) {
	for _, name := range Names() {
		g, _ := Lookup(name)
		g(cfg).Render(w)
		fmt.Fprintln(w)
	}
}
