package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Generator produces one experiment's report.
type Generator func(Config) *Report

// registry maps experiment IDs to their generators.
var registry = map[string]Generator{
	"table1":               Table1,
	"table2":               Table2,
	"table3":               Table3,
	"table4":               Table4,
	"table5":               Table5,
	"figure2":              Figure2,
	"figure3":              Figure3,
	"figure4":              Figure4,
	"figure5":              Figure5,
	"figure6":              Figure6,
	"figure7":              Figure7,
	"topoyield":            TopologyYield,
	"extension-perflow":    ExtensionPerFlow,
	"extension-bbr":        ExtensionBBR,
	"ablation-correlation": AblationCorrelation,
	"ablation-intervals":   AblationIntervals,
	"ablation-vote":        AblationVote,
	"ablation-mwu":         AblationMWU,
	"ablation-pacing":      AblationPacing,
}

// extraRegistry holds opt-in experiments that are addressable by name but
// excluded from Names()/RunAll — they don't belong in the committed
// `-run all` output (e.g. the full-rate scale ablation, whose fluid arms
// would churn experiments_output.txt on every tuning change).
var extraRegistry = map[string]Generator{
	"ablation-scale": AblationScale,
}

// Names returns the default experiment IDs (the `-run all` set), sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ExtraNames returns the opt-in experiment IDs, sorted.
func ExtraNames() []string {
	out := make([]string, 0, len(extraRegistry))
	for k := range extraRegistry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the generator for an experiment ID, default or opt-in.
func Lookup(name string) (Generator, bool) {
	if g, ok := registry[name]; ok {
		return g, ok
	}
	g, ok := extraRegistry[name]
	return g, ok
}

// Run generates and renders one experiment.
func Run(w io.Writer, name string, cfg Config) error {
	g, ok := Lookup(name)
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	g(cfg).Render(w)
	return nil
}

// RunAll generates and renders every registered experiment.
func RunAll(w io.Writer, cfg Config) {
	for _, name := range Names() {
		g, _ := Lookup(name)
		g(cfg).Render(w)
		fmt.Fprintln(w)
	}
}
