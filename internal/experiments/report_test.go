package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestReportRender(t *testing.T) {
	r := &Report{
		ID:    "test",
		Title: "A Test Report",
		Paper: "paper says 42",
		Tables: []Table{{
			Name:   "numbers",
			Header: []string{"metric", "value"},
			Rows:   [][]string{{"alpha", "1"}, {"beta", "22"}},
		}},
		Series: []Series{{
			Name: "curve", XLabel: "x", YLabel: "y",
			X: []float64{0, 1, 2}, Y: []float64{5, 7, 6},
		}},
		Notes: []string{"a note"},
	}
	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	for _, want := range []string{"test", "A Test Report", "paper says 42",
		"numbers", "alpha", "22", "curve", "a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q:\n%s", want, out)
		}
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline(nil, 10); got != "(empty)" {
		t.Errorf("empty sparkline = %q", got)
	}
	s := sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if len([]rune(s)) != 8 {
		t.Errorf("sparkline width = %d", len([]rune(s)))
	}
	// Monotone input → non-decreasing blocks.
	runes := []rune(s)
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Errorf("sparkline not monotone: %s", s)
		}
	}
	// Constant input stays at the floor block.
	flat := sparkline([]float64{3, 3, 3}, 3)
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat sparkline = %s", flat)
		}
	}
	// Downsampling long input.
	long := make([]float64, 1000)
	if got := sparkline(long, 40); len([]rune(got)) != 40 {
		t.Errorf("downsampled width = %d", len([]rune(got)))
	}
}

func TestConfigTrials(t *testing.T) {
	c := Config{}
	if c.trials(3, 10) != 3 {
		t.Error("quick default")
	}
	c.Full = true
	if c.trials(3, 10) != 10 {
		t.Error("full default")
	}
	c.Trials = 7
	if c.trials(3, 10) != 7 {
		t.Error("explicit override")
	}
}

func TestPctAndFms(t *testing.T) {
	if pct(1, 4) != "25.0%" {
		t.Errorf("pct = %s", pct(1, 4))
	}
	if pct(0, 0) != "n/a" {
		t.Errorf("pct zero den = %s", pct(0, 0))
	}
	if fms(35*time.Millisecond) != "35.0ms" {
		t.Errorf("fms = %s", fms(35*time.Millisecond))
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != len(registry) {
		t.Fatalf("Names() = %d entries", len(names))
	}
	for _, want := range []string{"table1", "table5", "figure2", "figure7", "topoyield", "ablation-mwu"} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("registry missing %q", want)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("bogus name resolved")
	}
	var buf bytes.Buffer
	if err := Run(&buf, "nope", Config{}); err == nil {
		t.Error("Run with bogus name should error")
	}
	// table2 is pure configuration — cheap enough to run in tests.
	if err := Run(&buf, "table2", Config{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "input/rate") {
		t.Error("table2 output missing grid rows")
	}
}

func TestDefaultGridMatchesTable2(t *testing.T) {
	g := DefaultGrid()
	if len(g.InputFactors) != 4 || g.InputFactors[0] != 1.5 {
		t.Errorf("input factors: %v", g.InputFactors)
	}
	if len(g.QueueFactors) != 3 || g.QueueFactors[0] != 0.5 {
		t.Errorf("queue factors: %v", g.QueueFactors)
	}
	if len(g.BgShares) != 3 {
		t.Errorf("bg shares: %v", g.BgShares)
	}
	if len(g.RTT2s) != 6 {
		t.Errorf("RTT2s: %v", g.RTT2s)
	}
	if len(g.UDPApps) != 5 {
		t.Errorf("UDP apps: %v", g.UDPApps)
	}
	if got := g.AllApps(); len(got) != 6 || got[0] != TCPBulkApp {
		t.Errorf("AllApps: %v", got)
	}
}

func TestCheapGenerators(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed generators")
	}
	// Smoke-run the cheaper simulation-backed generators at minimum scale
	// and check they produce sane reports.
	cfg := Config{Trials: 1, Seed: 3, Duration: 10 * time.Second}
	for _, name := range []string{"figure3", "figure4", "topoyield"} {
		g, ok := Lookup(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		r := g(cfg)
		if r.ID != name {
			t.Errorf("%s: ID = %q", name, r.ID)
		}
		if len(r.Tables) == 0 && len(r.Series) == 0 {
			t.Errorf("%s: empty report", name)
		}
		var buf bytes.Buffer
		r.Render(&buf)
		if buf.Len() == 0 {
			t.Errorf("%s: empty render", name)
		}
	}
}
