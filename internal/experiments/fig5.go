package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/nal-epfl/wehey/internal/isp"
	"github.com/nal-epfl/wehey/internal/stats"
)

// Figure5 reproduces the realism check of §6.2: boxplots of the average
// retransmission rate and queueing delay observed by original replays in
// (a) the emulation-grid experiments and (b) "past WeHe tests" — here, the
// wild-style runs against the cellular ISP profiles, which stand in for
// the real WeHe dataset derived per §C.2. The emulation quartiles should
// cover the wild range.
func Figure5(cfg Config) *Report {
	cfg.fill()
	seeds := cfg.trials(1, 5)
	g := DefaultGrid()
	factors := g.InputFactors
	queues := g.QueueFactors
	if !cfg.Full {
		factors = factors[:2]
		queues = queues[:2]
	}

	// Emulation: the §6.2 TCP grid.
	var specs []SimSpec
	for _, f := range factors {
		for _, q := range queues {
			for s := 0; s < seeds; s++ {
				specs = append(specs, SimSpec{
					App: TCPBulkApp, InputFactor: f, QueueFactor: q, BgShare: 0.5,
					RTT1: 35 * time.Millisecond, RTT2: 35 * time.Millisecond,
					Duration: cfg.Duration,
					Seed:     specSeed(cfg.Seed, "figure5", fmt.Sprintf("f=%g/q=%g", f, q), s),
				})
			}
		}
	}
	var emuRetrans, emuDelay []float64
	for _, res := range cfg.Grid(specs) {
		emuRetrans = append(emuRetrans, (res.RetransRate[0]+res.RetransRate[1])/2*100)
		emuDelay = append(emuDelay, float64(res.QueueDelay[0]+res.QueueDelay[1])/2/float64(time.Millisecond))
	}

	// "Past WeHe tests": original single replays against the ISP profiles.
	rng := rand.New(rand.NewSource(cfg.Seed + 2500))
	var wildRetrans, wildDelay []float64
	dur := cfg.Duration
	if dur <= 0 {
		dur = 15 * time.Second
	}
	wildRuns := cfg.trials(2, 8)
	for _, p := range isp.FiveISPs() {
		trig := p.DrawTrigger(rng)
		for i := 0; i < wildRuns; i++ {
			out := p.Replays(rng.Int63(), dur, trig, 1, true)
			m := out[0].Measurements
			if len(m.Tx) == 0 {
				continue
			}
			wildRetrans = append(wildRetrans, float64(len(m.Loss))/float64(len(m.Tx))*100)
			// §C.2 estimates queueing delay as avg−min RTT; the profile runs
			// expose it via the same retransmission-based machinery, so
			// approximate with the TBF-induced delay bound (queue/rate).
			burst := float64(p.PlanRate) / 8 * p.RTT.Seconds()
			maxQ := p.QueueFactor * burst / (p.PlanRate / 8) * 1000 // ms
			wildDelay = append(wildDelay, maxQ*rng.Float64())
		}
	}

	report := &Report{
		ID:    "figure5",
		Title: "Original-replay retransmission rates and queueing delays: emulation vs past WeHe tests",
		Paper: "Figure 5: the emulation IQR covers the full range of wild retransmission rates and much of the delay range",
	}
	report.Tables = append(report.Tables,
		boxTable("retransmission rate (%)", map[string][]float64{
			"emulation": emuRetrans,
			"wild":      wildRetrans,
		}),
		boxTable("queueing delay (ms)", map[string][]float64{
			"emulation": emuDelay,
			"wild":      wildDelay,
		}),
	)
	iqrCovers := stats.Quantile(emuRetrans, 0.25) <= stats.Quantile(wildRetrans, 0.05) ||
		stats.Quantile(emuRetrans, 0.75) >= stats.Quantile(wildRetrans, 0.95)
	report.Notes = append(report.Notes,
		fmt.Sprintf("emulation retransmission IQR spans the wild range: %v", iqrCovers))
	return report
}

// boxTable renders named samples as Tukey boxplot rows.
func boxTable(metric string, samples map[string][]float64) Table {
	t := Table{
		Name:   metric,
		Header: []string{"dataset", "min", "q1", "median", "q3", "max", "outliers", "n"},
	}
	for _, name := range []string{"emulation", "wild"} {
		b := stats.Boxplot(samples[name])
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.2f", b.Min),
			fmt.Sprintf("%.2f", b.Q1),
			fmt.Sprintf("%.2f", b.Median),
			fmt.Sprintf("%.2f", b.Q3),
			fmt.Sprintf("%.2f", b.Max),
			fmt.Sprintf("%d", len(b.Outliers)),
			fmt.Sprintf("%d", b.N),
		})
	}
	return t
}
