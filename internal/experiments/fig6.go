package experiments

import (
	"fmt"
	"time"

	"github.com/nal-epfl/wehey/internal/core"
	"github.com/nal-epfl/wehey/internal/tomo"
)

// Figure6 reproduces the alternative-designs comparison (§6.2): the
// false-negative rate of WeHeY's loss-trend correlation vs the best
// classic-tomography baseline (BinLossTomoNoParams, Alg. 4), replaying
// modified (paced TCP / Poisson UDP) vs unmodified traces, over the §6.2
// rate-limiter grid with the limiter on the common link sequence.
//
// It also reports the §6.2 accounting: runs where WeHe itself would not
// have detected differentiation (insignificant throttling) are excluded,
// mirroring the paper's 360→319 filtering.
func Figure6(cfg Config) *Report {
	cfg.fill()
	g := DefaultGrid()
	seeds := cfg.trials(1, 5)
	factors := g.InputFactors
	queues := g.QueueFactors
	if !cfg.Full {
		factors = factors[:2]
		queues = queues[:2]
	}

	type cell struct {
		runs, excluded     int
		fnTrend, fnClassic int
	}
	results := map[string]*cell{}
	key := func(app string, modified bool) string {
		m := "unmodified"
		if modified {
			m = "modified"
		}
		return app + "/" + m
	}

	var specs []SimSpec
	var keys []string
	for _, app := range g.AllApps() {
		for _, modified := range []bool{true, false} {
			results[key(app, modified)] = &cell{}
			for _, f := range factors {
				for _, q := range queues {
					for s := 0; s < seeds; s++ {
						specs = append(specs, SimSpec{
							App:         app,
							InputFactor: f,
							QueueFactor: q,
							BgShare:     0.5,
							// The testbed's two paths (distinct GCP zones →
							// client) have unequal RTTs; path asymmetry is
							// what breaks binary tomography's same-interval
							// loss-status agreement (§4.3).
							RTT1:       25 * time.Millisecond,
							RTT2:       60 * time.Millisecond,
							Duration:   cfg.Duration,
							Unmodified: !modified,
							Seed:       specSeed(cfg.Seed, "figure6", fmt.Sprintf("%s/f=%g/q=%g", key(app, modified), f, q), s),
						})
						keys = append(keys, key(app, modified))
					}
				}
			}
		}
	}
	type verdict struct{ excluded, fnTrend, fnClassic bool }
	verdicts := ForEach(len(specs), cfg.workers(), func(i int) verdict {
		res := cfg.Sim(specs[i])
		// §6.2 exclusion: insignificant throttling (the replay barely lost
		// anything → WeHe would not have flagged differentiation).
		if res.M1.LossRate() < 0.005 && res.M2.LossRate() < 0.005 {
			return verdict{excluded: true}
		}
		var v verdict
		if lt, err := core.LossTrendCorrelation(&res.M1, &res.M2, core.LossTrendConfig{}); err != nil || !lt.CommonBottleneck {
			v.fnTrend = true
		}
		if !tomo.BinLossTomoNoParams(&res.M1, &res.M2, tomo.NoParamsConfig{}).CommonBottleneck {
			v.fnClassic = true
		}
		return v
	})
	total := len(specs)
	for i, v := range verdicts {
		c := results[keys[i]]
		switch {
		case v.excluded:
			c.excluded++
		default:
			c.runs++
			if v.fnTrend {
				c.fnTrend++
			}
			if v.fnClassic {
				c.fnClassic++
			}
		}
	}

	report := &Report{
		ID:    "figure6",
		Title: "False-negative rate of alternative designs (limiter on the common link)",
		Paper: "Figure 6: loss-trend + modified traces → FN 0; classic tomography +66–82% (TCP); unmodified traces worse still",
	}
	var rows [][]string
	excludedTotal := 0
	for _, app := range g.AllApps() {
		for _, modified := range []bool{true, false} {
			c := results[key(app, modified)]
			excludedTotal += c.excluded
			label := "unmodified"
			if modified {
				label = "modified"
			}
			rows = append(rows, []string{
				app, label,
				pct(c.fnTrend, c.runs),
				pct(c.fnClassic, c.runs),
				fmt.Sprintf("%d", c.runs),
			})
		}
	}
	report.Tables = []Table{{
		Header: []string{"trace pair", "replay", "FN loss-trend", "FN BinLossTomoNoParams", "runs"},
		Rows:   rows,
	}}
	report.Notes = append(report.Notes,
		fmt.Sprintf("%d experiments, %d excluded for insignificant throttling (paper: 360 run, 41 excluded, 319 analysed)", total, excludedTotal),
		"modified = paced TCP / Poisson-retimed UDP (§3.4); unmodified = recorded timing",
	)
	return report
}
