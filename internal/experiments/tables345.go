package experiments

import (
	"fmt"
	"time"

	"github.com/nal-epfl/wehey/internal/core"
)

// fnCellSpecs expands base into the severe-throttling parameter mix of
// §6.3 (input factors × background shares, trials each), seeding every run
// from its (experiment, cell, factor, share, trial) identity. Tables 3 and
// 4 both build on this mix ("we set the experimental parameters as in
// §6.2, except ...").
func fnCellSpecs(base SimSpec, baseSeed int64, experimentID, cellKey string, trials int) []SimSpec {
	var specs []SimSpec
	for _, f := range []float64{1.5, 2.5} {
		for _, share := range []float64{0.5, 0.75} {
			for k := 0; k < trials; k++ {
				spec := base
				spec.InputFactor = f
				spec.BgShare = share
				spec.Seed = specSeed(baseSeed, experimentID, fmt.Sprintf("%s/f=%g/share=%g", cellKey, f, share), k)
				specs = append(specs, spec)
			}
		}
	}
	return specs
}

// fnCounts fans specs out over the worker pool and returns the loss-trend
// FN count of each consecutive block of cellRuns specs (one block per
// table cell), in block order.
func fnCounts(cfg Config, specs []SimSpec, cellRuns int) []int {
	flags := ForEach(len(specs), cfg.workers(), func(i int) bool {
		res := cfg.Sim(specs[i])
		lt, err := core.LossTrendCorrelation(&res.M1, &res.M2, core.LossTrendConfig{})
		return err != nil || !lt.CommonBottleneck
	})
	fns := make([]int, 0, len(specs)/cellRuns)
	for start := 0; start < len(flags); start += cellRuns {
		fn := 0
		for _, miss := range flags[start : start+cellRuns] {
			if miss {
				fn++
			}
		}
		fns = append(fns, fn)
	}
	return fns
}

// Table3 reproduces the RTT limit study: RTT1 = 35 ms, RTT2 swept from
// 15 to 120 ms, limiter on the common link. FN degrades at 120 ms because
// the interval sweep (multiples of the larger RTT) leaves too few
// intervals per experiment.
func Table3(cfg Config) *Report {
	cfg.fill()
	trials := cfg.trials(1, 3)
	rtts := []time.Duration{15, 25, 35, 60, 120}
	for i := range rtts {
		rtts[i] *= time.Millisecond
	}

	header := []string{"pair"}
	tcpRow := []string{"TCP - FN"}
	udpRow := []string{"UDP - FN"}
	cellRuns := 4 * trials
	var specs []SimSpec
	for _, rtt2 := range rtts {
		header = append(header, fms(rtt2))
		base := SimSpec{
			RTT1: 35 * time.Millisecond, RTT2: rtt2,
			Duration: cfg.Duration,
		}
		base.App = TCPBulkApp
		specs = append(specs, fnCellSpecs(base, cfg.Seed, "table3", "tcp/rtt2="+fms(rtt2), trials)...)
		base.App = "zoom"
		specs = append(specs, fnCellSpecs(base, cfg.Seed, "table3", "udp/rtt2="+fms(rtt2), trials)...)
	}
	for i, fn := range fnCounts(cfg, specs, cellRuns) {
		if i%2 == 0 {
			tcpRow = append(tcpRow, pct(fn, cellRuns))
		} else {
			udpRow = append(udpRow, pct(fn, cellRuns))
		}
	}

	return &Report{
		ID:    "table3",
		Title: "False-negative rate for different RTT2 values (RTT1 = 35 ms)",
		Paper: "Table 3: TCP 21.66/25.86/28.33/31.66/50%; UDP 0/0/0/0/21.33% at 15/25/35/60/120 ms",
		Tables: []Table{{
			Header: header,
			Rows:   [][]string{tcpRow, udpRow},
		}},
		Notes: []string{fmt.Sprintf("%d runs per severe-throttling combo (4 per cell); degradation at 120 ms (ΔRTT = 85 ms) is the expected shape", trials)},
	}
}

// Table4 reproduces the congestion limit study: throttling on the common
// link plus standard congestion on the non-common links, at
// input/bandwidth ∈ {0.95, 1.05, 1.15}.
func Table4(cfg Config) *Report {
	cfg.fill()
	trials := cfg.trials(1, 3)
	factors := DefaultGrid().CongestionFactors

	header := []string{"pair"}
	udpRow := []string{"UDP - FN"}
	tcpRow := []string{"TCP - FN"}
	cellRuns := 4 * trials
	var specs []SimSpec
	for _, cf := range factors {
		header = append(header, fmt.Sprintf("%.2f", cf))
		base := SimSpec{
			RTT1: 35 * time.Millisecond, RTT2: 35 * time.Millisecond,
			CongestionFactor: cf,
			Duration:         cfg.Duration,
		}
		base.App = "zoom"
		specs = append(specs, fnCellSpecs(base, cfg.Seed, "table4", fmt.Sprintf("udp/cf=%g", cf), trials)...)
		base.App = TCPBulkApp
		specs = append(specs, fnCellSpecs(base, cfg.Seed, "table4", fmt.Sprintf("tcp/cf=%g", cf), trials)...)
	}
	for i, fn := range fnCounts(cfg, specs, cellRuns) {
		if i%2 == 0 {
			udpRow = append(udpRow, pct(fn, cellRuns))
		} else {
			tcpRow = append(tcpRow, pct(fn, cellRuns))
		}
	}

	return &Report{
		ID:    "table4",
		Title: "False-negative rate under severe congestion on the non-common links",
		Paper: "Table 4: UDP 0/0.38/2.38%; TCP 19.3/28/34.88% at 0.95/1.05/1.15 (arguably not real FNs: the dominant bottleneck moves)",
		Tables: []Table{{
			Header: header,
			Rows:   [][]string{udpRow, tcpRow},
		}},
		Notes: []string{fmt.Sprintf("%d runs per severe-throttling combo (4 per cell); FN must increase with congestion as the non-common links become the dominant bottlenecks", trials)},
	}
}

// Table5 reproduces the ultimate FP test: identically configured,
// independent rate limiters on each non-common link, per trace pair. The
// loss-trend correlation must stay at or below the 5% FP target.
func Table5(cfg Config) *Report {
	cfg.fill()
	trials := cfg.trials(4, 20)
	g := DefaultGrid()

	header := []string{}
	row := []string{}
	var specs []SimSpec
	for _, app := range g.AllApps() {
		label := app
		if app == TCPBulkApp {
			label = "TCP"
		}
		header = append(header, label)
		for i := 0; i < trials; i++ {
			// Vary limiter configs across trials, identical within each.
			f := g.InputFactors[i%len(g.InputFactors)]
			q := g.QueueFactors[i%len(g.QueueFactors)]
			specs = append(specs, SimSpec{
				App:         app,
				InputFactor: f,
				QueueFactor: q,
				BgShare:     0.5,
				Placement:   LimiterNonCommon,
				Duration:    cfg.Duration,
				Seed:        specSeed(cfg.Seed, "table5", app, i),
			})
		}
	}
	fpFlags := ForEach(len(specs), cfg.workers(), func(i int) bool {
		res := cfg.Sim(specs[i])
		lt, err := core.LossTrendCorrelation(&res.M1, &res.M2, core.LossTrendConfig{})
		return err == nil && lt.CommonBottleneck
	})
	for start := 0; start < len(fpFlags); start += trials {
		fp := 0
		for _, hit := range fpFlags[start : start+trials] {
			if hit {
				fp++
			}
		}
		row = append(row, pct(fp, trials))
	}

	return &Report{
		ID:    "table5",
		Title: "False-positive rate under identical independent rate limiters",
		Paper: "Table 5: 1.13% (TCP), 2.5/1.67/3.75/3.27/2.5% (UDP apps) — at or below the 5% target",
		Tables: []Table{{
			Header: header,
			Rows:   [][]string{row},
		}},
		Notes: []string{fmt.Sprintf("%d runs per trace pair, limiter configs cycled over the Table 2 grid", trials)},
	}
}
