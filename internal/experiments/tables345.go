package experiments

import (
	"fmt"
	"time"

	"github.com/nal-epfl/wehey/internal/core"
)

// fnCell runs the severe-throttling parameter mix of §6.3 (input factors ×
// background shares) with the given overrides, seeds times each, and
// returns the loss-trend FN count. Tables 3 and 4 both build on this mix
// ("we set the experimental parameters as in §6.2, except ...").
func fnCell(base SimSpec, seed int64, seeds int) (fn, runs int) {
	for _, f := range []float64{1.5, 2.5} {
		for _, share := range []float64{0.5, 0.75} {
			for k := 0; k < seeds; k++ {
				spec := base
				spec.InputFactor = f
				spec.BgShare = share
				seed++
				spec.Seed = seed
				res := RunSim(spec)
				runs++
				lt, err := core.LossTrendCorrelation(&res.M1, &res.M2, core.LossTrendConfig{})
				if err != nil || !lt.CommonBottleneck {
					fn++
				}
			}
		}
	}
	return fn, runs
}

// Table3 reproduces the RTT limit study: RTT1 = 35 ms, RTT2 swept from
// 15 to 120 ms, limiter on the common link. FN degrades at 120 ms because
// the interval sweep (multiples of the larger RTT) leaves too few
// intervals per experiment.
func Table3(cfg Config) *Report {
	cfg.fill()
	trials := cfg.trials(1, 3)
	rtts := []time.Duration{15, 25, 35, 60, 120}
	for i := range rtts {
		rtts[i] *= time.Millisecond
	}

	header := []string{"pair"}
	tcpRow := []string{"TCP - FN"}
	udpRow := []string{"UDP - FN"}
	seed := cfg.Seed + 3000
	for _, rtt2 := range rtts {
		header = append(header, fms(rtt2))
		base := SimSpec{
			RTT1: 35 * time.Millisecond, RTT2: rtt2,
			Duration: cfg.Duration,
		}
		base.App = TCPBulkApp
		fn, runs := fnCell(base, seed, trials)
		tcpRow = append(tcpRow, pct(fn, runs))
		seed += int64(4 * trials)

		base.App = "zoom"
		fn, runs = fnCell(base, seed, trials)
		udpRow = append(udpRow, pct(fn, runs))
		seed += int64(4 * trials)
	}

	return &Report{
		ID:    "table3",
		Title: "False-negative rate for different RTT2 values (RTT1 = 35 ms)",
		Paper: "Table 3: TCP 21.66/25.86/28.33/31.66/50%; UDP 0/0/0/0/21.33% at 15/25/35/60/120 ms",
		Tables: []Table{{
			Header: header,
			Rows:   [][]string{tcpRow, udpRow},
		}},
		Notes: []string{fmt.Sprintf("%d runs per severe-throttling combo (4 per cell); degradation at 120 ms (ΔRTT = 85 ms) is the expected shape", trials)},
	}
}

// Table4 reproduces the congestion limit study: throttling on the common
// link plus standard congestion on the non-common links, at
// input/bandwidth ∈ {0.95, 1.05, 1.15}.
func Table4(cfg Config) *Report {
	cfg.fill()
	trials := cfg.trials(1, 3)
	factors := DefaultGrid().CongestionFactors

	header := []string{"pair"}
	udpRow := []string{"UDP - FN"}
	tcpRow := []string{"TCP - FN"}
	seed := cfg.Seed + 4000
	for _, cf := range factors {
		header = append(header, fmt.Sprintf("%.2f", cf))
		base := SimSpec{
			RTT1: 35 * time.Millisecond, RTT2: 35 * time.Millisecond,
			CongestionFactor: cf,
			Duration:         cfg.Duration,
		}
		base.App = "zoom"
		fn, runs := fnCell(base, seed, trials)
		udpRow = append(udpRow, pct(fn, runs))
		seed += int64(4 * trials)

		base.App = TCPBulkApp
		fn, runs = fnCell(base, seed, trials)
		tcpRow = append(tcpRow, pct(fn, runs))
		seed += int64(4 * trials)
	}

	return &Report{
		ID:    "table4",
		Title: "False-negative rate under severe congestion on the non-common links",
		Paper: "Table 4: UDP 0/0.38/2.38%; TCP 19.3/28/34.88% at 0.95/1.05/1.15 (arguably not real FNs: the dominant bottleneck moves)",
		Tables: []Table{{
			Header: header,
			Rows:   [][]string{udpRow, tcpRow},
		}},
		Notes: []string{fmt.Sprintf("%d runs per severe-throttling combo (4 per cell); FN must increase with congestion as the non-common links become the dominant bottlenecks", trials)},
	}
}

// Table5 reproduces the ultimate FP test: identically configured,
// independent rate limiters on each non-common link, per trace pair. The
// loss-trend correlation must stay at or below the 5% FP target.
func Table5(cfg Config) *Report {
	cfg.fill()
	trials := cfg.trials(4, 20)
	g := DefaultGrid()

	header := []string{}
	row := []string{}
	seed := cfg.Seed + 5000
	for _, app := range g.AllApps() {
		label := app
		if app == TCPBulkApp {
			label = "TCP"
		}
		header = append(header, label)
		fp := 0
		runs := 0
		for i := 0; i < trials; i++ {
			// Vary limiter configs across trials, identical within each.
			f := g.InputFactors[i%len(g.InputFactors)]
			q := g.QueueFactors[i%len(g.QueueFactors)]
			seed++
			res := RunSim(SimSpec{
				App:         app,
				InputFactor: f,
				QueueFactor: q,
				BgShare:     0.5,
				Placement:   LimiterNonCommon,
				Duration:    cfg.Duration,
				Seed:        seed,
			})
			runs++
			lt, err := core.LossTrendCorrelation(&res.M1, &res.M2, core.LossTrendConfig{})
			if err == nil && lt.CommonBottleneck {
				fp++
			}
		}
		row = append(row, pct(fp, runs))
	}

	return &Report{
		ID:    "table5",
		Title: "False-positive rate under identical independent rate limiters",
		Paper: "Table 5: 1.13% (TCP), 2.5/1.67/3.75/3.27/2.5% (UDP apps) — at or below the 5% target",
		Tables: []Table{{
			Header: header,
			Rows:   [][]string{row},
		}},
		Notes: []string{fmt.Sprintf("%d runs per trace pair, limiter configs cycled over the Table 2 grid", trials)},
	}
}
