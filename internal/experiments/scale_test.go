package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestScaleReductionMeetsTarget pins the tentpole acceptance number: at the
// paper's 168 Mbit/s aggregate the fluid background must cost at least 50x
// fewer simulated events than the projected packet-mode count. A short
// horizon suffices — both the projection and the fluid cost scale with it.
func TestScaleReductionMeetsTarget(t *testing.T) {
	cfg := Config{Seed: 1, Trials: 1, Duration: 12 * time.Second, Cache: NewSimCache()}
	cfg.fill()
	stats := runScaleArms(cfg)

	packet32, fluid32, fluid168 := stats[0], stats[1], stats[2]
	if !(packet32.bgEvents <= 0) {
		t.Errorf("packet arm reported %v bg events, want 0", packet32.bgEvents)
	}
	if !(fluid32.events < packet32.events) {
		t.Errorf("fluid mode cost %v events vs packet %v — no saving at 32 Mbit/s",
			fluid32.events, packet32.events)
	}
	// The paper-scale arm must actually reach a paper-scale population
	// (~400 concurrent flows at 45 s; the 12 s ramp reaches fewer).
	if fluid168.peakFlows < 150 {
		t.Errorf("peak background flow population %d, want ≥150 on a 12 s ramp", fluid168.peakFlows)
	}
	red := ScaleReduction(packet32, fluid32, fluid168)
	if red < 50 {
		t.Errorf("background event reduction %.1fx at 168 Mbit/s, want ≥50x", red)
	}
	t.Logf("events/trial: packet32=%.0f fluid32=%.0f fluid168=%.0f (bg %.0f), reduction %.0fx, peak flows %d",
		packet32.events, fluid32.events, fluid168.events, fluid168.bgEvents, red, fluid168.peakFlows)
}

// TestAblationScaleReportRenders checks the opt-in report's shape and that
// it is reachable through Lookup but absent from the default set.
func TestAblationScaleReportRenders(t *testing.T) {
	if _, ok := Lookup("ablation-scale"); !ok {
		t.Fatal("ablation-scale not addressable via Lookup")
	}
	for _, n := range Names() {
		if n == "ablation-scale" {
			t.Fatal("ablation-scale leaked into the default -run all set")
		}
	}
	found := false
	for _, n := range ExtraNames() {
		if n == "ablation-scale" {
			found = true
		}
	}
	if !found {
		t.Fatal("ablation-scale missing from ExtraNames")
	}

	cfg := Config{Seed: 1, Trials: 1, Duration: 12 * time.Second, Cache: NewSimCache()}
	r := AblationScale(cfg)
	if len(r.Tables) != 1 || len(r.Tables[0].Rows) != 3 {
		t.Fatalf("report shape: %+v", r.Tables)
	}
	var b strings.Builder
	r.Render(&b)
	out := b.String()
	for _, want := range []string{"ablation-scale", "168 Mbit/s", "target ≥50x"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q", want)
		}
	}
}
