package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Report is the rendered outcome of one experiment: the rows/series the
// corresponding paper table/figure presents, plus the paper's numbers for
// side-by-side comparison.
type Report struct {
	ID    string // e.g. "table1"
	Title string
	// Paper summarizes what the paper reports for this table/figure.
	Paper  string
	Tables []Table
	Series []Series
	Notes  []string
}

// Table is one printable table.
type Table struct {
	Name   string
	Header []string
	Rows   [][]string
}

// Series is one printable data series (a figure's curve or scatter).
type Series struct {
	Name   string
	XLabel string
	YLabel string
	X, Y   []float64
}

// Render writes the report as aligned text.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	if r.Paper != "" {
		fmt.Fprintf(w, "paper: %s\n", r.Paper)
	}
	for i := range r.Tables {
		fmt.Fprintln(w)
		r.Tables[i].render(w)
	}
	for i := range r.Series {
		fmt.Fprintln(w)
		r.Series[i].render(w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

func (t *Table) render(w io.Writer) {
	if t.Name != "" {
		fmt.Fprintf(w, "-- %s --\n", t.Name)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	printRow(t.Header)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		printRow(row)
	}
}

// render prints the series as a compact two-column listing plus a crude
// text sparkline for quick visual inspection.
func (s *Series) render(w io.Writer) {
	fmt.Fprintf(w, "-- series: %s (%s vs %s, %d points) --\n", s.Name, s.YLabel, s.XLabel, len(s.Y))
	fmt.Fprintf(w, "%s\n", sparkline(s.Y, 80))
	n := len(s.Y)
	step := 1
	if n > 12 {
		step = n / 12
	}
	for i := 0; i < n; i += step {
		fmt.Fprintf(w, "  %-12.4g %.4g\n", s.X[i], s.Y[i])
	}
}

// sparkline draws ys as a unicode block-character strip of at most width
// cells.
func sparkline(ys []float64, width int) string {
	if len(ys) == 0 {
		return "(empty)"
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	// Downsample by averaging buckets.
	n := len(ys)
	if width > n {
		width = n
	}
	agg := make([]float64, width)
	for i := range agg {
		lo, hi := i*n/width, (i+1)*n/width
		if hi <= lo {
			hi = lo + 1
		}
		var sum float64
		for _, v := range ys[lo:hi] {
			sum += v
		}
		agg[i] = sum / float64(hi-lo)
	}
	minV, maxV := agg[0], agg[0]
	for _, v := range agg {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	span := maxV - minV
	var b strings.Builder
	for _, v := range agg {
		idx := 0
		if span > 0 {
			idx = int((v - minV) / span * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}

// Config tunes experiment scale. The zero value gives quick defaults;
// Full approximates the paper's scale.
type Config struct {
	// Trials is the number of runs per cell (0 = per-experiment default).
	Trials int
	// Seed is the base seed (default 1).
	Seed int64
	// Duration overrides the replay duration.
	Duration time.Duration
	// Full selects paper-scale trial counts.
	Full bool
	// Workers is the simulation worker-pool width (0 = GOMAXPROCS). Any
	// value produces byte-identical reports; see runner.go.
	Workers int
	// Cache, when set, memoizes RunSim across experiments (see cache.go):
	// identical specs simulate once per process — and once ever, with a
	// disk-backed cache. nil runs every simulation directly. Reports are
	// byte-identical with and without a cache.
	Cache *SimCache
	// BackgroundMode, when non-empty, is the default SimSpec.BackgroundMode
	// for specs that don't pin one: BgModePacket or BgModeFluid (the hybrid
	// fluid background of DESIGN.md §14). It routes through the cache key,
	// so fluid and packet runs never alias.
	BackgroundMode string
}

func (c *Config) fill() {
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// trials picks the trial count: explicit > full-scale > quick default.
func (c *Config) trials(quick, full int) int {
	if c.Trials > 0 {
		return c.Trials
	}
	if c.Full {
		return full
	}
	return quick
}

func pct(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}

func fms(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
}
