package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// randomTrace builds a structurally valid random trace.
func randomTrace(rng *rand.Rand) *Trace {
	apps := append(VideoApps(), RTCApps()...)
	app := apps[rng.Intn(len(apps))]
	dur := time.Duration(1+rng.Intn(5)) * time.Second
	tr, err := Generate(app, rng, dur)
	if err != nil {
		panic(err)
	}
	return tr
}

// Property: bit inversion is an involution (applying it twice restores the
// original payloads) and never changes shape.
func TestBitInvertInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		orig := randomTrace(rng)
		twice := BitInvert(BitInvert(orig))
		if len(twice.Packets) != len(orig.Packets) {
			return false
		}
		for i := range orig.Packets {
			a, b := orig.Packets[i], twice.Packets[i]
			if a.Offset != b.Offset || a.Size != b.Size || a.Dir != b.Dir {
				return false
			}
			if !bytes.Equal(a.Payload, b.Payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Poisson retiming preserves packet population (counts, sizes,
// total bytes) and validity.
func TestPoissonRetimePopulationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		orig := randomTrace(rng)
		ret := PoissonRetime(rand.New(rand.NewSource(seed+1)), orig)
		if ret.Validate() != nil {
			return false
		}
		return ret.Count(ServerToClient) == orig.Count(ServerToClient) &&
			ret.TotalBytes(ServerToClient) == orig.TotalBytes(ServerToClient) &&
			ret.Count(ClientToServer) == orig.Count(ClientToServer)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: ExtendTo always reaches the target duration, preserves
// validity, and multiplies the byte volume consistently.
func TestExtendToProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		orig := randomTrace(rng)
		target := orig.Duration()*2 + time.Second
		ext := ExtendTo(orig, target)
		if ext.Validate() != nil || ext.Duration() < target {
			return false
		}
		// Byte volume is an integer multiple of the original's.
		ob, eb := orig.TotalBytes(ServerToClient), ext.TotalBytes(ServerToClient)
		return ob == 0 || eb%ob == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the binary codec round-trips any generated trace exactly.
func TestBinaryCodecProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		orig := randomTrace(rng)
		var buf bytes.Buffer
		if Encode(&buf, orig) != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil || len(got.Packets) != len(orig.Packets) {
			return false
		}
		for i := range orig.Packets {
			a, b := orig.Packets[i], got.Packets[i]
			if a.Offset != b.Offset || a.Size != b.Size || a.Dir != b.Dir || !bytes.Equal(a.Payload, b.Payload) {
				return false
			}
		}
		return got.App == orig.App && got.SNI == orig.SNI && got.Transport == orig.Transport
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
