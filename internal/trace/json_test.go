package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

func TestJSONRoundTrip(t *testing.T) {
	orig, err := Generate("netflix", rand.New(rand.NewSource(1)), 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != orig.App || got.SNI != orig.SNI || got.Transport != orig.Transport {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Packets) != len(orig.Packets) {
		t.Fatalf("count %d vs %d", len(got.Packets), len(orig.Packets))
	}
	for i := range orig.Packets {
		a, b := orig.Packets[i], got.Packets[i]
		// JSON offsets carry microsecond resolution.
		if a.Offset.Truncate(time.Microsecond) != b.Offset {
			t.Fatalf("packet %d offset %v vs %v", i, a.Offset, b.Offset)
		}
		if a.Size != b.Size || a.Dir != b.Dir || !bytes.Equal(a.Payload, b.Payload) {
			t.Fatalf("packet %d mismatch", i)
		}
	}
}

func TestJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewReader([]byte("{"))); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := ReadJSON(bytes.NewReader([]byte(`{"app":"x","transport":"carrier-pigeon"}`))); err == nil {
		t.Error("unknown transport accepted")
	}
	if _, err := ReadJSON(bytes.NewReader([]byte(`{"app":"x","transport":"udp","packets":[{"offset_us":1,"size":5,"dir":"sideways"}]}`))); err == nil {
		t.Error("unknown direction accepted")
	}
	// Unsorted offsets fail Validate.
	bad := `{"app":"x","transport":"udp","packets":[{"offset_us":10,"size":5,"dir":"s2c"},{"offset_us":1,"size":5,"dir":"s2c"}]}`
	if _, err := ReadJSON(bytes.NewReader([]byte(bad))); err == nil {
		t.Error("unsorted trace accepted")
	}
}
