package trace

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestTransportDirectionStrings(t *testing.T) {
	if TCP.String() != "tcp" || UDP.String() != "udp" {
		t.Error("Transport strings")
	}
	if Transport(9).String() == "" {
		t.Error("unknown transport should still stringify")
	}
	if ServerToClient.String() != "s2c" || ClientToServer.String() != "c2s" {
		t.Error("Direction strings")
	}
	if Direction(9).String() == "" {
		t.Error("unknown direction should still stringify")
	}
}

func TestTraceAccounting(t *testing.T) {
	tr := &Trace{
		App: "test",
		Packets: []Packet{
			{Offset: 0, Size: 100, Dir: ClientToServer},
			{Offset: time.Second, Size: 1000, Dir: ServerToClient},
			{Offset: 2 * time.Second, Size: 1000, Dir: ServerToClient},
		},
	}
	if tr.Duration() != 2*time.Second {
		t.Errorf("Duration = %v", tr.Duration())
	}
	if tr.TotalBytes(ServerToClient) != 2000 {
		t.Errorf("TotalBytes s2c = %v", tr.TotalBytes(ServerToClient))
	}
	if tr.TotalBytes(ClientToServer) != 100 {
		t.Errorf("TotalBytes c2s = %v", tr.TotalBytes(ClientToServer))
	}
	if tr.Count(ServerToClient) != 2 {
		t.Errorf("Count = %v", tr.Count(ServerToClient))
	}
	// 2000 bytes over 2 s = 8000 bit/s.
	if got := tr.AvgRate(ServerToClient); math.Abs(got-8000) > 1e-9 {
		t.Errorf("AvgRate = %v, want 8000", got)
	}
	empty := &Trace{}
	if empty.Duration() != 0 || empty.AvgRate(ServerToClient) != 0 {
		t.Error("empty trace accounting")
	}
}

func TestTraceCloneIsDeep(t *testing.T) {
	tr := &Trace{
		App:     "x",
		SNI:     "x.com",
		Packets: []Packet{{Size: 3, Payload: []byte{1, 2, 3}}},
	}
	cl := tr.Clone()
	cl.Packets[0].Payload[0] = 99
	cl.Packets[0].Size = 7
	if tr.Packets[0].Payload[0] != 1 || tr.Packets[0].Size != 3 {
		t.Error("Clone is not deep")
	}
}

func TestTraceValidate(t *testing.T) {
	good := &Trace{Packets: []Packet{{Offset: 0, Size: 10}, {Offset: time.Second, Size: 10}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	bad := &Trace{Packets: []Packet{{Offset: time.Second, Size: 10}, {Offset: 0, Size: 10}}}
	if err := bad.Validate(); err == nil {
		t.Error("unsorted offsets accepted")
	}
	neg := &Trace{Packets: []Packet{{Size: -1}}}
	if err := neg.Validate(); err == nil {
		t.Error("negative size accepted")
	}
	overflow := &Trace{Packets: []Packet{{Size: 2, Payload: []byte{1, 2, 3}}}}
	if err := overflow.Validate(); err == nil {
		t.Error("payload larger than size accepted")
	}
}

func TestGenerateAllApps(t *testing.T) {
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			tr, err := Generate(p.Name, rng, 10*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			if tr.Transport != p.Transport {
				t.Errorf("transport = %v, want %v", tr.Transport, p.Transport)
			}
			if got := tr.Duration(); got < 9*time.Second || got > 12*time.Second {
				t.Errorf("duration = %v, want ≈10s", got)
			}
			// Average rate should land within a factor ~2 of the profile's
			// nominal rate (segment/frame size randomness moves it around).
			var nominal float64
			if p.Transport == TCP {
				nominal = p.Bitrate
			} else {
				nominal = float64(p.MeanFrameSize) * 8 / p.FrameInterval.Seconds()
			}
			got := tr.AvgRate(ServerToClient)
			if got < nominal*0.4 || got > nominal*2.2 {
				t.Errorf("AvgRate = %.0f, profile nominal %.0f", got, nominal)
			}
			// The handshake must carry the SNI for DPI to match.
			if sni := SNIFromPayload(tr.Packets[0].Payload); sni != p.SNI {
				t.Errorf("handshake SNI = %q, want %q", sni, p.SNI)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate("netflix", rand.New(rand.NewSource(7)), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("netflix", rand.New(rand.NewSource(7)), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Packets) != len(b.Packets) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Packets), len(b.Packets))
	}
	for i := range a.Packets {
		if a.Packets[i].Offset != b.Packets[i].Offset ||
			a.Packets[i].Size != b.Packets[i].Size || a.Packets[i].Dir != b.Packets[i].Dir {
			t.Fatalf("packet %d differs", i)
		}
	}
}

func TestGenerateUnknownApp(t *testing.T) {
	if _, err := Generate("myspace", rand.New(rand.NewSource(1)), time.Second); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestVideoAndRTCAppLists(t *testing.T) {
	if got := len(VideoApps()); got != 5 {
		t.Errorf("VideoApps = %v", VideoApps())
	}
	if got := len(RTCApps()); got != 5 {
		t.Errorf("RTCApps = %v", RTCApps())
	}
}

func TestSNIFromPayloadRejectsGarbage(t *testing.T) {
	if got := SNIFromPayload(nil); got != "" {
		t.Errorf("nil payload: %q", got)
	}
	if got := SNIFromPayload([]byte{1, 2, 3}); got != "" {
		t.Errorf("short garbage: %q", got)
	}
	hello := clientHello("example.com")
	if got := SNIFromPayload(hello); got != "example.com" {
		t.Errorf("round trip: %q", got)
	}
	// Truncated length field.
	trunc := append([]byte(nil), hello[:6]...)
	if got := SNIFromPayload(trunc); got != "" {
		t.Errorf("truncated: %q", got)
	}
}
