package trace

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// MTUPayload is the transport payload carried by a full-size packet
// (1500-byte MTU minus IP/transport headers, rounded to the 1400 bytes WeHe
// traces use).
const MTUPayload = 1400

// AppProfile describes the traffic shape of one application class. WeHe
// ships lab recordings of each app; we generate statistically equivalent
// synthetic traces from these profiles instead (see the package comment).
type AppProfile struct {
	Name      string
	Transport Transport
	SNI       string

	// Video (TCP) parameters: adaptive-bitrate segment downloads.
	SegmentInterval time.Duration // time between segment fetches
	Bitrate         float64       // average downstream rate, bits/s

	// Real-time (UDP) parameters: periodic media frames.
	FrameInterval  time.Duration // inter-frame spacing
	MeanFrameSize  int           // mean downstream frame payload, bytes
	FrameJitter    int           // ± uniform jitter on frame size, bytes
	UplinkFraction float64       // uplink rate as a fraction of downlink
}

// profiles lists the ten applications the paper evaluates with: five TCP
// video services (Table 1, §5) and the five UDP applications WeHe replays
// (§6.1): Skype, WhatsApp, MS Teams, Zoom, and Webex.
var profiles = []AppProfile{
	{Name: "netflix", Transport: TCP, SNI: "nflxvideo.net", SegmentInterval: 4 * time.Second, Bitrate: 5e6},
	{Name: "youtube", Transport: TCP, SNI: "googlevideo.com", SegmentInterval: 2500 * time.Millisecond, Bitrate: 6e6},
	{Name: "disneyplus", Transport: TCP, SNI: "disneyplus.com", SegmentInterval: 4 * time.Second, Bitrate: 4.5e6},
	{Name: "amazonprime", Transport: TCP, SNI: "aiv-cdn.net", SegmentInterval: 3 * time.Second, Bitrate: 5.5e6},
	{Name: "twitch", Transport: TCP, SNI: "ttvnw.net", SegmentInterval: 2 * time.Second, Bitrate: 4e6},

	// Frame sizes/intervals reproduce the video-call rates of the WeHe
	// traces (1–2.5 Mbit/s, 100–260 packets/s after MTU fragmentation).
	{Name: "skype", Transport: UDP, SNI: "skype.com", FrameInterval: 16667 * time.Microsecond, MeanFrameSize: 2500, FrameJitter: 700, UplinkFraction: 0.5},
	{Name: "whatsapp", Transport: UDP, SNI: "whatsapp.net", FrameInterval: 20 * time.Millisecond, MeanFrameSize: 2100, FrameJitter: 600, UplinkFraction: 0.6},
	{Name: "msteams", Transport: UDP, SNI: "teams.microsoft.com", FrameInterval: 16667 * time.Microsecond, MeanFrameSize: 3750, FrameJitter: 900, UplinkFraction: 0.4},
	{Name: "zoom", Transport: UDP, SNI: "zoom.us", FrameInterval: 16667 * time.Microsecond, MeanFrameSize: 4600, FrameJitter: 1000, UplinkFraction: 0.4},
	{Name: "webex", Transport: UDP, SNI: "webex.com", FrameInterval: 20 * time.Millisecond, MeanFrameSize: 5000, FrameJitter: 1100, UplinkFraction: 0.35},
}

// Profiles returns all known application profiles.
func Profiles() []AppProfile { return append([]AppProfile(nil), profiles...) }

// VideoApps returns the names of the TCP video applications.
func VideoApps() []string { return appsByTransport(TCP) }

// RTCApps returns the names of the UDP real-time applications.
func RTCApps() []string { return appsByTransport(UDP) }

func appsByTransport(tp Transport) []string {
	var out []string
	for _, p := range profiles {
		if p.Transport == tp {
			out = append(out, p.Name)
		}
	}
	sort.Strings(out)
	return out
}

// ProfileByName returns the profile of a named application.
func ProfileByName(name string) (AppProfile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return AppProfile{}, fmt.Errorf("trace: unknown application %q", name)
}

// Generate synthesizes a trace of the named application lasting
// approximately dur, using rng for all stochastic choices. The same
// (name, seed, dur) always yields the same trace.
func Generate(name string, rng *rand.Rand, dur time.Duration) (*Trace, error) {
	p, err := ProfileByName(name)
	if err != nil {
		return nil, err
	}
	if p.Transport == TCP {
		return generateVideo(p, rng, dur), nil
	}
	return generateRTC(p, rng, dur), nil
}

// handshake emits the connection-opening packets: a client hello carrying
// the SNI (the plaintext token DPI-based differentiation matches on, §2.1)
// and the server's response.
func handshake(tr *Trace, sni string) time.Duration {
	hello := clientHello(sni)
	tr.Packets = append(tr.Packets,
		Packet{Offset: 0, Size: len(hello), Dir: ClientToServer, Payload: hello},
		// The server's certificate flight fragments across the MTU.
		Packet{Offset: 15 * time.Millisecond, Size: MTUPayload, Dir: ServerToClient},
		Packet{Offset: 15*time.Millisecond + 200*time.Microsecond, Size: MTUPayload, Dir: ServerToClient},
		Packet{Offset: 30 * time.Millisecond, Size: 80, Dir: ClientToServer},
	)
	return 35 * time.Millisecond
}

// HandshakePayload builds the SNI-bearing client-hello payload used by
// the generated traces; exposed for tools that craft custom flows a DPI
// classifier should match (e.g. testbed background traffic).
func HandshakePayload(sni string) []byte { return clientHello(sni) }

// clientHello builds a minimal TLS-ClientHello-shaped payload whose
// server_name extension carries sni. Only the SNI bytes matter to
// consumers (DPI classifiers scan for them); the framing is cosmetic.
func clientHello(sni string) []byte {
	b := make([]byte, 0, 128+len(sni))
	b = append(b, 0x16, 0x03, 0x01) // TLS handshake, version 3.1
	body := append([]byte{0x01, 0x00}, []byte(sni)...)
	b = append(b, byte(len(body)>>8), byte(len(body)))
	b = append(b, body...)
	// Pad to a typical ClientHello size.
	for len(b) < 280 {
		b = append(b, 0)
	}
	return b
}

// SNIFromPayload extracts the server name from a payload built by
// clientHello, or "" when the payload does not parse (e.g. after bit
// inversion). This is the classifier's view of the packet.
func SNIFromPayload(p []byte) string {
	if len(p) < 7 || p[0] != 0x16 || p[1] != 0x03 {
		return ""
	}
	n := int(p[3])<<8 | int(p[4])
	if n < 2 || 5+n > len(p) {
		return ""
	}
	if p[5] != 0x01 || p[6] != 0x00 {
		return ""
	}
	return string(p[7 : 5+n])
}

func generateVideo(p AppProfile, rng *rand.Rand, dur time.Duration) *Trace {
	tr := &Trace{App: p.Name, Transport: TCP, SNI: p.SNI}
	t := handshake(tr, p.SNI)

	segBytes := p.Bitrate * p.SegmentInterval.Seconds() / 8
	for t < dur {
		// Client requests the next segment.
		tr.Packets = append(tr.Packets, Packet{Offset: t, Size: 400, Dir: ClientToServer})
		t += 10 * time.Millisecond

		// Segment size varies ±25% (ABR ladder steps and scene complexity).
		bytesLeft := int(segBytes * (0.75 + 0.5*rng.Float64()))
		// The server ships the segment as a burst of MTU packets spaced at
		// a jittered sub-millisecond serialization time (the recorded shape;
		// replayed TCP ignores these offsets and lets CC pace instead).
		for bytesLeft > 0 && t < dur {
			size := MTUPayload
			if bytesLeft < size {
				size = bytesLeft
			}
			tr.Packets = append(tr.Packets, Packet{Offset: t, Size: size, Dir: ServerToClient})
			bytesLeft -= size
			t += time.Duration(300+rng.Intn(400)) * time.Microsecond
		}
		// Idle until the next segment boundary (client buffers ahead).
		idle := p.SegmentInterval - time.Duration(float64(p.SegmentInterval)*0.15*rng.Float64())
		next := t + idle
		// Sparse keep-alive/ACK chatter during the idle period.
		for ka := t + 500*time.Millisecond; ka < next && ka < dur; ka += 500 * time.Millisecond {
			tr.Packets = append(tr.Packets, Packet{Offset: ka, Size: 60, Dir: ClientToServer})
		}
		t = next
	}
	sortPacketsByOffset(tr.Packets)
	return tr
}

func generateRTC(p AppProfile, rng *rand.Rand, dur time.Duration) *Trace {
	tr := &Trace{App: p.Name, Transport: UDP, SNI: p.SNI}
	t := handshake(tr, p.SNI)

	upEvery := 1
	if p.UplinkFraction > 0 {
		upEvery = int(1/p.UplinkFraction + 0.5)
		if upEvery < 1 {
			upEvery = 1
		}
	}
	frame := 0
	for ; t < dur; frame++ {
		size := p.MeanFrameSize + rng.Intn(2*p.FrameJitter+1) - p.FrameJitter
		if size < 40 {
			size = 40
		}
		// Large frames fragment across MTU-size packets back-to-back.
		off := t
		for size > 0 {
			s := size
			if s > MTUPayload {
				s = MTUPayload
			}
			tr.Packets = append(tr.Packets, Packet{Offset: off, Size: s, Dir: ServerToClient})
			size -= s
			off += 200 * time.Microsecond
		}
		if p.UplinkFraction > 0 && frame%upEvery == 0 {
			upSize := int(float64(p.MeanFrameSize)*p.UplinkFraction) + rng.Intn(100)
			tr.Packets = append(tr.Packets, Packet{Offset: t + time.Millisecond, Size: upSize, Dir: ClientToServer})
		}
		// Frame interval with ±10% pacing jitter.
		jitter := time.Duration((rng.Float64() - 0.5) * 0.2 * float64(p.FrameInterval))
		t += p.FrameInterval + jitter
	}
	sortPacketsByOffset(tr.Packets)
	return tr
}
