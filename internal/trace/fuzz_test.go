package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

// FuzzDecode checks that the binary trace decoder never panics and that
// anything it accepts re-encodes and re-decodes identically.
func FuzzDecode(f *testing.F) {
	// Seed corpus: valid encodings plus mutations.
	for _, app := range []string{"netflix", "zoom"} {
		tr, err := Generate(app, rand.New(rand.NewSource(1)), time.Second)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("WHTR\x01"))
	f.Add([]byte("XXXX"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must round-trip.
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		tr2, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(tr2.Packets) != len(tr.Packets) || tr2.App != tr.App {
			t.Fatal("round trip mismatch")
		}
	})
}

// FuzzReadJSON checks the JSON trace decoder never panics.
func FuzzReadJSON(f *testing.F) {
	tr, err := Generate("skype", rand.New(rand.NewSource(2)), time.Second)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"app":"x","transport":"udp","packets":[]}`))
	f.Add([]byte(`{`))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted trace fails validation: %v", err)
		}
	})
}
