package trace

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestBitInvertDestroysSNIKeepsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	orig, err := Generate("zoom", rng, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	inv := BitInvert(orig)

	if len(inv.Packets) != len(orig.Packets) {
		t.Fatal("packet count changed")
	}
	for i := range orig.Packets {
		if inv.Packets[i].Offset != orig.Packets[i].Offset {
			t.Fatalf("packet %d timing changed", i)
		}
		if inv.Packets[i].Size != orig.Packets[i].Size {
			t.Fatalf("packet %d size changed", i)
		}
		if inv.Packets[i].Dir != orig.Packets[i].Dir {
			t.Fatalf("packet %d direction changed", i)
		}
	}
	// The SNI must no longer be recoverable from the inverted handshake.
	if got := SNIFromPayload(inv.Packets[0].Payload); got != "" {
		t.Errorf("inverted payload still exposes SNI %q", got)
	}
	// Original must be untouched.
	if got := SNIFromPayload(orig.Packets[0].Payload); got != "zoom.us" {
		t.Errorf("original mutated: SNI = %q", got)
	}
	// Double inversion restores the payload.
	re := BitInvert(inv)
	if got := SNIFromPayload(re.Packets[0].Payload); got != "zoom.us" {
		t.Errorf("double inversion: SNI = %q", got)
	}
}

func TestPoissonRetimePreservesRateAndContents(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	orig, err := Generate("skype", rng, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ret := PoissonRetime(rand.New(rand.NewSource(5)), orig)
	if err := ret.Validate(); err != nil {
		t.Fatal(err)
	}
	if ret.Count(ServerToClient) != orig.Count(ServerToClient) {
		t.Fatal("downstream packet count changed")
	}
	if ret.TotalBytes(ServerToClient) != orig.TotalBytes(ServerToClient) {
		t.Fatal("downstream bytes changed")
	}
	// Average rate preserved within ~15% (Poisson duration fluctuates).
	or, rr := orig.AvgRate(ServerToClient), ret.AvgRate(ServerToClient)
	if math.Abs(or-rr)/or > 0.15 {
		t.Errorf("rate drifted: orig %.0f retimed %.0f", or, rr)
	}
	// Inter-arrival CV should be ≈1 for exponential spacing (the original
	// frame-clocked trace has CV << 1).
	cv := func(tr *Trace) float64 {
		var gaps []float64
		var prev time.Duration
		first := true
		for _, p := range tr.Packets {
			if p.Dir != ServerToClient {
				continue
			}
			if !first {
				gaps = append(gaps, (p.Offset - prev).Seconds())
			}
			prev = p.Offset
			first = false
		}
		m := 0.0
		for _, g := range gaps {
			m += g
		}
		m /= float64(len(gaps))
		v := 0.0
		for _, g := range gaps {
			v += (g - m) * (g - m)
		}
		v /= float64(len(gaps) - 1)
		return math.Sqrt(v) / m
	}
	if got := cv(ret); got < 0.8 || got > 1.25 {
		t.Errorf("retimed inter-arrival CV = %v, want ≈1 (Poisson)", got)
	}
	// The original is frame-clocked: gaps cluster at the fragment spacing
	// (~200 µs) and the frame interval; the retimed trace spreads them out.
	clocked := func(tr *Trace) float64 {
		prof, _ := ProfileByName("skype")
		var total, near int
		var prev time.Duration
		first := true
		for _, p := range tr.Packets {
			if p.Dir != ServerToClient {
				continue
			}
			if !first {
				gap := p.Offset - prev
				total++
				if gap < 400*time.Microsecond ||
					(gap > prof.FrameInterval/2 && gap < prof.FrameInterval*2) {
					near++
				}
			}
			prev = p.Offset
			first = false
		}
		return float64(near) / float64(total)
	}
	if got := clocked(orig); got < 0.9 {
		t.Errorf("original gaps clocked fraction = %v, want ≥0.9", got)
	}
	if got := clocked(ret); got > 0.85 {
		t.Errorf("retimed gaps still clocked (%v); Poisson should spread them", got)
	}
}

func TestPoissonRetimeEmptyAndDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	empty := &Trace{App: "x"}
	if got := PoissonRetime(rng, empty); len(got.Packets) != 0 {
		t.Error("empty trace should stay empty")
	}
	only := &Trace{App: "x", Packets: []Packet{{Offset: 0, Size: 10, Dir: ClientToServer}}}
	got := PoissonRetime(rng, only)
	if got.Packets[0].Offset != 0 {
		t.Error("c2s-only trace should be unchanged")
	}
}

func TestExtendTo(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	orig, err := Generate("whatsapp", rng, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ext := ExtendTo(orig, ReplayDuration)
	if err := ext.Validate(); err != nil {
		t.Fatal(err)
	}
	if ext.Duration() < ReplayDuration {
		t.Errorf("duration = %v, want ≥ %v", ext.Duration(), ReplayDuration)
	}
	if ext.Duration() > ReplayDuration+12*time.Second {
		t.Errorf("over-extended: %v", ext.Duration())
	}
	// Already-long traces are returned as-is.
	same := ExtendTo(ext, ReplayDuration)
	if len(same.Packets) != len(ext.Packets) {
		t.Error("already-long trace was extended")
	}
	// Rate is approximately preserved.
	or, er := orig.AvgRate(ServerToClient), ext.AvgRate(ServerToClient)
	if math.Abs(or-er)/or > 0.1 {
		t.Errorf("rate drifted under extension: %.0f vs %.0f", or, er)
	}
}

func TestExtendToEmptyTrace(t *testing.T) {
	empty := &Trace{App: "x"}
	if got := ExtendTo(empty, time.Minute); len(got.Packets) != 0 {
		t.Error("empty trace should stay empty")
	}
}
