package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// jsonTrace is the JSON wire form of a Trace: human-inspectable, used by
// tooling; the binary codec (Encode/Decode) is what replays ship.
type jsonTrace struct {
	App       string       `json:"app"`
	Transport string       `json:"transport"`
	SNI       string       `json:"sni,omitempty"`
	Packets   []jsonPacket `json:"packets"`
}

type jsonPacket struct {
	OffsetUS int64  `json:"offset_us"`
	Size     int    `json:"size"`
	Dir      string `json:"dir"`
	Payload  []byte `json:"payload,omitempty"` // base64 via encoding/json
}

// WriteJSON encodes the trace as JSON.
func WriteJSON(w io.Writer, tr *Trace) error {
	jt := jsonTrace{App: tr.App, Transport: tr.Transport.String(), SNI: tr.SNI}
	jt.Packets = make([]jsonPacket, len(tr.Packets))
	for i, p := range tr.Packets {
		jt.Packets[i] = jsonPacket{
			OffsetUS: p.Offset.Microseconds(),
			Size:     p.Size,
			Dir:      p.Dir.String(),
			Payload:  p.Payload,
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&jt)
}

// ReadJSON decodes a trace written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	var jt jsonTrace
	if err := json.NewDecoder(r).Decode(&jt); err != nil {
		return nil, fmt.Errorf("trace: json: %w", err)
	}
	tr := &Trace{App: jt.App, SNI: jt.SNI}
	switch jt.Transport {
	case "tcp":
		tr.Transport = TCP
	case "udp":
		tr.Transport = UDP
	default:
		return nil, fmt.Errorf("trace: json: unknown transport %q", jt.Transport)
	}
	tr.Packets = make([]Packet, len(jt.Packets))
	for i, p := range jt.Packets {
		var dir Direction
		switch p.Dir {
		case "s2c":
			dir = ServerToClient
		case "c2s":
			dir = ClientToServer
		default:
			return nil, fmt.Errorf("trace: json: packet %d: unknown direction %q", i, p.Dir)
		}
		tr.Packets[i] = Packet{
			Offset:  time.Duration(p.OffsetUS) * time.Microsecond,
			Size:    p.Size,
			Dir:     dir,
			Payload: p.Payload,
		}
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}
