// Package trace models the pre-recorded application traces that WeHe and
// WeHeY replay, together with the two trace transforms the system depends
// on: bit inversion (WeHe's control measurement, which destroys the payload
// patterns DPI-based differentiators match on) and Poisson retiming (WeHeY's
// PASTA-friendly modification of UDP replays, §3.4).
//
// Real WeHe ships traces recorded in the lab from popular services. This
// module generates statistically equivalent synthetic traces per application
// class instead (see apps.go); what every consumer downstream needs from a
// trace is packet sizes, timings, total rate, and a DPI-matchable service
// token in the handshake payload, all of which the generators reproduce.
package trace

import (
	"fmt"
	"time"
)

// Transport identifies the transport protocol a trace was recorded over.
type Transport uint8

const (
	// TCP traces are replayed under congestion control with pacing.
	TCP Transport = iota
	// UDP traces are replayed with trace-driven (or Poisson) timing.
	UDP
)

// String returns "tcp" or "udp".
func (t Transport) String() string {
	switch t {
	case TCP:
		return "tcp"
	case UDP:
		return "udp"
	}
	return fmt.Sprintf("transport(%d)", uint8(t))
}

// Direction identifies which endpoint transmitted a packet.
type Direction uint8

const (
	// ServerToClient packets carry the service's content downstream.
	ServerToClient Direction = iota
	// ClientToServer packets carry requests, ACK-like feedback, or uplink
	// media.
	ClientToServer
)

// String returns "s2c" or "c2s".
func (d Direction) String() string {
	switch d {
	case ServerToClient:
		return "s2c"
	case ClientToServer:
		return "c2s"
	}
	return fmt.Sprintf("direction(%d)", uint8(d))
}

// Packet is one packet of a recorded trace.
type Packet struct {
	// Offset is the packet's transmission time relative to the start of
	// the trace.
	Offset time.Duration
	// Size is the transport payload size in bytes.
	Size int
	// Dir is the packet's direction.
	Dir Direction
	// Payload holds the packet's bytes when they matter for DPI matching
	// (the handshake prefix carrying the SNI); nil for bulk packets, whose
	// content is irrelevant to every consumer.
	Payload []byte
}

// Trace is a replayable recording of one application session.
type Trace struct {
	// App is the service the trace was recorded from (e.g. "netflix").
	App string
	// Transport is the transport protocol of the recorded flow.
	Transport Transport
	// SNI is the server name the original recording presented in its TLS
	// handshake; DPI-based differentiation matches on it (§2.1).
	SNI string
	// Packets are in non-decreasing Offset order.
	Packets []Packet
}

// Duration returns the offset of the last packet (the replay duration when
// replayed with recorded timing).
func (tr *Trace) Duration() time.Duration {
	if len(tr.Packets) == 0 {
		return 0
	}
	return tr.Packets[len(tr.Packets)-1].Offset
}

// TotalBytes returns the total payload bytes transmitted in direction d.
func (tr *Trace) TotalBytes(d Direction) int64 {
	var total int64
	for i := range tr.Packets {
		if tr.Packets[i].Dir == d {
			total += int64(tr.Packets[i].Size)
		}
	}
	return total
}

// AvgRate returns the average transmission rate in direction d in bits per
// second, computed over the trace duration. It returns 0 for traces shorter
// than a millisecond.
func (tr *Trace) AvgRate(d Direction) float64 {
	dur := tr.Duration()
	if dur < time.Millisecond {
		return 0
	}
	return float64(tr.TotalBytes(d)) * 8 / dur.Seconds()
}

// Count returns the number of packets in direction d.
func (tr *Trace) Count(d Direction) int {
	n := 0
	for i := range tr.Packets {
		if tr.Packets[i].Dir == d {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of the trace.
func (tr *Trace) Clone() *Trace {
	out := &Trace{
		App:       tr.App,
		Transport: tr.Transport,
		SNI:       tr.SNI,
		Packets:   make([]Packet, len(tr.Packets)),
	}
	copy(out.Packets, tr.Packets)
	for i := range out.Packets {
		if p := tr.Packets[i].Payload; p != nil {
			out.Packets[i].Payload = append([]byte(nil), p...)
		}
	}
	return out
}

// Validate checks the structural invariants of a trace: non-negative sizes,
// non-decreasing offsets, and payloads no larger than the declared size.
func (tr *Trace) Validate() error {
	var prev time.Duration
	for i := range tr.Packets {
		p := &tr.Packets[i]
		if p.Size < 0 {
			return fmt.Errorf("trace %q: packet %d has negative size %d", tr.App, i, p.Size)
		}
		if p.Offset < prev {
			return fmt.Errorf("trace %q: packet %d offset %v precedes packet %d offset %v",
				tr.App, i, p.Offset, i-1, prev)
		}
		if len(p.Payload) > p.Size {
			return fmt.Errorf("trace %q: packet %d payload %dB exceeds size %dB",
				tr.App, i, len(p.Payload), p.Size)
		}
		prev = p.Offset
	}
	return nil
}
