package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, app := range []string{"netflix", "zoom"} {
		orig, err := Generate(app, rng, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, orig); err != nil {
			t.Fatal(err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.App != orig.App || got.SNI != orig.SNI || got.Transport != orig.Transport {
			t.Fatalf("header mismatch: %+v", got)
		}
		if len(got.Packets) != len(orig.Packets) {
			t.Fatalf("packet count %d, want %d", len(got.Packets), len(orig.Packets))
		}
		for i := range orig.Packets {
			a, b := orig.Packets[i], got.Packets[i]
			if a.Offset != b.Offset || a.Size != b.Size || a.Dir != b.Dir {
				t.Fatalf("packet %d mismatch: %+v vs %+v", i, a, b)
			}
			if !bytes.Equal(a.Payload, b.Payload) {
				t.Fatalf("packet %d payload mismatch", i)
			}
		}
	}
}

func TestCodecEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, &Trace{App: "empty", SNI: ""}); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != "empty" || len(got.Packets) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("NOPE\x01\x00\x00\x00"),
		[]byte("WHTR\x63"), // wrong version
	}
	for i, c := range cases {
		if _, err := Decode(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	orig, err := Generate("skype", rand.New(rand.NewSource(3)), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, orig); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, 10, len(full) / 2, len(full) - 1} {
		if _, err := Decode(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncated at %d accepted", cut)
		}
	}
}

func TestEncodeRejectsUnsortedTrace(t *testing.T) {
	bad := &Trace{Packets: []Packet{
		{Offset: time.Second, Size: 1},
		{Offset: 0, Size: 1},
	}}
	var buf bytes.Buffer
	if err := Encode(&buf, bad); err == nil {
		t.Error("unsorted trace encoded without error")
	}
}
