package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Binary trace format ("WHTR"): a compact, streamable encoding used by the
// replay tools to ship traces between client and servers.
//
//	magic "WHTR" | version u8 | app str | sni str | transport u8 |
//	count uvarint | packets...
//
// Each packet: offset delta ns (uvarint) | size (uvarint) | dir u8 |
// payload len (uvarint) | payload bytes. Strings are uvarint-length-prefixed.
const (
	magic         = "WHTR"
	formatVersion = 1
)

// ErrBadFormat reports a malformed or truncated binary trace.
var ErrBadFormat = errors.New("trace: bad binary format")

// Encode writes tr to w in the binary trace format.
func Encode(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if err := bw.WriteByte(formatVersion); err != nil {
		return err
	}
	writeString(bw, tr.App)
	writeString(bw, tr.SNI)
	bw.WriteByte(byte(tr.Transport))
	writeUvarint(bw, uint64(len(tr.Packets)))
	var prev time.Duration
	for i := range tr.Packets {
		p := &tr.Packets[i]
		if p.Offset < prev {
			return fmt.Errorf("trace: packet %d offsets not sorted", i)
		}
		writeUvarint(bw, uint64(p.Offset-prev))
		prev = p.Offset
		writeUvarint(bw, uint64(p.Size))
		bw.WriteByte(byte(p.Dir))
		writeUvarint(bw, uint64(len(p.Payload)))
		bw.Write(p.Payload)
	}
	return bw.Flush()
}

// Decode reads one trace in the binary trace format from r.
func Decode(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(head[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFormat)
	}
	if head[len(magic)] != formatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, head[len(magic)])
	}
	tr := &Trace{}
	var err error
	if tr.App, err = readString(br); err != nil {
		return nil, err
	}
	if tr.SNI, err = readString(br); err != nil {
		return nil, err
	}
	tb, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	tr.Transport = Transport(tb)
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	const maxPackets = 50 << 20 // sanity bound against corrupt headers
	if count > maxPackets {
		return nil, fmt.Errorf("%w: implausible packet count %d", ErrBadFormat, count)
	}
	// Never trust the header for the allocation size: a short corrupt
	// stream with a huge count would otherwise allocate gigabytes before
	// the first read error surfaces.
	prealloc := count
	if prealloc > 4096 {
		prealloc = 4096
	}
	tr.Packets = make([]Packet, 0, prealloc)
	var offset time.Duration
	for i := uint64(0); i < count; i++ {
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: packet %d offset: %v", ErrBadFormat, i, err)
		}
		offset += time.Duration(delta)
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: packet %d size: %v", ErrBadFormat, i, err)
		}
		db, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: packet %d dir: %v", ErrBadFormat, i, err)
		}
		plen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: packet %d payload len: %v", ErrBadFormat, i, err)
		}
		if plen > size {
			return nil, fmt.Errorf("%w: packet %d payload %d > size %d", ErrBadFormat, i, plen, size)
		}
		var payload []byte
		if plen > 0 {
			payload = make([]byte, plen)
			if _, err := io.ReadFull(br, payload); err != nil {
				return nil, fmt.Errorf("%w: packet %d payload: %v", ErrBadFormat, i, err)
			}
		}
		tr.Packets = append(tr.Packets, Packet{
			Offset:  offset,
			Size:    int(size),
			Dir:     Direction(db),
			Payload: payload,
		})
	}
	return tr, nil
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	const maxStr = 1 << 16
	if n > maxStr {
		return "", fmt.Errorf("%w: implausible string length %d", ErrBadFormat, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	return string(buf), nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}
