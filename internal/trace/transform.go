package trace

import (
	"math/rand"
	"time"
)

// BitInvert returns the bit-inverted version of tr: identical packet sizes
// and timings, with every payload byte XORed with 0xFF. This is WeHe's
// control measurement — it destroys whatever plaintext patterns (notably the
// SNI) a DPI-based differentiation device might match on, while keeping the
// traffic shape identical (§2.1).
func BitInvert(tr *Trace) *Trace {
	out := tr.Clone()
	out.App = tr.App + "-inverted"
	out.SNI = "" // no longer observable on the wire
	for i := range out.Packets {
		p := out.Packets[i].Payload
		for j := range p {
			p[j] ^= 0xFF
		}
	}
	return out
}

// PoissonRetime returns a copy of tr whose packet transmission times follow
// a Poisson process with the same average rate as the original (§3.4,
// "UDP Replay: Poisson"). Packet sizes, contents, directions, and order are
// preserved; only offsets change. Per the PASTA property, a Poisson probe
// stream asymptotically sees the true loss rate of the underlying
// bottleneck, making WeHeY's per-interval loss rates unbiased estimates.
//
// Only the ServerToClient packets are retimed (they are the measurement
// stream); ClientToServer packets keep their original offsets.
func PoissonRetime(rng *rand.Rand, tr *Trace) *Trace {
	out := tr.Clone()
	out.App = tr.App + "-poisson"
	n := out.Count(ServerToClient)
	if n == 0 {
		return out
	}
	dur := out.Duration()
	if dur <= 0 {
		return out
	}
	// Mean inter-arrival preserving the average rate: duration / n.
	mean := dur.Seconds() / float64(n)
	t := 0.0
	for i := range out.Packets {
		if out.Packets[i].Dir != ServerToClient {
			continue
		}
		t += rng.ExpFloat64() * mean
		out.Packets[i].Offset = time.Duration(t * float64(time.Second))
	}
	// Offsets must stay sorted across both directions for replay engines;
	// re-sort stably so same-direction packet order is preserved.
	sortPacketsByOffset(out.Packets)
	return out
}

// ExtendTo repeats the trace back-to-back until its duration reaches at
// least minDur (§3.4: traces are extended to at least 45 s so the replay
// yields enough loss measurements for a reliable conclusion). A small
// inter-repetition gap equal to the trace's mean inter-packet time keeps
// repetitions from overlapping.
func ExtendTo(tr *Trace, minDur time.Duration) *Trace {
	out := tr.Clone()
	if out.Duration() >= minDur || len(out.Packets) == 0 {
		return out
	}
	base := append([]Packet(nil), out.Packets...)
	gap := out.Duration() / time.Duration(len(base)+1)
	if gap <= 0 {
		gap = time.Millisecond
	}
	// Each repetition advances the duration by gap + the base span, so the
	// repetition count — and the final packet count — is known up front.
	// Reserve it once instead of letting append double across repetitions
	// (paper-scale extensions multiply short traces 50-100x).
	if span := out.Duration(); span+gap > 0 {
		reps := int64((minDur-span)/(span+gap)) + 1
		if total := len(out.Packets) + int(reps)*len(base); cap(out.Packets) < total {
			grown := make([]Packet, len(out.Packets), total)
			copy(grown, out.Packets)
			out.Packets = grown
		}
	}
	for out.Duration() < minDur {
		shift := out.Duration() + gap
		for _, p := range base {
			q := p
			if q.Payload != nil {
				q.Payload = append([]byte(nil), q.Payload...)
			}
			q.Offset += shift
			out.Packets = append(out.Packets, q)
		}
	}
	return out
}

// ReplayDuration is the minimum duration WeHeY extends replayed traces to.
const ReplayDuration = 45 * time.Second

// sortPacketsByOffset stably sorts packets by offset (insertion sort: inputs
// are nearly sorted after retiming, so this is effectively linear).
func sortPacketsByOffset(ps []Packet) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].Offset < ps[j-1].Offset; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}
