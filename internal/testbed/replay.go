package testbed

import (
	"context"
	"fmt"
	"net"
	"time"

	"github.com/nal-epfl/wehey/internal/measure"
	"github.com/nal-epfl/wehey/internal/trace"
	"github.com/nal-epfl/wehey/internal/transport"
)

// ReplayResult is what one replay through the testbed yields: client-side
// throughput samples (WeHe's 100 intervals), the packet-loss measurement
// record for the detection algorithms, and the §C.2-style summary metrics.
type ReplayResult struct {
	Throughput     measure.Throughput
	Measurements   measure.Path
	RetransRate    float64
	QueueDelay     time.Duration // avg RTT − min RTT (reliable mode only)
	DeliveredBytes int64
}

// connectedPair dials a UDP socket connected to addr.
func connectedPair(addr *net.UDPAddr) (*net.UDPConn, error) {
	c, err := net.DialUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)}, addr)
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	return c, nil
}

// punch teaches the middlebox the client's address before data flows.
func punch(conn *net.UDPConn, connID uint32) {
	hello := transport.HelloPacket(connID)
	for i := 0; i < 3; i++ {
		conn.Write(hello) // hello datagrams are fire-and-forget; loss is retried
		time.Sleep(10 * time.Millisecond)
	}
}

// ReliableOpts tunes RunReliableReplayOpts.
type ReliableOpts struct {
	// AppRate feeds the transfer at this application rate (bits/s);
	// 0 = backlogged bulk.
	AppRate float64
}

// RunReliableReplay replays a TCP-style trace through the middlebox using
// the reliable transport: the server pushes the trace's downstream bytes
// under congestion control with pacing for dur (repeating the payload as
// needed, §3.4), the client acknowledges, and the server's retransmission
// decisions become the loss log.
func RunReliableReplay(ctx context.Context, mb *Middlebox, flowName string, tr *trace.Trace, dur time.Duration, connID uint32) (ReplayResult, error) {
	return RunReliableReplayOpts(ctx, mb, flowName, tr, dur, connID, ReliableOpts{})
}

// RunReliableReplayOpts is RunReliableReplay with options.
func RunReliableReplayOpts(ctx context.Context, mb *Middlebox, flowName string, tr *trace.Trace, dur time.Duration, connID uint32, opts ReliableOpts) (ReplayResult, error) {
	serverFacing, clientFacing, err := mb.AddFlow(flowName)
	if err != nil {
		return ReplayResult{}, err
	}
	serverConn, err := connectedPair(serverFacing)
	if err != nil {
		return ReplayResult{}, err
	}
	defer serverConn.Close()
	clientConn, err := connectedPair(clientFacing)
	if err != nil {
		return ReplayResult{}, err
	}
	defer clientConn.Close()

	var hello []byte
	if len(tr.Packets) > 0 {
		hello = tr.Packets[0].Payload
	}
	sender := transport.NewSender(serverConn, transport.SenderConfig{
		ConnID:  connID,
		Hello:   hello,
		AppRate: opts.AppRate,
		// Replays last tens of seconds; a server silent for multiple
		// seconds stops producing measurements, so cap the backoff the
		// way the simulator does.
		MaxRTO: time.Second,
	})
	receiver := transport.NewReceiver(clientConn)

	punch(clientConn, connID)

	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	recvDone := make(chan error, 1)
	go func() { recvDone <- receiver.Serve(rctx) }()

	tctx, tcancel := context.WithTimeout(ctx, dur)
	defer tcancel()
	err = sender.Transfer(tctx, 0) // unlimited: run until the deadline
	if err != nil && err != context.DeadlineExceeded {
		return ReplayResult{}, err
	}
	cancel()
	<-recvDone

	minRTT, avgRTT := sender.MinAndAvgRTT()
	res := ReplayResult{
		Throughput:     measure.WeHeThroughput(receiver.Deliveries(), 0, dur),
		Measurements:   sender.Measurements(dur, minRTTOrDefault(minRTT)),
		RetransRate:    sender.RetransmissionRate(),
		QueueDelay:     avgRTT - minRTT,
		DeliveredBytes: receiver.DeliveredBytes(),
	}
	return res, nil
}

// RunDatagramReplay replays a UDP trace (typically Poisson-retimed)
// through the middlebox: unreliable datagrams, client-side loss detection.
func RunDatagramReplay(ctx context.Context, mb *Middlebox, flowName string, tr *trace.Trace, dur time.Duration, connID uint32) (ReplayResult, error) {
	serverFacing, clientFacing, err := mb.AddFlow(flowName)
	if err != nil {
		return ReplayResult{}, err
	}
	serverConn, err := connectedPair(serverFacing)
	if err != nil {
		return ReplayResult{}, err
	}
	defer serverConn.Close()
	clientConn, err := connectedPair(clientFacing)
	if err != nil {
		return ReplayResult{}, err
	}
	defer clientConn.Close()

	sender := transport.NewDgramSender(serverConn, connID)
	receiver := transport.NewDgramReceiver(clientConn)

	punch(clientConn, connID)

	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	recvDone := make(chan error, 1)
	go func() { recvDone <- receiver.Serve(rctx) }()

	tctx, tcancel := context.WithTimeout(ctx, dur)
	defer tcancel()
	if err := sender.Replay(tctx, tr); err != nil && err != context.DeadlineExceeded {
		return ReplayResult{}, err
	}
	// Let the pipe drain (base RTT + shaper backlog).
	time.Sleep(mb.cfg.Delay*2 + 100*time.Millisecond)
	cancel()
	<-recvDone
	receiver.Finish(sender.Sent(), dur)

	sm := sender.Measurements(dur, 2*mb.cfg.Delay)
	res := ReplayResult{
		Throughput:     measure.WeHeThroughput(receiver.Deliveries(), 0, dur),
		Measurements:   receiver.Measurements(sm.Tx, dur, 2*mb.cfg.Delay),
		DeliveredBytes: deliveredBytes(receiver.Deliveries()),
	}
	return res, nil
}

func deliveredBytes(ds []measure.Delivery) int64 {
	var total int64
	for _, d := range ds {
		total += int64(d.Bytes)
	}
	return total
}

func minRTTOrDefault(rtt time.Duration) time.Duration {
	if rtt <= 0 {
		return 20 * time.Millisecond
	}
	return rtt
}
