// Package testbed assembles WeHeY's loopback testbed: replay servers and a
// client exchanging real UDP datagrams through an in-path middlebox that
// applies the paper's differentiation pipeline (§C.1) — a DPI classifier
// matching SNI tokens, a token-bucket filter policing/shaping the matched
// flows, and a base propagation delay. It stands in for the paper's
// GCP-to-cellular wide-area testbed with Linux tc rate limiting (§6.2); see
// DESIGN.md §1 for the substitution rationale.
package testbed

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/nal-epfl/wehey/internal/trace"
)

// MiddleboxConfig configures the in-path differentiation device.
type MiddleboxConfig struct {
	// Delay is the one-way propagation delay added in each direction
	// (default 10 ms → 20 ms base RTT through the box).
	Delay time.Duration
	// SNIs lists the service tokens the DPI classifier throttles; a flow
	// is marked differentiated when an early packet's payload contains one
	// of them. Bit-inverted replays never match (§2.1).
	SNIs []string
	// Rate is the TBF throttling rate in bits/s; 0 disables throttling.
	Rate float64
	// Burst is the bucket size in bytes (rate×RTT in the paper's setups).
	Burst int
	// QueueLimit is the TBF queue in bytes; 0 = pure policer.
	QueueLimit int
	// DPIWindow is how many leading packets of a flow the classifier
	// inspects (default 4).
	DPIWindow int
}

func (c *MiddleboxConfig) fill() {
	if c.Delay <= 0 {
		c.Delay = 10 * time.Millisecond
	}
	if c.DPIWindow <= 0 {
		c.DPIWindow = 4
	}
}

// Middlebox is a UDP proxy: the client talks to the middlebox's client-side
// address; each server flow gets a dedicated proxy port pair. Downstream
// (server→client) traffic of DPI-matched flows passes through a shared
// token-bucket filter; everything else is only delayed.
type Middlebox struct {
	cfg MiddleboxConfig

	mu     sync.Mutex
	tokens float64
	refill time.Time
	queued int // bytes in the shaper queue

	// Stats.
	Matched    atomic.Int64
	Bypassed   atomic.Int64
	Dropped    atomic.Int64
	Forwarded  atomic.Int64
	flows      map[string]*mbFlow
	wg         sync.WaitGroup
	done       chan struct{}
	closeOnce  sync.Once
	listeners  []*net.UDPConn
	downstream []*flowProxy
}

type mbFlow struct {
	inspected int
	matched   bool
}

// NewMiddlebox creates the device (no sockets yet; AddFlow wires each
// server↔client pair).
func NewMiddlebox(cfg MiddleboxConfig) *Middlebox {
	cfg.fill()
	m := &Middlebox{
		cfg:    cfg,
		tokens: float64(cfg.Burst),
		refill: time.Now(),
		flows:  make(map[string]*mbFlow),
		done:   make(chan struct{}),
	}
	return m
}

// flowProxy relays one server↔client pair through two UDP sockets. The
// learned peer addresses are written by one relay goroutine and read by
// the other (and by delayed delivery timers), hence atomic.
type flowProxy struct {
	name       string
	serverSide *net.UDPConn // talks to the server
	clientSide *net.UDPConn // talks to the client
	serverAddr atomic.Pointer[net.UDPAddr]
	clientAddr atomic.Pointer[net.UDPAddr]

	mu      sync.Mutex
	lastOut time.Time   // monotonic downstream delivery (links are FIFO)
	out     chan outPkt // downstream delivery queue, drained by one worker
}

type outPkt struct {
	at  time.Time
	pkt []byte
}

// AddFlow creates the proxy sockets for one flow. The returned addresses
// are where the server and the client must send their datagrams.
func (m *Middlebox) AddFlow(name string) (serverFacing, clientFacing *net.UDPAddr, err error) {
	ssConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, nil, fmt.Errorf("testbed: %w", err)
	}
	csConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		ssConn.Close()
		return nil, nil, fmt.Errorf("testbed: %w", err)
	}
	fp := &flowProxy{name: name, serverSide: ssConn, clientSide: csConn, out: make(chan outPkt, 8192)}
	m.mu.Lock()
	m.flows[name] = &mbFlow{}
	m.downstream = append(m.downstream, fp)
	m.listeners = append(m.listeners, ssConn, csConn)
	m.mu.Unlock()

	m.wg.Add(3)
	go m.relayDownstream(fp)
	go m.relayUpstream(fp)
	go m.deliveryWorker(fp)
	return ssConn.LocalAddr().(*net.UDPAddr), csConn.LocalAddr().(*net.UDPAddr), nil
}

// relayDownstream forwards server→client with classification + TBF + delay.
func (m *Middlebox) relayDownstream(fp *flowProxy) {
	defer m.wg.Done()
	buf := make([]byte, 65536)
	for {
		select {
		case <-m.done:
			return
		default:
		}
		fp.serverSide.SetReadDeadline(time.Now().Add(50 * time.Millisecond)) // failed deadline arming surfaces as a read timeout on the next loop
		n, addr, err := fp.serverSide.ReadFromUDP(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
		fp.serverAddr.Store(addr)
		if fp.clientAddr.Load() == nil {
			continue // client hasn't spoken yet; drop silently
		}
		pkt := append([]byte(nil), buf[:n]...)
		m.processDownstream(fp, pkt)
	}
}

// relayUpstream forwards client→server with delay only (ACKs and requests
// are never differentiated in the paper's setups).
func (m *Middlebox) relayUpstream(fp *flowProxy) {
	defer m.wg.Done()
	buf := make([]byte, 65536)
	for {
		select {
		case <-m.done:
			return
		default:
		}
		fp.clientSide.SetReadDeadline(time.Now().Add(50 * time.Millisecond)) // failed deadline arming surfaces as a read timeout on the next loop
		n, addr, err := fp.clientSide.ReadFromUDP(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
		fp.clientAddr.Store(addr)
		dst := fp.serverAddr.Load()
		if dst == nil {
			continue
		}
		pkt := append([]byte(nil), buf[:n]...)
		time.AfterFunc(m.cfg.Delay, func() {
			fp.serverSide.WriteToUDP(pkt, dst) // a failed forward is induced datagram loss
		})
	}
}

// processDownstream classifies and throttles one server→client datagram.
func (m *Middlebox) processDownstream(fp *flowProxy, pkt []byte) {
	m.mu.Lock()
	fl := m.flows[fp.name]
	if fl.inspected < m.cfg.DPIWindow {
		fl.inspected++
		if m.dpiMatch(pkt) {
			fl.matched = true
		}
	}
	throttle := fl.matched && m.cfg.Rate > 0
	if !throttle {
		m.Bypassed.Add(1)
		m.mu.Unlock()
		m.deliverAfter(fp, pkt, m.cfg.Delay)
		return
	}
	m.Matched.Add(1)
	// Token bucket.
	now := time.Now()
	m.tokens += m.cfg.Rate / 8 * now.Sub(m.refill).Seconds()
	if m.tokens > float64(m.cfg.Burst) {
		m.tokens = float64(m.cfg.Burst)
	}
	m.refill = now
	size := float64(len(pkt))
	if m.tokens >= size && m.queued == 0 {
		m.tokens -= size
		m.Forwarded.Add(1)
		m.mu.Unlock()
		m.deliverAfter(fp, pkt, m.cfg.Delay)
		return
	}
	// Not enough tokens: queue (shaper) or drop (policer).
	if m.queued+len(pkt) > m.cfg.QueueLimit {
		m.Dropped.Add(1)
		m.mu.Unlock()
		return
	}
	m.queued += len(pkt)
	need := size - m.tokens
	m.tokens -= size // pre-charge; the wait accrues the difference
	wait := time.Duration(need / (m.cfg.Rate / 8) * float64(time.Second))
	m.Forwarded.Add(1)
	m.mu.Unlock()
	m.deliverAfter(fp, pkt, m.cfg.Delay+wait)
	time.AfterFunc(wait, func() {
		m.mu.Lock()
		m.queued -= len(pkt)
		m.mu.Unlock()
	})
}

func (m *Middlebox) dpiMatch(pkt []byte) bool {
	// Skip the transport header when present; DPI scans payload bytes.
	body := pkt
	if len(pkt) > headerishSize {
		body = pkt[headerishSize:]
	}
	s := string(body)
	for _, sni := range m.cfg.SNIs {
		if sni != "" && strings.Contains(s, sni) {
			return true
		}
	}
	return false
}

// headerishSize mirrors the transport wire header length so DPI scans the
// application payload. Scanning a few extra bytes is harmless: SNI tokens
// never collide with the binary header.
const headerishSize = 26

// deliverAfter schedules a downstream delivery. A single worker goroutine
// drains the per-flow queue in order — links are FIFO, and gap-based loss
// detection at the client relies on that (concurrent timers would race and
// reorder packets with nearby deadlines).
func (m *Middlebox) deliverAfter(fp *flowProxy, pkt []byte, d time.Duration) {
	fp.mu.Lock()
	at := time.Now().Add(d)
	if at.Before(fp.lastOut) {
		at = fp.lastOut
	}
	fp.lastOut = at
	fp.mu.Unlock()
	select {
	case fp.out <- outPkt{at: at, pkt: pkt}:
	default:
		m.Dropped.Add(1) // device buffer overflow
	}
}

func (m *Middlebox) deliveryWorker(fp *flowProxy) {
	defer m.wg.Done()
	for {
		select {
		case <-m.done:
			return
		case op := <-fp.out:
			if wait := time.Until(op.at); wait > 0 {
				select {
				case <-m.done:
					return
				case <-time.After(wait):
				}
			}
			if dst := fp.clientAddr.Load(); dst != nil {
				fp.clientSide.WriteToUDP(op.pkt, dst) // a failed forward is induced datagram loss
			}
		}
	}
}

// FlowMatched reports whether the named flow was classified as
// differentiated.
func (m *Middlebox) FlowMatched(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	fl, ok := m.flows[name]
	return ok && fl.matched
}

// Close tears down the proxy sockets and goroutines.
func (m *Middlebox) Close() {
	m.closeOnce.Do(func() {
		close(m.done)
		m.mu.Lock()
		ls := append([]*net.UDPConn(nil), m.listeners...)
		m.mu.Unlock()
		for _, l := range ls {
			l.Close()
		}
		m.wg.Wait()
	})
}

// SNIsForApps returns the SNI tokens of the named applications, for
// configuring the classifier the way a differentiating ISP would.
func SNIsForApps(apps ...string) []string {
	var out []string
	for _, a := range apps {
		if p, err := trace.ProfileByName(a); err == nil {
			out = append(out, p.SNI)
		}
	}
	return out
}
