package testbed

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"github.com/nal-epfl/wehey/internal/trace"
)

func genTrace(t *testing.T, app string, dur time.Duration) *trace.Trace {
	t.Helper()
	tr, err := trace.Generate(app, rand.New(rand.NewSource(1)), dur)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestMiddleboxPassThrough(t *testing.T) {
	mb := NewMiddlebox(MiddleboxConfig{Delay: 5 * time.Millisecond})
	defer mb.Close()
	tr := genTrace(t, "netflix", 5*time.Second)
	dur := 2 * time.Second
	res, err := RunReliableReplay(context.Background(), mb, "f1", tr, dur, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredBytes == 0 {
		t.Fatal("nothing delivered")
	}
	// Unthrottled loopback: substantial throughput, near-zero retrans.
	if res.RetransRate > 0.05 {
		t.Errorf("retrans rate = %v on a clean path", res.RetransRate)
	}
	if mb.Dropped.Load() != 0 {
		t.Errorf("drops without a rate limiter: %d", mb.Dropped.Load())
	}
	if got := res.Throughput.Mean(); got < 1e6 {
		t.Errorf("throughput %.2f Mbit/s, expected well above 1", got/1e6)
	}
}

func TestMiddleboxDPIThrottlesOriginalOnly(t *testing.T) {
	rate := 2e6
	cfg := MiddleboxConfig{
		Delay: 5 * time.Millisecond,
		SNIs:  SNIsForApps("netflix"),
		Rate:  rate,
		Burst: 5000,
	}
	tr := genTrace(t, "netflix", 5*time.Second)
	inv := trace.BitInvert(tr)
	dur := 2500 * time.Millisecond

	mb := NewMiddlebox(cfg)
	defer mb.Close()
	orig, err := RunReliableReplay(context.Background(), mb, "orig", tr, dur, 1)
	if err != nil {
		t.Fatal(err)
	}
	invRes, err := RunReliableReplay(context.Background(), mb, "inv", inv, dur, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !mb.FlowMatched("orig") {
		t.Error("DPI missed the original trace's SNI")
	}
	if mb.FlowMatched("inv") {
		t.Error("DPI matched the bit-inverted trace")
	}
	ot, it := orig.Throughput.Mean(), invRes.Throughput.Mean()
	if ot > rate*1.4 {
		t.Errorf("original throughput %.2f Mbit/s exceeds the 2 Mbit/s policer", ot/1e6)
	}
	if it < ot*1.5 {
		t.Errorf("inverted (%.2f) should be much faster than original (%.2f)", it/1e6, ot/1e6)
	}
	if orig.RetransRate == 0 {
		t.Error("no retransmissions under policing")
	}
	if len(orig.Measurements.Loss) == 0 {
		t.Error("no loss events registered")
	}
}

func TestMiddleboxShaperAddsDelayNotLoss(t *testing.T) {
	rate := 3e6
	tr := genTrace(t, "netflix", 5*time.Second)
	dur := 2 * time.Second

	policer := NewMiddlebox(MiddleboxConfig{Delay: 5 * time.Millisecond, SNIs: SNIsForApps("netflix"), Rate: rate, Burst: 5000})
	defer policer.Close()
	pRes, err := RunReliableReplay(context.Background(), policer, "p", tr, dur, 1)
	if err != nil {
		t.Fatal(err)
	}
	shaper := NewMiddlebox(MiddleboxConfig{Delay: 5 * time.Millisecond, SNIs: SNIsForApps("netflix"), Rate: rate, Burst: 5000, QueueLimit: 120000})
	defer shaper.Close()
	sRes, err := RunReliableReplay(context.Background(), shaper, "s", tr, dur, 2)
	if err != nil {
		t.Fatal(err)
	}
	// TCP is closed-loop, so raw drop counts are noisy between the two
	// devices; the robust distinction is queueing delay — the shaper's
	// deep queue inflates RTTs, the policer's zero queue cannot.
	t.Logf("drops: shaper %d, policer %d", shaper.Dropped.Load(), policer.Dropped.Load())
	if sRes.QueueDelay < 2*pRes.QueueDelay {
		t.Errorf("shaper queue delay %v should far exceed policer's %v", sRes.QueueDelay, pRes.QueueDelay)
	}
	if sRes.QueueDelay < 20*time.Millisecond {
		t.Errorf("shaper queueing delay %v, want substantial", sRes.QueueDelay)
	}
}

func TestMiddleboxDatagramReplayLossDetection(t *testing.T) {
	tr := genTrace(t, "zoom", 5*time.Second)
	rate := tr.AvgRate(trace.ServerToClient) / 2 // 2x policing
	mb := NewMiddlebox(MiddleboxConfig{
		Delay: 5 * time.Millisecond,
		SNIs:  SNIsForApps("zoom"),
		Rate:  rate,
		Burst: 4000,
	})
	defer mb.Close()
	dur := 3 * time.Second
	res, err := RunDatagramReplay(context.Background(), mb, "z", tr, dur, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !mb.FlowMatched("z") {
		t.Fatal("DPI missed the zoom handshake")
	}
	if mb.Dropped.Load() == 0 {
		t.Fatal("policer dropped nothing")
	}
	lost := len(res.Measurements.Loss)
	truth := int(mb.Dropped.Load())
	// Client gap detection should closely track ground truth.
	if lost < truth*8/10 || lost > truth*12/10 {
		t.Errorf("client counted %d losses, middlebox dropped %d", lost, truth)
	}
	if got := res.Measurements.LossRate(); got < 0.25 || got > 0.7 {
		t.Errorf("loss rate %v, want ≈0.5 under 2x policing", got)
	}
}

func TestSNIsForApps(t *testing.T) {
	got := SNIsForApps("netflix", "zoom", "bogus")
	if len(got) != 2 {
		t.Fatalf("SNIs = %v", got)
	}
}
