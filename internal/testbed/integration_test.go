package testbed

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/nal-epfl/wehey/internal/core"
	"github.com/nal-epfl/wehey/internal/measure"
	"github.com/nal-epfl/wehey/internal/trace"
)

// TestLossTrendOverRealSockets is the end-to-end FN check on the real
// network stack: two reliable replays run *simultaneously* through the
// same middlebox TBF, which other traffic of the throttled service also
// crosses (collective throttling). The loss-trend correlation algorithm
// must detect the shared bottleneck from the servers' retransmission logs.
//
// The background matters: with the two replays *alone* on the policer,
// token contention is zero-sum and their loss rates anticorrelate — the
// per-flow-throttling limitation the paper spells out in §3.2/§7. Alg. 1
// explicitly assumes the replays are a small fraction of the bottleneck's
// traffic (§4.2).
func TestLossTrendOverRealSockets(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second real-time replay")
	}
	tr := genTrace(t, "netflix", 10*time.Second)
	mb := NewMiddlebox(MiddleboxConfig{
		Delay: 15 * time.Millisecond, // 30 ms base RTT, as on a real WAN path
		SNIs:  SNIsForApps("netflix"),
		Rate:  16e6,
		Burst: 60000,
	})
	defer mb.Close()

	const dur = 40 * time.Second
	// Rate-modulated background of the same service (SNI-matched), the
	// "other users" whose load drives the shared loss-rate trend.
	bg := modulatedTrace("netflix", 13e6, dur+time.Second)

	var wg sync.WaitGroup
	results := make([]ReplayResult, 2)
	errs := make([]error, 2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		RunDatagramReplay(context.Background(), mb, "bg", bg, dur+time.Second, 99) // background replay outcome is irrelevant to the assertion
	}()
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := []string{"p1", "p2"}[i]
			// App-limited at ~2 Mbit/s: the replays must be a small
			// fraction of the bottleneck traffic for Alg. 1 (§4.2).
			results[i], errs[i] = RunReliableReplayOpts(context.Background(), mb, name, tr, dur, uint32(i+1),
				ReliableOpts{AppRate: 2.5e6})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
	}

	m1, m2 := results[0].Measurements, results[1].Measurements
	if len(m1.Loss) == 0 || len(m2.Loss) == 0 {
		t.Fatalf("no loss events registered: %d/%d", len(m1.Loss), len(m2.Loss))
	}
	// Base RTT through the middlebox is ~30 ms plus socket overhead.
	m1.RTT, m2.RTT = 35*time.Millisecond, 35*time.Millisecond

	res, err := core.LossTrendCorrelation(&m1, &m2, core.LossTrendConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("verdict=%v, correlated %d/%d sizes; loss rates %.3f / %.3f",
		res.CommonBottleneck, res.Correlations, res.Sizes, m1.LossRate(), m2.LossRate())
	for _, v := range res.PerSize {
		t.Logf("  σ=%v n=%d rho=%.3f p=%.4f", v.Sigma, v.Intervals, v.Rho, v.P)
	}
	// Nearly every interval size must show significant positive
	// correlation. The smallest sizes are allowed to be inconclusive: our
	// transport registers losses in go-back-N bursts, whose timing jitter
	// is coarser than kernel TCP's dupACK-based registration, so the §4.2
	// small-interval desynchronization bites slightly earlier than in the
	// paper's testbed (real wall-clock scheduling noise varies run to run).
	if res.Correlations < res.Sizes-2 {
		t.Errorf("real-socket common bottleneck evidence too weak: %d/%d sizes", res.Correlations, res.Sizes)
	}
	positive := 0
	for _, v := range res.PerSize {
		if v.Rho > 0 {
			positive++
		}
	}
	if positive < res.Sizes-1 {
		t.Errorf("only %d/%d sizes show positive correlation", positive, res.Sizes)
	}
}

// TestThroughputComparisonOverRealSockets checks the §4.1 signal on real
// sockets: the aggregate throughput of two simultaneous replays through a
// shared TBF approximates a single replay's throughput through the same
// TBF (the per-client-throttling signature).
func TestThroughputComparisonOverRealSockets(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second real-time replay")
	}
	tr := genTrace(t, "netflix", 10*time.Second)
	cfg := MiddleboxConfig{
		Delay: 5 * time.Millisecond,
		SNIs:  SNIsForApps("netflix"),
		Rate:  3e6,
		Burst: 8000,
	}
	const dur = 7 * time.Second

	// Single replay.
	mbA := NewMiddlebox(cfg)
	single, err := RunReliableReplay(context.Background(), mbA, "p0", tr, dur, 1)
	mbA.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Simultaneous replays through a fresh, identically configured box.
	mbB := NewMiddlebox(cfg)
	defer mbB.Close()
	var wg sync.WaitGroup
	results := make([]ReplayResult, 2)
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := []string{"p1", "p2"}[i]
			results[i], _ = RunReliableReplay(context.Background(), mbB, name, tr, dur, uint32(i+1))
		}()
	}
	wg.Wait()

	x := single.Throughput.Mean()
	y := measure.Throughput{Samples: measure.SumSamples(results[0].Throughput.Samples, results[1].Throughput.Samples)}.Mean()
	if x == 0 || y == 0 {
		t.Fatal("zero throughput")
	}
	rel := (x - y) / x
	if rel < 0 {
		rel = -rel
	}
	t.Logf("single %.2f Mbit/s vs aggregate simultaneous %.2f Mbit/s (rel diff %.1f%%)", x/1e6, y/1e6, rel*100)
	// Generous bound: `go test ./...` runs packages concurrently, and CPU
	// contention visibly skews real-time replays; the simulator-based
	// tests assert the tight version of this property.
	if rel > 0.45 {
		t.Errorf("aggregate simultaneous throughput should approximate the single replay's: %.2f vs %.2f", y/1e6, x/1e6)
	}
}

// modulatedTrace builds a synthetic same-service datagram stream whose
// rate wanders around mean (bits/s) at ~1 s timescales — the load signal
// that makes the shared bottleneck's loss rate trend.
func modulatedTrace(app string, mean float64, dur time.Duration) *trace.Trace {
	prof, _ := trace.ProfileByName(app)
	tr := &trace.Trace{App: app + "-bg", Transport: trace.UDP, SNI: prof.SNI}
	// SNI-bearing first packet so the middlebox DPI classifies the flow.
	hello := trace.HandshakePayload(prof.SNI)
	tr.Packets = append(tr.Packets, trace.Packet{
		Offset: 0, Size: len(hello), Dir: trace.ServerToClient, Payload: hello,
	})
	rng := rand.New(rand.NewSource(99))
	const pkt = 1200
	factor := 1.0
	next := time.Duration(0)
	lastMod := time.Duration(0)
	for next < dur {
		if next-lastMod >= time.Second {
			factor += -0.3*(factor-1) + rng.NormFloat64()*0.3
			if factor < 0.5 {
				factor = 0.5
			}
			if factor > 1.4 {
				factor = 1.4
			}
			lastMod = next
		}
		gap := time.Duration(float64(pkt*8) / (mean * factor) * float64(time.Second))
		next += gap
		tr.Packets = append(tr.Packets, trace.Packet{
			Offset: next, Size: pkt, Dir: trace.ServerToClient,
		})
	}
	return tr
}
