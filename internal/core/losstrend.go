// Package core implements WeHeY's common-bottleneck detection — the
// paper's primary contribution (§4): the throughput-comparison algorithm
// (§4.1), which recognizes per-client throttling, and the loss-trend
// correlation algorithm (Alg. 1, §4.2), which recognizes collective
// throttling; plus the combined detector that runs them in sequence as
// operation (4) of §3.1.
package core

import (
	"fmt"
	"math"
	"time"

	"github.com/nal-epfl/wehey/internal/measure"
	"github.com/nal-epfl/wehey/internal/stats"
)

// LossTrendConfig parameterizes Alg. 1. The zero value uses the paper's
// settings (FP = 0.05, intervals of 10–50 RTTs, 10-packet minimum).
type LossTrendConfig struct {
	// FP is the acceptable false-positive rate (default 0.05).
	FP float64
	// MinPackets is the minimum transmissions per interval for an interval
	// to be retained (default 10).
	MinPackets int
	// LoRTTs, HiRTTs, StepRTTs define the interval-size sweep in units of
	// the larger path RTT (defaults 10, 50, 5 → 9 sizes).
	LoRTTs, HiRTTs, StepRTTs int
	// MinIntervals is the minimum number of retained intervals an interval
	// size needs to participate in the vote (default 8). A size whose
	// series cannot be formed — e.g. a low-rate trace never reaches the
	// per-interval packet minimum at small σ — is excluded from Σ rather
	// than counted as "not correlated": it carries no evidence either way.
	MinIntervals int
	// Correlation chooses the correlation statistic; the default is
	// Spearman (the ablation benchmarks use Pearson for comparison).
	Correlation CorrelationKind
}

// CorrelationKind selects the correlation statistic used by Alg. 1.
type CorrelationKind int

const (
	// SpearmanCorrelation is the paper's choice: normalized (captures
	// trend, not absolute values) and the least outlier-sensitive.
	SpearmanCorrelation CorrelationKind = iota
	// PearsonCorrelation exists for the ablation study.
	PearsonCorrelation
)

func (c *LossTrendConfig) fill() {
	if c.FP <= 0 {
		c.FP = 0.05
	}
	if c.MinPackets <= 0 {
		c.MinPackets = measure.MinPacketsPerInterval
	}
	if c.LoRTTs == 0 {
		c.LoRTTs = 10
	}
	if c.HiRTTs == 0 {
		c.HiRTTs = 50
	}
	if c.StepRTTs == 0 {
		c.StepRTTs = 5
	}
	if c.MinIntervals <= 0 {
		c.MinIntervals = 8
	}
}

// IntervalVerdict reports the Spearman analysis at one interval size.
type IntervalVerdict struct {
	Sigma      time.Duration
	Intervals  int     // retained intervals
	Admissible bool    // enough intervals to participate in the vote
	Rho        float64 // correlation coefficient (NaN if not computable)
	P          float64 // p-value (1 if not computable)
	Correlated bool    // p < FP
}

// LossTrendResult is the outcome of the loss-trend correlation algorithm.
type LossTrendResult struct {
	CommonBottleneck bool
	Correlations     int // admissible sizes whose correlation was significant
	Sizes            int // admissible interval sizes (|Σ|)
	PerSize          []IntervalVerdict
}

// LossTrendCorrelation implements Alg. 1: for each interval size σ between
// 10 and 50 path RTTs it builds the two loss-rate time series, tests their
// Spearman correlation against the null hypothesis of no correlation, and
// declares a common bottleneck when more than a fraction 1−FP of the
// interval sizes show significant positive correlation.
func LossTrendCorrelation(m1, m2 *measure.Path, cfg LossTrendConfig) (LossTrendResult, error) {
	cfg.fill()
	if err := m1.Validate(); err != nil {
		return LossTrendResult{}, fmt.Errorf("core: path 1: %w", err)
	}
	if err := m2.Validate(); err != nil {
		return LossTrendResult{}, fmt.Errorf("core: path 2: %w", err)
	}
	rtt := measure.MaxRTT(m1, m2)
	sweep := measure.IntervalSweep(rtt, cfg.LoRTTs, cfg.HiRTTs, cfg.StepRTTs)
	var res LossTrendResult
	for _, sigma := range sweep {
		v := IntervalVerdict{Sigma: sigma, P: 1}
		r1, r2 := measure.FilteredLossRates(m1, m2, sigma, cfg.MinPackets)
		v.Intervals = len(r1)
		v.Admissible = v.Intervals >= cfg.MinIntervals
		switch cfg.Correlation {
		case PearsonCorrelation:
			if rho, err := stats.Pearson(r1, r2); err == nil && len(r1) >= 4 {
				v.Rho = rho
				v.P = pearsonP(rho, len(r1))
			}
		default:
			if sp, err := stats.Spearman(r1, r2, stats.Greater); err == nil {
				v.Rho = sp.Rho
				v.P = sp.P
			}
		}
		v.Correlated = v.Admissible && v.P < cfg.FP
		if v.Admissible {
			res.Sizes++
			if v.Correlated {
				res.Correlations++
			}
		}
		res.PerSize = append(res.PerSize, v)
	}
	// At least a third of the sweep must be analyzable; otherwise the
	// measurements cannot support a conclusion at all.
	if res.Sizes < (len(sweep)+2)/3 {
		res.CommonBottleneck = false
		return res, nil
	}
	res.CommonBottleneck = float64(res.Correlations) > (1-cfg.FP)*float64(res.Sizes)
	return res, nil
}

// pearsonP computes the one-sided (positive) p-value of a Pearson
// correlation via the same t transform used for Spearman.
func pearsonP(rho float64, n int) float64 {
	df := float64(n - 2)
	if df <= 0 {
		return 1
	}
	if rho >= 1 {
		return 0
	}
	if rho <= -1 {
		return 1
	}
	t := rho * math.Sqrt(df/(1-rho*rho))
	return 1 - stats.StudentTCDF(t, df)
}
