package core

import (
	"math/rand"
	"testing"
	"time"

	"github.com/nal-epfl/wehey/internal/measure"
)

func TestLossTrendDetectsCommonBottleneck(t *testing.T) {
	// Pure common bottleneck: every seed must be detected (the paper's
	// §6.2 result is FN = 0 under realistic conditions).
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m1, m2 := measure.SynthPair(rng, measure.SynthSpec{CommonWeight: 1})
		res, err := LossTrendCorrelation(m1, m2, LossTrendConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.CommonBottleneck {
			t.Errorf("seed %d: common bottleneck missed (%d/%d sizes correlated)",
				seed, res.Correlations, res.Sizes)
		}
	}
}

func TestLossTrendRejectsIndependentBottlenecks(t *testing.T) {
	// Fully independent loss processes: the false-positive rate must stay
	// near the configured 5% target. 40 seeds → expect ≤ ~4 positives.
	positives := 0
	const trials = 40
	for seed := int64(100); seed < 100+trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m1, m2 := measure.SynthPair(rng, measure.SynthSpec{CommonWeight: 0})
		res, err := LossTrendCorrelation(m1, m2, LossTrendConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if res.CommonBottleneck {
			positives++
		}
	}
	if rate := float64(positives) / trials; rate > 0.125 {
		t.Errorf("false-positive rate = %v, want ≲0.05", rate)
	}
}

func TestLossTrendSweepStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m1, m2 := measure.SynthPair(rng, measure.SynthSpec{CommonWeight: 1})
	res, err := LossTrendCorrelation(m1, m2, LossTrendConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sizes != 9 || len(res.PerSize) != 9 {
		t.Fatalf("sweep sizes = %d, want 9 (10..50 step 5)", res.Sizes)
	}
	if res.PerSize[0].Sigma != 10*m1.RTT {
		t.Errorf("first sigma = %v, want %v", res.PerSize[0].Sigma, 10*m1.RTT)
	}
	if res.PerSize[8].Sigma != 50*m1.RTT {
		t.Errorf("last sigma = %v, want %v", res.PerSize[8].Sigma, 50*m1.RTT)
	}
	for _, v := range res.PerSize {
		if v.P < 0 || v.P > 1 {
			t.Errorf("σ=%v: p=%v out of range", v.Sigma, v.P)
		}
	}
}

func TestLossTrendVerdictRule(t *testing.T) {
	// The decision rule is correlations > (1−FP)·|Σ|: with FP=0.05 and 9
	// sizes, 8 correlated sizes are NOT enough (8 ≤ 8.55), 9 are.
	rng := rand.New(rand.NewSource(2))
	m1, m2 := measure.SynthPair(rng, measure.SynthSpec{CommonWeight: 1})
	res, err := LossTrendCorrelation(m1, m2, LossTrendConfig{})
	if err != nil {
		t.Fatal(err)
	}
	wantDecision := float64(res.Correlations) > 0.95*float64(res.Sizes)
	if res.CommonBottleneck != wantDecision {
		t.Errorf("decision %v inconsistent with rule (%d/%d)",
			res.CommonBottleneck, res.Correlations, res.Sizes)
	}
}

func TestLossTrendUsesLargerRTTForSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m1, m2 := measure.SynthPair(rng, measure.SynthSpec{
		CommonWeight: 1,
		RTT1:         35 * time.Millisecond,
		RTT2:         120 * time.Millisecond,
	})
	res, err := LossTrendCorrelation(m1, m2, LossTrendConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.PerSize[0].Sigma, 10*120*time.Millisecond; got != want {
		t.Errorf("sweep base = %v, want %v (max RTT)", got, want)
	}
}

func TestLossTrendValidation(t *testing.T) {
	good := &measure.Path{RTT: 35 * time.Millisecond, Duration: 45 * time.Second}
	bad := &measure.Path{}
	if _, err := LossTrendCorrelation(bad, good, LossTrendConfig{}); err == nil {
		t.Error("invalid path 1 accepted")
	}
	if _, err := LossTrendCorrelation(good, bad, LossTrendConfig{}); err == nil {
		t.Error("invalid path 2 accepted")
	}
}

func TestLossTrendNoLossMeansNoEvidence(t *testing.T) {
	// Lossless measurements: every interval is filtered out, nothing can
	// correlate, verdict must be negative (not an error).
	p := func() *measure.Path {
		m := &measure.Path{RTT: 35 * time.Millisecond, Duration: 45 * time.Second}
		for ts := time.Duration(0); ts < m.Duration; ts += 2 * time.Millisecond {
			m.Tx = append(m.Tx, ts)
		}
		return m
	}
	res, err := LossTrendCorrelation(p(), p(), LossTrendConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CommonBottleneck {
		t.Error("lossless measurements produced a positive verdict")
	}
}

func TestLossTrendPearsonAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m1, m2 := measure.SynthPair(rng, measure.SynthSpec{CommonWeight: 1})
	res, err := LossTrendCorrelation(m1, m2, LossTrendConfig{Correlation: PearsonCorrelation})
	if err != nil {
		t.Fatal(err)
	}
	// Pearson should also catch the clean pure-common case.
	if !res.CommonBottleneck {
		t.Errorf("Pearson variant missed pure common bottleneck (%d/%d)",
			res.Correlations, res.Sizes)
	}
}
