package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/nal-epfl/wehey/internal/measure"
)

// synthDeliveries builds per-interval delivery events whose rates follow
// the given per-100ms series (Mbit/s).
func synthDeliveries(rates []float64, pktBytes int) []measure.Delivery {
	var out []measure.Delivery
	const step = 100 * time.Millisecond
	for i, r := range rates {
		bytesPerStep := r * 1e6 / 8 * step.Seconds()
		n := int(bytesPerStep / float64(pktBytes))
		for j := 0; j < n; j++ {
			at := time.Duration(i)*step + time.Duration(j)*step/time.Duration(n+1)
			out = append(out, measure.Delivery{At: at, Bytes: pktBytes})
		}
	}
	return out
}

func TestSharedFateDetectsComplementaryThroughput(t *testing.T) {
	// Two sole tenants of a 4 Mbit/s bucket: complementary shares that
	// wander, always summing to ≈4.
	rng := rand.New(rand.NewSource(1))
	const steps = 450 // 45 s at 100 ms
	share := 0.5
	r1 := make([]float64, steps)
	r2 := make([]float64, steps)
	for i := 0; i < steps; i++ {
		share += rng.NormFloat64() * 0.06
		if share < 0.1 {
			share = 0.1
		}
		if share > 0.9 {
			share = 0.9
		}
		r1[i] = 4 * share
		r2[i] = 4 * (1 - share)
	}
	d1 := synthDeliveries(r1, 1400)
	d2 := synthDeliveries(r2, 1400)
	res, err := SharedFateThroughput(d1, d2, 45*time.Second, 35*time.Millisecond, SharedFateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.SharedBottleneck {
		t.Errorf("complementary tenants not detected (%d/%d anti-correlated)",
			res.Anticorrelations, res.Sizes)
	}
	if res.AggregateVariance > 0.05 {
		t.Errorf("aggregate CV² = %v, want small (sum pinned at the rate)", res.AggregateVariance)
	}
}

func TestSharedFateRejectsIndependentFlows(t *testing.T) {
	// Two flows pinned at their own independent buckets: flat rates with
	// independent noise.
	positives := 0
	const trials = 25
	for seed := int64(10); seed < 10+trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const steps = 450
		r1 := make([]float64, steps)
		r2 := make([]float64, steps)
		for i := 0; i < steps; i++ {
			r1[i] = 3 * (1 + 0.08*rng.NormFloat64())
			r2[i] = 3 * (1 + 0.08*rng.NormFloat64())
		}
		d1 := synthDeliveries(r1, 1400)
		d2 := synthDeliveries(r2, 1400)
		res, err := SharedFateThroughput(d1, d2, 45*time.Second, 35*time.Millisecond, SharedFateConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if res.SharedBottleneck {
			positives++
		}
	}
	if float64(positives)/trials > 0.1 {
		t.Errorf("independent flows flagged %d/%d times", positives, trials)
	}
}

func TestSharedFateRejectsPositivelyCorrelatedFlows(t *testing.T) {
	// Co-moving flows (the collective-throttling signature) must NOT look
	// like shared fate — that is Alg. 1's territory.
	rng := rand.New(rand.NewSource(3))
	const steps = 450
	r1 := make([]float64, steps)
	r2 := make([]float64, steps)
	level := 2.0
	for i := 0; i < steps; i++ {
		level += rng.NormFloat64() * 0.1
		level = math.Max(0.5, math.Min(3.5, level))
		r1[i] = level * (1 + 0.05*rng.NormFloat64())
		r2[i] = level * (1 + 0.05*rng.NormFloat64())
	}
	res, err := SharedFateThroughput(synthDeliveries(r1, 1400), synthDeliveries(r2, 1400),
		45*time.Second, 35*time.Millisecond, SharedFateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SharedBottleneck {
		t.Error("positively co-moving flows flagged as shared fate")
	}
}

func TestSharedFateValidation(t *testing.T) {
	if _, err := SharedFateThroughput(nil, nil, 0, time.Millisecond, SharedFateConfig{}); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := SharedFateThroughput(nil, nil, time.Second, 0, SharedFateConfig{}); err == nil {
		t.Error("zero RTT accepted")
	}
	// Empty deliveries: no admissible conclusion, not an error.
	res, err := SharedFateThroughput(nil, nil, 45*time.Second, 35*time.Millisecond, SharedFateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SharedBottleneck {
		t.Error("empty measurements produced a positive verdict")
	}
}
