package core

import (
	"fmt"
	"time"

	"github.com/nal-epfl/wehey/internal/measure"
	"github.com/nal-epfl/wehey/internal/stats"
)

// SharedFateConfig parameterizes the shared-fate detector. Zero value =
// FP 0.05, interval sweep 10–50 RTTs (as in Alg. 1).
type SharedFateConfig struct {
	FP                       float64
	LoRTTs, HiRTTs, StepRTTs int
	// MinIntervals is the minimum series length for an interval size to
	// vote (default 8).
	MinIntervals int
	// Warmup cuts this leading fraction of the replay (default 0.1) so
	// slow-start transients do not masquerade as anti-correlation.
	Warmup float64
}

func (c *SharedFateConfig) fill() {
	if c.FP <= 0 {
		c.FP = 0.05
	}
	if c.LoRTTs == 0 {
		c.LoRTTs = 10
	}
	if c.HiRTTs == 0 {
		c.HiRTTs = 50
	}
	if c.StepRTTs == 0 {
		c.StepRTTs = 5
	}
	if c.MinIntervals <= 0 {
		c.MinIntervals = 8
	}
	if c.Warmup <= 0 {
		c.Warmup = 0.1
	}
}

// SharedFateResult reports the shared-fate analysis.
type SharedFateResult struct {
	SharedBottleneck  bool
	Anticorrelations  int // sizes with significant negative correlation
	Sizes             int // admissible sizes
	PerSize           []IntervalVerdict
	AggregateVariance float64 // CV² of the aggregate throughput series
}

// SharedFateThroughput implements the detection tool for the paper's §7
// per-flow-throttling extension. When the two replay paths are modified to
// present one flow signature, they become the *only* tenants of a per-flow
// token bucket. Loss-trend correlation then fails by construction: token
// contention between sole tenants is zero-sum, so the paths' performance
// is complementary, not co-moving. That complementarity is itself the
// evidence: per-interval throughputs that anti-correlate significantly at
// nearly every interval size — while their aggregate stays pinned at the
// bucket rate — indicate a single shared bucket. Two *independent* (even
// identically configured) buckets produce flat, uncorrelated series.
//
// d1 and d2 are the two paths' client-side delivery events during the
// merged simultaneous replay; dur the replay duration; rtt the larger
// path RTT.
func SharedFateThroughput(d1, d2 []measure.Delivery, dur, rtt time.Duration, cfg SharedFateConfig) (SharedFateResult, error) {
	cfg.fill()
	if dur <= 0 || rtt <= 0 {
		return SharedFateResult{}, fmt.Errorf("core: shared fate: need positive dur and rtt")
	}
	warm := time.Duration(float64(dur) * cfg.Warmup)
	window := dur - warm

	var res SharedFateResult
	sweep := measure.IntervalSweep(rtt, cfg.LoRTTs, cfg.HiRTTs, cfg.StepRTTs)
	for _, sigma := range sweep {
		v := IntervalVerdict{Sigma: sigma, P: 1}
		t1 := measure.BinThroughput(d1, warm, window, sigma)
		t2 := measure.BinThroughput(d2, warm, window, sigma)
		n := len(t1.Samples)
		if len(t2.Samples) < n {
			n = len(t2.Samples)
		}
		v.Intervals = n
		v.Admissible = n >= cfg.MinIntervals
		if v.Admissible {
			if sp, err := stats.Spearman(t1.Samples[:n], t2.Samples[:n], stats.Less); err == nil {
				v.Rho = sp.Rho
				v.P = sp.P
			}
		}
		v.Correlated = v.Admissible && v.P < cfg.FP
		if v.Admissible {
			res.Sizes++
			if v.Correlated {
				res.Anticorrelations++
			}
		}
		res.PerSize = append(res.PerSize, v)
	}

	// The aggregate of sole tenants is pinned at the bucket rate: a small
	// coefficient of variation corroborates the verdict (reported, not
	// gated on — deep per-flow shapers can still wobble).
	res.AggregateVariance = aggregateCV2(d1, d2, warm, window)

	if res.Sizes < (len(sweep)+2)/3 {
		return res, nil
	}
	res.SharedBottleneck = float64(res.Anticorrelations) > (1-cfg.FP)*float64(res.Sizes)
	return res, nil
}

// aggregateCV2 returns the squared coefficient of variation of the summed
// per-interval throughput at a mid-sweep interval size.
func aggregateCV2(d1, d2 []measure.Delivery, start, dur time.Duration) float64 {
	sigma := dur / 30
	if sigma <= 0 {
		return 0
	}
	t1 := measure.BinThroughput(d1, start, dur, sigma)
	t2 := measure.BinThroughput(d2, start, dur, sigma)
	sum := measure.SumSamples(t1.Samples, t2.Samples)
	m := stats.Mean(sum)
	if m <= 0 {
		return 0
	}
	v := stats.Variance(sum)
	return v / (m * m)
}
