package core

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/nal-epfl/wehey/internal/stats"
)

// ThroughputCmpConfig parameterizes the throughput-comparison algorithm
// (§4.1). The zero value uses the paper's settings.
type ThroughputCmpConfig struct {
	// Alpha is the MWU significance level (default 0.05).
	Alpha float64
	// Test selects the hypothesis test; the default is Mann-Whitney U.
	// KS and Welch exist for the ablation study (the paper rejects the
	// T-test for its distributional assumptions and KS for outlier
	// sensitivity).
	Test ThroughputTest
}

// ThroughputTest selects the statistic comparing O_diff against T_diff.
type ThroughputTest int

const (
	// MWUTest is the paper's choice (Wilcoxon rank-sum).
	MWUTest ThroughputTest = iota
	// KSTest is the Kolmogorov-Smirnov alternative (ablation only).
	KSTest
	// WelchTest is a Welch-style t alternative (ablation only).
	WelchTest
)

func (c *ThroughputCmpConfig) fill() {
	if c.Alpha <= 0 {
		c.Alpha = 0.05
	}
}

// ThroughputCmpResult is the outcome of the throughput comparison.
type ThroughputCmpResult struct {
	CommonBottleneck bool
	P                float64
	ODiff            []float64 // Monte-Carlo |relative mean difference| samples
	TDiff            []float64 // historical |relative throughput variation|
}

// ThroughputComparison implements §4.1: it checks whether the throughput X
// achieved by the single replay along p0 and the aggregate throughput Y of
// the simultaneous replay along p1+p2 are close enough that their
// difference is justifiable as normal throughput variation.
//
// O_diff is built by Monte-Carlo subsampling (random halves of X and Y,
// |relative mean difference| per iteration, as many iterations as T_diff
// has data points). T_diff is the empirical distribution of throughput
// variation between repeated past WeHe tests of the same client, app, and
// carrier. The one-sided Mann-Whitney U test then asks whether O_diff has
// significantly smaller rank-sum than T_diff; p < Alpha means the
// difference is within normal variation — a dedicated per-client common
// bottleneck.
//
// Magnitudes: both distributions are compared on absolute values, matching
// the paper's figures (rug plots on [0, ·)) and reported p-values; the sign
// of a relative difference carries no evidence about bottleneck sharing.
func ThroughputComparison(rng *rand.Rand, x, y, tdiff []float64, cfg ThroughputCmpConfig) (ThroughputCmpResult, error) {
	cfg.fill()
	if len(x) < 4 || len(y) < 4 {
		return ThroughputCmpResult{}, fmt.Errorf("core: need ≥4 throughput samples per replay, have %d/%d", len(x), len(y))
	}
	if len(tdiff) < 8 {
		return ThroughputCmpResult{}, fmt.Errorf("core: T_diff too small (%d); need historical test pairs", len(tdiff))
	}
	odiff := stats.ODiff(rng, x, y, len(tdiff))
	oAbs := absAll(odiff)
	tAbs := absAll(tdiff)

	res := ThroughputCmpResult{ODiff: oAbs, TDiff: tAbs}
	switch cfg.Test {
	case KSTest:
		ks, err := stats.KolmogorovSmirnov(oAbs, tAbs)
		if err != nil {
			return res, err
		}
		// KS is two-sided; require the O_diff mean to be on the small side.
		res.P = ks.P
		res.CommonBottleneck = ks.P < cfg.Alpha && stats.Mean(oAbs) < stats.Mean(tAbs)
	case WelchTest:
		p := welchLessP(oAbs, tAbs)
		res.P = p
		res.CommonBottleneck = p < cfg.Alpha
	default:
		mwu, err := stats.MannWhitneyU(oAbs, tAbs, stats.Less)
		if err != nil {
			return res, err
		}
		res.P = mwu.P
		res.CommonBottleneck = mwu.P < cfg.Alpha
	}
	return res, nil
}

func absAll(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = math.Abs(v)
	}
	return out
}

// welchLessP is a one-sided Welch t-test p-value for mean(a) < mean(b).
func welchLessP(a, b []float64) float64 {
	na, nb := float64(len(a)), float64(len(b))
	va, vb := stats.Variance(a)/na, stats.Variance(b)/nb
	den := math.Sqrt(va + vb)
	if den == 0 { //lint:ignore floateq guards exact division by zero (both samples constant)
		return 1
	}
	t := (stats.Mean(a) - stats.Mean(b)) / den
	df := (va + vb) * (va + vb) / (va*va/(na-1) + vb*vb/(nb-1))
	return stats.StudentTCDF(t, df)
}
