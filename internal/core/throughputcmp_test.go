package core

import (
	"math/rand"
	"testing"

	"github.com/nal-epfl/wehey/internal/measure"
)

// synthThroughput builds n samples around mean with multiplicative noise.
func synthThroughput(rng *rand.Rand, n int, mean, noise float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = mean * (1 + rng.NormFloat64()*noise)
	}
	return out
}

// synthTDiff builds a historical variation distribution with relative
// differences of typical magnitude spread (repeated WeHe tests vary by
// ~5–30%).
func synthTDiff(rng *rand.Rand, n int, spread float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64() * spread
	}
	return out
}

func TestThroughputComparisonPerClientScenario(t *testing.T) {
	// X and Y nearly equal (both capped by the same dedicated policer):
	// their difference is well within normal variation → common bottleneck.
	rng := rand.New(rand.NewSource(1))
	x := synthThroughput(rng, 100, 4e6, 0.03)
	y := synthThroughput(rng, 100, 4e6, 0.03)
	tdiff := synthTDiff(rng, 200, 0.12)
	res, err := ThroughputComparison(rng, x, y, tdiff, ThroughputCmpConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CommonBottleneck {
		t.Errorf("per-client scenario missed: p = %v", res.P)
	}
	if res.P > 0.01 {
		t.Errorf("p = %v, want strongly significant", res.P)
	}
	if len(res.ODiff) != len(res.TDiff) {
		t.Errorf("O_diff size %d != T_diff size %d", len(res.ODiff), len(res.TDiff))
	}
}

func TestThroughputComparisonAlternativeScenario(t *testing.T) {
	// Y is double X (the two simultaneous replays grabbed two shares of a
	// shared bottleneck): the difference exceeds normal variation.
	rng := rand.New(rand.NewSource(2))
	x := synthThroughput(rng, 100, 2e6, 0.05)
	y := synthThroughput(rng, 100, 4e6, 0.05)
	tdiff := synthTDiff(rng, 200, 0.12)
	res, err := ThroughputComparison(rng, x, y, tdiff, ThroughputCmpConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CommonBottleneck {
		t.Errorf("alternative scenario false positive: p = %v", res.P)
	}
	if res.P < 0.5 {
		t.Errorf("p = %v, want clearly insignificant", res.P)
	}
}

func TestThroughputComparisonSanityCheckScenario(t *testing.T) {
	// Table 1's sanity check: a third replay shares the per-client
	// bottleneck, so Y (p1+p2 only) falls well short of X.
	rng := rand.New(rand.NewSource(3))
	x := synthThroughput(rng, 100, 4e6, 0.03)
	y := synthThroughput(rng, 100, 4e6*2/3, 0.03)
	tdiff := synthTDiff(rng, 200, 0.1)
	res, err := ThroughputComparison(rng, x, y, tdiff, ThroughputCmpConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CommonBottleneck {
		t.Error("sanity-check scenario must not report a common bottleneck")
	}
}

func TestThroughputComparisonInputValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ok := synthThroughput(rng, 50, 1e6, 0.1)
	tdiff := synthTDiff(rng, 100, 0.1)
	if _, err := ThroughputComparison(rng, ok[:2], ok, tdiff, ThroughputCmpConfig{}); err == nil {
		t.Error("tiny X accepted")
	}
	if _, err := ThroughputComparison(rng, ok, ok[:3], tdiff, ThroughputCmpConfig{}); err == nil {
		t.Error("tiny Y accepted")
	}
	if _, err := ThroughputComparison(rng, ok, ok, tdiff[:4], ThroughputCmpConfig{}); err == nil {
		t.Error("tiny T_diff accepted")
	}
}

func TestThroughputComparisonAlternativeTests(t *testing.T) {
	// The KS and Welch ablation variants should agree on the two clear-cut
	// scenarios.
	for _, test := range []ThroughputTest{KSTest, WelchTest} {
		rng := rand.New(rand.NewSource(5))
		x := synthThroughput(rng, 100, 4e6, 0.03)
		yEq := synthThroughput(rng, 100, 4e6, 0.03)
		yFar := synthThroughput(rng, 100, 8e6, 0.03)
		tdiff := synthTDiff(rng, 200, 0.12)
		cfg := ThroughputCmpConfig{Test: test}
		eq, err := ThroughputComparison(rng, x, yEq, tdiff, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !eq.CommonBottleneck {
			t.Errorf("test %v: per-client scenario missed", test)
		}
		far, err := ThroughputComparison(rng, x, yFar, tdiff, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if far.CommonBottleneck {
			t.Errorf("test %v: alternative scenario false positive", test)
		}
	}
}

func TestDetectCommonBottleneckOrderAndFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := synthThroughput(rng, 100, 4e6, 0.03)
	yEq := synthThroughput(rng, 100, 4e6, 0.03)
	yFar := synthThroughput(rng, 100, 8e6, 0.03)
	tdiff := synthTDiff(rng, 200, 0.12)
	m1, m2 := measure.SynthPair(rng, measure.SynthSpec{CommonWeight: 1})

	// Per-client match short-circuits before the loss-trend algorithm.
	res, err := DetectCommonBottleneck(rng, DetectorInput{X: x, Y: yEq, TDiff: tdiff, M1: m1, M2: m2}, DetectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evidence != EvidencePerClient {
		t.Errorf("evidence = %v, want per-client", res.Evidence)
	}
	if res.LossTrend != nil {
		t.Error("loss-trend ran despite per-client match")
	}

	// Throughput mismatch falls through to loss-trend, which matches.
	res, err = DetectCommonBottleneck(rng, DetectorInput{X: x, Y: yFar, TDiff: tdiff, M1: m1, M2: m2}, DetectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evidence != EvidenceShared {
		t.Errorf("evidence = %v, want shared", res.Evidence)
	}
	if res.Throughput == nil || res.LossTrend == nil {
		t.Error("both algorithms should have run")
	}

	// Nothing matches → no evidence.
	mi1, mi2 := measure.SynthPair(rng, measure.SynthSpec{CommonWeight: 0})
	res, err = DetectCommonBottleneck(rng, DetectorInput{X: x, Y: yFar, TDiff: tdiff, M1: mi1, M2: mi2}, DetectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evidence.Found() {
		t.Errorf("evidence = %v, want none", res.Evidence)
	}

	// Missing T_diff skips throughput comparison entirely.
	res, err = DetectCommonBottleneck(rng, DetectorInput{M1: m1, M2: m2}, DetectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput != nil {
		t.Error("throughput comparison ran without T_diff")
	}
	if res.Evidence != EvidenceShared {
		t.Errorf("evidence = %v, want shared via loss-trend", res.Evidence)
	}
}

func TestEvidenceStrings(t *testing.T) {
	if EvidenceNone.String() != "no evidence" || EvidenceNone.Found() {
		t.Error("EvidenceNone")
	}
	if EvidencePerClient.String() != "per-client bottleneck" || !EvidencePerClient.Found() {
		t.Error("EvidencePerClient")
	}
	if EvidenceShared.String() != "shared bottleneck" || !EvidenceShared.Found() {
		t.Error("EvidenceShared")
	}
}
