package core

import (
	"math/rand"

	"github.com/nal-epfl/wehey/internal/measure"
)

// Evidence classifies what the common-bottleneck detector found.
type Evidence int

const (
	// EvidenceNone: no common bottleneck was detected; WeHeY cannot add
	// information beyond WeHe's detection.
	EvidenceNone Evidence = iota
	// EvidencePerClient: the throughput comparison matched — the client's
	// traffic traverses a dedicated bottleneck (per-client throttling).
	EvidencePerClient
	// EvidenceShared: the loss-trend correlation matched — the two paths
	// share a bottleneck with other traffic (collective throttling).
	EvidenceShared
)

// String names the evidence class.
func (e Evidence) String() string {
	switch e {
	case EvidencePerClient:
		return "per-client bottleneck"
	case EvidenceShared:
		return "shared bottleneck"
	}
	return "no evidence"
}

// Found reports whether any common bottleneck was detected.
func (e Evidence) Found() bool { return e != EvidenceNone }

// DetectorConfig bundles the two algorithms' configurations.
type DetectorConfig struct {
	Throughput ThroughputCmpConfig
	LossTrend  LossTrendConfig
}

// DetectorInput carries everything operation (4) of §3.1 consumes.
type DetectorInput struct {
	// X holds the throughput samples of the original single replay on p0.
	X []float64
	// Y holds the summed throughput samples of the original simultaneous
	// replay on p1 and p2.
	Y []float64
	// TDiff is the historical throughput-variation distribution for this
	// client/app/carrier.
	TDiff []float64
	// M1, M2 are the packet-loss measurements of p1 and p2 during the
	// original simultaneous replay.
	M1, M2 *measure.Path
}

// DetectorResult reports the combined decision with both algorithms'
// details (whichever ran).
type DetectorResult struct {
	Evidence   Evidence
	Throughput *ThroughputCmpResult
	LossTrend  *LossTrendResult
}

// DetectCommonBottleneck runs WeHeY's two detection algorithms in the
// paper's order: first the throughput comparison (catches per-client
// throttling); if it finds nothing, the loss-trend correlation (catches
// collective throttling). Either algorithm may be skipped when its inputs
// are absent (e.g. no historical T_diff data → loss-trend only).
func DetectCommonBottleneck(rng *rand.Rand, in DetectorInput, cfg DetectorConfig) (DetectorResult, error) {
	var res DetectorResult

	if len(in.X) > 0 && len(in.Y) > 0 && len(in.TDiff) > 0 {
		tc, err := ThroughputComparison(rng, in.X, in.Y, in.TDiff, cfg.Throughput)
		if err != nil {
			return res, err
		}
		res.Throughput = &tc
		if tc.CommonBottleneck {
			res.Evidence = EvidencePerClient
			return res, nil
		}
	}

	if in.M1 != nil && in.M2 != nil {
		lt, err := LossTrendCorrelation(in.M1, in.M2, cfg.LossTrend)
		if err != nil {
			return res, err
		}
		res.LossTrend = &lt
		if lt.CommonBottleneck {
			res.Evidence = EvidenceShared
			return res, nil
		}
	}
	return res, nil
}
