package twin

import (
	"math"
	"testing"
)

func relClose(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Abs(want) {
		t.Errorf("%s = %v, want %v (±%v rel)", name, got, want, tol)
	}
}

func TestMGcMM1Exact(t *testing.T) {
	// M/M/1 at λ=0.8, μ=1: every formula is closed-form. Wq = ρ/(μ−λ) = 4,
	// T = 1/(μ−λ) = 5, and the sojourn is exactly Exp(μ−λ).
	m := MGc{Lambda: 0.8, Servers: 1, MeanService: 1, SCV: 1}
	relClose(t, "utilization", m.Utilization(), 0.8, 1e-12)
	relClose(t, "waitProb", m.WaitProb(), 0.8, 1e-12)
	relClose(t, "meanWait", m.MeanWait(), 4, 1e-12)
	relClose(t, "meanSojourn", m.MeanSojourn(), 5, 1e-12)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		want := -math.Log(1-q) * 5 // Exp(0.2) quantile
		relClose(t, "sojournQuantile", m.SojournQuantile(q), want, 1e-3)
	}
}

func TestMGcMD1PollaczekKhinchine(t *testing.T) {
	// M/D/1 (deterministic service): Wq = ρE[S]/(2(1−ρ)) — exactly half
	// the M/M/1 wait.
	m := MGc{Lambda: 0.8, Servers: 1, MeanService: 1, SCV: 0}
	relClose(t, "meanWait", m.MeanWait(), 2, 1e-12)
	// The sojourn can never beat the deterministic service floor.
	if q := m.SojournQuantile(0.01); q < 1-1e-6 {
		t.Errorf("p1 sojourn = %v, below the deterministic service time 1", q)
	}
}

func TestMGcErlangCKnownValue(t *testing.T) {
	// M/M/2 at a = 1.5 Erlangs (ρ = 0.75): Erlang-C is 9/14 and
	// Wq = C/(cμ−λ) = (9/14)/0.5.
	m := MGc{Lambda: 1.5, Servers: 2, MeanService: 1, SCV: 1}
	relClose(t, "waitProb", m.WaitProb(), 9.0/14, 1e-12)
	relClose(t, "meanWait", m.MeanWait(), 9.0/14/0.5, 1e-12)
}

func TestMGcUnstableAndDegenerate(t *testing.T) {
	m := MGc{Lambda: 2, Servers: 1, MeanService: 1, SCV: 1}
	if m.Stable() {
		t.Error("ρ=2 reported stable")
	}
	if !math.IsInf(m.MeanWait(), 1) || !math.IsInf(m.SojournQuantile(0.95), 1) {
		t.Error("unstable queue must predict infinite wait")
	}
	idle := MGc{Lambda: 0, Servers: 3, MeanService: 2, SCV: 1}
	if w := idle.MeanWait(); w != 0 {
		t.Errorf("no arrivals: meanWait = %v, want 0", w)
	}
	// With no wait the sojourn is the service distribution itself.
	relClose(t, "idle p63", idle.SojournQuantile(1-math.Exp(-1)), 2, 1e-3)
}

func TestMGcQuantileMonotone(t *testing.T) {
	m := MGc{Lambda: 3, Servers: 4, MeanService: 1, SCV: 0.5}
	prev := 0.0
	for _, q := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		v := m.SojournQuantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone: q=%v gave %v after %v", q, v, prev)
		}
		prev = v
	}
	// CDF round-trip: F(F⁻¹(q)) ≈ q.
	for _, q := range []float64{0.5, 0.95} {
		if got := m.SojournCDF(m.SojournQuantile(q)); math.Abs(got-q) > 1e-3 {
			t.Errorf("CDF(quantile(%v)) = %v", q, got)
		}
	}
}

func TestMinServers(t *testing.T) {
	// λ=3 jobs/s, E[S]=1 s exponential: c must be at least 4 for stability;
	// tightening the p95 target forces more workers, and MinServers agrees
	// with direct evaluation.
	c := MinServers(3, 1, 1, 0.95, 4.0, 32)
	if c == 0 {
		t.Fatal("no feasible server count found")
	}
	m := MGc{Lambda: 3, Servers: c, MeanService: 1, SCV: 1}
	if !m.Stable() || m.SojournQuantile(0.95) > 4.0 {
		t.Errorf("c=%d does not meet the target", c)
	}
	if c > 1 {
		prev := MGc{Lambda: 3, Servers: c - 1, MeanService: 1, SCV: 1}
		if prev.Stable() && prev.SojournQuantile(0.95) <= 4.0 {
			t.Errorf("c=%d is not minimal: c−1 also meets the target", c)
		}
	}
	// The service alone has p95 = −ln(0.05) ≈ 3.0 s, the floor no worker
	// count can beat; a target just above it needs more servers than 4.0 s,
	// and one below it is infeasible at any count.
	tight := MinServers(3, 1, 1, 0.95, 3.1, 64)
	if tight <= c {
		t.Errorf("tighter target needs %d servers, looser needed %d", tight, c)
	}
	if got := MinServers(3, 1, 1, 0.95, 2.5, 64); got != 0 {
		t.Errorf("sub-service-floor target returned %d, want 0 (infeasible)", got)
	}
	if got := MinServers(3, 1, 1, 0.95, 4.0, 3); got != 0 {
		t.Errorf("max below stability returned %d, want 0", got)
	}
}
