// Package twin holds the analytical queueing twin: closed-form models that
// predict what the packet-level simulator (internal/netsim) and the campaign
// service (internal/service) will measure, without running them. The twin
// serves two purposes: it answers capacity questions instantly ("how many
// workers for X jobs/s at Y p95", "what loss rate will this policer show"),
// and it acts as a second oracle — internal/twin/validate sweeps both models
// against simulation ground truth, so a regression in either the sim or the
// math shows up as a tolerance violation rather than silently shifting
// results.
package twin

import (
	"math"
	"time"
)

// TBFParams describes a token-bucket filter offered a fixed-rate aggregate,
// mirroring netsim.RateLimiter's configuration plus the offered load.
type TBFParams struct {
	// Rate is the token replenishment rate in bits/s. Rate <= 0 models the
	// zero-rate blackhole: the initial burst forwards, everything after
	// drops (netsim.RateLimiter's documented semantics).
	Rate float64
	// Burst is the token bucket size in bytes.
	Burst int
	// QueueLimit is the TBF queue size in bytes; 0 = pure policer.
	QueueLimit int
	// PacketSize is the size of every offered packet in bytes. The fluid
	// model is packet-size-agnostic except for first-drop timing and the
	// oversized-packet rule (PacketSize > Burst can never forward).
	PacketSize int
	// Offered is the aggregate offered load in bits/s.
	Offered float64
	// Horizon is the finite observation window: arrivals run over
	// [0, Horizon) and loss is accounted against arrivals in that window.
	Horizon time.Duration
}

// TBFPrediction is the fluid model's steady-state answer for one TBFParams
// point. The model treats traffic as a continuous fluid, so it is exact up
// to packet granularity: expect deviations on the order of one packet's
// worth of bytes or one inter-arrival time (the validate harness's
// tolerance bands quantify this).
type TBFPrediction struct {
	// LossRate is the fraction of offered bytes dropped over the horizon,
	// in [0, 1]. As Horizon → ∞ with Offered > Rate this tends to
	// 1 − Rate/Offered (= 1 − 1/ρ).
	LossRate float64
	// MeanQueueDelay is the average time a forwarded packet spent in the
	// TBF queue (zero for a pure policer and for underload).
	MeanQueueDelay time.Duration
	// Drops reports whether the model predicts any drop within the horizon.
	Drops bool
	// FirstDrop is the predicted time of the first drop, valid only when
	// Drops is true.
	FirstDrop time.Duration
}

// PredictTBF evaluates the fluid token-bucket model.
//
// Writing A = Offered/8 and R = Rate/8 (bytes/s), B = Burst, Q = QueueLimit
// (bytes), the overloaded case A > R evolves in three phases:
//
//	phase 1 [0, tB):      tokens drain at A−R; empty at tB = B/(A−R).
//	                      Everything forwards with zero delay.
//	phase 2 [tB, tFill):  the queue fills at A−R; full at
//	                      tFill = (B+Q)/(A−R). Arrivals are accepted and
//	                      wait q(t)/R behind the backlog, averaging Q/(2R).
//	phase 3 [tFill, …):   the queue holds Q; arrivals are accepted at rate
//	                      R and dropped at A−R, accepted ones wait Q/R.
//
// Loss over the horizon T is the phase-3 overflow (A−R)·(T−tFill) divided
// by the offered volume A·T. The first drop lands when the queue can no
// longer take a whole packet — occupancy Q−P — at (B+Q−P)/(A−R); a queue
// smaller than one packet never holds anything, so the first drop moves up
// to token exhaustion at (B−P)/(A−R).
func PredictTBF(p TBFParams) TBFPrediction {
	A := p.Offered / 8 // offered bytes/s
	R := p.Rate / 8    // drain bytes/s
	B := float64(p.Burst)
	Q := float64(p.QueueLimit)
	P := float64(p.PacketSize)
	T := p.Horizon.Seconds()
	if A <= 0 || T <= 0 {
		return TBFPrediction{}
	}

	if p.PacketSize > p.Burst {
		// Oversized packets can never earn enough tokens; the limiter drops
		// them on arrival (netsim does the same, as does tc-tbf by refusing
		// the configuration).
		return TBFPrediction{LossRate: 1, Drops: true, FirstDrop: 0}
	}

	if R <= 0 {
		// Zero-rate blackhole: exactly the initial burst forwards. The
		// first drop is the first arrival past floor(B/P) whole packets.
		offered := A * T
		if offered <= B {
			return TBFPrediction{}
		}
		burstPkts := math.Floor(B / P)
		return TBFPrediction{
			LossRate:  (offered - burstPkts*P) / offered,
			Drops:     true,
			FirstDrop: secs(burstPkts * P / A),
		}
	}

	if A <= R {
		// Underload: tokens never stay exhausted, nothing queues or drops.
		return TBFPrediction{}
	}

	excess := A - R
	tB := B / excess
	tFill := (B + Q) / excess

	// First drop: queue occupancy reaches Q−P (or tokens reach P for a
	// sub-packet queue). Clamp at zero — with B < P handled above, B ≥ P
	// keeps this non-negative, but guard against float dust.
	var tDrop float64
	if Q >= P {
		tDrop = (B + Q - P) / excess
	} else {
		tDrop = (B - P) / excess
	}
	if tDrop < 0 {
		tDrop = 0
	}
	drops := tDrop < T

	// Loss: overflow beyond tFill, none before.
	var lost float64
	if T > tFill {
		lost = excess * (T - tFill)
	}
	loss := lost / (A * T)

	// Mean queue delay over forwarded bytes, phase by phase. Arrivals stop
	// at T but queued bytes still drain, so every accepted byte is
	// eventually forwarded and the phase-2/3 contributions count in full.
	var delaySum, fwdBytes float64
	fwdBytes = A * math.Min(T, tB) // phase 1, zero delay
	if T > tB {
		t2 := math.Min(T, tFill) - tB // time spent in phase 2
		qEnd := excess * t2           // backlog reached by the end of it
		accepted := A * t2
		delaySum += accepted * qEnd / (2 * R)
		fwdBytes += accepted
	}
	if T > tFill {
		accepted := R * (T - tFill)
		delaySum += accepted * Q / R
		fwdBytes += accepted
	}

	pred := TBFPrediction{
		LossRate: loss,
		Drops:    drops,
	}
	if drops {
		pred.FirstDrop = secs(tDrop)
	}
	if fwdBytes > 0 {
		pred.MeanQueueDelay = secs(delaySum / fwdBytes)
	}
	return pred
}

// secs converts a float64 second count to a time.Duration.
func secs(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
