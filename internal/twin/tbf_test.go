package twin

import (
	"math"
	"testing"
	"time"
)

func TestPredictTBFUnderloadIsClean(t *testing.T) {
	p := PredictTBF(TBFParams{
		Rate: 4e6, Burst: 3000, QueueLimit: 30000,
		PacketSize: 1000, Offered: 2e6, Horizon: 10 * time.Second,
	})
	if p.LossRate != 0 || p.Drops || p.MeanQueueDelay != 0 {
		t.Errorf("underload predicted impairment: %+v", p)
	}
}

func TestPredictTBFPolicerHandComputed(t *testing.T) {
	// R=250 kB/s, A=500 kB/s, B=1500, Q=0, P=1000, T=10 s.
	// tFill = 1500/250000 = 6 ms; loss = 250000·9.994/5e6 = 0.4997;
	// first drop at (B−P)/(A−R) = 500/250000 = 2 ms; no queue, no delay.
	p := PredictTBF(TBFParams{
		Rate: 2e6, Burst: 1500, QueueLimit: 0,
		PacketSize: 1000, Offered: 4e6, Horizon: 10 * time.Second,
	})
	if math.Abs(p.LossRate-0.4997) > 1e-9 {
		t.Errorf("loss = %v, want 0.4997", p.LossRate)
	}
	if !p.Drops || p.FirstDrop != 2*time.Millisecond {
		t.Errorf("first drop = %v (drops=%v), want 2ms", p.FirstDrop, p.Drops)
	}
	if p.MeanQueueDelay != 0 {
		t.Errorf("pure policer predicted queue delay %v", p.MeanQueueDelay)
	}
}

func TestPredictTBFShaperDelayPhases(t *testing.T) {
	// Same point with a 60 kB queue: steady-state per-packet delay is
	// Q/R = 240 ms; the horizon mean must sit between the phase-2 average
	// Q/2R and that ceiling, and loss must shrink vs the policer.
	shaper := PredictTBF(TBFParams{
		Rate: 2e6, Burst: 1500, QueueLimit: 60000,
		PacketSize: 1000, Offered: 4e6, Horizon: 10 * time.Second,
	})
	steady := 240 * time.Millisecond
	if shaper.MeanQueueDelay <= steady/2 || shaper.MeanQueueDelay >= steady {
		t.Errorf("mean delay = %v, want in (120ms, 240ms)", shaper.MeanQueueDelay)
	}
	// tFill = 61500/250000 = 246 ms → loss = 250000·(10−0.246)/5e6.
	wantLoss := 250000 * (10 - 0.246) / 5e6
	if math.Abs(shaper.LossRate-wantLoss) > 1e-9 {
		t.Errorf("loss = %v, want %v", shaper.LossRate, wantLoss)
	}
	// First drop once the queue holds Q−P: (1500+60000−1000)/250000 = 242 ms.
	if want := 242 * time.Millisecond; shaper.FirstDrop != want {
		t.Errorf("first drop = %v, want %v", shaper.FirstDrop, want)
	}
}

func TestPredictTBFLossTendsToOneMinusInverseRho(t *testing.T) {
	// As the horizon grows the transient burst credit washes out and loss
	// approaches 1 − 1/ρ.
	params := TBFParams{
		Rate: 2e6, Burst: 15000, QueueLimit: 30000,
		PacketSize: 1000, Offered: 3.6e6, // ρ = 1.8
	}
	params.Horizon = 1000 * time.Second
	p := PredictTBF(params)
	want := 1 - 1/1.8
	if math.Abs(p.LossRate-want) > 1e-3 {
		t.Errorf("asymptotic loss = %v, want ≈%v", p.LossRate, want)
	}
	// And it must increase with the horizon (transient-free share grows).
	params.Horizon = 10 * time.Second
	if short := PredictTBF(params); short.LossRate >= p.LossRate {
		t.Errorf("loss did not grow with horizon: %v then %v", short.LossRate, p.LossRate)
	}
}

func TestPredictTBFZeroRateBlackhole(t *testing.T) {
	// Mirrors netsim's zero-rate semantics (TestRateLimiterZeroRateTerminates):
	// 20 packets of 1000 B offered over 20 ms, burst 3000 → 3 forward, 17 drop.
	offered := 20 * 1000 * 8 / 0.020 // bits/s over the arrival window
	p := PredictTBF(TBFParams{
		Rate: 0, Burst: 3000, QueueLimit: 60000,
		PacketSize: 1000, Offered: offered, Horizon: 20 * time.Millisecond,
	})
	if want := 17.0 / 20; math.Abs(p.LossRate-want) > 1e-9 {
		t.Errorf("loss = %v, want %v", p.LossRate, want)
	}
	if !p.Drops {
		t.Error("zero-rate overload must drop")
	}
	// First drop when the 3-packet burst is spent: 3000 B at 1 MB/s = 3 ms.
	if want := 3 * time.Millisecond; p.FirstDrop != want {
		t.Errorf("first drop = %v, want %v", p.FirstDrop, want)
	}
}

func TestPredictTBFOversizedPacketDropsEverything(t *testing.T) {
	p := PredictTBF(TBFParams{
		Rate: 2e6, Burst: 500, QueueLimit: 60000,
		PacketSize: 1500, Offered: 1e6, Horizon: time.Second,
	})
	if p.LossRate != 1 || !p.Drops || p.FirstDrop != 0 {
		t.Errorf("oversized packets: %+v, want total loss from t=0", p)
	}
}

func TestPredictTBFDegenerateInputs(t *testing.T) {
	if p := PredictTBF(TBFParams{}); p != (TBFPrediction{}) {
		t.Errorf("zero params: %+v, want zero prediction", p)
	}
	p := PredictTBF(TBFParams{Rate: 1e6, Burst: 1500, PacketSize: 1000,
		Offered: 2e6, Horizon: 0})
	if p != (TBFPrediction{}) {
		t.Errorf("zero horizon: %+v, want zero prediction", p)
	}
}
