package twin

import (
	"math"

	"github.com/nal-epfl/wehey/internal/stats"
)

// MGc is an M/G/c queueing model of the campaign service: jobs arrive
// Poisson at Lambda per second, Servers workers serve them FIFO, and the
// service time has mean MeanService seconds and squared coefficient of
// variation SCV (= Var[S]/E[S]²; 1 for exponential, 0 for deterministic).
//
// For c = 1 the waiting time is the exact Pollaczek–Khinchine mean; for
// c > 1 it uses the Allen–Cunneen approximation
//
//	Wq ≈ (1+SCV)/2 · Wq(M/M/c)
//
// which is exact for M/M/c and for M/G/1, and within a few percent for the
// utilizations the service runs at. The service-time moments come from the
// scheduler's job metrics (see service.Metrics.ServiceMoments) or from
// explicit overrides on the wehey-twin command line.
type MGc struct {
	Lambda      float64 // arrivals per second
	Servers     int     // worker count c
	MeanService float64 // E[S] in seconds
	SCV         float64 // Var[S]/E[S]²
}

// Utilization returns ρ = λ·E[S]/c.
func (m MGc) Utilization() float64 {
	if m.Servers <= 0 || m.MeanService <= 0 {
		return 0
	}
	return m.Lambda * m.MeanService / float64(m.Servers)
}

// Stable reports whether the queue has a steady state (ρ < 1 with at least
// one server and a positive service time).
func (m MGc) Stable() bool {
	return m.Servers >= 1 && m.MeanService > 0 && m.Utilization() < 1
}

// erlangC returns the M/M/c probability that an arrival must wait, via the
// numerically stable Erlang-B recurrence B(k) = a·B(k−1)/(k + a·B(k−1)).
func erlangC(c int, a float64) float64 {
	if a <= 0 {
		return 0
	}
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := a / float64(c)
	return b / (1 - rho*(1-b))
}

// WaitProb returns the probability an arriving job finds all servers busy
// (and therefore queues at all). Erlang-C; 1 when unstable.
func (m MGc) WaitProb() float64 {
	if !m.Stable() {
		return 1
	}
	return erlangC(m.Servers, m.Lambda*m.MeanService)
}

// MeanWait returns E[Wq], the mean time in queue (excluding service).
// +Inf when the system is unstable.
func (m MGc) MeanWait() float64 {
	if !m.Stable() {
		return math.Inf(1)
	}
	if m.Lambda <= 0 {
		return 0
	}
	c := float64(m.Servers)
	rho := m.Utilization()
	wqMMc := m.WaitProb() * m.MeanService / (c * (1 - rho))
	return (1 + m.SCV) / 2 * wqMMc
}

// MeanSojourn returns E[T] = E[Wq] + E[S], the mean submit-to-finish time.
func (m MGc) MeanSojourn() float64 {
	return m.MeanWait() + m.MeanService
}

// SojournCDF returns P(T ≤ t) for the sojourn time T = Wq + S, treating the
// wait and the service as independent (exact for FIFO M/M/c, the standard
// approximation otherwise):
//
//   - Wq has an atom 1−Pc at zero and an exponential tail
//     P(Wq > t) = Pc·e^(−t/w̄) with w̄ = E[Wq]/Pc, the unique
//     atom-plus-exponential law matching both Erlang-C and the mean.
//   - S is gamma-fit to the first two moments: shape k = 1/SCV, scale
//     θ = E[S]·SCV (exponential at SCV 1, a point mass as SCV → 0).
//
// The convolution is integrated numerically; for M/M/1 the result is the
// exact Exp(μ−λ) sojourn law.
func (m MGc) SojournCDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	if !m.Stable() {
		return 0
	}
	pc := m.WaitProb()
	wq := m.MeanWait()
	if pc <= 0 || wq <= 0 {
		return m.serviceCDF(t)
	}
	wbar := wq / pc

	// P(T ≤ t) = (1−Pc)·F_S(t) + ∫₀ᵗ (Pc/w̄)·e^(−w/w̄)·F_S(t−w) dw,
	// by composite Simpson on the wait variable.
	const steps = 512 // even
	h := t / steps
	integral := 0.0
	for i := 0; i <= steps; i++ {
		w := float64(i) * h
		f := pc / wbar * math.Exp(-w/wbar) * m.serviceCDF(t-w)
		switch {
		case i == 0 || i == steps:
			integral += f
		case i%2 == 1:
			integral += 4 * f
		default:
			integral += 2 * f
		}
	}
	integral *= h / 3
	p := (1-pc)*m.serviceCDF(t) + integral
	if p > 1 {
		p = 1
	}
	return p
}

// serviceCDF is the gamma-fit service-time CDF.
func (m MGc) serviceCDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	if m.MeanService <= 0 {
		return 1
	}
	if m.SCV < 1e-9 {
		// Deterministic service: a step at the mean.
		if t >= m.MeanService {
			return 1
		}
		return 0
	}
	k := 1 / m.SCV
	theta := m.MeanService * m.SCV
	return stats.RegIncGammaLower(k, t/theta)
}

// SojournQuantile returns the q-quantile (0 < q < 1) of the sojourn time by
// bisecting SojournCDF. +Inf when the system is unstable.
func (m MGc) SojournQuantile(q float64) float64 {
	if !m.Stable() {
		return math.Inf(1)
	}
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return math.Inf(1)
	}
	// Bracket: mean sojourn plus enough exponential tail room. Double
	// until the CDF crosses q, then bisect.
	hi := m.MeanSojourn() * 2
	if hi <= 0 {
		return 0
	}
	for i := 0; i < 60 && m.SojournCDF(hi) < q; i++ {
		hi *= 2
	}
	lo := 0.0
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if m.SojournCDF(mid) < q {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// MinServers returns the smallest worker count whose p-quantile sojourn
// stays at or below target seconds, searching up to max servers. It returns
// 0 if even max servers cannot meet the target (or the inputs are
// degenerate). This is the "how many workers for X jobs/s at Y p95" answer.
func MinServers(lambda, meanService, scv, p, target float64, max int) int {
	if meanService <= 0 || target <= 0 || max < 1 {
		return 0
	}
	for c := 1; c <= max; c++ {
		m := MGc{Lambda: lambda, Servers: c, MeanService: meanService, SCV: scv}
		if !m.Stable() {
			continue
		}
		if m.SojournQuantile(p) <= target {
			return c
		}
	}
	return 0
}
