package validate

import (
	"fmt"
	"testing"
	"time"

	"github.com/nal-epfl/wehey/internal/twin"
)

// TestTwinMatchesSimAcrossGrid is the acceptance sweep: every analytical
// prediction must land inside its tolerance band against simulation ground
// truth — the fluid TBF model across the full rate×load×device grid, and
// the M/G/c model against a real scheduler at three utilizations. In
// -short mode (used by the race-detector CI lane) the expensive MG1 points
// shrink to the cheapest one; the full grid runs in the default lane and
// in the wehey-twin CLI.
func TestTwinMatchesSimAcrossGrid(t *testing.T) {
	cache, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	grid := DefaultTBFGrid()
	if len(grid) < 20 {
		t.Fatalf("TBF grid has %d points, want >= 20", len(grid))
	}
	points := DefaultMG1Points()
	utils := map[string]bool{}
	for _, pt := range points {
		m := twin.MGc{Lambda: pt.Lambda, Servers: pt.Servers, MeanService: pt.MeanService, SCV: pt.SCV}
		utils[fmt.Sprintf("%.2f", m.Utilization())] = true
	}
	if len(utils) < 3 {
		t.Fatalf("MG1 points cover %d utilization levels, want >= 3", len(utils))
	}
	if testing.Short() {
		points = points[:1]
	}

	var report Report
	for _, pt := range grid {
		report.TBF = append(report.TBF, EvalTBFPoint(pt, cache))
	}
	for _, pt := range points {
		report.MG1 = append(report.MG1, EvalMG1Point(pt, cache))
	}

	if n := report.ViolationCount(); n != 0 {
		t.Errorf("%d tolerance violations:\n%s", n, report.Render())
	}
	for _, p := range report.MG1 {
		if !p.Meas.ExactSchedule {
			t.Errorf("%s: scheduler sojourns diverged from the FIFO reference", p.Point.Name)
		}
	}
}

// TestWarmSweepHitsDiskCache locks in the "warm runs are free" property the
// CI job relies on: a second process (fresh in-memory state, same cache
// dir) must answer the whole TBF grid from disk without running a single
// simulation, and byte-identically.
func TestWarmSweepHitsDiskCache(t *testing.T) {
	dir := t.TempDir()
	grid := DefaultTBFGrid()

	cold, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	var first []TBFReport
	for _, pt := range grid {
		first = append(first, EvalTBFPoint(pt, cold))
	}
	if st := cold.Stats(); st.Misses != int64(len(grid)) {
		t.Fatalf("cold run: %d misses, want %d", st.Misses, len(grid))
	}

	warm, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range grid {
		got := EvalTBFPoint(pt, warm)
		if got.Meas != first[i].Meas {
			t.Errorf("%s: warm measurement %+v != cold %+v", pt.Name, got.Meas, first[i].Meas)
		}
	}
	st := warm.Stats()
	if st.Misses != 0 {
		t.Errorf("warm run recomputed %d points, want 0", st.Misses)
	}
	if st.DiskHits != int64(len(grid)) {
		t.Errorf("warm run: %d disk hits, want %d", st.DiskHits, len(grid))
	}
}

// TestMG1CacheRoundTrip does the same for the service-model point codec,
// on the smallest point.
func TestMG1CacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	pt := MG1Point{Name: "tiny", Servers: 2, Lambda: 1.2, MeanService: 0.5, SCV: 1,
		Jobs: 300, Seed: 9, Tol: MG1Tolerance{MeanRel: 1, P50Rel: 1, P95Rel: 1}}

	cold, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	first := cold.mg1Point(pt)
	if first.Jobs != 300 || !first.ExactSchedule {
		t.Fatalf("cold point: %+v", first)
	}

	warm, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.mg1Point(pt); got != first {
		t.Errorf("decoded %+v, want %+v", got, first)
	}
	if st := warm.Stats(); st.Misses != 0 || st.DiskHits != 1 {
		t.Errorf("warm stats: %+v", st)
	}
}

// TestRunTBFPointZeroRateMirrorsNetsimFix pins the blackhole semantics the
// twin's Rate=0 branch models — the same 3-forward/17-drop split the
// netsim regression test (TestRateLimiterZeroRateTerminates) asserts.
func TestRunTBFPointZeroRateMirrorsNetsimFix(t *testing.T) {
	params := twin.TBFParams{
		Rate: 0, Burst: 3000, QueueLimit: 60000,
		PacketSize: 1000, Offered: 0.8e6, Horizon: time.Second,
	}
	meas := RunTBFPoint(params, CBR, 1)
	// 0.8 Mbit/s of 1000 B packets for 1 s = 100 packets; 3 forward.
	if want := 97.0 / 100; meas.LossRate != want {
		t.Errorf("loss = %v, want %v", meas.LossRate, want)
	}
	pred := twin.PredictTBF(params)
	if d := pred.LossRate - meas.LossRate; d > 0.02 || d < -0.02 {
		t.Errorf("model %v vs sim %v disagree beyond band", pred.LossRate, meas.LossRate)
	}
}

// TestMG1DriverExactness runs a small point and checks the driver's two
// invariants directly: the scheduler reproduced the reference schedule to
// the nanosecond, and every job completed.
func TestMG1DriverExactness(t *testing.T) {
	for _, servers := range []int{1, 3} {
		s := RunMG1Point(MG1Point{Servers: servers, Lambda: 2, MeanService: 0.4,
			SCV: 1, Jobs: 500, Seed: 42})
		if s.Jobs != 500 {
			t.Errorf("c=%d: %d jobs completed, want 500", servers, s.Jobs)
		}
		if !s.ExactSchedule {
			t.Errorf("c=%d: scheduler diverged from FIFO reference", servers)
		}
		// Sanity only: the empirical mean of 500 exponential service draws
		// fluctuates around 0.4, so just require a plausible magnitude.
		if s.MeanSojourn < 0.3 || s.MeanSojourn > 5 {
			t.Errorf("c=%d: implausible mean sojourn %v", servers, s.MeanSojourn)
		}
	}
}
