package validate

import (
	"fmt"
	"math"
	"strings"
	"time"

	"github.com/nal-epfl/wehey/internal/experiments"
	"github.com/nal-epfl/wehey/internal/twin"
)

// TBFReport is one TBF grid point's verdict: prediction, measurement, and
// the tolerance violations (empty = the twin and the simulator agree).
type TBFReport struct {
	Point      TBFPoint
	Pred       twin.TBFPrediction
	Meas       TBFMeasurement
	Violations []string
}

// MG1Report is one service-model point's verdict.
type MG1Report struct {
	Point                      MG1Point
	PredMean, PredP50, PredP95 float64
	Meas                       MG1Summary
	Violations                 []string
}

// Report is a full sweep's outcome.
type Report struct {
	TBF    []TBFReport
	MG1    []MG1Report
	Hybrid []HybridReport
}

// ViolationCount sums tolerance violations across all sweeps.
func (r Report) ViolationCount() int {
	n := 0
	for _, p := range r.TBF {
		n += len(p.Violations)
	}
	for _, p := range r.MG1 {
		n += len(p.Violations)
	}
	for _, p := range r.Hybrid {
		n += len(p.Violations)
	}
	return n
}

// EvalTBFPoint measures one grid point (through the cache when one is
// given) and checks it against the fluid model.
func EvalTBFPoint(pt TBFPoint, cache *Cache) TBFReport {
	var meas TBFMeasurement
	if cache != nil {
		meas = cache.tbfPoint(pt)
	} else {
		meas = RunTBFPoint(pt.Params, pt.Proc, pt.Seed)
	}
	pred := twin.PredictTBF(pt.Params)
	r := TBFReport{Point: pt, Pred: pred, Meas: meas}

	// Drops agreement: a model that predicts drops must see them in the
	// sim. The converse is only a violation when the sim's loss exceeds
	// the band — Poisson burstiness produces rare drops at ρ < 1 that a
	// fluid model is structurally blind to, and the loss tolerance is the
	// statement of how blind it is allowed to be.
	if pred.Drops && !meas.Drops {
		r.Violations = append(r.Violations, "drops: model predicts drops, sim saw none")
	}
	if !pred.Drops && meas.Drops && meas.LossRate > pt.Tol.Loss {
		r.Violations = append(r.Violations,
			fmt.Sprintf("drops: model predicts none, sim lost %.4f (> %.4f band)",
				meas.LossRate, pt.Tol.Loss))
	}
	if d := math.Abs(pred.LossRate - meas.LossRate); d > pt.Tol.Loss {
		r.Violations = append(r.Violations,
			fmt.Sprintf("loss: model %.4f, sim %.4f (|Δ| %.4f > %.4f)",
				pred.LossRate, meas.LossRate, d, pt.Tol.Loss))
	}
	if band := durBand(pred.MeanQueueDelay, meas.MeanQueueDelay, pt.Tol.DelayRel, pt.Tol.DelayAbs); band != "" {
		r.Violations = append(r.Violations, "mean queue delay: "+band)
	}
	checkFirstDrop := pred.Drops && meas.Drops &&
		(pt.Tol.FirstDropRel > 0 || pt.Tol.FirstDropAbs > 0)
	if checkFirstDrop {
		if band := durBand(pred.FirstDrop, meas.FirstDrop, pt.Tol.FirstDropRel, pt.Tol.FirstDropAbs); band != "" {
			r.Violations = append(r.Violations, "first drop: "+band)
		}
	}
	return r
}

// durBand checks |pred−meas| ≤ max(abs, rel·max(pred, meas)) and renders
// the violation when it fails ("" = within band).
func durBand(pred, meas time.Duration, rel float64, abs time.Duration) string {
	diff := pred - meas
	if diff < 0 {
		diff = -diff
	}
	allowed := abs
	bigger := pred
	if meas > bigger {
		bigger = meas
	}
	if relBand := time.Duration(rel * float64(bigger)); relBand > allowed {
		allowed = relBand
	}
	if diff <= allowed {
		return ""
	}
	return fmt.Sprintf("model %v, sim %v (|Δ| %v > %v)", pred, meas, diff, allowed)
}

// EvalMG1Point measures one service point (through the cache when one is
// given) and checks it against the M/G/c model.
func EvalMG1Point(pt MG1Point, cache *Cache) MG1Report {
	var meas MG1Summary
	if cache != nil {
		meas = cache.mg1Point(pt)
	} else {
		meas = RunMG1Point(pt)
	}
	m := twin.MGc{Lambda: pt.Lambda, Servers: pt.Servers, MeanService: pt.MeanService, SCV: pt.SCV}
	r := MG1Report{
		Point:    pt,
		PredMean: m.MeanSojourn(),
		PredP50:  m.SojournQuantile(0.50),
		PredP95:  m.SojournQuantile(0.95),
		Meas:     meas,
	}
	if !meas.ExactSchedule {
		r.Violations = append(r.Violations,
			"scheduler sojourns diverged from the FIFO reference schedule")
	}
	check := func(name string, pred, got, tol float64) {
		if pred <= 0 {
			return
		}
		if d := math.Abs(pred-got) / pred; d > tol {
			r.Violations = append(r.Violations,
				fmt.Sprintf("%s: model %.4fs, sim %.4fs (rel Δ %.3f > %.3f)", name, pred, got, d, tol))
		}
	}
	check("mean sojourn", r.PredMean, meas.MeanSojourn, pt.Tol.MeanRel)
	check("p50 sojourn", r.PredP50, meas.P50, pt.Tol.P50Rel)
	check("p95 sojourn", r.PredP95, meas.P95, pt.Tol.P95Rel)
	return r
}

// DefaultMG1Points returns the standard service-model validation points:
// M/M/1 at three utilizations, an M/M/4 pool, and a deterministic-service
// M/D/1 — each a few thousand jobs, enough for stable p95s under the
// stated bands.
func DefaultMG1Points() []MG1Point {
	// Queue waits are heavily autocorrelated (busy periods), so the
	// effective sample size is far below the job count; high-ρ points get
	// more jobs AND wider bands — at ρ = 0.85 even 25k jobs leave several
	// percent of quantile noise. The M/D/1 p50 band is the widest: the
	// exponential-tail wait approximation is exact for M/M/c but
	// mis-shapes the distribution body under deterministic service (a
	// documented model limitation, see DESIGN.md), so its band covers the
	// ~14% structural bias plus sampling noise.
	low := MG1Tolerance{MeanRel: 0.08, P50Rel: 0.08, P95Rel: 0.08}
	high := MG1Tolerance{MeanRel: 0.15, P50Rel: 0.12, P95Rel: 0.18}
	return []MG1Point{
		{Name: "mm1/rho0.3", Servers: 1, Lambda: 0.3, MeanService: 1, SCV: 1,
			Jobs: 8000, Seed: 101, Tol: low},
		{Name: "mm1/rho0.6", Servers: 1, Lambda: 0.6, MeanService: 1, SCV: 1,
			Jobs: 12000, Seed: 102, Tol: low},
		{Name: "mm1/rho0.85", Servers: 1, Lambda: 0.85, MeanService: 1, SCV: 1,
			Jobs: 25000, Seed: 103, Tol: high},
		{Name: "mm4/rho0.85", Servers: 4, Lambda: 3.4, MeanService: 1, SCV: 1,
			Jobs: 20000, Seed: 104, Tol: high},
		{Name: "md1/rho0.6", Servers: 1, Lambda: 0.6, MeanService: 1, SCV: 0,
			Jobs: 12000, Seed: 105,
			Tol: MG1Tolerance{MeanRel: 0.08, P50Rel: 0.25, P95Rel: 0.12}},
	}
}

// Run sweeps the default TBF grid and MG1 points with the given worker
// parallelism, caching ground truth through cache when it is non-nil.
func Run(cache *Cache, workers int) Report {
	grid := DefaultTBFGrid()
	points := DefaultMG1Points()
	hybrid := DefaultHybridGrid()
	return Report{
		TBF: experiments.ForEach(len(grid), workers, func(i int) TBFReport {
			return EvalTBFPoint(grid[i], cache)
		}),
		MG1: experiments.ForEach(len(points), workers, func(i int) MG1Report {
			return EvalMG1Point(points[i], cache)
		}),
		Hybrid: experiments.ForEach(len(hybrid), workers, func(i int) HybridReport {
			return EvalHybridPoint(hybrid[i], cache)
		}),
	}
}

// Render formats the report as a fixed-order text table, one line per
// point, with violations spelled out underneath — the wehey-twin CLI and
// the CI job print this.
func (r Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TBF fluid model vs netsim (%d points)\n", len(r.TBF))
	for _, p := range r.TBF {
		status := "ok"
		if len(p.Violations) > 0 {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "  %-34s %-4s loss %.4f/%.4f  delay %v/%v\n",
			p.Point.Name, status, p.Pred.LossRate, p.Meas.LossRate,
			p.Pred.MeanQueueDelay.Round(time.Microsecond),
			p.Meas.MeanQueueDelay.Round(time.Microsecond))
		for _, v := range p.Violations {
			fmt.Fprintf(&b, "      violation: %s\n", v)
		}
	}
	fmt.Fprintf(&b, "M/G/c model vs service scheduler (%d points)\n", len(r.MG1))
	for _, p := range r.MG1 {
		status := "ok"
		if len(p.Violations) > 0 {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "  %-34s %-4s mean %.3f/%.3f  p50 %.3f/%.3f  p95 %.3f/%.3f\n",
			p.Point.Name, status, p.PredMean, p.Meas.MeanSojourn,
			p.PredP50, p.Meas.P50, p.PredP95, p.Meas.P95)
		for _, v := range p.Violations {
			fmt.Fprintf(&b, "      violation: %s\n", v)
		}
	}
	fmt.Fprintf(&b, "hybrid fluid background vs packet background (%d points)\n", len(r.Hybrid))
	for _, p := range r.Hybrid {
		status := "ok"
		if len(p.Violations) > 0 {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "  %-34s %-4s bg-loss %.4f/%.4f  fg p95 %v/%v  events %.0fx\n",
			p.Point.Name, status, p.Packet.BgLossRate, p.Fluid.BgLossRate,
			p.Packet.FgP95.Round(time.Microsecond), p.Fluid.FgP95.Round(time.Microsecond),
			p.EventRatio)
		for _, v := range p.Violations {
			fmt.Fprintf(&b, "      violation: %s\n", v)
		}
	}
	fmt.Fprintf(&b, "violations: %d\n", r.ViolationCount())
	return b.String()
}
