// Package validate is the equivalence harness between the analytical twin
// (internal/twin) and the simulators it models: every model prediction is
// swept against packet-level (internal/netsim) or scheduler-level
// (internal/service) ground truth under per-point tolerance bands. A band
// violation means one of the two sides regressed — the twin's math or the
// simulator's mechanics — which is the point: two independent oracles
// disagreeing is a much louder failure than either one drifting alone.
package validate

import (
	"math"
	"math/rand"
	"time"

	"github.com/nal-epfl/wehey/internal/netsim"
	"github.com/nal-epfl/wehey/internal/twin"
)

// Arrivals selects the offered traffic's arrival process.
type Arrivals string

const (
	// CBR offers one packet every PacketSize·8/Offered seconds — the
	// fluid model's own geometry, so deviations are pure packet
	// granularity.
	CBR Arrivals = "cbr"
	// Poisson offers packets with exponential inter-arrivals at the same
	// mean rate. The fluid model ignores burstiness, so these points get
	// wider tolerance bands.
	Poisson Arrivals = "poisson"
)

// TBFMeasurement is what the packet simulator actually measured for one
// grid point — the same quantities twin.TBFPrediction predicts.
type TBFMeasurement struct {
	LossRate       float64
	MeanQueueDelay time.Duration
	Drops          bool
	FirstDrop      time.Duration
}

// RunTBFPoint replays one TBFParams point through netsim.RateLimiter:
// a single differentiated aggregate offered to the TBF with a counting
// sink behind it. Arrivals stop at the horizon; the engine then runs long
// enough for the queue to drain, so every accepted packet's queueing delay
// is observed. Loss is accounted against offered bytes, exactly like the
// fluid model.
func RunTBFPoint(params twin.TBFParams, proc Arrivals, seed int64) TBFMeasurement {
	var eng netsim.Engine

	var fwdPkts, offeredBytes, droppedBytes int64
	var queuedSum time.Duration
	firstDrop := time.Duration(-1)

	sink := netsim.HopFunc(func(pkt *netsim.Packet) {
		fwdPkts++
		queuedSum += pkt.QueuedFor
		eng.FreePacket(pkt)
	})
	rl := netsim.NewRateLimiter(&eng, "twin-tbf", params.Rate, params.Burst, params.QueueLimit, sink)
	rl.OnDrop = func(pkt *netsim.Packet, _ string) {
		droppedBytes += int64(pkt.Size)
		if firstDrop < 0 {
			firstDrop = eng.Now()
		}
	}

	send := func() {
		pkt := eng.AllocPacket()
		pkt.Size = params.PacketSize
		pkt.Class = netsim.ClassDifferentiated
		pkt.SentAt = eng.Now()
		rl.Send(pkt)
	}

	// Arrival schedule over [0, Horizon).
	switch proc {
	case Poisson:
		rng := rand.New(rand.NewSource(seed))
		mean := float64(params.PacketSize) * 8 / params.Offered // seconds
		for t := 0.0; ; {
			at := time.Duration(t * float64(time.Second))
			if at >= params.Horizon {
				break
			}
			offeredBytes += int64(params.PacketSize)
			eng.Schedule(at, send)
			t += rng.ExpFloat64() * mean
		}
	default: // CBR
		gap := time.Duration(float64(params.PacketSize) * 8 / params.Offered * float64(time.Second))
		if gap <= 0 {
			gap = 1
		}
		for at := time.Duration(0); at < params.Horizon; at += gap {
			offeredBytes += int64(params.PacketSize)
			eng.Schedule(at, send)
		}
	}

	// Let the queue drain after arrivals stop: QueueLimit bytes at the
	// token rate, plus slack for rounding.
	drain := time.Second
	if params.Rate > 0 {
		drain += time.Duration(float64(params.QueueLimit) / (params.Rate / 8) * float64(time.Second))
	}
	eng.Run(params.Horizon + drain)
	eng.Release()

	m := TBFMeasurement{}
	if offeredBytes > 0 {
		m.LossRate = float64(droppedBytes) / float64(offeredBytes)
	}
	if fwdPkts > 0 {
		m.MeanQueueDelay = queuedSum / time.Duration(fwdPkts)
	}
	if firstDrop >= 0 {
		m.Drops = true
		m.FirstDrop = firstDrop
	}
	if math.IsNaN(m.LossRate) {
		m.LossRate = 0
	}
	return m
}
