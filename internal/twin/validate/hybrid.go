package validate

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/nal-epfl/wehey/internal/netsim"
)

// This file validates the hybrid fluid/packet background of DESIGN.md §14:
// the same bottleneck scenario — a TBF carrying a packet-granular
// foreground probe plus a rate-modulated background aggregate — runs twice,
// once with every background packet simulated and once with the background
// as piecewise-constant fluid. The two runs share the exact same rate
// trajectory (same seed, same walk), so any disagreement beyond the bands
// is a fluid-integration bug, not statistical noise. The full-rate grid
// point also pins the tentpole's economics: the packet run must cost at
// least MinEventRatio× more engine events than the fluid run.

// HybridTolerance is one hybrid grid point's acceptance band. Zero-valued
// checks are skipped.
type HybridTolerance struct {
	// BgLoss is the absolute tolerance on the background loss fraction.
	BgLoss float64
	// FgLoss is the absolute tolerance on the foreground loss fraction.
	FgLoss float64
	// DelayRel/DelayAbs bound the foreground delay-quantile error:
	// the allowed gap is max(DelayAbs, DelayRel·max(packet, fluid)).
	DelayRel float64
	DelayAbs time.Duration
	// MinEventRatio, when positive, requires
	// packetEvents/fluidEvents >= MinEventRatio.
	MinEventRatio float64
}

// HybridPoint is one cell of the hybrid validation grid.
type HybridPoint struct {
	Name string
	// TBF under test.
	Rate       float64 // token rate, bits/s
	Burst      int     // bytes
	QueueLimit int     // bytes (0 = pure policer)
	// Background aggregate: mean rate, walk spread (0 = constant), and the
	// piecewise-constant interval length.
	BgRate      float64
	BgModSpread float64
	BgModPeriod time.Duration
	BgPacket    int // background packet size in packet mode, bytes
	// Foreground probe.
	FgRate   float64
	FgPacket int
	FgProc   Arrivals
	Horizon  time.Duration
	Seed     int64
	Tol      HybridTolerance
}

// HybridMeasurement is one mode's outcome for a hybrid grid point.
type HybridMeasurement struct {
	BgLossRate float64
	FgLossRate float64
	FgP50      time.Duration
	FgP95      time.Duration
	// Events is the engine's processed-event count for the whole run — the
	// quantity the fluid mode exists to shrink.
	Events int64
}

// bgTrajectory precomputes the background's piecewise-constant rate per
// BgModPeriod interval: the same mean-reverting walk as
// netsim.Background/FluidBackground (theta 0.25, sigma spread/2, clamped to
// 1±spread), fully determined by the point's seed so both modes integrate
// the identical inflow.
func bgTrajectory(pt HybridPoint) []float64 {
	n := int(pt.Horizon/pt.BgModPeriod) + 1
	rng := rand.New(rand.NewSource(pt.Seed))
	rates := make([]float64, n)
	factor := 1.0
	for i := range rates {
		rates[i] = pt.BgRate * factor
		const theta = 0.25
		factor += -theta*(factor-1) + rng.NormFloat64()*pt.BgModSpread/2
		if lo := 1 - pt.BgModSpread; factor < lo {
			factor = lo
		}
		if hi := 1 + pt.BgModSpread; factor > hi {
			factor = hi
		}
	}
	return rates
}

// RunHybridPoint replays one hybrid grid point with the background either
// packet-granular (fluid=false: Poisson packet emission at the interval's
// trajectory rate) or fluid (fluid=true: SetSource at interval boundaries).
// The foreground probe is packet-granular in both modes.
func RunHybridPoint(pt HybridPoint, fluid bool) HybridMeasurement {
	var eng netsim.Engine

	var fgDelays []time.Duration
	var fgSent, fgDropped int64
	var bgOffered, bgDropped int64
	sink := netsim.HopFunc(func(pkt *netsim.Packet) {
		if pkt.Flow == 1 {
			fgDelays = append(fgDelays, pkt.QueuedFor)
		}
		eng.FreePacket(pkt)
	})
	rl := netsim.NewRateLimiter(&eng, "hybrid-tbf", pt.Rate, pt.Burst, pt.QueueLimit, sink)
	rl.OnDrop = func(pkt *netsim.Packet, _ string) {
		if pkt.Flow == 1 {
			fgDropped++
		} else {
			bgDropped += int64(pkt.Size)
		}
	}

	rates := bgTrajectory(pt)
	var fq *netsim.FluidQueue
	var bgSrc int
	if fluid {
		fq = rl.Fluid()
		bgSrc = fq.AddSource()
		for i, r := range rates {
			at := time.Duration(i) * pt.BgModPeriod
			if at >= pt.Horizon {
				break
			}
			rate := r
			eng.Schedule(at, func() { fq.SetSource(bgSrc, rate) })
		}
		eng.Schedule(pt.Horizon, func() { fq.SetSource(bgSrc, 0) })
	} else {
		// Poisson packet arrivals whose mean tracks the interval's
		// trajectory rate. All arrivals precompute from one seeded rng so
		// the emission is deterministic in the point spec.
		rng := rand.New(rand.NewSource(pt.Seed + 1))
		bits := float64(pt.BgPacket) * 8
		for t := 0.0; ; {
			at := time.Duration(t * float64(time.Second))
			if at >= pt.Horizon {
				break
			}
			idx := int(at / pt.BgModPeriod)
			if idx >= len(rates) {
				idx = len(rates) - 1
			}
			bgOffered += int64(pt.BgPacket)
			eng.Schedule(at, func() {
				pkt := eng.AllocPacket()
				pkt.Flow = -1
				pkt.Size = pt.BgPacket
				pkt.Class = netsim.ClassDifferentiated
				rl.Send(pkt)
			})
			t += rng.ExpFloat64() * bits / rates[idx]
		}
	}

	// Foreground probe, identical in both modes.
	sendFg := func() {
		fgSent++
		pkt := eng.AllocPacket()
		pkt.Flow = 1
		pkt.Size = pt.FgPacket
		pkt.Class = netsim.ClassDifferentiated
		rl.Send(pkt)
	}
	switch pt.FgProc {
	case Poisson:
		rng := rand.New(rand.NewSource(pt.Seed + 2))
		mean := float64(pt.FgPacket) * 8 / pt.FgRate
		for t := 0.0; ; {
			at := time.Duration(t * float64(time.Second))
			if at >= pt.Horizon {
				break
			}
			eng.Schedule(at, sendFg)
			t += rng.ExpFloat64() * mean
		}
	default: // CBR
		gap := time.Duration(float64(pt.FgPacket) * 8 / pt.FgRate * float64(time.Second))
		if gap <= 0 {
			gap = 1
		}
		for at := time.Duration(0); at < pt.Horizon; at += gap {
			eng.Schedule(at, sendFg)
		}
	}

	drain := time.Second
	if pt.Rate > 0 {
		drain += time.Duration(float64(pt.QueueLimit) / (pt.Rate / 8) * float64(time.Second))
	}
	m := HybridMeasurement{Events: int64(eng.Run(pt.Horizon + drain))}
	if fluid {
		st := fq.Stats(eng.Now())
		if st.OfferedBytes > 0 {
			m.BgLossRate = st.DroppedBytes / st.OfferedBytes
		}
	} else if bgOffered > 0 {
		m.BgLossRate = float64(bgDropped) / float64(bgOffered)
	}
	eng.Release()

	if fgSent > 0 {
		m.FgLossRate = float64(fgDropped) / float64(fgSent)
	}
	if len(fgDelays) > 0 {
		sort.Slice(fgDelays, func(i, j int) bool { return fgDelays[i] < fgDelays[j] })
		m.FgP50 = quantileDur(fgDelays, 0.50)
		m.FgP95 = quantileDur(fgDelays, 0.95)
	}
	return m
}

// quantileDur is the nearest-rank quantile of an ascending slice.
func quantileDur(sorted []time.Duration, q float64) time.Duration {
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// HybridReport is one hybrid grid point's verdict.
type HybridReport struct {
	Point         HybridPoint
	Packet, Fluid HybridMeasurement
	// EventRatio = Packet.Events / Fluid.Events.
	EventRatio float64
	Violations []string
}

// EvalHybridPoint measures one grid point in both modes (through the cache
// when one is given) and checks the fluid run against packet ground truth.
func EvalHybridPoint(pt HybridPoint, cache *Cache) HybridReport {
	var packet, fl HybridMeasurement
	if cache != nil {
		packet = cache.hybridPoint(pt, false)
		fl = cache.hybridPoint(pt, true)
	} else {
		packet = RunHybridPoint(pt, false)
		fl = RunHybridPoint(pt, true)
	}
	r := HybridReport{Point: pt, Packet: packet, Fluid: fl}
	if fl.Events > 0 {
		r.EventRatio = float64(packet.Events) / float64(fl.Events)
	}

	if d := math.Abs(packet.BgLossRate - fl.BgLossRate); d > pt.Tol.BgLoss {
		r.Violations = append(r.Violations,
			fmt.Sprintf("bg loss: packet %.4f, fluid %.4f (|Δ| %.4f > %.4f)",
				packet.BgLossRate, fl.BgLossRate, d, pt.Tol.BgLoss))
	}
	if d := math.Abs(packet.FgLossRate - fl.FgLossRate); d > pt.Tol.FgLoss {
		r.Violations = append(r.Violations,
			fmt.Sprintf("fg loss: packet %.4f, fluid %.4f (|Δ| %.4f > %.4f)",
				packet.FgLossRate, fl.FgLossRate, d, pt.Tol.FgLoss))
	}
	if pt.Tol.DelayRel > 0 || pt.Tol.DelayAbs > 0 {
		if band := durBand(fl.FgP50, packet.FgP50, pt.Tol.DelayRel, pt.Tol.DelayAbs); band != "" {
			r.Violations = append(r.Violations, "fg delay p50: "+band)
		}
		if band := durBand(fl.FgP95, packet.FgP95, pt.Tol.DelayRel, pt.Tol.DelayAbs); band != "" {
			r.Violations = append(r.Violations, "fg delay p95: "+band)
		}
	}
	if pt.Tol.MinEventRatio > 0 && r.EventRatio < pt.Tol.MinEventRatio {
		r.Violations = append(r.Violations,
			fmt.Sprintf("events: packet/fluid ratio %.1fx < required %.0fx (%d vs %d)",
				r.EventRatio, pt.Tol.MinEventRatio, packet.Events, fl.Events))
	}
	return r
}

// DefaultHybridGrid returns the hybrid validation grid: the 8 Mbit/s
// scaled-down operating point across load × device-character × arrival
// process, rate-modulated points exercising the piecewise-constant
// coupling, and the paper-scale 168 Mbit/s point that pins the ≥50x
// event-cost reduction.
func DefaultHybridGrid() []HybridPoint {
	base := func(name string, queue int, load float64, proc Arrivals, tol HybridTolerance) HybridPoint {
		return HybridPoint{
			Name: name, Rate: 8e6, Burst: 50000, QueueLimit: queue,
			BgRate: load * 8e6, BgModSpread: 0, BgModPeriod: 250 * time.Millisecond,
			BgPacket: 1000, FgRate: 0.8e6, FgPacket: 1000, FgProc: proc,
			Horizon: gridHorizon, Seed: 7, Tol: tol,
		}
	}
	// Underload: both modes should see (nearly) a clean system; the band
	// absorbs Poisson burstiness that the fluid background cannot produce.
	under := HybridTolerance{BgLoss: 0.02, FgLoss: 0.02, DelayRel: 0.25, DelayAbs: 8 * time.Millisecond}
	// Shaper overload: the queue pegs at its limit in both modes, so loss
	// and delay are structural, with granularity noise around the boundary.
	overShaper := HybridTolerance{BgLoss: 0.03, FgLoss: 0.06, DelayRel: 0.20, DelayAbs: 10 * time.Millisecond}
	// A bursty (Poisson) foreground widens its own loss band: proportional-
	// share thinning admits by the long-run rate ratio and is blind to the
	// foreground's clustering, which in packet mode makes whole bursts win
	// or lose the race for freed queue space together (DESIGN.md §14).
	overShaperBursty := overShaper
	overShaperBursty.FgLoss = 0.10
	// Policer overload is the fluid mode's documented weak spot: discrete
	// inter-packet gaps let tokens accumulate and leak foreground packets
	// through, while continuous fluid pins tokens at zero (DESIGN.md §14).
	// Loss bands are wide and delay is not checked (a policer adds none).
	overPolicer := HybridTolerance{BgLoss: 0.05, FgLoss: 0.40}

	pts := []HybridPoint{
		base("under/shaper/cbr", 60000, 0.6, CBR, under),
		base("under/policer/cbr", 0, 0.6, CBR, under),
		base("under/shaper/poisson", 60000, 0.6, Poisson, under),
		base("over/shaper/cbr", 60000, 1.3, CBR, overShaper),
		base("over/shaper/poisson", 60000, 1.3, Poisson, overShaperBursty),
		base("over/policer/cbr", 0, 1.3, CBR, overPolicer),
	}
	mod := base("modulated/shaper/cbr", 60000, 1.0, CBR, overShaper)
	mod.BgModSpread = 0.9
	mod.Seed = 11
	pts = append(pts, mod)
	modP := base("modulated/policer/cbr", 0, 1.1, CBR, overPolicer)
	modP.BgModSpread = 0.5
	modP.Seed = 12
	pts = append(pts, modP)
	// Paper scale: a 168 Mbit/s modulated aggregate into a 140 Mbit/s
	// shaper. This is the point packet mode cannot afford routinely — and
	// the point that enforces the tentpole's ≥50x event saving. The spread
	// keeps the load trajectory inside [0.72, 1.68]×rate: past ~1.5× deep
	// overload, packet-mode foreground loss becomes super-proportional (the
	// CBR probe samples freed queue slots at a structurally different rate
	// than the dense Poisson aggregate) and no single-parameter thinning
	// matches it — the documented edge of fluid fidelity (DESIGN.md §14).
	// Foreground loss gets a wider band for the residual granularity gap;
	// background loss and delay quantiles stay tight.
	full := HybridPoint{
		Name: "fullrate/shaper/cbr", Rate: 140e6, Burst: 875000, QueueLimit: 875000,
		BgRate: 168e6, BgModSpread: 0.4, BgModPeriod: 250 * time.Millisecond,
		BgPacket: 1000, FgRate: 2e6, FgPacket: 1000, FgProc: CBR,
		Horizon: gridHorizon, Seed: 13,
		Tol: HybridTolerance{BgLoss: 0.03, FgLoss: 0.12, DelayRel: 0.25,
			DelayAbs: 10 * time.Millisecond, MinEventRatio: 50},
	}
	return append(pts, full)
}

// ReducedHybridGrid is the -short / race-lane subset: one point per regime
// (underload, shaper overload, modulated coupling) plus the full-rate
// event-ratio gate.
func ReducedHybridGrid() []HybridPoint {
	keep := map[string]bool{
		"under/shaper/cbr":     true,
		"over/shaper/cbr":      true,
		"modulated/shaper/cbr": true,
		"fullrate/shaper/cbr":  true,
	}
	var pts []HybridPoint
	for _, pt := range DefaultHybridGrid() {
		if keep[pt.Name] {
			pts = append(pts, pt)
		}
	}
	return pts
}
