package validate

import (
	"fmt"
	"time"

	"github.com/nal-epfl/wehey/internal/twin"
)

// TBFTolerance is one grid point's acceptance band. Zero-valued checks are
// skipped (a Poisson point does not pin down its first-drop instant).
type TBFTolerance struct {
	// Loss is the absolute tolerance on the loss fraction.
	Loss float64
	// DelayRel/DelayAbs bound the mean-queue-delay error: the allowed gap
	// is max(DelayAbs, DelayRel·max(pred, meas)).
	DelayRel float64
	DelayAbs time.Duration
	// FirstDropRel/FirstDropAbs bound the first-drop timing the same way;
	// both zero skips the check.
	FirstDropRel float64
	FirstDropAbs time.Duration
}

// TBFPoint is one cell of the validation grid.
type TBFPoint struct {
	Name   string
	Params twin.TBFParams
	Proc   Arrivals
	Seed   int64
	Tol    TBFTolerance
}

// Grid geometry: 1000-byte packets over a 10 s horizon, the paper's two
// throttling-rate scales, burst sized by the rate×50 ms RTT rule, both
// device characters (pure policer and 60 kB shaper), under-, over-, and
// heavily-overloaded, each as CBR and Poisson — plus the degenerate
// zero-rate blackhole and an exactly-critical ρ=1 CBR point.
const (
	gridPacket  = 1000
	gridHorizon = 10 * time.Second
)

// cbrTol: CBR deviations are pure packet granularity, so the bands are
// tight: a couple of packets' worth of loss, a few ms of delay.
func cbrTol() TBFTolerance {
	return TBFTolerance{
		Loss:         0.01,
		DelayRel:     0.10,
		DelayAbs:     3 * time.Millisecond,
		FirstDropRel: 0.15,
		FirstDropAbs: 10 * time.Millisecond,
	}
}

// poissonTol: the fluid model ignores burstiness, which shows up as real
// loss at ρ < 1 and extra queueing everywhere; the bands are wider and the
// (single-sample, exponentially distributed) first-drop instant is not
// checked at all.
func poissonTol() TBFTolerance {
	return TBFTolerance{
		Loss:     0.08,
		DelayRel: 0.35,
		DelayAbs: 40 * time.Millisecond,
	}
}

// DefaultTBFGrid returns the standard validation grid: 26 points covering
// rate × load × device-character × arrival-process, plus the degenerate
// corners. Seeds are fixed so Poisson points are reproducible and
// cacheable.
func DefaultTBFGrid() []TBFPoint {
	var pts []TBFPoint
	seed := int64(1)
	for _, rate := range []float64{2e6, 8e6} {
		burst := int(rate / 8 * 0.050) // rate × 50 ms RTT
		for _, rho := range []float64{0.7, 1.3, 1.8} {
			for _, queue := range []int{0, 60000} {
				for _, proc := range []Arrivals{CBR, Poisson} {
					tol := cbrTol()
					if proc == Poisson {
						tol = poissonTol()
					}
					dev := "policer"
					if queue > 0 {
						dev = "shaper"
					}
					pts = append(pts, TBFPoint{
						Name: fmt.Sprintf("%s/%s/rate%.0fM/rho%.1f", dev, proc, rate/1e6, rho),
						Params: twin.TBFParams{
							Rate: rate, Burst: burst, QueueLimit: queue,
							PacketSize: gridPacket, Offered: rho * rate,
							Horizon: gridHorizon,
						},
						Proc: proc,
						Seed: seed,
						Tol:  tol,
					})
					seed++
				}
			}
		}
	}
	// Degenerate corners, CBR so the comparison is near-exact.
	pts = append(pts,
		TBFPoint{
			Name: "blackhole/cbr/rate0",
			Params: twin.TBFParams{
				Rate: 0, Burst: 3000, QueueLimit: 60000,
				PacketSize: gridPacket, Offered: 0.8e6, Horizon: time.Second,
			},
			Proc: CBR, Seed: seed,
			Tol: TBFTolerance{Loss: 0.02, DelayAbs: time.Millisecond,
				FirstDropRel: 0.05, FirstDropAbs: 5 * time.Millisecond},
		},
		TBFPoint{
			Name: "critical/cbr/rho1.0",
			Params: twin.TBFParams{
				Rate: 2e6, Burst: 12500, QueueLimit: 60000,
				PacketSize: gridPacket, Offered: 2e6, Horizon: gridHorizon,
			},
			Proc: CBR, Seed: seed + 1,
			// ρ = 1 exactly: the fluid model predicts a clean system; the
			// packet system must agree to within granularity.
			Tol: TBFTolerance{Loss: 0.01, DelayAbs: 5 * time.Millisecond},
		},
	)
	return pts
}
