package validate

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"github.com/nal-epfl/wehey/internal/clock"
	"github.com/nal-epfl/wehey/internal/service"
	"github.com/nal-epfl/wehey/internal/stats"
)

// MG1Point is one service-model validation point: a Poisson job stream
// offered to a real internal/service.Scheduler on a manual clock, compared
// against twin.MGc at the same parameters.
type MG1Point struct {
	Name        string
	Servers     int
	Lambda      float64 // jobs/s
	MeanService float64 // seconds
	// SCV selects the service-time law the driver can actually draw:
	// 1 = exponential, 0 = deterministic.
	SCV  float64
	Jobs int
	Seed int64
	Tol  MG1Tolerance
}

// MG1Tolerance is the relative acceptance band on each sojourn statistic.
type MG1Tolerance struct {
	MeanRel, P50Rel, P95Rel float64
}

// MG1Summary is the measured ground truth for one MG1Point.
type MG1Summary struct {
	Jobs int
	// ExactSchedule reports that every scheduler sojourn matched the
	// FIFO c-server reference recurrence to the nanosecond — the
	// scheduler's discipline, not just its averages, is being validated.
	ExactSchedule bool
	// MeanSojourn, P50, P95 are empirical sojourn statistics in seconds
	// (submit → finish on the scheduler's own clock).
	MeanSojourn, P50, P95 float64
}

// delayBackend is a service backend whose "work" is a pure manual-clock
// wait: the job's service time rides in Spec.Seed as nanoseconds. The
// armed counter increments only after the timer is registered with the
// clock, which is what lets the driver advance time without racing a
// not-yet-armed timer past its deadline.
type delayBackend struct {
	clk   *clock.Manual
	armed *atomic.Int64
}

func (b *delayBackend) Run(ctx context.Context, spec service.Spec) (*service.Result, error) {
	timer := b.clk.NewTimer(time.Duration(spec.Seed))
	b.armed.Add(1)
	select {
	case <-timer.C():
		return &service.Result{Backend: "delay", Detail: "delay elapsed"}, nil
	case <-ctx.Done():
		timer.Stop()
		return nil, ctx.Err()
	}
}

// RunMG1Point replays one Poisson job stream through a real Scheduler on a
// manual clock and summarizes the sojourn times. The driver is an
// event-stepped lockstep:
//
//  1. Draw arrivals and service times from the point's seed and compute
//     the FIFO c-server reference schedule (start/finish per job) by the
//     standard earliest-free-server recurrence.
//  2. Walk the merged arrival/finish timeline. At each instant, submit
//     the due arrivals, then wait until the scheduler has started
//     (armed timers) and finished exactly as many jobs as the reference
//     says are due — only then advance the clock to the next instant.
//
// Step 2's waits make the concurrent scheduler deterministic from the
// outside: no timer is ever asked to fire before it is armed, and no
// timestamp is taken after the clock has moved past its true instant.
func RunMG1Point(pt MG1Point) MG1Summary {
	if pt.Servers < 1 || pt.Jobs < 1 || pt.Lambda <= 0 || pt.MeanService <= 0 {
		return MG1Summary{}
	}
	rng := rand.New(rand.NewSource(pt.Seed))
	arr := make([]time.Duration, pt.Jobs)
	svc := make([]time.Duration, pt.Jobs)
	var t time.Duration
	for i := range arr {
		t += secsToDur(rng.ExpFloat64() / pt.Lambda)
		arr[i] = t
		s := pt.MeanService
		if pt.SCV > 0 {
			s = rng.ExpFloat64() * pt.MeanService
		}
		d := secsToDur(s)
		if d < time.Nanosecond {
			d = time.Nanosecond
		}
		svc[i] = d
	}

	// Reference schedule: jobs start in arrival order on the earliest-free
	// server.
	free := make([]time.Duration, pt.Servers)
	finish := make([]time.Duration, pt.Jobs)
	starts := make([]time.Duration, pt.Jobs)
	for k := range arr {
		mi := 0
		for i := 1; i < len(free); i++ {
			if free[i] < free[mi] {
				mi = i
			}
		}
		st := arr[k]
		if free[mi] > st {
			st = free[mi]
		}
		starts[k] = st
		finish[k] = st + svc[k]
		free[mi] = finish[k]
	}

	// Merged timeline and its cumulative expectations.
	timeline := append(append([]time.Duration(nil), arr...), finish...)
	sort.Slice(timeline, func(i, j int) bool { return timeline[i] < timeline[j] })
	sortedStarts := append([]time.Duration(nil), starts...)
	sort.Slice(sortedStarts, func(i, j int) bool { return sortedStarts[i] < sortedStarts[j] })
	sortedFinish := append([]time.Duration(nil), finish...)
	sort.Slice(sortedFinish, func(i, j int) bool { return sortedFinish[i] < sortedFinish[j] })

	var armed atomic.Int64
	clk := clock.NewManual(time.Unix(0, 0))
	sched, err := service.NewScheduler(service.Options{
		Workers:         pt.Servers,
		QueueLimit:      pt.Jobs + 1,
		DefaultDeadline: 1 << 56, // ~2 years of manual time: never reached
		Clock:           clk,
		Backends:        map[string]service.Backend{"delay": &delayBackend{clk: clk, armed: &armed}},
	})
	if err != nil {
		panic(fmt.Sprintf("twin validate: scheduler: %v", err))
	}
	sched.Start()
	defer sched.Close()

	var cur time.Duration
	ai := 0
	for _, et := range timeline {
		if et > cur {
			clk.Advance(et - cur)
			cur = et
		}
		for ai < pt.Jobs && arr[ai] <= cur {
			if _, err := sched.Submit(service.Spec{Backend: "delay", Seed: int64(svc[ai])}); err != nil {
				panic(fmt.Sprintf("twin validate: submit: %v", err))
			}
			ai++
		}
		waitCounters(&armed, countLE(sortedStarts, cur), sched, countLE(sortedFinish, cur))
	}

	jobs := sched.List()
	sojourns := make([]float64, 0, len(jobs))
	exact := len(jobs) == pt.Jobs
	for i, j := range jobs {
		s := j.FinishedAt.Sub(j.SubmittedAt)
		if i < pt.Jobs && s != finish[i]-arr[i] {
			exact = false
		}
		sojourns = append(sojourns, s.Seconds())
	}
	return MG1Summary{
		Jobs:          len(jobs),
		ExactSchedule: exact,
		MeanSojourn:   stats.Mean(sojourns),
		P50:           stats.Quantile(sojourns, 0.50),
		P95:           stats.Quantile(sojourns, 0.95),
	}
}

// waitCounters blocks until the scheduler has armed wantStarts backend
// timers and completed wantDone jobs. The bound is generous — the
// scheduler only has microseconds of real work per event — and hitting it
// means the lockstep protocol itself is broken, which no summary value
// could report faithfully.
func waitCounters(armed *atomic.Int64, wantStarts int, sched *service.Scheduler, wantDone int) {
	for spin := 0; ; spin++ {
		if armed.Load() >= int64(wantStarts) && sched.Metrics().Done >= int64(wantDone) {
			return
		}
		if spin > 2_000_000 {
			panic("twin validate: scheduler stalled against the reference schedule")
		}
		// A short Gosched burst catches same-instant handoffs; after that,
		// sleep — busy-spinning starves the very goroutines being waited
		// on when several points run concurrently.
		if spin < 32 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// countLE returns how many elements of the sorted slice are ≤ t.
func countLE(sorted []time.Duration, t time.Duration) int {
	return sort.Search(len(sorted), func(i int) bool { return sorted[i] > t })
}

// secsToDur converts float64 seconds to a Duration.
func secsToDur(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
