package validate

import (
	"errors"
	"time"

	"github.com/nal-epfl/wehey/internal/measure"
	"github.com/nal-epfl/wehey/internal/simcache"
)

// Cache stamps: bump on any change to the drivers, the spec encoding, or
// the value encoding — a stale entry must never be indistinguishable from
// a fresh run.
const (
	tbfCacheSchema    = "wehey/twincache/tbf/v1"
	mg1CacheSchema    = "wehey/twincache/mg1/v1"
	hybridCacheSchema = "wehey/twincache/hybrid/v1"
)

// Cache memoizes validation-point ground truth, keyed by the full point
// spec. Points are deterministic in their spec (seeded arrivals, seeded
// service draws), so a cached measurement is exactly a rerun — warm
// validation sweeps only pay for the analytical side.
type Cache struct {
	tbf    *simcache.Cache[TBFMeasurement]
	mg1    *simcache.Cache[MG1Summary]
	hybrid *simcache.Cache[HybridMeasurement]
}

// NewCache returns an in-memory cache.
func NewCache() *Cache {
	return &Cache{
		tbf:    simcache.New[TBFMeasurement](),
		mg1:    simcache.New[MG1Summary](),
		hybrid: simcache.New[HybridMeasurement](),
	}
}

// NewDiskCache returns a cache persisted under dir (one file per point,
// shared with nothing else — the stamps namespace the keys).
func NewDiskCache(dir string) (*Cache, error) {
	tbf, err := simcache.NewDisk(dir, tbfCodec())
	if err != nil {
		return nil, err
	}
	mg1, err := simcache.NewDisk(dir, mg1Codec())
	if err != nil {
		return nil, err
	}
	hybrid, err := simcache.NewDisk(dir, hybridCodec())
	if err != nil {
		return nil, err
	}
	return &Cache{tbf: tbf, mg1: mg1, hybrid: hybrid}, nil
}

// Stats returns the combined counters over all point kinds.
func (c *Cache) Stats() simcache.Stats {
	t, m, h := c.tbf.Stats(), c.mg1.Stats(), c.hybrid.Stats()
	return simcache.Stats{
		Hits:     t.Hits + m.Hits + h.Hits,
		DiskHits: t.DiskHits + m.DiskHits + h.DiskHits,
		Misses:   t.Misses + m.Misses + h.Misses,
	}
}

// tbfPoint runs one TBF grid point through the cache.
func (c *Cache) tbfPoint(pt TBFPoint) TBFMeasurement {
	key := simcache.KeyOf(tbfCacheSchema, encodeTBFPoint(pt))
	return c.tbf.Get(key, func() TBFMeasurement {
		return RunTBFPoint(pt.Params, pt.Proc, pt.Seed)
	})
}

// mg1Point runs one service grid point through the cache.
func (c *Cache) mg1Point(pt MG1Point) MG1Summary {
	key := simcache.KeyOf(mg1CacheSchema, encodeMG1Point(pt))
	return c.mg1.Get(key, func() MG1Summary {
		return RunMG1Point(pt)
	})
}

// hybridPoint runs one hybrid grid point in the given mode through the
// cache. The mode is part of the encoded spec so the packet and fluid
// measurements of the same point never alias.
func (c *Cache) hybridPoint(pt HybridPoint, fluid bool) HybridMeasurement {
	key := simcache.KeyOf(hybridCacheSchema, encodeHybridPoint(pt, fluid))
	return c.hybrid.Get(key, func() HybridMeasurement {
		return RunHybridPoint(pt, fluid)
	})
}

// encodeTBFPoint canonically serializes the ground-truth-determining spec
// fields (Name and Tol deliberately excluded: renaming a point or widening
// a band must not invalidate its measurement).
//
//lint:ignore cachekey Name and Tol do not affect simulated ground truth; see doc comment
func encodeTBFPoint(pt TBFPoint) []byte {
	b := make([]byte, 0, 64)
	b = measure.AppendFloat64(b, pt.Params.Rate)
	b = measure.AppendInt64(b, int64(pt.Params.Burst))
	b = measure.AppendInt64(b, int64(pt.Params.QueueLimit))
	b = measure.AppendInt64(b, int64(pt.Params.PacketSize))
	b = measure.AppendFloat64(b, pt.Params.Offered)
	b = measure.AppendInt64(b, int64(pt.Params.Horizon))
	b = measure.AppendString(b, string(pt.Proc))
	b = measure.AppendInt64(b, pt.Seed)
	return b
}

func tbfCodec() simcache.Codec[TBFMeasurement] {
	return simcache.Codec[TBFMeasurement]{
		Encode: func(m TBFMeasurement) []byte {
			b := make([]byte, 0, 32)
			b = measure.AppendFloat64(b, m.LossRate)
			b = measure.AppendInt64(b, int64(m.MeanQueueDelay))
			drops := int64(0)
			if m.Drops {
				drops = 1
			}
			b = measure.AppendInt64(b, drops)
			b = measure.AppendInt64(b, int64(m.FirstDrop))
			return b
		},
		Decode: func(b []byte) (TBFMeasurement, error) {
			var m TBFMeasurement
			var err error
			var v int64
			if m.LossRate, b, err = measure.DecodeFloat64(b); err != nil {
				return m, err
			}
			if v, b, err = measure.DecodeInt64(b); err != nil {
				return m, err
			}
			m.MeanQueueDelay = time.Duration(v)
			if v, b, err = measure.DecodeInt64(b); err != nil {
				return m, err
			}
			m.Drops = v != 0
			if v, b, err = measure.DecodeInt64(b); err != nil {
				return m, err
			}
			m.FirstDrop = time.Duration(v)
			if len(b) != 0 {
				return m, errors.New("twincache: trailing bytes in TBF entry")
			}
			return m, nil
		},
	}
}

// encodeHybridPoint canonically serializes a hybrid point spec plus the
// packet/fluid mode it was measured under; like encodeTBFPoint it
// deliberately excludes Name and Tol.
//
//lint:ignore cachekey Name and Tol do not affect simulated ground truth; see doc comment
func encodeHybridPoint(pt HybridPoint, fluid bool) []byte {
	b := make([]byte, 0, 96)
	b = measure.AppendFloat64(b, pt.Rate)
	b = measure.AppendInt64(b, int64(pt.Burst))
	b = measure.AppendInt64(b, int64(pt.QueueLimit))
	b = measure.AppendFloat64(b, pt.BgRate)
	b = measure.AppendFloat64(b, pt.BgModSpread)
	b = measure.AppendInt64(b, int64(pt.BgModPeriod))
	b = measure.AppendInt64(b, int64(pt.BgPacket))
	b = measure.AppendFloat64(b, pt.FgRate)
	b = measure.AppendInt64(b, int64(pt.FgPacket))
	b = measure.AppendString(b, string(pt.FgProc))
	b = measure.AppendInt64(b, int64(pt.Horizon))
	b = measure.AppendInt64(b, pt.Seed)
	mode := int64(0)
	if fluid {
		mode = 1
	}
	b = measure.AppendInt64(b, mode)
	return b
}

func hybridCodec() simcache.Codec[HybridMeasurement] {
	return simcache.Codec[HybridMeasurement]{
		Encode: func(m HybridMeasurement) []byte {
			b := make([]byte, 0, 40)
			b = measure.AppendFloat64(b, m.BgLossRate)
			b = measure.AppendFloat64(b, m.FgLossRate)
			b = measure.AppendInt64(b, int64(m.FgP50))
			b = measure.AppendInt64(b, int64(m.FgP95))
			b = measure.AppendInt64(b, m.Events)
			return b
		},
		Decode: func(b []byte) (HybridMeasurement, error) {
			var m HybridMeasurement
			var err error
			var v int64
			if m.BgLossRate, b, err = measure.DecodeFloat64(b); err != nil {
				return m, err
			}
			if m.FgLossRate, b, err = measure.DecodeFloat64(b); err != nil {
				return m, err
			}
			if v, b, err = measure.DecodeInt64(b); err != nil {
				return m, err
			}
			m.FgP50 = time.Duration(v)
			if v, b, err = measure.DecodeInt64(b); err != nil {
				return m, err
			}
			m.FgP95 = time.Duration(v)
			if m.Events, b, err = measure.DecodeInt64(b); err != nil {
				return m, err
			}
			if len(b) != 0 {
				return m, errors.New("twincache: trailing bytes in hybrid entry")
			}
			return m, nil
		},
	}
}

// encodeMG1Point canonically serializes an MG1 point spec; like
// encodeTBFPoint it deliberately excludes Name and Tol.
//
//lint:ignore cachekey Name and Tol do not affect simulated ground truth; see doc comment
func encodeMG1Point(pt MG1Point) []byte {
	b := make([]byte, 0, 64)
	b = measure.AppendInt64(b, int64(pt.Servers))
	b = measure.AppendFloat64(b, pt.Lambda)
	b = measure.AppendFloat64(b, pt.MeanService)
	b = measure.AppendFloat64(b, pt.SCV)
	b = measure.AppendInt64(b, int64(pt.Jobs))
	b = measure.AppendInt64(b, pt.Seed)
	return b
}

func mg1Codec() simcache.Codec[MG1Summary] {
	return simcache.Codec[MG1Summary]{
		Encode: func(s MG1Summary) []byte {
			b := make([]byte, 0, 40)
			b = measure.AppendInt64(b, int64(s.Jobs))
			exact := int64(0)
			if s.ExactSchedule {
				exact = 1
			}
			b = measure.AppendInt64(b, exact)
			b = measure.AppendFloat64(b, s.MeanSojourn)
			b = measure.AppendFloat64(b, s.P50)
			b = measure.AppendFloat64(b, s.P95)
			return b
		},
		Decode: func(b []byte) (MG1Summary, error) {
			var s MG1Summary
			var err error
			var v int64
			if v, b, err = measure.DecodeInt64(b); err != nil {
				return s, err
			}
			s.Jobs = int(v)
			if v, b, err = measure.DecodeInt64(b); err != nil {
				return s, err
			}
			s.ExactSchedule = v != 0
			if s.MeanSojourn, b, err = measure.DecodeFloat64(b); err != nil {
				return s, err
			}
			if s.P50, b, err = measure.DecodeFloat64(b); err != nil {
				return s, err
			}
			if s.P95, b, err = measure.DecodeFloat64(b); err != nil {
				return s, err
			}
			if len(b) != 0 {
				return s, errors.New("twincache: trailing bytes in MG1 entry")
			}
			return s, nil
		},
	}
}
