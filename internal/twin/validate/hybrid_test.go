package validate

import (
	"testing"
)

// TestHybridBackgroundMatchesPacketGroundTruth is the equivalence gate for
// the fluid background mode (DESIGN.md §14): across the hybrid grid the
// fluid run's background loss, foreground loss, and foreground delay
// quantiles must land inside each point's band against the packet-granular
// run of the identical rate trajectory — and the full-rate point must show
// the ≥50x event saving the mode exists for. -short (the race-detector CI
// lane) runs the reduced one-point-per-regime grid; the default lane and
// `wehey-twin validate` sweep everything.
func TestHybridBackgroundMatchesPacketGroundTruth(t *testing.T) {
	cache, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	grid := DefaultHybridGrid()
	if len(grid) < 8 {
		t.Fatalf("hybrid grid has %d points, want >= 8", len(grid))
	}
	if testing.Short() {
		grid = ReducedHybridGrid()
		if len(grid) < 4 {
			t.Fatalf("reduced hybrid grid has %d points, want >= 4", len(grid))
		}
	}
	fullRateSeen := false
	for _, pt := range grid {
		rep := EvalHybridPoint(pt, cache)
		for _, v := range rep.Violations {
			t.Errorf("%s: %s", pt.Name, v)
		}
		if pt.Tol.MinEventRatio > 0 {
			fullRateSeen = true
			t.Logf("%s: packet %d events, fluid %d events (%.0fx)",
				pt.Name, rep.Packet.Events, rep.Fluid.Events, rep.EventRatio)
		}
	}
	if !fullRateSeen {
		t.Error("no grid point enforces the full-rate event-ratio gate")
	}
}

// TestHybridCacheRoundTrip pins the hybrid point codec and the
// mode-separation of the cache key: packet and fluid measurements of the
// same point must occupy distinct entries and decode bit-identically.
func TestHybridCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	pt := ReducedHybridGrid()[0]

	cold, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	packet := cold.hybridPoint(pt, false)
	fluid := cold.hybridPoint(pt, true)
	if packet == fluid {
		t.Fatal("packet and fluid measurements identical — mode byte missing from the key?")
	}
	if st := cold.Stats(); st.Misses != 2 {
		t.Fatalf("cold stats: %+v, want 2 misses", st)
	}

	warm, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.hybridPoint(pt, false); got != packet {
		t.Errorf("warm packet measurement %+v != cold %+v", got, packet)
	}
	if got := warm.hybridPoint(pt, true); got != fluid {
		t.Errorf("warm fluid measurement %+v != cold %+v", got, fluid)
	}
	if st := warm.Stats(); st.Misses != 0 || st.DiskHits != 2 {
		t.Errorf("warm stats: %+v, want 2 disk hits and 0 misses", st)
	}
}
