// Package fleet is WeHeY's population-level inference layer: it turns the
// per-session localization verdicts the campaign service produces into
// ISP-scale differentiation maps (DESIGN.md §16, the ROADMAP's
// fleet-level aggregation item).
//
// One session answers "does MY path throttle MY app, inside MY ISP?";
// the fleet question is "WHICH networks throttle WHAT, with how much
// confidence?". The layer has three parts:
//
//   - Posterior/Aggregator: an incremental Beta(1,1)-Bernoulli posterior
//     per (ISP, app-class) cell over the binary localized-to-ISP verdicts
//     of terminal jobs. Cells store integer counts, so updating is O(1)
//     per verdict and merging two aggregators is count addition —
//     commutative and associative, which makes shard-parallel aggregation
//     order-invariant and its serialized snapshot byte-identical across
//     worker counts and arrival orders.
//
//   - Identifiability (identify.go + internal/tomo.PathMatrix): before
//     trusting any posterior, a boolean-tomography pass over the
//     campaign's path sets decides which candidate segments the
//     measurements CAN blame. A segment no path crosses, or one whose
//     path set equals another's, is reported unidentifiable instead of
//     scored — the Map never shows a false posterior for it.
//
//   - Campaign/Score (campaign.go): the planted-ground-truth harness —
//     render an experiments.FleetCampaignSpec as service job specs, drive
//     them through a live wehey-serve (follower.go) or evaluate them
//     directly, and score the inferred map against the plant
//     (ranking, precision/recall, Brier).
//
// The package is inside the walltime and detrand lint scopes: all time
// flows through an injected clock.Clock and the layer draws no
// randomness at all — posteriors are pure functions of the verdict
// multiset.
package fleet

import (
	"encoding/json"
	"sort"

	"github.com/nal-epfl/wehey/internal/service"
	"github.com/nal-epfl/wehey/internal/tomo"
)

// Posterior is a Beta(1,1)-Bernoulli posterior over "sessions through
// this cell localize differentiation to the ISP", stored as the raw
// verdict counts. The uniform prior means one session moves the mean to
// 2/3 or 1/3 — visible but not decisive — and thousands pin it.
type Posterior struct {
	// Pos counts sessions whose verdict localized to the ISP.
	Pos int64 `json:"pos"`
	// Neg counts sessions whose verdict did not.
	Neg int64 `json:"neg"`
}

// Observe folds one verdict in.
func (p *Posterior) Observe(localized bool) {
	if localized {
		p.Pos++
	} else {
		p.Neg++
	}
}

// Merge returns the posterior over both count sets. Addition is
// commutative and associative, so any merge tree over any partition of
// the verdicts yields the same result.
func (p Posterior) Merge(q Posterior) Posterior {
	return Posterior{Pos: p.Pos + q.Pos, Neg: p.Neg + q.Neg}
}

// N is the number of verdicts observed.
func (p Posterior) N() int64 { return p.Pos + p.Neg }

// Mean is the posterior mean (1+Pos)/(2+N): a deterministic function of
// the integer counts, so equal counts render equal bytes.
func (p Posterior) Mean() float64 {
	return float64(1+p.Pos) / float64(2+p.Pos+p.Neg)
}

// Cell addresses one posterior: an access ISP crossed with an
// application class (the trace pair the sessions replayed).
type Cell struct {
	ISP int    `json:"isp"`
	App string `json:"app"`
}

// Aggregator accumulates verdicts into per-cell posteriors. It is a
// plain value for one goroutine; shard-parallel use is K aggregators
// merged at the end (Merge), which the integer-count representation
// makes order-invariant.
type Aggregator struct {
	cells map[Cell]*Posterior
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{cells: make(map[Cell]*Posterior)}
}

// Observe credits one verdict to a cell.
func (a *Aggregator) Observe(cell Cell, localized bool) {
	p := a.cells[cell]
	if p == nil {
		p = &Posterior{}
		a.cells[cell] = p
	}
	p.Observe(localized)
}

// ObserveJob credits a terminal service job carrying fleet attribution:
// done jobs contribute their localized-to-ISP verdict; failed and
// canceled jobs (and jobs without fleet metadata or a result) contribute
// nothing. It reports whether the job was credited.
func (a *Aggregator) ObserveJob(j service.Job) bool {
	if j.State != service.StateDone || j.Spec.Fleet == nil || j.Result == nil {
		return false
	}
	app := ""
	if j.Spec.Sim != nil {
		app = j.Spec.Sim.App
	}
	a.Observe(Cell{ISP: j.Spec.Fleet.ISP, App: app}, j.Result.LocalizedToISP)
	return true
}

// Merge folds other's counts into a. Safe with an empty or nil other.
func (a *Aggregator) Merge(other *Aggregator) {
	if other == nil {
		return
	}
	for cell, q := range other.cells {
		p := a.cells[cell]
		if p == nil {
			p = &Posterior{}
			a.cells[cell] = p
		}
		*p = p.Merge(*q)
	}
}

// Cells is the number of populated (ISP, app) cells.
func (a *Aggregator) Cells() int { return len(a.cells) }

// Entry is one scored cell of the differentiation map.
type Entry struct {
	Cell
	// Sessions and Localized are the raw counts behind the posterior.
	Sessions  int64 `json:"sessions"`
	Localized int64 `json:"localized"`
	// Identifiable mirrors the identifiability report for the cell's ISP
	// segment. When false, Posterior is omitted — the path set cannot
	// attribute blame to this ISP, so a number here would be a false
	// posterior (the counts remain visible as raw data).
	Identifiable bool `json:"identifiable"`
	// Posterior is the Beta-Bernoulli mean (identifiable cells only).
	Posterior float64 `json:"posterior,omitempty"`
}

// Map is the fleet-level differentiation map: scored cells plus the
// identifiability report that gates them.
type Map struct {
	// Entries are the populated cells, sorted by (ISP, App).
	Entries []Entry `json:"entries"`
	// Unidentifiable lists segment IDs the campaign's path sets cannot
	// blame — unobserved (path-starved) or confused with another segment
	// — sorted. ISPs listed here are never scored.
	Unidentifiable []string `json:"unidentifiable"`
	// Identify is the full per-segment identifiability report.
	Identify []tomo.SegmentIdent `json:"identify"`
}

// Snapshot renders the aggregator against an identifiability report
// (tomo.PathMatrix.Identify over the campaign's path sets; nil means
// every cell is taken as identifiable). The result is a pure function of
// the accumulated counts and the report: byte-identical across
// aggregation orders.
func (a *Aggregator) Snapshot(ident []tomo.SegmentIdent) Map {
	identifiable := make(map[string]bool, len(ident))
	var unident []string
	for _, e := range ident {
		identifiable[e.ID] = e.Identifiable
		if !e.Identifiable {
			unident = append(unident, e.ID)
		}
	}
	sort.Strings(unident)

	cells := make([]Cell, 0, len(a.cells))
	for cell := range a.cells {
		cells = append(cells, cell)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].ISP != cells[j].ISP {
			return cells[i].ISP < cells[j].ISP
		}
		return cells[i].App < cells[j].App
	})

	m := Map{Identify: ident, Unidentifiable: unident}
	for _, cell := range cells {
		p := a.cells[cell]
		e := Entry{
			Cell:      cell,
			Sessions:  p.N(),
			Localized: p.Pos,
		}
		if ok, known := identifiable[ISPSegment(cell.ISP)]; ok || (ident == nil && !known) {
			e.Identifiable = true
			e.Posterior = p.Mean()
		}
		m.Entries = append(m.Entries, e)
	}
	return m
}

// MarshalIndent is the canonical JSON rendering of the map (wehey-map's
// output format). Entries and report are pre-sorted and counts are
// integers, so equal maps render equal bytes.
func (m Map) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}
