package fleet

import (
	"fmt"

	"github.com/nal-epfl/wehey/internal/experiments"
	"github.com/nal-epfl/wehey/internal/tomo"
	"github.com/nal-epfl/wehey/internal/topology"
)

// Candidate network segments are AS-granular: the access ISP, the transit
// AS between it and the server site, and the server site itself — the
// resolution at which a fleet can meaningfully attribute differentiation
// (per-router attribution would need per-hop path data the sessions do
// not carry). Segment IDs are stable strings so the identifiability
// report, the Map, and wehey-map's JSON all name the same things.

// ISPSegment names access ISP i's segment.
func ISPSegment(i int) string { return fmt.Sprintf("isp-%d", i) }

// TransitSegment names transit AS t's segment.
func TransitSegment(t int) string { return fmt.Sprintf("transit-%d", t) }

// ServerSegment names server site s's segment.
func ServerSegment(s int) string { return fmt.Sprintf("server-%d", s) }

// SessionPath is the AS-level segment sequence of a session from server
// site `server` to a client in ISP `isp`, following the synthetic
// Internet's homing rule (topology.Synthesize): each server site is homed
// behind transit AS server%TransitASes, and every route from it to the
// ISP's clients crosses exactly that transit AS before entering the ISP.
func SessionPath(spec topology.SynthSpec, isp, server int) []string {
	spec = spec.Filled()
	return []string{
		ServerSegment(server),
		TransitSegment(server % spec.TransitASes),
		ISPSegment(isp),
	}
}

// BuildPathMatrix assembles the boolean path-incidence matrix of a
// campaign plan over the synthetic topology: one row per distinct
// (ISP, server) route the plan's sessions traverse, plus a declared
// column for every candidate ISP — so deliberately path-starved ISPs
// appear in the report as unobserved rather than vanishing from it.
func BuildPathMatrix(topo topology.SynthSpec, plan []experiments.FleetSession) *tomo.PathMatrix {
	topo = topo.Filled()
	m := tomo.NewPathMatrix()
	for i := 0; i < topo.ISPs; i++ {
		m.AddSegment(ISPSegment(i))
	}
	for _, sess := range plan {
		m.AddPath(SessionPath(topo, sess.ISP, sess.Server))
	}
	return m
}
