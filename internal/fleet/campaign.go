package fleet

import (
	"fmt"
	"sort"

	"github.com/nal-epfl/wehey/internal/experiments"
	"github.com/nal-epfl/wehey/internal/service"
	"github.com/nal-epfl/wehey/internal/tomo"
	"github.com/nal-epfl/wehey/internal/topology"
)

// Campaign binds a planted-ground-truth spec to a name (the fleet
// attribution key on its jobs) and the synthetic topology its sessions
// run over.
type Campaign struct {
	// Name travels in every job's FleetMeta.Campaign.
	Name string
	// Spec is the campaign plan: plants, starved ISPs, session count.
	Spec experiments.FleetCampaignSpec
}

// NewCampaign fills the spec and returns the campaign.
func NewCampaign(name string, spec experiments.FleetCampaignSpec) Campaign {
	return Campaign{Name: name, Spec: spec.Filled()}
}

// Topology is the synthetic-Internet spec the campaign's sessions run
// over: candidate counts match the campaign so the identifiability pass
// and the posterior map name the same ISPs.
func (c Campaign) Topology() topology.SynthSpec {
	return topology.SynthSpec{ISPs: c.Spec.ISPs, Servers: c.Spec.Servers}.Filled()
}

// Plan enumerates the campaign's sessions (experiments.SessionPlan).
func (c Campaign) Plan() []experiments.FleetSession {
	return c.Spec.SessionPlan()
}

// PathMatrix is the campaign's boolean path-incidence matrix.
func (c Campaign) PathMatrix() *tomo.PathMatrix {
	return BuildPathMatrix(c.Topology(), c.Plan())
}

// JobSpecs renders the plan as service job specs for the sim backend,
// one per session, each carrying its fleet attribution. Submitting them
// (in any order, any batching) and aggregating the terminal results
// reproduces exactly what EvalCampaign computes in-process: the sim
// backend's verdict path is shared (experiments.Config.Verdict), and the
// session seeds are functions of the plan, not of submission order.
func (c Campaign) JobSpecs() []service.Spec {
	plan := c.Plan()
	specs := make([]service.Spec, len(plan))
	for i, sess := range plan {
		placement := "noncommon"
		if sess.Throttled {
			placement = "common"
		}
		specs[i] = service.Spec{
			Backend:     service.BackendSim,
			Seed:        sess.Spec.Seed,
			MaxAttempts: 1, // verdicts are deterministic: a retry cannot differ
			Sim: &service.SimJob{
				App:       sess.Spec.App,
				Placement: placement,
				Duration:  sess.Spec.Duration,
			},
			Fleet: &service.FleetMeta{
				Campaign: c.Name,
				Session:  sess.Index,
				ISP:      sess.ISP,
				Server:   sess.Server,
			},
		}
	}
	return specs
}

// Eval evaluates the campaign directly (no service in the loop) through
// cfg and returns the aggregated outcomes. Errored sessions (the
// detector could not run) are skipped, mirroring how failed jobs never
// reach the aggregator on the service path.
func (c Campaign) Eval(cfg experiments.Config) *Aggregator {
	agg := NewAggregator()
	for _, o := range cfg.EvalCampaign(c.Spec) {
		if o.Err != "" {
			continue
		}
		agg.Observe(Cell{ISP: o.ISP, App: c.Spec.App}, o.Localized)
	}
	return agg
}

// Score grades an inferred map against the campaign's planted ground
// truth.
type Score struct {
	// Ranking lists the scored (identifiable, observed) ISPs by posterior,
	// best first; ties break toward the lower index.
	Ranking []RankedISP `json:"ranking"`
	// TopISP is Ranking[0]'s ISP (-1 when nothing was scored).
	TopISP int `json:"top_isp"`
	// TopPosterior is Ranking[0]'s posterior.
	TopPosterior float64 `json:"top_posterior"`
	// TopIsPlanted: the top-ranked ISP is one of the planted throttlers.
	TopIsPlanted bool `json:"top_is_planted"`
	// Precision and Recall classify scored ISPs at posterior ≥ 0.5
	// against the plant.
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	// Brier is the mean squared error of the posterior against the 0/1
	// plant over scored ISPs (lower is better; 0.25 = knowing nothing).
	Brier float64 `json:"brier"`
	// Unidentifiable echoes the map's unidentifiable segment list.
	Unidentifiable []string `json:"unidentifiable"`
}

// RankedISP is one scored ISP in plant order quality.
type RankedISP struct {
	ISP       int     `json:"isp"`
	Posterior float64 `json:"posterior"`
	Sessions  int64   `json:"sessions"`
	Planted   bool    `json:"planted"`
}

// ScoreMap grades m against the campaign plant. Cells are collapsed per
// ISP (count addition over app classes) before ranking; unidentifiable
// ISPs are excluded from ranking and error metrics — the map refused to
// score them, and that refusal is graded via Unidentifiable instead.
func (c Campaign) ScoreMap(m Map) Score {
	planted := make(map[int]bool, len(c.Spec.ThrottledISPs))
	for _, i := range c.Spec.ThrottledISPs {
		planted[i] = true
	}

	perISP := make(map[int]Posterior)
	scored := make(map[int]bool)
	for _, e := range m.Entries {
		if !e.Identifiable {
			continue
		}
		perISP[e.ISP] = perISP[e.ISP].Merge(Posterior{Pos: e.Localized, Neg: e.Sessions - e.Localized})
		scored[e.ISP] = true
	}

	isps := make([]int, 0, len(perISP))
	for isp := range perISP {
		isps = append(isps, isp)
	}
	sort.Ints(isps)

	s := Score{TopISP: -1, Unidentifiable: m.Unidentifiable}
	var truePos, predPos, plantScored int
	var brierSum float64
	for _, isp := range isps {
		p := perISP[isp]
		s.Ranking = append(s.Ranking, RankedISP{
			ISP: isp, Posterior: p.Mean(), Sessions: p.N(), Planted: planted[isp],
		})
		truth := 0.0
		if planted[isp] {
			truth = 1
			plantScored++
		}
		if p.Mean() >= 0.5 {
			predPos++
			if planted[isp] {
				truePos++
			}
		}
		d := p.Mean() - truth
		brierSum += d * d
	}
	sort.SliceStable(s.Ranking, func(i, j int) bool {
		if s.Ranking[i].Posterior > s.Ranking[j].Posterior {
			return true
		}
		if s.Ranking[i].Posterior < s.Ranking[j].Posterior {
			return false
		}
		return s.Ranking[i].ISP < s.Ranking[j].ISP
	})
	if len(s.Ranking) > 0 {
		s.TopISP = s.Ranking[0].ISP
		s.TopPosterior = s.Ranking[0].Posterior
		s.TopIsPlanted = planted[s.TopISP]
		s.Brier = brierSum / float64(len(s.Ranking))
	}
	if predPos > 0 {
		s.Precision = float64(truePos) / float64(predPos)
	}
	if plantScored > 0 {
		s.Recall = float64(truePos) / float64(plantScored)
	}
	return s
}

// String summarizes the score on one line.
func (s Score) String() string {
	return fmt.Sprintf("top=isp-%d posterior=%.3f planted=%v precision=%.2f recall=%.2f brier=%.4f unidentifiable=%d",
		s.TopISP, s.TopPosterior, s.TopIsPlanted, s.Precision, s.Recall, s.Brier, len(s.Unidentifiable))
}
