package fleet

import (
	"context"
	"sort"
	"time"

	"github.com/nal-epfl/wehey/internal/clock"
	"github.com/nal-epfl/wehey/internal/service"
)

// Follower streams a running wehey-serve's job stream into an
// Aggregator: new jobs arrive through the seq-cursor paged GET /jobs
// (each page advances the cursor, so a million-job campaign is never
// re-listed), and jobs seen before they were terminal are re-polled in
// bulk through POST /jobs/status:batch until they finish. All waiting
// flows through the injected clock; a Manual clock drives tests
// instantly.
type Follower struct {
	// Client is the campaign-service client to follow.
	Client *service.Client
	// Campaign filters jobs: only those whose FleetMeta.Campaign matches
	// are credited ("" = every fleet-attributed job).
	Campaign string
	// Agg receives the verdicts (default: a fresh aggregator).
	Agg *Aggregator
	// Clock paces polling (default clock.System).
	Clock clock.Clock
	// Poll is the idle re-poll interval (default 200 ms).
	Poll time.Duration

	cursor  string          // last job ID handed back by GET /jobs
	pending map[string]bool // seen but not yet terminal

	stats FollowerStats
}

// FollowerStats counts the follower's control-plane work, surfaced by
// `wehey-map watch`.
type FollowerStats struct {
	// Pages is the number of GET /jobs pages fetched.
	Pages int64 `json:"pages"`
	// StatusBatches is the number of POST /jobs/status:batch calls.
	StatusBatches int64 `json:"status_batches"`
	// Credited counts verdicts folded into the aggregator.
	Credited int64 `json:"credited"`
	// Skipped counts terminal jobs not credited (failed/canceled, no
	// fleet attribution, or another campaign's).
	Skipped int64 `json:"skipped"`
	// Pending is the current count of seen-but-not-terminal jobs.
	Pending int64 `json:"pending"`
}

func (f *Follower) clk() clock.Clock {
	if f.Clock != nil {
		return f.Clock
	}
	return clock.System
}

func (f *Follower) init() {
	if f.Agg == nil {
		f.Agg = NewAggregator()
	}
	if f.pending == nil {
		f.pending = make(map[string]bool)
	}
}

// Stats snapshots the follower counters.
func (f *Follower) Stats() FollowerStats {
	s := f.stats
	s.Pending = int64(len(f.pending))
	return s
}

// absorb folds one job observation in: terminal jobs are credited (or
// skipped) exactly once; non-terminal ones go to the pending set.
func (f *Follower) absorb(j service.Job) {
	if !j.State.Terminal() {
		f.pending[j.ID] = true
		return
	}
	delete(f.pending, j.ID)
	if j.Spec.Fleet == nil || (f.Campaign != "" && j.Spec.Fleet.Campaign != f.Campaign) {
		f.stats.Skipped++
		return
	}
	if f.Agg.ObserveJob(j) {
		f.stats.Credited++
	} else {
		f.stats.Skipped++
	}
}

// Sync performs one pass: page every job published since the cursor,
// then re-poll the pending set in batches. It returns the number of jobs
// still pending.
func (f *Follower) Sync(ctx context.Context) (pending int, err error) {
	f.init()
	for {
		page, err := f.Client.JobsPage(ctx, f.cursor, 0)
		if err != nil {
			return len(f.pending), err
		}
		f.stats.Pages++
		for _, j := range page {
			f.absorb(j)
		}
		if len(page) > 0 {
			f.cursor = page[len(page)-1].ID
		}
		if len(page) < service.ListLimitMax {
			break
		}
	}

	if len(f.pending) > 0 {
		ids := make([]string, 0, len(f.pending))
		for id := range f.pending {
			ids = append(ids, id)
		}
		sort.Strings(ids) // deterministic request order (and map-order lint)
		for len(ids) > 0 {
			n := len(ids)
			if n > service.ListLimitMax {
				n = service.ListLimitMax
			}
			jobs, missing, err := f.Client.StatusBatch(ctx, ids[:n])
			if err != nil {
				return len(f.pending), err
			}
			f.stats.StatusBatches++
			for _, j := range jobs {
				f.absorb(j)
			}
			// A job the server no longer knows will never terminate here.
			for _, id := range missing {
				delete(f.pending, id)
			}
			ids = ids[n:]
		}
	}
	return len(f.pending), nil
}

// Follow syncs until at least `total` verdicts have been credited and no
// jobs are pending (total <= 0: until the pending set drains after at
// least one pass), sleeping Poll between passes on the injected clock.
func (f *Follower) Follow(ctx context.Context, total int64) error {
	f.init()
	poll := f.Poll
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	for {
		pending, err := f.Sync(ctx)
		if err != nil {
			return err
		}
		if pending == 0 && (total <= 0 || f.stats.Credited+f.stats.Skipped >= total) {
			return nil
		}
		t := f.clk().NewTimer(poll)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C():
		}
	}
}

// FromJobs aggregates a one-shot job dump (`wehey-map infer` over a
// journal or a full listing): every terminal fleet job matching the
// campaign filter is credited. It returns the credited count.
func FromJobs(agg *Aggregator, campaign string, jobs []service.Job) int64 {
	var credited int64
	for _, j := range jobs {
		if !j.State.Terminal() || j.Spec.Fleet == nil {
			continue
		}
		if campaign != "" && j.Spec.Fleet.Campaign != campaign {
			continue
		}
		if agg.ObserveJob(j) {
			credited++
		}
	}
	return credited
}
