package fleet

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"github.com/nal-epfl/wehey/internal/service"
	"github.com/nal-epfl/wehey/internal/tomo"
)

func TestPosteriorMath(t *testing.T) {
	var p Posterior
	if got := p.Mean(); math.Abs(got-0.5) > 1e-15 {
		t.Errorf("prior mean = %v, want 0.5", got)
	}
	p.Observe(true)
	if got := p.Mean(); math.Abs(got-2.0/3) > 1e-15 {
		t.Errorf("mean after one positive = %v, want 2/3", got)
	}
	for i := 0; i < 99; i++ {
		p.Observe(true)
	}
	for i := 0; i < 100; i++ {
		p.Observe(false)
	}
	if got := p.Mean(); math.Abs(got-101.0/202) > 1e-15 {
		t.Errorf("mean after 100/100 = %v, want 101/202", got)
	}
	if p.N() != 200 {
		t.Errorf("N = %d, want 200", p.N())
	}
	m := Posterior{Pos: 3, Neg: 1}.Merge(Posterior{Pos: 2, Neg: 4})
	if m != (Posterior{Pos: 5, Neg: 5}) {
		t.Errorf("merge = %+v", m)
	}
}

// TestAggregatorOrderAndShardInvariance is the merge-determinism core:
// the same verdict multiset fed in shuffled orders, through different
// shard counts, merged in different orders, must render byte-identical
// snapshots.
func TestAggregatorOrderAndShardInvariance(t *testing.T) {
	type obs struct {
		cell Cell
		loc  bool
	}
	rng := rand.New(rand.NewSource(11))
	var verdicts []obs
	for i := 0; i < 5000; i++ {
		verdicts = append(verdicts, obs{
			cell: Cell{ISP: rng.Intn(12), App: []string{"tcpbulk", "zoom"}[rng.Intn(2)]},
			loc:  rng.Intn(3) == 0,
		})
	}
	ident := []tomo.SegmentIdent{{ID: ISPSegment(5)}} // one unidentifiable ISP in play

	reference := NewAggregator()
	for _, v := range verdicts {
		reference.Observe(v.cell, v.loc)
	}
	want, err := reference.Snapshot(ident).MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 10; trial++ {
		shuffled := append([]obs(nil), verdicts...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		shards := 1 + rng.Intn(8)
		aggs := make([]*Aggregator, shards)
		for i := range aggs {
			aggs[i] = NewAggregator()
		}
		for i, v := range shuffled {
			aggs[i%shards].Observe(v.cell, v.loc)
		}
		// Merge in a shuffled order too.
		order := rng.Perm(shards)
		merged := NewAggregator()
		for _, i := range order {
			merged.Merge(aggs[i])
		}
		got, err := merged.Snapshot(ident).MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d (%d shards): snapshot differs from reference", trial, shards)
		}
	}
}

// TestSnapshotGatesUnidentifiable: a cell whose ISP the path matrix
// cannot blame keeps its raw counts but gets no posterior.
func TestSnapshotGatesUnidentifiable(t *testing.T) {
	a := NewAggregator()
	for i := 0; i < 10; i++ {
		a.Observe(Cell{ISP: 1, App: "tcpbulk"}, true)
		a.Observe(Cell{ISP: 2, App: "tcpbulk"}, true)
	}
	ident := []tomo.SegmentIdent{
		{ID: ISPSegment(1), Paths: 3, Observed: true, Identifiable: true},
		{ID: ISPSegment(2), Paths: 3, Observed: true, Identifiable: false, ConfusedWith: []string{"transit-0"}},
		{ID: ISPSegment(3), Observed: false},
	}
	m := a.Snapshot(ident)
	if len(m.Entries) != 2 {
		t.Fatalf("%d entries, want 2", len(m.Entries))
	}
	e1, e2 := m.Entries[0], m.Entries[1]
	if !e1.Identifiable || e1.Posterior < 0.9 {
		t.Errorf("identifiable cell = %+v; want scored", e1)
	}
	if e2.Identifiable || e2.Posterior > 0 {
		t.Errorf("confused cell = %+v; want unscored with raw counts", e2)
	}
	if e2.Sessions != 10 || e2.Localized != 10 {
		t.Errorf("confused cell lost its counts: %+v", e2)
	}
	if len(m.Unidentifiable) != 2 {
		t.Errorf("Unidentifiable = %v; want isp-2 and isp-3", m.Unidentifiable)
	}
}

// TestObserveJobFiltering: only done jobs with fleet attribution and a
// result are credited.
func TestObserveJobFiltering(t *testing.T) {
	meta := &service.FleetMeta{Campaign: "c", Session: 0, ISP: 4, Server: 1}
	sim := &service.SimJob{App: "tcpbulk"}
	res := &service.Result{LocalizedToISP: true}
	cases := []struct {
		name string
		job  service.Job
		want bool
	}{
		{"done+fleet", service.Job{State: service.StateDone, Spec: service.Spec{Fleet: meta, Sim: sim}, Result: res}, true},
		{"failed", service.Job{State: service.StateFailed, Spec: service.Spec{Fleet: meta, Sim: sim}}, false},
		{"canceled", service.Job{State: service.StateCanceled, Spec: service.Spec{Fleet: meta, Sim: sim}}, false},
		{"no fleet meta", service.Job{State: service.StateDone, Spec: service.Spec{Sim: sim}, Result: res}, false},
		{"no result", service.Job{State: service.StateDone, Spec: service.Spec{Fleet: meta, Sim: sim}}, false},
	}
	for _, tc := range cases {
		a := NewAggregator()
		if got := a.ObserveJob(tc.job); got != tc.want {
			t.Errorf("%s: credited=%v, want %v", tc.name, got, tc.want)
		}
	}
}
