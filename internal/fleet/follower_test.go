package fleet

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/nal-epfl/wehey/internal/experiments"
	"github.com/nal-epfl/wehey/internal/service"
)

// TestFollowerMatchesDirectEval is the two-path equivalence core: a
// campaign driven through a live scheduler (HTTP submit, sim backend,
// follower aggregation over paged /jobs + status batches) must render
// the exact map bytes the in-process evaluation renders — same verdicts,
// same counts, same JSON.
func TestFollowerMatchesDirectEval(t *testing.T) {
	c := NewCampaign("equiv", experiments.FleetCampaignSpec{
		ISPs: 4, Servers: 2, ThrottledISPs: []int{1}, StarvedISPs: []int{2},
		Sessions: 24, SeedPool: 2, Duration: 12 * time.Second, Seed: 5,
	})
	cache := experiments.NewSimCache()

	// Service path: real scheduler, sim backend over the shared cache.
	s, err := service.NewScheduler(service.Options{
		Workers:    4,
		QueueLimit: 256,
		Backends: map[string]service.Backend{
			service.BackendSim: service.NewSimBackend(cache),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	s.Start()
	srv := httptest.NewServer(service.Handler(s))
	t.Cleanup(srv.Close)
	client := &service.Client{BaseURL: srv.URL}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	jobs, err := client.SubmitBatch(ctx, c.JobSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 24 {
		t.Fatalf("submitted %d jobs, want 24", len(jobs))
	}

	f := &Follower{Client: client, Campaign: "equiv", Poll: 5 * time.Millisecond}
	if err := f.Follow(ctx, int64(len(jobs))); err != nil {
		t.Fatal(err)
	}
	stats := f.Stats()
	if stats.Credited != 24 || stats.Pending != 0 {
		t.Fatalf("follower stats = %+v; want 24 credited, 0 pending", stats)
	}
	if stats.Pages == 0 {
		t.Error("follower fetched no pages")
	}

	ident := c.PathMatrix().Identify()
	viaService, err := f.Agg.Snapshot(ident).MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}

	// Direct path: same campaign, same cache, no service.
	direct, err := c.Eval(experiments.Config{Cache: cache}).Snapshot(ident).MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaService, direct) {
		t.Errorf("service-path map differs from direct evaluation:\nservice: %s\ndirect:  %s", viaService, direct)
	}
}

// TestFollowerIncrementalCursor: a second Follow call after more
// submissions must only page the new tail (the cursor advanced), and
// FromJobs over the full listing reproduces the same aggregate.
func TestFollowerIncrementalCursor(t *testing.T) {
	c := NewCampaign("inc", experiments.FleetCampaignSpec{
		ISPs: 2, Servers: 1, ThrottledISPs: []int{0}, Sessions: 8,
		SeedPool: 2, Duration: 12 * time.Second, Seed: 9,
	})
	cache := experiments.NewSimCache()
	s, err := service.NewScheduler(service.Options{
		Workers: 2,
		Backends: map[string]service.Backend{
			service.BackendSim: service.NewSimBackend(cache),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	s.Start()
	srv := httptest.NewServer(service.Handler(s))
	t.Cleanup(srv.Close)
	client := &service.Client{BaseURL: srv.URL}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	specs := c.JobSpecs()
	f := &Follower{Client: client, Campaign: "inc", Poll: 5 * time.Millisecond}

	if _, err := client.SubmitBatch(ctx, specs[:4]); err != nil {
		t.Fatal(err)
	}
	if err := f.Follow(ctx, 4); err != nil {
		t.Fatal(err)
	}
	pagesAfterFirst := f.Stats().Pages

	if _, err := client.SubmitBatch(ctx, specs[4:]); err != nil {
		t.Fatal(err)
	}
	if err := f.Follow(ctx, int64(len(specs))); err != nil {
		t.Fatal(err)
	}
	stats := f.Stats()
	if stats.Credited != int64(len(specs)) {
		t.Fatalf("credited %d, want %d", stats.Credited, len(specs))
	}
	if stats.Pages <= pagesAfterFirst {
		t.Error("second Follow fetched no pages")
	}

	// One-shot inference over the full listing agrees with the stream.
	all, err := client.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	oneShot := NewAggregator()
	if n := FromJobs(oneShot, "inc", all); n != int64(len(specs)) {
		t.Fatalf("FromJobs credited %d, want %d", n, len(specs))
	}
	a, _ := f.Agg.Snapshot(nil).MarshalIndent()
	b, _ := oneShot.Snapshot(nil).MarshalIndent()
	if !bytes.Equal(a, b) {
		t.Error("streamed and one-shot aggregates differ")
	}
}
