package fleet

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"github.com/nal-epfl/wehey/internal/experiments"
)

// groundTruthSpec is the acceptance-criteria campaign: 12 candidate
// ISPs, throttling planted on one, one deliberately path-starved, and
// 2048 sessions. The seed pool keeps the whole thing at 32 distinct
// simulations regardless of session count.
func groundTruthSpec() experiments.FleetCampaignSpec {
	return experiments.FleetCampaignSpec{
		ThrottledISPs: []int{3},
		StarvedISPs:   []int{7},
		Sessions:      2048,
		SeedPool:      16,
		Seed:          20260808,
	}
}

// TestGroundTruthScore is the subsystem's acceptance test: the inferred
// map must rank the planted ISP first with posterior ≥ 0.9, keep every
// clean ISP far below threshold, and declare the path-starved ISP
// unidentifiable instead of scoring it.
func TestGroundTruthScore(t *testing.T) {
	if testing.Short() {
		t.Skip("ground-truth campaign evaluates 32 paper-scale simulations")
	}
	c := NewCampaign("gt", groundTruthSpec())
	cfg := experiments.Config{Cache: experiments.NewSimCache()}

	agg := c.Eval(cfg)
	m := agg.Snapshot(c.PathMatrix().Identify())
	score := c.ScoreMap(m)
	t.Logf("score: %s", score)

	if score.TopISP != 3 || !score.TopIsPlanted {
		t.Errorf("top ISP = %d, want the planted 3", score.TopISP)
	}
	if score.TopPosterior < 0.9 {
		t.Errorf("planted posterior = %.4f, want ≥ 0.9", score.TopPosterior)
	}
	if score.Precision < 1 || score.Recall < 1 {
		t.Errorf("precision/recall = %.2f/%.2f, want 1/1", score.Precision, score.Recall)
	}
	if score.Brier > 0.05 {
		t.Errorf("Brier = %.4f, want ≤ 0.05", score.Brier)
	}

	// The starved ISP is flagged, not scored.
	starvedFlagged := false
	for _, id := range m.Unidentifiable {
		if id == ISPSegment(7) {
			starvedFlagged = true
		}
	}
	if !starvedFlagged {
		t.Errorf("starved isp-7 missing from Unidentifiable: %v", m.Unidentifiable)
	}
	for _, r := range score.Ranking {
		if r.ISP == 7 {
			t.Error("starved isp-7 was ranked despite being unidentifiable")
		}
	}
	// Every clean scored ISP sits far below threshold.
	for _, r := range score.Ranking[1:] {
		if r.Posterior >= 0.5 {
			t.Errorf("clean isp-%d posterior %.4f ≥ 0.5", r.ISP, r.Posterior)
		}
	}

	// Byte-identity across worker counts: the same campaign evaluated
	// serially renders the same snapshot bytes (the sim cache makes the
	// second pass cheap).
	want, err := m.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	serial := c.Eval(experiments.Config{Workers: 1, Cache: cfg.Cache})
	got, err := serial.Snapshot(c.PathMatrix().Identify()).MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("snapshot differs between worker counts")
	}

	// ...and across arrival orders and shard counts: outcomes shuffled
	// into independent aggregators, merged in shuffled order.
	outcomes := cfg.EvalCampaign(c.Spec)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		rng.Shuffle(len(outcomes), func(i, j int) { outcomes[i], outcomes[j] = outcomes[j], outcomes[i] })
		shards := 1 + rng.Intn(6)
		aggs := make([]*Aggregator, shards)
		for i := range aggs {
			aggs[i] = NewAggregator()
		}
		for i, o := range outcomes {
			if o.Err != "" {
				continue
			}
			aggs[i%shards].Observe(Cell{ISP: o.ISP, App: c.Spec.App}, o.Localized)
		}
		merged := NewAggregator()
		for _, i := range rng.Perm(shards) {
			merged.Merge(aggs[i])
		}
		got, err := merged.Snapshot(c.PathMatrix().Identify()).MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d (%d shards): shuffled aggregation differs", trial, shards)
		}
	}
}

// TestIdentifiabilityStructure pins the path-matrix construction over
// the synthetic topology: every non-starved ISP observed and
// identifiable, the starved one unobserved, transit/server segments
// distinguishable once every server is covered.
func TestIdentifiabilityStructure(t *testing.T) {
	c := NewCampaign("gt", groundTruthSpec())
	idents := c.PathMatrix().Identify()
	byID := make(map[string]int, len(idents))
	for i, e := range idents {
		byID[e.ID] = i
	}
	for isp := 0; isp < 12; isp++ {
		e := idents[byID[ISPSegment(isp)]]
		if isp == 7 {
			if e.Observed || e.Identifiable {
				t.Errorf("starved %s = %+v; want unobserved", e.ID, e)
			}
			continue
		}
		if !e.Identifiable {
			t.Errorf("%s = %+v; want identifiable", e.ID, e)
		}
	}
	// 11 active ISPs × 8 servers = 88 distinct routes.
	topo := c.Topology()
	e := idents[byID[TransitSegment(0)]]
	if !e.Identifiable {
		t.Errorf("transit-0 = %+v; want identifiable (both its servers covered)", e)
	}
	if topo.TransitASes != 4 || topo.Servers != 8 {
		t.Fatalf("unexpected topology defaults: %+v", topo)
	}
}

// TestJobSpecsValidAndFaithful: rendered job specs pass service
// validation and encode the plan faithfully.
func TestJobSpecsValidAndFaithful(t *testing.T) {
	c := NewCampaign("camp-a", experiments.FleetCampaignSpec{
		ISPs: 4, Servers: 2, ThrottledISPs: []int{1}, StarvedISPs: []int{2},
		Sessions: 12, SeedPool: 3, Seed: 5,
	})
	plan := c.Plan()
	specs := c.JobSpecs()
	if len(specs) != len(plan) {
		t.Fatalf("%d specs for %d sessions", len(specs), len(plan))
	}
	for i, sp := range specs {
		if err := sp.Validate(); err != nil {
			t.Fatalf("spec %d invalid: %v", i, err)
		}
		sess := plan[i]
		if sp.Seed != sess.Spec.Seed || sp.Fleet.Session != sess.Index ||
			sp.Fleet.ISP != sess.ISP || sp.Fleet.Server != sess.Server ||
			sp.Fleet.Campaign != "camp-a" {
			t.Fatalf("spec %d does not match session: %+v vs %+v", i, sp, sess)
		}
		wantPlacement := "noncommon"
		if sess.Throttled {
			wantPlacement = "common"
		}
		if sp.Sim.Placement != wantPlacement || sp.Sim.Duration != sess.Spec.Duration {
			t.Fatalf("spec %d sim payload mismatch: %+v", i, sp.Sim)
		}
	}
	// The plan itself is reproducible.
	if !reflect.DeepEqual(plan, c.Plan()) {
		t.Error("Plan() is not deterministic")
	}
}
