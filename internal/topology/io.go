package topology

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// The TC module's two input tables travel as JSON Lines — one raw
// traceroute record per line, and the annotation table as a single JSON
// object — standing in for the M-Lab BigQuery tables of §3.3.

// WriteRawsJSONL writes raw traceroute records one per line.
func WriteRawsJSONL(w io.Writer, raws []RawTraceroute) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range raws {
		if err := enc.Encode(&raws[i]); err != nil {
			return fmt.Errorf("topology: record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadRawsJSONL reads records written by WriteRawsJSONL.
func ReadRawsJSONL(r io.Reader) ([]RawTraceroute, error) {
	var out []RawTraceroute
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var rec RawTraceroute
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("topology: record %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
}

// WriteAnnotationsJSON writes the annotation table.
func WriteAnnotationsJSON(w io.Writer, ann Annotations) error {
	enc := json.NewEncoder(w)
	return enc.Encode(ann)
}

// ReadAnnotationsJSON reads the annotation table.
func ReadAnnotationsJSON(r io.Reader) (Annotations, error) {
	var ann Annotations
	if err := json.NewDecoder(r).Decode(&ann); err != nil {
		return nil, fmt.Errorf("topology: annotations: %w", err)
	}
	return ann, nil
}
