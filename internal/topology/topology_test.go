package topology

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

// tiny hand-built network: two servers, one transit hop each, an ISP with
// one shared aggregation router, one client.
func tinyAnnotations() Annotations {
	return Annotations{
		"192.0.1.254": {ASN: 9000}, // server A edge
		"192.0.2.254": {ASN: 9001}, // server B edge
		"10.0.0.1":    {ASN: 1000}, // transit A
		"10.1.0.1":    {ASN: 1001}, // transit B
		"172.16.0.1":  {ASN: 6000}, // ISP core 1
		"172.16.0.2":  {ASN: 6000}, // ISP core 2
		"172.16.1.1":  {ASN: 6000}, // ISP agg (convergence)
		"100.64.0.10": {ASN: 6000}, // client
		"100.64.9.10": {ASN: 6000}, // second client, same ISP
	}
}

func rawTrace(server, serverIP string, hops ...string) RawTraceroute {
	raw := RawTraceroute{Server: server, ServerIP: serverIP, DestIP: hops[len(hops)-1], At: time.Now()}
	prev := serverIP
	for _, h := range hops {
		raw.Links = append(raw.Links, Link{FromIP: prev, ToIP: h})
		prev = h
	}
	return raw
}

func TestAnnotateAcceptsCleanTraceroute(t *testing.T) {
	ann := tinyAnnotations()
	raw := rawTrace("mlab-a", "192.0.1.254", "10.0.0.1", "172.16.0.1", "172.16.1.1", "100.64.0.10")
	tr, err := Annotate(&raw, ann)
	if err != nil {
		t.Fatal(err)
	}
	if tr.DestASN != 6000 {
		t.Errorf("DestASN = %d", tr.DestASN)
	}
	if len(tr.HopIPs) != 4 {
		t.Errorf("hops = %v", tr.HopIPs)
	}
	cands := tr.CandidateIntermediates()
	if len(cands) != 2 || cands[0] != "172.16.0.1" || cands[1] != "172.16.1.1" {
		t.Errorf("candidates = %v", cands)
	}
}

func TestAnnotateRejectsICMPFiltered(t *testing.T) {
	ann := tinyAnnotations()
	// Traceroute dies at the transit hop: last hop ASN ≠ dest ASN.
	raw := rawTrace("mlab-a", "192.0.1.254", "10.0.0.1")
	raw.DestIP = "100.64.0.10"
	if _, err := Annotate(&raw, ann); err == nil {
		t.Error("ICMP-filtered traceroute accepted")
	}
}

func TestAnnotateRejectsAliasing(t *testing.T) {
	ann := tinyAnnotations()
	raw := rawTrace("mlab-a", "192.0.1.254", "10.0.0.1", "172.16.0.1", "172.16.1.1", "100.64.0.10")
	// Break continuity: hop 2 answers from another interface.
	raw.Links[2].FromIP = "172.16.0.99"
	if _, err := Annotate(&raw, ann); err == nil {
		t.Error("aliased traceroute accepted")
	}
}

func TestAnnotateRejectsUnannotatedAndEmpty(t *testing.T) {
	ann := tinyAnnotations()
	raw := rawTrace("mlab-a", "192.0.1.254", "10.9.9.9", "100.64.0.10")
	if _, err := Annotate(&raw, ann); err == nil {
		t.Error("unannotated hop accepted")
	}
	empty := RawTraceroute{DestIP: "100.64.0.10"}
	if _, err := Annotate(&empty, ann); err == nil {
		t.Error("empty traceroute accepted")
	}
	noDest := rawTrace("mlab-a", "192.0.1.254", "10.0.0.1", "203.0.113.7")
	if _, err := Annotate(&noDest, ann); err == nil {
		t.Error("unannotated destination accepted")
	}
}

func TestSuitablePairConvergesInsideISP(t *testing.T) {
	ann := tinyAnnotations()
	rawA := rawTrace("mlab-a", "192.0.1.254", "10.0.0.1", "172.16.0.1", "172.16.1.1", "100.64.0.10")
	rawB := rawTrace("mlab-b", "192.0.2.254", "10.1.0.1", "172.16.0.2", "172.16.1.1", "100.64.0.10")
	a, err := Annotate(&rawA, ann)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Annotate(&rawB, ann)
	if err != nil {
		t.Fatal(err)
	}
	conv, ok := SuitablePair(a, b, 6000)
	if !ok {
		t.Fatal("suitable pair rejected")
	}
	if conv != "172.16.1.1" {
		t.Errorf("convergence at %s, want the shared aggregation router", conv)
	}
}

func TestSuitablePairRejectsSharedTransit(t *testing.T) {
	ann := tinyAnnotations()
	// Both paths cross the same transit router (outside the ISP).
	rawA := rawTrace("mlab-a", "192.0.1.254", "10.0.0.1", "172.16.0.1", "172.16.1.1", "100.64.0.10")
	rawB := rawTrace("mlab-b", "192.0.2.254", "10.0.0.1", "172.16.0.2", "172.16.1.1", "100.64.0.10")
	a, _ := Annotate(&rawA, ann)
	b, _ := Annotate(&rawB, ann)
	if _, ok := SuitablePair(a, b, 6000); ok {
		t.Error("pair sharing a transit hop accepted")
	}
}

func TestSuitablePairRejectsNoConvergence(t *testing.T) {
	ann := tinyAnnotations()
	// Paths to two different clients sharing no ISP hop.
	rawA := rawTrace("mlab-a", "192.0.1.254", "10.0.0.1", "172.16.0.1", "172.16.1.1", "100.64.0.10")
	rawB := rawTrace("mlab-b", "192.0.2.254", "10.1.0.1", "172.16.0.2", "100.64.9.10")
	a, _ := Annotate(&rawA, ann)
	b, _ := Annotate(&rawB, ann)
	if _, ok := SuitablePair(a, b, 6000); ok {
		t.Error("non-converging pair accepted")
	}
}

func TestConstructBuildsLookupableDB(t *testing.T) {
	ann := tinyAnnotations()
	raws := []RawTraceroute{
		rawTrace("mlab-a", "192.0.1.254", "10.0.0.1", "172.16.0.1", "172.16.1.1", "100.64.0.10"),
		rawTrace("mlab-b", "192.0.2.254", "10.1.0.1", "172.16.0.2", "172.16.1.1", "100.64.0.10"),
	}
	kept, discarded := AnnotateAll(raws, ann)
	if discarded != 0 || len(kept) != 2 {
		t.Fatalf("kept %d, discarded %d", len(kept), discarded)
	}
	db := Construct(kept)
	if db.Len() != 1 {
		t.Fatalf("DB has %d prefixes", db.Len())
	}
	entry, ok := db.Lookup("100.64.0.10")
	if !ok {
		t.Fatal("client prefix not found")
	}
	// Any client in the same /24 hits the same entry.
	if e2, ok := db.Lookup("100.64.0.200"); !ok || e2 != entry {
		t.Error("same-/24 lookup mismatch")
	}
	if len(entry.Pairs) != 1 {
		t.Fatalf("pairs = %+v", entry.Pairs)
	}
	p := entry.Pairs[0]
	if p.Server1 != "mlab-a" || p.Server2 != "mlab-b" || p.ConvergeIP != "172.16.1.1" {
		t.Errorf("pair = %+v", p)
	}
	if entry.ASN != 6000 {
		t.Errorf("ASN = %d", entry.ASN)
	}
	if _, ok := db.Lookup("not-an-ip"); ok {
		t.Error("garbage IP resolved")
	}
	if _, ok := db.Lookup("203.0.113.1"); ok {
		t.Error("unknown prefix resolved")
	}
}

func TestDBJSONRoundTrip(t *testing.T) {
	ann := tinyAnnotations()
	raws := []RawTraceroute{
		rawTrace("mlab-a", "192.0.1.254", "10.0.0.1", "172.16.0.1", "172.16.1.1", "100.64.0.10"),
		rawTrace("mlab-b", "192.0.2.254", "10.1.0.1", "172.16.0.2", "172.16.1.1", "100.64.0.10"),
	}
	kept, _ := AnnotateAll(raws, ann)
	db := Construct(kept)
	var buf bytes.Buffer
	if err := db.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := ReadDBJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Len() != db.Len() {
		t.Errorf("round trip: %d vs %d", db2.Len(), db.Len())
	}
	if _, err := ReadDBJSON(bytes.NewReader([]byte("["))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestPrefix(t *testing.T) {
	cases := []struct{ ip, want string }{
		{"100.64.3.7", "100.64.3.0/24"},
		{"2001:db8:1:2:3::4", "2001:db8:1::/48"},
	}
	for _, c := range cases {
		got, err := Prefix(c.ip)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Prefix(%s) = %s, want %s", c.ip, got, c.want)
		}
	}
	if _, err := Prefix("nonsense"); err == nil {
		t.Error("garbage IP accepted")
	}
}

func TestSynthesizeAndYield(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := Synthesize(rng, SynthSpec{})
	if len(net.Clients) != 12*25 {
		t.Fatalf("clients = %d", len(net.Clients))
	}
	if len(net.Raws) != len(net.Clients)*3 {
		t.Fatalf("raws = %d", len(net.Raws))
	}
	clientIPs := make([]string, len(net.Clients))
	for i, c := range net.Clients {
		clientIPs[i] = c.IP
	}
	stats, db := Yield(net.Raws, net.Annotations, clientIPs)
	if stats.Clients != len(net.Clients) {
		t.Fatalf("stats.Clients = %d", stats.Clients)
	}
	if stats.Discarded == 0 {
		t.Error("imperfections generated no discards")
	}
	// Shape check against §3.3: roughly half the clients have a complete
	// traceroute; a majority of those have a suitable topology.
	cf, sf := stats.CompleteFraction(), stats.SuitableFraction()
	if cf < 0.3 || cf > 0.95 {
		t.Errorf("complete fraction = %v, expected a middling share", cf)
	}
	if sf < 0.4 || sf > 1 {
		t.Errorf("suitable fraction = %v, expected a majority", sf)
	}
	if db.Len() == 0 {
		t.Error("empty DB")
	}
	// Every admitted pair must be genuinely suitable: convergence inside
	// the client ISP's ASN range.
	for _, e := range db.Entries() {
		for _, p := range e.Pairs {
			if info, ok := net.Annotations[p.ConvergeIP]; !ok || info.ASN != e.ASN {
				t.Fatalf("pair %+v converges outside ISP (ASN %d)", p, e.ASN)
			}
		}
	}
}

func TestRawsJSONLRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := Synthesize(rng, SynthSpec{ISPs: 2, ClientsPerISP: 3})
	var buf bytes.Buffer
	if err := WriteRawsJSONL(&buf, net.Raws); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRawsJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(net.Raws) {
		t.Fatalf("round trip: %d vs %d", len(got), len(net.Raws))
	}
	if got[0].DestIP != net.Raws[0].DestIP || len(got[0].Links) != len(net.Raws[0].Links) {
		t.Error("record mismatch")
	}

	var abuf bytes.Buffer
	if err := WriteAnnotationsJSON(&abuf, net.Annotations); err != nil {
		t.Fatal(err)
	}
	ann, err := ReadAnnotationsJSON(&abuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(ann) != len(net.Annotations) {
		t.Error("annotation round trip size mismatch")
	}
	if _, err := ReadRawsJSONL(bytes.NewReader([]byte("{bad"))); err == nil {
		t.Error("garbage JSONL accepted")
	}
	if _, err := ReadAnnotationsJSON(bytes.NewReader([]byte("["))); err == nil {
		t.Error("garbage annotations accepted")
	}
}

func TestDBMergeAndInvalidate(t *testing.T) {
	mk := func(server1 string) *DB {
		db := NewDB()
		db.byPrefix["100.64.0.0/24"] = &Entry{
			Prefix: "100.64.0.0/24", ASN: 6000,
			Pairs: []ServerPair{{Server1: server1, Server2: "mlab-z", ConvergeIP: "172.16.1.1"}},
		}
		return db
	}
	a := mk("mlab-a")
	b := mk("mlab-b")
	b.byPrefix["100.99.0.0/24"] = &Entry{Prefix: "100.99.0.0/24", ASN: 6001,
		Pairs: []ServerPair{{Server1: "mlab-c", Server2: "mlab-d"}}}

	a.Merge(b)
	if a.Len() != 2 {
		t.Fatalf("merged len = %d", a.Len())
	}
	e, _ := a.Lookup("100.64.0.7")
	if len(e.Pairs) != 2 {
		t.Fatalf("merged pairs = %+v", e.Pairs)
	}
	// Merging the same DB again must not duplicate.
	a.Merge(b)
	e, _ = a.Lookup("100.64.0.7")
	if len(e.Pairs) != 2 {
		t.Fatalf("idempotent merge violated: %+v", e.Pairs)
	}

	// Invalidation removes one pair, then the whole entry.
	a.Invalidate("100.64.0.7", ServerPair{Server1: "mlab-a", Server2: "mlab-z"})
	e, _ = a.Lookup("100.64.0.7")
	if len(e.Pairs) != 1 || e.Pairs[0].Server1 != "mlab-b" {
		t.Fatalf("after invalidate: %+v", e.Pairs)
	}
	a.Invalidate("100.64.0.7", ServerPair{Server1: "mlab-b", Server2: "mlab-z"})
	if _, ok := a.Lookup("100.64.0.7"); ok {
		t.Error("empty entry not removed")
	}
	// No-ops must not panic.
	a.Invalidate("not-an-ip", ServerPair{})
	a.Invalidate("203.0.113.1", ServerPair{})
}
