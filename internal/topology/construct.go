package topology

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ServerPair is a pair of M-Lab server sites whose paths to a destination
// form a suitable Figure-1 topology.
type ServerPair struct {
	Server1 string `json:"server1"`
	Server2 string `json:"server2"`
	// ConvergeIP is one candidate intermediate node the two paths share
	// inside the destination's ISP (evidence of requirement (a) of §3.1).
	ConvergeIP string `json:"converge_ip"`
}

// Entry is one row of the topology database: a destination's prefix and
// ASN plus the server pairs suitable for it.
type Entry struct {
	Prefix string       `json:"prefix"` // /24 or /48
	ASN    uint32       `json:"asn"`
	Pairs  []ServerPair `json:"pairs"`
}

// DB is the topology database produced by the TC module and queried by
// clients before a simultaneous replay.
type DB struct {
	byPrefix map[string]*Entry
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{byPrefix: make(map[string]*Entry)}
}

// Lookup returns the suitable server pairs for a client IP, keyed by its
// /24 (or /48) prefix. The second result reports whether the prefix is
// known.
func (db *DB) Lookup(clientIP string) (*Entry, bool) {
	pfx, err := Prefix(clientIP)
	if err != nil {
		return nil, false
	}
	e, ok := db.byPrefix[pfx]
	return e, ok
}

// Len returns the number of prefixes with at least one suitable pair.
func (db *DB) Len() int { return len(db.byPrefix) }

// Entries returns the rows sorted by prefix (for deterministic output).
func (db *DB) Entries() []*Entry {
	out := make([]*Entry, 0, len(db.byPrefix))
	for _, e := range db.byPrefix {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix < out[j].Prefix })
	return out
}

// WriteJSON streams the database as a JSON array of entries.
func (db *DB) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(db.Entries())
}

// ReadDBJSON loads a database written by WriteJSON.
func ReadDBJSON(r io.Reader) (*DB, error) {
	var entries []*Entry
	if err := json.NewDecoder(r).Decode(&entries); err != nil {
		return nil, fmt.Errorf("topology: %w", err)
	}
	db := NewDB()
	for _, e := range entries {
		db.byPrefix[e.Prefix] = e
	}
	return db, nil
}

// Construct runs the TC algorithm (§3.3 steps 1–4) over a set of usable
// traceroutes and returns the topology database.
//
// For each destination d: collect the traceroutes to d (falling back to
// traceroutes toward the same ASN when none target d directly); identify
// candidate intermediate nodes (hops in d's ASN); and admit every
// traceroute pair from distinct servers that (a) shares at least one
// candidate intermediate node and (b) shares no node outside d's ISP.
// Node identity is plain IP equality — the module deliberately does not
// attempt alias resolution (§3.3).
func Construct(trs []*Traceroute) *DB {
	db := NewDB()
	byDest := make(map[string][]*Traceroute)
	for _, tr := range trs {
		byDest[tr.DestIP] = append(byDest[tr.DestIP], tr)
	}
	// Iterate destinations in sorted order: dedupePairs keeps the first
	// occurrence per server pair, so append order must not depend on map
	// iteration.
	dests := make([]string, 0, len(byDest))
	for d := range byDest {
		dests = append(dests, d)
	}
	sort.Strings(dests)
	for _, dest := range dests {
		direct := byDest[dest]
		// Step 1's fallback (same-ASN traceroutes) applies only when no
		// traceroute targets d at all — i.e. to destinations absent from
		// this loop; a destination with a single usable traceroute gets no
		// topology, which is what keeps the §3.3 suitable fraction below 1.
		candidates := direct
		pairs := suitablePairs(candidates, direct[0].DestASN)
		if len(pairs) == 0 {
			continue
		}
		pfx, err := Prefix(dest)
		if err != nil {
			continue
		}
		entry, ok := db.byPrefix[pfx]
		if !ok {
			entry = &Entry{Prefix: pfx, ASN: direct[0].DestASN}
			db.byPrefix[pfx] = entry
		}
		entry.Pairs = append(entry.Pairs, pairs...)
	}
	// Deduplicate pairs per prefix (multiple destinations can share a /24).
	for _, e := range db.byPrefix {
		e.Pairs = dedupePairs(e.Pairs)
	}
	return db
}

// suitablePairs applies §3.3 step 3 to every pair combination.
func suitablePairs(trs []*Traceroute, destASN uint32) []ServerPair {
	var out []ServerPair
	for i := 0; i < len(trs); i++ {
		for j := i + 1; j < len(trs); j++ {
			a, b := trs[i], trs[j]
			if a.Server == b.Server {
				continue
			}
			if conv, ok := SuitablePair(a, b, destASN); ok {
				s1, s2 := a.Server, b.Server
				if s2 < s1 {
					s1, s2 = s2, s1
				}
				out = append(out, ServerPair{Server1: s1, Server2: s2, ConvergeIP: conv})
			}
		}
	}
	return out
}

// SuitablePair checks whether two traceroutes form a suitable topology for
// a destination in destASN: they must share at least one candidate
// intermediate node (a hop inside destASN) and no node outside destASN.
// It returns one shared in-ISP node as the convergence witness.
//
// It is exported because the replay pipeline re-verifies suitability after
// each simultaneous replay (§3.4 step 4).
func SuitablePair(a, b *Traceroute, destASN uint32) (convergeIP string, ok bool) {
	bHops := make(map[string]uint32, len(b.HopIPs))
	for i, ip := range b.HopIPs {
		bHops[ip] = b.HopASNs[i]
	}
	var converge string
	for i, ip := range a.HopIPs {
		if _, shared := bHops[ip]; !shared {
			continue
		}
		if a.HopASNs[i] != destASN {
			return "", false // common node outside the ISP
		}
		if converge == "" && ip != a.DestIP {
			converge = ip
		}
	}
	if converge == "" {
		return "", false
	}
	return converge, true
}

func dedupePairs(pairs []ServerPair) []ServerPair {
	seen := make(map[string]bool, len(pairs))
	out := pairs[:0]
	for _, p := range pairs {
		k := p.Server1 + "|" + p.Server2
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Server1 != out[j].Server1 {
			return out[i].Server1 < out[j].Server1
		}
		return out[i].Server2 < out[j].Server2
	})
	return out
}

// Merge folds another database into db (the TC module re-runs daily as
// M-Lab publishes new traceroutes; merging keeps prior knowledge while
// adding fresh pairs).
func (db *DB) Merge(other *DB) {
	prefixes := make([]string, 0, len(other.byPrefix))
	for pfx := range other.byPrefix {
		prefixes = append(prefixes, pfx)
	}
	sort.Strings(prefixes)
	for _, pfx := range prefixes {
		e := other.byPrefix[pfx]
		cur, ok := db.byPrefix[pfx]
		if !ok {
			cp := &Entry{Prefix: e.Prefix, ASN: e.ASN, Pairs: append([]ServerPair(nil), e.Pairs...)}
			db.byPrefix[pfx] = cp
			continue
		}
		cur.Pairs = dedupePairs(append(cur.Pairs, e.Pairs...))
	}
}

// Invalidate removes a server pair for a client's prefix — the §3.4 step-4
// reaction when post-replay traceroutes show the topology is no longer
// suitable ("it discards the measurements and updates the topology
// database"). Entries left with no pairs are removed entirely.
func (db *DB) Invalidate(clientIP string, pair ServerPair) {
	pfx, err := Prefix(clientIP)
	if err != nil {
		return
	}
	e, ok := db.byPrefix[pfx]
	if !ok {
		return
	}
	kept := e.Pairs[:0]
	for _, p := range e.Pairs {
		if p.Server1 == pair.Server1 && p.Server2 == pair.Server2 {
			continue
		}
		kept = append(kept, p)
	}
	e.Pairs = kept
	if len(e.Pairs) == 0 {
		delete(db.byPrefix, pfx)
	}
}
