package topology

// YieldStats reports how many clients the TC module can serve — the §3.3
// statistics ("on average, there was at least one complete traceroute for
// 52% of WeHe clients, and at least one suitable topology for 74% of these
// clients").
type YieldStats struct {
	Clients                int // clients observed in the dataset
	WithCompleteTraceroute int // clients with ≥1 usable traceroute
	WithSuitableTopology   int // of those, clients with ≥1 suitable pair
	Discarded              int // traceroutes dropped by the §3.3 filters
}

// CompleteFraction returns WithCompleteTraceroute / Clients.
func (y YieldStats) CompleteFraction() float64 {
	if y.Clients == 0 {
		return 0
	}
	return float64(y.WithCompleteTraceroute) / float64(y.Clients)
}

// SuitableFraction returns WithSuitableTopology / WithCompleteTraceroute.
func (y YieldStats) SuitableFraction() float64 {
	if y.WithCompleteTraceroute == 0 {
		return 0
	}
	return float64(y.WithSuitableTopology) / float64(y.WithCompleteTraceroute)
}

// Yield runs the full TC pipeline over a dataset (annotate+filter, then
// construct) and computes the per-client statistics. The clients slice
// enumerates the population (clients with zero usable traceroutes still
// count in the denominator).
func Yield(raws []RawTraceroute, ann Annotations, clients []string) (YieldStats, *DB) {
	kept, discarded := AnnotateAll(raws, ann)
	db := Construct(kept)

	haveComplete := make(map[string]bool, len(kept))
	for _, tr := range kept {
		haveComplete[tr.DestIP] = true
	}
	stats := YieldStats{Clients: len(clients), Discarded: discarded}
	for _, c := range clients {
		if !haveComplete[c] {
			continue
		}
		stats.WithCompleteTraceroute++
		if e, ok := db.Lookup(c); ok && len(e.Pairs) > 0 {
			stats.WithSuitableTopology++
		}
	}
	return stats, db
}
