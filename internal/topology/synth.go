package topology

import (
	"fmt"
	"math/rand"
	"time"
)

// SynthSpec parameterizes the synthetic Internet that stands in for the
// M-Lab traceroute dataset (see DESIGN.md §1). The generated topology has
// M-Lab-style server sites homed behind transit ASes, access ISPs with
// core and aggregation routers, and clients behind aggregation routers.
// The imperfections the TC module must filter are generated explicitly:
// ISPs that blackhole ICMP near the client (violating condition (a)), IP
// aliasing (violating condition (b)), and truncated traceroutes.
type SynthSpec struct {
	ISPs            int     // access ISPs (default 12)
	ClientsPerISP   int     // default 25
	Servers         int     // M-Lab server sites (default 8)
	TransitASes     int     // default 4
	CoresPerISP     int     // default 3
	AggsPerISP      int     // default 6
	TracesPerClient int     // traceroutes from distinct servers (default 3)
	PICMPBlockISP   float64 // P(an ISP filters ICMP near clients) (default 0.25)
	PAlias          float64 // P(a traceroute hits an aliased interface) (default 0.2)
	PTruncate       float64 // P(a traceroute loses its tail) (default 0.15)
	Start           time.Time
}

func (s *SynthSpec) fill() {
	if s.ISPs <= 0 {
		s.ISPs = 12
	}
	if s.ClientsPerISP <= 0 {
		s.ClientsPerISP = 25
	}
	if s.Servers <= 0 {
		s.Servers = 8
	}
	if s.TransitASes <= 0 {
		s.TransitASes = 4
	}
	if s.CoresPerISP <= 0 {
		s.CoresPerISP = 3
	}
	if s.AggsPerISP <= 0 {
		s.AggsPerISP = 6
	}
	if s.TracesPerClient <= 0 {
		s.TracesPerClient = 3
	}
	//lint:ignore floateq exact sentinel: zero selects the default probability
	if s.PICMPBlockISP == 0 {
		s.PICMPBlockISP = 0.45
	}
	//lint:ignore floateq exact sentinel: zero selects the default probability
	if s.PAlias == 0 {
		s.PAlias = 0.25
	}
	//lint:ignore floateq exact sentinel: zero selects the default probability
	if s.PTruncate == 0 {
		s.PTruncate = 0.25
	}
	if s.Start.IsZero() {
		s.Start = time.Date(2023, 4, 1, 0, 0, 0, 0, time.UTC)
	}
}

// Filled returns a copy of the spec with defaults applied, so other
// packages (internal/fleet's identifiability pass) can derive path sets
// from the same topology parameters Synthesize would use.
func (s SynthSpec) Filled() SynthSpec {
	s.fill()
	return s
}

// Client is one synthetic client with its ground truth.
type Client struct {
	IP  string
	ISP int // index of its access ISP
	Agg int // aggregation router index within the ISP
}

// SynthNet is the generated dataset plus ground truth for evaluating the
// TC module.
type SynthNet struct {
	Spec        SynthSpec
	Raws        []RawTraceroute
	Annotations Annotations
	Clients     []Client
	ISPASNs     []uint32
}

const (
	transitASNBase = 1000
	ispASNBase     = 6000
	serverASNBase  = 9000
)

// Synthesize builds the synthetic Internet and a month's worth of
// traceroute records over it.
func Synthesize(rng *rand.Rand, spec SynthSpec) *SynthNet {
	spec.fill()
	net := &SynthNet{Spec: spec, Annotations: make(Annotations)}

	// Transit routers: each transit AS has 3 routers.
	transitRouters := make([][]string, spec.TransitASes)
	for t := range transitRouters {
		asn := uint32(transitASNBase + t)
		for r := 0; r < 3; r++ {
			ip := fmt.Sprintf("10.%d.%d.1", t, r)
			transitRouters[t] = append(transitRouters[t], ip)
			net.Annotations[ip] = HopInfo{ASN: asn, Geo: fmt.Sprintf("transit-%d", t)}
		}
	}

	// ISP routers: cores and aggregations, plus alias interfaces for each.
	ispCores := make([][]string, spec.ISPs)
	ispAggs := make([][]string, spec.ISPs)
	ispBlocksICMP := make([]bool, spec.ISPs)
	aliasOf := make(map[string]string) // primary IP → alternate interface IP
	for i := 0; i < spec.ISPs; i++ {
		asn := uint32(ispASNBase + i)
		net.ISPASNs = append(net.ISPASNs, asn)
		ispBlocksICMP[i] = rng.Float64() < spec.PICMPBlockISP
		for c := 0; c < spec.CoresPerISP; c++ {
			ip := fmt.Sprintf("172.%d.0.%d", 16+i, c+1)
			alias := fmt.Sprintf("172.%d.100.%d", 16+i, c+1)
			ispCores[i] = append(ispCores[i], ip)
			net.Annotations[ip] = HopInfo{ASN: asn, Geo: fmt.Sprintf("isp-%d-core", i)}
			net.Annotations[alias] = HopInfo{ASN: asn, Geo: fmt.Sprintf("isp-%d-core", i)}
			aliasOf[ip] = alias
		}
		for a := 0; a < spec.AggsPerISP; a++ {
			ip := fmt.Sprintf("172.%d.1.%d", 16+i, a+1)
			ispAggs[i] = append(ispAggs[i], ip)
			net.Annotations[ip] = HopInfo{ASN: asn, Geo: fmt.Sprintf("isp-%d-agg", i)}
		}
	}

	// Server sites, each homed behind one transit AS.
	serverEdge := make([]string, spec.Servers)
	serverTransit := make([]int, spec.Servers)
	serverNames := make([]string, spec.Servers)
	for s := 0; s < spec.Servers; s++ {
		asn := uint32(serverASNBase + s)
		ip := fmt.Sprintf("192.0.%d.1", s+1)
		serverEdge[s] = fmt.Sprintf("192.0.%d.254", s+1)
		serverTransit[s] = s % spec.TransitASes
		serverNames[s] = fmt.Sprintf("mlab-%02d", s)
		net.Annotations[ip] = HopInfo{ASN: asn, Geo: serverNames[s]}
		net.Annotations[serverEdge[s]] = HopInfo{ASN: asn, Geo: serverNames[s]}
	}

	// Clients.
	for i := 0; i < spec.ISPs; i++ {
		asn := uint32(ispASNBase + i)
		for c := 0; c < spec.ClientsPerISP; c++ {
			// one /24 per client, as real clients scatter across prefixes
			ip := fmt.Sprintf("100.%d.%d.10", 64+i, c)
			agg := rng.Intn(spec.AggsPerISP)
			net.Clients = append(net.Clients, Client{IP: ip, ISP: i, Agg: agg})
			net.Annotations[ip] = HopInfo{ASN: asn, Geo: fmt.Sprintf("isp-%d-client", i)}
		}
	}

	// Traceroutes: each client is measured from TracesPerClient distinct
	// servers over the month.
	for _, cl := range net.Clients {
		perm := rng.Perm(spec.Servers)
		for k := 0; k < spec.TracesPerClient && k < spec.Servers; k++ {
			s := perm[k]
			path := buildPath(rng, s, cl, serverEdge, serverTransit, transitRouters, ispCores, ispAggs)
			raw := RawTraceroute{
				Server:   serverNames[s],
				ServerIP: fmt.Sprintf("192.0.%d.1", s+1),
				DestIP:   cl.IP,
				At:       spec.Start.Add(time.Duration(rng.Intn(30*24)) * time.Hour),
			}
			raw.Links = pathToLinks(path)
			// Imperfection 1: the ISP filters ICMP toward its clients — the
			// traceroute dies before crossing the ISP border, so its last
			// hop sits in a transit AS and condition (a) rejects it.
			if ispBlocksICMP[cl.ISP] {
				cut := 1 + rng.Intn(2) // last answered hop is a transit router
				if cut > len(raw.Links) {
					cut = len(raw.Links)
				}
				raw.Links = raw.Links[:cut]
			} else if rng.Float64() < spec.PTruncate {
				// Imperfection 2: random tail truncation (rate limiting,
				// transient loss of probe responses).
				cut := 1 + rng.Intn(len(raw.Links)-1)
				raw.Links = raw.Links[:cut]
			}
			// Imperfection 3: IP aliasing — a core router answers one probe
			// with its other interface, breaking link continuity.
			if rng.Float64() < spec.PAlias {
				aliasLinks(raw.Links, aliasOf)
			}
			net.Raws = append(net.Raws, raw)
		}
	}
	return net
}

// buildPath constructs the hop sequence from server s to client cl:
// server edge → transit routers → ISP core (one or two) → aggregation →
// client. Which core the path enters through depends on the transit AS, so
// two servers behind different transit ASes converge at the aggregation
// router (inside the ISP), while servers behind the same transit AS share
// transit hops (outside the ISP — an unsuitable pair).
func buildPath(rng *rand.Rand, s int, cl Client, serverEdge []string, serverTransit []int,
	transitRouters [][]string, ispCores, ispAggs [][]string) []string {
	t := serverTransit[s]
	core := ispCores[cl.ISP][t%len(ispCores[cl.ISP])]
	path := []string{serverEdge[s]}
	path = append(path, transitRouters[t][0], transitRouters[t][1+rng.Intn(2)])
	path = append(path, core)
	// Occasionally the route crosses a second core before the aggregation.
	if rng.Float64() < 0.3 {
		other := ispCores[cl.ISP][(t+1)%len(ispCores[cl.ISP])]
		path = append(path, other)
	}
	path = append(path, ispAggs[cl.ISP][cl.Agg], cl.IP)
	return path
}

func pathToLinks(path []string) []Link {
	links := make([]Link, 0, len(path)-1)
	for i := 1; i < len(path); i++ {
		links = append(links, Link{FromIP: path[i-1], ToIP: path[i]})
	}
	return links
}

// aliasLinks rewrites one router's "From" interface to its alias, breaking
// continuity with the preceding link's "To".
func aliasLinks(links []Link, aliasOf map[string]string) {
	for i := 1; i < len(links); i++ {
		if alias, ok := aliasOf[links[i].FromIP]; ok {
			links[i].FromIP = alias
			return
		}
	}
}
