// Package topology implements WeHeY's topology-construction (TC) module
// (§3.3): it ingests traceroute records annotated with per-hop ASN and
// geolocation data (the stand-in for M-Lab's scamper + annotation BigQuery
// tables), filters out unusable traceroutes, and finds, for every client,
// pairs of servers whose paths to the client converge exactly once —
// inside the client's ISP. The resulting {destination, server pair} tuples
// form the topology database that the client queries before a simultaneous
// replay (§3.4).
package topology

import (
	"fmt"
	"net/netip"
	"time"
)

// HopInfo is the per-IP annotation merged from the second input table
// (MaxMind / IPinfo.io / RouteViews in the real pipeline).
type HopInfo struct {
	ASN uint32 `json:"asn"`
	Geo string `json:"geo,omitempty"`
}

// Annotations maps hop IPs to their annotations.
type Annotations map[string]HopInfo

// Link is one link reported by a scamper-style traceroute: a probe
// response pair (from, to). Consecutive links of a clean traceroute chain:
// link[i].To == link[i+1].From; IP aliasing breaks that equality because a
// router may answer with different interface addresses.
type Link struct {
	FromIP string `json:"from"`
	ToIP   string `json:"to"`
}

// RawTraceroute is one record of the first input table.
type RawTraceroute struct {
	Server   string    `json:"server"` // M-Lab server site name
	ServerIP string    `json:"server_ip"`
	DestIP   string    `json:"dest_ip"`
	At       time.Time `json:"at"`
	Links    []Link    `json:"links"`
}

// Traceroute is an annotated, validated traceroute: the merge of a raw
// record with the annotation table, after passing the §3.3 filters.
type Traceroute struct {
	Server   string
	ServerIP string
	DestIP   string
	DestASN  uint32
	At       time.Time
	HopIPs   []string // in path order, ending at (or inside) the dest ASN
	HopASNs  []uint32 // aligned with HopIPs
}

// Annotate merges a raw traceroute with the annotation table and applies
// the two validity conditions of §3.3:
//
//	(a) the last reported hop has the same ASN as the destination (an ISP
//	    blocking ICMP near the client violates this);
//	(b) two subsequent links always meet at the same IP address (IP
//	    aliasing violates this).
//
// A nil error means the traceroute is usable.
func Annotate(raw *RawTraceroute, ann Annotations) (*Traceroute, error) {
	if len(raw.Links) == 0 {
		return nil, fmt.Errorf("topology: traceroute %s→%s has no links", raw.Server, raw.DestIP)
	}
	destInfo, ok := ann[raw.DestIP]
	if !ok {
		return nil, fmt.Errorf("topology: destination %s not annotated", raw.DestIP)
	}
	// Condition (b): link continuity.
	for i := 1; i < len(raw.Links); i++ {
		if raw.Links[i].FromIP != raw.Links[i-1].ToIP {
			return nil, fmt.Errorf("topology: link discontinuity at hop %d (%s != %s): IP aliasing",
				i, raw.Links[i].FromIP, raw.Links[i-1].ToIP)
		}
	}
	tr := &Traceroute{
		Server:   raw.Server,
		ServerIP: raw.ServerIP,
		DestIP:   raw.DestIP,
		DestASN:  destInfo.ASN,
		At:       raw.At,
	}
	for i, l := range raw.Links {
		ip := l.ToIP
		info, ok := ann[ip]
		if !ok {
			return nil, fmt.Errorf("topology: hop %s not annotated", ip)
		}
		tr.HopIPs = append(tr.HopIPs, ip)
		tr.HopASNs = append(tr.HopASNs, info.ASN)
		_ = i
	}
	// Condition (a): the last reported hop must be in the destination ASN.
	if tr.HopASNs[len(tr.HopASNs)-1] != destInfo.ASN {
		return nil, fmt.Errorf("topology: last hop ASN %d != destination ASN %d (ICMP filtered?)",
			tr.HopASNs[len(tr.HopASNs)-1], destInfo.ASN)
	}
	return tr, nil
}

// AnnotateAll merges and filters a batch, returning the usable traceroutes
// and the number discarded.
func AnnotateAll(raws []RawTraceroute, ann Annotations) (kept []*Traceroute, discarded int) {
	for i := range raws {
		tr, err := Annotate(&raws[i], ann)
		if err != nil {
			discarded++
			continue
		}
		kept = append(kept, tr)
	}
	return kept, discarded
}

// CandidateIntermediates returns the hops of tr located in the destination
// ASN — the nodes where two paths could suitably converge (§3.3 step 2).
func (tr *Traceroute) CandidateIntermediates() []string {
	var out []string
	for i, asn := range tr.HopASNs {
		if asn == tr.DestASN && tr.HopIPs[i] != tr.DestIP {
			out = append(out, tr.HopIPs[i])
		}
	}
	return out
}

// Prefix returns the destination's topology-database key: the /24 for IPv4
// destinations and the /48 for IPv6 (§3.3).
func Prefix(ip string) (string, error) {
	addr, err := netip.ParseAddr(ip)
	if err != nil {
		return "", fmt.Errorf("topology: %w", err)
	}
	bits := 24
	if addr.Is6() && !addr.Is4In6() {
		bits = 48
	}
	p, err := addr.Prefix(bits)
	if err != nil {
		return "", fmt.Errorf("topology: %w", err)
	}
	return p.String(), nil
}
