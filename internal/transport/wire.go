// Package transport implements a reliable, congestion-controlled transport
// over real UDP sockets — the network stack of WeHeY's loopback testbed
// (the stand-in for the paper's wide-area GCP testbed, §6.2).
//
// Replay servers send trace bytes through it; a middlebox (see
// internal/testbed) drops and delays the datagrams with the same
// classifier+TBF pipeline as the paper's tc-based rate limiter; and the
// sender estimates packet loss from its own retransmission decisions,
// exactly as WeHeY's servers do for TCP traffic (§3.4). The transport also
// provides an unreliable datagram mode for UDP trace replays, where the
// receiver detects loss from sequence gaps.
//
// The congestion controller mirrors internal/netsim's TCP model: Reno-style
// AIMD with per-packet ACKs, a 3-packets-later loss inference, RFC
// 6298-style RTO with go-back-N recovery, and pacing.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Packet types on the wire.
const (
	typeData    = 1 // reliable data segment (expects ACK)
	typeAck     = 2 // acknowledgment echoing seq, stamp, rtx flag
	typeFin     = 3 // end of transfer
	typeFinAck  = 4
	typeDgram   = 5 // unreliable datagram (UDP replay mode)
	typeHello   = 6 // control-channel hello carrying flow metadata
	maxWireType = typeHello
)

// header flags.
const (
	flagRetransmission = 1 << 0
)

const (
	wireMagic  = 0x5759 // "WY"
	headerSize = 2 + 1 + 1 + 4 + 8 + 8 + 2
	// MaxPayload bounds a datagram's payload (headerSize + MaxPayload stays
	// well under common MTUs; loopback allows much more).
	MaxPayload = 1400
)

// ErrBadPacket reports an unparseable wire packet.
var ErrBadPacket = errors.New("transport: bad packet")

// HelloPacket builds the client's path-opening datagram: middleboxes and
// NATs learn the client's address from it before any data flows.
func HelloPacket(connID uint32) []byte {
	h := header{Type: typeHello, Conn: connID}
	return h.marshal(make([]byte, 0, headerSize))
}

// HeaderSize is the fixed wire-header length, exported for DPI-style
// consumers that skip it when scanning payloads.
const HeaderSize = headerSize

// header is the fixed wire header:
//
//	magic u16 | type u8 | flags u8 | conn u32 | seq u64 | stamp i64 | len u16
//
// stamp is the sender's monotonic-ish nanosecond clock, echoed verbatim in
// ACKs for RTT estimation (Karn-safe: retransmissions set a fresh stamp and
// the flag suppresses sampling).
type header struct {
	Type  uint8
	Flags uint8
	Conn  uint32
	Seq   uint64
	Stamp int64
	Len   uint16
}

func (h *header) marshal(buf []byte) []byte {
	buf = buf[:0]
	buf = binary.BigEndian.AppendUint16(buf, wireMagic)
	buf = append(buf, h.Type, h.Flags)
	buf = binary.BigEndian.AppendUint32(buf, h.Conn)
	buf = binary.BigEndian.AppendUint64(buf, h.Seq)
	buf = binary.BigEndian.AppendUint64(buf, uint64(h.Stamp))
	buf = binary.BigEndian.AppendUint16(buf, h.Len)
	return buf
}

func parseHeader(b []byte) (header, []byte, error) {
	var h header
	if len(b) < headerSize {
		return h, nil, fmt.Errorf("%w: %d bytes", ErrBadPacket, len(b))
	}
	if binary.BigEndian.Uint16(b) != wireMagic {
		return h, nil, fmt.Errorf("%w: bad magic", ErrBadPacket)
	}
	h.Type = b[2]
	h.Flags = b[3]
	h.Conn = binary.BigEndian.Uint32(b[4:])
	h.Seq = binary.BigEndian.Uint64(b[8:])
	h.Stamp = int64(binary.BigEndian.Uint64(b[16:]))
	h.Len = binary.BigEndian.Uint16(b[24:])
	if h.Type == 0 || h.Type > maxWireType {
		return h, nil, fmt.Errorf("%w: type %d", ErrBadPacket, h.Type)
	}
	payload := b[headerSize:]
	if int(h.Len) > len(payload) {
		return h, nil, fmt.Errorf("%w: truncated payload (%d > %d)", ErrBadPacket, h.Len, len(payload))
	}
	return h, payload[:h.Len], nil
}
