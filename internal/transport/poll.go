package transport

import (
	"context"
	"net"
	"time"
)

// DefaultPollInterval is the read-deadline granularity the serve loops use
// when the caller does not set one. It used to double as the worst-case
// shutdown latency; since serve loops break their blocking read the moment
// their context ends, it only bounds the steady-state wakeup rate.
const DefaultPollInterval = 50 * time.Millisecond

// pollInterval applies the default to an unset (non-positive) interval.
func pollInterval(d time.Duration) time.Duration {
	if d <= 0 {
		return DefaultPollInterval
	}
	return d
}

// breakReadOnDone makes ctx cancellation prompt for a deadline-polled read
// loop: the moment ctx ends, the connection's read deadline is pulled into
// the past, which unblocks an in-flight Read with a timeout error. The
// returned stop function releases the watcher and must be called when the
// loop exits.
//
// The serve loops re-arm their deadline every iteration, so a loop must
// re-check ctx after arming: if cancellation lands between the loop's
// ctx check and its SetReadDeadline, the fresh deadline would otherwise
// overwrite the break-out and the loop would sleep one full poll interval.
func breakReadOnDone(ctx context.Context, conn *net.UDPConn) func() bool {
	return context.AfterFunc(ctx, func() {
		conn.SetReadDeadline(time.Unix(1, 0)) // a failed deadline rewind degrades to the poll-interval timeout
	})
}
