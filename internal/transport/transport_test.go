package transport

import (
	"context"
	"math/rand"
	"net"
	"testing"
	"time"

	"github.com/nal-epfl/wehey/internal/trace"
)

// udpPair creates two loopback sockets connected to each other.
func udpPair(t *testing.T) (a, b *net.UDPConn) {
	t.Helper()
	// Reserve an ephemeral port for b, release it, then connect a toward
	// it and bind b onto it connected back to a.
	tmp, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	bAddr := tmp.LocalAddr().(*net.UDPAddr)
	tmp.Close()
	a, err = net.DialUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)}, bAddr)
	if err != nil {
		t.Fatal(err)
	}
	b, err = net.DialUDP("udp", bAddr, a.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestHeaderRoundTrip(t *testing.T) {
	h := header{Type: typeData, Flags: flagRetransmission, Conn: 7, Seq: 42, Stamp: 123456789, Len: 3}
	buf := h.marshal(nil)
	buf = append(buf, 1, 2, 3)
	got, payload, err := parseHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("header = %+v, want %+v", got, h)
	}
	if len(payload) != 3 || payload[0] != 1 {
		t.Errorf("payload = %v", payload)
	}
}

func TestHeaderRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		make([]byte, 5),
		make([]byte, headerSize), // zero magic
	}
	for i, c := range cases {
		if _, _, err := parseHeader(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Bad type.
	h := header{Type: 99}
	if _, _, err := parseHeader(h.marshal(nil)); err == nil {
		t.Error("bad type accepted")
	}
	// Truncated payload.
	h = header{Type: typeData, Len: 10}
	if _, _, err := parseHeader(h.marshal(nil)); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestReliableTransferLoopback(t *testing.T) {
	serverConn, clientConn := udpPair(t)
	sender := NewSender(serverConn, SenderConfig{ConnID: 1, Hello: []byte("netflix-handshake")})
	receiver := NewReceiver(clientConn)

	rctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- receiver.Serve(rctx) }()

	const total = 512 * 1024
	ctx, tcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer tcancel()
	if err := sender.Transfer(ctx, total); err != nil {
		t.Fatalf("Transfer: %v", err)
	}
	cancel()
	<-done

	if got := receiver.DeliveredBytes(); got < total || got > total+int64(sender.cfg.Segment) {
		t.Errorf("delivered %d, want ≈%d", got, total)
	}
	if sender.RtxCount > sender.TxCount/10 {
		t.Errorf("excessive retransmissions on loopback: %d/%d", sender.RtxCount, sender.TxCount)
	}
	if len(sender.RTTSamples) == 0 {
		t.Error("no RTT samples")
	}
	// Hello bytes must be in segment 0's payload (DPI visibility).
	ds := receiver.Deliveries()
	if len(ds) == 0 {
		t.Fatal("no deliveries")
	}
}

func TestReliableTransferDeadline(t *testing.T) {
	serverConn, clientConn := udpPair(t)
	sender := NewSender(serverConn, SenderConfig{ConnID: 2})
	receiver := NewReceiver(clientConn)

	rctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go receiver.Serve(rctx) // serve ends with the test context

	ctx, tcancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer tcancel()
	err := sender.Transfer(ctx, 0) // unlimited
	if err != context.DeadlineExceeded {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
	if sender.TxCount == 0 {
		t.Error("nothing transmitted before the deadline")
	}
}

func TestSenderMeasurementsShape(t *testing.T) {
	serverConn, clientConn := udpPair(t)
	sender := NewSender(serverConn, SenderConfig{ConnID: 3})
	receiver := NewReceiver(clientConn)
	rctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go receiver.Serve(rctx) // serve ends with the test context
	ctx, tcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer tcancel()
	if err := sender.Transfer(ctx, 64*1024); err != nil {
		t.Fatal(err)
	}
	m := sender.Measurements(time.Second, 20*time.Millisecond)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Tx) != int(sender.TxCount) {
		t.Errorf("Tx log %d, TxCount %d", len(m.Tx), sender.TxCount)
	}
}

func TestDatagramReplayLoopback(t *testing.T) {
	serverConn, clientConn := udpPair(t)
	tr, err := trace.Generate("zoom", rand.New(rand.NewSource(1)), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sender := NewDgramSender(serverConn, 4)
	receiver := NewDgramReceiver(clientConn)

	rctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go receiver.Serve(rctx) // serve ends with the test context

	ctx, tcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer tcancel()
	if err := sender.Replay(ctx, tr); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	cancel()
	receiver.Finish(sender.Sent(), 2*time.Second)

	want := int64(tr.Count(trace.ServerToClient))
	if sender.Sent() != want {
		t.Errorf("sent %d, want %d", sender.Sent(), want)
	}
	if receiver.RecvCount != want {
		t.Errorf("received %d, want %d (loopback, no loss)", receiver.RecvCount, want)
	}
	if len(receiver.LossLog) != 0 {
		t.Errorf("loss log %d on loopback", len(receiver.LossLog))
	}
	m := receiver.Measurements(sender.Measurements(2*time.Second, time.Millisecond).Tx, 2*time.Second, time.Millisecond)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHelloPacketParses(t *testing.T) {
	h, _, err := parseHeader(HelloPacket(9))
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != typeHello || h.Conn != 9 {
		t.Errorf("hello = %+v", h)
	}
}
