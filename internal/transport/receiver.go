package transport

import (
	"context"
	"net"
	"sync"
	"time"

	"github.com/nal-epfl/wehey/internal/measure"
)

// Receiver is the client side of a reliable transfer: it acknowledges every
// data packet and records application-level delivery events (unique bytes
// with arrival times), from which WeHe-style throughput samples are binned.
type Receiver struct {
	conn *net.UDPConn

	// PollInterval bounds how long Serve blocks in one read before
	// re-arming its deadline (0 = DefaultPollInterval). Cancellation no
	// longer waits out a poll — Serve breaks the blocking read the moment
	// its context ends — so this only tunes the steady-state wakeup rate.
	PollInterval time.Duration

	mu        sync.Mutex
	start     time.Time
	seen      map[uint64]bool
	Delivered []measure.Delivery
	DupCount  int64
	FinSeen   bool
}

// NewReceiver wraps a connected UDP socket.
func NewReceiver(conn *net.UDPConn) *Receiver {
	return &Receiver{conn: conn, seen: make(map[uint64]bool)}
}

// Serve acknowledges data until the context ends or a FIN arrives.
func (r *Receiver) Serve(ctx context.Context) error {
	r.mu.Lock()
	r.start = time.Now()
	r.mu.Unlock()
	buf := make([]byte, 65536)
	out := make([]byte, 0, headerSize)
	poll := pollInterval(r.PollInterval)
	defer breakReadOnDone(ctx, r.conn)()
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		r.conn.SetReadDeadline(time.Now().Add(poll)) // failed deadline arming surfaces as a read timeout on the next loop
		if ctx.Err() != nil {
			return nil // cancellation raced the re-arm; don't wait out the poll
		}
		n, err := r.conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return err
		}
		h, payload, err := parseHeader(buf[:n])
		if err != nil {
			continue
		}
		switch h.Type {
		case typeData:
			r.mu.Lock()
			if !r.seen[h.Seq] {
				r.seen[h.Seq] = true
				r.Delivered = append(r.Delivered, measure.Delivery{
					At:    time.Since(r.start),
					Bytes: len(payload),
				})
			} else {
				r.DupCount++
			}
			r.mu.Unlock()
			ack := header{Type: typeAck, Flags: h.Flags, Conn: h.Conn, Seq: h.Seq, Stamp: h.Stamp}
			out = ack.marshal(out)
			r.conn.Write(out) // ack sends are fire-and-forget; the sender retransmits
		case typeFin:
			r.mu.Lock()
			r.FinSeen = true
			r.mu.Unlock()
			ack := header{Type: typeFinAck, Conn: h.Conn, Stamp: h.Stamp}
			out = ack.marshal(out)
			r.conn.Write(out) // ack sends are fire-and-forget; the sender retransmits
			return nil
		}
	}
}

// Deliveries returns a copy of the recorded arrivals.
func (r *Receiver) Deliveries() []measure.Delivery {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]measure.Delivery(nil), r.Delivered...)
}

// DeliveredBytes totals the unique bytes received.
func (r *Receiver) DeliveredBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for _, d := range r.Delivered {
		total += int64(d.Bytes)
	}
	return total
}
