package transport

import (
	"context"
	"testing"
	"time"
)

// The serve loops must return promptly on context cancellation even when
// the poll interval is enormous: the service layer tears sessions down on
// job cancellation and must not wait out a read deadline.
func TestReceiverCancellationPrompt(t *testing.T) {
	_, clientConn := udpPair(t)
	r := NewReceiver(clientConn)
	r.PollInterval = time.Hour

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- r.Serve(ctx) }()
	time.Sleep(20 * time.Millisecond) // let Serve block in its read
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v on cancellation", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return within 2s of cancellation")
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("teardown took %v; cancellation should break the blocking read", waited)
	}
}

func TestDgramReceiverCancellationPrompt(t *testing.T) {
	_, clientConn := udpPair(t)
	r := NewDgramReceiver(clientConn)
	r.PollInterval = time.Hour

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- r.Serve(ctx) }()
	time.Sleep(20 * time.Millisecond)
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v on cancellation", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return within 2s of cancellation")
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("teardown took %v; cancellation should break the blocking read", waited)
	}
}

func TestPollIntervalDefault(t *testing.T) {
	if got := pollInterval(0); got != DefaultPollInterval {
		t.Fatalf("pollInterval(0) = %v, want %v", got, DefaultPollInterval)
	}
	if got := pollInterval(time.Second); got != time.Second {
		t.Fatalf("pollInterval(1s) = %v, want 1s", got)
	}
}
