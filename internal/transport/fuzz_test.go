package transport

import "testing"

// FuzzParseHeader checks that the wire-header parser never panics and that
// accepted headers re-marshal to an equal prefix.
func FuzzParseHeader(f *testing.F) {
	h := header{Type: typeData, Flags: flagRetransmission, Conn: 3, Seq: 9, Stamp: 1234, Len: 2}
	buf := h.marshal(nil)
	buf = append(buf, 0xAA, 0xBB)
	f.Add(buf)
	f.Add(HelloPacket(1))
	f.Add([]byte{})
	f.Add(make([]byte, headerSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, payload, err := parseHeader(data)
		if err != nil {
			return
		}
		if int(got.Len) != len(payload) {
			t.Fatalf("payload length mismatch: %d vs %d", got.Len, len(payload))
		}
		re := got.marshal(nil)
		re = append(re, payload...)
		got2, payload2, err := parseHeader(re)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if got2 != got || len(payload2) != len(payload) {
			t.Fatal("round trip mismatch")
		}
	})
}
