package transport

import (
	"context"
	"net"
	"sync"
	"time"

	"github.com/nal-epfl/wehey/internal/measure"
	"github.com/nal-epfl/wehey/internal/trace"
)

// DgramSender replays a UDP trace's server→client packets over a real UDP
// socket: unreliable, schedule-driven (the trace's offsets, typically
// Poisson-retimed per §3.4).
type DgramSender struct {
	conn *net.UDPConn
	id   uint32

	mu      sync.Mutex
	TxLog   []time.Duration
	TxCount int64
}

// NewDgramSender wraps a connected UDP socket.
func NewDgramSender(conn *net.UDPConn, connID uint32) *DgramSender {
	return &DgramSender{conn: conn, id: connID}
}

// Replay transmits tr's ServerToClient packets at their recorded offsets
// (sleeping between sends), stopping early if ctx ends. Packet 0 carries
// tr's handshake payload when present, so DPI classifiers see the SNI.
func (d *DgramSender) Replay(ctx context.Context, tr *trace.Trace) error {
	start := time.Now()
	seq := uint64(0)
	buf := make([]byte, 0, headerSize+MaxPayload)
	var hello []byte
	if len(tr.Packets) > 0 && tr.Packets[0].Payload != nil {
		hello = tr.Packets[0].Payload
	}
	for i := range tr.Packets {
		p := &tr.Packets[i]
		if p.Dir != trace.ServerToClient {
			continue
		}
		wait := p.Offset - time.Since(start)
		if wait > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wait):
			}
		} else if ctx.Err() != nil {
			return ctx.Err()
		}
		size := p.Size
		if size > MaxPayload {
			size = MaxPayload
		}
		h := header{Type: typeDgram, Conn: d.id, Seq: seq, Stamp: time.Now().UnixNano(), Len: uint16(size)}
		buf = h.marshal(buf)
		payload := make([]byte, size)
		if seq == 0 && hello != nil {
			copy(payload, hello)
		}
		buf = append(buf, payload...)
		d.conn.Write(buf) // datagram sends are fire-and-forget; loss is the measured signal
		d.mu.Lock()
		d.TxLog = append(d.TxLog, time.Since(start))
		d.TxCount++
		d.mu.Unlock()
		seq++
	}
	return nil
}

// Sent returns the number of datagrams transmitted so far.
func (d *DgramSender) Sent() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.TxCount
}

// Measurements converts the sender-side transmission log. The loss log
// lives on the receiver for datagram replays (§3.4: the client tracks UDP
// loss).
func (d *DgramSender) Measurements(dur, rtt time.Duration) measure.Path {
	d.mu.Lock()
	defer d.mu.Unlock()
	return measure.Path{RTT: rtt, Duration: dur, Tx: append([]time.Duration(nil), d.TxLog...)}
}

// DgramReceiver is the client side of a datagram replay: it detects losses
// from sequence gaps, registering each missing packet when the gap becomes
// observable.
type DgramReceiver struct {
	conn *net.UDPConn

	// PollInterval bounds how long Serve blocks in one read before
	// re-arming its deadline (0 = DefaultPollInterval). Cancellation no
	// longer waits out a poll — Serve breaks the blocking read the moment
	// its context ends — so this only tunes the steady-state wakeup rate.
	PollInterval time.Duration

	mu        sync.Mutex
	start     time.Time
	expected  uint64
	Delivered []measure.Delivery
	LossLog   []time.Duration
	RecvCount int64
}

// NewDgramReceiver wraps a connected UDP socket.
func NewDgramReceiver(conn *net.UDPConn) *DgramReceiver {
	return &DgramReceiver{conn: conn}
}

// Serve records arrivals until ctx ends.
func (r *DgramReceiver) Serve(ctx context.Context) error {
	r.mu.Lock()
	r.start = time.Now()
	r.mu.Unlock()
	buf := make([]byte, 65536)
	poll := pollInterval(r.PollInterval)
	defer breakReadOnDone(ctx, r.conn)()
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		r.conn.SetReadDeadline(time.Now().Add(poll)) // failed deadline arming surfaces as a read timeout on the next loop
		if ctx.Err() != nil {
			return nil // cancellation raced the re-arm; don't wait out the poll
		}
		n, err := r.conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return err
		}
		h, payload, err := parseHeader(buf[:n])
		if err != nil || h.Type != typeDgram {
			continue
		}
		now := time.Now()
		r.mu.Lock()
		at := now.Sub(r.start)
		for s := r.expected; s < h.Seq; s++ {
			r.LossLog = append(r.LossLog, at)
		}
		if h.Seq >= r.expected {
			r.expected = h.Seq + 1
		}
		r.RecvCount++
		r.Delivered = append(r.Delivered, measure.Delivery{At: at, Bytes: len(payload)})
		r.mu.Unlock()
	}
}

// Finish registers tail losses given the total number of packets the
// sender scheduled.
func (r *DgramReceiver) Finish(total int64, at time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for s := r.expected; s < uint64(total); s++ {
		r.LossLog = append(r.LossLog, at)
	}
	r.expected = uint64(total)
}

// Measurements merges the sender's transmission log with the client-side
// loss log (the UDP measurement split of §3.4).
func (r *DgramReceiver) Measurements(tx []time.Duration, dur, rtt time.Duration) measure.Path {
	r.mu.Lock()
	defer r.mu.Unlock()
	return measure.Path{
		RTT:      rtt,
		Duration: dur,
		Tx:       append([]time.Duration(nil), tx...),
		Loss:     append([]time.Duration(nil), r.LossLog...),
	}
}

// Deliveries returns a copy of the recorded arrivals.
func (r *DgramReceiver) Deliveries() []measure.Delivery {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]measure.Delivery(nil), r.Delivered...)
}
