package transport

import (
	"context"
	"math"
	"net"
	"sync"
	"time"

	"github.com/nal-epfl/wehey/internal/measure"
)

// SenderConfig parameterizes a reliable transfer. Zero values = defaults.
type SenderConfig struct {
	// Segment is the payload bytes per data packet (default MaxPayload).
	Segment int
	// InitCwnd is the initial window in segments (default 10).
	InitCwnd float64
	// MinRTO bounds the retransmission timeout (default 200 ms).
	MinRTO time.Duration
	// MaxRTO caps exponential backoff (default 4 s — replays last tens of
	// seconds, so a server keeps probing rather than going silent).
	MaxRTO time.Duration
	// InitRTTGuess seeds pacing before the first sample (default 50 ms).
	InitRTTGuess time.Duration
	// Pacing spreads transmissions at cwnd/srtt (default true via
	// NewSender; set Unpaced to disable).
	Unpaced bool
	// ConnID tags the flow on the wire.
	ConnID uint32
	// Hello is sent as the first data payload (the SNI-bearing handshake
	// prefix; the middlebox's DPI classifier inspects it).
	Hello []byte
	// AppRate, when positive, bounds the application's average data
	// release rate in bits/s — a trace replay fed at the recording's
	// natural rate (§3.4) rather than a backlogged bulk transfer. A small
	// initial credit lets congestion control start.
	AppRate float64
}

func (c *SenderConfig) fill() {
	if c.Segment <= 0 || c.Segment > MaxPayload {
		c.Segment = MaxPayload
	}
	if c.InitCwnd <= 0 {
		c.InitCwnd = 10
	}
	if c.MinRTO <= 0 {
		c.MinRTO = 200 * time.Millisecond
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = 4 * time.Second
	}
	if c.InitRTTGuess <= 0 {
		c.InitRTTGuess = 50 * time.Millisecond
	}
}

type sentPkt struct {
	seq      uint64
	sendIdx  uint64
	sentAt   time.Time
	rtx      int
	acked    bool
	lost     bool
	dupCount int
}

// Sender is the server side of a reliable transfer over a connected UDP
// socket. It records the measurement logs WeHeY's server collects: every
// transmission, every loss-event registration (retransmission decision),
// and RTT samples.
type Sender struct {
	conn *net.UDPConn
	cfg  SenderConfig

	mu          sync.Mutex
	start       time.Time
	nextSeq     uint64
	sendIdx     uint64
	inflight    int
	cwnd        float64
	ssthresh    float64
	srtt        time.Duration
	rttvar      time.Duration
	rto         time.Duration
	haveSample  bool
	lastAckAt   time.Time
	lastCutAt   time.Time
	outstanding []*sentPkt
	bySeq       map[uint64]*sentPkt
	rtxQueue    []uint64
	totalSegs   uint64
	ackedSegs   uint64
	nextPaceAt  time.Time

	kick chan struct{}

	// Measurement logs (durations relative to Transfer start).
	TxLog      []time.Duration
	LossLog    []time.Duration
	RTTSamples []time.Duration
	TxCount    int64
	RtxCount   int64
}

// NewSender wraps a connected UDP socket.
func NewSender(conn *net.UDPConn, cfg SenderConfig) *Sender {
	cfg.fill()
	return &Sender{
		conn:     conn,
		cfg:      cfg,
		cwnd:     cfg.InitCwnd,
		ssthresh: math.Inf(1),
		srtt:     cfg.InitRTTGuess,
		rto:      time.Second,
		bySeq:    make(map[uint64]*sentPkt),
		kick:     make(chan struct{}, 1),
	}
}

// Transfer sends totalBytes of data (or as much as fits before ctx ends),
// blocking until everything is acknowledged, the context is done, or the
// deadline passes. totalBytes <= 0 means "until ctx is done".
func (s *Sender) Transfer(ctx context.Context, totalBytes int64) error {
	s.mu.Lock()
	s.start = time.Now()
	s.lastAckAt = s.start
	if totalBytes > 0 {
		s.totalSegs = uint64((totalBytes + int64(s.cfg.Segment) - 1) / int64(s.cfg.Segment))
	} else {
		s.totalSegs = math.MaxUint64
	}
	s.mu.Unlock()

	readerCtx, cancelReader := context.WithCancel(context.Background())
	defer cancelReader()
	readErr := make(chan error, 1)
	go func() { readErr <- s.readAcks(readerCtx) }()

	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		wait, done := s.step()
		if done {
			break
		}
		if wait <= 0 {
			continue
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-ctx.Done():
			s.sendFin()
			cancelReader()
			<-readErr
			return ctx.Err()
		case <-s.kick:
		case <-timer.C:
		}
	}
	s.sendFin()
	cancelReader()
	<-readErr
	return nil
}

// step performs at most one action (transmission or timeout handling) and
// returns how long to wait before the next attempt, plus completion.
func (s *Sender) step() (wait time.Duration, done bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()

	if s.ackedSegs >= s.totalSegs {
		return 0, true
	}

	// RTO check; an unexpired deadline participates in the wait
	// computation below.
	if _, expired := s.rtoDeadlineLocked(now); expired {
		s.timeoutLocked(now)
	}

	// Pacing gate.
	if !s.cfg.Unpaced && now.Before(s.nextPaceAt) {
		return s.minWaitLocked(now), false
	}
	if s.inflight < int(s.cwnd) {
		if sent := s.sendOneLocked(now); sent {
			if !s.cfg.Unpaced {
				s.nextPaceAt = now.Add(s.paceIntervalLocked())
			}
			return 0, false
		}
	}
	return s.minWaitLocked(now), false
}

// appReleasedLocked reports whether the application has released the next
// segment at the configured AppRate.
func (s *Sender) appReleasedLocked(now time.Time) bool {
	if s.cfg.AppRate <= 0 {
		return true
	}
	const initialCredit = 64 * 1024 // bytes available at t=0
	released := int64(s.cfg.AppRate/8*now.Sub(s.start).Seconds()) + initialCredit
	return int64(s.nextSeq)*int64(s.cfg.Segment) < released
}

// minWaitLocked computes the earliest of the pacing and RTO deadlines.
func (s *Sender) minWaitLocked(now time.Time) time.Duration {
	wait := 50 * time.Millisecond // idle fallback
	if s.cfg.AppRate > 0 {
		// Wake when the next segment is released.
		if d := time.Duration(float64(s.cfg.Segment*8) / s.cfg.AppRate * float64(time.Second)); d < wait {
			wait = d
		}
	}
	if !s.cfg.Unpaced && s.nextPaceAt.After(now) {
		if d := s.nextPaceAt.Sub(now); d < wait {
			wait = d
		}
	}
	if deadline, _ := s.rtoDeadlineLocked(now); !deadline.IsZero() {
		if d := deadline.Sub(now); d > 0 && d < wait {
			wait = d
		} else if d <= 0 {
			wait = time.Millisecond
		}
	}
	if wait < 100*time.Microsecond {
		wait = 100 * time.Microsecond
	}
	return wait
}

// rtoDeadlineLocked returns the current timeout deadline and whether it has
// expired. Zero deadline = nothing outstanding.
func (s *Sender) rtoDeadlineLocked(now time.Time) (time.Time, bool) {
	var oldest *sentPkt
	for _, o := range s.outstanding {
		if !o.acked && !o.lost {
			oldest = o
			break
		}
	}
	if oldest == nil {
		return time.Time{}, false
	}
	ref := oldest.sentAt
	if s.lastAckAt.After(ref) {
		ref = s.lastAckAt
	}
	deadline := ref.Add(s.rto)
	return deadline, now.After(deadline)
}

// timeoutLocked implements go-back-N timeout recovery (mirrors netsim).
func (s *Sender) timeoutLocked(now time.Time) {
	fired := false
	for _, o := range s.outstanding {
		if o.acked || o.lost {
			continue
		}
		o.lost = true
		s.inflight--
		s.LossLog = append(s.LossLog, now.Sub(s.start))
		s.rtxQueue = append(s.rtxQueue, o.seq)
		fired = true
	}
	if !fired {
		return
	}
	s.ssthresh = math.Max(s.cwnd/2, 2)
	s.cwnd = 1
	s.rto *= 2
	if s.rto > s.cfg.MaxRTO {
		s.rto = s.cfg.MaxRTO
	}
	s.lastCutAt = now
	s.lastAckAt = now // restart the timer for the retransmissions
}

func (s *Sender) popRtxLocked() *sentPkt {
	for len(s.rtxQueue) > 0 {
		seq := s.rtxQueue[0]
		s.rtxQueue = s.rtxQueue[1:]
		if st := s.bySeq[seq]; st != nil && !st.acked && st.lost {
			return st
		}
	}
	return nil
}

func (s *Sender) sendOneLocked(now time.Time) bool {
	st := s.popRtxLocked()
	if st != nil {
		st.rtx++
		st.lost = false
		st.dupCount = 0
		s.RtxCount++
	} else {
		if s.nextSeq >= s.totalSegs || !s.appReleasedLocked(now) {
			return false
		}
		st = &sentPkt{seq: s.nextSeq}
		s.nextSeq++
		s.bySeq[st.seq] = st
		s.outstanding = append(s.outstanding, st)
	}
	s.sendIdx++
	st.sendIdx = s.sendIdx
	st.sentAt = now
	s.inflight++
	s.TxCount++
	s.TxLog = append(s.TxLog, now.Sub(s.start))

	h := header{Type: typeData, Conn: s.cfg.ConnID, Seq: st.seq, Stamp: now.UnixNano()}
	if st.rtx > 0 {
		h.Flags |= flagRetransmission
	}
	payload := s.payloadFor(st.seq)
	h.Len = uint16(len(payload))
	buf := make([]byte, 0, headerSize+len(payload))
	buf = h.marshal(buf)
	buf = append(buf, payload...)
	s.conn.Write(buf) // datagram sends are fire-and-forget
	return true
}

// payloadFor returns segment seq's bytes: the hello prefix for segment 0
// (DPI-visible), filler afterwards.
func (s *Sender) payloadFor(seq uint64) []byte {
	out := make([]byte, s.cfg.Segment)
	if seq == 0 && len(s.cfg.Hello) > 0 {
		copy(out, s.cfg.Hello)
	}
	return out
}

func (s *Sender) paceIntervalLocked() time.Duration {
	rtt := s.srtt
	if rtt <= 0 {
		rtt = s.cfg.InitRTTGuess
	}
	interval := time.Duration(float64(rtt) / s.cwnd)
	if interval < 20*time.Microsecond {
		interval = 20 * time.Microsecond
	}
	return interval
}

// readAcks processes ACK/FINACK packets until the context is cancelled.
func (s *Sender) readAcks(ctx context.Context) error {
	buf := make([]byte, 65536)
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		s.conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond)) // failed deadline arming surfaces as a read timeout on the next loop
		n, err := s.conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return err
		}
		h, _, err := parseHeader(buf[:n])
		if err != nil || h.Type != typeAck || h.Conn != s.cfg.ConnID {
			continue
		}
		s.handleAck(h)
	}
}

func (s *Sender) handleAck(h header) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	st := s.bySeq[h.Seq]
	if st == nil || st.acked {
		return
	}
	s.lastAckAt = now
	st.acked = true
	s.ackedSegs++
	if !st.lost {
		s.inflight--
	}
	// Karn: sample RTT only for never-retransmitted packets, using the
	// echoed stamp.
	if st.rtx == 0 && h.Flags&flagRetransmission == 0 && h.Stamp > 0 {
		s.addRTTSampleLocked(time.Duration(now.UnixNano() - h.Stamp))
	}
	if s.cwnd < s.ssthresh {
		s.cwnd++
	} else {
		s.cwnd += 1 / s.cwnd
	}
	// 3-packets-later loss inference.
	lossDetected := false
	for _, o := range s.outstanding {
		if o.acked || o.lost || o.sendIdx >= st.sendIdx {
			continue
		}
		o.dupCount++
		if o.dupCount >= 3 {
			o.lost = true
			s.inflight--
			s.LossLog = append(s.LossLog, now.Sub(s.start))
			s.rtxQueue = append(s.rtxQueue, o.seq)
			lossDetected = true
		}
	}
	if lossDetected && now.Sub(s.lastCutAt) > s.srtt {
		s.ssthresh = math.Max(s.cwnd/2, 2)
		s.cwnd = s.ssthresh
		s.lastCutAt = now
	}
	// Compact the acked prefix.
	i := 0
	for i < len(s.outstanding) && s.outstanding[i].acked {
		delete(s.bySeq, s.outstanding[i].seq)
		i++
	}
	if i > 0 {
		s.outstanding = s.outstanding[i:]
	}
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

func (s *Sender) addRTTSampleLocked(rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	s.RTTSamples = append(s.RTTSamples, rtt)
	if !s.haveSample {
		s.srtt = rtt
		s.rttvar = rtt / 2
		s.haveSample = true
	} else {
		diff := s.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		s.rttvar = (3*s.rttvar + diff) / 4
		s.srtt = (7*s.srtt + rtt) / 8
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < s.cfg.MinRTO {
		s.rto = s.cfg.MinRTO
	}
	if s.rto > s.cfg.MaxRTO {
		s.rto = s.cfg.MaxRTO
	}
}

func (s *Sender) sendFin() {
	h := header{Type: typeFin, Conn: s.cfg.ConnID, Stamp: time.Now().UnixNano()}
	buf := h.marshal(make([]byte, 0, headerSize))
	for i := 0; i < 3; i++ {
		s.conn.Write(buf) // fin sends are fire-and-forget; the peer times out regardless
		time.Sleep(5 * time.Millisecond)
	}
}

// Measurements converts the sender's logs to the shared measurement record.
func (s *Sender) Measurements(dur, rtt time.Duration) measure.Path {
	s.mu.Lock()
	defer s.mu.Unlock()
	return measure.Path{
		RTT:      rtt,
		Duration: dur,
		Tx:       append([]time.Duration(nil), s.TxLog...),
		Loss:     append([]time.Duration(nil), s.LossLog...),
	}
}

// RetransmissionRate returns retransmitted/total transmissions.
func (s *Sender) RetransmissionRate() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.TxCount == 0 {
		return 0
	}
	return float64(s.RtxCount) / float64(s.TxCount)
}

// MinAndAvgRTT returns the minimum and mean of the RTT samples.
func (s *Sender) MinAndAvgRTT() (min, avg time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.RTTSamples) == 0 {
		return 0, 0
	}
	min = s.RTTSamples[0]
	var sum time.Duration
	for _, r := range s.RTTSamples {
		if r < min {
			min = r
		}
		sum += r
	}
	return min, sum / time.Duration(len(s.RTTSamples))
}
