package isp

import (
	"math/rand"
	"testing"
	"time"

	"github.com/nal-epfl/wehey/internal/core"
	"github.com/nal-epfl/wehey/internal/wehe"
)

func testTDiff(rng *rand.Rand) []float64 {
	// Cellular throughput varies more test-to-test than wired access;
	// 0.15 relative spread matches the wide T_diff the paper derives from
	// real WeHe history.
	h := wehe.SynthHistory(rng, wehe.SynthHistorySpec{Clients: 15, TestsPerClient: 9, Spread: 0.15})
	return h.TDiff("", "netflix", "carrier-1")
}

func TestFiveISPsShape(t *testing.T) {
	ps := FiveISPs()
	if len(ps) != 5 {
		t.Fatalf("profiles = %d", len(ps))
	}
	for _, p := range ps {
		if p.PlanRate <= 0 || p.RTT <= 0 || p.UnthrottledRate <= p.PlanRate {
			t.Errorf("%s: implausible profile %+v", p.Name, p)
		}
	}
	if ps[4].TriggerRate == 0 {
		t.Error("ISP5 must be the conditional-throttling profile")
	}
}

func TestAlwaysOnISPLocalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tdiff := testTDiff(rng)
	p := FiveISPs()[0]
	hits := 0
	const trials = 5
	for i := 0; i < trials; i++ {
		res := RunLocalizationTest(rng, p, tdiff, TestOptions{Duration: 20 * time.Second})
		if !res.WeHeDetected {
			t.Errorf("trial %d: WeHe missed a 4 vs 9 Mbit/s differentiation", i)
		}
		if !res.Confirmed {
			t.Errorf("trial %d: simultaneous differentiation not confirmed", i)
		}
		if res.Localized {
			hits++
			if res.Evidence != core.EvidencePerClient {
				t.Errorf("trial %d: evidence = %v, want per-client", i, res.Evidence)
			}
		}
	}
	if hits < trials-1 {
		t.Errorf("localized %d/%d tests on an always-on per-client policer", hits, trials)
	}
}

func TestConditionalISPUsuallyFails(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tdiff := testTDiff(rng)
	p := FiveISPs()[4]
	hits := 0
	const trials = 6
	for i := 0; i < trials; i++ {
		res := RunLocalizationTest(rng, p, tdiff, TestOptions{Duration: 20 * time.Second})
		if res.Localized {
			hits++
		}
	}
	if hits > trials/2 {
		t.Errorf("ISP5-style conditional throttling localized %d/%d; expected mostly failures", hits, trials)
	}
}

func TestSanityCheckExtraReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tdiff := testTDiff(rng)
	p := FiveISPs()[0]
	falseDetections := 0
	const trials = 4
	for i := 0; i < trials; i++ {
		res := RunLocalizationTest(rng, p, tdiff, TestOptions{Duration: 20 * time.Second, ExtraReplay: true})
		if res.Evidence == core.EvidencePerClient {
			falseDetections++
		}
	}
	if falseDetections > 1 {
		t.Errorf("sanity check: %d/%d per-client detections with a third replay stealing share",
			falseDetections, trials)
	}
}

func TestConditionalTriggerTiming(t *testing.T) {
	// The trigger must fire roughly twice as early under the simultaneous
	// replay (two flows fill the byte budget faster) — the Figure 4 shape.
	rng := rand.New(rand.NewSource(4))
	p := FiveISPs()[4]
	p.TriggerJitter = 0 // deterministic threshold for the timing check
	res := RunLocalizationTest(rng, p, testTDiff(rng), TestOptions{Duration: 20 * time.Second})

	drop := func(th []float64, interval time.Duration) time.Duration {
		for i, v := range th {
			if float64(i)*interval.Seconds() > 2 && v < p.PlanRate*1.4 {
				return time.Duration(i) * interval
			}
		}
		return -1
	}
	singleDrop := drop(res.SingleSeries.Samples, res.SingleSeries.Interval)
	simDrop := drop(res.SimSeries.Samples, res.SimSeries.Interval)
	if singleDrop < 0 || simDrop < 0 {
		t.Fatalf("no throttling observed: single %v sim %v", singleDrop, simDrop)
	}
	if simDrop >= singleDrop {
		t.Errorf("simultaneous throttling at %v should precede single at %v", simDrop, singleDrop)
	}
}
