// Package isp models the five U.S. cellular ISPs of the paper's
// in-the-wild evaluation (§5, Table 1) as throttling profiles driven
// through the simulator, and provides the end-to-end localization test
// runner that reproduces a WeHeY user's flow: WeHe detection on p0, the
// simultaneous replays on p1/p2, differentiation confirmation, and
// common-bottleneck detection.
//
// ISP1–ISP4 implement always-on per-client throttling at their plan rates
// ("video streaming at DVD quality"), differing in rate, queue depth
// (policing vs shaping), RTT, and how much competing traffic perturbs the
// client's throughput. ISP5 implements the conditional throttling the
// paper hypothesizes (Figure 4): a fixed 2.5 Mbit/s policer that activates
// only once the client has pulled enough bytes — a criterion the
// simultaneous replay meets much sooner, which breaks the throughput
// comparison and reproduces the 16% localization rate.
package isp

import (
	"math/rand"
	"time"

	"github.com/nal-epfl/wehey/internal/core"
	"github.com/nal-epfl/wehey/internal/measure"
	"github.com/nal-epfl/wehey/internal/netsim"
	"github.com/nal-epfl/wehey/internal/wehe"
)

// Profile describes one ISP's differentiation behaviour.
type Profile struct {
	Name string
	// PlanRate is the per-client throttling rate in bits/s.
	PlanRate float64
	// QueueFactor sizes the TBF queue as a multiple of the burst
	// (0 = pure policer; ~1 = shaper).
	QueueFactor float64
	// RTT is the client's typical base RTT on this network.
	RTT time.Duration
	// UnthrottledRate is the natural rate of a video replay when the
	// throttle is not (yet) limiting — the app-limited TCP rate.
	UnthrottledRate float64
	// NoiseBgRate adds competing (non-differentiated) traffic through the
	// client's radio link to perturb throughput between tests.
	NoiseBgRate float64
	// LinkRate bounds the client's radio link (0 = unconstrained).
	LinkRate float64
	// TriggerRate, when positive, arms conditional throttling (ISP5): the
	// limiter activates once the client's received rate over TriggerWindow
	// exceeds the threshold. The effective threshold is redrawn per test
	// within ±TriggerJitter, reproducing the paper's "not at an easily
	// predictable moment": a simultaneous replay (≈2× the rate) crosses it
	// within seconds, a single replay much later or — when the jittered
	// threshold falls below the single-replay rate — right away.
	TriggerRate   float64
	TriggerWindow time.Duration
	TriggerJitter float64
	// TriggerBytes additionally activates the limiter after this many
	// cumulative bytes (the slow path that eventually throttles even a
	// below-threshold single replay).
	TriggerBytes int64
}

// FiveISPs returns the five evaluation profiles. Rates and RTTs follow the
// disclosed plans (2–8 Mbit/s "DVD/HD quality" tiers) and typical LTE RTTs;
// per-profile noise levels are calibrated so the Table 1 experiment
// reproduces the paper's success-rate ordering.
func FiveISPs() []Profile {
	return []Profile{
		{
			Name: "ISP1", PlanRate: 4e6, QueueFactor: 0, RTT: 55 * time.Millisecond,
			UnthrottledRate: 9e6, NoiseBgRate: 2.5e6, LinkRate: 12e6,
		},
		{
			Name: "ISP2", PlanRate: 2e6, QueueFactor: 0.25, RTT: 65 * time.Millisecond,
			UnthrottledRate: 8e6, NoiseBgRate: 2.5e6, LinkRate: 10e6,
		},
		{
			Name: "ISP3", PlanRate: 4e6, QueueFactor: 0.5, RTT: 45 * time.Millisecond,
			UnthrottledRate: 9e6, NoiseBgRate: 1.5e6, LinkRate: 14e6,
		},
		{
			Name: "ISP4", PlanRate: 6e6, QueueFactor: 1, RTT: 45 * time.Millisecond,
			UnthrottledRate: 10e6, NoiseBgRate: 1e6, LinkRate: 16e6,
		},
		{
			Name: "ISP5", PlanRate: 2.5e6, QueueFactor: 0, RTT: 50 * time.Millisecond,
			UnthrottledRate: 9e6, NoiseBgRate: 1e6, LinkRate: 25e6,
			// The byte budget binds a single replay roughly halfway through
			// a test (Figure 4: throttling at ~22 s of a ~45 s replay); the
			// rate criterion trips the simultaneous replay within seconds.
			TriggerRate: 11.5e6, TriggerWindow: 2 * time.Second, TriggerJitter: 0.3,
			TriggerBytes: 11e6,
		},
	}
}

// TestOptions tunes a localization test run.
type TestOptions struct {
	// Duration of each replay (default 20 s; the paper replays ≥45 s —
	// shorter runs keep the full Table 1 grid fast and do not change the
	// verdicts, which depend on throughput ratios, not durations).
	Duration time.Duration
	// ExtraReplay adds a third concurrent replay during the simultaneous
	// phase (the Table 1 "sanity check": the throughput comparison must
	// then NOT find a common bottleneck).
	ExtraReplay bool
}

func (o *TestOptions) fill() {
	if o.Duration <= 0 {
		o.Duration = 20 * time.Second
	}
}

// TestResult is the outcome of one localization test.
type TestResult struct {
	// WeHeDetected is WeHe's verdict on p0 (original vs bit-inverted).
	WeHeDetected bool
	// Confirmed is WeHeY's step 3: both p1 and p2 showed differentiation.
	Confirmed bool
	// Evidence is the common-bottleneck detector's verdict.
	Evidence core.Evidence
	// Localized is the headline outcome: evidence that differentiation
	// happens inside the ISP.
	Localized bool
	// X, Y are the §4.1 sample sets (for Figure 2 rendering).
	X, Y []float64
	// SingleSeries and SimSeries are throughput-over-time for Figure 4.
	SingleSeries, SimSeries measure.Throughput
	// P is the throughput-comparison p-value (NaN if it did not run).
	P float64
}

// ReplayOutcome carries one replay's client-side and path measurements.
type ReplayOutcome struct {
	Throughput   measure.Throughput
	Measurements measure.Path
	Bytes        int64
}

// RunLocalizationTest simulates one full WeHeY test against the profile:
//
//  1. p0 single replays (original, then bit-inverted) → WeHe detection, X;
//  2. p1+p2 simultaneous replays (original, then bit-inverted) →
//     confirmation and Y;
//  3. the combined common-bottleneck detector.
//
// Each replay runs in a fresh simulation (the real system replays
// sequentially over the same network; the throttling state — including
// ISP5's trigger — resets between replays, matching the per-test behaviour
// in Figure 4).
func RunLocalizationTest(rng *rand.Rand, p Profile, tdiff []float64, opts TestOptions) TestResult {
	opts.fill()
	dur := opts.Duration

	trig := p.DrawTrigger(rng)

	// Phase 1: single replays on p0.
	origSingle := p.Replays(rng.Int63(), dur, trig, 1, true)
	invSingle := p.Replays(rng.Int63(), dur, trig, 1, false)

	res := TestResult{
		X:            origSingle[0].Throughput.Samples,
		SingleSeries: origSingle[0].Throughput,
	}
	det, err := wehe.DetectDifferentiation(origSingle[0].Throughput, invSingle[0].Throughput, wehe.DetectionConfig{})
	if err == nil {
		res.WeHeDetected = det.Differentiation
	}

	// Phase 2: simultaneous replays on p1, p2 (and optionally p3).
	n := 2
	if opts.ExtraReplay {
		n = 3
	}
	origSim := p.Replays(rng.Int63(), dur, trig, n, true)
	invSim := p.Replays(rng.Int63(), dur, trig, n, false)

	// Step 3 (§3.1): differentiation confirmation on both paths.
	res.Confirmed = true
	for i := 0; i < 2; i++ {
		d, err := wehe.DetectDifferentiation(origSim[i].Throughput, invSim[i].Throughput, wehe.DetectionConfig{})
		if err != nil || !d.Differentiation {
			res.Confirmed = false
		}
	}

	// Y aggregates p1's and p2's samples only (the extra replay, when
	// present, deliberately steals bottleneck share).
	res.Y = measure.SumSamples(origSim[0].Throughput.Samples, origSim[1].Throughput.Samples)
	res.SimSeries = measure.Throughput{Interval: origSim[0].Throughput.Interval, Samples: res.Y}

	if !res.Confirmed {
		return res
	}

	// Step 4: common-bottleneck detection.
	out, err := core.DetectCommonBottleneck(rng, core.DetectorInput{
		X: res.X, Y: res.Y, TDiff: tdiff,
		M1: &origSim[0].Measurements, M2: &origSim[1].Measurements,
	}, core.DetectorConfig{})
	if err != nil {
		return res
	}
	res.Evidence = out.Evidence
	if out.Throughput != nil {
		res.P = out.Throughput.P
	}
	res.Localized = res.WeHeDetected && res.Confirmed && out.Evidence.Found()
	return res
}

// Trigger is the per-test instantiation of the conditional-throttling
// criterion; nil means always-on throttling.
type Trigger struct {
	rate   float64 // bits/s over window
	window time.Duration
	bytes  int64
}

// DrawTrigger instantiates the profile's conditional-throttling criterion
// for one test (the threshold jitters test to test); nil for always-on
// profiles.
func (p Profile) DrawTrigger(rng *rand.Rand) *Trigger {
	if p.TriggerRate <= 0 && p.TriggerBytes <= 0 {
		return nil
	}
	t := &Trigger{rate: p.TriggerRate, window: p.TriggerWindow, bytes: p.TriggerBytes}
	if t.window <= 0 {
		t.window = 2 * time.Second
	}
	if t.rate > 0 && p.TriggerJitter > 0 {
		t.rate *= 1 + p.TriggerJitter*(2*rng.Float64()-1)
	}
	return t
}

// triggerState tracks a client's received traffic against a trigger using
// a ring of sub-window buckets.
type triggerState struct {
	trig    *Trigger
	buckets [8]int64
	bucket  time.Duration // bucket width
	lastIdx int64
	total   int64
}

func newTriggerState(t *Trigger) *triggerState {
	return &triggerState{trig: t, bucket: t.window / 8}
}

// add records bytes received at time now and reports whether the criterion
// is now met.
func (ts *triggerState) add(now time.Duration, bytes int) bool {
	idx := int64(now / ts.bucket)
	// Zero buckets skipped since the last update.
	for i := ts.lastIdx + 1; i <= idx && i-ts.lastIdx <= int64(len(ts.buckets)); i++ {
		ts.buckets[i%int64(len(ts.buckets))] = 0
	}
	if idx > ts.lastIdx {
		ts.lastIdx = idx
	}
	ts.buckets[idx%int64(len(ts.buckets))] += int64(bytes)
	ts.total += int64(bytes)

	if ts.trig.bytes > 0 && ts.total >= ts.trig.bytes {
		return true
	}
	if ts.trig.rate > 0 {
		var sum int64
		for _, b := range ts.buckets {
			sum += b
		}
		if float64(sum)*8/ts.trig.window.Seconds() >= ts.trig.rate {
			return true
		}
	}
	return false
}

// Replays simulates n concurrent replays through the profile's per-client
// bottleneck and returns each flow's outcome.
func (p Profile) Replays(seed int64, dur time.Duration, trig *Trigger, n int, original bool) []ReplayOutcome {
	var eng netsim.Engine
	lim := &netsim.LimiterSpec{
		Rate:  p.PlanRate,
		Burst: netsim.BurstForRTT(p.PlanRate, p.RTT),
	}
	lim.Queue = int(p.QueueFactor * float64(lim.Burst))

	paths := make([]netsim.PathSpec, n)
	for i := range paths {
		paths[i] = netsim.PathSpec{RTT: p.RTT}
	}
	sc := netsim.NewScenario(&eng, seed, netsim.CommonSpec{
		Rate:           p.LinkRate,
		Limiter:        lim,
		BgRate:         p.NoiseBgRate,
		BgDiffFraction: 0, // noise traffic is other apps: never throttled
	}, paths...)

	// Conditional throttling (ISP5): the limiter starts inactive and arms
	// once the client's received traffic meets the criterion.
	var ts *triggerState
	if trig != nil {
		sc.CommonLim.Active = false
		ts = newTriggerState(trig)
	}

	class := netsim.ClassDifferentiated
	if !original {
		class = netsim.ClassDefault
	}
	flows := make([]*netsim.TCPFlow, n)
	for i := range flows {
		cfg := netsim.TCPConfig{
			Pacing:  true,
			Class:   class,
			AppRate: p.UnthrottledRate,
			Stop:    dur,
		}
		f := netsim.NewTCPFlow(&eng, i+1, cfg, sc.Entry(i), sc.BackDelay(i))
		flows[i] = f
		rcv := f.Receiver()
		if ts != nil {
			sc.Register(i+1, netsim.HopFunc(func(pkt *netsim.Packet) {
				if !sc.CommonLim.Active && ts.add(eng.Now(), pkt.Size) {
					sc.CommonLim.Active = true
				}
				rcv.Send(pkt)
			}))
		} else {
			sc.Register(i+1, rcv)
		}
		f.Start(0)
	}
	sc.StartBackground(0, dur)
	eng.Run(dur + 2*time.Second)

	out := make([]ReplayOutcome, n)
	for i, f := range flows {
		out[i] = ReplayOutcome{
			Throughput:   measure.WeHeThroughput(f.Deliveries(0), 0, dur),
			Measurements: f.Measurements(0, dur, p.RTT),
			Bytes:        f.DeliveredBytes(),
		}
	}
	return out
}
