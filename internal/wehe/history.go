package wehe

import (
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"sort"
	"time"
)

// TestRecord is one past WeHe test as stored in the public WeHe dataset:
// which client ran it, against which app and carrier, when, and the mean
// throughput its bit-inverted replay achieved. T_diff is derived from the
// bit-inverted replays because they are unaffected by differentiation and
// therefore reflect *normal* throughput variation (§4.1).
type TestRecord struct {
	Client   string    `json:"client"`
	App      string    `json:"app"`
	Carrier  string    `json:"carrier"`
	At       time.Time `json:"at"`
	InvMeanT float64   `json:"inverted_mean_throughput"` // bits/s
}

// History is a collection of past WeHe tests queryable for T_diff
// distributions.
type History struct {
	records []TestRecord
}

// PairWindow is the maximum gap between two tests for them to form a
// T_diff pair (§4.1: "performed less than 10 minutes apart").
const PairWindow = 10 * time.Minute

// NewHistory builds a history from records (copied).
func NewHistory(records []TestRecord) *History {
	h := &History{records: append([]TestRecord(nil), records...)}
	sort.Slice(h.records, func(i, j int) bool { return h.records[i].At.Before(h.records[j].At) })
	return h
}

// Len returns the number of records.
func (h *History) Len() int { return len(h.records) }

// TDiff computes the T_diff distribution for one (client, app, carrier):
// for every pair of that client's tests less than PairWindow apart, the
// relative difference of the two bit-inverted mean throughputs.
// Empty selectors match everything (useful when a client has little
// history and the distribution is pooled across clients).
func (h *History) TDiff(client, app, carrier string) []float64 {
	// Group matching records; records are already time-sorted.
	type key struct{ c, a, r string }
	groups := make(map[key][]TestRecord)
	for _, rec := range h.records {
		if client != "" && rec.Client != client {
			continue
		}
		if app != "" && rec.App != app {
			continue
		}
		if carrier != "" && rec.Carrier != carrier {
			continue
		}
		k := key{rec.Client, rec.App, rec.Carrier}
		groups[k] = append(groups[k], rec)
	}
	// Emit groups in sorted key order: the caller feeds this distribution
	// into subsampling driven by a seeded rng, so element order must not
	// depend on map iteration.
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].c != keys[j].c {
			return keys[i].c < keys[j].c
		}
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].r < keys[j].r
	})
	var out []float64
	for _, k := range keys {
		g := groups[k]
		for i := 0; i < len(g); i++ {
			for j := i + 1; j < len(g); j++ {
				if g[j].At.Sub(g[i].At) >= PairWindow {
					break // sorted: later records are even farther
				}
				t1, t2 := g[i].InvMeanT, g[j].InvMeanT
				den := math.Max(t1, t2)
				if den <= 0 {
					continue
				}
				out = append(out, (t1-t2)/den)
			}
		}
	}
	return out
}

// WriteJSON streams the records as a JSON array.
func (h *History) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(h.records)
}

// ReadHistoryJSON loads records written by WriteJSON.
func ReadHistoryJSON(r io.Reader) (*History, error) {
	var records []TestRecord
	if err := json.NewDecoder(r).Decode(&records); err != nil {
		return nil, err
	}
	return NewHistory(records), nil
}

// SynthHistorySpec parameterizes SynthHistory.
type SynthHistorySpec struct {
	Clients        int      // number of clients (default 20)
	Apps           []string // default {"netflix"}
	Carriers       []string // default {"carrier-1"}
	TestsPerClient int      // tests per (client, app, carrier) (default 12)
	BaseThroughput float64  // bits/s (default 8e6)
	Spread         float64  // relative test-to-test variation (default 0.1)
	Start          time.Time
}

func (s *SynthHistorySpec) fill() {
	if s.Clients <= 0 {
		s.Clients = 20
	}
	if len(s.Apps) == 0 {
		s.Apps = []string{"netflix"}
	}
	if len(s.Carriers) == 0 {
		s.Carriers = []string{"carrier-1"}
	}
	if s.TestsPerClient <= 0 {
		s.TestsPerClient = 12
	}
	if s.BaseThroughput <= 0 {
		s.BaseThroughput = 8e6
	}
	if s.Spread <= 0 {
		s.Spread = 0.1
	}
	if s.Start.IsZero() {
		s.Start = time.Date(2023, 4, 1, 0, 0, 0, 0, time.UTC)
	}
}

// SynthHistory generates a synthetic WeHe test history standing in for the
// public dataset at wehe-data.ccs.neu.edu: per client a base throughput
// (clients differ by access technology), per test multiplicative noise, and
// tests clustered in back-to-back sessions so that PairWindow pairs exist.
func SynthHistory(rng *rand.Rand, spec SynthHistorySpec) *History {
	spec.fill()
	var records []TestRecord
	for c := 0; c < spec.Clients; c++ {
		clientBase := spec.BaseThroughput * (0.5 + rng.Float64())
		client := clientName(c)
		for _, app := range spec.Apps {
			for _, carrier := range spec.Carriers {
				at := spec.Start.Add(time.Duration(rng.Intn(86400)) * time.Second)
				for n := 0; n < spec.TestsPerClient; n++ {
					// Tests arrive in sessions: short gaps within a session
					// (forming T_diff pairs), long gaps between sessions.
					if n%3 == 0 && n > 0 {
						at = at.Add(time.Duration(1+rng.Intn(48)) * time.Hour)
					} else {
						at = at.Add(time.Duration(30+rng.Intn(400)) * time.Second)
					}
					tput := clientBase * (1 + rng.NormFloat64()*spec.Spread)
					if tput < 1e5 {
						tput = 1e5
					}
					records = append(records, TestRecord{
						Client: client, App: app, Carrier: carrier,
						At: at, InvMeanT: tput,
					})
				}
			}
		}
	}
	return NewHistory(records)
}

func clientName(i int) string {
	const hexdig = "0123456789abcdef"
	b := make([]byte, 0, 10)
	b = append(b, 'c', 'l', '-')
	for sh := 24; sh >= 0; sh -= 4 {
		b = append(b, hexdig[(i>>sh)&0xF])
	}
	return string(b)
}
