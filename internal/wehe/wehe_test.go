package wehe

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"github.com/nal-epfl/wehey/internal/measure"
)

func tput(samples []float64) measure.Throughput {
	return measure.Throughput{Interval: 450 * time.Millisecond, Samples: samples}
}

func noisy(rng *rand.Rand, n int, mean, spread float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = mean * (1 + rng.NormFloat64()*spread)
	}
	return out
}

func TestDetectDifferentiationThrottledOriginal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	orig := tput(noisy(rng, 100, 2e6, 0.05)) // throttled at 2 Mbit/s
	inv := tput(noisy(rng, 100, 8e6, 0.05))  // unthrottled
	d, err := DetectDifferentiation(orig, inv, DetectionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Differentiation {
		t.Errorf("clear throttling not detected: %+v", d)
	}
	if d.RelDiff < 0.5 {
		t.Errorf("RelDiff = %v, want ≈0.75", d.RelDiff)
	}
}

func TestDetectDifferentiationNeutralPath(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	falsePositives := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		orig := tput(noisy(rng, 100, 8e6, 0.08))
		inv := tput(noisy(rng, 100, 8e6, 0.08))
		d, err := DetectDifferentiation(orig, inv, DetectionConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if d.Differentiation {
			falsePositives++
		}
	}
	if rate := float64(falsePositives) / trials; rate > 0.08 {
		t.Errorf("neutral-path detection rate = %v, want ≲0.05", rate)
	}
}

func TestDetectDifferentiationGuardsAgainstTinyDiffs(t *testing.T) {
	// Statistically different but practically identical (2% shift over many
	// samples): the MinRelDiff guard must suppress it.
	n := 5000
	orig := make([]float64, n)
	inv := make([]float64, n)
	for i := 0; i < n; i++ {
		orig[i] = 8e6 + float64(i%100)*1e3
		inv[i] = 8.16e6 + float64(i%100)*1e3
	}
	d, err := DetectDifferentiation(tput(orig), tput(inv), DetectionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Differentiation {
		t.Errorf("2%% shift flagged as differentiation (KS p=%v, relDiff=%v)", d.KS.P, d.RelDiff)
	}
}

func TestDetectDifferentiationTooFewSamples(t *testing.T) {
	if _, err := DetectDifferentiation(tput([]float64{1, 2}), tput([]float64{1, 2}), DetectionConfig{}); err == nil {
		t.Error("tiny inputs accepted")
	}
}

func TestHistoryTDiffPairing(t *testing.T) {
	base := time.Date(2023, 4, 1, 12, 0, 0, 0, time.UTC)
	records := []TestRecord{
		{Client: "a", App: "netflix", Carrier: "x", At: base, InvMeanT: 10e6},
		{Client: "a", App: "netflix", Carrier: "x", At: base.Add(5 * time.Minute), InvMeanT: 8e6},
		{Client: "a", App: "netflix", Carrier: "x", At: base.Add(30 * time.Minute), InvMeanT: 9e6}, // too far from both
		{Client: "b", App: "netflix", Carrier: "x", At: base.Add(2 * time.Minute), InvMeanT: 5e6},  // different client
		{Client: "a", App: "zoom", Carrier: "x", At: base.Add(time.Minute), InvMeanT: 4e6},         // different app
	}
	h := NewHistory(records)
	td := h.TDiff("a", "netflix", "x")
	if len(td) != 1 {
		t.Fatalf("TDiff pairs = %d, want 1 (%v)", len(td), td)
	}
	// (10e6 − 8e6)/10e6 = 0.2.
	if td[0] != 0.2 {
		t.Errorf("tdiff = %v, want 0.2", td[0])
	}
	// Pooled query (empty selectors) still groups per client/app/carrier:
	// no cross-client pairs appear.
	pooled := h.TDiff("", "", "")
	if len(pooled) != 1 {
		t.Errorf("pooled pairs = %d, want 1", len(pooled))
	}
}

func TestHistoryJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := SynthHistory(rng, SynthHistorySpec{Clients: 3, TestsPerClient: 6})
	var buf bytes.Buffer
	if err := h.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	h2, err := ReadHistoryJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Len() != h.Len() {
		t.Errorf("round trip: %d vs %d records", h2.Len(), h.Len())
	}
	if _, err := ReadHistoryJSON(bytes.NewReader([]byte("{"))); err == nil {
		t.Error("garbage JSON accepted")
	}
}

func TestSynthHistoryProducesUsableTDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h := SynthHistory(rng, SynthHistorySpec{Clients: 20, TestsPerClient: 12})
	td := h.TDiff("", "netflix", "carrier-1")
	if len(td) < 40 {
		t.Fatalf("only %d T_diff pairs; the synthetic sessions should yield plenty", len(td))
	}
	// Typical relative variation should be moderate (|t| mostly < 0.5).
	big := 0
	for _, v := range td {
		if v > 1 || v < -1 {
			t.Fatalf("tdiff %v outside [-1, 1]", v)
		}
		if abs(v) > 0.5 {
			big++
		}
	}
	if float64(big)/float64(len(td)) > 0.2 {
		t.Errorf("too many extreme variations: %d/%d", big, len(td))
	}
}

func TestSynthHistoryDeterminism(t *testing.T) {
	a := SynthHistory(rand.New(rand.NewSource(5)), SynthHistorySpec{Clients: 2})
	b := SynthHistory(rand.New(rand.NewSource(5)), SynthHistorySpec{Clients: 2})
	if a.Len() != b.Len() {
		t.Fatal("nondeterministic record count")
	}
	for i := range a.records {
		if a.records[i] != b.records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}
