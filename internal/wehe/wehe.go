// Package wehe implements the WeHe substrate WeHeY builds on (§2.1): the
// differentiation detector that compares the throughput CDFs of an original
// and a bit-inverted replay with a Kolmogorov-Smirnov test, and the
// historical test database from which the T_diff "normal throughput
// variation" distribution of §4.1 is derived.
package wehe

import (
	"fmt"

	"github.com/nal-epfl/wehey/internal/measure"
	"github.com/nal-epfl/wehey/internal/stats"
)

// DetectionConfig parameterizes WeHe's detector. Zero value = defaults.
type DetectionConfig struct {
	// Alpha is the KS significance level (default 0.05).
	Alpha float64
	// MinRelDiff additionally requires the replays' mean throughputs to
	// differ by this relative margin (default 0.1), so that a statistically
	// significant but practically negligible difference is not flagged.
	// WeHe applies the same guard against noisy verdicts.
	MinRelDiff float64
}

func (c *DetectionConfig) fill() {
	if c.Alpha <= 0 {
		c.Alpha = 0.05
	}
	if c.MinRelDiff <= 0 {
		c.MinRelDiff = 0.1
	}
}

// Detection is WeHe's verdict on one (original, bit-inverted) replay pair.
type Detection struct {
	Differentiation bool
	KS              stats.KSResult
	OriginalMean    float64 // bits/s
	InvertedMean    float64 // bits/s
	RelDiff         float64 // |orig−inv| / max
}

// DetectDifferentiation runs WeHe's test: the client divides the replay
// into 100 intervals, computes per-interval throughput for the original and
// the bit-inverted replay, and compares the two CDFs with a KS test. A
// significant difference means traffic differentiation somewhere on the
// path.
func DetectDifferentiation(orig, inv measure.Throughput, cfg DetectionConfig) (Detection, error) {
	cfg.fill()
	if len(orig.Samples) < 8 || len(inv.Samples) < 8 {
		return Detection{}, fmt.Errorf("wehe: need ≥8 throughput samples, have %d/%d",
			len(orig.Samples), len(inv.Samples))
	}
	ks, err := stats.KolmogorovSmirnov(orig.Samples, inv.Samples)
	if err != nil {
		return Detection{}, err
	}
	d := Detection{
		KS:           ks,
		OriginalMean: orig.Mean(),
		InvertedMean: inv.Mean(),
	}
	maxMean := d.OriginalMean
	if d.InvertedMean > maxMean {
		maxMean = d.InvertedMean
	}
	if maxMean > 0 {
		d.RelDiff = abs(d.OriginalMean-d.InvertedMean) / maxMean
	}
	d.Differentiation = ks.P < cfg.Alpha && d.RelDiff >= cfg.MinRelDiff
	return d, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
