package stats

import (
	"math"
	"math/rand"
)

// RelMeanDiff computes the relative mean difference used throughout §4.1:
//
//	(mean(a) − mean(b)) / max(mean(a), mean(b)).
//
// Both t_diff (historical throughput variation) and o_diff (single- vs
// simultaneous-replay difference) are instances of this quantity.
func RelMeanDiff(a, b []float64) float64 {
	ma, mb := Mean(a), Mean(b)
	den := math.Max(ma, mb)
	if den == 0 { //lint:ignore floateq guards exact division by zero
		return 0
	}
	return (ma - mb) / den
}

// HalfSample returns a uniformly random half of xs (⌈n/2⌉ elements), sampled
// without replacement. It implements the subsample draw of the O_diff
// Monte-Carlo simulation (§4.1): "two sets X′ and Y′, each one including a
// randomly chosen half of the samples".
func HalfSample(rng *rand.Rand, xs []float64) []float64 {
	n := len(xs)
	k := (n + 1) / 2
	idx := rng.Perm(n)[:k]
	out := make([]float64, k)
	for i, j := range idx {
		out[i] = xs[j]
	}
	return out
}

// ODiff runs the Monte-Carlo simulation of §4.1 that builds the O_diff
// distribution: for each of iters iterations it draws random halves X′ ⊂ x
// and Y′ ⊂ y and records their relative mean difference. The number of
// iterations is chosen by the caller to match the size of T_diff so that the
// two distributions have the same size.
func ODiff(rng *rand.Rand, x, y []float64, iters int) []float64 {
	out := make([]float64, iters)
	for i := range out {
		xp := HalfSample(rng, x)
		yp := HalfSample(rng, y)
		out[i] = RelMeanDiff(xp, yp)
	}
	return out
}
