package stats

import (
	"math"
	"math/rand"
	"testing"
)

func mean(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	if len(xs) == 0 {
		return 0
	}
	return s / float64(len(xs))
}

// Regression tests for the empty-input panics: Bootstrap/BootstrapCI used
// to call rng.Intn(0) on empty samples, and Jackknife built a buffer with
// negative capacity (make([]float64, 0, -1)).

func TestBootstrapEmptyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := Bootstrap(rng, nil, 100, mean); len(got) != 0 {
		t.Errorf("Bootstrap(nil) returned %d samples, want none", len(got))
	}
	if got := Bootstrap(rng, []float64{}, 100, mean); len(got) != 0 {
		t.Errorf("Bootstrap(empty) returned %d samples, want none", len(got))
	}
	if got := Bootstrap(rng, []float64{1, 2, 3}, -1, mean); len(got) != 0 {
		t.Errorf("Bootstrap(iters=-1) returned %d samples, want none", len(got))
	}
}

func TestBootstrapCIEmptyInputNaNFree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	lo, hi := BootstrapCI(rng, nil, 200, 0.95, mean)
	if math.IsNaN(lo) || math.IsNaN(hi) {
		t.Fatalf("BootstrapCI(nil) = (%v, %v), want NaN-free", lo, hi)
	}
	if lo != 0 || hi != 0 {
		t.Errorf("BootstrapCI(nil) = (%v, %v), want the degenerate (0, 0)", lo, hi)
	}
}

func TestJackknifeEmptyInput(t *testing.T) {
	if got := Jackknife(nil, mean); len(got) != 0 {
		t.Errorf("Jackknife(nil) returned %d estimates, want none", len(got))
	}
	if got := Jackknife([]float64{}, mean); len(got) != 0 {
		t.Errorf("Jackknife(empty) returned %d estimates, want none", len(got))
	}
}

func TestJackknifeSingleton(t *testing.T) {
	// One observation: the single leave-one-out set is empty; stat sees it.
	got := Jackknife([]float64{5}, func(xs []float64) float64 {
		if len(xs) != 0 {
			t.Errorf("leave-one-out set has %d elements, want 0", len(xs))
		}
		return 42
	})
	if len(got) != 1 || got[0] != 42 {
		t.Errorf("Jackknife singleton = %v, want [42]", got)
	}
}

// TestResampleStillWorks pins the untouched happy path.
func TestResampleStillWorks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64() + 10
	}
	samples := Bootstrap(rng, xs, 500, mean)
	if len(samples) != 500 {
		t.Fatalf("got %d bootstrap samples", len(samples))
	}
	lo, hi := BootstrapCI(rng, xs, 500, 0.95, mean)
	if !(lo < 10 && 10 < hi) || math.IsNaN(lo) || math.IsNaN(hi) {
		t.Errorf("95%% CI (%v, %v) does not cover the true mean", lo, hi)
	}
	jk := Jackknife(xs, mean)
	if len(jk) != len(xs) {
		t.Fatalf("got %d jackknife estimates", len(jk))
	}
	for _, v := range jk {
		if math.Abs(v-10) > 1 {
			t.Errorf("leave-one-out mean %v implausibly far from 10", v)
		}
	}
}

func TestBootstrapCIDegenerateLevels(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	// Level 0: both ends are the 0.5-quantile of the resample distribution.
	lo, hi := BootstrapCI(rand.New(rand.NewSource(3)), xs, 200, 0, mean)
	if lo != hi {
		t.Errorf("level 0: (%v, %v), want a collapsed interval", lo, hi)
	}
	if math.IsNaN(lo) {
		t.Error("level 0: NaN interval")
	}
	// Level 1: the full resample range — and it must bracket the level-0
	// point and any interior level's interval.
	min1, max1 := BootstrapCI(rand.New(rand.NewSource(3)), xs, 200, 1, mean)
	if !(min1 <= lo && hi <= max1) {
		t.Errorf("level 1 (%v, %v) does not bracket level 0 (%v, %v)", min1, max1, lo, hi)
	}
	lo95, hi95 := BootstrapCI(rand.New(rand.NewSource(3)), xs, 200, 0.95, mean)
	if !(min1 <= lo95 && hi95 <= max1) {
		t.Errorf("level 1 (%v, %v) does not bracket level 0.95 (%v, %v)", min1, max1, lo95, hi95)
	}
	if math.IsNaN(min1) || math.IsNaN(max1) {
		t.Error("level 1: NaN interval")
	}
}
