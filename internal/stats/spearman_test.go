package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestSpearmanPerfectMonotone(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6}
	yUp := []float64{10, 20, 30, 40, 50, 60}
	yDown := []float64{60, 50, 40, 30, 20, 10}

	up, err := Spearman(x, yUp, Greater)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(up.Rho, 1, 1e-12) {
		t.Errorf("rho = %v, want 1", up.Rho)
	}
	if up.P > 1e-9 {
		t.Errorf("perfect positive, alt=Greater: p = %v, want ~0", up.P)
	}

	down, err := Spearman(x, yDown, Greater)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(down.Rho, -1, 1e-12) {
		t.Errorf("rho = %v, want -1", down.Rho)
	}
	if down.P < 1-1e-9 {
		t.Errorf("perfect negative, alt=Greater: p = %v, want ~1", down.P)
	}
}

func TestSpearmanNonlinearMonotone(t *testing.T) {
	// Spearman captures trend, not linearity: rho of x vs exp(x) is exactly 1.
	x := []float64{0.5, 1, 2, 3, 4, 5, 7}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = math.Exp(x[i])
	}
	res, err := Spearman(x, y, Greater)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Rho, 1, 1e-12) {
		t.Errorf("rho = %v, want 1 for monotone transform", res.Rho)
	}
}

func TestSpearmanHandComputed(t *testing.T) {
	// x = 1..5, y = {1,2,3,5,4}: Σd² = 2, rho = 1 − 6·2/(5·24) = 0.9.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 2, 3, 5, 4}
	res, err := Spearman(x, y, TwoSided)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Rho, 0.9, 1e-12) {
		t.Errorf("rho = %v, want 0.9", res.Rho)
	}
	// t = 0.9·sqrt(3/0.19); p two-sided from the df=3 closed form.
	wantT := 0.9 * math.Sqrt(3/(1-0.81))
	if !almostEqual(res.T, wantT, 1e-12) {
		t.Errorf("T = %v, want %v", res.T, wantT)
	}
	wantP := 2 * (1 - tCDF3(wantT))
	if !almostEqual(res.P, wantP, 1e-10) {
		t.Errorf("P = %v, want %v", res.P, wantP)
	}
}

func TestSpearmanUncorrelatedNullRate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rejections := 0
	const trials = 500
	for i := 0; i < trials; i++ {
		n := 20
		x := make([]float64, n)
		y := make([]float64, n)
		for j := 0; j < n; j++ {
			x[j] = rng.Float64()
			y[j] = rng.Float64()
		}
		res, err := Spearman(x, y, Greater)
		if err != nil {
			t.Fatal(err)
		}
		if res.P < 0.05 {
			rejections++
		}
	}
	rate := float64(rejections) / trials
	if rate > 0.09 {
		t.Errorf("null rejection rate = %v, want ≈0.05", rate)
	}
}

func TestSpearmanConstantSeries(t *testing.T) {
	x := []float64{1, 1, 1, 1, 1}
	y := []float64{1, 2, 3, 4, 5}
	res, err := Spearman(x, y, Greater)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Errorf("constant series: p = %v, want 1 (no evidence)", res.P)
	}
}

func TestSpearmanErrors(t *testing.T) {
	if _, err := Spearman([]float64{1, 2}, []float64{1, 2, 3}, Greater); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Spearman([]float64{1, 2, 3}, []float64{1, 2, 3}, Greater); err == nil {
		t.Error("n<4 should error")
	}
}

func TestSpearmanRhoRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 4 + rng.Intn(40)
		x := make([]float64, n)
		y := make([]float64, n)
		for j := 0; j < n; j++ {
			x[j] = math.Floor(rng.Float64() * 6) // ties
			y[j] = math.Floor(rng.Float64() * 6)
		}
		res, err := Spearman(x, y, TwoSided)
		if err != nil {
			t.Fatal(err)
		}
		if !math.IsNaN(res.Rho) && (res.Rho < -1-1e-12 || res.Rho > 1+1e-12) {
			t.Fatalf("rho = %v outside [-1,1]", res.Rho)
		}
		if res.P < 0 || res.P > 1 {
			t.Fatalf("p = %v outside [0,1]", res.P)
		}
	}
}

func TestPearsonBasics(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Errorf("Pearson = %v, want 1", r)
	}
	if _, err := Pearson(x, y[:3]); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Error("n<2 should error")
	}
}
