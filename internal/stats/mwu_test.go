package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestMannWhitneyUSeparatedSamples(t *testing.T) {
	// x entirely below y: the "less" alternative should be overwhelmingly
	// supported, the "greater" alternative rejected.
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	y := []float64{101, 102, 103, 104, 105, 106, 107, 108, 109, 110}
	less, err := MannWhitneyU(x, y, Less)
	if err != nil {
		t.Fatal(err)
	}
	if less.P > 1e-3 {
		t.Errorf("separated samples, alt=Less: p = %v, want tiny", less.P)
	}
	if less.U != 0 {
		t.Errorf("U = %v, want 0 (x entirely below y)", less.U)
	}
	greater, err := MannWhitneyU(x, y, Greater)
	if err != nil {
		t.Fatal(err)
	}
	if greater.P < 0.99 {
		t.Errorf("separated samples, alt=Greater: p = %v, want ~1", greater.P)
	}
}

func TestMannWhitneyUIdenticalDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rejections := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		x := make([]float64, 30)
		y := make([]float64, 30)
		for j := range x {
			x[j] = rng.NormFloat64()
			y[j] = rng.NormFloat64()
		}
		res, err := MannWhitneyU(x, y, Less)
		if err != nil {
			t.Fatal(err)
		}
		if res.P < 0.05 {
			rejections++
		}
	}
	// Under the null, ~5% of one-sided tests reject at 0.05. Allow slack.
	rate := float64(rejections) / trials
	if rate > 0.09 {
		t.Errorf("null rejection rate = %v, want ≈0.05", rate)
	}
}

func TestMannWhitneyUStatisticIdentity(t *testing.T) {
	// U1 + U2 = n1*n2 always.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		n1 := 3 + rng.Intn(20)
		n2 := 3 + rng.Intn(20)
		x := make([]float64, n1)
		y := make([]float64, n2)
		for i := range x {
			x[i] = math.Floor(rng.Float64() * 8) // with ties
		}
		for i := range y {
			y[i] = math.Floor(rng.Float64() * 8)
		}
		rx, err := MannWhitneyU(x, y, TwoSided)
		if err != nil {
			t.Fatal(err)
		}
		ry, err := MannWhitneyU(y, x, TwoSided)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(rx.U+ry.U, float64(n1*n2), 1e-9) {
			t.Fatalf("U1+U2 = %v, want %v", rx.U+ry.U, n1*n2)
		}
		// Two-sided p must agree regardless of argument order.
		if !almostEqual(rx.P, ry.P, 1e-9) {
			t.Fatalf("two-sided p asymmetric: %v vs %v", rx.P, ry.P)
		}
	}
}

func TestMannWhitneyUHandComputed(t *testing.T) {
	// x = {1,2,3}, y = {4,5,6,7}: R1 = 6, U1 = 0, mu = 6, var = 3*4*8/12 = 8.
	// z(Less) = (0 + 0.5 - 6)/sqrt(8) = -1.94454...
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6, 7}
	res, err := MannWhitneyU(x, y, Less)
	if err != nil {
		t.Fatal(err)
	}
	if res.U != 0 {
		t.Errorf("U = %v, want 0", res.U)
	}
	wantZ := (0.5 - 6) / math.Sqrt(8)
	if !almostEqual(res.Z, wantZ, 1e-12) {
		t.Errorf("Z = %v, want %v", res.Z, wantZ)
	}
	if !almostEqual(res.P, NormalCDF(wantZ), 1e-12) {
		t.Errorf("P = %v, want %v", res.P, NormalCDF(wantZ))
	}
}

func TestMannWhitneyUAllTied(t *testing.T) {
	x := []float64{5, 5, 5, 5}
	y := []float64{5, 5, 5, 5}
	res, err := MannWhitneyU(x, y, Less)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Errorf("all-tied: p = %v, want 1 (no evidence)", res.P)
	}
}

func TestMannWhitneyUTooFew(t *testing.T) {
	if _, err := MannWhitneyU([]float64{1}, []float64{2, 3, 4}, Less); err == nil {
		t.Error("want ErrTooFewSamples")
	}
}

func TestAlternativeString(t *testing.T) {
	if TwoSided.String() != "two-sided" || Less.String() != "less" || Greater.String() != "greater" {
		t.Error("Alternative.String mismatch")
	}
	if Alternative(42).String() != "unknown" {
		t.Error("unknown Alternative should stringify as unknown")
	}
}
