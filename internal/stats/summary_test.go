package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Σ(x−5)² = 9+1+1+1+0+0+4+16 = 32; var = 32/7.
	if got := Variance(xs); !almostEqual(got, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance([]float64{1})) {
		t.Error("degenerate inputs should be NaN")
	}
}

func TestQuantileType7(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {0.75, 3.25},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median = %v, want 2", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBoxplot(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 100}
	b := Boxplot(xs)
	if b.N != 8 || b.Min != 1 || b.Max != 100 {
		t.Fatalf("basic fields wrong: %+v", b)
	}
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Errorf("outliers = %v, want [100]", b.Outliers)
	}
	if b.WhiskerHi >= 100 {
		t.Errorf("upper whisker %v should exclude the outlier", b.WhiskerHi)
	}
	if b.WhiskerLo != 1 {
		t.Errorf("lower whisker = %v, want 1", b.WhiskerLo)
	}
	if b.Q1 > b.Median || b.Median > b.Q3 {
		t.Errorf("quartile ordering violated: %+v", b)
	}
	empty := Boxplot(nil)
	if empty.N != 0 {
		t.Errorf("empty boxplot: %+v", empty)
	}
}

func TestBoxplotInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		b := Boxplot(xs)
		if !(b.Min <= b.WhiskerLo && b.WhiskerLo <= b.Q1 && b.Q1 <= b.Median &&
			b.Median <= b.Q3 && b.Q3 <= b.WhiskerHi && b.WhiskerHi <= b.Max) {
			t.Fatalf("ordering invariant violated: %+v", b)
		}
		iqr := b.Q3 - b.Q1
		for _, o := range b.Outliers {
			if o >= b.Q1-1.5*iqr && o <= b.Q3+1.5*iqr {
				t.Fatalf("non-outlier %v reported as outlier: %+v", o, b)
			}
		}
	}
}

func TestEmpiricalCDFAndQuantile(t *testing.T) {
	e := NewEmpirical([]float64{3, 1, 2, 2})
	if e.Len() != 4 {
		t.Fatalf("Len = %d", e.Len())
	}
	if got := e.CDF(0); got != 0 {
		t.Errorf("CDF(0) = %v", got)
	}
	if got := e.CDF(2); got != 0.75 {
		t.Errorf("CDF(2) = %v, want 0.75", got)
	}
	if got := e.CDF(3); got != 1 {
		t.Errorf("CDF(3) = %v, want 1", got)
	}
	if got := e.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v", got)
	}
	if lo, hi := e.Support(); lo != 1 || hi != 3 {
		t.Errorf("Support = %v, %v", lo, hi)
	}
	xs, fs := e.CDFPoints()
	if len(xs) != 3 || fs[len(fs)-1] != 1 {
		t.Errorf("CDFPoints = %v %v", xs, fs)
	}
	if !sort.Float64sAreSorted(xs) {
		t.Errorf("CDFPoints xs not sorted: %v", xs)
	}
}

func TestEmpiricalKDEIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	e := NewEmpirical(xs)
	grid := Linspace(-6, 6, 601)
	pdf := e.KDE(grid)
	var integral float64
	for i := 1; i < len(grid); i++ {
		integral += (pdf[i] + pdf[i-1]) / 2 * (grid[i] - grid[i-1])
	}
	if !almostEqual(integral, 1, 0.02) {
		t.Errorf("KDE integral = %v, want ≈1", integral)
	}
	for _, v := range pdf {
		if v < 0 {
			t.Fatalf("negative density %v", v)
		}
	}
}

func TestLinspace(t *testing.T) {
	got := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("Linspace = %v", got)
		}
	}
	if got := Linspace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Errorf("n=1: %v", got)
	}
}

func TestBoxplotSingleElement(t *testing.T) {
	// The twin's tolerance math summarizes arbitrarily small comparison
	// sets; a one-sample boxplot must collapse, not misplace whiskers.
	b := Boxplot([]float64{3.5})
	if b.N != 1 {
		t.Fatalf("N = %d", b.N)
	}
	for name, v := range map[string]float64{
		"Min": b.Min, "Q1": b.Q1, "Median": b.Median, "Q3": b.Q3,
		"Max": b.Max, "WhiskerLo": b.WhiskerLo, "WhiskerHi": b.WhiskerHi,
	} {
		if v != 3.5 {
			t.Errorf("%s = %v, want 3.5", name, v)
		}
	}
	if len(b.Outliers) != 0 {
		t.Errorf("outliers = %v, want none", b.Outliers)
	}
}

func TestBoxplotAllEqual(t *testing.T) {
	b := Boxplot([]float64{2, 2, 2, 2, 2})
	if b.N != 5 {
		t.Fatalf("N = %d", b.N)
	}
	if b.Q1 != 2 || b.Median != 2 || b.Q3 != 2 || b.WhiskerLo != 2 || b.WhiskerHi != 2 {
		t.Errorf("all-equal box did not collapse: %+v", b)
	}
	if len(b.Outliers) != 0 {
		t.Errorf("outliers = %v, want none (IQR 0 fences sit on the value)", b.Outliers)
	}
}

func TestQuantileNaNInData(t *testing.T) {
	// NaNs sort first (sort.Float64s): order statistics touching the NaN
	// block return NaN, those entirely above it stay finite.
	xs := []float64{2, math.NaN(), 1, 3}
	if got := Quantile(xs, 0); !math.IsNaN(got) {
		t.Errorf("q=0 = %v, want NaN (NaN sorts first)", got)
	}
	if got := Quantile(xs, 1); got != 3 {
		t.Errorf("q=1 = %v, want 3", got)
	}
	// Median of n=4 interpolates positions 1 and 2 (values 1 and 2): the
	// NaN at position 0 is out of reach.
	if got := Quantile(xs, 0.5); got != 1.5 {
		t.Errorf("q=0.5 = %v, want 1.5", got)
	}
	// One position below the median touches the NaN.
	if got := Quantile(xs, 1.0/6); !math.IsNaN(got) {
		t.Errorf("q=1/6 = %v, want NaN (interpolates against the NaN)", got)
	}
}
