package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestRelMeanDiff(t *testing.T) {
	a := []float64{4, 4, 4} // mean 4
	b := []float64{2, 2, 2} // mean 2
	if got := RelMeanDiff(a, b); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("RelMeanDiff = %v, want 0.5", got)
	}
	if got := RelMeanDiff(b, a); !almostEqual(got, -0.5, 1e-12) {
		t.Errorf("RelMeanDiff = %v, want -0.5", got)
	}
	if got := RelMeanDiff([]float64{0}, []float64{0}); got != 0 {
		t.Errorf("zero means: %v", got)
	}
	// Antisymmetric when both means are positive? No — denominator is the
	// max, so f(a,b) = -f(b,a) holds exactly. Verify on random data.
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 100; i++ {
		x := []float64{rng.Float64() + 0.1, rng.Float64() + 0.1}
		y := []float64{rng.Float64() + 0.1, rng.Float64() + 0.1}
		if !almostEqual(RelMeanDiff(x, y), -RelMeanDiff(y, x), 1e-12) {
			t.Fatal("RelMeanDiff not antisymmetric")
		}
	}
}

func TestHalfSample(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := []float64{1, 2, 3, 4, 5, 6, 7}
	half := HalfSample(rng, xs)
	if len(half) != 4 { // ⌈7/2⌉
		t.Fatalf("len = %d, want 4", len(half))
	}
	// All elements must come from xs, without replacement.
	seen := map[float64]int{}
	for _, v := range half {
		seen[v]++
		if v < 1 || v > 7 {
			t.Fatalf("foreign element %v", v)
		}
	}
	for v, c := range seen {
		if c > 1 {
			t.Fatalf("element %v sampled %d times (with replacement?)", v, c)
		}
	}
}

func TestODiffCentersNearRelMeanDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := make([]float64, 100)
	y := make([]float64, 100)
	for i := range x {
		x[i] = 10 + rng.NormFloat64()*0.1
		y[i] = 5 + rng.NormFloat64()*0.1
	}
	od := ODiff(rng, x, y, 500)
	if len(od) != 500 {
		t.Fatalf("len = %d", len(od))
	}
	if got, want := Mean(od), RelMeanDiff(x, y); math.Abs(got-want) > 0.01 {
		t.Errorf("ODiff mean = %v, want ≈%v", got, want)
	}
}

func TestBootstrapCI(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = 3 + rng.NormFloat64()
	}
	lo, hi := BootstrapCI(rng, xs, 400, 0.95, Mean)
	if !(lo < 3 && 3 < hi) {
		t.Errorf("95%% CI [%v, %v] should contain the true mean 3", lo, hi)
	}
	if hi-lo > 0.5 {
		t.Errorf("CI too wide: [%v, %v]", lo, hi)
	}
}

func TestJackknife(t *testing.T) {
	xs := []float64{1, 2, 3}
	got := Jackknife(xs, Mean)
	want := []float64{2.5, 2, 1.5}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("Jackknife = %v, want %v", got, want)
		}
	}
}
