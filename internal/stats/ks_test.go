package stats

import (
	"math/rand"
	"testing"
)

func TestKolmogorovSmirnovIdenticalSamples(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	res, err := KolmogorovSmirnov(x, x)
	if err != nil {
		t.Fatal(err)
	}
	if res.D != 0 {
		t.Errorf("D = %v, want 0 for identical samples", res.D)
	}
	if res.P < 0.999 {
		t.Errorf("p = %v, want ~1", res.P)
	}
}

func TestKolmogorovSmirnovDisjointSamples(t *testing.T) {
	x := make([]float64, 50)
	y := make([]float64, 50)
	for i := range x {
		x[i] = float64(i)
		y[i] = float64(i) + 1000
	}
	res, err := KolmogorovSmirnov(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.D != 1 {
		t.Errorf("D = %v, want 1 for disjoint samples", res.D)
	}
	if res.P > 1e-6 {
		t.Errorf("p = %v, want ~0", res.P)
	}
}

func TestKolmogorovSmirnovHandComputedD(t *testing.T) {
	// x = {1,2,3,4}, y = {3,4,5,6}.
	// After value 2: F1 = 0.5, F2 = 0 → D = 0.5 (max).
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 4, 5, 6}
	res, err := KolmogorovSmirnov(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.D != 0.5 {
		t.Errorf("D = %v, want 0.5", res.D)
	}
}

func TestKolmogorovSmirnovNullRate(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	rejections := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		x := make([]float64, 100)
		y := make([]float64, 100)
		for j := range x {
			x[j] = rng.NormFloat64()
			y[j] = rng.NormFloat64()
		}
		res, err := KolmogorovSmirnov(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if res.P < 0.05 {
			rejections++
		}
	}
	rate := float64(rejections) / trials
	// The asymptotic p-value is known to be conservative-ish; allow slack.
	if rate > 0.09 {
		t.Errorf("null rejection rate = %v, want ≲0.05", rate)
	}
}

func TestKolmogorovSmirnovDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := make([]float64, 200)
	y := make([]float64, 200)
	for j := range x {
		x[j] = rng.NormFloat64()
		y[j] = rng.NormFloat64() + 1.0
	}
	res, err := KolmogorovSmirnov(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Errorf("shifted distributions: p = %v, want tiny", res.P)
	}
}

func TestKolmogorovSmirnovTooFew(t *testing.T) {
	if _, err := KolmogorovSmirnov([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("want ErrTooFewSamples")
	}
}
