package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestRegIncBetaClosedForms(t *testing.T) {
	cases := []struct {
		name    string
		a, b, x float64
		want    float64
	}{
		{"I_x(1,1)=x", 1, 1, 0.3, 0.3},
		{"I_x(1,1)=x mid", 1, 1, 0.5, 0.5},
		{"I_x(2,1)=x^2", 2, 1, 0.4, 0.16},
		{"I_x(3,1)=x^3", 3, 1, 0.7, 0.343},
		{"I_x(1,2)=1-(1-x)^2", 1, 2, 0.25, 1 - 0.75*0.75},
		{"I_x(1,5)=1-(1-x)^5", 1, 5, 0.1, 1 - math.Pow(0.9, 5)},
		{"symmetric a=b at 0.5", 4, 4, 0.5, 0.5},
		{"symmetric a=b at 0.5 half-int", 2.5, 2.5, 0.5, 0.5},
		// I_x(2,2) = x^2 (3-2x)
		{"I_x(2,2)", 2, 2, 0.3, 0.09 * (3 - 0.6)},
	}
	for _, c := range cases {
		got := RegIncBeta(c.a, c.b, c.x)
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("%s: RegIncBeta(%v,%v,%v) = %v, want %v", c.name, c.a, c.b, c.x, got, c.want)
		}
	}
}

func TestRegIncBetaBoundaries(t *testing.T) {
	if got := RegIncBeta(2, 3, 0); got != 0 {
		t.Errorf("x=0: got %v, want 0", got)
	}
	if got := RegIncBeta(2, 3, 1); got != 1 {
		t.Errorf("x=1: got %v, want 1", got)
	}
	if got := RegIncBeta(-1, 3, 0.5); !math.IsNaN(got) {
		t.Errorf("a<0: got %v, want NaN", got)
	}
	if got := RegIncBeta(2, 3, math.NaN()); !math.IsNaN(got) {
		t.Errorf("x=NaN: got %v, want NaN", got)
	}
}

func TestRegIncBetaSymmetryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		a := 0.5 + 10*rng.Float64()
		b := 0.5 + 10*rng.Float64()
		x := rng.Float64()
		lhs := RegIncBeta(a, b, x)
		rhs := 1 - RegIncBeta(b, a, 1-x)
		return almostEqual(lhs, rhs, 1e-10)
	}
	for i := 0; i < 500; i++ {
		if !f() {
			t.Fatalf("symmetry I_x(a,b) = 1 - I_{1-x}(b,a) violated on iteration %d", i)
		}
	}
}

func TestRegIncBetaMonotoneInX(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := 0.5 + 5*rng.Float64()
		b := 0.5 + 5*rng.Float64()
		prev := 0.0
		for x := 0.0; x <= 1.0; x += 0.01 {
			v := RegIncBeta(a, b, x)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRegIncGammaLowerClosedForms(t *testing.T) {
	// P(1, x) = 1 - e^{-x}
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x)
		if got := RegIncGammaLower(1, x); !almostEqual(got, want, 1e-12) {
			t.Errorf("P(1,%v) = %v, want %v", x, got, want)
		}
	}
	// P(1/2, x) = erf(sqrt(x))
	for _, x := range []float64{0.25, 1, 4} {
		want := math.Erf(math.Sqrt(x))
		if got := RegIncGammaLower(0.5, x); !almostEqual(got, want, 1e-12) {
			t.Errorf("P(0.5,%v) = %v, want %v", x, got, want)
		}
	}
	if got := RegIncGammaLower(2, 0); got != 0 {
		t.Errorf("P(2,0) = %v, want 0", got)
	}
}

func TestLnBeta(t *testing.T) {
	// B(1,1)=1, B(2,3)=1/12, B(0.5,0.5)=π
	cases := []struct{ a, b, want float64 }{
		{1, 1, 0},
		{2, 3, math.Log(1.0 / 12)},
		{0.5, 0.5, math.Log(math.Pi)},
	}
	for _, c := range cases {
		if got := LnBeta(c.a, c.b); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("LnBeta(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
