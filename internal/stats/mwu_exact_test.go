package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestMWUExactTinyCase(t *testing.T) {
	// x = {1,2}, y = {3,4,5}: U1 = 0. Under the null, P(U <= 0) = 1/C(5,2) = 0.1.
	x := []float64{1, 2}
	y := []float64{3, 4, 5}
	res, err := MannWhitneyUExact(x, y, Less)
	if err != nil {
		t.Fatal(err)
	}
	if res.U != 0 {
		t.Fatalf("U = %v", res.U)
	}
	if !almostEqual(res.P, 0.1, 1e-12) {
		t.Errorf("exact P = %v, want 0.1", res.P)
	}
	// Greater: P(U >= 0) = 1.
	g, _ := MannWhitneyUExact(x, y, Greater)
	if g.P != 1 {
		t.Errorf("greater P = %v, want 1", g.P)
	}
}

func TestMWUExactSymmetricNull(t *testing.T) {
	// Interleaved samples: U1 near the center; two-sided p should be large.
	x := []float64{1, 3, 5, 7}
	y := []float64{2, 4, 6, 8}
	res, err := MannWhitneyUExact(x, y, TwoSided)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.5 {
		t.Errorf("interleaved samples: p = %v, want large", res.P)
	}
}

func TestMWUExactCountTable(t *testing.T) {
	// n1 = n2 = 2 → C(4,2) = 6 assignments, U distribution 1,1,2,1,1 over U=0..4.
	counts := mwuCountTable(2, 2)
	want := []float64{1, 1, 2, 1, 1}
	if len(counts) != len(want) {
		t.Fatalf("len = %d", len(counts))
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
}

func TestMWUExactAgreesWithApproxAtModerateN(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n1, n2 := 10+rng.Intn(8), 10+rng.Intn(8)
		x := make([]float64, n1)
		y := make([]float64, n2)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64() + 0.4
		}
		exact, err := MannWhitneyUExact(x, y, Less)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := MannWhitneyU(x, y, Less)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact.P-approx.P) > 0.03 {
			t.Errorf("trial %d: exact %v vs approx %v", trial, exact.P, approx.P)
		}
	}
}

func TestMWUExactFallsBackOnTiesAndLargeN(t *testing.T) {
	// Ties → falls back (result must match the approximate test).
	x := []float64{1, 1, 2, 3}
	y := []float64{2, 3, 4, 5}
	ex, err := MannWhitneyUExact(x, y, Less)
	if err != nil {
		t.Fatal(err)
	}
	ap, _ := MannWhitneyU(x, y, Less)
	if ex.P != ap.P {
		t.Errorf("tie fallback: %v vs %v", ex.P, ap.P)
	}
	// Large n → falls back without error.
	big := make([]float64, MaxExactN+1)
	for i := range big {
		big[i] = float64(i) * 1.7
	}
	big2 := make([]float64, MaxExactN+1)
	for i := range big2 {
		big2[i] = float64(i)*1.7 + 0.5
	}
	if _, err := MannWhitneyUExact(big, big2, Less); err != nil {
		t.Fatal(err)
	}
}

func TestMWUExactEmpty(t *testing.T) {
	if _, err := MannWhitneyUExact(nil, []float64{1}, Less); err == nil {
		t.Error("empty sample accepted")
	}
}
