package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.959963984540054, 0.975},
		{2.5758293035489004, 0.995},
		{-3, 0.0013498980316300933},
	}
	for _, c := range cases {
		if got := NormalCDF(c.z); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.z, got, c.want)
		}
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{1e-10, 1e-4, 0.01, 0.05, 0.3, 0.5, 0.7, 0.95, 0.99, 0.9999, 1 - 1e-10} {
		z := NormalQuantile(p)
		if got := NormalCDF(z); !almostEqual(got, p, 1e-10) {
			t.Errorf("NormalCDF(NormalQuantile(%v)) = %v", p, got)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("NormalQuantile boundaries should be ±Inf")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) || !math.IsNaN(NormalQuantile(1.1)) {
		t.Error("NormalQuantile outside [0,1] should be NaN")
	}
}

// Closed-form Student-t CDFs for small degrees of freedom.
func tCDF1(t float64) float64 { return 0.5 + math.Atan(t)/math.Pi }
func tCDF2(t float64) float64 { return 0.5 + t/(2*math.Sqrt(2+t*t)) }
func tCDF3(t float64) float64 {
	x := t / math.Sqrt(3)
	return 0.5 + (x/(1+x*x)+math.Atan(x))/math.Pi
}

func TestStudentTCDFClosedForms(t *testing.T) {
	ts := []float64{-5, -2.3, -1, -0.2, 0, 0.5, 1, 1.96, 3.5762, 8}
	for _, tv := range ts {
		if got, want := StudentTCDF(tv, 1), tCDF1(tv); !almostEqual(got, want, 1e-10) {
			t.Errorf("df=1, t=%v: got %v want %v", tv, got, want)
		}
		if got, want := StudentTCDF(tv, 2), tCDF2(tv); !almostEqual(got, want, 1e-10) {
			t.Errorf("df=2, t=%v: got %v want %v", tv, got, want)
		}
		if got, want := StudentTCDF(tv, 3), tCDF3(tv); !almostEqual(got, want, 1e-10) {
			t.Errorf("df=3, t=%v: got %v want %v", tv, got, want)
		}
	}
}

func TestStudentTCDFLimits(t *testing.T) {
	// As df grows, the t distribution approaches the standard normal.
	for _, tv := range []float64{-2, -1, 0, 1, 2} {
		got := StudentTCDF(tv, 1e7)
		want := NormalCDF(tv)
		if !almostEqual(got, want, 1e-6) {
			t.Errorf("df=1e7, t=%v: got %v want normal %v", tv, got, want)
		}
	}
	if got := StudentTCDF(math.Inf(1), 5); got != 1 {
		t.Errorf("t=+Inf: got %v", got)
	}
	if got := StudentTCDF(math.Inf(-1), 5); got != 0 {
		t.Errorf("t=-Inf: got %v", got)
	}
	if got := StudentTCDF(0, 7); got != 0.5 {
		t.Errorf("t=0 should be exactly 0.5, got %v", got)
	}
}

func TestStudentTCDFSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		df := 1 + 50*rng.Float64()
		tv := -8 + 16*rng.Float64()
		lhs := StudentTCDF(tv, df)
		rhs := 1 - StudentTCDF(-tv, df)
		if !almostEqual(lhs, rhs, 1e-12) {
			t.Fatalf("symmetry violated at t=%v df=%v: %v vs %v", tv, df, lhs, rhs)
		}
	}
}

func TestChiSquaredCDF(t *testing.T) {
	// k=2: F(x) = 1 - e^{-x/2}
	for _, x := range []float64{0.5, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x/2)
		if got := ChiSquaredCDF(x, 2); !almostEqual(got, want, 1e-12) {
			t.Errorf("ChiSquaredCDF(%v, 2) = %v, want %v", x, got, want)
		}
	}
	if got := ChiSquaredCDF(-1, 4); got != 0 {
		t.Errorf("negative x: got %v", got)
	}
}

func TestKolmogorovQ(t *testing.T) {
	// Q(1.0) = 2(e^-2 - e^-8 + e^-18 - ...) ≈ 0.26999967...
	want := 2 * (math.Exp(-2) - math.Exp(-8) + math.Exp(-18) - math.Exp(-32))
	if got := KolmogorovQ(1.0); !almostEqual(got, want, 1e-9) {
		t.Errorf("KolmogorovQ(1) = %v, want %v", got, want)
	}
	if got := KolmogorovQ(0); got != 1 {
		t.Errorf("KolmogorovQ(0) = %v, want 1", got)
	}
	if got := KolmogorovQ(10); got > 1e-20 {
		t.Errorf("KolmogorovQ(10) = %v, want ~0", got)
	}
	// Monotone decreasing.
	prev := 1.0
	for l := 0.05; l < 3; l += 0.05 {
		v := KolmogorovQ(l)
		if v > prev+1e-12 {
			t.Fatalf("KolmogorovQ not monotone at λ=%v: %v > %v", l, v, prev)
		}
		if v < 0 || v > 1 {
			t.Fatalf("KolmogorovQ(%v) = %v outside [0,1]", l, v)
		}
		prev = v
	}
}
