package stats

// Exact Mann-Whitney U p-values for small samples, by dynamic programming
// over the null distribution of U (all (n1+n2 choose n1) rank assignments
// equally likely, no ties). The normal approximation used by MannWhitneyU
// is accurate from ~8 samples per side; below that the exact distribution
// is preferable, and it also serves as a test oracle for the approximation.

// mwuCountTable builds c[u] = number of rank assignments with U = u, for
// samples of sizes n1 and n2, via the classic recurrence
//
//	c_{n1,n2}(u) = c_{n1-1,n2}(u-n2) + c_{n1,n2-1}(u).
func mwuCountTable(n1, n2 int) []float64 {
	maxU := n1 * n2
	// dp[i][j][u] reduced to rolling over i.
	prev := make([][]float64, n2+1)
	cur := make([][]float64, n2+1)
	for j := 0; j <= n2; j++ {
		prev[j] = make([]float64, maxU+1)
		cur[j] = make([]float64, maxU+1)
	}
	// i = 0: U must be 0 regardless of j.
	for j := 0; j <= n2; j++ {
		prev[j][0] = 1
	}
	for i := 1; i <= n1; i++ {
		for j := 0; j <= n2; j++ {
			for u := 0; u <= maxU; u++ {
				var v float64
				if u-j >= 0 {
					v += prev[j][u-j] // smallest remaining obs is from sample 1
				}
				if j > 0 {
					v += cur[j-1][u] // ... or from sample 2
				}
				cur[j][u] = v
			}
		}
		prev, cur = cur, prev
	}
	return prev[n2]
}

// MannWhitneyUExact computes the exact p-value of the Mann-Whitney U test
// for small, tie-free samples. For samples with ties or more than
// MaxExactN observations per side it falls back to the normal
// approximation of MannWhitneyU.
func MannWhitneyUExact(x, y []float64, alt Alternative) (MWUResult, error) {
	if len(x) < 1 || len(y) < 1 {
		return MWUResult{}, ErrTooFewSamples
	}
	if len(x) > MaxExactN || len(y) > MaxExactN || hasTies(x, y) {
		return MannWhitneyU(x, y, alt)
	}
	n1, n2 := len(x), len(y)
	combined := make([]float64, 0, n1+n2)
	combined = append(combined, x...)
	combined = append(combined, y...)
	ranks := Ranks(combined)
	var r1 float64
	for i := range x {
		r1 += ranks[i]
	}
	u1 := r1 - float64(n1*(n1+1))/2

	counts := mwuCountTable(n1, n2)
	var total float64
	for _, c := range counts {
		total += c
	}
	cdf := func(u float64) float64 { // P(U <= u)
		var s float64
		for i := 0; i <= int(u) && i < len(counts); i++ {
			s += counts[i]
		}
		return s / total
	}
	sf := func(u float64) float64 { // P(U >= u)
		var s float64
		for i := int(u); i < len(counts); i++ {
			s += counts[i]
		}
		return s / total
	}

	res := MWUResult{U: u1, RankX: r1}
	switch alt {
	case Less:
		res.P = cdf(u1)
	case Greater:
		res.P = sf(u1)
	default:
		p := 2 * minF(cdf(u1), sf(u1))
		res.P = clampProb(p)
	}
	return res, nil
}

// MaxExactN bounds the per-sample size for the exact MWU computation
// (the DP is O(n1·n2·(n1·n2)) and the normal approximation is already
// excellent beyond this).
const MaxExactN = 25

func hasTies(x, y []float64) bool {
	seen := make(map[float64]bool, len(x)+len(y))
	for _, v := range x {
		if seen[v] {
			return true
		}
		seen[v] = true
	}
	for _, v := range y {
		if seen[v] {
			return true
		}
		seen[v] = true
	}
	return false
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
