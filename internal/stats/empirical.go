package stats

import (
	"math"
	"sort"
)

// Empirical is an empirical distribution built from a sample. It supports
// CDF evaluation, quantiles, and a Gaussian-kernel density estimate — the
// machinery behind the O_diff/T_diff comparison plots (Figure 2) and the
// T_diff "normal throughput variation" distribution of §4.1.
type Empirical struct {
	sorted []float64
}

// NewEmpirical builds an empirical distribution from the sample xs.
// The input is copied.
func NewEmpirical(xs []float64) *Empirical {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &Empirical{sorted: sorted}
}

// Len returns the number of samples.
func (e *Empirical) Len() int { return len(e.sorted) }

// Samples returns the sorted samples backing the distribution.
// The caller must not modify the returned slice.
func (e *Empirical) Samples() []float64 { return e.sorted }

// CDF returns the fraction of samples ≤ x.
func (e *Empirical) CDF(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-quantile of the sample.
func (e *Empirical) Quantile(q float64) float64 {
	return quantileSorted(e.sorted, q)
}

// Mean returns the sample mean.
func (e *Empirical) Mean() float64 { return Mean(e.sorted) }

// CDFPoints returns the (x, F(x)) step points of the empirical CDF,
// suitable for plotting.
func (e *Empirical) CDFPoints() (xs, fs []float64) {
	n := len(e.sorted)
	xs = make([]float64, 0, n)
	fs = make([]float64, 0, n)
	for i := 0; i < n; {
		j := i
		//lint:ignore floateq exact tie detection on sorted samples builds the ECDF steps
		for j+1 < n && e.sorted[j+1] == e.sorted[i] {
			j++
		}
		xs = append(xs, e.sorted[i])
		fs = append(fs, float64(j+1)/float64(n))
		i = j + 1
	}
	return xs, fs
}

// KDE evaluates a Gaussian kernel density estimate of the sample at each of
// the points in at, using Silverman's rule-of-thumb bandwidth. This renders
// the PDF panels of Figure 2.
func (e *Empirical) KDE(at []float64) []float64 {
	out := make([]float64, len(at))
	n := len(e.sorted)
	if n == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	h := e.silvermanBandwidth()
	if h <= 0 || math.IsNaN(h) {
		h = 1e-9
	}
	norm := 1 / (float64(n) * h * math.Sqrt(2*math.Pi))
	for i, x := range at {
		var s float64
		for _, xi := range e.sorted {
			u := (x - xi) / h
			s += math.Exp(-0.5 * u * u)
		}
		out[i] = norm * s
	}
	return out
}

func (e *Empirical) silvermanBandwidth() float64 {
	n := float64(len(e.sorted))
	if n < 2 {
		return 0
	}
	sd := StdDev(e.sorted)
	iqr := quantileSorted(e.sorted, 0.75) - quantileSorted(e.sorted, 0.25)
	a := sd
	if iqr > 0 && iqr/1.349 < a {
		a = iqr / 1.349
	}
	return 0.9 * a * math.Pow(n, -0.2)
}

// Support returns [min, max] of the sample, or NaNs when empty.
func (e *Empirical) Support() (lo, hi float64) {
	if len(e.sorted) == 0 {
		return math.NaN(), math.NaN()
	}
	return e.sorted[0], e.sorted[len(e.sorted)-1]
}

// Linspace returns n evenly spaced points covering [lo, hi]; n must be ≥ 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}
