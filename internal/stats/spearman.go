package stats

import (
	"math"
)

// SpearmanResult holds a Spearman rank-correlation estimate and its p-value.
type SpearmanResult struct {
	Rho float64 // Spearman correlation coefficient in [-1, 1]
	T   float64 // t statistic used for the p-value
	P   float64 // p-value under the requested alternative
	N   int     // number of paired observations
}

// Spearman computes the Spearman rank correlation between the paired samples
// x and y, with the p-value from the t-distribution approximation
//
//	t = ρ √((n−2)/(1−ρ²)),   df = n−2.
//
// Alg. 1 of the paper rejects its null hypothesis ("the two loss-rate time
// series are not correlated") when this p-value is below the acceptable
// false-positive rate. The paper looks for loss rates that "increase and
// decrease together", i.e. positive correlation, so its callers use
// alt == Greater.
//
// Spearman is chosen over Pearson because it is normalized (captures trend,
// not absolute-value similarity) and is the correlation metric least
// sensitive to strong outliers.
func Spearman(x, y []float64, alt Alternative) (SpearmanResult, error) {
	if len(x) != len(y) {
		return SpearmanResult{}, errLenMismatch
	}
	n := len(x)
	if n < 4 {
		return SpearmanResult{}, ErrTooFewSamples
	}
	rx := Ranks(x)
	ry := Ranks(y)
	rho := pearson(rx, ry)
	res := SpearmanResult{Rho: rho, N: n}

	df := float64(n - 2)
	switch {
	case math.IsNaN(rho):
		// A constant series has no defined correlation; report no evidence.
		res.P = 1
		return res, nil
	case rho >= 1:
		res.T = math.Inf(1)
	case rho <= -1:
		res.T = math.Inf(-1)
	default:
		res.T = rho * math.Sqrt(df/(1-rho*rho))
	}

	switch alt {
	case Greater:
		res.P = 1 - StudentTCDF(res.T, df)
	case Less:
		res.P = StudentTCDF(res.T, df)
	default:
		res.P = 2 * (1 - StudentTCDF(math.Abs(res.T), df))
	}
	res.P = clampProb(res.P)
	return res, nil
}

// Pearson computes the Pearson product-moment correlation of x and y.
// It is exposed for the ablation benchmarks that compare Alg. 1 against a
// Pearson-based variant.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, errLenMismatch
	}
	if len(x) < 2 {
		return 0, ErrTooFewSamples
	}
	return pearson(x, y), nil
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	//lint:ignore floateq guards exact division by zero (constant input)
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

var errLenMismatch = errorString("stats: paired samples have different lengths")

type errorString string

func (e errorString) Error() string { return string(e) }
