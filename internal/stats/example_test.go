package stats_test

import (
	"fmt"

	"github.com/nal-epfl/wehey/internal/stats"
)

// The §4.1 decision: is O_diff significantly smaller than T_diff?
func ExampleMannWhitneyU() {
	odiff := []float64{0.01, 0.02, 0.015, 0.03, 0.02, 0.01, 0.025, 0.02}
	tdiff := []float64{0.10, 0.15, 0.08, 0.22, 0.12, 0.18, 0.09, 0.14}
	res, err := stats.MannWhitneyU(odiff, tdiff, stats.Less)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("U = %.0f, significant at 0.05: %v\n", res.U, res.P < 0.05)
	// Output:
	// U = 0, significant at 0.05: true
}

// The Alg. 1 correlation check: do two loss-rate series trend together?
func ExampleSpearman() {
	lossRate1 := []float64{0.01, 0.02, 0.05, 0.04, 0.08, 0.07, 0.03, 0.02}
	lossRate2 := []float64{0.02, 0.03, 0.09, 0.06, 0.15, 0.11, 0.05, 0.03}
	res, err := stats.Spearman(lossRate1, lossRate2, stats.Greater)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("rho = %.3f, correlated at FP 0.05: %v\n", res.Rho, res.P < 0.05)
	// Output:
	// rho = 1.000, correlated at FP 0.05: true
}

// WeHe's detection: are the original and bit-inverted throughput CDFs
// significantly different?
func ExampleKolmogorovSmirnov() {
	original := []float64{2.0, 2.1, 1.9, 2.0, 2.2, 2.1, 1.8, 2.0, 1.9, 2.1}
	inverted := []float64{8.1, 7.9, 8.3, 8.0, 7.8, 8.2, 8.1, 7.7, 8.0, 8.4}
	res, err := stats.KolmogorovSmirnov(original, inverted)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("D = %.2f, differentiation: %v\n", res.D, res.P < 0.05)
	// Output:
	// D = 1.00, differentiation: true
}
