package stats

import (
	"math"
	"sort"
)

// KSResult holds the outcome of a two-sample Kolmogorov-Smirnov test.
type KSResult struct {
	D float64 // maximum distance between the two empirical CDFs
	P float64 // asymptotic two-sided p-value
}

// KolmogorovSmirnov performs the two-sample Kolmogorov-Smirnov test on x and
// y, returning the KS statistic D and the asymptotic two-sided p-value.
//
// WeHe's differentiation detector compares the CDFs of per-interval
// throughput achieved by the original and bit-inverted replays with this
// test (§2.1): if they differ significantly, there is traffic differentiation
// somewhere on the path.
func KolmogorovSmirnov(x, y []float64) (KSResult, error) {
	n1, n2 := len(x), len(y)
	if n1 < 2 || n2 < 2 {
		return KSResult{}, ErrTooFewSamples
	}
	xs := append([]float64(nil), x...)
	ys := append([]float64(nil), y...)
	sort.Float64s(xs)
	sort.Float64s(ys)

	var d float64
	i, j := 0, 0
	for i < n1 && j < n2 {
		v := math.Min(xs[i], ys[j])
		//lint:ignore floateq exact tie detection while merging sorted samples
		for i < n1 && xs[i] == v {
			i++
		}
		//lint:ignore floateq exact tie detection while merging sorted samples
		for j < n2 && ys[j] == v {
			j++
		}
		f1 := float64(i) / float64(n1)
		f2 := float64(j) / float64(n2)
		if diff := math.Abs(f1 - f2); diff > d {
			d = diff
		}
	}

	ne := float64(n1) * float64(n2) / float64(n1+n2)
	sqNe := math.Sqrt(ne)
	lambda := (sqNe + 0.12 + 0.11/sqNe) * d
	return KSResult{D: d, P: KolmogorovQ(lambda)}, nil
}
