package stats

import "sort"

// Ranks assigns fractional (mid) ranks to xs: the smallest value gets rank 1,
// and tied values all receive the average of the ranks they span. The result
// is aligned with xs (ranks[i] is the rank of xs[i]).
//
// Fractional ranking is what both the Mann-Whitney U test and the Spearman
// correlation coefficient require in the presence of ties.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	ranks := make([]float64, n)
	if n == 0 {
		return ranks
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })

	for i := 0; i < n; {
		j := i
		//lint:ignore floateq exact tie detection on sorted values assigns mid-ranks
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Positions i..j (0-based) are tied; mid-rank is the average of
		// 1-based ranks i+1..j+1.
		r := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = r
		}
		i = j + 1
	}
	return ranks
}

// TieGroups returns the sizes of the groups of tied values in xs
// (groups of size 1 are omitted). It is used for the tie correction in the
// Mann-Whitney U variance.
func TieGroups(xs []float64) []int {
	n := len(xs)
	if n == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var groups []int
	for i := 0; i < n; {
		j := i
		//lint:ignore floateq exact tie detection feeds the tie-correction terms
		for j+1 < n && sorted[j+1] == sorted[i] {
			j++
		}
		if j > i {
			groups = append(groups, j-i+1)
		}
		i = j + 1
	}
	return groups
}
