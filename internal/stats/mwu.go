package stats

import (
	"errors"
	"math"
)

// Alternative selects the alternative hypothesis of a one- or two-sided test.
type Alternative int

const (
	// TwoSided tests for any difference.
	TwoSided Alternative = iota
	// Less tests that the first sample is stochastically smaller
	// (smaller rank-sum) than the second.
	Less
	// Greater tests that the first sample is stochastically greater.
	Greater
)

// String returns the conventional name of the alternative.
func (a Alternative) String() string {
	switch a {
	case TwoSided:
		return "two-sided"
	case Less:
		return "less"
	case Greater:
		return "greater"
	}
	return "unknown"
}

// MWUResult holds the outcome of a Mann-Whitney U (Wilcoxon rank-sum) test.
type MWUResult struct {
	U      float64 // U statistic of the first sample
	Z      float64 // normal-approximation z score (with continuity correction)
	P      float64 // p-value under the requested alternative
	RankX  float64 // rank sum of the first sample
	TieVar float64 // tie-corrected variance of U
}

// ErrTooFewSamples is returned when a test is given fewer samples than it
// needs to produce a meaningful p-value.
var ErrTooFewSamples = errors.New("stats: too few samples")

// MannWhitneyU performs the Mann-Whitney U test comparing samples x and y,
// using the normal approximation with tie correction and a 0.5 continuity
// correction. This is the test WeHeY's throughput-comparison algorithm uses
// (with alt == Less: O_diff has significantly smaller rank-sum than T_diff).
//
// The normal approximation is accurate for len(x), len(y) >= 8, which all
// callers in this module satisfy; below 3 samples per side it returns
// ErrTooFewSamples.
func MannWhitneyU(x, y []float64, alt Alternative) (MWUResult, error) {
	n1, n2 := float64(len(x)), float64(len(y))
	if len(x) < 3 || len(y) < 3 {
		return MWUResult{}, ErrTooFewSamples
	}
	combined := make([]float64, 0, len(x)+len(y))
	combined = append(combined, x...)
	combined = append(combined, y...)
	ranks := Ranks(combined)

	var r1 float64
	for i := range x {
		r1 += ranks[i]
	}
	u1 := r1 - n1*(n1+1)/2

	n := n1 + n2
	mu := n1 * n2 / 2
	tieSum := 0.0
	for _, t := range TieGroups(combined) {
		tf := float64(t)
		tieSum += tf*tf*tf - tf
	}
	variance := n1 * n2 / 12 * ((n + 1) - tieSum/(n*(n-1)))
	if variance <= 0 {
		// All values identical: no evidence either way.
		return MWUResult{U: u1, Z: 0, P: 1, RankX: r1, TieVar: 0}, nil
	}
	sd := math.Sqrt(variance)

	res := MWUResult{U: u1, RankX: r1, TieVar: variance}
	switch alt {
	case Less:
		res.Z = (u1 + 0.5 - mu) / sd
		res.P = NormalCDF(res.Z)
	case Greater:
		res.Z = (u1 - 0.5 - mu) / sd
		res.P = 1 - NormalCDF(res.Z)
	default: // TwoSided
		var z float64
		if u1 > mu {
			z = (u1 - 0.5 - mu) / sd
		} else {
			z = (u1 + 0.5 - mu) / sd
		}
		res.Z = z
		res.P = clampProb(2 * (1 - NormalCDF(math.Abs(z))))
	}
	res.P = clampProb(res.P)
	return res, nil
}
