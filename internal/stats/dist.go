package stats

import "math"

// NormalCDF returns P(Z <= z) for a standard normal random variable Z.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalQuantile returns the z such that NormalCDF(z) = p, for p in (0, 1).
// It uses the Acklam rational approximation refined by one Halley step,
// accurate to ~1e-15 over the full range.
func NormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0: //lint:ignore floateq exact boundary maps to -Inf
			return math.Inf(-1)
		case p == 1: //lint:ignore floateq exact boundary maps to +Inf
			return math.Inf(1)
		}
		return math.NaN()
	}
	// Coefficients of the Acklam approximation.
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}

// StudentTCDF returns P(T <= t) for a Student-t random variable with df
// degrees of freedom.
func StudentTCDF(t, df float64) float64 {
	if math.IsNaN(t) || df <= 0 {
		return math.NaN()
	}
	if math.IsInf(t, 1) {
		return 1
	}
	if math.IsInf(t, -1) {
		return 0
	}
	x := df / (df + t*t)
	half := 0.5 * RegIncBeta(df/2, 0.5, x)
	if t >= 0 {
		return 1 - half
	}
	return half
}

// ChiSquaredCDF returns P(X <= x) for a chi-squared random variable with k
// degrees of freedom.
func ChiSquaredCDF(x, k float64) float64 {
	if x <= 0 {
		return 0
	}
	return RegIncGammaLower(k/2, x/2)
}

// KolmogorovQ evaluates the Kolmogorov survival function
//
//	Q(λ) = 2 Σ_{j≥1} (-1)^{j-1} exp(-2 j² λ²),
//
// the asymptotic tail probability of the (scaled) two-sample KS statistic.
func KolmogorovQ(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	const (
		eps1    = 1e-6 // relative tolerance on successive terms
		eps2    = 1e-12
		maxIter = 200
	)
	sum := 0.0
	prev := 0.0
	sign := 1.0
	for j := 1; j <= maxIter; j++ {
		term := sign * 2 * math.Exp(-2*float64(j*j)*lambda*lambda)
		sum += term
		if math.Abs(term) <= eps1*prev || math.Abs(term) <= eps2*sum {
			return clampProb(sum)
		}
		prev = math.Abs(term)
		sign = -sign
	}
	return clampProb(sum)
}

func clampProb(p float64) float64 {
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	}
	return p
}
