// Package stats implements the statistical machinery WeHeY is built on:
// rank-based hypothesis tests (Mann-Whitney U, Spearman correlation,
// Kolmogorov-Smirnov), the special functions backing their p-values,
// empirical distributions, Monte-Carlo subsampling, and bootstrap/jackknife
// resampling.
//
// Everything is implemented from scratch on top of the standard library and
// is fully deterministic: every randomized routine takes an explicit
// *rand.Rand.
//
// The tests in this package check the implementations against reference
// values computed with SciPy, and testing/quick property tests check the
// structural invariants (rank sums, symmetry, p-value ranges).
package stats
