package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n−1) sample variance of xs, or NaN when
// fewer than two samples are given.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// It returns NaN for an empty slice.
//
// NaNs in xs are kept, not filtered: sort.Float64s orders them before
// every number, so quantiles whose order statistics touch a NaN position
// return NaN (low quantiles first), while quantiles entirely above the
// NaN block stay finite. Callers that want NaN-free answers must filter
// their data first — silently dropping samples here would misreport the
// sample size the quantile positions are computed from.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted is Quantile for an already-sorted slice.
func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	switch {
	case q <= 0:
		return sorted[0]
	case q >= 1:
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// BoxplotStats summarizes a sample the way a Tukey boxplot draws it:
// quartiles, whiskers at the last datum within 1.5 IQR of the box, and the
// points beyond the whiskers as outliers. Figure 5 of the paper is rendered
// from these.
type BoxplotStats struct {
	Min, Q1, Median, Q3, Max float64 // Min/Max over the full sample
	WhiskerLo, WhiskerHi     float64 // whisker positions
	Outliers                 []float64
	N                        int
}

// Boxplot computes BoxplotStats for xs. It returns a zero-value struct with
// N == 0 for an empty sample. Degenerate samples are well-defined: a
// single-element or all-equal sample collapses the box (Q1 = Median = Q3 =
// the value), both whiskers sit on that value, and there are no outliers.
func Boxplot(xs []float64) BoxplotStats {
	if len(xs) == 0 {
		return BoxplotStats{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	b := BoxplotStats{
		Min:    sorted[0],
		Q1:     quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		Q3:     quantileSorted(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
		N:      len(sorted),
	}
	iqr := b.Q3 - b.Q1
	loFence := b.Q1 - 1.5*iqr
	hiFence := b.Q3 + 1.5*iqr
	b.WhiskerLo = b.Max // will be lowered below
	b.WhiskerHi = b.Min
	for _, v := range sorted {
		if v >= loFence && v < b.WhiskerLo {
			b.WhiskerLo = v
		}
		if v <= hiFence && v > b.WhiskerHi {
			b.WhiskerHi = v
		}
		if v < loFence || v > hiFence {
			b.Outliers = append(b.Outliers, v)
		}
	}
	return b
}
