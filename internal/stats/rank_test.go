package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRanksSimple(t *testing.T) {
	got := Ranks([]float64{10, 30, 20})
	want := []float64{1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestRanksTies(t *testing.T) {
	// Values: 1, 2, 2, 3  → ranks 1, 2.5, 2.5, 4
	got := Ranks([]float64{2, 1, 3, 2})
	want := []float64{2.5, 1, 4, 2.5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestRanksAllTied(t *testing.T) {
	got := Ranks([]float64{5, 5, 5, 5})
	for _, r := range got {
		if r != 2.5 {
			t.Fatalf("all-tied ranks = %v, want all 2.5", got)
		}
	}
}

func TestRanksEmpty(t *testing.T) {
	if got := Ranks(nil); len(got) != 0 {
		t.Fatalf("Ranks(nil) = %v", got)
	}
}

// Property: rank sum is always n(n+1)/2 regardless of ties.
func TestRanksSumProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) {
				clean = append(clean, x)
			}
		}
		ranks := Ranks(clean)
		var sum float64
		for _, r := range ranks {
			sum += r
		}
		n := float64(len(clean))
		return almostEqual(sum, n*(n+1)/2, 1e-6*(n+1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: ranks are order-preserving.
func TestRanksOrderPreserving(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Floor(rng.Float64() * 10) // force ties
		}
		ranks := Ranks(xs)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				switch {
				case xs[i] < xs[j] && ranks[i] >= ranks[j]:
					t.Fatalf("order violated: xs=%v ranks=%v", xs, ranks)
				case xs[i] == xs[j] && ranks[i] != ranks[j]:
					t.Fatalf("tie rank mismatch: xs=%v ranks=%v", xs, ranks)
				}
			}
		}
	}
}

func TestTieGroups(t *testing.T) {
	got := TieGroups([]float64{1, 2, 2, 3, 3, 3, 4})
	want := []int{2, 3}
	if len(got) != len(want) {
		t.Fatalf("TieGroups = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TieGroups = %v, want %v", got, want)
		}
	}
	if got := TieGroups([]float64{1, 2, 3}); got != nil {
		t.Fatalf("no ties: got %v", got)
	}
	if got := TieGroups(nil); got != nil {
		t.Fatalf("empty: got %v", got)
	}
}
