package stats

import (
	"math/rand"
)

// Bootstrap draws iters bootstrap resamples (with replacement) of xs and
// returns stat evaluated on each. WeHe's original analysis uses bootstrap
// to bound statistical error in throughput comparisons; we expose it for the
// same purpose and for confidence intervals in the experiment harness.
func Bootstrap(rng *rand.Rand, xs []float64, iters int, stat func([]float64) float64) []float64 {
	n := len(xs)
	if n == 0 || iters <= 0 {
		// Nothing to resample: an empty sample set, not a panic in
		// rng.Intn(0) (and not iters evaluations of stat on no data).
		return nil
	}
	out := make([]float64, iters)
	buf := make([]float64, n)
	for i := range out {
		for j := range buf {
			buf[j] = xs[rng.Intn(n)]
		}
		out[i] = stat(buf)
	}
	return out
}

// BootstrapCI returns the (lo, hi) percentile bootstrap confidence interval
// at the given confidence level (e.g. 0.95) for stat over xs.
//
// Degenerate levels keep the percentile definition rather than erroring:
// level 0 collapses the interval onto the bootstrap median (both ends the
// 0.5-quantile of the resample distribution) and level 1 spans the full
// resample range (min, max). Levels outside [0, 1] clamp to that range,
// because Quantile clamps its argument.
func BootstrapCI(rng *rand.Rand, xs []float64, iters int, level float64, stat func([]float64) float64) (lo, hi float64) {
	samples := Bootstrap(rng, xs, iters, stat)
	if len(samples) == 0 {
		// Quantile of nothing is NaN; report a degenerate (0, 0) interval
		// so empty inputs stay NaN-free for downstream arithmetic.
		return 0, 0
	}
	alpha := (1 - level) / 2
	return Quantile(samples, alpha), Quantile(samples, 1-alpha)
}

// Jackknife returns the leave-one-out estimates of stat over xs:
// element i is stat(xs with xs[i] removed).
func Jackknife(xs []float64, stat func([]float64) float64) []float64 {
	n := len(xs)
	if n == 0 {
		// make([]float64, 0, n-1) below would panic on a negative cap.
		return nil
	}
	out := make([]float64, n)
	buf := make([]float64, 0, n-1)
	for i := range xs {
		buf = buf[:0]
		buf = append(buf, xs[:i]...)
		buf = append(buf, xs[i+1:]...)
		out[i] = stat(buf)
	}
	return out
}
