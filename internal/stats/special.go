package stats

import (
	"math"
)

// RegIncBeta computes the regularized incomplete beta function I_x(a, b),
// the CDF of the Beta(a, b) distribution evaluated at x. It underlies the
// Student-t CDF used for Spearman p-values.
//
// The implementation follows the classic continued-fraction expansion
// (Lentz's method), switching to the symmetry relation
// I_x(a,b) = 1 - I_{1-x}(b,a) where the continued fraction converges faster.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	case a <= 0 || b <= 0:
		return math.NaN()
	}
	// ln of the prefactor x^a (1-x)^b / (a B(a,b)).
	lbeta, _ := math.Lgamma(a + b)
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	lnPre := lbeta - lga - lgb + a*math.Log(x) + b*math.Log1p(-x)

	if x < (a+1)/(a+b+2) {
		return math.Exp(lnPre) * betaCF(a, b, x) / a
	}
	return 1 - math.Exp(lnPre)*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpMin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpMin {
		d = fpMin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		fm := float64(m)
		// Even step.
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// LnBeta returns the natural log of the complete beta function B(a, b).
func LnBeta(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// RegIncGammaLower computes the regularized lower incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a), the CDF of the Gamma(a, 1) distribution. It is
// used for chi-squared tail probabilities.
func RegIncGammaLower(a, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case a <= 0:
		return math.NaN()
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaCF(a, x)
}

// gammaSeries evaluates P(a,x) by its series representation (x < a+1).
func gammaSeries(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 3e-14
	)
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for n := 0; n < maxIter; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaCF evaluates Q(a,x) = 1 - P(a,x) by continued fraction (x >= a+1).
func gammaCF(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 3e-14
		fpMin   = 1e-300
	)
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / fpMin
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = b + an/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
