package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerSeedIdent flags the order-coupled seed counter pattern that PR 1
// had to excise: an integer declared outside a loop, incremented in the
// loop body, and used inside the loop as a rand.NewSource argument or as a
// seed-named parameter. Such seeds encode execution order, not experiment
// identity — reordering or parallelizing the loop silently changes every
// downstream result. Seeds must be derived from stable identity (the
// specSeed hash of experiment name + trial index), never from a counter.
var AnalyzerSeedIdent = &Analyzer{
	Name: "seedident",
	Doc:  "no incremented counters used as seeds across loop iterations",
	Run:  runSeedIdent,
}

func runSeedIdent(p *Pass) {
	p.walkFiles(func(n ast.Node) bool {
		var body *ast.BlockStmt
		var loopPos = n
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		counters := p.loopBodyCounters(body, loopPos.Pos())
		if len(counters) == 0 {
			return true
		}
		ast.Inspect(body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			p.checkSeedArgs(call, counters)
			return true
		})
		return true
	})
}

// loopBodyCounters collects objects declared before the loop and mutated by
// ++/+= inside the loop body. Canonical index variables (incremented only
// in a for statement's post clause) are excluded: they are rebound per
// loop, while a counter that outlives the loop couples seeds to how many
// iterations ran before — across loops and call sites.
func (p *Pass) loopBodyCounters(body *ast.BlockStmt, loopPos token.Pos) map[types.Object]bool {
	posts := make(map[ast.Stmt]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if fs, ok := n.(*ast.ForStmt); ok && fs.Post != nil {
			posts[fs.Post] = true
		}
		return true
	})
	out := make(map[types.Object]bool)
	record := func(e ast.Expr) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return
		}
		obj := p.Info.Uses[id]
		if obj == nil || obj.Pos() >= loopPos {
			return
		}
		if basic, ok := obj.Type().Underlying().(*types.Basic); !ok || basic.Info()&types.IsInteger == 0 {
			return
		}
		out[obj] = true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IncDecStmt:
			if !posts[s] {
				record(s.X)
			}
		case *ast.AssignStmt:
			if s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 && !posts[s] {
				record(s.Lhs[0])
			}
		}
		return true
	})
	return out
}

// checkSeedArgs reports counters flowing into rand.NewSource or into any
// call argument whose parameter name mentions "seed".
func (p *Pass) checkSeedArgs(call *ast.CallExpr, counters map[types.Object]bool) {
	pkgPath, name := p.pkgFuncName(call)
	isNewSource := isRandPkg(pkgPath) && name == "NewSource"

	var sig *types.Signature
	if fn := p.calleeFunc(call); fn != nil {
		sig = fn.Type().(*types.Signature)
	}
	for i, arg := range call.Args {
		seedParam := isNewSource
		if !seedParam && sig != nil && sig.Params().Len() > 0 {
			pi := i
			if pi >= sig.Params().Len() {
				pi = sig.Params().Len() - 1
			}
			seedParam = strings.Contains(strings.ToLower(sig.Params().At(pi).Name()), "seed")
		}
		if !seedParam {
			continue
		}
		for obj := range counters {
			if p.exprUsesObj(arg, obj) {
				p.Reportf(arg.Pos(), "counter %q is incremented across loop iterations and used as a seed; seeds must come from stable identity (hash experiment name + trial index), not execution order", obj.Name())
			}
		}
	}
}
