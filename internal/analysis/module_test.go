package analysis

import (
	"encoding/json"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runModuleFixture loads a committed fixture module under testdata/ through
// the full audit driver and compares surviving diagnostics against the
// `// want "substr"` comments across every file of the tree.
func runModuleFixture(t *testing.T, name string, analyzers []*Analyzer, cfg *Config) *RunResult {
	t.Helper()
	dir := filepath.Join("testdata", name)
	res, err := RunAudit(dir, []string{"./..."}, analyzers, cfg)
	if err != nil {
		t.Fatalf("audit %s: %v", dir, err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]string)
	err = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		fset := token.NewFileSet()
		file, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if perr != nil {
			return perr
		}
		abs, _ := filepath.Abs(path)
		for _, w := range parseWants(t, fset, file) {
			k := key{abs, w.line}
			wants[k] = append(wants[k], w.sub)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	matched := make(map[int]bool)
	for k, subs := range wants {
		for _, sub := range subs {
			found := false
			for i, d := range res.Diagnostics {
				if matched[i] || d.File != k.file || d.Line != k.line {
					continue
				}
				if strings.Contains(d.Message, sub) {
					matched[i] = true
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s:%d: expected diagnostic containing %q, none reported", k.file, k.line, sub)
			}
		}
	}
	for i, d := range res.Diagnostics {
		if !matched[i] {
			t.Errorf("%s: unexpected diagnostic: %s", name, d)
		}
	}
	return res
}

// taintFixtureConfig scopes the taint fixture module: sim is deterministic,
// rt is the sanctioned real-time layer, util is unscoped helper territory.
func taintFixtureConfig() *Config {
	return &Config{
		DetRandScope:  []string{"sim"},
		WalltimeScope: []string{"sim"},
		WalltimeAllow: []string{"rt"},
	}
}

// TestTaintModuleFixture pins the taint-mode contract end to end:
// multi-package chains to both sink families, interface-call conservatism,
// sanctioned-layer immunity, call-site suppression, suppressed-sink
// re-reporting at direct callers, and propagation stopping at scoped
// frames.
func TestTaintModuleFixture(t *testing.T) {
	res := runModuleFixture(t, "mod_taint",
		[]*Analyzer{AnalyzerDetRand, AnalyzerWalltime}, taintFixtureConfig())

	// Every taint diagnostic must carry a structured path ending in the
	// sink operation.
	for _, d := range res.Diagnostics {
		if len(d.Path) < 2 {
			t.Errorf("taint diagnostic without a path: %s", d)
			continue
		}
		last := d.Path[len(d.Path)-1].Func
		if !strings.HasPrefix(last, "time.") && !strings.HasPrefix(last, "rand.") {
			t.Errorf("path does not end in a sink op: %s", d)
		}
		if !strings.Contains(d.Message, "[path:") {
			t.Errorf("message missing rendered path: %s", d)
		}
	}
}

// TestTaintPathDepth pins the multi-hop witness: the chain through
// util.Indirect must show both unscoped frames before the sink.
func TestTaintPathDepth(t *testing.T) {
	res := runModuleFixture(t, "mod_taint",
		[]*Analyzer{AnalyzerDetRand, AnalyzerWalltime}, taintFixtureConfig())
	found := false
	for _, d := range res.Diagnostics {
		if !strings.Contains(d.Message, "util.Indirect") {
			continue
		}
		found = true
		var funcs []string
		for _, s := range d.Path {
			funcs = append(funcs, s.Func)
		}
		joined := strings.Join(funcs, " → ")
		for _, frame := range []string{"sim.Run", "util.Indirect", "util.Draw", "rand.Float64"} {
			if !strings.Contains(joined, frame) {
				t.Errorf("witness chain missing frame %s: %s", frame, joined)
			}
		}
	}
	if !found {
		t.Fatal("no diagnostic for the util.Indirect call site")
	}
}

// TestCacheKeyModuleFixture pins encoder field coverage and stamp
// constancy over a fixture module with its own simcache package.
func TestCacheKeyModuleFixture(t *testing.T) {
	runModuleFixture(t, "mod_cachekey",
		[]*Analyzer{AnalyzerCacheKey}, &Config{})
}

// TestCacheKeyGoldenLifecycle drives the fingerprint golden through its
// states: absent (disabled), fresh (clean), struct-changed-without-bump
// (the guarded failure), and bumped-but-stale (regenerate).
func TestCacheKeyGoldenLifecycle(t *testing.T) {
	dir := filepath.Join("testdata", "mod_cachekey")
	pkgs, err := Load(dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	m := BuildModule(pkgs[0].Fset, pkgs)

	goldenDiags := func(goldenPath string) []Diagnostic {
		cfg := &Config{CacheKeyGolden: goldenPath}
		res, err := RunAudit(dir, []string{"./..."}, []*Analyzer{AnalyzerCacheKey}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var out []Diagnostic
		for _, d := range res.Diagnostics {
			if strings.Contains(d.Message, "golden") || strings.Contains(d.Message, "schema-stamp") {
				out = append(out, d)
			}
		}
		return out
	}

	golden := filepath.Join(t.TempDir(), "cachekey.golden")

	// Absent golden: fingerprint checking is off.
	if ds := goldenDiags(golden); len(ds) != 0 {
		t.Fatalf("absent golden should disable the check, got %v", ds)
	}

	// Fresh golden: clean.
	content := FormatCacheKeyGolden(m)
	if err := os.WriteFile(golden, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if ds := goldenDiags(golden); len(ds) != 0 {
		t.Fatalf("fresh golden should be clean, got %v", ds)
	}
	for _, typ := range []string{"BrokenSpec", "CleanSpec"} {
		if !strings.Contains(content, typ) {
			t.Fatalf("golden missing spec type %s:\n%s", typ, content)
		}
	}

	// Struct changed, stamp unchanged: tamper the fingerprint column.
	lines := strings.Split(content, "\n")
	for i, l := range lines {
		if strings.Contains(l, "BrokenSpec") {
			parts := strings.Fields(l)
			parts[1] = strings.Repeat("0", len(parts[1]))
			lines[i] = strings.Join(parts, " ")
		}
	}
	if err := os.WriteFile(golden, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	ds := goldenDiags(golden)
	if len(ds) != 1 || !strings.Contains(ds[0].Message, "changed without a schema-stamp bump") {
		t.Fatalf("want one no-bump diagnostic, got %v", ds)
	}

	// Stamp moved too: the golden is merely stale.
	lines = strings.Split(content, "\n")
	for i, l := range lines {
		if strings.Contains(l, "BrokenSpec") {
			parts := strings.Fields(l)
			parts[1] = strings.Repeat("0", len(parts[1]))
			parts[2] = parts[2] + "-old"
			lines[i] = strings.Join(parts, " ")
		}
	}
	if err := os.WriteFile(golden, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	ds = goldenDiags(golden)
	if len(ds) != 1 || !strings.Contains(ds[0].Message, "-write-golden") {
		t.Fatalf("want one stale-golden diagnostic, got %v", ds)
	}

	// Entry deleted: must demand regeneration.
	var kept []string
	for _, l := range strings.Split(content, "\n") {
		if !strings.Contains(l, "BrokenSpec") {
			kept = append(kept, l)
		}
	}
	if err := os.WriteFile(golden, []byte(strings.Join(kept, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	ds = goldenDiags(golden)
	if len(ds) != 1 || !strings.Contains(ds[0].Message, "no entry") {
		t.Fatalf("want one missing-entry diagnostic, got %v", ds)
	}
}

// TestRepoGoldenInSync fails when a spec struct changes without
// regenerating the committed golden — the same gate CI applies, pinned as
// a test so `go test ./...` catches it before lint does.
func TestRepoGoldenInSync(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	root := filepath.Join("..", "..")
	pkgs, err := Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	m := BuildModule(pkgs[0].Fset, pkgs)
	want := FormatCacheKeyGolden(m)
	got, err := os.ReadFile(filepath.Join(root, DefaultConfig().CacheKeyGolden))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Fatalf("committed cachekey golden is stale; run `go run ./cmd/wehey-lint -write-golden ./...`\n--- committed\n%s--- current\n%s", got, want)
	}
}

// TestCallGraphShape pins structural properties of the module graph over
// the taint fixture: node ordering, labels, edge resolution, and stats.
func TestCallGraphShape(t *testing.T) {
	dir := filepath.Join("testdata", "mod_taint")
	pkgs, err := Load(dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	m := BuildModule(pkgs[0].Fset, pkgs)

	st := m.Stats()
	if st.Packages != 3 {
		t.Fatalf("want 3 packages, got %d", st.Packages)
	}
	labels := make(map[string]*FuncNode)
	for _, n := range m.Nodes() {
		labels[m.FuncLabel(n.Fn)] = n
	}
	run := labels["sim.Run"]
	if run == nil {
		t.Fatalf("sim.Run not in graph; have %v", keysOf(labels))
	}
	if len(run.Calls) != 5 {
		t.Fatalf("sim.Run should have 5 static callees (4 util + 1 rt), got %d", len(run.Calls))
	}
	iface := labels["sim.FromIface"]
	if iface == nil || len(iface.Calls) != 0 {
		t.Fatalf("interface call must produce no edge, got %+v", iface)
	}
	draw := labels["util.Draw"]
	if draw == nil || len(draw.RandSinks) != 1 {
		t.Fatalf("util.Draw should carry one rand sink, got %+v", draw)
	}
	stamp := labels["util.Stamp"]
	if stamp == nil || len(stamp.WallSinks) != 1 {
		t.Fatalf("util.Stamp should carry one wall sink, got %+v", stamp)
	}
}

func keysOf(m map[string]*FuncNode) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestWhyExplains pins the -why plumbing over the taint fixture.
func TestWhyExplains(t *testing.T) {
	dir := filepath.Join("testdata", "mod_taint")
	pkgs, err := Load(dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	m := BuildModule(pkgs[0].Fset, pkgs)
	reports := m.Why("util.Indirect")
	if len(reports) != 1 {
		t.Fatalf("want one match for util.Indirect, got %d", len(reports))
	}
	if !strings.Contains(reports[0], "reaches global math/rand") ||
		!strings.Contains(reports[0], "rand.Float64") {
		t.Fatalf("why output missing rand chain:\n%s", reports[0])
	}
	if m.Why("NoSuchFunction") != nil {
		t.Fatal("nonexistent function must yield no reports")
	}
}

// TestDiagnosticJSONSchema pins the wire shape of findings, including the
// structured taint path, so downstream tooling can rely on it.
func TestDiagnosticJSONSchema(t *testing.T) {
	d := Diagnostic{
		File: "a.go", Line: 3, Col: 7,
		Analyzer: "walltime", Message: "m",
		Path: []PathStep{
			{Func: "pkg.F", File: "a.go", Line: 3, Col: 7},
			{Func: "time.Now", File: "b.go", Line: 9, Col: 2},
		},
	}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"file":"a.go","line":3,"col":7,"analyzer":"walltime","message":"m",` +
		`"path":[{"func":"pkg.F","file":"a.go","line":3,"col":7},{"func":"time.Now","file":"b.go","line":9,"col":2}]}`
	if string(b) != want {
		t.Fatalf("diagnostic JSON schema drifted:\ngot  %s\nwant %s", b, want)
	}

	// Pathless diagnostics must omit the key entirely.
	b, err = json.Marshal(Diagnostic{File: "a.go", Line: 1, Col: 1, Analyzer: "floateq", Message: "m"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "path") {
		t.Fatalf("pathless diagnostic must omit path key: %s", b)
	}
}

// TestDeadIgnoreAudit pins the three directive fates over a temp module:
// unknown analyzer → dead, known+enabled+unmatched → dead, matched → live
// and listed.
func TestDeadIgnoreAudit(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module example.com/deadmod\n\ngo 1.22\n",
		"internal/netsim/a.go": `package netsim

import "time"

func live() {
	//lint:ignore walltime justified test suppression
	_ = time.Now()
}

func deadKnown() {
	//lint:ignore walltime nothing on the next line violates anything
	_ = 1 + 1
}

//lint:ignore errcheck stale baggage from another linter
func deadUnknown() {}
`,
	}
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	res, err := RunAudit(dir, []string{"./..."}, All(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range res.Diagnostics {
		got = append(got, d.Analyzer+":"+d.Message)
	}
	if len(res.Diagnostics) != 2 {
		t.Fatalf("want exactly 2 dead-directive findings, got %v", got)
	}
	for _, d := range res.Diagnostics {
		if d.Analyzer != "deadignore" {
			t.Fatalf("unexpected analyzer in %v", got)
		}
	}
	foundUnknown, foundUnused := false, false
	for _, d := range res.Diagnostics {
		if strings.Contains(d.Message, "unknown analyzer") {
			foundUnknown = true
		}
		if strings.Contains(d.Message, "suppresses nothing") {
			foundUnused = true
		}
	}
	if !foundUnknown || !foundUnused {
		t.Fatalf("want one unknown-analyzer and one suppresses-nothing finding, got %v", got)
	}

	if len(res.Suppressions) != 1 {
		t.Fatalf("want exactly one live suppression, got %v", res.Suppressions)
	}
	s := res.Suppressions[0]
	if s.Analyzer != "walltime" || s.Reason != "justified test suppression" {
		t.Fatalf("wrong live suppression: %+v", s)
	}
}

// TestDeadIgnoreSuppressible: a deliberate keeper can be excused with a
// deadignore directive, and a pointless deadignore directive is itself dead.
func TestDeadIgnoreSuppressible(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module example.com/deadmod2\n\ngo 1.22\n",
		"internal/netsim/a.go": `package netsim

func kept() {
	//lint:ignore deadignore directive below is exercised by an external tool
	//lint:ignore walltime kept for a generator that injects time.Now here
	_ = 1 + 1
}

//lint:ignore deadignore this one excuses nothing and must be reported
func pointless() {}
`,
	}
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	res, err := RunAudit(dir, []string{"./..."}, All(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diagnostics) != 1 {
		t.Fatalf("want exactly one finding (the pointless deadignore), got %v", res.Diagnostics)
	}
	d := res.Diagnostics[0]
	if d.Analyzer != "deadignore" || !strings.Contains(d.Message, "lint:ignore deadignore suppresses nothing") {
		t.Fatalf("wrong finding: %s", d)
	}
}

func TestPktLifeFixture(t *testing.T) {
	runFixture(t, AnalyzerPktLife, "internal/netsim", "pktlife.go")
}

// Out of scope: the same lifecycle violations outside PktLifeScope are not
// the freelist contract and stay quiet.
func TestPktLifeOutOfScope(t *testing.T) {
	runFixtureExpectClean(t, AnalyzerPktLife, "internal/stats", "pktlife_scope.go")
}

func TestLockHeldFixture(t *testing.T) {
	runFixture(t, AnalyzerLockHeld, "internal/service", "lockheld.go")
}

// The sharded-scheduler idiom: blocking journal appends or wakeup sends
// inside a shard critical section are flagged; append-after-unlock,
// non-blocking wakeup hints, and the two-phase cross-shard claim stay
// quiet.
func TestLockHeldShardFixture(t *testing.T) {
	runFixture(t, AnalyzerLockHeld, "internal/service", "lockheld_shard.go")
}

// Out of scope: identical lock-then-block code outside LockHeldScope is
// not audited.
func TestLockHeldOutOfScope(t *testing.T) {
	runFixtureExpectClean(t, AnalyzerLockHeld, "internal/stats", "lockheld_scope.go")
}
