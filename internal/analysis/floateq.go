package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerFloatEq flags == and != between floating-point operands. The
// statistics layer's verdicts hinge on threshold comparisons; exact float
// equality silently depends on evaluation order and FMA contraction, which
// is exactly the class of platform-coupled behaviour a reproduction cannot
// afford. Compare against an explicit epsilon, or suppress with a reason
// when exact identity is genuinely intended (sentinel values, NaN checks).
var AnalyzerFloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "no ==/!= on floating-point operands outside tests",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	p.walkFiles(func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		if p.isFloat(be.X) || p.isFloat(be.Y) {
			p.Reportf(be.OpPos, "%s on floating-point operands; compare with an explicit tolerance", be.Op)
		}
		return true
	})
}

func (p *Pass) isFloat(expr ast.Expr) bool {
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
