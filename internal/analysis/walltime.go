package analysis

import "go/ast"

// wallClockFuncs are the package time functions that read the real clock.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// AnalyzerWalltime forbids wall-clock reads outside the allowlisted
// real-time layers. Simulated-time packages (netsim and everything driven
// by it) must take time from the event engine's clock, and top-level
// binaries route elapsed-time logging through internal/clock; a stray
// time.Now couples simulation output to the machine it ran on.
var AnalyzerWalltime = &Analyzer{
	Name:      "walltime",
	Doc:       "no time.Now/time.Since outside the allowlisted real-clock layers, directly or through helper calls",
	Run:       runWalltime,
	RunModule: runWalltimeTaint,
}

func runWalltime(p *Pass) {
	if pathIn(p.RelPath, p.Config.WalltimeAllow) {
		return
	}
	p.walkFiles(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkgPath, name := p.pkgFuncName(call)
		if pkgPath == "time" && wallClockFuncs[name] {
			p.Reportf(call.Pos(), "wall-clock read time.%s in a simulated-time package; use the engine clock or internal/clock", name)
		}
		return true
	})
}
