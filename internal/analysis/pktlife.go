package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerPktLife checks packet lifecycle discipline against the netsim
// Engine freelist. Engine.AllocPacket hands out *Packet values that must be
// returned exactly once via Engine.FreePacket; the engine recycles freed
// packets immediately, so a use-after-free reads another flow's packet and
// a double free corrupts the freelist (the engine panics, but only at run
// time, only on the path that actually executes). A drop path that neither
// frees nor hands the packet off leaks it for the remainder of the run.
//
// The analysis is intraprocedural and flow-sensitive, and deliberately
// conservative in the quiet direction: passing a packet to any call (a link
// Send, an OnDrop callback) escapes it — ownership moved, tracking stops.
// FreePacket re-arms tracking even after an escape, because the
// drop-callback-then-free pattern is the sanctioned one and a second free
// after it is still a bug.
var AnalyzerPktLife = &Analyzer{
	Name: "pktlife",
	Doc:  "no use-after-free, double-free, or leaked drop paths for Engine.AllocPacket packets",
	Run:  runPktLife,
}

func runPktLife(p *Pass) {
	if !pathIn(p.RelPath, p.Config.PktLifeScope) {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			analyzePktFunc(p, fd.Type, fd.Body)
		}
	}
}

type pktState int

const (
	pktLive pktState = iota
	pktFreed
	pktEscaped
)

// pktTracker is the per-function dataflow state.
type pktTracker struct {
	pass   *Pass
	states map[types.Object]pktState
	// local marks packets allocated in this function: only those carry a
	// leak obligation. Parameters are tracked for free/use discipline but
	// their lifetime belongs to the caller.
	local    map[types.Object]bool
	allocPos map[types.Object]token.Pos
	freedPos map[types.Object]token.Pos
}

func analyzePktFunc(p *Pass, ftype *ast.FuncType, body *ast.BlockStmt) {
	tr := &pktTracker{
		pass:     p,
		states:   make(map[types.Object]pktState),
		local:    make(map[types.Object]bool),
		allocPos: make(map[types.Object]token.Pos),
		freedPos: make(map[types.Object]token.Pos),
	}
	if ftype.Params != nil {
		for _, field := range ftype.Params.List {
			for _, name := range field.Names {
				obj := p.Info.Defs[name]
				if obj != nil && isPacketPtr(obj.Type()) {
					tr.states[obj] = pktLive
				}
			}
		}
	}
	terminated := tr.walkStmts(body.List)
	if !terminated {
		tr.leakCheck(body.End())
	}
}

// isPacketPtr reports whether t is *Packet for any named type Packet.
func isPacketPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Packet"
}

// allocCall reports whether call invokes a method named AllocPacket.
func (tr *pktTracker) allocCall(call *ast.CallExpr) bool {
	fn := calleeFuncOf(tr.pass.Info, call)
	return fn != nil && fn.Name() == "AllocPacket" && recvNamed(fn) != ""
}

// freeCall returns the tracked identifier freed by a FreePacket method call,
// or nil. Non-identifier arguments (e.pq[i].pkt) are outside the tracked
// domain and are ignored.
func (tr *pktTracker) freeCall(call *ast.CallExpr) *ast.Ident {
	fn := calleeFuncOf(tr.pass.Info, call)
	if fn == nil || fn.Name() != "FreePacket" || recvNamed(fn) == "" || len(call.Args) != 1 {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	if _, tracked := tr.states[tr.pass.Info.Uses[id]]; !tracked {
		return nil
	}
	return id
}

// use records one appearance of a tracked packet. Any use of a freed packet
// is a use-after-free; an escaping use of a live packet transfers ownership
// and stops tracking.
func (tr *pktTracker) use(obj types.Object, pos token.Pos, escaping bool) {
	switch tr.states[obj] {
	case pktFreed:
		fp := tr.pass.Fset.Position(tr.freedPos[obj])
		tr.pass.Reportf(pos, "use of packet %s after FreePacket (freed at %s:%d)", obj.Name(), fp.Filename, fp.Line)
		tr.states[obj] = pktEscaped // one report per free; avoid cascades
	case pktLive:
		if escaping {
			tr.states[obj] = pktEscaped
		}
	}
}

// handleExpr walks an expression recording uses of tracked packets.
// escaping propagates into positions where the pointer value itself is
// stored or handed off (call arguments, composite literals, returns);
// reading a field or comparing the pointer does not escape.
func (tr *pktTracker) handleExpr(e ast.Expr, escaping bool) {
	switch x := e.(type) {
	case nil:
	case *ast.Ident:
		if obj := tr.pass.Info.Uses[x]; obj != nil {
			if _, tracked := tr.states[obj]; tracked {
				tr.use(obj, x.Pos(), escaping)
			}
		}
	case *ast.ParenExpr:
		tr.handleExpr(x.X, escaping)
	case *ast.SelectorExpr:
		tr.handleExpr(x.X, false)
	case *ast.StarExpr:
		tr.handleExpr(x.X, false)
	case *ast.BinaryExpr:
		tr.handleExpr(x.X, false)
		tr.handleExpr(x.Y, false)
	case *ast.UnaryExpr:
		tr.handleExpr(x.X, x.Op == token.AND)
	case *ast.IndexExpr:
		tr.handleExpr(x.X, false)
		tr.handleExpr(x.Index, escaping)
	case *ast.SliceExpr:
		tr.handleExpr(x.X, false)
		tr.handleExpr(x.Low, false)
		tr.handleExpr(x.High, false)
		tr.handleExpr(x.Max, false)
	case *ast.TypeAssertExpr:
		tr.handleExpr(x.X, escaping)
	case *ast.KeyValueExpr:
		tr.handleExpr(x.Key, true)
		tr.handleExpr(x.Value, true)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			tr.handleExpr(el, true)
		}
	case *ast.CallExpr:
		tr.handleCall(x)
	case *ast.FuncLit:
		// A literal capturing a tracked packet escapes it (the closure may
		// run at any time); the literal's own body is analyzed afresh.
		for obj := range tr.states {
			if exprUsesObject(tr.pass.Info, x.Body, obj) {
				tr.use(obj, x.Pos(), true)
			}
		}
		analyzePktFunc(tr.pass, x.Type, x.Body)
	default:
		// Unknown shape: treat every tracked mention as escaping (quiet).
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := tr.pass.Info.Uses[id]; obj != nil {
					if _, tracked := tr.states[obj]; tracked {
						tr.use(obj, id.Pos(), true)
					}
				}
			}
			return true
		})
	}
}

// handleCall processes one call expression: FreePacket transitions, alloc
// calls are inert here (the enclosing assignment defines the packet), and
// every other call escapes its packet arguments.
func (tr *pktTracker) handleCall(call *ast.CallExpr) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		tr.handleExpr(sel.X, false)
	}
	if id := tr.freeCall(call); id != nil {
		obj := tr.pass.Info.Uses[id]
		if tr.states[obj] == pktFreed {
			fp := tr.pass.Fset.Position(tr.freedPos[obj])
			tr.pass.Reportf(call.Pos(), "double free of packet %s (already freed at %s:%d)", obj.Name(), fp.Filename, fp.Line)
		}
		tr.states[obj] = pktFreed
		tr.freedPos[obj] = call.Pos()
		return
	}
	if tr.allocCall(call) {
		return
	}
	for _, arg := range call.Args {
		tr.handleExpr(arg, true)
	}
}

// walkStmts interprets a statement list flow-sensitively. The return value
// reports whether the list always terminates the enclosing function (return
// or panic) — terminated branches contribute no state to merges, which is
// what makes the check-free-return drop pattern clean.
func (tr *pktTracker) walkStmts(stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if tr.walkStmt(s) {
			return true
		}
	}
	return false
}

func (tr *pktTracker) walkStmt(s ast.Stmt) bool {
	switch x := s.(type) {
	case *ast.ExprStmt:
		tr.handleExpr(x.X, false)
	case *ast.AssignStmt:
		tr.walkAssign(x)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						tr.define(name, vs.Values[i])
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			tr.handleExpr(r, true)
		}
		tr.leakCheck(x.Pos())
		return true
	case *ast.IfStmt:
		if x.Init != nil {
			tr.walkStmt(x.Init)
		}
		tr.handleExpr(x.Cond, false)
		thenTr := tr.clone()
		thenTerm := thenTr.walkStmts(x.Body.List)
		elseTr := tr.clone()
		elseTerm := false
		if x.Else != nil {
			elseTerm = elseTr.walkStmt(x.Else)
		}
		tr.merge(thenTr, thenTerm, elseTr, elseTerm)
		return thenTerm && elseTerm
	case *ast.BlockStmt:
		return tr.walkStmts(x.List)
	case *ast.SwitchStmt:
		if x.Init != nil {
			tr.walkStmt(x.Init)
		}
		tr.handleExpr(x.Tag, false)
		return tr.walkClauses(x.Body.List, hasDefaultClause(x.Body.List))
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			tr.walkStmt(x.Init)
		}
		return tr.walkClauses(x.Body.List, hasDefaultClause(x.Body.List))
	case *ast.SelectStmt:
		return tr.walkClauses(x.Body.List, true)
	case *ast.ForStmt:
		tr.walkLoop(x.Init, x.Cond, x.Post, x.Body)
	case *ast.RangeStmt:
		tr.handleExpr(x.X, false)
		tr.walkLoop(nil, nil, nil, x.Body)
	case *ast.SendStmt:
		tr.handleExpr(x.Chan, false)
		tr.handleExpr(x.Value, true)
	case *ast.GoStmt:
		tr.handleCall(x.Call)
		for _, arg := range x.Call.Args {
			tr.handleExpr(arg, true)
		}
	case *ast.DeferStmt:
		// defer e.FreePacket(p) discharges the obligation at function exit;
		// stop tracking rather than modeling deferred execution order.
		if id := tr.freeCall(x.Call); id != nil {
			tr.states[tr.pass.Info.Uses[id]] = pktEscaped
			return false
		}
		for _, arg := range x.Call.Args {
			tr.handleExpr(arg, true)
		}
	case *ast.LabeledStmt:
		return tr.walkStmt(x.Stmt)
	case *ast.BranchStmt:
		// break/continue/goto leave the straight-line walk; treat like a
		// terminated branch so the post-merge state stays honest.
		return true
	case *ast.IncDecStmt:
		tr.handleExpr(x.X, false)
	}
	return false
}

func hasDefaultClause(clauses []ast.Stmt) bool {
	for _, c := range clauses {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// walkClauses runs each case body from a clone of the pre-state and merges
// the fall-through results. Without a default clause the pre-state itself is
// a possible outcome and joins the merge. Returns whether every possible
// outcome terminates the function.
func (tr *pktTracker) walkClauses(clauses []ast.Stmt, exhaustive bool) bool {
	type outcome struct {
		t    *pktTracker
		term bool
	}
	var outs []outcome
	for _, c := range clauses {
		ct := tr.clone()
		var term bool
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				ct.handleExpr(e, false)
			}
			term = ct.walkStmts(cc.Body)
		case *ast.CommClause:
			if cc.Comm != nil {
				ct.walkStmt(cc.Comm)
			}
			term = ct.walkStmts(cc.Body)
		}
		outs = append(outs, outcome{ct, term})
	}
	if !exhaustive {
		outs = append(outs, outcome{tr.clone(), false})
	}
	merged := false
	for _, o := range outs {
		if o.term {
			continue
		}
		if !merged {
			tr.states = o.t.states
			tr.freedPos = o.t.freedPos
			merged = true
			continue
		}
		tr.mergeInto(o.t)
	}
	return !merged && len(outs) > 0
}

// walkLoop walks a loop body once for intra-iteration diagnostics, then
// escapes every packet whose state the body changed: cross-iteration
// lifecycle reasoning is out of scope and must stay quiet.
func (tr *pktTracker) walkLoop(init ast.Stmt, cond ast.Expr, post ast.Stmt, body *ast.BlockStmt) {
	if init != nil {
		tr.walkStmt(init)
	}
	tr.handleExpr(cond, false)
	before := tr.clone()
	bt := tr.clone()
	bt.walkStmts(body.List)
	if post != nil {
		bt.walkStmt(post)
	}
	for obj, st := range bt.states {
		if prev, ok := before.states[obj]; !ok || prev != st {
			tr.states[obj] = pktEscaped
		}
	}
}

func (tr *pktTracker) walkAssign(x *ast.AssignStmt) {
	if len(x.Lhs) == len(x.Rhs) {
		for i := range x.Lhs {
			if id, ok := ast.Unparen(x.Lhs[i]).(*ast.Ident); ok {
				if tr.define(id, x.Rhs[i]) {
					continue
				}
				// Reassigning a tracked name to something else ends its
				// tracked life under this name.
				if obj := tr.pass.Info.Uses[id]; obj != nil {
					if _, tracked := tr.states[obj]; tracked {
						tr.handleExpr(x.Rhs[i], true)
						tr.states[obj] = pktEscaped
						continue
					}
				}
			}
			tr.handleExpr(x.Lhs[i], false)
			tr.handleExpr(x.Rhs[i], true)
		}
		return
	}
	for _, l := range x.Lhs {
		tr.handleExpr(l, false)
	}
	for _, r := range x.Rhs {
		tr.handleExpr(r, true)
	}
}

// define begins tracking lhs when rhs is an AllocPacket call. Returns true
// when it consumed the pair.
func (tr *pktTracker) define(lhs *ast.Ident, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || !tr.allocCall(call) {
		return false
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		tr.handleExpr(sel.X, false)
	}
	obj := tr.pass.Info.Defs[lhs]
	if obj == nil {
		obj = tr.pass.Info.Uses[lhs]
	}
	if obj == nil || !isPacketPtr(obj.Type()) {
		return true
	}
	tr.states[obj] = pktLive
	tr.local[obj] = true
	tr.allocPos[obj] = call.Pos()
	return true
}

// leakCheck reports locally allocated packets still live at a function exit.
func (tr *pktTracker) leakCheck(pos token.Pos) {
	type leak struct {
		obj types.Object
		at  token.Pos
	}
	var leaks []leak
	for obj, st := range tr.states {
		if st == pktLive && tr.local[obj] {
			//lint:ignore maporder order restored by the position sort below
			leaks = append(leaks, leak{obj, tr.allocPos[obj]})
		}
	}
	// Deterministic order across map iteration.
	for i := 1; i < len(leaks); i++ {
		for j := i; j > 0 && leaks[j].at < leaks[j-1].at; j-- {
			leaks[j], leaks[j-1] = leaks[j-1], leaks[j]
		}
	}
	for _, l := range leaks {
		ap := tr.pass.Fset.Position(l.at)
		tr.pass.Reportf(pos, "packet %s allocated at %s:%d is neither freed nor handed off on this path", l.obj.Name(), ap.Filename, ap.Line)
	}
}

func (tr *pktTracker) clone() *pktTracker {
	c := &pktTracker{
		pass:     tr.pass,
		states:   make(map[types.Object]pktState, len(tr.states)),
		local:    tr.local,
		allocPos: tr.allocPos,
		freedPos: make(map[types.Object]token.Pos, len(tr.freedPos)),
	}
	for k, v := range tr.states {
		c.states[k] = v
	}
	for k, v := range tr.freedPos {
		c.freedPos[k] = v
	}
	return c
}

// merge joins two branch outcomes back into tr.
func (tr *pktTracker) merge(a *pktTracker, aTerm bool, b *pktTracker, bTerm bool) {
	switch {
	case aTerm && bTerm:
		// Both branches left the function; whatever follows is dead. Keep
		// the pre-state (callers also see terminated=true).
	case aTerm:
		tr.states = b.states
		tr.freedPos = b.freedPos
	case bTerm:
		tr.states = a.states
		tr.freedPos = a.freedPos
	default:
		tr.states = a.states
		tr.freedPos = a.freedPos
		tr.mergeInto(b)
	}
}

// mergeInto folds another branch's outcome into tr: agreeing states stay,
// disagreeing states become Escaped (quiet — conditional frees are beyond
// the intraprocedural contract).
func (tr *pktTracker) mergeInto(other *pktTracker) {
	for obj, st := range tr.states {
		if other.states[obj] != st {
			tr.states[obj] = pktEscaped
		}
	}
	for obj, st := range other.states {
		if _, ok := tr.states[obj]; !ok && st != pktEscaped {
			tr.states[obj] = pktEscaped
		}
	}
}

// exprUsesObject reports whether node references obj (free-function form of
// Pass.exprUsesObj usable on statements).
func exprUsesObject(info *types.Info, node ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
