package analysis

import "fmt"

// RunResult is the outcome of one audit: the surviving diagnostics and the
// suppressions that earned their keep.
type RunResult struct {
	Diagnostics []Diagnostic
	// Suppressions are the live lint:ignore directives — each one matched
	// at least one finding this run. `wehey-lint -ignores` lists them.
	Suppressions []Suppression
	// Module is the call graph built for the run (nil when no module
	// analyzer was enabled); `wehey-lint -graph` and `-why` read it.
	Module *Module
}

// Run loads every package matching patterns under dir, runs the analyzers,
// applies lint:ignore suppression, and returns the surviving diagnostics in
// deterministic sorted order.
func Run(dir string, patterns []string, analyzers []*Analyzer, cfg *Config) ([]Diagnostic, error) {
	res, err := RunAudit(dir, patterns, analyzers, cfg)
	if err != nil {
		return nil, err
	}
	return res.Diagnostics, nil
}

// RunAudit is Run plus the suppression audit: when the deadignore analyzer
// is enabled it additionally reports dead lint:ignore directives, and it
// returns the live ones.
func RunAudit(dir string, patterns []string, analyzers []*Analyzer, cfg *Config) (*RunResult, error) {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}

	var raw []Diagnostic
	collect := func(d Diagnostic) { raw = append(raw, d) }

	// Directives across every loaded file; malformed ones are findings that
	// cannot be suppressed away.
	var directives []ignoreDirective
	var malformed []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			directives = append(directives, parseIgnores(pkg.Fset, f, func(d Diagnostic) {
				malformed = append(malformed, d)
			})...)
		}
	}

	var module *Module
	needModule := false
	for _, a := range analyzers {
		if a.RunModule != nil {
			needModule = true
		}
	}
	if needModule && len(pkgs) > 0 {
		module = BuildModule(pkgs[0].Fset, pkgs)
	}

	for _, a := range analyzers {
		if a.Run != nil {
			for _, pkg := range pkgs {
				a.Run(&Pass{
					Analyzer: a,
					Fset:     pkg.Fset,
					Files:    pkg.Files,
					Pkg:      pkg.Pkg,
					Info:     pkg.Info,
					RelPath:  pkg.RelPath,
					Config:   cfg,
					report:   collect,
				})
			}
		}
		if a.RunModule != nil && module != nil {
			a.RunModule(&ModulePass{
				Analyzer: a,
				Module:   module,
				Config:   cfg,
				Dir:      dir,
				report:   collect,
			})
		}
	}

	res := &RunResult{Module: module}
	res.Diagnostics = append(res.Diagnostics, malformed...)
	res.Diagnostics = append(res.Diagnostics, applySuppression(raw, directives, analyzers)...)
	sortDiagnostics(res.Diagnostics)
	res.Suppressions = liveSuppressions(directives)
	sortSuppressions(res.Suppressions)
	return res, nil
}

// RunPackage fans the analyzers out over one loaded package — the fixture
// harness's entry point. Module analyzers run against a single-package
// module so their fixtures stay one file. Dead directives are not reported
// here: a single-analyzer fixture run must not condemn other analyzers'
// directives, and fixtures pin dead-directive behaviour through RunAudit.
func RunPackage(pkg *Package, analyzers []*Analyzer, cfg *Config) []Diagnostic {
	var raw []Diagnostic
	collect := func(d Diagnostic) { raw = append(raw, d) }

	var directives []ignoreDirective
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		directives = append(directives, parseIgnores(pkg.Fset, f, func(d Diagnostic) {
			malformed = append(malformed, d)
		})...)
	}

	var module *Module
	for _, a := range analyzers {
		if a.RunModule != nil && module == nil {
			module = BuildModule(pkg.Fset, []*Package{pkg})
		}
	}

	for _, a := range analyzers {
		if a.Run != nil {
			a.Run(&Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
				RelPath:  pkg.RelPath,
				Config:   cfg,
				report:   collect,
			})
		}
		if a.RunModule != nil && module != nil {
			a.RunModule(&ModulePass{
				Analyzer: a,
				Module:   module,
				Config:   cfg,
				Dir:      ".",
				report:   collect,
			})
		}
	}

	out := malformed
	out = append(out, filterSuppressed(raw, directives)...)
	sortDiagnostics(out)
	return out
}

// filterSuppressed drops diagnostics covered by a directive, marking the
// directive used.
func filterSuppressed(raw []Diagnostic, directives []ignoreDirective) []Diagnostic {
	var out []Diagnostic
	for _, d := range raw {
		matched := false
		for i := range directives {
			if directives[i].suppresses(&d) {
				directives[i].used = true
				matched = true
			}
		}
		if !matched {
			out = append(out, d)
		}
	}
	return out
}

// applySuppression is filterSuppressed plus the dead-directive audit. A
// directive is dead when it names an analyzer the registry does not know
// (stale tooling baggage), or when the named analyzer was enabled this run
// and the directive matched nothing. Dead-directive findings can themselves
// be suppressed — `//lint:ignore deadignore <reason>` — for directives kept
// deliberately (e.g. fixtures demonstrating suppression), and a deadignore
// directive that excuses nothing is reported in turn.
func applySuppression(raw []Diagnostic, directives []ignoreDirective, analyzers []*Analyzer) []Diagnostic {
	out := filterSuppressed(raw, directives)

	deadEnabled := false
	enabled := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = true
		if a.Name == AnalyzerDeadIgnore.Name {
			deadEnabled = true
		}
	}
	if !deadEnabled {
		return out
	}

	var dead []Diagnostic
	for i := range directives {
		dir := &directives[i]
		if dir.used || dir.analyzer == AnalyzerDeadIgnore.Name {
			continue
		}
		known := ByName(dir.analyzer) != nil
		switch {
		case !known:
			dead = append(dead, Diagnostic{
				File: dir.file, Line: dir.line, Col: dir.col,
				Analyzer: AnalyzerDeadIgnore.Name,
				Message:  fmt.Sprintf("lint:ignore names unknown analyzer %q; delete the directive (keep the reason as a plain comment if it still informs)", dir.analyzer),
			})
		case enabled[dir.analyzer]:
			dead = append(dead, Diagnostic{
				File: dir.file, Line: dir.line, Col: dir.col,
				Analyzer: AnalyzerDeadIgnore.Name,
				Message:  fmt.Sprintf("lint:ignore %s suppresses nothing; the finding it excused is gone — delete the directive", dir.analyzer),
			})
		}
		// Known but not enabled this run: no verdict either way.
	}

	// Second round: deadignore directives may suppress the audit findings,
	// and any deadignore directive that itself suppresses nothing is dead.
	dead = filterSuppressed(dead, directives)
	for i := range directives {
		dir := &directives[i]
		if dir.analyzer != AnalyzerDeadIgnore.Name || dir.used {
			continue
		}
		dead = append(dead, Diagnostic{
			File: dir.file, Line: dir.line, Col: dir.col,
			Analyzer: AnalyzerDeadIgnore.Name,
			Message:  "lint:ignore deadignore suppresses nothing; delete the directive",
		})
	}
	return append(out, dead...)
}

// liveSuppressions lists the directives that matched at least one finding.
func liveSuppressions(directives []ignoreDirective) []Suppression {
	var out []Suppression
	for i := range directives {
		if directives[i].used {
			out = append(out, Suppression{
				File:     directives[i].file,
				Line:     directives[i].line,
				Analyzer: directives[i].analyzer,
				Reason:   directives[i].reason,
			})
		}
	}
	return out
}

func sortSuppressions(s []Suppression) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0; j-- {
			a, b := s[j-1], s[j]
			if a.File < b.File || (a.File == b.File && a.Line <= b.Line) {
				break
			}
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}
