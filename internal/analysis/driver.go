package analysis

import "go/ast"

// Run loads every package matching patterns under dir, runs the given
// analyzers over each, applies lint:ignore suppression, and returns the
// surviving diagnostics in deterministic sorted order.
func Run(dir string, patterns []string, analyzers []*Analyzer, cfg *Config) ([]Diagnostic, error) {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		all = append(all, RunPackage(pkg, analyzers, cfg)...)
	}
	sortDiagnostics(all)
	return all, nil
}

// RunPackage fans the analyzers out over one loaded package and filters the
// findings through the package's lint:ignore directives. Malformed
// directives are themselves diagnostics.
func RunPackage(pkg *Package, analyzers []*Analyzer, cfg *Config) []Diagnostic {
	var raw []Diagnostic
	collect := func(d Diagnostic) { raw = append(raw, d) }

	var directives []ignoreDirective
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		directives = append(directives, parseIgnores(pkg.Fset, f, func(d Diagnostic) {
			malformed = append(malformed, d)
		})...)
	}

	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			RelPath:  pkg.RelPath,
			Config:   cfg,
			report:   collect,
		}
		a.Run(pass)
	}

	out := malformed
	for _, d := range raw {
		if !suppressed(d, directives) {
			out = append(out, d)
		}
	}
	sortDiagnostics(out)
	return out
}

// walkFiles applies fn to every node of every file in the pass.
func (p *Pass) walkFiles(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
