package analysis

import (
	"go/ast"
)

// globalRandFuncs are the math/rand package-level functions that draw from
// the process-global source. rand.New / rand.NewSource construct injectable
// generators and stay legal (NewSource only when its seed is not
// time-derived).
var globalRandFuncs = map[string]bool{
	"ExpFloat64":  true,
	"Float32":     true,
	"Float64":     true,
	"Int":         true,
	"Int31":       true,
	"Int31n":      true,
	"Int32":       true,
	"Int32N":      true,
	"Int63":       true,
	"Int63n":      true,
	"Int64":       true,
	"Int64N":      true,
	"IntN":        true,
	"Intn":        true,
	"N":           true,
	"NormFloat64": true,
	"Perm":        true,
	"Read":        true,
	"Seed":        true,
	"Shuffle":     true,
	"Uint32":      true,
	"Uint64":      true,
}

// AnalyzerDetRand forbids the global math/rand source and time-derived
// seeds in the deterministic layers: every random draw there must come from
// an injected *rand.Rand so the experiment seed fully determines behaviour
// and replays on both paths of a localization topology see identical
// pseudo-random schedules.
var AnalyzerDetRand = &Analyzer{
	Name:      "detrand",
	Doc:       "no global math/rand functions or time-derived rand.NewSource seeds in deterministic packages, directly or through helper calls",
	Run:       runDetRand,
	RunModule: runDetRandTaint,
}

func runDetRand(p *Pass) {
	if !pathIn(p.RelPath, p.Config.DetRandScope) {
		return
	}
	p.walkFiles(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkgPath, name := p.pkgFuncName(call)
		if !isRandPkg(pkgPath) {
			return true
		}
		if globalRandFuncs[name] {
			p.Reportf(call.Pos(), "call to global rand.%s; draw from an injected *rand.Rand instead", name)
			return true
		}
		if name == "NewSource" && len(call.Args) > 0 && p.timeDerived(call.Args[0]) {
			p.Reportf(call.Pos(), "rand.NewSource seeded from the wall clock; seeds must be explicit and reproducible")
		}
		return true
	})
}

// timeDerived reports whether expr contains a call into package time or a
// method on a time.Time/time.Duration value (e.g. time.Now().UnixNano()).
func (p *Pass) timeDerived(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if fn := p.calleeFunc(call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" {
			found = true
		}
		return !found
	})
	return found
}
