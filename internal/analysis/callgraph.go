package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Module is every loaded package of one Go module plus a static call graph
// with per-function summaries. It is built once per driver run and shared
// by all module analyzers; construction is a single pass over the ASTs.
//
// The graph is deliberately conservative in the quiet direction: only
// statically resolvable calls become edges. Calls through interfaces,
// function-typed variables, and method values have no edge — the callee is
// unknown at analysis time, and assuming the worst would drown the repo in
// false positives (every clk.Now() through the injected clock interface
// would "reach" the wall clock). DESIGN.md §13 discusses the soundness gap;
// the injected-clock and injected-rand contracts rely on exactly this
// conservatism to stay clean.
type Module struct {
	Fset *token.FileSet
	Pkgs []*Package

	funcs map[*types.Func]*FuncNode
	nodes []*FuncNode // deterministic order: package path, then position

	// directives indexes every lint:ignore directive by file and line so
	// taint analyzers can decide sink visibility (a suppressed sink is
	// invisible at its call sites and must taint its callers).
	directives map[string]map[int]map[string]bool

	callersOf map[*types.Func][]callerEdge
}

// FuncNode is one module function or method with a body.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	// Calls are the statically resolved calls to other module functions,
	// in source order. Calls inside function literals are attributed to
	// the enclosing declaration.
	Calls []CallEdge

	// Direct facts, in source order.
	WallSinks []SinkFact // time.Now / time.Since / time.Until
	RandSinks []SinkFact // global math/rand draws, time-derived NewSource
	Blocking  []SinkFact // channel ops, WaitGroup.Wait, Sleep, net/os/exec I/O
}

// CallEdge is one static call site to another module function.
type CallEdge struct {
	Callee *types.Func
	Pos    token.Pos
}

type callerEdge struct {
	Caller *FuncNode
	Pos    token.Pos
}

// SinkFact is one direct occurrence of an invariant-relevant operation.
type SinkFact struct {
	Desc string // "time.Now", "rand.Float64", "channel send", "os.WriteFile", ...
	Pos  token.Pos
}

// FuncLabel renders a module-relative human label for a function:
// "internal/netsim.(*Link).Send" or "internal/stats.Rank".
func (m *Module) FuncLabel(fn *types.Func) string {
	n := m.funcs[fn]
	rel := ""
	if n != nil {
		rel = n.Pkg.RelPath
	} else if fn.Pkg() != nil {
		rel = fn.Pkg().Path()
	}
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		ptr := ""
		if p, isPtr := recv.(*types.Pointer); isPtr {
			recv = p.Elem()
			ptr = "*"
		}
		if named, isNamed := recv.(*types.Named); isNamed {
			name = "(" + ptr + named.Obj().Name() + ")." + name
		}
	}
	if rel == "" {
		return name
	}
	return rel + "." + name
}

// Nodes returns every function node in deterministic order.
func (m *Module) Nodes() []*FuncNode { return m.nodes }

// NodeOf returns the node for fn, or nil for non-module functions.
func (m *Module) NodeOf(fn *types.Func) *FuncNode { return m.funcs[fn] }

// suppressedAt reports whether a lint:ignore directive for analyzer covers
// line of file (directives cover their own line and the line below).
func (m *Module) suppressedAt(analyzer, file string, line int) bool {
	byLine := m.directives[file]
	if byLine == nil {
		return false
	}
	return byLine[line][analyzer] || byLine[line-1][analyzer]
}

// BuildModule constructs the call graph and per-function summaries over
// pkgs (as returned by Load).
func BuildModule(fset *token.FileSet, pkgs []*Package) *Module {
	m := &Module{
		Fset:       fset,
		Pkgs:       pkgs,
		funcs:      make(map[*types.Func]*FuncNode),
		directives: make(map[string]map[int]map[string]bool),
		callersOf:  make(map[*types.Func][]callerEdge),
	}

	// Pass 1: one node per declared function/method with a body, and the
	// directive index.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range parseIgnores(fset, f, func(Diagnostic) {}) {
				byLine := m.directives[d.file]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					m.directives[d.file] = byLine
				}
				if byLine[d.line] == nil {
					byLine[d.line] = make(map[string]bool)
				}
				byLine[d.line][d.analyzer] = true
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Fn: fn, Decl: fd, Pkg: pkg}
				m.funcs[fn] = node
				m.nodes = append(m.nodes, node)
			}
		}
	}
	sort.Slice(m.nodes, func(i, j int) bool {
		a, b := m.nodes[i], m.nodes[j]
		if a.Pkg.ImportPath != b.Pkg.ImportPath {
			return a.Pkg.ImportPath < b.Pkg.ImportPath
		}
		return a.Decl.Pos() < b.Decl.Pos()
	})

	// Pass 2: fill edges and direct facts.
	for _, node := range m.nodes {
		m.summarize(node)
		for _, e := range node.Calls {
			m.callersOf[e.Callee] = append(m.callersOf[e.Callee], callerEdge{Caller: node, Pos: e.Pos})
		}
	}
	return m
}

// summarize walks one function body collecting call edges and direct
// facts. Function literals are attributed to the enclosing declaration.
func (m *Module) summarize(node *FuncNode) {
	info := node.Pkg.Info
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			m.summarizeCall(node, info, x)
		case *ast.SendStmt:
			node.Blocking = append(node.Blocking, SinkFact{Desc: "channel send", Pos: x.Arrow})
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				node.Blocking = append(node.Blocking, SinkFact{Desc: "channel receive", Pos: x.OpPos})
			}
		case *ast.SelectStmt:
			if !selectHasDefault(x) {
				node.Blocking = append(node.Blocking, SinkFact{Desc: "select without default", Pos: x.Select})
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					node.Blocking = append(node.Blocking, SinkFact{Desc: "range over channel", Pos: x.For})
				}
			}
		}
		return true
	})
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// blockingStdlibOS lists the package-level os functions that perform file
// system I/O. os.Getenv and friends are not here: they do not block.
var blockingStdlibOS = map[string]bool{
	"Chdir": true, "Create": true, "CreateTemp": true, "Mkdir": true,
	"MkdirAll": true, "MkdirTemp": true, "Open": true, "OpenFile": true,
	"ReadDir": true, "ReadFile": true, "Remove": true, "RemoveAll": true,
	"Rename": true, "Stat": true, "Symlink": true, "Truncate": true,
	"WriteFile": true,
}

// summarizeCall classifies one call expression into an edge or a fact.
func (m *Module) summarizeCall(node *FuncNode, info *types.Info, call *ast.CallExpr) {
	fn := calleeFuncOf(info, call)
	if fn == nil {
		return
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return
	}
	recv := recvNamed(fn)

	switch pkg.Path() {
	case "time":
		if recv == "" && wallClockFuncs[fn.Name()] {
			node.WallSinks = append(node.WallSinks, SinkFact{Desc: "time." + fn.Name(), Pos: call.Pos()})
		}
		if recv == "" && fn.Name() == "Sleep" {
			node.Blocking = append(node.Blocking, SinkFact{Desc: "time.Sleep", Pos: call.Pos()})
		}
		return
	case "math/rand", "math/rand/v2":
		if recv == "" && globalRandFuncs[fn.Name()] {
			node.RandSinks = append(node.RandSinks, SinkFact{Desc: "rand." + fn.Name(), Pos: call.Pos()})
		}
		if recv == "" && fn.Name() == "NewSource" && len(call.Args) > 0 && timeDerivedExpr(info, call.Args[0]) {
			node.RandSinks = append(node.RandSinks, SinkFact{Desc: "rand.NewSource(wall clock)", Pos: call.Pos()})
		}
		return
	case "sync":
		// Cond.Wait releases the associated mutex while parked — it is the
		// sanctioned block-under-lock pattern and never a fact. Mutex Lock
		// acquisition is lock ordering, a different invariant; also skipped.
		if recv == "WaitGroup" && fn.Name() == "Wait" {
			node.Blocking = append(node.Blocking, SinkFact{Desc: "sync.WaitGroup.Wait", Pos: call.Pos()})
		}
		return
	case "net", "net/http", "os/exec":
		node.Blocking = append(node.Blocking, SinkFact{Desc: stdlibCallDesc(pkg.Path(), recv, fn.Name()), Pos: call.Pos()})
		return
	case "os":
		if recv == "File" || (recv == "" && blockingStdlibOS[fn.Name()]) {
			node.Blocking = append(node.Blocking, SinkFact{Desc: stdlibCallDesc("os", recv, fn.Name()), Pos: call.Pos()})
		}
		return
	}

	if callee, ok := m.funcs[fn]; ok {
		node.Calls = append(node.Calls, CallEdge{Callee: callee.Fn, Pos: call.Pos()})
	}
}

func stdlibCallDesc(pkg, recv, name string) string {
	if recv != "" {
		return pkg + "." + recv + "." + name
	}
	return pkg + "." + name
}

// recvNamed returns the bare receiver type name of a method ("File",
// "WaitGroup"), or "" for package-level functions.
func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// reachInfo is one function's membership in a transitive-reachability
// relation, with a deterministic witness chain to a sink.
type reachInfo struct {
	depth int
	// sink is set on the node containing the direct fact.
	sink SinkFact
	// next is the callee one step closer to the sink (nil on sink nodes),
	// nextPos the call site used as the witness.
	next    *FuncNode
	nextPos token.Pos
}

// reachability computes, for every node, whether it reaches a direct fact
// (selected by facts) through module calls, where propagation from a
// caller is permitted only when canPropagate(caller) holds. Sink nodes
// (those with a direct fact) are always members; intermediate membership
// additionally requires canPropagate of the intermediate node itself.
//
// The computation is a multi-source BFS over reverse call edges, giving
// each member a minimal-depth witness path; ties break on source position
// so the result is deterministic.
func (m *Module) reachability(facts func(*FuncNode) []SinkFact, canPropagate func(*FuncNode) bool) map[*FuncNode]*reachInfo {
	out := make(map[*FuncNode]*reachInfo)
	var frontier []*FuncNode
	for _, n := range m.nodes {
		fs := facts(n)
		if len(fs) == 0 {
			continue
		}
		best := fs[0]
		for _, f := range fs[1:] {
			if f.Pos < best.Pos {
				best = f
			}
		}
		out[n] = &reachInfo{depth: 0, sink: best}
		frontier = append(frontier, n)
	}
	depth := 0
	for len(frontier) > 0 {
		depth++
		var next []*FuncNode
		for _, n := range frontier {
			if out[n].depth != depth-1 {
				continue
			}
			if !canPropagate(n) {
				continue
			}
			edges := append([]callerEdge(nil), m.callersOf[n.Fn]...)
			sort.Slice(edges, func(i, j int) bool { return edges[i].Pos < edges[j].Pos })
			for _, e := range edges {
				if prev, ok := out[e.Caller]; ok {
					// Keep the shallower witness; at equal depth keep the
					// earlier call site.
					if prev.depth < depth || (prev.depth == depth && prev.nextPos <= e.Pos) {
						continue
					}
				}
				out[e.Caller] = &reachInfo{depth: depth, next: n, nextPos: e.Pos}
				next = append(next, e.Caller)
			}
		}
		frontier = next
	}
	return out
}

// witnessPath renders the chain from node down to its sink as PathSteps:
// each intermediate step is (function, call-site position), the final step
// the sink operation itself.
func (m *Module) witnessPath(node *FuncNode, reach map[*FuncNode]*reachInfo) []PathStep {
	var steps []PathStep
	for n := node; n != nil; {
		info := reach[n]
		if info == nil {
			break
		}
		if info.next == nil {
			steps = append(steps, positionStep(m.Fset, m.FuncLabel(n.Fn), info.sink.Pos))
			steps = append(steps, positionStep(m.Fset, info.sink.Desc, info.sink.Pos))
			break
		}
		steps = append(steps, positionStep(m.Fset, m.FuncLabel(n.Fn), info.nextPos))
		n = info.next
	}
	return steps
}

// timeDerivedExpr reports whether expr contains a call into package time —
// the free-function twin of Pass.timeDerived, usable from module passes.
func timeDerivedExpr(info *types.Info, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if fn := calleeFuncOf(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" {
			found = true
		}
		return !found
	})
	return found
}

// GraphStats summarizes the call graph for -graph output.
type GraphStats struct {
	Packages  int
	Functions int
	Edges     int
}

// Stats returns call-graph size counters.
func (m *Module) Stats() GraphStats {
	edges := 0
	for _, n := range m.nodes {
		edges += len(n.Calls)
	}
	return GraphStats{Packages: len(m.Pkgs), Functions: len(m.nodes), Edges: edges}
}

// relPathOfPkg returns the module-relative path of the package owning a
// node (convenience for scope checks).
func (n *FuncNode) relPath() string { return n.Pkg.RelPath }

// inScope reports whether rel is covered by scope (same semantics as
// pathIn, named for readability at call-graph call sites).
func inScope(rel string, scope []string) bool { return pathIn(rel, scope) }
