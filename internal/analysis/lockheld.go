package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AnalyzerLockHeld flags blocking operations performed while a sync.Mutex or
// sync.RWMutex is held in the service layer. The scheduler serializes its
// whole admission plane through s.mu; a channel send, a WaitGroup.Wait, or a
// journal write that does file I/O under that lock turns one slow disk into
// a stalled admission plane and, in the worst case, a deadlock with the
// worker draining the same channel.
//
// The held-set tracking is intraprocedural (Lock/RLock add, Unlock/RUnlock
// remove, a deferred Unlock holds to the end of the function); whether a
// call blocks is interprocedural — a call into a module function whose body
// transitively reaches a blocking operation counts, and the diagnostic
// carries the chain. sync.Cond.Wait is exempt everywhere: it releases the
// associated mutex while parked and is the sanctioned block-under-lock
// pattern.
var AnalyzerLockHeld = &Analyzer{
	Name:      "lockheld",
	Doc:       "no blocking calls while holding a mutex in the service layer",
	RunModule: runLockHeld,
}

func runLockHeld(mp *ModulePass) {
	m := mp.Module
	// Every module function's transitive blocking reachability, with
	// deterministic witness chains. Propagation is unrestricted: blocking
	// is blocking no matter which package the frames live in.
	reach := m.reachability(
		func(n *FuncNode) []SinkFact { return n.Blocking },
		func(n *FuncNode) bool { return true },
	)

	for _, node := range m.nodes {
		if !inScope(node.relPath(), mp.Config.LockHeldScope) {
			continue
		}
		lt := &lockTracker{mp: mp, node: node, reach: reach, held: make(map[string]token.Pos)}
		lt.walkStmts(node.Decl.Body.List)
	}
}

// lockTracker walks one function body in statement order carrying the set of
// held mutexes, keyed by the receiver expression's source form ("s.mu").
type lockTracker struct {
	mp    *ModulePass
	node  *FuncNode
	reach map[*FuncNode]*reachInfo
	held  map[string]token.Pos
}

// mutexMethod classifies a call as a sync mutex operation, returning the
// method name and the receiver expression, or "".
func (lt *lockTracker) mutexMethod(call *ast.CallExpr) (string, ast.Expr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	fn, _ := lt.node.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", nil
	}
	recv := recvNamed(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return "", nil
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
		return fn.Name(), sel.X
	}
	return "", nil
}

// heldKeys returns the currently held mutexes in deterministic order.
func (lt *lockTracker) heldKeys() []string {
	keys := make([]string, 0, len(lt.held))
	for k := range lt.held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// reportBlocked emits one diagnostic per held mutex for a blocking event.
func (lt *lockTracker) reportBlocked(pos token.Pos, desc string, path []PathStep) {
	for _, key := range lt.heldKeys() {
		lp := lt.mp.Module.Fset.Position(lt.held[key])
		lt.mp.ReportPath(pos, path, "%s while holding %s (locked at %s:%d)", desc, key, lp.Filename, lp.Line)
	}
}

// visitExpr scans an expression in source order for lock transitions and
// blocking events.
func (lt *lockTracker) visitExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// A literal runs later (goroutine, callback) with its own lock
			// discipline; do not confuse its ops with the enclosing frame's.
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && len(lt.held) > 0 {
				lt.reportBlocked(x.OpPos, "channel receive", nil)
			}
		case *ast.CallExpr:
			lt.visitCall(x)
			return false // visitCall recurses into arguments itself
		}
		return true
	})
}

func (lt *lockTracker) visitCall(call *ast.CallExpr) {
	// Arguments evaluate before the call.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		lt.visitExpr(sel.X)
	}
	for _, arg := range call.Args {
		lt.visitExpr(arg)
	}

	if op, recv := lt.mutexMethod(call); op != "" {
		key := types.ExprString(recv)
		switch op {
		case "Lock", "RLock":
			lt.held[key] = call.Pos()
		case "Unlock", "RUnlock":
			delete(lt.held, key)
		}
		return
	}
	if len(lt.held) == 0 {
		return
	}

	fn := calleeFuncOf(lt.node.Pkg.Info, call)
	if fn == nil {
		return
	}
	m := lt.mp.Module
	if callee := m.NodeOf(fn); callee != nil {
		if info := lt.reach[callee]; info != nil {
			path := append([]PathStep{positionStep(m.Fset, m.FuncLabel(lt.node.Fn), call.Pos())},
				m.witnessPath(callee, lt.reach)...)
			sink := path[len(path)-1]
			lt.reportBlocked(call.Pos(), "call to "+m.FuncLabel(fn)+" blocks ("+sink.Func+")", path)
		}
		return
	}
	// Direct stdlib blocking calls were already classified as facts during
	// summarization; match by position.
	for _, f := range lt.node.Blocking {
		if f.Pos == call.Pos() {
			lt.reportBlocked(call.Pos(), f.Desc+" blocks", nil)
			return
		}
	}
}

func (lt *lockTracker) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		lt.walkStmt(s)
	}
}

func (lt *lockTracker) walkStmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		lt.visitExpr(x.X)
	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			lt.visitExpr(r)
		}
		for _, l := range x.Lhs {
			lt.visitExpr(l)
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						lt.visitExpr(v)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			lt.visitExpr(r)
		}
	case *ast.SendStmt:
		lt.visitExpr(x.Value)
		lt.visitExpr(x.Chan)
		if len(lt.held) > 0 {
			lt.reportBlocked(x.Arrow, "channel send", nil)
		}
	case *ast.IfStmt:
		if x.Init != nil {
			lt.walkStmt(x.Init)
		}
		lt.visitExpr(x.Cond)
		thenLt := lt.cloneHeld()
		thenLt.walkStmts(x.Body.List)
		if x.Else != nil {
			elseLt := lt.cloneHeld()
			elseLt.walkStmt(x.Else)
			lt.held = intersectHeld(thenLt.held, elseLt.held)
		} else {
			lt.held = intersectHeld(thenLt.held, lt.held)
		}
	case *ast.BlockStmt:
		lt.walkStmts(x.List)
	case *ast.SwitchStmt:
		if x.Init != nil {
			lt.walkStmt(x.Init)
		}
		lt.visitExpr(x.Tag)
		lt.walkCaseBodies(x.Body.List)
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			lt.walkStmt(x.Init)
		}
		lt.walkCaseBodies(x.Body.List)
	case *ast.SelectStmt:
		if !selectHasDefault(x) && len(lt.held) > 0 {
			lt.reportBlocked(x.Select, "select without default", nil)
		}
		lt.walkCaseBodies(x.Body.List)
	case *ast.ForStmt:
		if x.Init != nil {
			lt.walkStmt(x.Init)
		}
		lt.visitExpr(x.Cond)
		body := lt.cloneHeld()
		body.walkStmts(x.Body.List)
		if x.Post != nil {
			body.walkStmt(x.Post)
		}
		lt.held = intersectHeld(lt.held, body.held)
	case *ast.RangeStmt:
		lt.visitExpr(x.X)
		if tv, ok := lt.node.Pkg.Info.Types[x.X]; ok && tv.Type != nil {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && len(lt.held) > 0 {
				lt.reportBlocked(x.For, "range over channel", nil)
			}
		}
		body := lt.cloneHeld()
		body.walkStmts(x.Body.List)
		lt.held = intersectHeld(lt.held, body.held)
	case *ast.GoStmt:
		// The spawned goroutine does not run under this frame's locks; its
		// literal body, if any, is skipped by visitExpr.
		for _, arg := range x.Call.Args {
			lt.visitExpr(arg)
		}
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the mutex held for the rest of the
		// function body — deliberately no delete here. Other deferred calls
		// run after the body, outside the walk.
		if op, _ := lt.mutexMethod(x.Call); op != "" {
			return
		}
		for _, arg := range x.Call.Args {
			lt.visitExpr(arg)
		}
	case *ast.LabeledStmt:
		lt.walkStmt(x.Stmt)
	case *ast.IncDecStmt:
		lt.visitExpr(x.X)
	}
}

// walkCaseBodies runs each clause from a copy of the pre-state and joins the
// held sets by intersection (a mutex counts as held after the statement only
// if every path kept it held — the quiet direction).
func (lt *lockTracker) walkCaseBodies(clauses []ast.Stmt) {
	result := lt.held
	first := true
	for _, c := range clauses {
		ct := lt.cloneHeld()
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				ct.visitExpr(e)
			}
			ct.walkStmts(cc.Body)
		case *ast.CommClause:
			// The comm op's blocking is the select's blocking, already
			// reported once on the select; only the body runs afterwards.
			ct.walkStmts(cc.Body)
		}
		if first {
			result = ct.held
			first = false
		} else {
			result = intersectHeld(result, ct.held)
		}
	}
	lt.held = result
}

func (lt *lockTracker) cloneHeld() *lockTracker {
	c := &lockTracker{mp: lt.mp, node: lt.node, reach: lt.reach, held: make(map[string]token.Pos, len(lt.held))}
	for k, v := range lt.held {
		c.held[k] = v
	}
	return c
}

func intersectHeld(a, b map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos)
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}
