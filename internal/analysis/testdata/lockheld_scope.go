// Scope fixture: a blocking send under a held mutex, run under
// internal/stats — outside LockHeldScope — where it must stay quiet.
package stats

import "sync"

type box struct {
	mu sync.Mutex
	ch chan int
}

func (b *box) outOfScope(v int) {
	b.mu.Lock()
	b.ch <- v
	b.mu.Unlock()
}
