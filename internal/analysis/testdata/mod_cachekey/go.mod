module example.com/ckmod

go 1.22
