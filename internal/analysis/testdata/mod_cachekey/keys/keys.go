// Fixture specs for the cachekey analyzer: one encoder that misses a nested
// field, one clean encoder, one non-constant stamp.
package keys

import "example.com/ckmod/simcache"

const brokenSchema = "ckmod/broken/v1"
const cleanSchema = "ckmod/clean/v1"

type Params struct {
	Rate  float64
	Burst int
}

type BrokenSpec struct {
	Name string
	P    Params
	Seed int64
}

type CleanSpec struct {
	Label string
	Jobs  int
}

func appendInt(b []byte, v int64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// encodeBroken covers Name, P.Burst and Seed but forgets P.Rate.
func encodeBroken(s *BrokenSpec) []byte { // want "does not reference field P.Rate"
	b := []byte(s.Name)
	b = appendInt(b, int64(s.P.Burst))
	b = appendInt(b, s.Seed)
	return b
}

func encodeClean(s *CleanSpec) []byte {
	b := []byte(s.Label)
	return appendInt(b, int64(s.Jobs))
}

func BrokenKey(s *BrokenSpec) simcache.Key {
	return simcache.KeyOf(brokenSchema, encodeBroken(s))
}

func CleanKey(s *CleanSpec) simcache.Key {
	return simcache.KeyOf(cleanSchema, encodeClean(s))
}

// VarStampKey passes a non-constant stamp: versioning is unauditable.
func VarStampKey(s *CleanSpec, stamp string) simcache.Key {
	return simcache.KeyOf(stamp, encodeClean(s)) // want "compile-time string constant"
}
