// Package simcache mirrors the repository's content-addressed cache API;
// the analyzer discovers KeyOf call sites by the package path suffix.
package simcache

import "crypto/sha256"

type Key [32]byte

func KeyOf(stamp string, spec []byte) Key {
	h := sha256.New()
	h.Write([]byte(stamp))
	h.Write(spec)
	var k Key
	copy(k[:], h.Sum(nil))
	return k
}
