// Fixture for the maporder analyzer.
package fixture

import (
	"fmt"
	"io"
	"sort"
)

func appendsInMapOrder(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want "append inside map iteration"
	}
	return out
}

func printsInMapOrder(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "fmt.Fprintf inside map iteration"
	}
}

// collectThenSort is the sanctioned idiom: the appended slice is sorted
// before anything ordered consumes it, so the loop is not flagged.
func collectThenSort(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// sliceRange exercises the type check: ranging over a slice never fires.
func sliceRange(w io.Writer, xs []int) {
	var out []int
	for _, v := range xs {
		out = append(out, v)
		fmt.Fprintln(w, v)
	}
}

func suppressedMapRange(m map[string]int) []int {
	var out []int
	for _, v := range m {
		//lint:ignore maporder fixture demonstrates a justified suppression
		out = append(out, v)
	}
	return out
}
