// Fixture for the lockheld analyzer over the sharded-scheduler idiom
// (run under internal/service). The scheduler splits its state into
// per-shard mutexes with a group-commit journal outside them; the
// patterns here pin down what the analyzer must flag (blocking journal
// appends or wakeup sends inside a shard critical section — the shape
// the pre-pipeline scheduler needed six suppressions for) and what must
// stay quiet (append-after-unlock, non-blocking wakeup hints, token
// bookkeeping).
package service

import "sync"

type shardRec struct{ id string }

type shardJournal struct{ ch chan shardRec }

// appendBlocking models Journal.Append: it parks the caller until the
// committer fsyncs the batch (a channel receive in the real pipeline).
func (j *shardJournal) appendBlocking(r shardRec) {
	j.ch <- r
}

type miniShard struct {
	mu     sync.Mutex
	tokens map[string]string
	queue  []shardRec
}

type miniSched struct {
	shards  []miniShard
	journal *shardJournal
	ready   chan struct{}
}

// appendUnderShardLock is the pre-group-commit shape: a journal append —
// which now blocks for a whole commit batch, not one fsync — inside the
// shard critical section. Every submit on this shard stalls behind the
// committer. Must be flagged, transitively through the helper.
func (s *miniSched) appendUnderShardLock(i int, r shardRec) {
	sh := &s.shards[i]
	sh.mu.Lock()
	sh.queue = append(sh.queue, r)
	s.journal.appendBlocking(r) // want "appendBlocking blocks"
	sh.mu.Unlock()
}

// wakeupUnderLock posts a worker wakeup with a blocking send while the
// shard is locked: a worker draining this shard would deadlock against a
// full channel. Must be flagged directly.
func (s *miniSched) wakeupUnderLock(i int, r shardRec) {
	sh := &s.shards[i]
	sh.mu.Lock()
	sh.queue = append(sh.queue, r)
	s.ready <- struct{}{} // want "channel send while holding sh.mu"
	sh.mu.Unlock()
}

// appendAfterUnlock is the sanctioned pipeline shape: the state
// transition commits under the shard lock, the journal append happens
// after release. Clean.
func (s *miniSched) appendAfterUnlock(i int, r shardRec) {
	sh := &s.shards[i]
	sh.mu.Lock()
	sh.queue = append(sh.queue, r)
	sh.mu.Unlock()
	s.journal.appendBlocking(r)
}

// reserveAndSignal is the claim path: pair-token bookkeeping under the
// shard lock with a non-blocking wakeup hint (select-with-default never
// parks). Clean.
func (s *miniSched) reserveAndSignal(i int, pair, id string) {
	sh := &s.shards[i]
	sh.mu.Lock()
	sh.tokens[pair] = id
	select {
	case s.ready <- struct{}{}:
	default:
	}
	sh.mu.Unlock()
}

// crossShardCompare is the two-phase claim: each shard's candidate is
// taken under its own lock, the cross-shard comparison holds none. Clean.
func (s *miniSched) crossShardCompare() (best shardRec) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if len(sh.queue) > 0 {
			c := sh.queue[0]
			sh.queue = sh.queue[1:]
			sh.mu.Unlock()
			if best.id == "" || c.id < best.id {
				best = c
			}
			continue
		}
		sh.mu.Unlock()
	}
	return best
}
