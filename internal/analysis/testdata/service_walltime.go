// Fixture for the service-layer walltime gate, checked as if under
// internal/service: the scheduler is NOT in WalltimeAllow, so a stray
// wall-clock read in scheduling code is a build-gating finding.
package fixture

import "time"

func retryAtViolation(backoff time.Duration) time.Time {
	return time.Now().Add(backoff) // want "wall-clock read time.Now"
}

func queueLatencyViolation(enqueued time.Time) time.Duration {
	return time.Since(enqueued) // want "wall-clock read time.Since"
}
