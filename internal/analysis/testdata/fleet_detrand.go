// Fixture for the fleet-layer detrand gate, checked as if under
// internal/fleet: aggregation must stay a pure function of the verdict
// multiset — no sampling from the global source, no wall-clock seeds.
package fixture

import (
	"math/rand"
	"time"
)

func thinningViolation(pos, neg int64) bool {
	return rand.Float64() < float64(1+pos)/float64(2+pos+neg) // want "global rand.Float64"
}

func shardSeedViolation() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "seeded from the wall clock"
}
