// Fixture for the detrand analyzer, checked as if under internal/netsim.
package fixture

import (
	"math/rand"
	"time"
)

func globalSource() {
	_ = rand.Intn(10)                  // want "global rand.Intn"
	_ = rand.Float64()                 // want "global rand.Float64"
	rand.Shuffle(3, func(i, j int) {}) // want "global rand.Shuffle"
}

func timeSeed() {
	_ = rand.New(rand.NewSource(time.Now().UnixNano())) // want "seeded from the wall clock"
}

func injected(rng *rand.Rand) {
	// Method calls on an injected generator are the sanctioned pattern.
	_ = rng.Intn(10)
	_ = rng.Float64()
	_ = rand.New(rand.NewSource(42)) // explicit literal seed is fine
}

func suppressedGlobal() {
	//lint:ignore detrand fixture demonstrates a justified suppression
	_ = rand.Intn(10)
}
