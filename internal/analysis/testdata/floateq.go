// Fixture for the floateq analyzer.
package fixture

func compare(a, b float64, n, m int) bool {
	if a == b { // want "== on floating-point operands"
		return true
	}
	if a != 0 { // want "!= on floating-point operands"
		return false
	}
	// Integer and other comparable types are fine.
	if n == m {
		return true
	}
	return float32(a) == float32(b) // want "== on floating-point operands"
}

func tolerated(a, b, eps float64) bool {
	// The sanctioned pattern: explicit tolerance.
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < eps
}

func suppressedNaNCheck(x float64) bool {
	//lint:ignore floateq exact self-inequality is the NaN test
	return x != x
}
