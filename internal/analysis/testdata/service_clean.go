// Fixture for the service-layer determinism contract, checked as if under
// internal/service (inside DetRandScope, outside WalltimeAllow): the
// sanctioned scheduler patterns — an injected clock and per-job seeded
// jitter — pass both walltime and detrand with nothing reported.
package fixture

import (
	"math/rand"
	"time"
)

// clockIface mirrors internal/clock.Clock: the only way the scheduler
// reads time.
type clockIface interface {
	Now() time.Time
	Since(t time.Time) time.Duration
}

func queueLatency(clk clockIface, enqueued time.Time) time.Duration {
	// Injected clock: legal. The same expression via package time would be
	// a walltime finding (see service_walltime.go).
	return clk.Since(enqueued)
}

func retryJitter(rng *rand.Rand, base time.Duration) time.Duration {
	// Per-job seeded generator: legal. The global source would be a
	// detrand finding (see service_detrand.go).
	return time.Duration(float64(base) * (0.5 + rng.Float64()))
}

func jobGenerator(seed int64) *rand.Rand {
	// Deterministic literal-derived seed: legal even inside DetRandScope.
	return rand.New(rand.NewSource(seed ^ 0x5eed))
}
