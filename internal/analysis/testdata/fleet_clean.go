// Fixture for the fleet-layer determinism contract, checked as if under
// internal/fleet (inside DetRandScope, outside WalltimeAllow): the
// follower's sanctioned patterns — polling paced by an injected clock,
// posteriors as pure functions of integer counts — pass both walltime
// and detrand with nothing reported.
package fixture

import "time"

// timerIface mirrors internal/clock.Timer.
type timerIface interface {
	C() <-chan time.Time
	Stop() bool
}

// fleetClock mirrors the subset of internal/clock.Clock the follower
// uses: the only way the fleet layer waits.
type fleetClock interface {
	NewTimer(d time.Duration) timerIface
}

func pollWait(clk fleetClock, poll time.Duration) {
	// Injected clock timer: legal. time.Sleep or time.After here would be
	// a walltime finding.
	t := clk.NewTimer(poll)
	<-t.C()
}

func posteriorMean(pos, neg int64) float64 {
	// The posterior is a deterministic function of the verdict counts —
	// the fleet layer draws no randomness at all.
	return float64(1+pos) / float64(2+pos+neg)
}
