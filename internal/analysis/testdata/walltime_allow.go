// Fixture for the walltime allowlist: checked as if under
// internal/transport, the sanctioned real-clock layer — nothing reported.
package fixture

import "time"

func realClockLayer() time.Duration {
	start := time.Now()
	return time.Since(start)
}
