// Package util is the unscoped helper layer: its own wall-clock and global
// rand uses are legal here, but calling into them from a scoped package
// imports nondeterminism and is what taint mode reports.
package util

import (
	"math/rand"
	"time"
)

func Stamp() int64 {
	//lint:ignore walltime helper-local stamp, sanctioned for logging here
	return time.Now().UnixNano()
}

func Draw() float64 { return rand.Float64() }

// Indirect adds a hop so a taint path crosses two unscoped frames.
func Indirect() float64 { return Draw() }

// Pure reaches nothing; calls to it stay clean.
func Pure(x float64) float64 { return x * 2 }
