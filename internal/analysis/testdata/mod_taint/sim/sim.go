// Package sim is the scoped deterministic layer of the taint fixture.
package sim

import (
	"example.com/taintmod/rt"
	"example.com/taintmod/util"
)

type source interface{ Draw() float64 }

func Run() float64 {
	t := util.Stamp()     // want "transitively reaches the wall clock"
	x := util.Draw()      // want "transitively reaches the global math/rand source"
	y := util.Indirect()  // want "transitively reaches the global math/rand source"
	z := util.Pure(x + y) // clean: no sink behind it
	_ = rt.Elapsed()      // clean: sanctioned real-time layer
	return float64(t) + z
}

// FromIface calls through an interface: no static callee, no edge, and —
// deliberately — no finding. The injected-clock/injected-rand contracts
// rely on this conservatism.
func FromIface(s source) float64 { return s.Draw() }

// Suppressed demonstrates suppression at the call site: the justification
// lives with the caller that imports the nondeterminism.
func Suppressed() float64 {
	//lint:ignore detrand replay comparison draws against a recorded corpus
	return util.Draw()
}
