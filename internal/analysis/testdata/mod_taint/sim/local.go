// Suppression at the sink sanctions that one line, not its callers: every
// scoped caller of the sinking function is reported and must justify (or
// fix) itself. Propagation stops at scoped frames, so callers-of-callers
// stay quiet.
package sim

import (
	"math/rand"
	"time"
)

func localDraw() float64 {
	//lint:ignore detrand mirrors the recorded corpus distribution exactly
	return rand.Float64()
}

func localStamp() int64 {
	//lint:ignore walltime boot banner timestamp, never enters simulated state
	return time.Now().Unix()
}

func UsesLocalDraw() float64 { return localDraw() } // want "transitively reaches the global math/rand source"

func UsesLocalStamp() int64 { return localStamp() } // want "transitively reaches the wall clock"

// CallerOfUser is one frame further: UsesLocalDraw is scoped and does not
// propagate, so this stays clean (it has its own diagnostic to answer for
// only if it calls the sink chain directly).
func CallerOfUser() float64 { return UsesLocalDraw() }
