module example.com/taintmod

go 1.22
