// Package rt is the sanctioned real-time layer (WalltimeAllow): it neither
// sinks nor propagates, so scoped callers may use it freely.
package rt

import "time"

func Elapsed() int64 { return time.Now().Unix() }
