// Scope fixture: the same double-free as pktlife.go, but run under
// internal/stats — outside PktLifeScope — where it must stay quiet.
package stats

type Packet struct{ Size int }

type Engine struct{ freelist *Packet }

func (e *Engine) AllocPacket() *Packet { return &Packet{} }
func (e *Engine) FreePacket(p *Packet) {}

func outOfScope(e *Engine) {
	p := e.AllocPacket()
	e.FreePacket(p)
	e.FreePacket(p)
}
