// Fixture for the lockheld analyzer (run under internal/service). The
// single-file package forms its own one-package module, so the transitive
// case exercises the call graph: blockingHelper has the direct fact and
// transitive's diagnostic carries the chain.
package service

import (
	"sync"
	"time"
)

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	cond *sync.Cond
	ch   chan int
	data map[int]int
}

func blockingHelper(ch chan int, v int) {
	ch <- v
}

func (s *store) sendUnderLock(v int) {
	s.mu.Lock()
	s.ch <- v // want "channel send while holding s.mu"
	s.mu.Unlock()
}

func (s *store) sleepUnderDeferredLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want "time.Sleep blocks while holding s.mu"
}

func (s *store) transitive(v int) {
	s.mu.Lock()
	blockingHelper(s.ch, v) // want "blockingHelper blocks"
	s.mu.Unlock()
}

func (s *store) selectUnderRLock() {
	s.rw.RLock()
	defer s.rw.RUnlock()
	select { // want "select without default while holding s.rw"
	case v := <-s.ch:
		s.data[v] = v
	}
}

// unlockFirst releases before blocking: clean.
func (s *store) unlockFirst(v int) {
	s.mu.Lock()
	s.data[v] = v
	s.mu.Unlock()
	s.ch <- v
}

// condWait is the sanctioned block-under-lock pattern: Cond.Wait releases
// the mutex while parked. Clean.
func (s *store) condWait() {
	s.mu.Lock()
	for len(s.data) == 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// goroutineBody does not run under the spawning frame's lock: clean.
func (s *store) goroutineBody(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- v
	}()
}

// receiveUnderLock drains with a non-blocking default: clean.
func (s *store) receiveUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		s.data[v] = v
	default:
	}
}
