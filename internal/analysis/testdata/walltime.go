// Fixture for the walltime analyzer, checked as if under internal/netsim.
package fixture

import "time"

func reads() time.Duration {
	start := time.Now()      // want "wall-clock read time.Now"
	return time.Since(start) // want "wall-clock read time.Since"
}

func legal(now time.Time) {
	// Constructing times and durations is fine; only reading the real
	// clock is banned.
	_ = now.Add(time.Second)
	_ = time.Date(2023, 4, 1, 0, 0, 0, 0, time.UTC)
}

func suppressedRead() time.Time {
	//lint:ignore walltime fixture demonstrates a justified suppression
	return time.Now()
}
