// Fixture for the pktlife analyzer (run under internal/netsim). A local
// Engine/Packet pair mirrors the netsim freelist API: AllocPacket hands out
// packets, FreePacket recycles them, and anything receiving a packet as an
// argument takes ownership.
package netsim

// Packet mirrors netsim.Packet for the fixture.
type Packet struct {
	Size int
	next *Packet
}

// Engine mirrors the netsim freelist owner.
type Engine struct {
	freelist *Packet
}

func (e *Engine) AllocPacket() *Packet {
	if p := e.freelist; p != nil {
		e.freelist = p.next
		return p
	}
	return &Packet{}
}

func (e *Engine) FreePacket(p *Packet) {
	p.next = e.freelist
	e.freelist = p
}

// Link stands in for any ownership-taking consumer.
type Link struct{}

func (l *Link) Send(p *Packet) {}

func doubleFree(e *Engine) {
	p := e.AllocPacket()
	e.FreePacket(p)
	e.FreePacket(p) // want "double free of packet p"
}

func useAfterFree(e *Engine) int {
	p := e.AllocPacket()
	e.FreePacket(p)
	return p.Size // want "use of packet p after FreePacket"
}

func sendAfterFree(e *Engine, l *Link) {
	p := e.AllocPacket()
	e.FreePacket(p)
	l.Send(p) // want "use of packet p after FreePacket"
}

func leakOnEarlyReturn(e *Engine, full bool) {
	p := e.AllocPacket()
	if full {
		return // want "neither freed nor handed off"
	}
	e.FreePacket(p)
}

func leakAtEnd(e *Engine) {
	p := e.AllocPacket()
	p.Size = 64
} // want "neither freed nor handed off"

// dropPath is the sanctioned drop sequence: hand the packet to the observer
// (escape), then free it. The free after the escape is not a double free,
// and a second free after it would be.
func dropPath(e *Engine, l *Link) {
	p := e.AllocPacket()
	l.Send(p)
	e.FreePacket(p)
}

// branchFree frees on the failure path and hands off on the success path;
// the terminated branch stays out of the merge, so both paths are clean.
func branchFree(e *Engine, l *Link, ok bool) {
	p := e.AllocPacket()
	if !ok {
		e.FreePacket(p)
		return
	}
	l.Send(p)
}

// deferFree discharges the obligation at exit.
func deferFree(e *Engine) {
	p := e.AllocPacket()
	defer e.FreePacket(p)
	p.Size++
}

// paramFree: parameters carry no leak obligation, and a single free of one
// is the normal ownership transfer.
func paramFree(e *Engine, p *Packet) {
	p.Size = 0
	e.FreePacket(p)
}

// loopAlloc: cross-iteration lifecycles are out of scope; the body's
// alloc/free pairing is checked once and nothing leaks spuriously.
func loopAlloc(e *Engine, n int) {
	for i := 0; i < n; i++ {
		p := e.AllocPacket()
		p.Size = i
		e.FreePacket(p)
	}
}
