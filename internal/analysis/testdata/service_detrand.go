// Fixture for the service-layer detrand gate, checked as if under
// internal/service: retry jitter must come from the per-job seeded
// generator, never the global source or a wall-clock seed.
package fixture

import (
	"math/rand"
	"time"
)

func jitterViolation(base time.Duration) time.Duration {
	return time.Duration(float64(base) * (0.5 + rand.Float64())) // want "global rand.Float64"
}

func seedViolation() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "seeded from the wall clock"
}
