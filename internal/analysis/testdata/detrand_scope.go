// Fixture for detrand scoping: this file is checked as if it lived under
// cmd/wehey-lint, outside DetRandScope, so nothing is reported.
package fixture

import (
	"math/rand"
	"time"
)

func globalSourceOutsideScope() {
	_ = rand.Intn(10)
	_ = rand.New(rand.NewSource(time.Now().UnixNano()))
}
