// Fixture for the seedident analyzer: reconstructions of the order-coupled
// seed counter pattern PR 1 excised, plus the sanctioned replacements.
package fixture

import "math/rand"

func runSim(cfg int, simSeed int64) int64 { return simSeed }

func specSeed(base int64, name string, trial int) int64 {
	return base ^ int64(trial) ^ int64(len(name))
}

// pr1Pattern is the exact bug class: a counter living across iterations,
// incremented in the body, feeding NewSource — seeds then encode how many
// runs happened before, not which run this is.
func pr1Pattern(trials int) {
	seed := int64(1)
	for i := 0; i < trials; i++ {
		rng := rand.New(rand.NewSource(seed)) // want "counter \"seed\" is incremented across loop iterations"
		_ = rng.Int63()
		seed++
	}
}

// seedParam flags the same counter flowing into a seed-named parameter of
// an ordinary function instead of rand.NewSource.
func seedParam(trials int) {
	next := int64(0)
	for i := 0; i < trials; i++ {
		_ = runSim(i, next) // want "counter \"next\" is incremented across loop iterations"
		next += 2
	}
}

// identitySeeds is the sanctioned pattern: the loop index (incremented
// only in the for post clause) hashed with stable identity.
func identitySeeds(trials int) {
	for i := 0; i < trials; i++ {
		rng := rand.New(rand.NewSource(specSeed(42, "fig5", i)))
		_ = rng.Int63()
	}
}

// plainCounter is fine as long as it never reaches a seed position.
func plainCounter(xs []int) int64 {
	var total int64
	for _, x := range xs {
		total += int64(x)
	}
	return total
}

func suppressedCounter(trials int) {
	seed := int64(1)
	for i := 0; i < trials; i++ {
		//lint:ignore seedident fixture demonstrates a justified suppression
		_ = rand.New(rand.NewSource(seed))
		seed++
	}
}
