// Fixture for the suppression directive machinery, run under floateq.
package fixture

func directives(a, b float64) {
	//lint:ignore floateq preceding-line directive covers the next line
	_ = a == b

	_ = a == b //lint:ignore floateq trailing directive covers its own line

	//lint:ignore walltime directive for another analyzer does not suppress
	_ = a == b // want "== on floating-point operands"

	/* want "malformed lint:ignore directive" */ //lint:ignore floateq
	_ = a == b                                   // want "== on floating-point operands"
}

/* want "malformed lint:ignore directive" */ //lint:ignore
