package analysis

import "strings"

// Config scopes analyzers to the package layers whose invariants they
// encode. Paths are module-relative import paths; an entry matches the
// package itself and everything below it ("internal/netsim" also covers
// "internal/netsim/foo").
type Config struct {
	// DetRandScope lists the deterministic layers in which calls to the
	// global math/rand source are forbidden: all randomness there must
	// flow through an injected *rand.Rand so experiment seeds fully
	// determine behaviour.
	DetRandScope []string
	// WalltimeAllow lists the real-clock layers (and only those) allowed
	// to call time.Now / time.Since. Everything else in the module — the
	// simulator, experiments, stats, and the top-level binaries — runs in
	// simulated or injected time.
	WalltimeAllow []string
	// WalltimeScope lists the layers where taint-mode walltime reports
	// call sites whose callee transitively reaches the wall clock. The
	// syntactic pass already covers direct reads everywhere outside
	// WalltimeAllow; the taint pass additionally polices the deterministic
	// core against indirect reads through helper packages or locally
	// suppressed sinks.
	WalltimeScope []string
	// PktLifeScope lists the packages whose functions are checked for
	// packet lifecycle violations (use-after-free, double-free, leaked
	// drop paths) against the netsim Engine freelist.
	PktLifeScope []string
	// LockHeldScope lists the packages in which holding a mutex across a
	// (transitively) blocking call is reported.
	LockHeldScope []string
	// CacheKeyGolden is the path, relative to the module root, of the
	// committed spec-struct fingerprint golden the cachekey analyzer
	// checks. Empty or missing file disables the fingerprint check (field
	// coverage still runs).
	CacheKeyGolden string
}

// DefaultConfig encodes this repository's layering: the simulator and the
// analysis pipelines above it are deterministic; the loopback testbed, the
// real UDP transport, and the clock helper are the sanctioned real-time
// layers.
func DefaultConfig() *Config {
	return &Config{
		DetRandScope: []string{
			"internal/core",
			"internal/experiments",
			"internal/fleet",
			"internal/isp",
			"internal/measure",
			"internal/netsim",
			"internal/service",
			"internal/stats",
			"internal/tomo",
			"internal/topology",
			"internal/trace",
			"internal/twin",
			"internal/wehe",
		},
		WalltimeAllow: []string{
			"internal/clock",
			"internal/testbed",
			"internal/transport",
		},
		WalltimeScope: []string{
			"internal/core",
			"internal/experiments",
			"internal/fleet",
			"internal/isp",
			"internal/measure",
			"internal/netsim",
			"internal/service",
			"internal/stats",
			"internal/tomo",
			"internal/topology",
			"internal/trace",
			"internal/twin",
			"internal/wehe",
		},
		PktLifeScope:   []string{"internal/netsim"},
		LockHeldScope:  []string{"internal/service"},
		CacheKeyGolden: "internal/analysis/cachekey.golden",
	}
}

// pathIn reports whether relPath is covered by one of the scope entries.
func pathIn(relPath string, scope []string) bool {
	for _, s := range scope {
		if relPath == s || strings.HasPrefix(relPath, s+"/") {
			return true
		}
	}
	return false
}
