// Package analysis is a stdlib-only static-analysis framework encoding the
// repository's determinism invariants. The simulator's scientific claims rest
// on bit-reproducible runs: a stray global math/rand call, a wall-clock read
// inside simulated time, an unsorted map iteration feeding a report, or an
// order-coupled seed counter silently changes experiment output without
// failing any test. `go vet` cannot see these domain invariants, so this
// package implements its own analyzers on top of go/parser, go/ast and
// go/types (source-mode importer — no golang.org/x/tools dependency).
//
// Diagnostics can be suppressed with a justification comment either on the
// offending line or the line directly above it:
//
//	//lint:ignore <analyzer> <reason>
//
// A directive with no reason is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is a single named check run over one type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one type-checked package into an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// RelPath is the package's import path relative to the module root
	// ("" for the root package, "internal/netsim", "cmd/wehey-lint", ...).
	// Scope and allowlist decisions match against it.
	RelPath string
	Config  *Config

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos. Suppression and sorting are handled
// by the driver, not the analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, addressed by file position.
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// sortDiagnostics orders findings deterministically: by file, line, column,
// analyzer name, then message. The driver's output must be byte-identical
// across runs and machines for the CI gate and golden tests to hold.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerDetRand,
		AnalyzerFloatEq,
		AnalyzerMapOrder,
		AnalyzerSeedIdent,
		AnalyzerWalltime,
	}
}

// ByName resolves an analyzer by its name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
