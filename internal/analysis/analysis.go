// Package analysis is a stdlib-only static-analysis framework encoding the
// repository's determinism invariants. The simulator's scientific claims rest
// on bit-reproducible runs: a stray global math/rand call, a wall-clock read
// inside simulated time, an unsorted map iteration feeding a report, or an
// order-coupled seed counter silently changes experiment output without
// failing any test. `go vet` cannot see these domain invariants, so this
// package implements its own analyzers on top of go/parser, go/ast and
// go/types (source-mode importer — no golang.org/x/tools dependency).
//
// Analyzers come in two kinds. Package analyzers (Run) see one type-checked
// package at a time and catch syntactic violations where they happen.
// Module analyzers (RunModule) see every package of the module at once,
// plus a call graph with per-function summaries (see Module), and catch
// violations that are invisible per-package: a scoped call site whose
// callee transitively reaches a wall-clock read or the global math/rand
// source through helper packages, a mutex held across a transitively
// blocking call, a cache-key encoder missing a spec field.
//
// Diagnostics can be suppressed with a justification comment either on the
// offending line or the line directly above it:
//
//	//lint:ignore <analyzer> <reason>
//
// A directive with no reason is itself reported, and so is a directive that
// suppresses nothing (analyzer "deadignore"): every suppression must carry
// its weight or be deleted.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Analyzer is a single named check. Exactly one of Run (per package) or
// RunModule (once per module, with the call graph) is set; deadignore has
// neither — it is implemented by the driver after suppression matching.
type Analyzer struct {
	Name string
	Doc  string
	// Run, when set, is invoked once per type-checked package.
	Run func(*Pass)
	// RunModule, when set, is invoked once with every loaded package and
	// the module call graph.
	RunModule func(*ModulePass)
}

// Diagnostic is one finding, addressed by file position. Path, when
// non-empty, is the call chain from the reported site to the offending
// sink (taint-mode detrand/walltime, transitive lockheld): downstream
// tooling gets it as structured JSON, humans get it appended to Message.
type Diagnostic struct {
	File     string     `json:"file"`
	Line     int        `json:"line"`
	Col      int        `json:"col"`
	Analyzer string     `json:"analyzer"`
	Message  string     `json:"message"`
	Path     []PathStep `json:"path,omitempty"`
}

// PathStep is one frame of a taint or blocking call chain: the function
// containing the call (or the sink operation itself for the final step)
// and the position of the call/sink.
type PathStep struct {
	Func string `json:"func"`
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// sortDiagnostics orders findings deterministically: by file, line, column,
// analyzer name, then message. The driver's output must be byte-identical
// across runs and machines for the CI gate and golden tests to hold.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// positionStep renders a position and function label as a PathStep.
func positionStep(fset *token.FileSet, fn string, pos token.Pos) PathStep {
	p := fset.Position(pos)
	return PathStep{Func: fn, File: p.Filename, Line: p.Line, Col: p.Column}
}

// renderPath appends a human-readable call chain to a message.
func renderPath(msg string, path []PathStep) string {
	if len(path) == 0 {
		return msg
	}
	out := msg + " [path:"
	for i, s := range path {
		if i > 0 {
			out += " →"
		}
		out += fmt.Sprintf(" %s (%s:%d)", s.Func, s.File, s.Line)
	}
	return out + "]"
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerCacheKey,
		AnalyzerDeadIgnore,
		AnalyzerDetRand,
		AnalyzerFloatEq,
		AnalyzerLockHeld,
		AnalyzerMapOrder,
		AnalyzerPktLife,
		AnalyzerSeedIdent,
		AnalyzerWalltime,
	}
}

// ByName resolves an analyzer by its name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
