package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// AnalyzerCacheKey guards the content-addressed simulation cache against
// silent key collisions. A cache key is simcache.KeyOf(schemaStamp,
// encode(spec)): if the encoder forgets a spec field, two runs that differ
// in that field share a key and one silently reads the other's results; if
// the spec struct gains a field (or changes a type) without a schema-stamp
// bump, keys written by the old binary remain addressable by the new one
// with a different meaning.
//
// The analyzer discovers every KeyOf call site in the module, resolves the
// encoder function from the payload argument, and checks (a) the stamp is a
// compile-time constant, (b) the encoder references every field of its spec
// struct (recursively for nested named structs; using a whole nested struct
// — &r.M1 — covers its subfields), and (c) the spec struct's recursive
// field fingerprint matches the committed golden, so a struct edit without
// a stamp bump fails the lint gate until `wehey-lint -write-golden` is run
// alongside a new stamp.
var AnalyzerCacheKey = &Analyzer{
	Name:      "cachekey",
	Doc:       "cache-key encoders must cover every spec field, and spec changes must bump the schema stamp",
	RunModule: runCacheKey,
}

// cacheKeySite is one discovered simcache.KeyOf call.
type cacheKeySite struct {
	node    *FuncNode // function containing the call
	call    *ast.CallExpr
	stamp   string       // constant value of the stamp argument
	encoder *FuncNode    // module function producing the payload
	spec    *types.Named // spec struct type taken by the encoder (may be nil)
}

func runCacheKey(mp *ModulePass) {
	var sites []cacheKeySite
	collectSites(mp, &sites)

	for _, site := range sites {
		if site.spec == nil {
			continue // encoder takes no struct spec (raw bytes); nothing to cover
		}
		checkFieldCoverage(mp, site)
	}
	checkGolden(mp, sites)
}

func isSimcachePkg(path string) bool {
	return path == "simcache" || strings.HasSuffix(path, "/simcache")
}

// encoderCallIn finds the module function call that produces the payload
// expression: the outermost call within expr whose callee is a module
// function.
func encoderCallIn(m *Module, info *types.Info, expr ast.Expr) *FuncNode {
	var found *FuncNode
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFuncOf(info, call); fn != nil {
			if node := m.NodeOf(fn); node != nil {
				found = node
				return false
			}
		}
		return true
	})
	return found
}

// specParamType returns the named struct type of the encoder's spec
// parameter: the first parameter whose type is a named struct or a pointer
// to one.
func specParamType(enc *FuncNode) *types.Named {
	sig, ok := enc.Fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			if _, isStruct := named.Underlying().(*types.Struct); isStruct {
				return named
			}
		}
	}
	return nil
}

// checkFieldCoverage verifies the encoder references every field of the
// spec struct.
func checkFieldCoverage(mp *ModulePass, site cacheKeySite) {
	enc := site.encoder
	var param types.Object
	sig := enc.Fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if t == site.spec || types.Identical(t, site.spec) {
			param = sig.Params().At(i)
			break
		}
	}
	if param == nil {
		return
	}

	covered := make(map[string]bool) // selector paths relative to the param
	whole := false                   // param used other than as a selector base
	ast.Inspect(enc.Decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if ok {
			if path, rooted := selectorPathFrom(enc.Pkg.Info, sel, param); rooted {
				covered[path] = true
				return false // subpaths of a recorded path are implied
			}
			return true
		}
		if id, isIdent := n.(*ast.Ident); isIdent && enc.Pkg.Info.Uses[id] == param {
			whole = true
		}
		return true
	})
	if whole {
		return // param handed off wholesale (e.g. gob-encoded); all covered
	}

	missing := missingFields(site.spec, "", covered)
	for _, f := range missing {
		mp.Reportf(enc.Decl.Pos(),
			"cache-key encoder %s does not reference field %s of %s; runs differing only in %s would collide in the cache",
			mp.Module.FuncLabel(enc.Fn), f, site.spec.Obj().Name(), f)
	}
}

// selectorPathFrom resolves a selector chain to a dotted field path rooted
// at obj ("Params.Rate"); rooted is false when the chain starts elsewhere.
func selectorPathFrom(info *types.Info, sel *ast.SelectorExpr, obj types.Object) (string, bool) {
	var parts []string
	cur := ast.Expr(sel)
	for {
		switch x := ast.Unparen(cur).(type) {
		case *ast.SelectorExpr:
			parts = append([]string{x.Sel.Name}, parts...)
			cur = x.X
		case *ast.Ident:
			if info.Uses[x] == obj {
				return strings.Join(parts, "."), true
			}
			return "", false
		case *ast.StarExpr:
			cur = x.X
		default:
			return "", false
		}
	}
}

// missingFields walks the spec struct recursively and returns the dotted
// paths of fields the encoder never references. A covered prefix covers the
// whole subtree.
func missingFields(named *types.Named, prefix string, covered map[string]bool) []string {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		path := f.Name()
		if prefix != "" {
			path = prefix + "." + f.Name()
		}
		if covered[path] {
			continue
		}
		ft := f.Type()
		if p, isPtr := ft.(*types.Pointer); isPtr {
			ft = p.Elem()
		}
		if sub, isNamed := ft.(*types.Named); isNamed {
			if _, isStruct := sub.Underlying().(*types.Struct); isStruct {
				subMissing := missingFields(sub, path, covered)
				if len(subMissing) < subFieldCount(sub) {
					// Some subfields referenced individually; report only
					// the genuinely missing ones.
					out = append(out, subMissing...)
					continue
				}
				// No subfield touched at all: report the field itself.
				out = append(out, path)
				continue
			}
		}
		out = append(out, path)
	}
	return out
}

func subFieldCount(named *types.Named) int {
	if st, ok := named.Underlying().(*types.Struct); ok {
		return st.NumFields()
	}
	return 0
}

// --- struct fingerprints and the committed golden ---

// fingerprint computes a stable hash of the spec struct's recursive shape:
// field names and types, in declaration order, recursing into named structs.
// Over-approximate on purpose — every field participates, including ones an
// encoder deliberately skips, so any struct edit shows up.
func fingerprint(named *types.Named) string {
	h := sha256.Sum256([]byte(structSig(named, make(map[*types.Named]bool))))
	return hex.EncodeToString(h[:8])
}

func structSig(named *types.Named, seen map[*types.Named]bool) string {
	if seen[named] {
		return "<cycle>"
	}
	seen[named] = true
	defer delete(seen, named)
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return named.String()
	}
	var b strings.Builder
	b.WriteString("{")
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		ft := f.Type()
		base := ft
		if p, isPtr := base.(*types.Pointer); isPtr {
			base = p.Elem()
		}
		if sub, isNamed := base.(*types.Named); isNamed {
			if _, isStruct := sub.Underlying().(*types.Struct); isStruct {
				fmt.Fprintf(&b, "%s %s;", f.Name(), structSig(sub, seen))
				continue
			}
		}
		fmt.Fprintf(&b, "%s %s;", f.Name(), ft.String())
	}
	b.WriteString("}")
	return b.String()
}

// goldenEntry is one committed (spec type, stamp, fingerprint) triple.
type goldenEntry struct {
	typ   string // qualified name, e.g. internal/experiments.SimSpec
	stamp string
	fp    string
}

func specTypeName(m *Module, named *types.Named) string {
	pkg := named.Obj().Pkg()
	rel := ""
	if pkg != nil {
		rel = pkg.Path()
		for _, p := range m.Pkgs {
			if p.Pkg == pkg {
				rel = p.RelPath
				break
			}
		}
	}
	if rel == "" {
		return named.Obj().Name()
	}
	return rel + "." + named.Obj().Name()
}

// currentGoldenEntries derives the golden content from the discovered call
// sites, deduplicated and sorted.
func currentGoldenEntries(m *Module, sites []cacheKeySite) []goldenEntry {
	seen := make(map[string]bool)
	var out []goldenEntry
	for _, s := range sites {
		if s.spec == nil {
			continue
		}
		e := goldenEntry{typ: specTypeName(m, s.spec), stamp: s.stamp, fp: fingerprint(s.spec)}
		key := e.typ + "\x00" + e.stamp
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].typ != out[j].typ {
			return out[i].typ < out[j].typ
		}
		return out[i].stamp < out[j].stamp
	})
	return out
}

// FormatCacheKeyGolden renders the golden file content for the module's
// current spec structs (used by `wehey-lint -write-golden`).
func FormatCacheKeyGolden(m *Module) string {
	sites := collectCacheKeySites(m)
	var b strings.Builder
	b.WriteString("# Spec-struct fingerprints for the cachekey analyzer.\n")
	b.WriteString("# Regenerate with: go run ./cmd/wehey-lint -write-golden ./...\n")
	for _, e := range currentGoldenEntries(m, sites) {
		fmt.Fprintf(&b, "%s %s %s\n", e.typ, e.fp, e.stamp)
	}
	return b.String()
}

// collectCacheKeySites re-runs discovery without reporting (for golden
// generation outside a lint pass).
func collectCacheKeySites(m *Module) []cacheKeySite {
	var sites []cacheKeySite
	mp := &ModulePass{Analyzer: AnalyzerCacheKey, Module: m, Config: DefaultConfig(), report: func(Diagnostic) {}}
	collectSites(mp, &sites)
	return sites
}

// collectSites is the discovery half of runCacheKey, shared with golden
// generation. Diagnostics about malformed sites go through mp.
func collectSites(mp *ModulePass, out *[]cacheKeySite) {
	m := mp.Module
	for _, node := range m.nodes {
		node := node
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFuncOf(node.Pkg.Info, call)
			if fn == nil || fn.Name() != "KeyOf" || fn.Pkg() == nil || !isSimcachePkg(fn.Pkg().Path()) || len(call.Args) != 2 {
				return true
			}
			site := cacheKeySite{node: node, call: call}
			tv := node.Pkg.Info.Types[call.Args[0]]
			if tv.Value == nil || tv.Value.Kind() != constant.String {
				mp.Reportf(call.Pos(), "KeyOf stamp must be a compile-time string constant so cache versioning is auditable")
				return true
			}
			site.stamp = constant.StringVal(tv.Value)
			enc := encoderCallIn(m, node.Pkg.Info, call.Args[1])
			if enc == nil {
				mp.Reportf(call.Pos(), "KeyOf payload is not built by a module encoder function; field coverage cannot be verified")
				return true
			}
			site.encoder = enc
			site.spec = specParamType(enc)
			*out = append(*out, site)
			return true
		})
	}
}

// checkGolden compares current spec fingerprints against the committed
// golden file.
func checkGolden(mp *ModulePass, sites []cacheKeySite) {
	if mp.Config.CacheKeyGolden == "" {
		return
	}
	path := mp.Config.CacheKeyGolden
	if !filepath.IsAbs(path) {
		path = filepath.Join(mp.Dir, path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return // no golden committed: fingerprint checking disabled
	}
	golden := make(map[string]goldenEntry) // keyed by type name
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Fields(line)
		if len(parts) != 3 {
			continue
		}
		golden[parts[0]] = goldenEntry{typ: parts[0], fp: parts[1], stamp: parts[2]}
	}

	for _, e := range currentGoldenEntries(mp.Module, sites) {
		g, ok := golden[e.typ]
		pos := cacheKeySitePos(mp.Module, sites, e.typ)
		if !ok {
			mp.Reportf(pos, "spec type %s has no entry in %s; run `go run ./cmd/wehey-lint -write-golden ./...`", e.typ, mp.Config.CacheKeyGolden)
			continue
		}
		switch {
		case g.fp == e.fp && g.stamp == e.stamp:
			// In sync.
		case g.fp != e.fp && g.stamp == e.stamp:
			mp.Reportf(pos, "spec struct %s changed without a schema-stamp bump (stamp still %q); stale cache entries would be served — bump the stamp, then run -write-golden", e.typ, e.stamp)
		default:
			// Stamp moved (with or without a struct change): the golden
			// just needs regenerating to re-pin the new pair.
			mp.Reportf(pos, "golden entry for %s is stale (stamp or struct changed with a bump); run `go run ./cmd/wehey-lint -write-golden ./...`", e.typ)
		}
	}
}

// cacheKeySitePos finds a stable position to anchor a golden diagnostic:
// the first KeyOf call site for the type.
func cacheKeySitePos(m *Module, sites []cacheKeySite, typ string) token.Pos {
	for _, s := range sites {
		if s.spec == nil {
			continue
		}
		if specTypeName(m, s.spec) == typ {
			return s.call.Pos()
		}
	}
	return token.NoPos
}
