package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Pass carries one type-checked package into a package analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// RelPath is the package's import path relative to the module root
	// ("" for the root package, "internal/netsim", "cmd/wehey-lint", ...).
	// Scope and allowlist decisions match against it.
	RelPath string
	Config  *Config

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos. Suppression and sorting are handled
// by the driver, not the analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// walkFiles applies fn to every node of every file in the pass.
func (p *Pass) walkFiles(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// ModulePass carries the whole loaded module — every package plus the call
// graph — into a module analyzer.
type ModulePass struct {
	Analyzer *Analyzer
	Module   *Module
	Config   *Config
	// Dir is the directory the module was loaded from; analyzers resolve
	// auxiliary files (the cachekey golden) relative to it.
	Dir string

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos (resolved through the module fileset).
func (mp *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	mp.ReportPath(pos, nil, format, args...)
}

// ReportPath records a diagnostic carrying a call chain. The path is
// appended to the human-readable message and preserved structurally for
// JSON output.
func (mp *ModulePass) ReportPath(pos token.Pos, path []PathStep, format string, args ...any) {
	position := mp.Module.Fset.Position(pos)
	mp.report(Diagnostic{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: mp.Analyzer.Name,
		Message:  renderPath(fmt.Sprintf(format, args...), path),
		Path:     path,
	})
}
