package analysis

// AnalyzerDeadIgnore audits the suppressions themselves. A
// `//lint:ignore <analyzer> <reason>` directive is dead when it names an
// analyzer this suite does not implement (a leftover from another linter, or
// a typo), or when the named analyzer ran and the directive suppressed
// nothing — the code it excused has since been fixed or moved. Dead
// directives are worse than noise: they read as an active, justified
// exemption for a finding that no longer exists, and they mask typos that
// would otherwise let a real finding through.
//
// The check is implemented by the driver after suppression matching (this
// analyzer has no Run/RunModule of its own): it needs to know which
// directives matched across the whole run. Directives naming a known
// analyzer that was not part of the run are left alone — a single-analyzer
// invocation must not condemn every other analyzer's suppressions.
var AnalyzerDeadIgnore = &Analyzer{
	Name: "deadignore",
	Doc:  "every lint:ignore directive must name a real analyzer and suppress at least one finding",
}
