package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// calleeFuncOf resolves a call expression to the package-level function or
// method object it invokes, or nil for builtins, conversions and calls
// through function-typed variables. Free-function form usable from both
// package passes and module passes.
func calleeFuncOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	fnObj, _ := info.Uses[id].(*types.Func)
	return fnObj
}

// calleeFunc is the Pass-bound form of calleeFuncOf.
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	return calleeFuncOf(p.Info, call)
}

// isPkgFunc reports whether call invokes the package-level function
// pkgPath.name (not a method, not a local shadow).
func (p *Pass) isPkgFunc(call *ast.CallExpr, pkgPath, name string) bool {
	fn := p.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// pkgFuncName returns "path.Name" for a call to a package-level function,
// or "" otherwise.
func (p *Pass) pkgFuncName(call *ast.CallExpr) (pkgPath, name string) {
	fn := p.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}

// isRandPkg reports whether a package path is one of the math/rand flavours.
func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

// exprUsesObj reports whether expr references obj anywhere inside it.
func (p *Pass) exprUsesObj(expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// incrementedIdents collects the objects of identifiers mutated by x++ or
// x += ... statements inside node (a loop body).
func (p *Pass) incrementedIdents(node ast.Node) map[types.Object]ast.Node {
	out := make(map[types.Object]ast.Node)
	ast.Inspect(node, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(s.X).(*ast.Ident); ok {
				if obj := p.Info.Uses[id]; obj != nil {
					out[obj] = s
				}
			}
		case *ast.AssignStmt:
			if s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 {
				if id, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident); ok {
					if obj := p.Info.Uses[id]; obj != nil {
						out[obj] = s
					}
				}
			}
		}
		return true
	})
	return out
}
