package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// runFixture type-checks one testdata file as a single-file package, runs
// the analyzer over it under the given module-relative path, and compares
// the surviving diagnostics against the file's `// want "substring"`
// comments (one or more quoted substrings per flagged line).
func runFixture(t *testing.T, a *Analyzer, relPath, name string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check("fixture/"+name, fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", path, err)
	}
	pkg := &Package{
		ImportPath: "fixture/" + name,
		RelPath:    relPath,
		Fset:       fset,
		Files:      []*ast.File{file},
		Pkg:        tpkg,
		Info:       info,
	}
	got := RunPackage(pkg, []*Analyzer{a}, DefaultConfig())
	want := parseWants(t, fset, file)

	type hit struct {
		line int
		sub  string
	}
	matched := make(map[int]bool)
	var unmatched []hit
	for _, w := range want {
		found := false
		for i, d := range got {
			if matched[i] || d.Line != w.line {
				continue
			}
			if strings.Contains(d.Message, w.sub) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			unmatched = append(unmatched, hit{w.line, w.sub})
		}
	}
	for _, u := range unmatched {
		t.Errorf("%s:%d: expected diagnostic containing %q, none reported", name, u.line, u.sub)
	}
	for i, d := range got {
		if !matched[i] {
			t.Errorf("%s: unexpected diagnostic: %s", name, d)
		}
	}
}

type wantComment struct {
	line int
	sub  string
}

var wantRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// parseWants reads `// want "substr"` and `/* want "substr" */` comments.
// The block form exists so a want can share a line with a //-directive
// under test (a line comment would swallow it).
func parseWants(t *testing.T, fset *token.FileSet, file *ast.File) []wantComment {
	t.Helper()
	var out []wantComment
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimPrefix(text, "/*")
			text = strings.TrimSuffix(text, "*/")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			line := fset.Position(c.Pos()).Line
			quoted := wantRe.FindAllString(text, -1)
			if len(quoted) == 0 {
				t.Fatalf("%s: malformed want comment: %s", fset.Position(c.Pos()), c.Text)
			}
			for _, q := range quoted {
				sub, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s: bad want string %s: %v", fset.Position(c.Pos()), q, err)
				}
				out = append(out, wantComment{line: line, sub: sub})
			}
		}
	}
	return out
}

func TestDetRandFixture(t *testing.T) {
	runFixture(t, AnalyzerDetRand, "internal/netsim", "detrand.go")
}

// Out of scope: global-rand code under a layer outside DetRandScope
// reports nothing — detrand only binds the simulated/experiment packages.
func TestDetRandOutOfScope(t *testing.T) {
	runFixtureExpectClean(t, AnalyzerDetRand, "cmd/wehey-lint", "detrand_scope.go")
}

func TestWalltimeFixture(t *testing.T) {
	runFixture(t, AnalyzerWalltime, "internal/netsim", "walltime.go")
}

// Allowlist: identical wall-clock reads under internal/transport are the
// sanctioned real-time layer and report nothing.
func TestWalltimeAllowlist(t *testing.T) {
	runFixtureExpectClean(t, AnalyzerWalltime, "internal/transport", "walltime_allow.go")
}

// Service layer: internal/service sits inside DetRandScope and outside
// WalltimeAllow. The sanctioned scheduler patterns — injected clock,
// per-job seeded jitter — pass both analyzers clean, and the matching
// violations are caught.
func TestServiceCleanUnderWalltime(t *testing.T) {
	runFixtureExpectClean(t, AnalyzerWalltime, "internal/service", "service_clean.go")
}

func TestServiceCleanUnderDetRand(t *testing.T) {
	runFixtureExpectClean(t, AnalyzerDetRand, "internal/service", "service_clean.go")
}

func TestServiceWalltimeViolation(t *testing.T) {
	runFixture(t, AnalyzerWalltime, "internal/service", "service_walltime.go")
}

func TestServiceDetRandViolation(t *testing.T) {
	runFixture(t, AnalyzerDetRand, "internal/service", "service_detrand.go")
}

// Fleet layer: internal/fleet sits inside DetRandScope and outside
// WalltimeAllow. The follower's sanctioned patterns — injected clock
// timers, count-pure posteriors — pass both analyzers clean, and the
// matching violations are caught.
func TestFleetCleanUnderWalltime(t *testing.T) {
	runFixtureExpectClean(t, AnalyzerWalltime, "internal/fleet", "fleet_clean.go")
}

func TestFleetCleanUnderDetRand(t *testing.T) {
	runFixtureExpectClean(t, AnalyzerDetRand, "internal/fleet", "fleet_clean.go")
}

func TestFleetDetRandViolation(t *testing.T) {
	runFixture(t, AnalyzerDetRand, "internal/fleet", "fleet_detrand.go")
}

func TestMapOrderFixture(t *testing.T) {
	runFixture(t, AnalyzerMapOrder, "internal/experiments", "maporder.go")
}

func TestSeedIdentFixture(t *testing.T) {
	runFixture(t, AnalyzerSeedIdent, "internal/experiments", "seedident.go")
}

func TestFloatEqFixture(t *testing.T) {
	runFixture(t, AnalyzerFloatEq, "internal/stats", "floateq.go")
}

func TestIgnoreDirectives(t *testing.T) {
	runFixture(t, AnalyzerFloatEq, "internal/stats", "ignore.go")
}

// runFixtureExpectClean asserts the analyzer reports nothing for the file.
func runFixtureExpectClean(t *testing.T, a *Analyzer, relPath, name string) {
	t.Helper()
	runFixture(t, a, relPath, name)
}

// TestSortDiagnostics pins the driver's ordering contract.
func TestSortDiagnostics(t *testing.T) {
	ds := []Diagnostic{
		{File: "b.go", Line: 1, Col: 1, Analyzer: "walltime", Message: "m"},
		{File: "a.go", Line: 2, Col: 1, Analyzer: "floateq", Message: "m"},
		{File: "a.go", Line: 2, Col: 1, Analyzer: "detrand", Message: "m"},
		{File: "a.go", Line: 1, Col: 9, Analyzer: "detrand", Message: "m"},
		{File: "a.go", Line: 1, Col: 2, Analyzer: "detrand", Message: "m"},
	}
	sortDiagnostics(ds)
	var gotOrder []string
	for _, d := range ds {
		gotOrder = append(gotOrder, fmt.Sprintf("%s:%d:%d:%s", d.File, d.Line, d.Col, d.Analyzer))
	}
	wantOrder := []string{
		"a.go:1:2:detrand",
		"a.go:1:9:detrand",
		"a.go:2:1:detrand",
		"a.go:2:1:floateq",
		"b.go:1:1:walltime",
	}
	for i := range wantOrder {
		if gotOrder[i] != wantOrder[i] {
			t.Fatalf("order mismatch at %d: got %v want %v", i, gotOrder, wantOrder)
		}
	}
}
