package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Module     *struct{ Path string }
}

// Package is one loaded, type-checked, non-test package of the module.
type Package struct {
	ImportPath string
	RelPath    string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// goList enumerates packages matching patterns, rooted at dir.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v: %s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decode go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// moduleImporter resolves module-local imports from the loader's cache
// (populated in dependency order, so every local import is already
// type-checked exactly once) and delegates everything else to a shared
// source-mode importer for the standard library.
type moduleImporter struct {
	cache map[string]*types.Package
	std   types.ImporterFrom
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := m.cache[path]; ok {
		return p, nil
	}
	return m.std.ImportFrom(path, dir, mode)
}

// Load enumerates, parses and type-checks the non-test Go files of every
// package matching patterns under dir. Each package is type-checked once;
// results come back sorted by import path.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*listedPackage, len(listed))
	for _, p := range listed {
		byPath[p.ImportPath] = p
	}

	// Dependency-order the module-local packages so the importer cache is
	// always warm. Imports outside the listed set (stdlib) are ignored;
	// visiting is over the sorted path list, keeping the order stable.
	order := make([]string, 0, len(listed))
	state := make(map[string]int, len(listed)) // 0 unvisited, 1 visiting, 2 done
	var visit func(path string) error
	visit = func(path string) error {
		p, ok := byPath[path]
		if !ok {
			return nil
		}
		switch state[path] {
		case 1:
			return fmt.Errorf("import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		for _, imp := range p.Imports {
			if err := visit(imp); err != nil {
				return err
			}
		}
		state[path] = 2
		order = append(order, path)
		return nil
	}
	paths := make([]string, 0, len(listed))
	for _, p := range listed {
		paths = append(paths, p.ImportPath)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}

	fset := token.NewFileSet()
	imp := &moduleImporter{
		cache: make(map[string]*types.Package, len(order)),
		std:   importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}

	var out []*Package
	for _, path := range order {
		lp := byPath[path]
		if len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", path, err)
		}
		imp.cache[path] = tpkg
		out = append(out, &Package{
			ImportPath: path,
			RelPath:    relPath(lp, path),
			Fset:       fset,
			Files:      files,
			Pkg:        tpkg,
			Info:       info,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// relPath strips the module path prefix from an import path so scope
// matching is module-name independent.
func relPath(lp *listedPackage, path string) string {
	if lp.Module == nil {
		return path
	}
	if path == lp.Module.Path {
		return ""
	}
	return strings.TrimPrefix(path, lp.Module.Path+"/")
}
