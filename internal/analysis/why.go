package analysis

import (
	"fmt"
	"strings"
)

// whyFamily is one fact family the -why mode explains.
type whyFamily struct {
	label string
	facts func(*FuncNode) []SinkFact
}

var whyFamilies = []whyFamily{
	{"wall clock", func(n *FuncNode) []SinkFact { return n.WallSinks }},
	{"global math/rand", func(n *FuncNode) []SinkFact { return n.RandSinks }},
	{"blocking call", func(n *FuncNode) []SinkFact { return n.Blocking }},
}

// Why renders, for every module function matching name (full label or any
// suffix of one), which invariant-relevant operation families it
// transitively reaches and a minimal witness chain for each. An empty slice
// means nothing matched.
func (m *Module) Why(name string) []string {
	var out []string
	for _, n := range m.nodes {
		label := m.FuncLabel(n.Fn)
		if label != name && !strings.HasSuffix(label, name) {
			continue
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%s (%d static callee(s))\n", label, len(n.Calls))
		any := false
		for _, fam := range whyFamilies {
			reach := m.reachability(fam.facts, func(*FuncNode) bool { return true })
			info := reach[n]
			if info == nil {
				continue
			}
			any = true
			fmt.Fprintf(&b, "  reaches %s:\n", fam.label)
			for _, s := range m.witnessPath(n, reach) {
				fmt.Fprintf(&b, "    %s (%s:%d)\n", s.Func, s.File, s.Line)
			}
		}
		if !any {
			b.WriteString("  reaches none of: wall clock, global math/rand, blocking calls\n")
		}
		out = append(out, b.String())
	}
	return out
}
