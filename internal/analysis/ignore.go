package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is one parsed "//lint:ignore <analyzer> <reason>" comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	line     int
}

const ignorePrefix = "lint:ignore"

// parseIgnores extracts every lint:ignore directive from a file. Malformed
// directives (missing analyzer or missing reason) are reported through
// report so they cannot silently suppress nothing.
func parseIgnores(fset *token.FileSet, file *ast.File, report func(Diagnostic)) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, ignorePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
			name, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			if name == "" || reason == "" {
				report(Diagnostic{
					File:     pos.Filename,
					Line:     pos.Line,
					Col:      pos.Column,
					Analyzer: "ignore",
					Message:  "malformed lint:ignore directive: want //lint:ignore <analyzer> <reason>",
				})
				continue
			}
			out = append(out, ignoreDirective{analyzer: name, reason: reason, line: pos.Line})
		}
	}
	return out
}

// suppressed reports whether a diagnostic at line is covered by a directive:
// either trailing on the same line or on its own line directly above.
func suppressed(d Diagnostic, directives []ignoreDirective) bool {
	for _, dir := range directives {
		if dir.analyzer != d.Analyzer {
			continue
		}
		if dir.line == d.Line || dir.line == d.Line-1 {
			return true
		}
	}
	return false
}
