package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is one parsed "//lint:ignore <analyzer> <reason>" comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	file     string
	line     int
	col      int
	// used is set by the driver when the directive suppresses a finding;
	// unused directives are dead and reported by the deadignore audit.
	used bool
}

// Suppression is one live lint:ignore directive, as listed by
// `wehey-lint -ignores`.
type Suppression struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Reason   string `json:"reason"`
}

const ignorePrefix = "lint:ignore"

// parseIgnores extracts every lint:ignore directive from a file. Malformed
// directives (missing analyzer or missing reason) are reported through
// report so they cannot silently suppress nothing.
func parseIgnores(fset *token.FileSet, file *ast.File, report func(Diagnostic)) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, ignorePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
			name, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			if name == "" || reason == "" {
				report(Diagnostic{
					File:     pos.Filename,
					Line:     pos.Line,
					Col:      pos.Column,
					Analyzer: "ignore",
					Message:  "malformed lint:ignore directive: want //lint:ignore <analyzer> <reason>",
				})
				continue
			}
			out = append(out, ignoreDirective{
				analyzer: name,
				reason:   reason,
				file:     pos.Filename,
				line:     pos.Line,
				col:      pos.Column,
			})
		}
	}
	return out
}

// suppresses reports whether the directive covers a diagnostic: same file,
// same analyzer, and either trailing on the same line or on its own line
// directly above.
func (dir *ignoreDirective) suppresses(d *Diagnostic) bool {
	if dir.analyzer != d.Analyzer || dir.file != d.File {
		return false
	}
	return dir.line == d.Line || dir.line == d.Line-1
}
