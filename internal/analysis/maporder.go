package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerMapOrder flags `for range` over a map whose body emits ordered
// output — appending to a slice or writing through fmt — because Go map
// iteration order is randomized per run. Report rows and diagnostic streams
// built that way differ between otherwise identical runs. The sanctioned
// fix is collecting the keys, sorting, and ranging over the sorted slice;
// a collect-then-sort append (the slice is sorted later in the same
// function) is recognized and not flagged.
var AnalyzerMapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "no map iteration feeding ordered output (slice appends, fmt writes) without sorting",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.mapOrderBody(fd.Body)
		}
	}
}

func (p *Pass) mapOrderBody(funcBody *ast.BlockStmt) {
	ast.Inspect(funcBody, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		p.checkMapRange(funcBody, rs)
		return true
	})
}

func (p *Pass) checkMapRange(funcBody *ast.BlockStmt, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
				// Collect-then-sort is fine: the appended slice only
				// needs to be sorted before anything ordered consumes it.
				if target, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
					if obj := p.Info.Uses[target]; obj != nil && p.sortedAfter(funcBody, rs, obj) {
						return true
					}
				}
				p.Reportf(call.Pos(), "append inside map iteration: element order is randomized per run; range over sorted keys")
				return true
			}
		}
		pkgPath, name := p.pkgFuncName(call)
		if pkgPath == "fmt" && (strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Print")) {
			p.Reportf(call.Pos(), "fmt.%s inside map iteration: output order is randomized per run; range over sorted keys", name)
		}
		return true
	})
}

// sortedAfter reports whether obj is passed to a sort/slices call after the
// range statement within the same function body.
func (p *Pass) sortedAfter(funcBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return !found
		}
		pkgPath, _ := p.pkgFuncName(call)
		if pkgPath != "sort" && pkgPath != "slices" {
			return !found
		}
		for _, arg := range call.Args {
			if p.exprUsesObj(arg, obj) {
				found = true
			}
		}
		return !found
	})
	return found
}
