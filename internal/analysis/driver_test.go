package analysis

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// writeTempModule lays out a throwaway module with violations spread over
// two packages whose relative paths fall inside the default scopes.
func writeTempModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module example.com/tmpmod\n\ngo 1.22\n",
		"internal/netsim/clocked.go": `package netsim

import (
	"math/rand"
	"time"
)

func Jitter() float64 {
	_ = time.Now()
	return rand.Float64()
}
`,
		"internal/experiments/seeds.go": `package experiments

import "math/rand"

func Trials(n int) int64 {
	seed := int64(1)
	var total int64
	for i := 0; i < n; i++ {
		total += rand.New(rand.NewSource(seed)).Int63()
		seed++
	}
	return total
}
`,
		// A package outside every scope: its wall-clock read and global
		// rand stay unreported, proving scoping applies in the driver too.
		"internal/transport/wire.go": `package transport

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
	}
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestDriverTempModule(t *testing.T) {
	dir := writeTempModule(t)
	diags, err := Run(dir, []string{"./..."}, All(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		rel, err := filepath.Rel(dir, d.File)
		if err != nil {
			rel = d.File
		}
		got = append(got, rel+": "+d.Analyzer)
	}
	want := []string{
		"internal/experiments/seeds.go: seedident",
		"internal/netsim/clocked.go: walltime",
		"internal/netsim/clocked.go: detrand",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("findings mismatch:\ngot  %v\nwant %v", got, want)
	}
}

// TestDriverDeterministic runs the driver twice and demands identical,
// sorted output — the property the CI gate and golden workflows rely on.
func TestDriverDeterministic(t *testing.T) {
	dir := writeTempModule(t)
	first, err := Run(dir, []string{"./..."}, All(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(dir, []string{"./..."}, All(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("two runs differ:\nfirst  %v\nsecond %v", first, second)
	}
	sorted := append([]Diagnostic(nil), first...)
	sortDiagnostics(sorted)
	if !reflect.DeepEqual(first, sorted) {
		t.Fatalf("driver output not sorted: %v", first)
	}
}

// TestLintCLI builds the wehey-lint binary and runs it over the temp
// module: exit code 1, deterministic byte-identical stdout across runs,
// and exit 0 once every finding is suppressed.
func TestLintCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := filepath.Join(t.TempDir(), "wehey-lint")
	build := exec.Command("go", "build", "-o", bin, "github.com/nal-epfl/wehey/cmd/wehey-lint")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build wehey-lint: %v\n%s", err, out)
	}
	dir := writeTempModule(t)

	runOnce := func() (string, int) {
		cmd := exec.Command(bin, "./...")
		cmd.Dir = dir
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		err := cmd.Run()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("run wehey-lint: %v\n%s", err, stderr.String())
		}
		return stdout.String(), code
	}

	out1, code1 := runOnce()
	out2, code2 := runOnce()
	if code1 != 1 || code2 != 1 {
		t.Fatalf("want exit 1 on findings, got %d then %d", code1, code2)
	}
	if out1 != out2 {
		t.Fatalf("nondeterministic output:\n--- run1\n%s--- run2\n%s", out1, out2)
	}
	if n := strings.Count(out1, "\n"); n != 3 {
		t.Fatalf("want 3 findings, got %d:\n%s", n, out1)
	}

	// Suppress every finding with a justified directive; the gate opens.
	for _, f := range []struct{ path, old, new string }{
		{"internal/netsim/clocked.go", "\t_ = time.Now()",
			"\t//lint:ignore walltime test suppression\n\t_ = time.Now()"},
		{"internal/netsim/clocked.go", "\treturn rand.Float64()",
			"\t//lint:ignore detrand test suppression\n\treturn rand.Float64()"},
		{"internal/experiments/seeds.go", "\t\ttotal += rand.New(rand.NewSource(seed)).Int63()",
			"\t\t//lint:ignore seedident test suppression\n\t\ttotal += rand.New(rand.NewSource(seed)).Int63()"},
	} {
		full := filepath.Join(dir, f.path)
		data, err := os.ReadFile(full)
		if err != nil {
			t.Fatal(err)
		}
		patched := strings.Replace(string(data), f.old, f.new, 1)
		if patched == string(data) {
			t.Fatalf("patch %q not applied in %s", f.old, f.path)
		}
		if err := os.WriteFile(full, []byte(patched), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	out3, code3 := runOnce()
	if code3 != 0 || out3 != "" {
		t.Fatalf("want clean exit after suppression, got code %d output %q", code3, out3)
	}
}
