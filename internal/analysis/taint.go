package analysis

import "sort"

// Taint mode for detrand and walltime.
//
// The syntactic passes flag a sink (a global math/rand draw, a wall-clock
// read) only in the package where it textually occurs. That leaves two
// blind spots the call graph closes:
//
//  1. A scoped package calls a helper in an UNSCOPED package whose body
//     (possibly through further unscoped helpers) reaches the sink. The
//     helper is legal where it lives, but the call site imports
//     nondeterminism into the deterministic layer. Reported at the
//     boundary call site, with the chain to the sink in the diagnostic.
//
//  2. A sink was locally sanctioned with //lint:ignore. The suppression
//     justifies that one line — it says nothing about callers. Direct
//     callers in scoped packages are reported, each needing its own
//     justification (or a fix). Propagation stops at scoped frames: a
//     scoped function either gets its own diagnostic or carries its own
//     suppression, taking responsibility for its callers.
//
// Sanctioned packages (WalltimeAllow for walltime) contribute no sinks and
// never propagate: calling internal/clock is the sanctioned way to touch
// real time, so the injected-clock contract stays expressible.

// taintSpec parameterizes the shared taint computation for one analyzer.
type taintSpec struct {
	analyzer string
	// facts selects the direct sinks of a node.
	facts func(*FuncNode) []SinkFact
	// scope is where tainted call sites are reported, and where
	// propagation stops.
	scope func(*Config) []string
	// sanctioned packages neither sink nor propagate (may be empty).
	sanctioned func(*Config) []string
	// syntacticallyVisible reports whether a sink in pkg rel would be
	// flagged by the per-package pass (before suppression).
	syntacticallyVisible func(cfg *Config, rel string) bool
	what                 string // human phrase: "the global math/rand source"
}

// runTaint reports, for every call site in a scoped package, a callee that
// transitively reaches an invisible sink.
func runTaint(mp *ModulePass, spec taintSpec) {
	m := mp.Module
	cfg := mp.Config
	scope := spec.scope(cfg)
	sanctioned := spec.sanctioned(cfg)

	invisibleFacts := func(n *FuncNode) []SinkFact {
		if inScope(n.relPath(), sanctioned) {
			return nil // sanctioned layer: not a sink at all
		}
		all := spec.facts(n)
		var out []SinkFact
		for _, f := range all {
			pos := m.Fset.Position(f.Pos)
			if spec.syntacticallyVisible(cfg, n.relPath()) && !m.suppressedAt(spec.analyzer, pos.Filename, pos.Line) {
				continue // the syntactic pass reports it there; no taint
			}
			out = append(out, f)
		}
		return out
	}
	canPropagate := func(n *FuncNode) bool {
		return !inScope(n.relPath(), scope) && !inScope(n.relPath(), sanctioned)
	}

	reach := m.reachability(invisibleFacts, canPropagate)
	if len(reach) == 0 {
		return
	}

	for _, node := range m.nodes {
		if !inScope(node.relPath(), scope) {
			continue
		}
		// One diagnostic per call site; edges in source order.
		edges := append([]CallEdge(nil), node.Calls...)
		sort.Slice(edges, func(i, j int) bool { return edges[i].Pos < edges[j].Pos })
		for _, e := range edges {
			callee := m.funcs[e.Callee]
			if callee == nil || reach[callee] == nil {
				continue
			}
			if callee == node {
				continue // self-recursion: the sink diagnostic covers it
			}
			path := append([]PathStep{positionStep(m.Fset, m.FuncLabel(node.Fn), e.Pos)},
				m.witnessPath(callee, reach)...)
			sink := path[len(path)-1]
			mp.ReportPath(e.Pos, path,
				"call to %s transitively reaches %s (%s at %s:%d)",
				m.FuncLabel(e.Callee), spec.what, sink.Func, sink.File, sink.Line)
		}
	}
}

func runDetRandTaint(mp *ModulePass) {
	runTaint(mp, taintSpec{
		analyzer:   "detrand",
		facts:      func(n *FuncNode) []SinkFact { return n.RandSinks },
		scope:      func(c *Config) []string { return c.DetRandScope },
		sanctioned: func(c *Config) []string { return nil },
		syntacticallyVisible: func(c *Config, rel string) bool {
			return pathIn(rel, c.DetRandScope)
		},
		what: "the global math/rand source",
	})
}

func runWalltimeTaint(mp *ModulePass) {
	runTaint(mp, taintSpec{
		analyzer:   "walltime",
		facts:      func(n *FuncNode) []SinkFact { return n.WallSinks },
		scope:      func(c *Config) []string { return c.WalltimeScope },
		sanctioned: func(c *Config) []string { return c.WalltimeAllow },
		syntacticallyVisible: func(c *Config, rel string) bool {
			return !pathIn(rel, c.WalltimeAllow)
		},
		what: "the wall clock",
	})
}
