package netsim

import (
	"testing"
	"time"
)

// collector is a terminal hop that records arrivals.
type collector struct {
	eng  *Engine
	pkts []*Packet
	at   []time.Duration
}

func (c *collector) Send(pkt *Packet) {
	c.pkts = append(c.pkts, pkt)
	c.at = append(c.at, c.eng.Now())
}

func TestLinkSerializationAndDelay(t *testing.T) {
	var eng Engine
	col := &collector{eng: &eng}
	// 8 Mbit/s, 10 ms propagation: a 1000-byte packet serializes in 1 ms.
	link := NewLink(&eng, "l", 8e6, 10*time.Millisecond, col)
	eng.Schedule(0, func() { link.Send(&Packet{Size: 1000}) })
	eng.Run(time.Second)
	if len(col.pkts) != 1 {
		t.Fatalf("delivered %d", len(col.pkts))
	}
	if got, want := col.at[0], 11*time.Millisecond; got != want {
		t.Errorf("arrival at %v, want %v", got, want)
	}
}

func TestLinkBackToBackSerialization(t *testing.T) {
	var eng Engine
	col := &collector{eng: &eng}
	link := NewLink(&eng, "l", 8e6, 0, col)
	eng.Schedule(0, func() {
		link.Send(&Packet{Size: 1000}) // tx 1 ms
		link.Send(&Packet{Size: 1000}) // queued; tx 1 ms after first
	})
	eng.Run(time.Second)
	if len(col.at) != 2 {
		t.Fatalf("delivered %d", len(col.at))
	}
	if col.at[0] != time.Millisecond || col.at[1] != 2*time.Millisecond {
		t.Errorf("arrivals %v, want [1ms 2ms]", col.at)
	}
	// Second packet accrued ~1 ms of queueing delay.
	if q := col.pkts[1].QueuedFor; q != time.Millisecond {
		t.Errorf("QueuedFor = %v, want 1ms", q)
	}
	if col.pkts[0].QueuedFor != 0 {
		t.Errorf("first packet queued for %v", col.pkts[0].QueuedFor)
	}
}

func TestLinkTailDrop(t *testing.T) {
	var eng Engine
	col := &collector{eng: &eng}
	link := NewLink(&eng, "l", 8e6, 0, col)
	link.QueueLimit = 1500 // one packet of queue
	var drops []*Packet
	link.OnDrop = func(pkt *Packet, where string) {
		if where != "l" {
			t.Errorf("drop at %q", where)
		}
		drops = append(drops, pkt)
	}
	eng.Schedule(0, func() {
		link.Send(&Packet{Seq: 0, Size: 1000}) // transmitting
		link.Send(&Packet{Seq: 1, Size: 1000}) // queued
		link.Send(&Packet{Seq: 2, Size: 1000}) // dropped (queue full)
	})
	eng.Run(time.Second)
	if len(col.pkts) != 2 {
		t.Fatalf("delivered %d, want 2", len(col.pkts))
	}
	if len(drops) != 1 || drops[0].Seq != 2 {
		t.Fatalf("drops = %v", drops)
	}
	if link.Dropped != 1 || link.Forwarded != 2 {
		t.Errorf("counters: dropped=%d forwarded=%d", link.Dropped, link.Forwarded)
	}
}

func TestLinkInfiniteRate(t *testing.T) {
	var eng Engine
	col := &collector{eng: &eng}
	link := NewLink(&eng, "l", 0, 7*time.Millisecond, col)
	eng.Schedule(0, func() {
		for i := 0; i < 100; i++ {
			link.Send(&Packet{Seq: int64(i), Size: 1500})
		}
	})
	eng.Run(time.Second)
	if len(col.at) != 100 {
		t.Fatalf("delivered %d", len(col.at))
	}
	for _, at := range col.at {
		if at != 7*time.Millisecond {
			t.Fatalf("infinite link delayed %v, want pure propagation", at)
		}
	}
}

func TestLinkUtilizationUnderLoad(t *testing.T) {
	// Offered 2x the link rate: goodput must saturate at ~link rate.
	var eng Engine
	col := &collector{eng: &eng}
	link := NewLink(&eng, "l", 8e6, 0, col) // 8 Mbit/s = 1000 B/ms
	link.OnDrop = func(*Packet, string) {}
	interval := 500 * time.Microsecond // 1000B per 0.5ms = 16 Mbit/s offered
	for i := 0; i < 2000; i++ {
		i := i
		eng.Schedule(time.Duration(i)*interval, func() {
			link.Send(&Packet{Seq: int64(i), Size: 1000})
		})
	}
	eng.Run(2 * time.Second)
	var bytes int
	for _, at := range col.at {
		if at <= time.Second { // only while load is offered
			bytes += 1000
		}
	}
	rate := float64(bytes) * 8 / 1.0
	if rate < 7.5e6 || rate > 8.5e6 {
		t.Errorf("saturated rate = %.0f, want ≈8e6", rate)
	}
}

// TestLinkStructLiteralQueueLimitDefault: a Link built as a struct literal
// (bypassing NewLink) with a positive Rate and an unset QueueLimit must get
// the 250 ms default lazily on first Send — not silently tail-drop every
// packet that finds the transmitter busy.
func TestLinkStructLiteralQueueLimitDefault(t *testing.T) {
	var eng Engine
	col := &collector{eng: &eng}
	link := &Link{Name: "lit", Rate: 8e6, Next: col, eng: &eng}
	eng.Schedule(0, func() {
		link.Send(&Packet{Seq: 0, Size: 1000}) // transmitting
		link.Send(&Packet{Seq: 1, Size: 1000}) // busy: must queue, not drop
	})
	eng.Run(time.Second)
	if len(col.pkts) != 2 {
		t.Fatalf("delivered %d of 2; zero-QueueLimit literal dropped queued packets", len(col.pkts))
	}
	if link.Dropped != 0 {
		t.Errorf("Dropped = %d, want 0", link.Dropped)
	}
	if want := defaultQueueLimit(8e6); link.QueueLimit != want {
		t.Errorf("QueueLimit = %d, want lazy default %d", link.QueueLimit, want)
	}
	// An explicitly configured limit must survive untouched.
	strict := &Link{Name: "strict", Rate: 8e6, QueueLimit: 1500, Next: col, eng: &eng}
	strict.Send(&Packet{Size: 1000})
	if strict.QueueLimit != 1500 {
		t.Errorf("explicit QueueLimit overwritten: %d", strict.QueueLimit)
	}
}

func TestTapAndDiscard(t *testing.T) {
	var eng Engine
	col := &collector{eng: &eng}
	seen := 0
	tap := &Tap{Next: col, Fn: func(*Packet) { seen++ }}
	tap.Send(&Packet{})
	if seen != 1 || len(col.pkts) != 1 {
		t.Error("tap did not observe/forward")
	}
	Discard.Send(&Packet{}) // must not panic
	nilTap := &Tap{}
	nilTap.Send(&Packet{}) // nil Next and Fn must not panic
}
