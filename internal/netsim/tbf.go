package netsim

import (
	"time"
)

// RateLimiter models the differentiation device of §C.1: a classifier that
// directs differentiated traffic (Class == ClassDifferentiated) through a
// token-bucket filter (TBF) while default traffic bypasses it, and a
// forwarding stage that pushes both onto the next hop.
//
// The TBF is parameterized like tc-tbf / the Juniper guidelines the paper
// follows: Rate is the token replenishment rate; Burst is the bucket size
// in bytes, set to rate×RTT by the paper's experiments; QueueLimit is the
// queue in bytes — small queues make the device a policer (drops), large
// ones a shaper (delay).
type RateLimiter struct {
	// Name labels the limiter in drop reports.
	Name string
	// Rate is the throttling rate in bits/s.
	Rate float64
	// Burst is the token bucket size in bytes.
	Burst int
	// QueueLimit is the TBF queue size in bytes; 0 = pure policer.
	QueueLimit int
	// Next receives forwarded packets.
	Next Hop
	// OnDrop observes policer drops. The packet is recycled when the hook
	// returns; hooks must not retain it.
	OnDrop DropHook
	// Classify overrides the per-packet class decision; nil uses
	// pkt.Class. Real deployments decide by DPI on the SNI — in the
	// simulator the class bit stands for "the DPI matched".
	Classify func(*Packet) Class
	// Active gates the limiter; when false all traffic bypasses the TBF.
	// ISP-profile experiments toggle it (conditional throttling, §5).
	Active bool

	eng *Engine
	fl  *FluidQueue // non-nil once Fluid() engages hybrid mode

	tokens     float64 // bytes
	lastRefill time.Duration
	queued     ring[*Packet]
	queuedSize int
	draining   bool

	// Counters.
	Matched   int64 // packets classified as differentiated
	Bypassed  int64
	Dropped   int64
	Forwarded int64 // differentiated packets forwarded through the TBF
}

// NewRateLimiter creates an active rate limiter attached to eng.
// burst and queueLimit are in bytes.
func NewRateLimiter(eng *Engine, name string, rate float64, burst, queueLimit int, next Hop) *RateLimiter {
	return &RateLimiter{
		Name:       name,
		Rate:       rate,
		Burst:      burst,
		QueueLimit: queueLimit,
		Next:       next,
		eng:        eng,
		tokens:     float64(burst),
		Active:     true,
	}
}

// Send implements Hop.
func (r *RateLimiter) Send(pkt *Packet) {
	class := pkt.Class
	if r.Classify != nil {
		class = r.Classify(pkt)
	}
	if !r.Active || class != ClassDifferentiated {
		r.Bypassed++
		r.forward(pkt)
		return
	}
	r.Matched++
	if pkt.Size > r.Burst {
		// A packet larger than the bucket can never earn enough tokens;
		// it would head-of-line-block the queue forever. tc-tbf requires
		// burst ≥ MTU for the same reason — drop and count it.
		r.drop(pkt)
		return
	}
	if r.fl != nil {
		r.sendFluid(pkt)
		return
	}
	r.refill()
	if r.queued.Len() == 0 && r.tokens >= float64(pkt.Size) {
		r.tokens -= float64(pkt.Size)
		r.Forwarded++
		r.forward(pkt)
		return
	}
	if r.Rate <= 0 {
		// A zero-rate bucket never earns tokens: once the initial burst is
		// spent, a queued packet could never depart and the drain event
		// would respin at the current instant forever. tc-tbf refuses
		// rate 0 outright; we keep the device constructible but make it a
		// blackhole past the burst.
		r.drop(pkt)
		return
	}
	if r.queuedSize+pkt.Size > r.QueueLimit {
		r.drop(pkt)
		return
	}
	pkt.QueuedFor -= r.eng.Now()
	r.queued.Push(pkt)
	r.queuedSize += pkt.Size
	r.scheduleDrain()
}

// Fluid returns the limiter's analytic fluid-integration state, creating
// it on first use and switching differentiated traffic to the hybrid path:
// fluid sources share the bucket analytically, and foreground packets fold
// into the analytic backlog instead of the packet queue. Engage it before
// any packet has queued.
func (r *RateLimiter) Fluid() *FluidQueue {
	if r.fl == nil {
		r.fl = newFluidQueue(r.eng, r.Rate, float64(r.Burst), float64(r.QueueLimit))
	}
	return r.fl
}

// sendFluid admits a differentiated packet against the analytic state.
// While a backlog exists the TBF serves at exactly Rate (tokens are zero
// and stay zero), so the packet's departure offset backlog/rate is exact
// and later arrivals cannot change it — one deliver event per packet,
// no drain events.
func (r *RateLimiter) sendFluid(pkt *Packet) {
	f := r.fl
	f.advance(r.eng.Now())
	size := float64(pkt.Size)
	if f.backlog <= 0 && f.tokens >= size {
		f.tokens -= size
		f.arm()
		r.Forwarded++
		r.forward(pkt)
		return
	}
	if r.Rate <= 0 {
		// Blackhole past the burst, as in the packet path.
		r.drop(pkt)
		return
	}
	if f.backlog+size > f.limit {
		if !f.saturated() || !f.admitShare(size) {
			r.drop(pkt)
			return
		}
		// Admitted under saturation: the packet joins behind the analytic
		// backlog (displacing fluid, so the backlog itself is unchanged).
		// For a pure policer the backlog is zero and the packet forwards
		// with no queueing delay, exactly like a token-winning packet.
		wait := time.Duration(f.backlog / f.rate * float64(time.Second))
		pkt.QueuedFor += wait
		r.Forwarded++
		r.eng.AfterDeliver(wait, pkt, r.Next)
		return
	}
	// Partial token coverage folds in: the uncovered remainder queues.
	f.backlog += size - f.tokens
	f.tokens = 0
	wait := time.Duration(f.backlog / f.rate * float64(time.Second))
	f.arm()
	pkt.QueuedFor += wait
	r.Forwarded++
	r.eng.AfterDeliver(wait, pkt, r.Next)
}

// drop counts, reports, and recycles a dropped packet.
func (r *RateLimiter) drop(pkt *Packet) {
	r.Dropped++
	if r.OnDrop != nil {
		r.OnDrop(pkt, r.Name)
	}
	r.eng.FreePacket(pkt)
}

// refill adds tokens accrued since the last refill, capped at Burst.
func (r *RateLimiter) refill() {
	now := r.eng.Now()
	if now > r.lastRefill {
		r.tokens += r.Rate / 8 * (now - r.lastRefill).Seconds()
		if r.tokens > float64(r.Burst) {
			r.tokens = float64(r.Burst)
		}
		r.lastRefill = now
	}
}

// scheduleDrain arranges for the queue head to depart once enough tokens
// have accumulated.
func (r *RateLimiter) scheduleDrain() {
	if r.draining || r.queued.Len() == 0 {
		return
	}
	if r.Rate <= 0 {
		// Rate was zeroed with packets already queued: they can never earn
		// tokens, so park-and-drop them now instead of respinning the drain
		// event at the current instant forever.
		for r.queued.Len() > 0 {
			pkt := r.queued.Front()
			r.queued.Pop()
			r.queuedSize -= pkt.Size
			pkt.QueuedFor += r.eng.Now() // close the open queue-delay interval
			r.drop(pkt)
		}
		return
	}
	r.draining = true
	head := r.queued.Front()
	need := float64(head.Size) - r.tokens
	var wait time.Duration
	if need > 0 && r.Rate > 0 {
		// Round up: a sub-nanosecond shortfall must still advance the
		// clock, or the drain loop would spin at the current instant.
		wait = time.Duration(need/(r.Rate/8)*float64(time.Second)) + 1
	}
	r.eng.afterCall(wait, r, evTBFDrain, 0)
}

// handle dispatches the limiter's interned engine callbacks.
func (r *RateLimiter) handle(kind eventKind, _ uint64) {
	if kind == evTBFDrain {
		r.drain()
	}
}

func (r *RateLimiter) drain() {
	r.draining = false
	if r.queued.Len() == 0 {
		return
	}
	r.refill()
	head := r.queued.Front()
	if r.tokens < float64(head.Size) {
		// Rounding shortfall: wait for the missing tokens.
		r.scheduleDrain()
		return
	}
	r.tokens -= float64(head.Size)
	r.queued.Pop()
	r.queuedSize -= head.Size
	head.QueuedFor += r.eng.Now()
	r.Forwarded++
	r.forward(head)
	r.scheduleDrain()
}

func (r *RateLimiter) forward(pkt *Packet) {
	if r.Next != nil {
		r.Next.Send(pkt)
		return
	}
	r.eng.FreePacket(pkt) // no next hop: the packet's life ends here
}

// QueueBytes returns the bytes currently waiting in the TBF queue.
func (r *RateLimiter) QueueBytes() int { return r.queuedSize }

// BurstForRTT returns the paper's burst sizing rule: rate×RTT, in bytes.
func BurstForRTT(rate float64, rtt time.Duration) int {
	b := int(rate / 8 * rtt.Seconds())
	if b < MTU {
		b = MTU
	}
	return b
}

// MTU is the largest packet the simulator expects (bytes).
const MTU = 1500
