package netsim

import (
	"fmt"
	"math/rand"
	"time"
)

// LimiterSpec configures a token-bucket rate limiter placed on a link
// sequence, following the paper's parameterization (Table 2, §C.1):
// Rate is the throttling rate, Burst the bucket size (rate×RTT in all the
// paper's experiments), Queue the TBF queue in bytes (0 = pure policer,
// larger values emulate shaping).
type LimiterSpec struct {
	Rate  float64
	Burst int
	Queue int
}

// PathSpec configures one of the non-common link sequences (l_1, l_2, ...)
// and the path that crosses it.
type PathSpec struct {
	// RTT is the path's total base round-trip time.
	RTT time.Duration
	// Rate is the non-common link's bandwidth in bits/s; 0 = unconstrained.
	Rate float64
	// Limiter, when non-nil, installs a rate limiter at the head of the
	// non-common segment (the FP experiments of §6.3).
	Limiter *LimiterSpec
	// PerFlowLimiter, when non-nil, installs a per-flow policer on the
	// non-common segment instead. Mutually exclusive with Limiter.
	PerFlowLimiter *LimiterSpec
	// BgRate is the mean rate of background traffic crossing only this
	// segment (the congestion and FP experiments of §6.3); 0 = none.
	BgRate float64
	// BgDiffFraction is the differentiated-class fraction of this
	// segment's background.
	BgDiffFraction float64
	// BgModPeriod and BgModSpread tune this segment's background
	// modulation (see CommonSpec).
	BgModPeriod time.Duration
	BgModSpread float64
}

// CommonSpec configures the common link sequence l_c.
type CommonSpec struct {
	// Delay is the one-way propagation delay of the common segment
	// (default 5 ms; per-path access delays make up the rest of each RTT).
	Delay time.Duration
	// Rate is the common link's bandwidth in bits/s; 0 = unconstrained.
	Rate float64
	// Limiter, when non-nil, installs the differentiation device at the
	// head of the common segment.
	Limiter *LimiterSpec
	// PerFlowLimiter, when non-nil, installs a per-flow policer instead
	// (the §3.2 limitation / §7 extension scenario). Mutually exclusive
	// with Limiter.
	PerFlowLimiter *LimiterSpec
	// BgRate is the mean rate of background traffic crossing the common
	// segment (and its limiter); 0 = none.
	BgRate float64
	// BgDiffFraction is the differentiated-class fraction of the common
	// background (§6.1: the share of other users' traffic belonging to the
	// throttled service).
	BgDiffFraction float64
	// BgModPeriod and BgModSpread tune the background's rate modulation.
	// The modulation must have power at the timescales Alg. 1 analyzes
	// (10–50 RTTs, i.e. 0.5–5 s) for loss-rate trends to exist at all —
	// CAIDA traffic does; see BackgroundConfig.
	BgModPeriod time.Duration
	BgModSpread float64
}

// BackgroundMode selects how a scenario models its background aggregate.
type BackgroundMode int

const (
	// BGPacket simulates every background packet (the default; exact).
	BGPacket BackgroundMode = iota
	// BGFluid models the background as piecewise-constant fluid inflow at
	// each constrained hop, integrated in closed form (DESIGN.md §14);
	// foreground traffic stays packet-granular.
	BGFluid
)

// Scenario instantiates the topology of the paper's Figure 1: n paths from
// distinct servers that converge at a common link sequence ending at the
// client. Foreground flows are attached per path; background sources are
// attached per segment.
type Scenario struct {
	Eng *Engine

	common CommonSpec
	paths  []PathSpec
	mode   BackgroundMode

	entries     []Hop // per-path entry (head of non-common segment)
	pathLims    []*RateLimiter
	pathLinks   []*Link
	CommonLim   *RateLimiter    // nil unless configured
	CommonPF    *PerFlowLimiter // nil unless configured
	CommonLink  *Link
	backgrounds []*Background
	fluidBGs    []*FluidBackground

	// fluidHops names every fluid queue engaged in this scenario, for
	// FinishFluid's drop-log folding and FluidEvents.
	fluidHops []namedFluid

	receivers map[int]Hop

	// DropLog records ground-truth drops per location name.
	DropLog map[string]int
}

type namedFluid struct {
	name string
	q    *FluidQueue
}

// backgroundFlowID marks background packets injected at the common segment;
// path-local background uses backgroundFlowID-(pathIdx+1).
const backgroundFlowID = -1

// NewScenario builds the topology with packet-granular background. seed
// derives the background traffic RNG streams; identical seeds give
// identical background.
func NewScenario(eng *Engine, seed int64, common CommonSpec, paths ...PathSpec) *Scenario {
	return NewScenarioMode(eng, seed, BGPacket, common, paths...)
}

// NewScenarioMode builds the topology with the chosen background mode. In
// BGFluid each background source feeds its segment's first constrained hop
// (limiter, else finite link) as analytic fluid; segments with no
// constrained hop get nothing, which is behaviorally exact — an infinite
// link neither queues nor drops, and path-local background is discarded at
// the join anyway.
func NewScenarioMode(eng *Engine, seed int64, mode BackgroundMode, common CommonSpec, paths ...PathSpec) *Scenario {
	if common.Delay <= 0 {
		common.Delay = 5 * time.Millisecond
	}
	s := &Scenario{
		Eng:       eng,
		common:    common,
		paths:     paths,
		mode:      mode,
		receivers: make(map[int]Hop),
		DropLog:   make(map[string]int),
	}
	drop := func(pkt *Packet, where string) { s.DropLog[where]++ }

	// Common chain, built back to front: demux ← common link ← limiter.
	// Unregistered flows (the background aggregate) end their packets'
	// lives here; registered receivers recycle their own.
	demux := HopFunc(func(pkt *Packet) {
		if rcv, ok := s.receivers[pkt.Flow]; ok {
			rcv.Send(pkt)
			return
		}
		eng.FreePacket(pkt)
	})
	s.CommonLink = NewLink(eng, "link_c", common.Rate, common.Delay, demux)
	s.CommonLink.OnDrop = drop
	commonHead := Hop(s.CommonLink)
	switch {
	case common.Limiter != nil:
		s.CommonLim = NewRateLimiter(eng, "tbf_c", common.Limiter.Rate,
			common.Limiter.Burst, common.Limiter.Queue, s.CommonLink)
		s.CommonLim.OnDrop = drop
		commonHead = s.CommonLim
	case common.PerFlowLimiter != nil:
		s.CommonPF = NewPerFlowLimiter(eng, "pftbf_c", common.PerFlowLimiter.Rate,
			common.PerFlowLimiter.Burst, common.PerFlowLimiter.Queue, s.CommonLink)
		s.CommonPF.OnDrop = drop
		commonHead = s.CommonPF
	}
	// The join discards (and recycles) path-local background so it never
	// crosses l_c.
	join := HopFunc(func(pkt *Packet) {
		if pkt.Flow < backgroundFlowID {
			eng.FreePacket(pkt)
			return
		}
		commonHead.Send(pkt)
	})
	if common.BgRate > 0 {
		cfg := BackgroundConfig{
			MeanRate:     common.BgRate,
			DiffFraction: common.BgDiffFraction,
			ModPeriod:    common.BgModPeriod,
			ModSpread:    common.BgModSpread,
			Stop:         1 << 62,
		}
		rng := rand.New(rand.NewSource(seed))
		if mode == BGFluid {
			diffQ, defQ := s.commonFluidTargets()
			bg, err := NewFluidBackground(eng, cfg, rng, diffQ, defQ)
			if err != nil {
				panic(err) // specs are scenario-derived; invalid means a wiring bug
			}
			s.fluidBGs = append(s.fluidBGs, bg)
		} else {
			bg, err := NewBackground(eng, cfg, rng, commonHead)
			if err != nil {
				panic(err)
			}
			s.backgrounds = append(s.backgrounds, bg)
		}
	}

	// Per-path non-common segments.
	for i, p := range paths {
		name := pathName("link", i)
		accessDelay := p.RTT/2 - common.Delay
		if accessDelay < 0 {
			accessDelay = 0
		}
		link := NewLink(eng, name, p.Rate, accessDelay, join)
		link.OnDrop = drop
		s.pathLinks = append(s.pathLinks, link)
		entry := Hop(link)
		var lim *RateLimiter
		switch {
		case p.Limiter != nil:
			lim = NewRateLimiter(eng, pathName("tbf", i), p.Limiter.Rate,
				p.Limiter.Burst, p.Limiter.Queue, link)
			lim.OnDrop = drop
			entry = lim
		case p.PerFlowLimiter != nil:
			pf := NewPerFlowLimiter(eng, pathName("pftbf", i), p.PerFlowLimiter.Rate,
				p.PerFlowLimiter.Burst, p.PerFlowLimiter.Queue, link)
			pf.OnDrop = drop
			entry = pf
		}
		s.pathLims = append(s.pathLims, lim)
		s.entries = append(s.entries, entry)
		if p.BgRate > 0 {
			cfg := BackgroundConfig{
				MeanRate:     p.BgRate,
				DiffFraction: p.BgDiffFraction,
				ModPeriod:    p.BgModPeriod,
				ModSpread:    p.BgModSpread,
				Stop:         1 << 62,
			}
			rng := rand.New(rand.NewSource(seed + int64(i) + 1))
			if mode == BGFluid {
				diffQ, defQ := s.pathFluidTargets(i)
				bg, err := NewFluidBackground(eng, cfg, rng, diffQ, defQ)
				if err != nil {
					panic(err)
				}
				s.fluidBGs = append(s.fluidBGs, bg)
			} else {
				bgID := backgroundFlowID - (i + 1)
				src := entry
				bg, err := NewBackground(eng, cfg, rng, HopFunc(func(pkt *Packet) {
					pkt.Flow = bgID
					src.Send(pkt)
				}))
				if err != nil {
					panic(err)
				}
				s.backgrounds = append(s.backgrounds, bg)
			}
		}
	}
	return s
}

func pathName(prefix string, i int) string {
	return fmt.Sprintf("%s_%d", prefix, i+1)
}

// Entry returns the hop where path i's server injects packets.
func (s *Scenario) Entry(i int) Hop { return s.entries[i] }

// BackDelay returns the one-way return delay for path i (half the base RTT;
// the return path is loss-free and uncongested).
func (s *Scenario) BackDelay(i int) time.Duration { return s.paths[i].RTT / 2 }

// RTT returns path i's configured base RTT.
func (s *Scenario) RTT(i int) time.Duration { return s.paths[i].RTT }

// Register installs the receiving hop for a foreground flow ID.
func (s *Scenario) Register(flowID int, rcv Hop) { s.receivers[flowID] = rcv }

// StartBackground begins all background sources, stopping them at stop.
func (s *Scenario) StartBackground(start, stop time.Duration) {
	for _, bg := range s.backgrounds {
		bg.cfg.Stop = stop
		bg.Start(start)
	}
	for _, bg := range s.fluidBGs {
		bg.cfg.Stop = stop
		bg.Start(start)
	}
}

// trackFluid registers a named fluid queue for FinishFluid/FluidEvents,
// deduplicating by pointer.
func (s *Scenario) trackFluid(name string, q *FluidQueue) *FluidQueue {
	for _, nf := range s.fluidHops {
		if nf.q == q {
			return q
		}
	}
	s.fluidHops = append(s.fluidHops, namedFluid{name: name, q: q})
	return q
}

// commonFluidTargets resolves the common segment's fluid queues: the
// differentiated class lands on the limiter (coupled into the finite
// common link, if any); the default class bypasses onto the finite link.
// A per-flow limiter is a packet-granular device with no aggregate-fluid
// analog, so fluid background treats it as transparent.
func (s *Scenario) commonFluidTargets() (diff, def *FluidQueue) {
	var linkQ *FluidQueue
	if s.common.Rate > 0 {
		linkQ = s.trackFluid(s.CommonLink.Name, s.CommonLink.Fluid())
	}
	if s.CommonLim != nil {
		limQ := s.trackFluid(s.CommonLim.Name, s.CommonLim.Fluid())
		if linkQ != nil {
			limQ.FeedsInto(linkQ)
		}
		return limQ, linkQ
	}
	return linkQ, linkQ
}

// pathFluidTargets is commonFluidTargets for path i's non-common segment.
func (s *Scenario) pathFluidTargets(i int) (diff, def *FluidQueue) {
	var linkQ *FluidQueue
	if l := s.pathLinks[i]; l.Rate > 0 {
		linkQ = s.trackFluid(l.Name, l.Fluid())
	}
	if lim := s.pathLims[i]; lim != nil {
		limQ := s.trackFluid(lim.Name, lim.Fluid())
		if linkQ != nil {
			limQ.FeedsInto(linkQ)
		}
		return limQ, linkQ
	}
	return linkQ, linkQ
}

// FluidEntry resolves where fluid demand entering through path i meets its
// first constrained hop: the path's limiter, else its finite link, else
// the common limiter, else the finite common link; nil if the whole route
// is unconstrained (then the demand could never queue or drop anywhere in
// packet mode either).
func (s *Scenario) FluidEntry(i int) *FluidQueue {
	if diffQ, _ := s.pathFluidTargets(i); diffQ != nil {
		return diffQ
	}
	diffQ, _ := s.commonFluidTargets()
	return diffQ
}

// FinishFluid advances every engaged fluid queue to at and folds the
// accumulated fluid loss into DropLog (as mean-size packet equivalents)
// under the same hop names packet mode uses. Call once, after the run.
func (s *Scenario) FinishFluid(at time.Duration) {
	for _, nf := range s.fluidHops {
		st := nf.q.Stats(at)
		if n := int(st.DroppedBytes / meanBgPacketSize()); n > 0 {
			s.DropLog[nf.name] += n
		}
	}
}

// FluidEvents sums the coarse bookkeeping events processed by the
// scenario's fluid queues and background walks (churn events are owned by
// the FluidChurn instance). It measures what replaced per-packet work.
func (s *Scenario) FluidEvents() int64 {
	var n int64
	for _, nf := range s.fluidHops {
		n += nf.q.Events
	}
	for _, bg := range s.fluidBGs {
		n += bg.Events
	}
	return n
}

// PathLimiter returns the limiter on path i's non-common segment (nil if
// none).
func (s *Scenario) PathLimiter(i int) *RateLimiter { return s.pathLims[i] }

// PathLink returns path i's non-common link.
func (s *Scenario) PathLink(i int) *Link { return s.pathLinks[i] }

// TotalDrops sums ground-truth drops at the named location.
func (s *Scenario) TotalDrops(where string) int { return s.DropLog[where] }
