package netsim

import (
	"testing"
	"time"
)

func TestPerFlowLimiterSeparateBuckets(t *testing.T) {
	var eng Engine
	col := &collector{eng: &eng}
	pf := NewPerFlowLimiter(&eng, "pf", 2e6, 2000, 0, col)
	drops := map[int]int{}
	pf.OnDrop = func(pkt *Packet, where string) { drops[pkt.Flow]++ }

	// Two flows each offering 4 Mbit/s: each gets its own 2 Mbit/s bucket,
	// so each loses ~half — unlike a shared bucket where they'd lose ~75%.
	interval := 2 * time.Millisecond
	n := int(4 * time.Second / interval)
	for i := 0; i < n; i++ {
		at := time.Duration(i) * interval
		eng.Schedule(at, func() {
			pf.Send(&Packet{Flow: 1, Size: 1000, Class: ClassDifferentiated})
			pf.Send(&Packet{Flow: 2, Size: 1000, Class: ClassDifferentiated})
		})
	}
	eng.Run(5 * time.Second)
	if pf.Flows != 2 {
		t.Fatalf("buckets = %d, want 2", pf.Flows)
	}
	for _, flow := range []int{1, 2} {
		frac := float64(drops[flow]) / float64(n)
		if frac < 0.4 || frac > 0.6 {
			t.Errorf("flow %d drop fraction %v, want ≈0.5 (own bucket)", flow, frac)
		}
	}
	if pf.Bucket("1") == nil || pf.Bucket("2") == nil || pf.Bucket("3") != nil {
		t.Error("bucket lookup")
	}
}

func TestPerFlowLimiterMergedKeyShares(t *testing.T) {
	var eng Engine
	col := &collector{eng: &eng}
	pf := NewPerFlowLimiter(&eng, "pf", 2e6, 2000, 0, col)
	drops := 0
	pf.OnDrop = func(*Packet, string) { drops++ }

	interval := 2 * time.Millisecond
	n := int(4 * time.Second / interval)
	for i := 0; i < n; i++ {
		at := time.Duration(i) * interval
		eng.Schedule(at, func() {
			pf.Send(&Packet{Flow: 1, Size: 1000, Class: ClassDifferentiated, PolicyKey: "m"})
			pf.Send(&Packet{Flow: 2, Size: 1000, Class: ClassDifferentiated, PolicyKey: "m"})
		})
	}
	eng.Run(5 * time.Second)
	if pf.Flows != 1 {
		t.Fatalf("buckets = %d, want 1 (merged)", pf.Flows)
	}
	// 8 Mbit/s offered into one 2 Mbit/s bucket → ~75% dropped.
	frac := float64(drops) / float64(2*n)
	if frac < 0.65 || frac > 0.85 {
		t.Errorf("merged drop fraction %v, want ≈0.75", frac)
	}
}

func TestPerFlowLimiterBypassesDefaultClass(t *testing.T) {
	var eng Engine
	col := &collector{eng: &eng}
	pf := NewPerFlowLimiter(&eng, "pf", 1e3, 100, 0, col)
	eng.Schedule(0, func() {
		for i := 0; i < 20; i++ {
			pf.Send(&Packet{Flow: 1, Size: 1500, Class: ClassDefault})
		}
	})
	eng.Run(time.Second)
	if len(col.pkts) != 20 {
		t.Errorf("default class interfered with: %d delivered", len(col.pkts))
	}
	if pf.Flows != 0 {
		t.Errorf("default class created %d buckets", pf.Flows)
	}
}

func TestFlowKey(t *testing.T) {
	cases := map[int]string{0: "0", 7: "7", 42: "42", -3: "-3", 1000: "1000"}
	for in, want := range cases {
		if got := flowKey(in); got != want {
			t.Errorf("flowKey(%d) = %q, want %q", in, got, want)
		}
	}
}
