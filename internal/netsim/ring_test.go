package netsim

import "testing"

func TestRingFIFOWraparoundAndGrowth(t *testing.T) {
	var r ring[int]
	next, expect := 0, 0
	push := func(n int) {
		for i := 0; i < n; i++ {
			r.Push(next)
			next++
		}
	}
	pop := func(n int) {
		for i := 0; i < n; i++ {
			if got := r.Front(); got != expect {
				t.Fatalf("Front = %d, want %d", got, expect)
			}
			if got := r.Pop(); got != expect {
				t.Fatalf("Pop = %d, want %d", got, expect)
			}
			expect++
		}
	}
	// Fill the initial power-of-two buffer, then drive head around the
	// ring several times so Push wraps past the buffer end.
	push(8)
	pop(6)
	for i := 0; i < 10; i++ { // 10 laps of push-6/pop-6 on a capacity-8 ring
		push(6)
		if r.Len() != 8 {
			t.Fatalf("Len = %d, want 8", r.Len())
		}
		pop(6)
	}
	// Growth while wrapped: head is mid-buffer; doubling must preserve
	// FIFO order across the wrap point.
	push(40)
	if r.Len() != 42 {
		t.Fatalf("Len after growth = %d, want 42", r.Len())
	}
	for i := 0; i < r.Len(); i++ {
		if got := r.At(i); got != expect+i {
			t.Fatalf("At(%d) = %d, want %d", i, got, expect+i)
		}
	}
	pop(42)
	if r.Len() != 0 {
		t.Fatalf("Len after drain = %d, want 0", r.Len())
	}
	// A drained ring keeps its buffer and keeps working.
	push(3)
	pop(3)
}

func TestRingPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty ring did not panic")
		}
	}()
	var r ring[*Packet]
	r.Pop()
}

func TestRingZeroesVacatedSlots(t *testing.T) {
	var r ring[*Packet]
	r.Push(&Packet{Seq: 1})
	r.Push(&Packet{Seq: 2})
	r.Pop()
	// The popped slot must not pin the pointer.
	if r.buf[0] != nil {
		t.Error("Pop left a live pointer in the vacated slot")
	}
}
