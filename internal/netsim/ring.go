package netsim

// ring is a growable circular FIFO with power-of-two capacity. It replaces
// the copy-shift `queued[0]; copy(queued, queued[1:])` dequeues of the hop
// queues: Push and Pop are O(1), and a drained ring keeps its buffer, so a
// queue that has reached its working size never allocates again.
type ring[T any] struct {
	buf  []T // len(buf) is 0 or a power of two
	head int // index of the front element
	n    int
}

// Len returns the number of queued elements.
func (r *ring[T]) Len() int { return r.n }

// Push appends v at the back, doubling the buffer when full.
func (r *ring[T]) Push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// Pop removes and returns the front element. The vacated slot is zeroed so
// the ring's spare capacity never pins pointers. Popping an empty ring
// panics.
func (r *ring[T]) Pop() T {
	if r.n == 0 {
		panic("netsim: Pop on empty ring")
	}
	v := r.buf[r.head]
	var zero T
	r.buf[r.head] = zero
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// Front returns the front element without removing it.
func (r *ring[T]) Front() T { return r.buf[r.head] }

// At returns the i-th element from the front (0 = front).
func (r *ring[T]) At(i int) T { return r.buf[(r.head+i)&(len(r.buf)-1)] }

func (r *ring[T]) grow() {
	c := len(r.buf) * 2
	if c == 0 {
		c = 8
	}
	buf := make([]T, c)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}

// bitset is a growable bit vector keyed by non-negative sequence numbers —
// a dense replacement for map[int64]bool where keys are compact and start
// at zero (a receiver's seen-sequence set): one bit per sequence instead of
// ~50 bytes of map entry.
type bitset struct{ words []uint64 }

// get reports whether bit i is set.
func (b *bitset) get(i int64) bool {
	w := int(i >> 6)
	return w < len(b.words) && b.words[w]&(1<<uint(i&63)) != 0
}

// set sets bit i, growing the vector as needed.
func (b *bitset) set(i int64) {
	w := int(i >> 6)
	if w >= len(b.words) {
		c := cap(b.words) * 2
		if c < 16 {
			c = 16
		}
		for c <= w {
			c *= 2
		}
		words := make([]uint64, c)
		copy(words, b.words)
		b.words = words
	}
	b.words[w] |= 1 << uint(i&63)
}
