package netsim

import "time"

// Class is the traffic class carried in a packet's DSCP-like field. The
// rate-limiter's classifier directs ClassDifferentiated packets through its
// token-bucket queue and lets ClassDefault packets bypass it (§C.1).
type Class uint8

const (
	// ClassDefault traffic is not subject to differentiation.
	ClassDefault Class = 0
	// ClassDifferentiated traffic matches the differentiation criterion
	// (e.g. an original trace whose SNI a DPI box recognized).
	ClassDifferentiated Class = 1
)

// Packet is a simulated packet in flight.
type Packet struct {
	// Flow identifies the sending flow (for meters and receivers).
	Flow int
	// Seq is the flow-local sequence number.
	Seq int64
	// Size is the packet size in bytes (payload + headers; the simulator
	// does not distinguish).
	Size int
	// Class is the packet's traffic class.
	Class Class
	// SentAt is when the source transmitted the packet.
	SentAt time.Duration
	// Retransmission marks TCP retransmissions (meters exclude or count
	// them separately).
	Retransmission bool
	// PolicyKey overrides the flow identity a per-flow policer sees.
	// The §7 extension sets the same key on both replay paths so they
	// land in one bucket ("appear to belong to the same flow").
	PolicyKey string
	// QueuedFor accumulates time spent waiting in queues along the path
	// (ground-truth queueing delay).
	QueuedFor time.Duration

	// recycled guards the engine freelist against double frees: set by
	// Engine.FreePacket, cleared when AllocPacket hands the packet out
	// again.
	recycled bool
}

// Hop is an element of a path that accepts packets. Hops form a chain:
// links, rate limiters, taps, and finally a receiver.
type Hop interface {
	// Send hands the packet to the hop at the current simulation time.
	Send(pkt *Packet)
}

// HopFunc adapts a function to the Hop interface.
type HopFunc func(pkt *Packet)

// Send implements Hop.
func (f HopFunc) Send(pkt *Packet) { f(pkt) }

// Tap is a pass-through hop that invokes a callback on every packet, used
// to meter traffic at arbitrary points of a path.
type Tap struct {
	Next Hop
	Fn   func(pkt *Packet)
}

// Send implements Hop.
func (t *Tap) Send(pkt *Packet) {
	if t.Fn != nil {
		t.Fn(pkt)
	}
	if t.Next != nil {
		t.Next.Send(pkt)
	}
}

// DropHook observes packet drops; hops that can drop accept one.
type DropHook func(pkt *Packet, where string)

// Discard is a Hop that silently drops everything it receives.
var Discard Hop = HopFunc(func(*Packet) {})
