package netsim

import (
	"math"
	"testing"
	"time"
)

// buildDirectPath wires a single TCP flow over a one-link path and returns
// the flow. rate 0 = unconstrained link.
func buildDirectPath(eng *Engine, rate float64, rtt time.Duration, cfg TCPConfig) *TCPFlow {
	fwdDelay := rtt / 2
	var flow *TCPFlow
	// Receiver installed after flow creation via a forwarding hop.
	end := HopFunc(func(pkt *Packet) { flow.Receiver().Send(pkt) })
	link := NewLink(eng, "l", rate, fwdDelay, end)
	flow = NewTCPFlow(eng, 1, cfg, link, rtt/2)
	return flow
}

func TestTCPBulkSaturatesBottleneck(t *testing.T) {
	var eng Engine
	rtt := 40 * time.Millisecond
	flow := buildDirectPath(&eng, 10e6, rtt, TCPConfig{Pacing: true, Stop: 10 * time.Second})
	flow.Start(0)
	eng.Run(11 * time.Second)

	// Goodput over the steady portion (2s..10s) should approach 10 Mbit/s.
	var bytes int64
	for _, d := range flow.Delivered {
		if d.At >= 2*time.Second && d.At < 10*time.Second {
			bytes += int64(d.Bytes)
		}
	}
	rate := float64(bytes) * 8 / 8.0
	if rate < 8e6 || rate > 10.5e6 {
		t.Errorf("bulk TCP rate = %.2f Mbit/s, want ≈10", rate/1e6)
	}
}

func TestTCPLosslessPathHasNoRetransmissions(t *testing.T) {
	var eng Engine
	flow := buildDirectPath(&eng, 50e6, 20*time.Millisecond, TCPConfig{Pacing: true, Bytes: 2 << 20})
	flow.Start(0)
	eng.Run(30 * time.Second)
	if flow.RtxCount != 0 {
		t.Errorf("retransmissions on lossless path: %d", flow.RtxCount)
	}
	if got := flow.DeliveredBytes(); got != 2<<20 {
		// Bytes bound is rounded to whole MSS segments: allow one segment.
		if got < 2<<20 || got > 2<<20+1400 {
			t.Errorf("delivered %d bytes, want ≈%d", got, 2<<20)
		}
	}
	if len(flow.LossLog) != 0 {
		t.Errorf("loss events on lossless path: %d", len(flow.LossLog))
	}
}

func TestTCPRTTEstimate(t *testing.T) {
	var eng Engine
	rtt := 60 * time.Millisecond
	flow := buildDirectPath(&eng, 0, rtt, TCPConfig{Pacing: true, Bytes: 1 << 20})
	flow.Start(0)
	eng.Run(20 * time.Second)
	if len(flow.RTTSamples) == 0 {
		t.Fatal("no RTT samples")
	}
	minRTT := flow.RTTSamples[0]
	for _, s := range flow.RTTSamples {
		if s < minRTT {
			minRTT = s
		}
	}
	if minRTT != rtt {
		t.Errorf("min RTT = %v, want %v (unconstrained path)", minRTT, rtt)
	}
	if q := flow.AvgQueuingDelay(); q != 0 {
		t.Errorf("queueing delay on unconstrained path = %v", q)
	}
}

func TestTCPThroughPolicerMatchesRateAndRegistersLoss(t *testing.T) {
	var eng Engine
	rtt := 50 * time.Millisecond
	rate := 4e6
	burst := BurstForRTT(rate, rtt)
	var flow *TCPFlow
	end := HopFunc(func(pkt *Packet) { flow.Receiver().Send(pkt) })
	link := NewLink(&eng, "l", 0, rtt/2, end)
	rl := NewRateLimiter(&eng, "tbf", rate, burst, 0, link)
	flow = NewTCPFlow(&eng, 1, TCPConfig{Pacing: true, Class: ClassDifferentiated, Stop: 20 * time.Second}, rl, rtt/2)
	flow.Start(0)
	eng.Run(25 * time.Second)

	var bytes int64
	for _, d := range flow.Delivered {
		if d.At >= 5*time.Second && d.At < 20*time.Second {
			bytes += int64(d.Bytes)
		}
	}
	goodput := float64(bytes) * 8 / 15
	if math.Abs(goodput-rate)/rate > 0.25 {
		t.Errorf("goodput through policer = %.2f Mbit/s, want ≈%.2f", goodput/1e6, rate/1e6)
	}
	if flow.RtxCount == 0 {
		t.Error("no retransmissions despite policing")
	}
	if len(flow.LossLog) == 0 {
		t.Error("no loss events registered")
	}
	// Retransmission-estimated loss should be within 3x of ground truth
	// (overcounting/undercounting is expected, §4.2, but not wild).
	truth := float64(rl.Dropped)
	est := float64(len(flow.LossLog))
	if est < truth*0.4 || est > truth*3 {
		t.Errorf("loss estimate %v vs ground truth %v", est, truth)
	}
}

func TestTCPPacingSmoothsTransmissions(t *testing.T) {
	// With pacing, back-to-back transmissions (gap < 100 µs) should be rare
	// in steady state; without pacing, ACK-clocked bursts produce many.
	burstFrac := func(pacing bool) float64 {
		var eng Engine
		flow := buildDirectPath(&eng, 20e6, 40*time.Millisecond, TCPConfig{Pacing: pacing, Stop: 5 * time.Second})
		flow.Start(0)
		eng.Run(6 * time.Second)
		if len(flow.TxLog) < 100 {
			t.Fatalf("too few transmissions: %d", len(flow.TxLog))
		}
		bursty := 0
		for i := 1; i < len(flow.TxLog); i++ {
			if flow.TxLog[i]-flow.TxLog[i-1] < 100*time.Microsecond {
				bursty++
			}
		}
		return float64(bursty) / float64(len(flow.TxLog)-1)
	}
	paced := burstFrac(true)
	unpaced := burstFrac(false)
	if paced > 0.05 {
		t.Errorf("paced burst fraction = %v, want <0.05", paced)
	}
	if unpaced < paced {
		t.Errorf("unpaced (%v) should be burstier than paced (%v)", unpaced, paced)
	}
}

func TestTCPStopCeasesTransmission(t *testing.T) {
	var eng Engine
	flow := buildDirectPath(&eng, 10e6, 20*time.Millisecond, TCPConfig{Pacing: true, Stop: time.Second})
	flow.Start(0)
	eng.Run(5 * time.Second)
	for _, tx := range flow.TxLog {
		if tx > 2*time.Second { // retransmissions may trail briefly
			t.Errorf("transmission at %v long after stop", tx)
			break
		}
	}
	// New data must cease exactly at stop: everything after it is a
	// retransmission of earlier sequence numbers.
	if int64(len(flow.TxLog)) != flow.TxCount {
		t.Errorf("TxLog/TxCount mismatch")
	}
}

func TestTCPDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		var eng Engine
		var flow *TCPFlow
		end := HopFunc(func(pkt *Packet) { flow.Receiver().Send(pkt) })
		link := NewLink(&eng, "l", 5e6, 10*time.Millisecond, end)
		rl := NewRateLimiter(&eng, "tbf", 2e6, 12500, 0, link)
		flow = NewTCPFlow(&eng, 1, TCPConfig{Pacing: true, Class: ClassDifferentiated, Stop: 5 * time.Second}, rl, 10*time.Millisecond)
		flow.Start(0)
		eng.Run(6 * time.Second)
		return flow.TxCount, flow.RtxCount
	}
	tx1, rtx1 := run()
	tx2, rtx2 := run()
	if tx1 != tx2 || rtx1 != rtx2 {
		t.Errorf("nondeterministic: (%d,%d) vs (%d,%d)", tx1, rtx1, tx2, rtx2)
	}
}

func TestTCPAppLimitedRate(t *testing.T) {
	var eng Engine
	appRate := 5e6
	flow := buildDirectPath(&eng, 0, 40*time.Millisecond, TCPConfig{
		Pacing: true, AppRate: appRate, Stop: 10 * time.Second,
	})
	flow.Start(0)
	eng.Run(11 * time.Second)
	var bytes int64
	for _, d := range flow.Delivered {
		if d.At >= 2*time.Second && d.At < 10*time.Second {
			bytes += int64(d.Bytes)
		}
	}
	rate := float64(bytes) * 8 / 8.0
	if rate < appRate*0.85 || rate > appRate*1.15 {
		t.Errorf("app-limited rate = %.2f Mbit/s, want ≈%.2f", rate/1e6, appRate/1e6)
	}
	if flow.RtxCount != 0 {
		t.Errorf("retransmissions on an unconstrained path: %d", flow.RtxCount)
	}
}

func TestBBRApproachesBottleneckWithoutBackoff(t *testing.T) {
	var eng Engine
	rtt := 40 * time.Millisecond
	flow := buildDirectPath(&eng, 10e6, rtt, TCPConfig{CC: BBR, Stop: 12 * time.Second})
	flow.Start(0)
	eng.Run(13 * time.Second)

	var bytes int64
	for _, d := range flow.Delivered {
		if d.At >= 4*time.Second && d.At < 12*time.Second {
			bytes += int64(d.Bytes)
		}
	}
	rate := float64(bytes) * 8 / 8.0
	if rate < 8.5e6 || rate > 10.5e6 {
		t.Errorf("BBR rate = %.2f Mbit/s, want ≈10", rate/1e6)
	}
}

func TestBBRSustainsRateThroughPolicer(t *testing.T) {
	// The §7 open question's crux: a policer drops packets but BBR does
	// not interpret loss as congestion, so it keeps pacing near its
	// bandwidth estimate and sustains a high loss rate.
	run := func(cc CCAlgo) (goodput float64, lossRate float64) {
		var eng Engine
		rtt := 40 * time.Millisecond
		rate := 3e6
		var flow *TCPFlow
		end := HopFunc(func(pkt *Packet) { flow.Receiver().Send(pkt) })
		link := NewLink(&eng, "l", 0, rtt/2, end)
		rl := NewRateLimiter(&eng, "tbf", rate, BurstForRTT(rate, rtt), 0, link)
		flow = NewTCPFlow(&eng, 1, TCPConfig{CC: cc, Pacing: true, Class: ClassDifferentiated,
			AppRate: 8e6, Stop: 15 * time.Second}, rl, rtt/2)
		flow.Start(0)
		eng.Run(17 * time.Second)
		var bytes int64
		for _, d := range flow.Delivered {
			if d.At >= 5*time.Second && d.At < 15*time.Second {
				bytes += int64(d.Bytes)
			}
		}
		return float64(bytes) * 8 / 10, float64(len(flow.LossLog)) / float64(len(flow.TxLog))
	}
	bbrGoodput, bbrLoss := run(BBR)
	renoGoodput, renoLoss := run(Reno)
	// Both should roughly achieve the policer rate...
	if bbrGoodput < 2e6 {
		t.Errorf("BBR goodput %.2f Mbit/s, want near the 3 Mbit/s policer", bbrGoodput/1e6)
	}
	if renoGoodput < 1.5e6 {
		t.Errorf("Reno goodput %.2f Mbit/s", renoGoodput/1e6)
	}
	// ...but BBR keeps offering above it, sustaining a higher loss rate.
	if bbrLoss <= renoLoss {
		t.Errorf("BBR loss %.3f should exceed Reno's %.3f (no loss backoff)", bbrLoss, renoLoss)
	}
}
