package netsim

import (
	"math"
	"testing"
	"time"
)

func TestRateLimiterBypassesDefaultClass(t *testing.T) {
	var eng Engine
	col := &collector{eng: &eng}
	rl := NewRateLimiter(&eng, "tbf", 1e6, 1500, 0, col)
	eng.Schedule(0, func() {
		for i := 0; i < 50; i++ {
			rl.Send(&Packet{Seq: int64(i), Size: 1500, Class: ClassDefault})
		}
	})
	eng.Run(time.Second)
	if len(col.pkts) != 50 {
		t.Fatalf("delivered %d, want all 50 (bypass)", len(col.pkts))
	}
	if rl.Bypassed != 50 || rl.Matched != 0 {
		t.Errorf("counters: bypassed=%d matched=%d", rl.Bypassed, rl.Matched)
	}
}

func TestRateLimiterPolicesAtConfiguredRate(t *testing.T) {
	var eng Engine
	col := &collector{eng: &eng}
	// 2 Mbit/s policer (queue 0 → pure policer), burst of one packet.
	rl := NewRateLimiter(&eng, "tbf", 2e6, 1500, 0, col)
	drops := 0
	rl.OnDrop = func(*Packet, string) { drops++ }
	// Offer 4 Mbit/s of 1000-byte class-1 packets for 10 s.
	interval := 2 * time.Millisecond
	n := int(10 * time.Second / interval)
	for i := 0; i < n; i++ {
		eng.Schedule(time.Duration(i)*interval, func() {
			rl.Send(&Packet{Size: 1000, Class: ClassDifferentiated})
		})
	}
	eng.Run(11 * time.Second)
	gotRate := float64(len(col.pkts)) * 1000 * 8 / 10
	if math.Abs(gotRate-2e6)/2e6 > 0.05 {
		t.Errorf("forwarded rate = %.0f, want ≈2e6", gotRate)
	}
	// Offered 2x rate → ~half dropped.
	frac := float64(drops) / float64(n)
	if math.Abs(frac-0.5) > 0.05 {
		t.Errorf("drop fraction = %v, want ≈0.5", frac)
	}
	if rl.Dropped != int64(drops) {
		t.Errorf("counter mismatch: %d vs %d", rl.Dropped, drops)
	}
}

func TestRateLimiterShaperDelaysInsteadOfDropping(t *testing.T) {
	var eng Engine
	polCol := &collector{eng: &eng}
	shpCol := &collector{eng: &eng}
	burst := 1500
	policer := NewRateLimiter(&eng, "pol", 2e6, burst, 0, polCol)
	shaper := NewRateLimiter(&eng, "shp", 2e6, burst, 60000, shpCol)
	polDrops, shpDrops := 0, 0
	policer.OnDrop = func(*Packet, string) { polDrops++ }
	shaper.OnDrop = func(*Packet, string) { shpDrops++ }
	interval := 3 * time.Millisecond // 1000B/3ms ≈ 2.67 Mbit/s, 1.33x rate
	n := int(6 * time.Second / interval)
	for i := 0; i < n; i++ {
		at := time.Duration(i) * interval
		eng.Schedule(at, func() {
			policer.Send(&Packet{Size: 1000, Class: ClassDifferentiated})
			shaper.Send(&Packet{Size: 1000, Class: ClassDifferentiated})
		})
	}
	eng.Run(8 * time.Second)
	if shpDrops >= polDrops {
		t.Errorf("shaper drops %d should be below policer drops %d", shpDrops, polDrops)
	}
	// The shaper must have introduced queueing delay on some packets.
	var maxQ time.Duration
	for _, p := range shpCol.pkts {
		if p.QueuedFor > maxQ {
			maxQ = p.QueuedFor
		}
	}
	if maxQ < 10*time.Millisecond {
		t.Errorf("shaper max queueing delay = %v, want substantial", maxQ)
	}
	// Shaper output still respects the token rate overall.
	gotRate := float64(len(shpCol.pkts)) * 1000 * 8 / 6
	if gotRate > 2e6*1.1 {
		t.Errorf("shaper output rate %.0f exceeds configured 2e6", gotRate)
	}
}

func TestRateLimiterBurstAllowsInitialBurst(t *testing.T) {
	var eng Engine
	col := &collector{eng: &eng}
	// Big bucket: 10 packets of burst available immediately.
	rl := NewRateLimiter(&eng, "tbf", 1e6, 10*1000, 0, col)
	eng.Schedule(0, func() {
		for i := 0; i < 12; i++ {
			rl.Send(&Packet{Seq: int64(i), Size: 1000, Class: ClassDifferentiated})
		}
	})
	eng.Run(time.Millisecond)
	if len(col.pkts) != 10 {
		t.Errorf("burst passed %d packets, want exactly 10", len(col.pkts))
	}
}

func TestRateLimiterInactivePassesEverything(t *testing.T) {
	var eng Engine
	col := &collector{eng: &eng}
	rl := NewRateLimiter(&eng, "tbf", 1e3, 100, 0, col)
	rl.Active = false
	eng.Schedule(0, func() {
		for i := 0; i < 30; i++ {
			rl.Send(&Packet{Size: 1500, Class: ClassDifferentiated})
		}
	})
	eng.Run(time.Second)
	if len(col.pkts) != 30 {
		t.Errorf("inactive limiter interfered: delivered %d", len(col.pkts))
	}
}

func TestRateLimiterCustomClassifier(t *testing.T) {
	var eng Engine
	col := &collector{eng: &eng}
	rl := NewRateLimiter(&eng, "tbf", 1e6, 1000, 0, col)
	rl.Classify = func(pkt *Packet) Class {
		if pkt.Flow == 7 {
			return ClassDifferentiated
		}
		return ClassDefault
	}
	eng.Schedule(0, func() {
		for i := 0; i < 10; i++ {
			rl.Send(&Packet{Flow: 7, Size: 1000})
			rl.Send(&Packet{Flow: 8, Size: 1000})
		}
	})
	eng.Run(time.Second)
	if rl.Matched != 10 || rl.Bypassed != 10 {
		t.Errorf("classifier: matched=%d bypassed=%d", rl.Matched, rl.Bypassed)
	}
}

func TestBurstForRTT(t *testing.T) {
	// 8 Mbit/s × 50 ms = 50 KB.
	if got := BurstForRTT(8e6, 50*time.Millisecond); got != 50000 {
		t.Errorf("BurstForRTT = %d, want 50000", got)
	}
	if got := BurstForRTT(1, time.Millisecond); got != MTU {
		t.Errorf("tiny burst should clamp to MTU, got %d", got)
	}
}
