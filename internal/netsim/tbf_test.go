package netsim

import (
	"math"
	"testing"
	"time"
)

func TestRateLimiterBypassesDefaultClass(t *testing.T) {
	var eng Engine
	col := &collector{eng: &eng}
	rl := NewRateLimiter(&eng, "tbf", 1e6, 1500, 0, col)
	eng.Schedule(0, func() {
		for i := 0; i < 50; i++ {
			rl.Send(&Packet{Seq: int64(i), Size: 1500, Class: ClassDefault})
		}
	})
	eng.Run(time.Second)
	if len(col.pkts) != 50 {
		t.Fatalf("delivered %d, want all 50 (bypass)", len(col.pkts))
	}
	if rl.Bypassed != 50 || rl.Matched != 0 {
		t.Errorf("counters: bypassed=%d matched=%d", rl.Bypassed, rl.Matched)
	}
}

func TestRateLimiterPolicesAtConfiguredRate(t *testing.T) {
	var eng Engine
	col := &collector{eng: &eng}
	// 2 Mbit/s policer (queue 0 → pure policer), burst of one packet.
	rl := NewRateLimiter(&eng, "tbf", 2e6, 1500, 0, col)
	drops := 0
	rl.OnDrop = func(*Packet, string) { drops++ }
	// Offer 4 Mbit/s of 1000-byte class-1 packets for 10 s.
	interval := 2 * time.Millisecond
	n := int(10 * time.Second / interval)
	for i := 0; i < n; i++ {
		eng.Schedule(time.Duration(i)*interval, func() {
			rl.Send(&Packet{Size: 1000, Class: ClassDifferentiated})
		})
	}
	eng.Run(11 * time.Second)
	gotRate := float64(len(col.pkts)) * 1000 * 8 / 10
	if math.Abs(gotRate-2e6)/2e6 > 0.05 {
		t.Errorf("forwarded rate = %.0f, want ≈2e6", gotRate)
	}
	// Offered 2x rate → ~half dropped.
	frac := float64(drops) / float64(n)
	if math.Abs(frac-0.5) > 0.05 {
		t.Errorf("drop fraction = %v, want ≈0.5", frac)
	}
	if rl.Dropped != int64(drops) {
		t.Errorf("counter mismatch: %d vs %d", rl.Dropped, drops)
	}
}

func TestRateLimiterShaperDelaysInsteadOfDropping(t *testing.T) {
	var eng Engine
	polCol := &collector{eng: &eng}
	shpCol := &collector{eng: &eng}
	burst := 1500
	policer := NewRateLimiter(&eng, "pol", 2e6, burst, 0, polCol)
	shaper := NewRateLimiter(&eng, "shp", 2e6, burst, 60000, shpCol)
	polDrops, shpDrops := 0, 0
	policer.OnDrop = func(*Packet, string) { polDrops++ }
	shaper.OnDrop = func(*Packet, string) { shpDrops++ }
	interval := 3 * time.Millisecond // 1000B/3ms ≈ 2.67 Mbit/s, 1.33x rate
	n := int(6 * time.Second / interval)
	for i := 0; i < n; i++ {
		at := time.Duration(i) * interval
		eng.Schedule(at, func() {
			policer.Send(&Packet{Size: 1000, Class: ClassDifferentiated})
			shaper.Send(&Packet{Size: 1000, Class: ClassDifferentiated})
		})
	}
	eng.Run(8 * time.Second)
	if shpDrops >= polDrops {
		t.Errorf("shaper drops %d should be below policer drops %d", shpDrops, polDrops)
	}
	// The shaper must have introduced queueing delay on some packets.
	var maxQ time.Duration
	for _, p := range shpCol.pkts {
		if p.QueuedFor > maxQ {
			maxQ = p.QueuedFor
		}
	}
	if maxQ < 10*time.Millisecond {
		t.Errorf("shaper max queueing delay = %v, want substantial", maxQ)
	}
	// Shaper output still respects the token rate overall.
	gotRate := float64(len(shpCol.pkts)) * 1000 * 8 / 6
	if gotRate > 2e6*1.1 {
		t.Errorf("shaper output rate %.0f exceeds configured 2e6", gotRate)
	}
}

func TestRateLimiterBurstAllowsInitialBurst(t *testing.T) {
	var eng Engine
	col := &collector{eng: &eng}
	// Big bucket: 10 packets of burst available immediately.
	rl := NewRateLimiter(&eng, "tbf", 1e6, 10*1000, 0, col)
	eng.Schedule(0, func() {
		for i := 0; i < 12; i++ {
			rl.Send(&Packet{Seq: int64(i), Size: 1000, Class: ClassDifferentiated})
		}
	})
	eng.Run(time.Millisecond)
	if len(col.pkts) != 10 {
		t.Errorf("burst passed %d packets, want exactly 10", len(col.pkts))
	}
}

func TestRateLimiterInactivePassesEverything(t *testing.T) {
	var eng Engine
	col := &collector{eng: &eng}
	rl := NewRateLimiter(&eng, "tbf", 1e3, 100, 0, col)
	rl.Active = false
	eng.Schedule(0, func() {
		for i := 0; i < 30; i++ {
			rl.Send(&Packet{Size: 1500, Class: ClassDifferentiated})
		}
	})
	eng.Run(time.Second)
	if len(col.pkts) != 30 {
		t.Errorf("inactive limiter interfered: delivered %d", len(col.pkts))
	}
}

func TestRateLimiterCustomClassifier(t *testing.T) {
	var eng Engine
	col := &collector{eng: &eng}
	rl := NewRateLimiter(&eng, "tbf", 1e6, 1000, 0, col)
	rl.Classify = func(pkt *Packet) Class {
		if pkt.Flow == 7 {
			return ClassDifferentiated
		}
		return ClassDefault
	}
	eng.Schedule(0, func() {
		for i := 0; i < 10; i++ {
			rl.Send(&Packet{Flow: 7, Size: 1000})
			rl.Send(&Packet{Flow: 8, Size: 1000})
		}
	})
	eng.Run(time.Second)
	if rl.Matched != 10 || rl.Bypassed != 10 {
		t.Errorf("classifier: matched=%d bypassed=%d", rl.Matched, rl.Bypassed)
	}
}

func TestRateLimiterZeroRateTerminates(t *testing.T) {
	// A zero-rate TBF never earns tokens. Pre-fix, the first packet that
	// outlived the burst was queued and scheduleDrain computed wait = 0,
	// respinning evTBFDrain at the same instant forever — this test hung.
	var eng Engine
	col := &collector{eng: &eng}
	rl := NewRateLimiter(&eng, "tbf", 0, 3000, 60000, col)
	for i := 0; i < 20; i++ {
		eng.Schedule(time.Duration(i)*time.Millisecond, func() {
			rl.Send(&Packet{Size: 1000, Class: ClassDifferentiated})
		})
	}
	eng.Run(time.Second)
	if eng.Pending() != 0 {
		t.Errorf("engine left %d events pending", eng.Pending())
	}
	// The initial burst (3 packets) forwards; everything after is dropped.
	if len(col.pkts) != 3 {
		t.Errorf("forwarded %d packets, want the 3-packet burst", len(col.pkts))
	}
	if rl.Dropped != 17 {
		t.Errorf("dropped %d, want 17", rl.Dropped)
	}
	if rl.QueueBytes() != 0 {
		t.Errorf("queue holds %d bytes, want 0 (zero-rate TBF must not park packets)", rl.QueueBytes())
	}
}

func TestRateLimiterRateZeroedMidRunDropsQueue(t *testing.T) {
	// Rate zeroed while packets sit in the queue: the drain path must drop
	// them instead of spinning.
	var eng Engine
	col := &collector{eng: &eng}
	rl := NewRateLimiter(&eng, "tbf", 1e6, 1500, 60000, col)
	drops := 0
	rl.OnDrop = func(pkt *Packet, _ string) {
		drops++
		if pkt.QueuedFor < 0 {
			t.Errorf("dropped packet has open queue-delay interval: %v", pkt.QueuedFor)
		}
	}
	eng.Schedule(0, func() {
		for i := 0; i < 10; i++ {
			rl.Send(&Packet{Size: 1500, Class: ClassDifferentiated})
		}
	})
	eng.Schedule(time.Millisecond, func() { rl.Rate = 0 })
	eng.Run(time.Second)
	if eng.Pending() != 0 {
		t.Errorf("engine left %d events pending", eng.Pending())
	}
	if rl.QueueBytes() != 0 {
		t.Errorf("queue holds %d bytes after rate was zeroed", rl.QueueBytes())
	}
	if drops == 0 {
		t.Error("no drops observed for the parked queue")
	}
	if got := int64(len(col.pkts)) + rl.Dropped; got != 10 {
		t.Errorf("forwarded+dropped = %d, want 10 (conservation)", got)
	}
}

func TestBurstForRTT(t *testing.T) {
	// 8 Mbit/s × 50 ms = 50 KB.
	if got := BurstForRTT(8e6, 50*time.Millisecond); got != 50000 {
		t.Errorf("BurstForRTT = %d, want 50000", got)
	}
	if got := BurstForRTT(1, time.Millisecond); got != MTU {
		t.Errorf("tiny burst should clamp to MTU, got %d", got)
	}
}
