// Package netsim is a discrete-event, packet-level network simulator — the
// stand-in for the ns-3 setup of the paper's §6. It models links with
// finite bandwidth and FIFO tail-drop queues, token-bucket rate limiters
// with DSCP-style classification (§C.1), TCP senders with pacing and
// retransmission-based loss accounting (§3.4), trace-driven and Poisson UDP
// sources, and modulated background traffic standing in for CAIDA replay.
//
// Everything is deterministic: the engine is single-threaded, event order
// is total (time, then insertion sequence), and all stochastic components
// draw from explicitly seeded *rand.Rand streams.
package netsim

import (
	"container/heap"
	"time"
)

// Engine is the discrete-event scheduler. The zero value is ready to use.
type Engine struct {
	now time.Duration
	pq  eventQueue
	seq uint64
}

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Now returns the current simulation time.
func (e *Engine) Now() time.Duration { return e.now }

// Schedule runs fn at simulation time at. Events scheduled in the past run
// at the current time, after already-pending events for that time.
func (e *Engine) Schedule(at time.Duration, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.pq, event{at: at, seq: e.seq, fn: fn})
}

// After schedules fn to run d from now.
func (e *Engine) After(d time.Duration, fn func()) {
	e.Schedule(e.now+d, fn)
}

// Run processes events until the queue drains or simulation time exceeds
// until. It returns the number of events processed.
func (e *Engine) Run(until time.Duration) int {
	processed := 0
	for e.pq.Len() > 0 {
		ev := heap.Pop(&e.pq).(event)
		if ev.at > until {
			// Put it back for a later Run and stop.
			heap.Push(&e.pq, ev)
			e.now = until
			return processed
		}
		e.now = ev.at
		ev.fn()
		processed++
	}
	if e.now < until {
		e.now = until
	}
	return processed
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.pq.Len() }
