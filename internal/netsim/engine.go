// Package netsim is a discrete-event, packet-level network simulator — the
// stand-in for the ns-3 setup of the paper's §6. It models links with
// finite bandwidth and FIFO tail-drop queues, token-bucket rate limiters
// with DSCP-style classification (§C.1), TCP senders with pacing and
// retransmission-based loss accounting (§3.4), trace-driven and Poisson UDP
// sources, and modulated background traffic standing in for CAIDA replay.
//
// Everything is deterministic: the engine is single-threaded, event order
// is total (time, then insertion sequence), and all stochastic components
// draw from explicitly seeded *rand.Rand streams.
//
// The scheduling hot path is allocation-free in steady state: events are
// typed records in a non-boxing 4-ary min-heap (no container/heap
// interface{} boxing, no per-delivery closures), hop queues are growable
// ring buffers, and packets recycle through an engine-owned freelist. See
// DESIGN.md §8 for the event model and the packet-ownership rules.
package netsim

import (
	"sync"
	"time"
)

// Experiments build one short-lived Engine per trial, so the expensive
// backing arrays — the event queue and the packet freelist — are recycled
// across engines through sync.Pools. This is pure storage reuse: buffers
// come back empty (the queue) or fully reset on AllocPacket (packets), so
// event order and packet contents are unaffected. Both pools are
// goroutine-safe; the parallel experiment runner shares them across
// workers.
var (
	pqPool       sync.Pool // *[]event, len 0, contents zeroed
	freelistPool sync.Pool // *[]*Packet, every element recycled (dead)
)

// Engine is the discrete-event scheduler. The zero value is ready to use.
type Engine struct {
	now time.Duration
	pq  []event
	seq uint64

	// Packet freelist (see AllocPacket/FreePacket). Single-threaded like
	// the rest of the engine: each Engine owns its packets exclusively.
	free       []*Packet
	allocCount int64 // packets handed out (fresh + recycled)
	reuseCount int64 // packets recycled from the freelist
}

// eventKind discriminates the typed event records. Hot-path events carry
// their target and a packed argument instead of a closure, so scheduling
// them allocates nothing.
type eventKind uint8

const (
	// evFunc runs a closure — the compatibility shim for cold paths and
	// tests (Engine.Schedule / Engine.After).
	evFunc eventKind = iota
	// evDeliver hands a packet to a hop (link/limiter egress).
	evDeliver
	// The remaining kinds are interned method callbacks, dispatched to the
	// event's handler with the packed arg.
	evLinkTransmitNext
	evTBFDrain
	evTCPTrySend
	evTCPPace
	evTCPRTO // arg: timer generation
	evTCPAck // arg: seq<<1 | echoRtx
	evUDPSend
	evBGModulate
	evBGEmit
	evChurnArrive
	// Fluid-mode bookkeeping events (DESIGN.md §14): coarse rate updates
	// and analytic phase crossings instead of per-packet events.
	evFluidPhase    // arg: phaseSeq (stale-crossing guard)
	evFluidModulate // arg: fluidStopArg on the scheduled stop
	evFluidArrive   // arg: fluidStopArg on the scheduled stop
	evFluidDepart   // arg: round-robin target slot
)

// handler dispatches an interned callback event to its owner. Converting a
// concrete pointer (e.g. *Link) to this interface does not allocate.
type handler interface {
	handle(kind eventKind, arg uint64)
}

// event is a typed scheduler record. Exactly one of the payload groups is
// used, selected by kind: fn (evFunc), pkt+hop (evDeliver), or h+arg
// (interned callbacks).
type event struct {
	at   time.Duration
	seq  uint64
	arg  uint64
	pkt  *Packet
	hop  Hop
	h    handler
	fn   func()
	kind eventKind
}

// eventLess is the total event order: time, then insertion sequence. Every
// (at, seq) pair is unique, so any correct heap yields the same pop order —
// the determinism contract does not depend on heap arity or layout.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Now returns the current simulation time.
func (e *Engine) Now() time.Duration { return e.now }

// Schedule runs fn at simulation time at. Events scheduled in the past run
// at the current time, after already-pending events for that time.
//
// This is the closure compatibility shim: it allocates the closure like any
// Go function value. Hot paths inside the package use the typed record
// schedulers below instead.
func (e *Engine) Schedule(at time.Duration, fn func()) {
	e.push(at, event{kind: evFunc, fn: fn})
}

// After schedules fn to run d from now.
func (e *Engine) After(d time.Duration, fn func()) {
	e.Schedule(e.now+d, fn)
}

// ScheduleDeliver hands pkt to hop at simulation time at without
// allocating. A nil hop is a terminal delivery: the packet is recycled.
func (e *Engine) ScheduleDeliver(at time.Duration, pkt *Packet, hop Hop) {
	e.push(at, event{kind: evDeliver, pkt: pkt, hop: hop})
}

// AfterDeliver hands pkt to hop d from now without allocating.
func (e *Engine) AfterDeliver(d time.Duration, pkt *Packet, hop Hop) {
	e.ScheduleDeliver(e.now+d, pkt, hop)
}

// scheduleCall schedules an interned callback event.
func (e *Engine) scheduleCall(at time.Duration, h handler, kind eventKind, arg uint64) {
	e.push(at, event{kind: kind, h: h, arg: arg})
}

// afterCall schedules an interned callback event d from now.
func (e *Engine) afterCall(d time.Duration, h handler, kind eventKind, arg uint64) {
	e.scheduleCall(e.now+d, h, kind, arg)
}

// push clamps at to the present, assigns the insertion sequence, and sifts
// the record into the 4-ary heap.
func (e *Engine) push(at time.Duration, ev event) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	ev.at, ev.seq = at, e.seq
	if e.pq == nil {
		if b, _ := pqPool.Get().(*[]event); b != nil {
			e.pq = (*b)[:0]
		}
	}
	e.pq = append(e.pq, ev)
	e.siftUp(len(e.pq) - 1)
}

// The heap is 4-ary: children of i are 4i+1..4i+4, parent is (i-1)/4.
// Shallower than a binary heap (fewer swap levels per op on the large
// queues paper-scale runs build up), with the 4-way child minimum staying
// in one cache line of events.

func (e *Engine) siftUp(i int) {
	for i > 0 {
		p := (i - 1) >> 2
		if !eventLess(&e.pq[i], &e.pq[p]) {
			break
		}
		e.pq[i], e.pq[p] = e.pq[p], e.pq[i]
		i = p
	}
}

func (e *Engine) siftDown(i int) {
	n := len(e.pq)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(&e.pq[c], &e.pq[min]) {
				min = c
			}
		}
		if !eventLess(&e.pq[min], &e.pq[i]) {
			return
		}
		e.pq[i], e.pq[min] = e.pq[min], e.pq[i]
		i = min
	}
}

// pop removes and returns the minimum event. The vacated tail slot is
// zeroed so the queue's spare capacity never pins packets or closures.
func (e *Engine) pop() event {
	top := e.pq[0]
	n := len(e.pq) - 1
	e.pq[0] = e.pq[n]
	e.pq[n] = event{}
	e.pq = e.pq[:n]
	if n > 0 {
		e.siftDown(0)
	}
	return top
}

// dispatch runs one event.
func (e *Engine) dispatch(ev *event) {
	switch ev.kind {
	case evFunc:
		ev.fn()
	case evDeliver:
		if ev.hop != nil {
			ev.hop.Send(ev.pkt)
		} else {
			e.FreePacket(ev.pkt)
		}
	default:
		ev.h.handle(ev.kind, ev.arg)
	}
}

// Run processes events until the queue drains or simulation time exceeds
// until. It returns the number of events processed.
func (e *Engine) Run(until time.Duration) int {
	processed := 0
	for len(e.pq) > 0 {
		if e.pq[0].at > until {
			// Leave it for a later Run and stop.
			e.now = until
			return processed
		}
		ev := e.pop()
		e.now = ev.at
		e.dispatch(&ev)
		processed++
	}
	if e.now < until {
		e.now = until
	}
	// The queue drained: the simulation is over or quiescent, so hand the
	// backing arrays to the cross-engine pools. pop zeroed every vacated
	// slot, and a freed packet is by contract unreferenced, so neither
	// buffer pins live objects. A later push/AllocPacket simply re-acquires.
	if cap(e.pq) > 0 {
		buf := e.pq[:0]
		e.pq = nil
		pqPool.Put(&buf)
	}
	if len(e.free) > 0 {
		fl := e.free
		e.free = nil
		freelistPool.Put(&fl)
	}
	return processed
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.pq) }

// Release hands the engine's backing arrays to the cross-engine pools and
// recycles the packets of still-pending deliveries. Trial runners stop at
// a fixed horizon with events (churn, background, retransmission timers)
// still queued, so Run's drained-queue recycling never fires for them;
// calling Release when a trial's results have been read closes that gap.
// The engine must not be used again afterwards.
func (e *Engine) Release() {
	for i := range e.pq {
		if e.pq[i].kind == evDeliver && e.pq[i].pkt != nil {
			e.FreePacket(e.pq[i].pkt)
		}
		e.pq[i] = event{}
	}
	if cap(e.pq) > 0 {
		buf := e.pq[:0]
		e.pq = nil
		pqPool.Put(&buf)
	}
	if len(e.free) > 0 {
		fl := e.free
		e.free = nil
		freelistPool.Put(&fl)
	}
}

// AllocPacket returns a zeroed packet, recycling one from the freelist
// when available. Sources inside the simulation must allocate through this
// so steady-state traffic reuses a bounded working set instead of
// allocating per send.
func (e *Engine) AllocPacket() *Packet {
	e.allocCount++
	if e.free == nil {
		// First allocation: adopt a recycled freelist (packets and all)
		// from an earlier engine, or start a fresh one.
		if fl, _ := freelistPool.Get().(*[]*Packet); fl != nil {
			e.free = *fl
		} else {
			e.free = make([]*Packet, 0, 8)
		}
	}
	if n := len(e.free); n > 0 {
		p := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		e.reuseCount++
		*p = Packet{}
		return p
	}
	return &Packet{}
}

// FreePacket returns a packet to the freelist. Only the hop that ends a
// packet's life may call it — the terminal receiver, a drop site (after
// the drop hook returns), or a discarding join. Callers must not retain
// the pointer afterwards: the next AllocPacket may hand it out again. A
// double free panics.
func (e *Engine) FreePacket(p *Packet) {
	if p == nil {
		return
	}
	if p.recycled {
		panic("netsim: double free of *Packet (freed packet reached a second end-of-life hop)")
	}
	p.recycled = true
	e.free = append(e.free, p)
}
