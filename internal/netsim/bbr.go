package netsim

import "time"

// CCAlgo selects a TCP flow's congestion-control algorithm.
type CCAlgo int

const (
	// Reno is the default loss-based AIMD controller.
	Reno CCAlgo = iota
	// BBR is a simplified BBRv1 model: it paces at a gain times the
	// estimated bottleneck bandwidth, caps inflight at 2×BDP, and — unlike
	// Reno — does not reduce its rate on loss. The paper leaves "how loss
	// rate correlations would occur with BBR flows" as an open question
	// (§7); the extension-bbr experiment answers it in this framework.
	BBR CCAlgo = iota
)

// bbrState carries the BBR estimator and state machine.
type bbrState struct {
	// Windowed max of delivery-rate samples (bits/s).
	btlBwSamples []rateSample
	btlBw        float64
	// Windowed min RTT.
	rtPropSamples []rttSample
	rtProp        time.Duration

	delivered int64 // total segments acked

	state      bbrPhase
	cycleIdx   int
	cycleStart time.Duration
	// Startup bookkeeping: rounds without >25% bandwidth growth.
	fullBwCount int
	fullBw      float64
}

type bbrPhase int

const (
	bbrStartup bbrPhase = iota
	bbrDrain
	bbrProbeBW
)

type rateSample struct {
	at   time.Duration
	rate float64
}

type rttSample struct {
	at  time.Duration
	rtt time.Duration
}

// probe-bandwidth pacing-gain cycle (BBRv1).
var bbrCycleGains = []float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

const (
	bbrStartupGain = 2.885
	bbrDrainGain   = 1 / 2.885
	bbrCwndGain    = 2.0
	bbrBwWindow    = 10 // in RTprops
	bbrRtWindow    = 10 * time.Second
)

// onAckBBR feeds one delivery-rate and RTT sample into the estimator and
// advances the state machine.
func (f *TCPFlow) onAckBBR(st *tcpPktState, now time.Duration) {
	b := f.bbr
	b.delivered++
	// Delivery rate sample: segments delivered since this packet was sent,
	// over the elapsed time.
	elapsed := now - st.sentAt
	if elapsed > 0 && st.deliveredSnap >= 0 {
		rate := float64(b.delivered-st.deliveredSnap) * float64(f.cfg.MSS) * 8 / elapsed.Seconds()
		b.btlBwSamples = append(b.btlBwSamples, rateSample{at: now, rate: rate})
	}
	if st.rtx == 0 {
		b.rtPropSamples = append(b.rtPropSamples, rttSample{at: now, rtt: now - st.sentAt})
	}
	b.refresh(now)

	switch b.state {
	case bbrStartup:
		// Full pipe: bandwidth stopped growing 25% per round (checked once
		// per RTprop via the cycle clock).
		if now-b.cycleStart >= b.rtPropOr(f.cfg.InitRTTGuess) {
			b.cycleStart = now
			if b.btlBw < b.fullBw*1.25 {
				b.fullBwCount++
			} else {
				b.fullBwCount = 0
				b.fullBw = b.btlBw
			}
			if b.fullBwCount >= 3 {
				b.state = bbrDrain
			}
		}
	case bbrDrain:
		bdp := b.bdpSegments(f.cfg.MSS)
		if float64(f.inflight) <= bdp {
			b.state = bbrProbeBW
			b.cycleStart = now
			b.cycleIdx = 0
		}
	case bbrProbeBW:
		if now-b.cycleStart >= b.rtPropOr(f.cfg.InitRTTGuess) {
			b.cycleStart = now
			b.cycleIdx = (b.cycleIdx + 1) % len(bbrCycleGains)
		}
	}
}

// refresh prunes the sample windows and recomputes the max/min filters.
func (b *bbrState) refresh(now time.Duration) {
	bwHorizon := now - bbrBwWindow*b.rtPropOr(50*time.Millisecond)
	i := 0
	for i < len(b.btlBwSamples) && b.btlBwSamples[i].at < bwHorizon {
		i++
	}
	b.btlBwSamples = b.btlBwSamples[i:]
	b.btlBw = 0
	for _, s := range b.btlBwSamples {
		if s.rate > b.btlBw {
			b.btlBw = s.rate
		}
	}

	rtHorizon := now - bbrRtWindow
	i = 0
	for i < len(b.rtPropSamples) && b.rtPropSamples[i].at < rtHorizon {
		i++
	}
	b.rtPropSamples = b.rtPropSamples[i:]
	b.rtProp = 0
	for _, s := range b.rtPropSamples {
		if b.rtProp == 0 || s.rtt < b.rtProp {
			b.rtProp = s.rtt
		}
	}
}

func (b *bbrState) rtPropOr(fallback time.Duration) time.Duration {
	if b.rtProp > 0 {
		return b.rtProp
	}
	return fallback
}

// pacingGain returns the current phase's pacing gain.
func (b *bbrState) pacingGain() float64 {
	switch b.state {
	case bbrStartup:
		return bbrStartupGain
	case bbrDrain:
		return bbrDrainGain
	default:
		return bbrCycleGains[b.cycleIdx]
	}
}

// bdpSegments returns the estimated bandwidth-delay product in segments.
func (b *bbrState) bdpSegments(mss int) float64 {
	if b.btlBw <= 0 || b.rtProp <= 0 {
		return 10 // pre-estimate default, matches InitCwnd
	}
	return b.btlBw * b.rtProp.Seconds() / 8 / float64(mss)
}

// bbrPaceInterval returns the inter-send time at the current pacing rate.
func (f *TCPFlow) bbrPaceInterval() time.Duration {
	b := f.bbr
	rate := b.btlBw * b.pacingGain()
	if rate <= 0 {
		// Pre-estimate: pace the initial window over the RTT guess.
		return f.cfg.InitRTTGuess / time.Duration(f.cfg.InitCwnd)
	}
	interval := time.Duration(float64(f.cfg.MSS*8) / rate * float64(time.Second))
	if interval < 20*time.Microsecond {
		interval = 20 * time.Microsecond
	}
	return interval
}

// bbrCwnd returns the inflight cap in segments.
func (f *TCPFlow) bbrCwnd() float64 {
	cw := bbrCwndGain * f.bbr.bdpSegments(f.cfg.MSS)
	if cw < 4 {
		cw = 4
	}
	return cw
}
