package netsim

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestChurnMeanFlowBytes(t *testing.T) {
	var eng Engine
	sc := NewScenario(&eng, 1, CommonSpec{}, PathSpec{RTT: 20 * time.Millisecond})
	c, err := NewChurn(&eng, ChurnConfig{MeanRate: 1e6, Stop: time.Second}, rand.New(rand.NewSource(1)), sc, []int{0})
	if err != nil {
		t.Fatal(err)
	}

	// The analytic mean must match the empirical mean of drawn sizes.
	want := c.cfg.meanFlowBytes()
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(c.cfg.drawBytes(c.rng))
	}
	got := sum / n
	// Heavy-tailed: generous tolerance.
	if math.Abs(got-want)/want > 0.2 {
		t.Errorf("empirical mean %v vs analytic %v", got, want)
	}
	// Bounds respected.
	for i := 0; i < 1000; i++ {
		b := float64(c.cfg.drawBytes(c.rng))
		if b < c.cfg.MinBytes || b > c.cfg.MaxBytes {
			t.Fatalf("size %v outside [%v, %v]", b, c.cfg.MinBytes, c.cfg.MaxBytes)
		}
	}
}

func TestChurnAggregateRate(t *testing.T) {
	var eng Engine
	sc := NewScenario(&eng, 2, CommonSpec{},
		PathSpec{RTT: 30 * time.Millisecond},
		PathSpec{RTT: 50 * time.Millisecond},
	)
	target := 10e6
	dur := 30 * time.Second
	c, err := NewChurn(&eng, ChurnConfig{MeanRate: target, Stop: dur},
		rand.New(rand.NewSource(3)), sc, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Start(0)
	eng.Run(dur)
	// Offered demand (arrived flow bytes per second) approximates the
	// target; heavy tails make this noisy, so the tolerance is wide.
	offered := float64(c.Bytes) * 8 / dur.Seconds()
	if offered < target*0.4 || offered > target*2.5 {
		t.Errorf("offered %v bits/s, want ≈%v", offered, target)
	}
	if c.Arrived < 10 {
		t.Errorf("only %d flows arrived", c.Arrived)
	}
}

func TestChurnFlowsActuallyTransfer(t *testing.T) {
	var eng Engine
	var delivered int64
	sc := NewScenario(&eng, 4, CommonSpec{}, PathSpec{RTT: 20 * time.Millisecond})
	// Tap deliveries by wrapping Register through a counting demux hop:
	// churn registers its own receivers, so count at the common link.
	sc.CommonLink.Next = &Tap{Fn: func(pkt *Packet) { delivered += int64(pkt.Size) }, Next: sc.CommonLink.Next}
	c, err := NewChurn(&eng, ChurnConfig{MeanRate: 5e6, Stop: 10 * time.Second},
		rand.New(rand.NewSource(5)), sc, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	c.Start(0)
	eng.Run(12 * time.Second)
	if delivered == 0 {
		t.Fatal("churn flows moved no bytes")
	}
}

func TestChurnIDBaseSeparation(t *testing.T) {
	var eng Engine
	sc := NewScenario(&eng, 6, CommonSpec{}, PathSpec{RTT: 20 * time.Millisecond})
	a, err := NewChurn(&eng, ChurnConfig{MeanRate: 1e6, Stop: time.Second},
		rand.New(rand.NewSource(1)), sc, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewChurn(&eng, ChurnConfig{MeanRate: 1e6, Stop: time.Second, IDBase: 5000},
		rand.New(rand.NewSource(2)), sc, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if a.nextID == b.nextID {
		t.Error("two churn instances share an ID range")
	}
}
