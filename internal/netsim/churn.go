package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// ChurnConfig parameterizes a flow-churn background generator: Poisson
// arrivals of finite TCP flows with bounded-Pareto sizes. This is the
// closest synthetic equivalent of the paper's CAIDA replay ("we extract
// the entire TCP flow payloads and replay them from the application
// layer"): each flow adapts to loss while it lives, but the *population*
// of active flows — hence the aggregate demand at the bottleneck — varies
// at flow-lifetime timescales. That non-stationarity is what makes the
// bottleneck's loss rate trend up and down (§4.2).
type ChurnConfig struct {
	// MeanRate is the long-run aggregate demand in bits/s.
	MeanRate float64
	// MinBytes/MaxBytes bound the Pareto flow sizes
	// (defaults 30 KB / 30 MB).
	MinBytes, MaxBytes float64
	// Alpha is the Pareto shape (default 1.2, the classic Internet
	// flow-size tail).
	Alpha float64
	// Class stamps the flows' packets.
	Class Class
	// Stop ends new arrivals (required).
	Stop time.Duration
	// PerFlowRate caps each flow's application rate (default 8 Mbit/s —
	// an access-limited user).
	PerFlowRate float64
	// IDBase is the first flow ID used (default 1000); give each churn
	// instance in a scenario its own range.
	IDBase int
}

func (c *ChurnConfig) fill() {
	if c.MinBytes <= 0 {
		c.MinBytes = 30e3
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 30e6
	}
	if c.Alpha <= 0 {
		c.Alpha = 1.2
	}
	if c.PerFlowRate <= 0 {
		c.PerFlowRate = 8e6
	}
	if c.IDBase <= 0 {
		c.IDBase = churnFlowIDBase
	}
}

// Validate rejects configurations that would produce a dead source or an
// undefined Pareto size distribution, checked before defaulting: zero
// values that fill() replaces are fine; negative ones (and NaN, via the
// negated comparisons) are caller bugs.
func (c ChurnConfig) Validate() error {
	if !(c.MeanRate > 0) {
		return &ConfigError{Source: "churn", Field: "MeanRate",
			Reason: fmt.Sprintf("must be > 0 bits/s, got %v", c.MeanRate)}
	}
	if !(c.MinBytes >= 0) {
		return &ConfigError{Source: "churn", Field: "MinBytes",
			Reason: fmt.Sprintf("must be >= 0 (0 = default), got %v", c.MinBytes)}
	}
	if !(c.MaxBytes >= 0) {
		return &ConfigError{Source: "churn", Field: "MaxBytes",
			Reason: fmt.Sprintf("must be >= 0 (0 = default), got %v", c.MaxBytes)}
	}
	if !(c.Alpha >= 0) {
		return &ConfigError{Source: "churn", Field: "Alpha",
			Reason: fmt.Sprintf("must be >= 0 (0 = default), got %v", c.Alpha)}
	}
	if !(c.PerFlowRate >= 0) {
		return &ConfigError{Source: "churn", Field: "PerFlowRate",
			Reason: fmt.Sprintf("must be >= 0 bits/s (0 = default), got %v", c.PerFlowRate)}
	}
	filled := c
	filled.fill()
	if filled.MinBytes > filled.MaxBytes {
		return &ConfigError{Source: "churn", Field: "MinBytes",
			Reason: fmt.Sprintf("exceeds MaxBytes (%v > %v)", filled.MinBytes, filled.MaxBytes)}
	}
	if c.Stop <= 0 {
		return &ConfigError{Source: "churn", Field: "Stop",
			Reason: fmt.Sprintf("must be > 0, got %v", c.Stop)}
	}
	return nil
}

// meanFlowBytes returns the mean of the bounded Pareto distribution.
func (c *ChurnConfig) meanFlowBytes() float64 {
	a, lo, hi := c.Alpha, c.MinBytes, c.MaxBytes
	//lint:ignore floateq exact special case of the bounded-Pareto mean formula
	if a == 1 {
		return lo * math.Log(hi/lo) / (1 - lo/hi)
	}
	num := math.Pow(lo, a) / (1 - math.Pow(lo/hi, a)) * a / (a - 1)
	return num * (1/math.Pow(lo, a-1) - 1/math.Pow(hi, a-1))
}

// drawBytes samples a bounded-Pareto flow size.
func (c *ChurnConfig) drawBytes(rng *rand.Rand) int64 {
	a, lo, hi := c.Alpha, c.MinBytes, c.MaxBytes
	u := rng.Float64()
	x := lo / math.Pow(1-u*(1-math.Pow(lo/hi, a)), 1/a)
	return int64(x)
}

// Churn generates background TCP flows into a scenario.
type Churn struct {
	eng  *Engine
	cfg  ChurnConfig
	rng  *rand.Rand
	sc   *Scenario
	path []int // scenario path indices the flows enter through

	nextID  int
	Arrived int64
	Bytes   int64
}

// churnFlowIDBase keeps churn flow IDs clear of foreground flows.
const churnFlowIDBase = 1000

// NewChurn creates a churn source whose flows enter the scenario via the
// given path indices (round-robin), rejecting invalid configurations with
// a *ConfigError.
func NewChurn(eng *Engine, cfg ChurnConfig, rng *rand.Rand, sc *Scenario, pathIdx []int) (*Churn, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.fill()
	return &Churn{eng: eng, cfg: cfg, rng: rng, sc: sc, path: pathIdx, nextID: cfg.IDBase}, nil
}

// Start schedules the first arrival.
func (c *Churn) Start(at time.Duration) {
	if c.cfg.MeanRate <= 0 {
		return
	}
	c.eng.scheduleCall(at, c, evChurnArrive, 0)
}

// handle dispatches the source's interned engine callbacks.
func (c *Churn) handle(kind eventKind, _ uint64) {
	if kind == evChurnArrive {
		c.arrive()
	}
}

func (c *Churn) arrive() {
	now := c.eng.Now()
	if now >= c.cfg.Stop {
		return
	}
	size := c.cfg.drawBytes(c.rng)
	idx := c.path[int(c.Arrived)%len(c.path)]
	id := c.nextID
	c.nextID++
	c.Arrived++
	c.Bytes += size

	f := NewTCPFlow(c.eng, id, TCPConfig{
		Pacing:  true,
		Class:   c.cfg.Class,
		Bytes:   size,
		AppRate: c.cfg.PerFlowRate,
		Stop:    c.cfg.Stop,
	}, c.sc.Entry(idx), c.sc.BackDelay(idx))
	c.sc.Register(id, f.Receiver())
	f.Start(now)

	// Poisson arrivals sized so mean demand = MeanRate.
	meanGap := c.cfg.meanFlowBytes() * 8 / c.cfg.MeanRate
	gap := time.Duration(c.rng.ExpFloat64() * meanGap * float64(time.Second))
	if gap <= 0 {
		gap = time.Millisecond
	}
	c.eng.afterCall(gap, c, evChurnArrive, 0)
}
