package netsim

import (
	"math"
	"math/rand"
	"time"
)

// ChurnConfig parameterizes a flow-churn background generator: Poisson
// arrivals of finite TCP flows with bounded-Pareto sizes. This is the
// closest synthetic equivalent of the paper's CAIDA replay ("we extract
// the entire TCP flow payloads and replay them from the application
// layer"): each flow adapts to loss while it lives, but the *population*
// of active flows — hence the aggregate demand at the bottleneck — varies
// at flow-lifetime timescales. That non-stationarity is what makes the
// bottleneck's loss rate trend up and down (§4.2).
type ChurnConfig struct {
	// MeanRate is the long-run aggregate demand in bits/s.
	MeanRate float64
	// MinBytes/MaxBytes bound the Pareto flow sizes
	// (defaults 30 KB / 30 MB).
	MinBytes, MaxBytes float64
	// Alpha is the Pareto shape (default 1.2, the classic Internet
	// flow-size tail).
	Alpha float64
	// Class stamps the flows' packets.
	Class Class
	// Stop ends new arrivals (required).
	Stop time.Duration
	// PerFlowRate caps each flow's application rate (default 8 Mbit/s —
	// an access-limited user).
	PerFlowRate float64
	// IDBase is the first flow ID used (default 1000); give each churn
	// instance in a scenario its own range.
	IDBase int
}

func (c *ChurnConfig) fill() {
	if c.MinBytes <= 0 {
		c.MinBytes = 30e3
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 30e6
	}
	if c.Alpha <= 0 {
		c.Alpha = 1.2
	}
	if c.PerFlowRate <= 0 {
		c.PerFlowRate = 8e6
	}
	if c.IDBase <= 0 {
		c.IDBase = churnFlowIDBase
	}
}

// Churn generates background TCP flows into a scenario.
type Churn struct {
	eng  *Engine
	cfg  ChurnConfig
	rng  *rand.Rand
	sc   *Scenario
	path []int // scenario path indices the flows enter through

	nextID  int
	Arrived int64
	Bytes   int64
}

// churnFlowIDBase keeps churn flow IDs clear of foreground flows.
const churnFlowIDBase = 1000

// NewChurn creates a churn source whose flows enter the scenario via the
// given path indices (round-robin).
func NewChurn(eng *Engine, cfg ChurnConfig, rng *rand.Rand, sc *Scenario, pathIdx []int) *Churn {
	cfg.fill()
	return &Churn{eng: eng, cfg: cfg, rng: rng, sc: sc, path: pathIdx, nextID: cfg.IDBase}
}

// meanFlowBytes returns the mean of the bounded Pareto distribution.
func (c *Churn) meanFlowBytes() float64 {
	a, lo, hi := c.cfg.Alpha, c.cfg.MinBytes, c.cfg.MaxBytes
	//lint:ignore floateq exact special case of the bounded-Pareto mean formula
	if a == 1 {
		return lo * math.Log(hi/lo) / (1 - lo/hi)
	}
	num := math.Pow(lo, a) / (1 - math.Pow(lo/hi, a)) * a / (a - 1)
	return num * (1/math.Pow(lo, a-1) - 1/math.Pow(hi, a-1))
}

// drawBytes samples a bounded-Pareto flow size.
func (c *Churn) drawBytes() int64 {
	a, lo, hi := c.cfg.Alpha, c.cfg.MinBytes, c.cfg.MaxBytes
	u := c.rng.Float64()
	x := lo / math.Pow(1-u*(1-math.Pow(lo/hi, a)), 1/a)
	return int64(x)
}

// Start schedules the first arrival.
func (c *Churn) Start(at time.Duration) {
	if c.cfg.MeanRate <= 0 {
		return
	}
	c.eng.scheduleCall(at, c, evChurnArrive, 0)
}

// handle dispatches the source's interned engine callbacks.
func (c *Churn) handle(kind eventKind, _ uint64) {
	if kind == evChurnArrive {
		c.arrive()
	}
}

func (c *Churn) arrive() {
	now := c.eng.Now()
	if now >= c.cfg.Stop {
		return
	}
	size := c.drawBytes()
	idx := c.path[int(c.Arrived)%len(c.path)]
	id := c.nextID
	c.nextID++
	c.Arrived++
	c.Bytes += size

	f := NewTCPFlow(c.eng, id, TCPConfig{
		Pacing:  true,
		Class:   c.cfg.Class,
		Bytes:   size,
		AppRate: c.cfg.PerFlowRate,
		Stop:    c.cfg.Stop,
	}, c.sc.Entry(idx), c.sc.BackDelay(idx))
	c.sc.Register(id, f.Receiver())
	f.Start(now)

	// Poisson arrivals sized so mean demand = MeanRate.
	meanGap := c.meanFlowBytes() * 8 / c.cfg.MeanRate
	gap := time.Duration(c.rng.ExpFloat64() * meanGap * float64(time.Second))
	if gap <= 0 {
		gap = time.Millisecond
	}
	c.eng.afterCall(gap, c, evChurnArrive, 0)
}
