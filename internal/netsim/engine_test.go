package netsim

import (
	"testing"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	var eng Engine
	var got []int
	eng.Schedule(3*time.Second, func() { got = append(got, 3) })
	eng.Schedule(1*time.Second, func() { got = append(got, 1) })
	eng.Schedule(2*time.Second, func() { got = append(got, 2) })
	eng.Run(10 * time.Second)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
	if eng.Now() != 10*time.Second {
		t.Errorf("Now = %v, want 10s", eng.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	var eng Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		eng.Schedule(time.Second, func() { got = append(got, i) })
	}
	eng.Run(2 * time.Second)
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineRunUntilStopsAndResumes(t *testing.T) {
	var eng Engine
	fired := 0
	eng.Schedule(5*time.Second, func() { fired++ })
	n := eng.Run(2 * time.Second)
	if n != 0 || fired != 0 {
		t.Fatalf("event beyond horizon ran: n=%d fired=%d", n, fired)
	}
	if eng.Pending() != 1 {
		t.Fatalf("Pending = %d", eng.Pending())
	}
	eng.Run(10 * time.Second)
	if fired != 1 {
		t.Fatalf("event did not resume: fired=%d", fired)
	}
}

func TestEngineCascade(t *testing.T) {
	var eng Engine
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			eng.After(time.Millisecond, tick)
		}
	}
	eng.Schedule(0, tick)
	eng.Run(time.Second)
	if count != 100 {
		t.Fatalf("cascade count = %d", count)
	}
	if eng.Now() != time.Second {
		t.Fatalf("Now = %v", eng.Now())
	}
}

func TestEnginePastEventsRunNow(t *testing.T) {
	var eng Engine
	var at time.Duration
	eng.Schedule(time.Second, func() {
		eng.Schedule(0, func() { at = eng.Now() }) // in the past
	})
	eng.Run(2 * time.Second)
	if at != time.Second {
		t.Fatalf("past event ran at %v, want 1s", at)
	}
}
