package netsim

import (
	"math/rand"
	"testing"
	"time"

	"github.com/nal-epfl/wehey/internal/trace"
)

// TestFreelistNoRecycledPacketObserved drives a lossy scenario (drops at
// the limiter and the link recycle packets while traffic is still flowing)
// and asserts the aliasing contract: no hop, meter, or receiver ever
// observes a packet that is currently in the freelist.
func TestFreelistNoRecycledPacketObserved(t *testing.T) {
	var eng Engine
	observed := 0
	check := func(where string) func(*Packet) {
		return func(pkt *Packet) {
			observed++
			if pkt.recycled {
				t.Fatalf("%s observed a recycled packet (flow %d seq %d)",
					where, pkt.Flow, pkt.Seq)
			}
		}
	}

	var flow *UDPFlow
	end := HopFunc(func(pkt *Packet) {
		check("receiver")(pkt)
		flow.Receiver().Send(pkt)
	})
	meter := &Tap{Next: end, Fn: check("egress meter")}
	link := NewLink(&eng, "l", 4e6, 5*time.Millisecond, meter)
	rl := NewRateLimiter(&eng, "tbf", 1e6, 3000, 2000, link)
	rl.OnDrop = func(pkt *Packet, where string) { check("drop hook")(pkt) }
	ingress := &Tap{Next: rl, Fn: check("ingress meter")}

	tr, err := trace.Generate("zoom", rand.New(rand.NewSource(7)), 4*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	flow = NewUDPFlow(&eng, 1, ClassDifferentiated, ingress)
	flow.Start(tr, 0)
	eng.Run(30 * time.Second)

	if observed == 0 {
		t.Fatal("meters observed no packets")
	}
	if eng.reuseCount == 0 {
		t.Fatal("freelist never recycled a packet in a lossy run")
	}
	// Steady state: the fresh-allocation working set must be far below the
	// number of packets sent.
	fresh := eng.allocCount - eng.reuseCount
	if fresh*4 > flow.SentCount {
		t.Errorf("working set %d packets for %d sends; freelist not recycling",
			fresh, flow.SentCount)
	}
}

// TestFreelistDoubleFreePanics pins the double-free guard.
func TestFreelistDoubleFreePanics(t *testing.T) {
	var eng Engine
	p := eng.AllocPacket()
	eng.FreePacket(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double FreePacket did not panic")
		}
	}()
	eng.FreePacket(p)
}

// TestFreelistAllocResets: a recycled packet comes back fully zeroed.
func TestFreelistAllocResets(t *testing.T) {
	var eng Engine
	p := eng.AllocPacket()
	p.Flow, p.Seq, p.Size = 9, 99, 999
	p.Class = ClassDifferentiated
	p.Retransmission = true
	p.PolicyKey = "m"
	p.QueuedFor = time.Second
	eng.FreePacket(p)
	q := eng.AllocPacket()
	if q != p {
		t.Fatal("freelist did not recycle the freed packet")
	}
	if *q != (Packet{}) {
		t.Errorf("recycled packet not reset: %+v", *q)
	}
}

// TestFreelistScenarioBackgroundRecycles: background packets die at the
// scenario demux/join and must feed the freelist, bounding the working set
// of an open-loop source.
func TestFreelistScenarioBackgroundRecycles(t *testing.T) {
	var eng Engine
	sc := NewScenario(&eng, 1, CommonSpec{
		Rate:   8e6,
		BgRate: 6e6,
	}, PathSpec{RTT: 30 * time.Millisecond, BgRate: 4e6, BgDiffFraction: 0.5})
	sc.StartBackground(0, 5*time.Second)
	eng.Run(6 * time.Second)

	var sent int64
	for _, bg := range sc.backgrounds {
		sent += bg.SentPackets
	}
	if sent == 0 {
		t.Fatal("background sent nothing")
	}
	fresh := eng.allocCount - eng.reuseCount
	if fresh*4 > sent {
		t.Errorf("working set %d packets for %d background sends; demux/join not recycling",
			fresh, sent)
	}
}
