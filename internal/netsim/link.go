package netsim

import "time"

// Link models a store-and-forward link: a FIFO tail-drop queue, a
// transmitter serializing packets at Rate bits per second, and a fixed
// propagation delay. A Rate of 0 means infinite bandwidth (pure delay, no
// queueing, no loss).
type Link struct {
	// Name labels the link in drop reports ("l_c", "l_1", ...).
	Name string
	// Rate is the transmission rate in bits/s; 0 = infinite.
	Rate float64
	// Delay is the propagation delay.
	Delay time.Duration
	// QueueLimit bounds the queue in bytes (excluding the packet being
	// transmitted); 0 means a generous default of 250 ms worth of Rate.
	QueueLimit int
	// Next receives packets after serialization + propagation.
	Next Hop
	// OnDrop, when set, observes tail drops.
	OnDrop DropHook

	eng *Engine

	queued     []*Packet
	queuedSize int
	busy       bool

	// Counters.
	Forwarded int64
	Dropped   int64
}

// NewLink creates a link attached to eng.
func NewLink(eng *Engine, name string, rate float64, delay time.Duration, next Hop) *Link {
	l := &Link{Name: name, Rate: rate, Delay: delay, Next: next, eng: eng}
	if rate > 0 {
		l.QueueLimit = int(rate / 8 * 0.25) // 250 ms of buffering
	}
	return l
}

// Send implements Hop.
func (l *Link) Send(pkt *Packet) {
	if l.Rate <= 0 {
		// Infinite bandwidth: pure propagation delay.
		l.Forwarded++
		l.deliverAfter(pkt, l.Delay)
		return
	}
	if !l.busy {
		l.busy = true
		l.transmit(pkt)
		return
	}
	if l.queuedSize+pkt.Size > l.QueueLimit {
		l.Dropped++
		if l.OnDrop != nil {
			l.OnDrop(pkt, l.Name)
		}
		return
	}
	pkt.QueuedFor -= l.eng.Now() // completed on dequeue
	l.queued = append(l.queued, pkt)
	l.queuedSize += pkt.Size
}

func (l *Link) transmit(pkt *Packet) {
	txTime := time.Duration(float64(pkt.Size*8) / l.Rate * float64(time.Second))
	l.Forwarded++
	l.deliverAfter(pkt, txTime+l.Delay)
	l.eng.After(txTime, l.transmitNext)
}

func (l *Link) transmitNext() {
	if len(l.queued) == 0 {
		l.busy = false
		return
	}
	pkt := l.queued[0]
	copy(l.queued, l.queued[1:])
	l.queued = l.queued[:len(l.queued)-1]
	l.queuedSize -= pkt.Size
	pkt.QueuedFor += l.eng.Now()
	l.transmit(pkt)
}

func (l *Link) deliverAfter(pkt *Packet, d time.Duration) {
	next := l.Next
	l.eng.After(d, func() {
		if next != nil {
			next.Send(pkt)
		}
	})
}

// QueueBytes returns the bytes currently queued (excluding the packet in
// transmission).
func (l *Link) QueueBytes() int { return l.queuedSize }
