package netsim

import "time"

// Link models a store-and-forward link: a FIFO tail-drop queue, a
// transmitter serializing packets at Rate bits per second, and a fixed
// propagation delay. A Rate of 0 means infinite bandwidth (pure delay, no
// queueing, no loss).
type Link struct {
	// Name labels the link in drop reports ("l_c", "l_1", ...).
	Name string
	// Rate is the transmission rate in bits/s; 0 = infinite.
	Rate float64
	// Delay is the propagation delay.
	Delay time.Duration
	// QueueLimit bounds the queue in bytes (excluding the packet being
	// transmitted); 0 means a generous default of 250 ms worth of Rate,
	// applied on first Send (so struct-literal links get it too).
	QueueLimit int
	// Next receives packets after serialization + propagation.
	Next Hop
	// OnDrop, when set, observes tail drops. The packet is recycled when
	// the hook returns; hooks must not retain it.
	OnDrop DropHook

	eng *Engine

	queued     ring[*Packet]
	queuedSize int
	busy       bool
	qlimSet    bool // QueueLimit default applied (or explicitly configured)

	// Counters.
	Forwarded int64
	Dropped   int64
}

// defaultQueueLimit is the 250 ms-of-rate buffer a zero QueueLimit stands
// for.
func defaultQueueLimit(rate float64) int {
	return int(rate / 8 * 0.25)
}

// NewLink creates a link attached to eng.
func NewLink(eng *Engine, name string, rate float64, delay time.Duration, next Hop) *Link {
	l := &Link{Name: name, Rate: rate, Delay: delay, Next: next, eng: eng}
	if rate > 0 {
		l.QueueLimit = defaultQueueLimit(rate)
	}
	return l
}

// Send implements Hop.
func (l *Link) Send(pkt *Packet) {
	if l.Rate <= 0 {
		// Infinite bandwidth: pure propagation delay.
		l.Forwarded++
		l.eng.AfterDeliver(l.Delay, pkt, l.Next)
		return
	}
	if !l.qlimSet {
		// A Link built as a struct literal (bypassing NewLink) with a
		// positive Rate and an unset QueueLimit would otherwise tail-drop
		// every packet that finds the transmitter busy.
		l.qlimSet = true
		if l.QueueLimit == 0 {
			l.QueueLimit = defaultQueueLimit(l.Rate)
		}
	}
	if !l.busy {
		l.busy = true
		l.transmit(pkt)
		return
	}
	if l.queuedSize+pkt.Size > l.QueueLimit {
		l.Dropped++
		if l.OnDrop != nil {
			l.OnDrop(pkt, l.Name)
		}
		l.eng.FreePacket(pkt)
		return
	}
	pkt.QueuedFor -= l.eng.Now() // completed on dequeue
	l.queued.Push(pkt)
	l.queuedSize += pkt.Size
}

func (l *Link) transmit(pkt *Packet) {
	txTime := time.Duration(float64(pkt.Size*8) / l.Rate * float64(time.Second))
	l.Forwarded++
	l.eng.AfterDeliver(txTime+l.Delay, pkt, l.Next)
	l.eng.afterCall(txTime, l, evLinkTransmitNext, 0)
}

// handle dispatches the link's interned engine callbacks.
func (l *Link) handle(kind eventKind, _ uint64) {
	if kind == evLinkTransmitNext {
		l.transmitNext()
	}
}

func (l *Link) transmitNext() {
	if l.queued.Len() == 0 {
		l.busy = false
		return
	}
	pkt := l.queued.Pop()
	l.queuedSize -= pkt.Size
	pkt.QueuedFor += l.eng.Now()
	l.transmit(pkt)
}

// QueueBytes returns the bytes currently queued (excluding the packet in
// transmission).
func (l *Link) QueueBytes() int { return l.queuedSize }
