package netsim

import "time"

// Link models a store-and-forward link: a FIFO tail-drop queue, a
// transmitter serializing packets at Rate bits per second, and a fixed
// propagation delay. A Rate of 0 means infinite bandwidth (pure delay, no
// queueing, no loss).
type Link struct {
	// Name labels the link in drop reports ("l_c", "l_1", ...).
	Name string
	// Rate is the transmission rate in bits/s; 0 = infinite.
	Rate float64
	// Delay is the propagation delay.
	Delay time.Duration
	// QueueLimit bounds the queue in bytes (excluding the packet being
	// transmitted); 0 means a generous default of 250 ms worth of Rate,
	// applied on first Send (so struct-literal links get it too).
	QueueLimit int
	// Next receives packets after serialization + propagation.
	Next Hop
	// OnDrop, when set, observes tail drops. The packet is recycled when
	// the hook returns; hooks must not retain it.
	OnDrop DropHook

	eng *Engine
	fl  *FluidQueue // non-nil once Fluid() engages hybrid mode

	queued     ring[*Packet]
	queuedSize int
	busy       bool
	qlimSet    bool // QueueLimit default applied (or explicitly configured)

	// Counters.
	Forwarded int64
	Dropped   int64
}

// defaultQueueLimit is the 250 ms-of-rate buffer a zero QueueLimit stands
// for.
func defaultQueueLimit(rate float64) int {
	return int(rate / 8 * 0.25)
}

// NewLink creates a link attached to eng.
func NewLink(eng *Engine, name string, rate float64, delay time.Duration, next Hop) *Link {
	l := &Link{Name: name, Rate: rate, Delay: delay, Next: next, eng: eng}
	if rate > 0 {
		l.QueueLimit = defaultQueueLimit(rate)
	}
	return l
}

// Send implements Hop.
func (l *Link) Send(pkt *Packet) {
	if l.fl != nil {
		l.sendFluid(pkt)
		return
	}
	if l.Rate <= 0 {
		// Infinite bandwidth: pure propagation delay.
		l.Forwarded++
		l.eng.AfterDeliver(l.Delay, pkt, l.Next)
		return
	}
	if !l.qlimSet {
		// A Link built as a struct literal (bypassing NewLink) with a
		// positive Rate and an unset QueueLimit would otherwise tail-drop
		// every packet that finds the transmitter busy.
		l.qlimSet = true
		if l.QueueLimit == 0 {
			l.QueueLimit = defaultQueueLimit(l.Rate)
		}
	}
	if !l.busy {
		l.busy = true
		l.transmit(pkt)
		return
	}
	if l.queuedSize+pkt.Size > l.QueueLimit {
		l.Dropped++
		if l.OnDrop != nil {
			l.OnDrop(pkt, l.Name)
		}
		l.eng.FreePacket(pkt)
		return
	}
	pkt.QueuedFor -= l.eng.Now() // completed on dequeue
	l.queued.Push(pkt)
	l.queuedSize += pkt.Size
}

// Fluid returns the link's analytic fluid state, creating it on first use
// and switching the link to the hybrid path; the link must have finite
// bandwidth. Engage it before any packet has queued.
func (l *Link) Fluid() *FluidQueue {
	if l.fl == nil {
		if l.Rate <= 0 {
			panic("netsim: Fluid() on an infinite-bandwidth link")
		}
		if !l.qlimSet {
			l.qlimSet = true
			if l.QueueLimit == 0 {
				l.QueueLimit = defaultQueueLimit(l.Rate)
			}
		}
		l.fl = newFluidQueue(l.eng, l.Rate, 0, float64(l.QueueLimit))
	}
	return l.fl
}

// sendFluid folds a packet into the analytic FIFO backlog. The link
// serializes at exactly Rate whenever a backlog exists, so the departure
// offset (backlog+size)/rate is exact regardless of later arrivals.
func (l *Link) sendFluid(pkt *Packet) {
	f := l.fl
	f.advance(l.eng.Now())
	size := float64(pkt.Size)
	if f.backlog > 0 && f.backlog+size > f.limit {
		if !f.saturated() || !f.admitShare(size) {
			l.Dropped++
			if l.OnDrop != nil {
				l.OnDrop(pkt, l.Name)
			}
			l.eng.FreePacket(pkt)
			return
		}
		// Admitted under saturation: the packet joins behind the full
		// analytic backlog, displacing its size in fluid (admitShare
		// charged the displacement), so the backlog is left unchanged.
		wait := time.Duration(f.backlog / f.rate * float64(time.Second))
		f.arm()
		pkt.QueuedFor += wait
		l.Forwarded++
		l.eng.AfterDeliver(wait+time.Duration(size/f.rate*float64(time.Second))+l.Delay, pkt, l.Next)
		return
	}
	wait := time.Duration(f.backlog / f.rate * float64(time.Second))
	f.backlog += size
	f.arm()
	pkt.QueuedFor += wait
	l.Forwarded++
	l.eng.AfterDeliver(wait+time.Duration(size/f.rate*float64(time.Second))+l.Delay, pkt, l.Next)
}

func (l *Link) transmit(pkt *Packet) {
	txTime := time.Duration(float64(pkt.Size*8) / l.Rate * float64(time.Second))
	l.Forwarded++
	l.eng.AfterDeliver(txTime+l.Delay, pkt, l.Next)
	l.eng.afterCall(txTime, l, evLinkTransmitNext, 0)
}

// handle dispatches the link's interned engine callbacks.
func (l *Link) handle(kind eventKind, _ uint64) {
	if kind == evLinkTransmitNext {
		l.transmitNext()
	}
}

func (l *Link) transmitNext() {
	if l.queued.Len() == 0 {
		l.busy = false
		return
	}
	pkt := l.queued.Pop()
	l.queuedSize -= pkt.Size
	pkt.QueuedFor += l.eng.Now()
	l.transmit(pkt)
}

// QueueBytes returns the bytes currently queued (excluding the packet in
// transmission).
func (l *Link) QueueBytes() int { return l.queuedSize }
