package netsim

import (
	"testing"
	"time"
)

func TestScenarioTwoPathsShareCommonLimiter(t *testing.T) {
	var eng Engine
	rate := 4e6
	rtt := 40 * time.Millisecond
	sc := NewScenario(&eng, 1, CommonSpec{
		Limiter: &LimiterSpec{Rate: rate, Burst: BurstForRTT(rate, rtt)},
	},
		PathSpec{RTT: rtt},
		PathSpec{RTT: rtt},
	)
	flows := make([]*TCPFlow, 2)
	for i := range flows {
		cfg := TCPConfig{Pacing: true, Class: ClassDifferentiated, Stop: 20 * time.Second}
		flows[i] = NewTCPFlow(&eng, i+1, cfg, sc.Entry(i), sc.BackDelay(i))
		sc.Register(i+1, flows[i].Receiver())
	}
	for _, f := range flows {
		f.Start(0)
	}
	eng.Run(25 * time.Second)

	// The two flows share the 4 Mbit/s limiter: aggregate ≈ rate, and each
	// gets a nontrivial share.
	var agg float64
	for _, f := range flows {
		var bytes int64
		for _, d := range f.Delivered {
			if d.At >= 5*time.Second && d.At < 20*time.Second {
				bytes += int64(d.Bytes)
			}
		}
		share := float64(bytes) * 8 / 15
		agg += share
		if share < 0.5e6 {
			t.Errorf("flow starved: %.2f Mbit/s", share/1e6)
		}
	}
	if agg < 3.2e6 || agg > 4.4e6 {
		t.Errorf("aggregate = %.2f Mbit/s, want ≈4", agg/1e6)
	}
	if sc.TotalDrops("tbf_c") == 0 {
		t.Error("no drops at the common limiter")
	}
	if sc.TotalDrops("link_1")+sc.TotalDrops("link_2") != 0 {
		t.Error("unexpected drops on non-common links")
	}
}

func TestScenarioPathLocalBackgroundStaysOffCommonLink(t *testing.T) {
	var eng Engine
	sc := NewScenario(&eng, 2, CommonSpec{},
		PathSpec{RTT: 30 * time.Millisecond, Rate: 10e6, BgRate: 5e6},
		PathSpec{RTT: 30 * time.Millisecond},
	)
	// Count what crosses the common link by registering a catch-all flow.
	crossed := 0
	sc.Register(backgroundFlowID-1, HopFunc(func(*Packet) { crossed++ }))
	sc.StartBackground(0, 3*time.Second)
	eng.Run(4 * time.Second)
	if crossed != 0 {
		t.Errorf("%d path-local background packets crossed the join", crossed)
	}
	if sc.PathLink(0).Forwarded == 0 {
		t.Error("background did not traverse its own segment")
	}
}

func TestScenarioCommonBackgroundSharesLimiter(t *testing.T) {
	var eng Engine
	rate := 3e6
	sc := NewScenario(&eng, 3, CommonSpec{
		Limiter: &LimiterSpec{Rate: rate, Burst: 20000, Queue: 0},
		BgRate:  6e6, BgDiffFraction: 0.5,
	},
		PathSpec{RTT: 30 * time.Millisecond},
	)
	sc.StartBackground(0, 5*time.Second)
	eng.Run(6 * time.Second)
	if sc.CommonLim.Matched == 0 {
		t.Error("no background matched the differentiated class")
	}
	if sc.CommonLim.Bypassed == 0 {
		t.Error("no background bypassed the limiter")
	}
	if sc.TotalDrops("tbf_c") == 0 {
		t.Error("overloaded limiter did not drop")
	}
}

func TestScenarioRTTWiring(t *testing.T) {
	var eng Engine
	rtts := []time.Duration{10 * time.Millisecond, 120 * time.Millisecond}
	sc := NewScenario(&eng, 4, CommonSpec{},
		PathSpec{RTT: rtts[0]},
		PathSpec{RTT: rtts[1]},
	)
	for i, want := range rtts {
		i, want := i, want
		var flow *TCPFlow
		flow = NewTCPFlow(&eng, i+1, TCPConfig{Pacing: true, Bytes: 100 * 1400}, sc.Entry(i), sc.BackDelay(i))
		sc.Register(i+1, flow.Receiver())
		flow.Start(0)
		eng.Run(eng.Now() + 10*time.Second)
		if len(flow.RTTSamples) == 0 {
			t.Fatalf("path %d: no RTT samples", i)
		}
		minRTT := flow.RTTSamples[0]
		for _, s := range flow.RTTSamples {
			if s < minRTT {
				minRTT = s
			}
		}
		if minRTT != want {
			t.Errorf("path %d min RTT = %v, want %v", i, minRTT, want)
		}
		if got := sc.RTT(i); got != want {
			t.Errorf("RTT(%d) = %v", i, got)
		}
	}
}

func TestScenarioPathLimiters(t *testing.T) {
	var eng Engine
	spec := &LimiterSpec{Rate: 2e6, Burst: 10000, Queue: 0}
	sc := NewScenario(&eng, 5, CommonSpec{},
		PathSpec{RTT: 30 * time.Millisecond, Limiter: spec},
		PathSpec{RTT: 30 * time.Millisecond, Limiter: spec},
	)
	if sc.PathLimiter(0) == nil || sc.PathLimiter(1) == nil {
		t.Fatal("path limiters not installed")
	}
	if sc.CommonLim != nil {
		t.Fatal("unexpected common limiter")
	}
	var flow *UDPFlow
	flow = NewUDPFlow(&eng, 1, ClassDifferentiated, sc.Entry(0))
	sc.Register(1, flow.Receiver())
	// 4 Mbit/s offered against a 2 Mbit/s limiter on l_1.
	eng.Schedule(0, func() {})
	for i := 0; i < 4000; i++ {
		i := i
		eng.Schedule(time.Duration(i)*2*time.Millisecond, func() { flow.transmit(int64(i), 1000) })
	}
	flow.totalScheduled = 4000
	eng.Run(10 * time.Second)
	flow.Finish(eng.Now())
	if got := flow.LossRate(); got < 0.3 || got > 0.7 {
		t.Errorf("loss rate through path limiter = %v, want ≈0.5", got)
	}
	if sc.TotalDrops("tbf_1") == 0 {
		t.Error("drops not attributed to tbf_1")
	}
}
