package netsim

import (
	"time"

	"github.com/nal-epfl/wehey/internal/trace"
)

// UDPFlow replays the server→client packets of a UDP trace over a path.
// The client side detects loss from sequence gaps (§3.4: for UDP traces,
// the client tracks packet loss), registering each missing packet at the
// moment the gap becomes observable — the arrival of the next packet.
type UDPFlow struct {
	ID int
	// PolicyKey, when set, stamps packets with a per-flow policy identity
	// (the §7 merged-replay modification; see Packet.PolicyKey).
	PolicyKey string

	eng   *Engine
	fwd   Hop
	class Class

	totalScheduled int64
	expected       int64 // next seq the client expects

	// Measurement logs.
	TxLog     []time.Duration
	LossLog   []time.Duration
	Delivered []DeliveryEvent
	SentCount int64
	RecvCount int64
}

// NewUDPFlow creates a UDP replay flow for tr's server→client packets.
func NewUDPFlow(eng *Engine, id int, class Class, fwd Hop) *UDPFlow {
	return &UDPFlow{ID: id, eng: eng, fwd: fwd, class: class}
}

// Receiver returns the client-side hop terminating the forward path.
func (f *UDPFlow) Receiver() Hop {
	return HopFunc(f.onData)
}

// Start schedules the replay of tr beginning at time at. Only
// ServerToClient packets are transmitted. Each transmission is a typed
// event carrying (seq, size) packed into its argument — no closure and no
// packet allocation until the moment of send.
func (f *UDPFlow) Start(tr *trace.Trace, at time.Duration) {
	seq := int64(0)
	for i := range tr.Packets {
		p := &tr.Packets[i]
		if p.Dir != trace.ServerToClient {
			continue
		}
		// seq in the high 32 bits, size in the low 32 (trace packets are
		// bounded by the MTU, far below 2^32).
		f.eng.scheduleCall(at+p.Offset, f, evUDPSend, uint64(seq)<<32|uint64(uint32(p.Size)))
		seq++
	}
	f.totalScheduled = seq
	// The delivery log's final size is bounded by the send count, so size
	// it once instead of letting append double its way up.
	if f.Delivered == nil && seq > 0 {
		f.Delivered = make([]DeliveryEvent, 0, seq)
	}
}

// handle dispatches the flow's interned engine callbacks.
func (f *UDPFlow) handle(kind eventKind, arg uint64) {
	if kind == evUDPSend {
		f.transmit(int64(arg>>32), int(uint32(arg)))
	}
}

func (f *UDPFlow) transmit(seq int64, size int) {
	now := f.eng.Now()
	f.SentCount++
	f.TxLog = append(f.TxLog, now)
	pkt := f.eng.AllocPacket()
	pkt.Flow = f.ID
	pkt.Seq = seq
	pkt.Size = size
	pkt.Class = f.class
	pkt.SentAt = now
	pkt.PolicyKey = f.PolicyKey
	f.fwd.Send(pkt)
}

func (f *UDPFlow) onData(pkt *Packet) {
	now := f.eng.Now()
	// Sequence-gap loss detection: everything between the expected and the
	// arrived seq was dropped in flight (paths are FIFO, no reordering).
	for s := f.expected; s < pkt.Seq; s++ {
		f.LossLog = append(f.LossLog, now)
	}
	if pkt.Seq >= f.expected {
		f.expected = pkt.Seq + 1
	}
	f.RecvCount++
	f.Delivered = append(f.Delivered, DeliveryEvent{At: now, Bytes: pkt.Size})
	f.eng.FreePacket(pkt) // terminal hop: recycle
}

// Finish registers tail losses (packets after the last arrival) at time at.
// Call it once the replay and the pipe have drained.
func (f *UDPFlow) Finish(at time.Duration) {
	for s := f.expected; s < f.totalScheduled; s++ {
		f.LossLog = append(f.LossLog, at)
	}
	f.expected = f.totalScheduled
}

// LossRate returns the overall fraction of replayed packets lost.
func (f *UDPFlow) LossRate() float64 {
	if f.SentCount == 0 {
		return 0
	}
	return float64(len(f.LossLog)) / float64(f.SentCount)
}

// DeliveredBytes returns the total bytes delivered to the client.
func (f *UDPFlow) DeliveredBytes() int64 {
	var total int64
	for _, d := range f.Delivered {
		total += int64(d.Bytes)
	}
	return total
}
