package netsim

import (
	"math/rand"
	"time"
)

// This file implements the hybrid fluid/packet mode (DESIGN.md §14): the
// background aggregate at a bottleneck is a piecewise-constant fluid rate
// process integrated in closed form, while foreground traffic stays
// packet-granular. Between rate changes the token level, queue occupancy,
// and fluid loss of a TBF or FIFO queue evolve through at most three
// analytic phases (token accumulation/burn, queue fill/drain, saturation
// overflow) — the same derivation as twin.PredictTBF, applied incrementally.
// A foreground packet arriving mid-interval is folded into the analytic
// backlog, so its loss/delay is per-packet exact: while a backlog exists the
// service rate is deterministically the token rate, hence the packet's
// departure offset backlog/rate cannot be changed by later arrivals.

// FluidQueue is the analytic state a RateLimiter or Link integrates fluid
// inflow into. Obtain one via RateLimiter.Fluid or Link.Fluid; feed it with
// AddSource/SetSource. All rates in the public API are bits/s like the rest
// of the package; internal state is bytes and bytes/s.
type FluidQueue struct {
	eng *Engine

	rate  float64 // service/token rate, bytes/s; <= 0 = blackhole bucket
	burst float64 // token bucket size, bytes (0 for a plain FIFO link)
	limit float64 // queue capacity, bytes (<= 0 = pure policer)

	src []float64 // per-source inflow, bytes/s
	in  float64   // sum of src

	tokens  float64 // current token level, bytes
	backlog float64 // current queue occupancy, bytes (fluid + folded fg)
	last    time.Duration

	offered float64 // cumulative fluid bytes offered
	dropped float64 // cumulative fluid bytes lost

	// Optional downstream coupling: a limiter discharging into a finite
	// link propagates its analytic output rate as one of the link's fluid
	// sources, re-evaluated at phase crossings.
	down     *FluidQueue
	downID   int
	phaseSeq uint64

	// fgDebt accumulates the foreground drop probability under fluid
	// saturation (see admitShare).
	fgDebt float64

	// Events counts phase-crossing bookkeeping events processed.
	Events int64
}

func newFluidQueue(eng *Engine, rate, burst, limit float64) *FluidQueue {
	return &FluidQueue{eng: eng, rate: rate / 8, burst: burst, limit: limit, tokens: burst}
}

// FluidStats is a byte-accounting snapshot of a FluidQueue.
type FluidStats struct {
	OfferedBytes float64 // cumulative fluid bytes offered
	DroppedBytes float64 // cumulative fluid bytes lost
	BacklogBytes float64 // current queue occupancy (fluid + folded foreground)
	TokenBytes   float64 // current token level
}

// Stats advances the integrator to now and returns the cumulative fluid
// byte accounting plus the instantaneous analytic state.
func (f *FluidQueue) Stats(now time.Duration) FluidStats {
	f.advance(now)
	return FluidStats{
		OfferedBytes: f.offered,
		DroppedBytes: f.dropped,
		BacklogBytes: f.backlog,
		TokenBytes:   f.tokens,
	}
}

// AddSource registers a fluid inflow (initially zero) and returns its
// handle for SetSource.
func (f *FluidQueue) AddSource() int {
	f.src = append(f.src, 0)
	return len(f.src) - 1
}

// SetSource updates source id's inflow to rate bits/s. The integrator is
// advanced to the present first, so inflow is piecewise-constant with
// breakpoints exactly at the SetSource calls.
func (f *FluidQueue) SetSource(id int, rate float64) {
	f.setSourceBytes(id, rate/8)
}

func (f *FluidQueue) setSourceBytes(id int, bps float64) {
	f.advance(f.eng.Now())
	if bps < 0 {
		bps = 0
	}
	f.src[id] = bps
	sum := 0.0
	for _, s := range f.src {
		sum += s
	}
	f.in = sum
	f.arm()
}

// FeedsInto routes this queue's analytic output rate into a downstream
// fluid queue (a limiter discharging into a finite link). Phase-crossing
// events keep the coupling piecewise-constant.
func (f *FluidQueue) FeedsInto(down *FluidQueue) {
	if f.down == down {
		return
	}
	if f.down != nil {
		panic("netsim: FluidQueue already feeds a different downstream queue")
	}
	f.down = down
	f.downID = down.AddSource()
	f.arm()
}

// advance integrates the fluid state forward to now under the current
// constant inflow. The evolution passes through at most two phase
// transitions (backlog empties into the token phase, or tokens exhaust
// into the backlog phase), each handled in closed form.
func (f *FluidQueue) advance(now time.Duration) {
	dt := (now - f.last).Seconds()
	if dt <= 0 {
		return // never rewind: a stale caller must not reset the epoch
	}
	f.last = now
	in := f.in
	f.offered += in * dt

	if f.rate <= 0 {
		// Blackhole bucket (tc-tbf rate 0, kept constructible like the
		// packet path): inflow passes while the initial burst lasts, then
		// everything is lost; a backlog never forms.
		if in <= 0 {
			return
		}
		if f.tokens > 0 {
			te := f.tokens / in
			if te >= dt {
				f.tokens -= in * dt
				return
			}
			f.tokens = 0
			dt -= te
		}
		f.dropped += in * dt
		return
	}

	if f.backlog > 0 {
		net := in - f.rate
		if net > 0 {
			// Queue filling toward the limit, overflow past it.
			if f.backlog >= f.limit {
				f.backlog = f.limit
				f.dropped += net * dt
				return
			}
			tf := (f.limit - f.backlog) / net
			if tf >= dt {
				f.backlog += net * dt
				return
			}
			f.backlog = f.limit
			f.dropped += net * (dt - tf)
			return
		}
		// Queue draining (net <= 0; net == 0 holds the backlog flat and
		// lands in the tq >= dt branch via +Inf).
		drain := -net
		tq := f.backlog / drain
		if tq >= dt {
			f.backlog -= drain * dt
			return
		}
		f.backlog = 0
		dt -= tq
		// Fall through to the token phase for the remainder.
	}

	// Empty queue: the token bucket absorbs the rate difference.
	net := f.rate - in
	if net >= 0 {
		f.tokens += net * dt
		if f.tokens > f.burst {
			f.tokens = f.burst
		}
		return
	}
	excess := -net
	if f.tokens > 0 {
		te := f.tokens / excess
		if te >= dt {
			f.tokens -= excess * dt
			return
		}
		f.tokens = 0
		dt -= te
	}
	if f.limit <= 0 {
		// Pure policer: excess fluid is lost the instant tokens run out.
		f.dropped += excess * dt
		return
	}
	// Backlog grows from empty; inflow is constant, so once filling
	// starts it continues to the limit, then overflows.
	tf := f.limit / excess
	if tf >= dt {
		f.backlog = excess * dt
		return
	}
	f.backlog = f.limit
	f.dropped += excess * (dt - tf)
}

// saturated reports whether fluid inflow alone exceeds the service rate —
// the regime where the analytic backlog (or token deficit) pegs at its
// bound and discrete foreground arrivals must compete with fluid for
// admission rather than finding the queue literally full forever.
func (f *FluidQueue) saturated() bool { return f.rate > 0 && f.in > f.rate }

// admitShare decides a foreground packet's fate while the queue is
// saturated. A packet-granular FIFO at overload shares its capacity
// proportionally among all arrival streams, so the packet is admitted with
// the aggregate's admitted fraction rate/in; pure fluid occupancy would
// instead starve every discrete arrival (the backlog never dips below the
// limit), which is the one place the fluid abstraction is structurally
// unfair. The decision is deterministic — a drop-debt accumulator rather
// than a coin flip — so identical runs stay identical. An admitted packet
// displaces its own size in fluid, which is charged to fluid loss: the
// shared queue's byte conservation holds in both modes.
func (f *FluidQueue) admitShare(size float64) bool {
	f.fgDebt += 1 - f.rate/f.in
	if f.fgDebt >= 1 {
		f.fgDebt--
		return false
	}
	f.dropped += size
	return true
}

// outRate is the analytic output rate under the current state: the service
// rate while a backlog drains, the inflow while it passes on tokens or
// spare capacity, and the smaller of the two otherwise.
func (f *FluidQueue) outRate() float64 {
	if f.backlog > 0 {
		return f.rate
	}
	if f.tokens > 0 {
		return f.in
	}
	if f.in < f.rate {
		return f.in
	}
	return f.rate
}

// arm refreshes the downstream coupling and schedules a re-evaluation at
// the next analytic phase crossing. With no downstream queue there is
// nothing to propagate and no event is scheduled: the integration itself
// is exact over arbitrarily long constant-inflow intervals.
func (f *FluidQueue) arm() {
	if f.down == nil {
		return
	}
	f.down.setSourceBytes(f.downID, f.outRate())
	var dt float64
	switch {
	case f.backlog > 0 && f.in < f.rate:
		dt = f.backlog / (f.rate - f.in)
	case f.backlog <= 0 && f.tokens > 0 && f.in > f.rate:
		dt = f.tokens / (f.in - f.rate)
	default:
		return
	}
	f.phaseSeq++
	f.eng.afterCall(time.Duration(dt*float64(time.Second))+time.Nanosecond,
		f, evFluidPhase, f.phaseSeq)
}

// handle dispatches the queue's phase-crossing callbacks.
func (f *FluidQueue) handle(kind eventKind, arg uint64) {
	if kind != evFluidPhase || arg != f.phaseSeq {
		return // stale crossing: state changed since it was scheduled
	}
	f.Events++
	f.advance(f.eng.Now())
	f.arm()
}

// fluidStopArg marks a fluid source's scheduled stop event.
const fluidStopArg = 1

// FluidBackground drives the same mean-reverting rate walk as Background
// but emits no packets: it pushes the instantaneous aggregate rate into
// fluid queues as piecewise-constant inflow — one coarse event per
// ModPeriod instead of one per packet.
type FluidBackground struct {
	eng *Engine
	cfg BackgroundConfig
	rng *rand.Rand

	diff, def     *FluidQueue // either may be nil (class crosses no constrained hop)
	diffID, defID int

	factor  float64
	stopped bool

	// Events counts the coarse rate-update events processed.
	Events int64
}

// NewFluidBackground creates a fluid twin of Background: diff receives the
// differentiated share MeanRate×DiffFraction, def the remainder. Either
// queue may be nil; if both name the same queue the full rate lands on it
// through a single source. Call Start.
func NewFluidBackground(eng *Engine, cfg BackgroundConfig, rng *rand.Rand, diff, def *FluidQueue) (*FluidBackground, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.fill()
	b := &FluidBackground{eng: eng, cfg: cfg, rng: rng, diff: diff, def: def, factor: 1}
	if diff != nil {
		b.diffID = diff.AddSource()
	}
	if def != nil && def != diff {
		b.defID = def.AddSource()
	}
	return b, nil
}

// Start begins the rate process at time at; the contribution is zeroed at
// cfg.Stop.
func (b *FluidBackground) Start(at time.Duration) {
	b.eng.scheduleCall(at, b, evFluidModulate, 0)
	b.eng.scheduleCall(b.cfg.Stop, b, evFluidModulate, fluidStopArg)
}

// handle dispatches the source's interned engine callbacks.
func (b *FluidBackground) handle(kind eventKind, arg uint64) {
	if kind != evFluidModulate {
		return
	}
	b.Events++
	if arg == fluidStopArg || b.eng.Now() >= b.cfg.Stop {
		if !b.stopped {
			b.stopped = true
			b.push(0)
		}
		return
	}
	b.modulate()
}

// modulate re-draws the rate multiplier — the identical mean-reverting
// walk Background.modulate runs — and pushes the new aggregate rate.
func (b *FluidBackground) modulate() {
	const theta = 0.25 // reversion strength toward 1
	sigma := b.cfg.ModSpread / 2
	b.factor += -theta*(b.factor-1) + b.rng.NormFloat64()*sigma
	lo, hi := 1-b.cfg.ModSpread, 1+b.cfg.ModSpread
	if b.factor < lo {
		b.factor = lo
	}
	if b.factor > hi {
		b.factor = hi
	}
	b.push(b.cfg.MeanRate * b.factor)
	b.eng.afterCall(b.cfg.ModPeriod, b, evFluidModulate, 0)
}

// push splits rate (bits/s) across the class targets.
func (b *FluidBackground) push(rate float64) {
	if b.diff == b.def {
		if b.diff != nil {
			b.diff.SetSource(b.diffID, rate)
		}
		return
	}
	diffRate := rate * b.cfg.DiffFraction
	if b.diff != nil {
		b.diff.SetSource(b.diffID, diffRate)
	}
	if b.def != nil {
		b.def.SetSource(b.defID, rate-diffRate)
	}
}

// FluidChurn is the fluid twin of Churn: Poisson flow arrivals with
// bounded-Pareto sizes, but each flow contributes PerFlowRate of
// piecewise-constant fluid at its path's constrained hop for
// size×8/PerFlowRate instead of sending packets. The population dynamics —
// hence the demand trend at the bottleneck — are preserved; per-flow TCP
// loss adaptation is not (DESIGN.md §14 lists this as a fidelity limit).
type FluidChurn struct {
	eng *Engine
	cfg ChurnConfig
	rng *rand.Rand

	targets []*FluidQueue // per round-robin slot; nil = unconstrained path
	srcIDs  []int
	rates   []float64 // per-slot aggregate demand, bits/s

	stopped bool

	// Counters. Active/MaxActive expose the concurrent flow population —
	// the ~400-flow operating point of the paper's CAIDA aggregate.
	Arrived   int64
	Bytes     int64
	Active    int64
	MaxActive int64
	Events    int64
}

// NewFluidChurn creates a fluid churn source whose flows enter through the
// constrained hops of the scenario's given path indices (round-robin).
func NewFluidChurn(eng *Engine, cfg ChurnConfig, rng *rand.Rand, sc *Scenario, pathIdx []int) (*FluidChurn, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.fill()
	c := &FluidChurn{eng: eng, cfg: cfg, rng: rng}
	for _, idx := range pathIdx {
		q := sc.FluidEntry(idx)
		id := -1
		if q != nil {
			id = q.AddSource()
		}
		c.targets = append(c.targets, q)
		c.srcIDs = append(c.srcIDs, id)
		c.rates = append(c.rates, 0)
	}
	return c, nil
}

// Start schedules the first arrival; arrivals cease and all contributions
// zero at cfg.Stop (matching packet-mode churn flows, whose TCP senders
// stop at the same instant).
func (c *FluidChurn) Start(at time.Duration) {
	if len(c.targets) == 0 {
		return
	}
	c.eng.scheduleCall(at, c, evFluidArrive, 0)
	c.eng.scheduleCall(c.cfg.Stop, c, evFluidArrive, fluidStopArg)
}

// handle dispatches the source's interned engine callbacks.
func (c *FluidChurn) handle(kind eventKind, arg uint64) {
	switch kind {
	case evFluidArrive:
		c.Events++
		if arg == fluidStopArg || c.eng.Now() >= c.cfg.Stop {
			c.stop()
			return
		}
		c.arrive()
	case evFluidDepart:
		c.Events++
		c.depart(int(arg))
	}
}

func (c *FluidChurn) stop() {
	if c.stopped {
		return
	}
	c.stopped = true
	for i, q := range c.targets {
		if q != nil && c.rates[i] > 0 {
			c.rates[i] = 0
			q.SetSource(c.srcIDs[i], 0)
		}
	}
	c.Active = 0
}

func (c *FluidChurn) arrive() {
	size := c.cfg.drawBytes(c.rng)
	slot := int(c.Arrived) % len(c.targets)
	c.Arrived++
	c.Bytes += size
	c.Active++
	if c.Active > c.MaxActive {
		c.MaxActive = c.Active
	}
	c.rates[slot] += c.cfg.PerFlowRate
	if q := c.targets[slot]; q != nil {
		q.SetSource(c.srcIDs[slot], c.rates[slot])
	}
	life := time.Duration(float64(size) * 8 / c.cfg.PerFlowRate * float64(time.Second))
	c.eng.afterCall(life, c, evFluidDepart, uint64(slot))

	// Poisson arrivals sized so mean demand = MeanRate, exactly as Churn.
	meanGap := c.cfg.meanFlowBytes() * 8 / c.cfg.MeanRate
	gap := time.Duration(c.rng.ExpFloat64() * meanGap * float64(time.Second))
	if gap <= 0 {
		gap = time.Millisecond
	}
	c.eng.afterCall(gap, c, evFluidArrive, 0)
}

func (c *FluidChurn) depart(slot int) {
	if c.stopped {
		return
	}
	c.Active--
	c.rates[slot] -= c.cfg.PerFlowRate
	if c.rates[slot] < 0 {
		c.rates[slot] = 0
	}
	if q := c.targets[slot]; q != nil {
		q.SetSource(c.srcIDs[slot], c.rates[slot])
	}
}
