package netsim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

// drainHeap pops every event and returns the observed (at, seq) order.
func drainHeap(eng *Engine) []event {
	out := make([]event, 0, len(eng.pq))
	for len(eng.pq) > 0 {
		out = append(out, eng.pop())
	}
	return out
}

// TestHeapPopOrderMatchesSort pins the 4-ary heap's pop order against the
// reference total order — sort by (at, seq) — on random workloads.
func TestHeapPopOrderMatchesSort(t *testing.T) {
	f := func(raw []uint16) bool {
		var eng Engine
		type key struct {
			at  time.Duration
			seq uint64
		}
		want := make([]key, 0, len(raw))
		for _, v := range raw {
			at := time.Duration(v) * time.Microsecond
			eng.push(at, event{kind: evFunc, fn: func() {}})
			want = append(want, key{at: at, seq: eng.seq})
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].at != want[j].at {
				return want[i].at < want[j].at
			}
			return want[i].seq < want[j].seq
		})
		got := drainHeap(&eng)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].at != want[i].at || got[i].seq != want[i].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestHeapInterleavedPushPop exercises mixed push/pop sequences (the
// steady-state shape of a simulation run) against a linear-scan reference.
func TestHeapInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var eng Engine
	type key struct {
		at  time.Duration
		seq uint64
	}
	var live []key
	popMin := func() key {
		mi := 0
		for i, k := range live {
			if k.at < live[mi].at || (k.at == live[mi].at && k.seq < live[mi].seq) {
				mi = i
			}
		}
		k := live[mi]
		live = append(live[:mi], live[mi+1:]...)
		return k
	}
	for step := 0; step < 5000; step++ {
		if len(eng.pq) == 0 || rng.Intn(3) > 0 {
			at := time.Duration(rng.Intn(1000)) * time.Millisecond
			eng.push(at, event{kind: evFunc, fn: func() {}})
			live = append(live, key{at: at, seq: eng.seq})
		} else {
			want := popMin()
			got := eng.pop()
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("step %d: popped (%v, %d), want (%v, %d)",
					step, got.at, got.seq, want.at, want.seq)
			}
		}
	}
	for _, got := range drainHeap(&eng) {
		want := popMin()
		if got.at != want.at || got.seq != want.seq {
			t.Fatalf("drain: popped (%v, %d), want (%v, %d)",
				got.at, got.seq, want.at, want.seq)
		}
	}
}

// FuzzHeapPopOrder feeds arbitrary byte strings as event-time workloads
// and checks the pop order is the reference (at, seq) sort.
func FuzzHeapPopOrder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{5, 3, 3, 1, 255, 0, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		var eng Engine
		for _, b := range data {
			eng.push(time.Duration(b)*time.Microsecond, event{kind: evFunc, fn: func() {}})
		}
		var prev event
		for i, got := range drainHeap(&eng) {
			if i > 0 && !eventLess(&prev, &got) {
				t.Fatalf("pop %d: (%v, %d) not after (%v, %d)",
					i, got.at, got.seq, prev.at, prev.seq)
			}
			prev = got
		}
	})
}
