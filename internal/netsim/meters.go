package netsim

import (
	"time"

	"github.com/nal-epfl/wehey/internal/measure"
)

// Measurements converts a TCP flow's logs into the transport-agnostic
// measurement record consumed by the detection algorithms. Times are
// rebased to start.
func (f *TCPFlow) Measurements(start, dur time.Duration, rtt time.Duration) measure.Path {
	return measure.Path{
		RTT:      rtt,
		Duration: dur,
		Tx:       rebase(f.TxLog, start),
		Loss:     rebase(f.LossLog, start),
	}
}

// Deliveries converts the flow's client-side arrivals to measure events
// rebased to start.
func (f *TCPFlow) Deliveries(start time.Duration) []measure.Delivery {
	return deliveries(f.Delivered, start)
}

// Measurements converts a UDP flow's logs into the measurement record.
func (f *UDPFlow) Measurements(start, dur time.Duration, rtt time.Duration) measure.Path {
	return measure.Path{
		RTT:      rtt,
		Duration: dur,
		Tx:       rebase(f.TxLog, start),
		Loss:     rebase(f.LossLog, start),
	}
}

// Deliveries converts the flow's client-side arrivals to measure events
// rebased to start.
func (f *UDPFlow) Deliveries(start time.Duration) []measure.Delivery {
	return deliveries(f.Delivered, start)
}

func rebase(ts []time.Duration, start time.Duration) []time.Duration {
	out := make([]time.Duration, 0, len(ts))
	for _, t := range ts {
		if t >= start {
			out = append(out, t-start)
		}
	}
	return out
}

func deliveries(evs []DeliveryEvent, start time.Duration) []measure.Delivery {
	out := make([]measure.Delivery, 0, len(evs))
	for _, e := range evs {
		if e.At >= start {
			out = append(out, measure.Delivery{At: e.At - start, Bytes: e.Bytes})
		}
	}
	return out
}
