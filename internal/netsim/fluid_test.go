package netsim

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"
)

func near(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	diff := math.Abs(got - want)
	scale := math.Abs(want)
	if scale < 1 {
		scale = 1
	}
	if diff > relTol*scale {
		t.Errorf("%s = %v, want %v (rel tol %v)", name, got, want, relTol)
	}
}

// setIn changes a queue's inflow directly at an arbitrary synthetic time,
// bypassing SetSource's engine-clock advance — unit tests drive the
// integrator on their own timeline.
func setIn(f *FluidQueue, at time.Duration, bitsPerSec float64) {
	f.advance(at)
	f.in = bitsPerSec / 8
}

// TestFluidIntegratorPolicer checks the closed-form phases of a pure
// policer: token burn, then steady overflow loss.
func TestFluidIntegratorPolicer(t *testing.T) {
	var eng Engine
	// 8 Mbit/s service (1e6 B/s), 50 KB burst, no queue.
	q := newFluidQueue(&eng, 8e6, 50e3, 0)
	setIn(q, 0, 16e6) // 2e6 B/s offered: excess 1e6 B/s
	st := q.Stats(time.Second)
	// Tokens last 50e3/1e6 = 50 ms; the remaining 950 ms loses 1e6 B/s.
	near(t, "offered", st.OfferedBytes, 2e6, 1e-9)
	near(t, "dropped", st.DroppedBytes, 950e3, 1e-9)
	near(t, "backlog", st.BacklogBytes, 0, 1e-9)
	near(t, "tokens", st.TokenBytes, 0, 1e-9)
}

// TestFluidIntegratorShaper checks fill, saturation, drain, and token
// recovery of a finite-queue TBF.
func TestFluidIntegratorShaper(t *testing.T) {
	var eng Engine
	// 1e6 B/s service, 50 KB burst, 100 KB queue.
	q := newFluidQueue(&eng, 8e6, 50e3, 100e3)
	setIn(q, 0, 16e6) // 2e6 B/s
	// Phase walk: 50 ms token burn, 100 ms queue fill, then overflow at
	// 1e6 B/s for the remaining 850 ms.
	st := q.Stats(time.Second)
	near(t, "backlog@1s", st.BacklogBytes, 100e3, 1e-9)
	near(t, "dropped@1s", st.DroppedBytes, 850e3, 1e-9)

	// Inflow drops to 3.2 Mbit/s (0.4e6 B/s): backlog drains at 0.6e6 B/s
	// (empty after 166.7 ms), then tokens recover at 0.6e6 B/s to the
	// 50 KB cap.
	setIn(q, time.Second, 3.2e6)
	st = q.Stats(2 * time.Second)
	near(t, "backlog@2s", st.BacklogBytes, 0, 1e-9)
	near(t, "dropped@2s", st.DroppedBytes, 850e3, 1e-9)
	near(t, "tokens@2s", st.TokenBytes, 50e3, 1e-9)
}

// TestFluidIntegratorStepInvariance: integrating the same piecewise-
// constant inflow with fine steps or only at the change points must give
// identical state — the closed form is exact over any partition.
func TestFluidIntegratorStepInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var engA, engB Engine
	coarse := newFluidQueue(&engA, 10e6, 40e3, 80e3)
	fine := newFluidQueue(&engB, 10e6, 40e3, 80e3)

	now := time.Duration(0)
	for step := 0; step < 50; step++ {
		rate := rng.Float64() * 25e6 // swings across under- and overload
		setIn(coarse, now, rate)
		setIn(fine, now, rate)
		hold := time.Duration(1+rng.Intn(400)) * time.Millisecond
		// The fine queue advances in 17 unequal sub-steps.
		for k := 1; k <= 17; k++ {
			fine.advance(now + hold*time.Duration(k)/17)
		}
		now += hold
		coarse.advance(now)
		fine.advance(now)
	}
	near(t, "offered", fine.offered, coarse.offered, 1e-9)
	near(t, "dropped", fine.dropped, coarse.dropped, 1e-9)
	near(t, "backlog", fine.backlog, coarse.backlog, 1e-9)
	near(t, "tokens", fine.tokens, coarse.tokens, 1e-9)
}

// TestFluidIntegratorBlackhole: a zero-rate bucket passes the burst then
// loses everything, forming no backlog — mirroring the packet path's
// zero-rate TBF semantics.
func TestFluidIntegratorBlackhole(t *testing.T) {
	var eng Engine
	q := newFluidQueue(&eng, 0, 30e3, 50e3)
	setIn(q, 0, 8e6) // 1e6 B/s
	st := q.Stats(time.Second)
	near(t, "dropped", st.DroppedBytes, 970e3, 1e-9) // 30 ms of tokens, then loss
	near(t, "backlog", st.BacklogBytes, 0, 1e-9)
}

// TestTBFFluidForegroundExactness: with no fluid inflow at all, a
// fluid-engaged TBF must forward, delay, and drop a deterministic packet
// sequence exactly like the packet-mode TBF (modulo sub-microsecond event
// rounding) — foreground behavior is per-packet exact, not approximate.
func TestTBFFluidForegroundExactness(t *testing.T) {
	type delivery struct {
		at     time.Duration
		queued time.Duration
	}
	run := func(fluid bool) (deliveries []delivery, dropped int64) {
		var eng Engine
		var got []delivery
		sink := HopFunc(func(pkt *Packet) {
			got = append(got, delivery{at: eng.Now(), queued: pkt.QueuedFor})
			eng.FreePacket(pkt)
		})
		// 4 Mbit/s TBF, small burst, generous queue (the fluid backlog
		// excludes the token-covered prefix, so near-limit admission can
		// legitimately differ; a generous queue isolates timing equality).
		rl := NewRateLimiter(&eng, "tbf", 4e6, 3000, 1<<20, sink)
		if fluid {
			rl.Fluid()
		}
		// 1200-byte CBR at 8 Mbit/s for 100 packets: overload, pure shaping.
		for i := 0; i < 100; i++ {
			at := time.Duration(i) * 1200 * 8 * time.Microsecond / 8 // 1.2 ms spacing
			eng.Schedule(at, func() {
				pkt := eng.AllocPacket()
				pkt.Flow = 1
				pkt.Size = 1200
				pkt.Class = ClassDifferentiated
				rl.Send(pkt)
			})
		}
		eng.Run(10 * time.Second)
		eng.Release()
		return got, rl.Dropped
	}

	pkt, pktDrops := run(false)
	fl, flDrops := run(true)
	if len(pkt) != len(fl) || pktDrops != flDrops {
		t.Fatalf("packet mode delivered %d (dropped %d), fluid delivered %d (dropped %d)",
			len(pkt), pktDrops, len(fl), flDrops)
	}
	const slack = 2 * time.Microsecond // packet drain events round up by 1 ns per hop
	for i := range pkt {
		if d := pkt[i].at - fl[i].at; d < -slack || d > slack {
			t.Fatalf("delivery %d at %v (packet) vs %v (fluid)", i, pkt[i].at, fl[i].at)
		}
		if d := pkt[i].queued - fl[i].queued; d < -slack || d > slack {
			t.Fatalf("delivery %d queued %v (packet) vs %v (fluid)", i, pkt[i].queued, fl[i].queued)
		}
	}
}

// TestLinkFluidForegroundExactness mirrors the TBF test for a FIFO link.
func TestLinkFluidForegroundExactness(t *testing.T) {
	run := func(fluid bool) (times []time.Duration, dropped int64) {
		var eng Engine
		var got []time.Duration
		sink := HopFunc(func(pkt *Packet) {
			got = append(got, eng.Now())
			eng.FreePacket(pkt)
		})
		l := NewLink(&eng, "link", 10e6, 2*time.Millisecond, sink)
		l.QueueLimit = 1 << 20
		if fluid {
			l.Fluid()
		}
		for i := 0; i < 80; i++ {
			at := time.Duration(i) * 700 * time.Microsecond
			eng.Schedule(at, func() {
				pkt := eng.AllocPacket()
				pkt.Flow = 1
				pkt.Size = 1400
				rl := l // capture
				rl.Send(pkt)
			})
		}
		eng.Run(5 * time.Second)
		eng.Release()
		return got, l.Dropped
	}
	pkt, pktDrops := run(false)
	fl, flDrops := run(true)
	if len(pkt) != len(fl) || pktDrops != flDrops {
		t.Fatalf("packet delivered %d (dropped %d), fluid %d (%d)", len(pkt), pktDrops, len(fl), flDrops)
	}
	const slack = 2 * time.Microsecond
	for i := range pkt {
		if d := pkt[i] - fl[i]; d < -slack || d > slack {
			t.Fatalf("delivery %d at %v (packet) vs %v (fluid)", i, pkt[i], fl[i])
		}
	}
}

// TestFluidScenarioSmoke runs the full Figure-1 wiring in fluid mode:
// fluid loss must fold into the drop log under the packet-mode hop names,
// and the bookkeeping event count must be far below the per-packet count
// the same background would cost.
func TestFluidScenarioSmoke(t *testing.T) {
	var eng Engine
	spec := CommonSpec{
		Rate:           40e6,
		Limiter:        &LimiterSpec{Rate: 12e6, Burst: 60e3, Queue: 30e3},
		BgRate:         20e6,
		BgDiffFraction: 0.8,
	}
	sc := NewScenarioMode(&eng, 42, BGFluid, spec,
		PathSpec{RTT: 30 * time.Millisecond},
	)
	sc.StartBackground(0, 10*time.Second)
	events := eng.Run(12 * time.Second)
	sc.FinishFluid(12 * time.Second)
	eng.Release()

	if sc.DropLog["tbf_c"] == 0 {
		t.Error("fluid overload produced no folded drops at tbf_c")
	}
	if n := sc.FluidEvents(); n == 0 || n > 2000 {
		t.Errorf("fluid bookkeeping events = %d, want coarse-grained (0 < n <= 2000)", n)
	}
	// 20 Mbit/s of ~941-byte packets for 10 s would be ~265k packet events
	// at minimum; the whole fluid run must stay orders of magnitude under.
	if events > 20000 {
		t.Errorf("fluid-mode run processed %d events, want ~hundreds", events)
	}
}

// TestFluidChurnPopulation: the fluid churn's flow population must reach a
// steady state near MeanRate/PerFlowRate and zero out at Stop.
func TestFluidChurnPopulation(t *testing.T) {
	var eng Engine
	sc := NewScenarioMode(&eng, 3, BGFluid, CommonSpec{
		Limiter: &LimiterSpec{Rate: 50e6, Burst: 100e3, Queue: 100e3},
	}, PathSpec{RTT: 30 * time.Millisecond})
	cfg := ChurnConfig{
		MeanRate:    20e6,
		PerFlowRate: 200e3, // mean concurrency 100
		Stop:        60 * time.Second,
	}
	fc, err := NewFluidChurn(&eng, cfg, rand.New(rand.NewSource(5)), sc, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	fc.Start(0)
	eng.Run(70 * time.Second)
	eng.Release()

	if fc.MaxActive < 60 || fc.MaxActive > 220 {
		t.Errorf("peak population %d, want near 100", fc.MaxActive)
	}
	if fc.Active != 0 {
		t.Errorf("population %d after stop, want 0", fc.Active)
	}
	if fc.Events < 100 {
		t.Errorf("only %d churn events for ~hundreds of flows", fc.Events)
	}
	q := sc.FluidEntry(0)
	if st := q.Stats(eng.Now()); st.OfferedBytes == 0 {
		t.Error("churn fed no fluid into its target queue")
	}
}

// TestSourceConfigValidation is the regression test for the silently-dead
// source bug: invalid configs must be rejected with a typed *ConfigError
// naming the bad field, instead of constructing a zero-rate source.
func TestSourceConfigValidation(t *testing.T) {
	var eng Engine
	rng := rand.New(rand.NewSource(1))
	sc := NewScenario(&eng, 1, CommonSpec{}, PathSpec{RTT: 20 * time.Millisecond})

	bgCases := []struct {
		name  string
		cfg   BackgroundConfig
		field string
	}{
		{"zero rate", BackgroundConfig{Stop: time.Second}, "MeanRate"},
		{"negative rate", BackgroundConfig{MeanRate: -5e6, Stop: time.Second}, "MeanRate"},
		{"NaN rate", BackgroundConfig{MeanRate: math.NaN(), Stop: time.Second}, "MeanRate"},
		{"bad fraction", BackgroundConfig{MeanRate: 1e6, DiffFraction: 1.5, Stop: time.Second}, "DiffFraction"},
		{"no stop", BackgroundConfig{MeanRate: 1e6}, "Stop"},
	}
	for _, tc := range bgCases {
		_, err := NewBackground(&eng, tc.cfg, rng, Discard)
		var ce *ConfigError
		if !errors.As(err, &ce) || ce.Field != tc.field {
			t.Errorf("background %s: err = %v, want *ConfigError on %s", tc.name, err, tc.field)
		}
		if _, err := NewFluidBackground(&eng, tc.cfg, rng, nil, nil); !errors.As(err, &ce) {
			t.Errorf("fluid background %s: err = %v, want *ConfigError", tc.name, err)
		}
	}

	churnCases := []struct {
		name  string
		cfg   ChurnConfig
		field string
	}{
		{"zero rate", ChurnConfig{Stop: time.Second}, "MeanRate"},
		{"negative min", ChurnConfig{MeanRate: 1e6, MinBytes: -1, Stop: time.Second}, "MinBytes"},
		{"min above max", ChurnConfig{MeanRate: 1e6, MinBytes: 5e6, MaxBytes: 1e6, Stop: time.Second}, "MinBytes"},
		{"negative alpha", ChurnConfig{MeanRate: 1e6, Alpha: -2, Stop: time.Second}, "Alpha"},
		{"no stop", ChurnConfig{MeanRate: 1e6}, "Stop"},
	}
	for _, tc := range churnCases {
		_, err := NewChurn(&eng, tc.cfg, rng, sc, []int{0})
		var ce *ConfigError
		if !errors.As(err, &ce) || ce.Field != tc.field {
			t.Errorf("churn %s: err = %v, want *ConfigError on %s", tc.name, err, tc.field)
		}
		if _, err := NewFluidChurn(&eng, tc.cfg, rng, sc, []int{0}); !errors.As(err, &ce) {
			t.Errorf("fluid churn %s: err = %v, want *ConfigError", tc.name, err)
		}
	}

	// Valid configs still construct.
	if _, err := NewBackground(&eng, BackgroundConfig{MeanRate: 1e6, Stop: time.Second}, rng, Discard); err != nil {
		t.Errorf("valid background rejected: %v", err)
	}
	if _, err := NewChurn(&eng, ChurnConfig{MeanRate: 1e6, Stop: time.Second}, rng, sc, []int{0}); err != nil {
		t.Errorf("valid churn rejected: %v", err)
	}
}
