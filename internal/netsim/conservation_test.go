package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/nal-epfl/wehey/internal/trace"
)

// TestUDPPacketConservation: every transmitted datagram is either
// delivered or dropped once the pipe drains — across random limiter
// configurations.
func TestUDPPacketConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var eng Engine
		rate := 0.5e6 + rng.Float64()*4e6
		burst := 1500 + rng.Intn(20000)
		queue := rng.Intn(2) * rng.Intn(30000)

		var flow *UDPFlow
		end := HopFunc(func(pkt *Packet) { flow.Receiver().Send(pkt) })
		link := NewLink(&eng, "l", 5e6+rng.Float64()*10e6, 10*time.Millisecond, end)
		rl := NewRateLimiter(&eng, "tbf", rate, burst, queue, link)
		drops := 0
		rl.OnDrop = func(*Packet, string) { drops++ }
		linkDrops := 0
		link.OnDrop = func(*Packet, string) { linkDrops++ }

		tr, err := trace.Generate("zoom", rng, 4*time.Second)
		if err != nil {
			return false
		}
		flow = NewUDPFlow(&eng, 1, ClassDifferentiated, rl)
		flow.Start(tr, 0)
		eng.Run(30 * time.Second) // drain fully
		return flow.SentCount == flow.RecvCount+int64(drops)+int64(linkDrops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestTCPPacketConservation: transmissions = unique deliveries + duplicate
// deliveries + drops + residual in flight (zero after drain for a
// byte-bounded transfer).
func TestTCPPacketConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var eng Engine
		rate := 1e6 + rng.Float64()*4e6
		var flow *TCPFlow
		end := HopFunc(func(pkt *Packet) { flow.Receiver().Send(pkt) })
		link := NewLink(&eng, "l", 0, 15*time.Millisecond, end)
		rl := NewRateLimiter(&eng, "tbf", rate, BurstForRTT(rate, 30*time.Millisecond), 0, link)
		drops := 0
		rl.OnDrop = func(*Packet, string) { drops++ }

		flow = NewTCPFlow(&eng, 1, TCPConfig{
			Pacing: true, Class: ClassDifferentiated,
			Bytes: int64(100+rng.Intn(400)) * 1400,
		}, rl, 15*time.Millisecond)
		flow.Start(0)
		eng.Run(120 * time.Second) // generous: transfer must complete

		delivered := int64(len(flow.Delivered)) + flow.DupDeliver
		return flow.TxCount == delivered+int64(drops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestTCPTransferCompletes: a byte-bounded transfer through a policer
// always completes (reliability invariant), delivering exactly the
// requested bytes.
func TestTCPTransferCompletes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var eng Engine
		rate := 1e6 + rng.Float64()*2e6
		var flow *TCPFlow
		end := HopFunc(func(pkt *Packet) { flow.Receiver().Send(pkt) })
		link := NewLink(&eng, "l", 0, 10*time.Millisecond, end)
		rl := NewRateLimiter(&eng, "tbf", rate, BurstForRTT(rate, 20*time.Millisecond), 0, link)
		total := int64(50+rng.Intn(200)) * 1400
		flow = NewTCPFlow(&eng, 1, TCPConfig{
			Pacing: true, Class: ClassDifferentiated, Bytes: total,
		}, rl, 10*time.Millisecond)
		flow.Start(0)
		eng.Run(180 * time.Second)
		return flow.DeliveredBytes() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestEngineEventOrderProperty: events always fire in non-decreasing time
// order regardless of insertion order.
func TestEngineEventOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var eng Engine
		var fired []time.Duration
		for _, v := range raw {
			at := time.Duration(v) * time.Microsecond
			eng.Schedule(at, func() { fired = append(fired, eng.Now()) })
		}
		eng.Run(time.Second)
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
