package netsim

// PerFlowLimiter models the differentiation mechanism WeHeY's base design
// cannot localize (§3.2): instead of one collective token bucket, the
// device polices *each flow separately*. Two replay flows then never share
// a bucket — unless they are modified to present the same flow signature
// (the §7 extension), in which case they become the bucket's only tenants.
type PerFlowLimiter struct {
	// Name labels the limiter in drop reports.
	Name string
	// Rate/Burst/QueueLimit configure each per-flow TBF (bits/s, bytes,
	// bytes).
	Rate       float64
	Burst      int
	QueueLimit int
	// Next receives forwarded packets.
	Next Hop
	// OnDrop observes drops.
	OnDrop DropHook

	eng     *Engine
	buckets map[string]*RateLimiter

	// Counters.
	Flows int
}

// NewPerFlowLimiter creates the device.
func NewPerFlowLimiter(eng *Engine, name string, rate float64, burst, queueLimit int, next Hop) *PerFlowLimiter {
	return &PerFlowLimiter{
		Name:       name,
		Rate:       rate,
		Burst:      burst,
		QueueLimit: queueLimit,
		Next:       next,
		eng:        eng,
		buckets:    make(map[string]*RateLimiter),
	}
}

// Send implements Hop: differentiated packets go through their flow's own
// token bucket; default-class traffic bypasses.
func (p *PerFlowLimiter) Send(pkt *Packet) {
	if pkt.Class != ClassDifferentiated {
		if p.Next != nil {
			p.Next.Send(pkt)
		}
		return
	}
	key := pkt.PolicyKey
	if key == "" {
		key = flowKey(pkt.Flow)
	}
	b, ok := p.buckets[key]
	if !ok {
		b = NewRateLimiter(p.eng, p.Name+"/"+key, p.Rate, p.Burst, p.QueueLimit, p.Next)
		b.OnDrop = p.OnDrop
		p.buckets[key] = b
		p.Flows++
	}
	b.Send(pkt)
}

// Bucket returns the per-flow limiter state for a key (nil if unseen).
func (p *PerFlowLimiter) Bucket(key string) *RateLimiter { return p.buckets[key] }

func flowKey(flow int) string {
	// Small, allocation-free itoa for the common case.
	if flow == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	n := flow
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
