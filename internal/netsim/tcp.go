package netsim

import (
	"math"
	"time"
)

// TCPConfig parameterizes a simulated TCP flow.
type TCPConfig struct {
	// MSS is the segment payload size in bytes (default 1400).
	MSS int
	// InitCwnd is the initial congestion window in segments (default 10).
	InitCwnd float64
	// InitRTTGuess seeds pacing and RTO before the first RTT sample
	// (default 50 ms).
	InitRTTGuess time.Duration
	// MinRTO bounds the retransmission timeout from below (default 200 ms).
	MinRTO time.Duration
	// Pacing spreads transmissions at cwnd/srtt instead of sending
	// ACK-clocked bursts. WeHeY replays always pace (§3.4); the unpaced
	// mode exists for the Figure 6 "unmodified traces" comparison.
	Pacing bool
	// CC selects the congestion controller (default Reno; see CCAlgo).
	CC CCAlgo
	// Class is the traffic class stamped on every packet.
	Class Class
	// PolicyKey, when set, stamps every packet with this per-flow policy
	// identity (see Packet.PolicyKey).
	PolicyKey string
	// Bytes bounds the total application bytes to send; 0 = unlimited
	// (bulk transfer, the backlogged replay case).
	Bytes int64
	// AppRate, when positive, bounds the application's average data
	// release rate in bits/s — modelling a trace replay whose server feeds
	// the connection at the recording's natural rate (§3.4) rather than a
	// backlogged bulk transfer. A small initial credit lets congestion
	// control start without stalling.
	AppRate float64
	// Stop, when positive, stops new transmissions at this time.
	Stop time.Duration
}

func (c *TCPConfig) fill() {
	if c.MSS <= 0 {
		c.MSS = 1400
	}
	if c.InitCwnd <= 0 {
		c.InitCwnd = 10
	}
	if c.InitRTTGuess <= 0 {
		c.InitRTTGuess = 50 * time.Millisecond
	}
	if c.MinRTO <= 0 {
		c.MinRTO = 200 * time.Millisecond
	}
}

// TCPFlow simulates one TCP connection: a sender at the server, a receiver
// at the client, a forward path of hops, and a loss-free fixed-delay return
// path for ACKs. The congestion controller is Reno-style AIMD with modern
// loss recovery (per-packet ACKs and a RACK-like 3-packets-later loss
// inference, approximating SACK behaviour) and optional pacing.
//
// Loss accounting follows §3.4: the *sender* registers a loss event when it
// decides to retransmit (on loss inference or RTO), which is RTTs after the
// actual drop and can overcount (spurious RTO) — exactly the measurement
// noise Alg. 1 must tolerate.
type TCPFlow struct {
	ID int

	eng  *Engine
	cfg  TCPConfig
	fwd  Hop
	back time.Duration // one-way return delay for ACKs

	// Sender state.
	nextSeq     int64
	inflight    int
	cwnd        float64 // segments
	ssthresh    float64
	srtt        time.Duration
	rttvar      time.Duration
	rto         time.Duration
	haveSample  bool
	lastCutAt   time.Duration
	lastAckAt   time.Duration
	rtoArmed    bool
	rtoGen      uint64
	outstanding ring[*tcpPktState]
	bySeq       map[int64]*tcpPktState
	rtxQueue    ring[int64]
	stPool      []*tcpPktState // recycled packet-state records
	sendIdx     uint64
	paceTimer   bool
	nextPaceAt  time.Duration
	finished    bool

	// BBR estimator state (nil for Reno).
	bbr *bbrState

	// Receiver state. Sequences are dense from zero, so a bitset replaces
	// the map: one bit per segment.
	received bitset

	// Measurement logs.
	TxLog      []time.Duration // every data transmission (incl. rtx)
	LossLog    []time.Duration // loss-event registration times (rtx decisions)
	RTTSamples []time.Duration
	Delivered  []DeliveryEvent // unique-bytes arrivals at the client
	RtxCount   int64
	TxCount    int64
	DupDeliver int64 // duplicate arrivals at the client
}

// DeliveryEvent records one in-profile arrival at the client.
type DeliveryEvent struct {
	At    time.Duration
	Bytes int
}

type tcpPktState struct {
	seq           int64
	sentAt        time.Duration
	sendIdx       uint64
	rtx           int
	acked         bool
	lost          bool // registered lost, retransmission pending or done
	dupCount      int
	deliveredSnap int64 // BBR: delivered count when (last) sent
}

// NewTCPFlow creates a TCP flow; fwd is the first hop of the forward path
// and backDelay the one-way delay of the (loss-free) return path. Call
// Receiver() to obtain the hop to install at the end of the forward path,
// then Start.
func NewTCPFlow(eng *Engine, id int, cfg TCPConfig, fwd Hop, backDelay time.Duration) *TCPFlow {
	cfg.fill()
	f := &TCPFlow{
		ID:       id,
		eng:      eng,
		cfg:      cfg,
		fwd:      fwd,
		back:     backDelay,
		cwnd:     cfg.InitCwnd,
		ssthresh: math.Inf(1),
		rto:      time.Second,
		srtt:     cfg.InitRTTGuess,
		bySeq:    make(map[int64]*tcpPktState),
	}
	if cfg.CC == BBR {
		f.bbr = &bbrState{}
		f.cfg.Pacing = true // BBR is pacing-based by definition
	}
	return f
}

// Receiver returns the client-side hop terminating the forward path.
func (f *TCPFlow) Receiver() Hop {
	return HopFunc(f.onData)
}

// Start schedules the first transmission at time at.
func (f *TCPFlow) Start(at time.Duration) {
	f.eng.scheduleCall(at, f, evTCPTrySend, 0)
}

// handle dispatches the flow's interned engine callbacks (sender timers
// and the return-path ACKs).
func (f *TCPFlow) handle(kind eventKind, arg uint64) {
	switch kind {
	case evTCPTrySend:
		f.trySend()
	case evTCPPace:
		f.paceTimer = false
		f.trySend()
	case evTCPRTO:
		f.fireRTO(arg)
	case evTCPAck:
		f.onAck(int64(arg>>1), int(arg&1))
	}
}

// --- Sender ---

func (f *TCPFlow) hasData() bool {
	if f.cfg.Stop > 0 && f.eng.Now() >= f.cfg.Stop {
		return false
	}
	sent := f.nextSeq * int64(f.cfg.MSS)
	if f.cfg.Bytes > 0 && sent >= f.cfg.Bytes {
		return false
	}
	if f.cfg.AppRate > 0 {
		const initialCredit = 64 * 1024 // bytes available at t=0
		released := int64(f.cfg.AppRate/8*f.eng.Now().Seconds()) + initialCredit
		if sent >= released {
			return false
		}
	}
	return true
}

// trySend transmits as much as the window (and pacing) allows. With pacing
// on, at most one packet leaves per pacing interval (cwnd per srtt),
// regardless of what event (ACK, timer) triggered the attempt.
func (f *TCPFlow) trySend() {
	if !f.cfg.Pacing {
		for f.inflight < int(f.cwnd) && f.sendOne() {
		}
		f.maybeScheduleAppRetry()
		return
	}
	now := f.eng.Now()
	if now < f.nextPaceAt {
		f.schedulePaceAt(f.nextPaceAt)
		return
	}
	if f.inflight < int(f.cwnd) {
		if f.sendOne() {
			f.nextPaceAt = now + f.paceInterval()
			f.schedulePaceAt(f.nextPaceAt)
		} else {
			f.maybeScheduleAppRetry()
		}
	}
}

// maybeScheduleAppRetry keeps an app-limited flow alive: when the
// application hasn't released the next segment yet and nothing is in
// flight to produce an ACK wake-up, retry once the next segment becomes
// available.
func (f *TCPFlow) maybeScheduleAppRetry() {
	if f.cfg.AppRate <= 0 {
		return
	}
	if f.cfg.Stop > 0 && f.eng.Now() >= f.cfg.Stop {
		return
	}
	if f.cfg.Bytes > 0 && f.nextSeq*int64(f.cfg.MSS) >= f.cfg.Bytes {
		return
	}
	wait := time.Duration(float64(f.cfg.MSS*8) / f.cfg.AppRate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	f.schedulePaceAt(f.eng.Now() + wait)
}

func (f *TCPFlow) paceInterval() time.Duration {
	if f.bbr != nil {
		return f.bbrPaceInterval()
	}
	interval := time.Duration(float64(f.currentRTT()) / f.cwnd)
	const minInterval = 20 * time.Microsecond
	if interval < minInterval {
		interval = minInterval
	}
	return interval
}

func (f *TCPFlow) schedulePaceAt(at time.Duration) {
	if f.paceTimer {
		return
	}
	f.paceTimer = true
	f.eng.scheduleCall(at, f, evTCPPace, 0)
}

func (f *TCPFlow) currentRTT() time.Duration {
	if f.srtt > 0 {
		return f.srtt
	}
	return f.cfg.InitRTTGuess
}

// popRtx pops the next genuine (still-unacked) retransmission, discarding
// stale entries whose packet has since been acknowledged.
func (f *TCPFlow) popRtx() *tcpPktState {
	for f.rtxQueue.Len() > 0 {
		seq := f.rtxQueue.Pop()
		if st := f.bySeq[seq]; st != nil && !st.acked && st.lost {
			return st
		}
	}
	return nil
}

// sendOne transmits one packet — a pending retransmission if any, new data
// otherwise. It reports whether anything was sent.
func (f *TCPFlow) sendOne() bool {
	var seq int64
	st := f.popRtx()
	if st != nil {
		seq = st.seq
		st.rtx++
		st.lost = false
		st.dupCount = 0
		f.RtxCount++
	} else {
		if !f.hasData() {
			return false
		}
		seq = f.nextSeq
		f.nextSeq++
		if n := len(f.stPool); n > 0 {
			st = f.stPool[n-1]
			f.stPool[n-1] = nil
			f.stPool = f.stPool[:n-1]
			*st = tcpPktState{seq: seq}
		} else {
			st = &tcpPktState{seq: seq}
		}
		f.bySeq[seq] = st
		f.outstanding.Push(st)
	}
	now := f.eng.Now()
	f.sendIdx++
	st.sentAt = now
	st.sendIdx = f.sendIdx
	if f.bbr != nil {
		st.deliveredSnap = f.bbr.delivered
	}
	f.inflight++
	f.TxCount++
	f.TxLog = append(f.TxLog, now)

	pkt := f.eng.AllocPacket()
	pkt.Flow = f.ID
	pkt.Seq = seq
	pkt.Size = f.cfg.MSS
	pkt.Class = f.cfg.Class
	pkt.SentAt = now
	pkt.Retransmission = st.rtx > 0
	pkt.PolicyKey = f.cfg.PolicyKey
	f.fwd.Send(pkt)

	// Connection-level retransmission timer (RFC 6298: one timer for the
	// oldest outstanding data, restarted by ACK arrivals).
	if !f.rtoArmed {
		f.armRTO(f.rto)
	}
	return true
}

func (f *TCPFlow) armRTO(in time.Duration) {
	f.rtoGen++
	f.rtoArmed = true
	f.eng.afterCall(in, f, evTCPRTO, f.rtoGen)
}

func (f *TCPFlow) fireRTO(gen uint64) {
	if gen != f.rtoGen {
		return
	}
	f.rtoArmed = false
	// Find the oldest outstanding (unacked, not already marked lost) packet.
	var oldest *tcpPktState
	for i := 0; i < f.outstanding.Len(); i++ {
		if o := f.outstanding.At(i); !o.acked && !o.lost {
			oldest = o
			break
		}
	}
	if oldest == nil {
		if f.rtxQueue.Len() > 0 {
			// Retransmissions pending but nothing in flight; keep watch.
			f.armRTO(f.rto)
		}
		return
	}
	now := f.eng.Now()
	// The timer restarts on ACK activity: only a genuine silence of one
	// full RTO since the later of (oldest send, last ACK) is a timeout.
	// Without this, deep queues (RTT > the RTO lower bound) would cause
	// spurious timeout storms.
	ref := oldest.sentAt
	if f.lastAckAt > ref {
		ref = f.lastAckAt
	}
	if now-ref < f.rto {
		f.armRTO(ref + f.rto - now)
		return
	}
	// Genuine timeout: every outstanding packet is presumed lost
	// (go-back-N), the window collapses, and the backoff doubles once.
	for i := 0; i < f.outstanding.Len(); i++ {
		o := f.outstanding.At(i)
		if o.acked || o.lost {
			continue
		}
		o.lost = true
		f.inflight--
		f.LossLog = append(f.LossLog, now)
		f.rtxQueue.Push(o.seq)
	}
	if f.bbr == nil {
		f.ssthresh = math.Max(f.cwnd/2, 2)
		f.cwnd = 1
	}
	f.rto *= 2
	if f.rto > maxRTO {
		f.rto = maxRTO
	}
	f.lastCutAt = now
	f.trySend()
	f.armRTO(f.rto)
}

// maxRTO caps exponential backoff. It is far below the RFC's 60 s because
// replays last 45–60 s: a flow silent for seconds is still probing within
// the measurement window, as a real replay server would be.
const maxRTO = 4 * time.Second

// onAck processes the ACK for seq arriving back at the sender.
func (f *TCPFlow) onAck(seq int64, echoRtx int) {
	st := f.bySeq[seq]
	if st == nil || st.acked {
		return
	}
	now := f.eng.Now()
	f.lastAckAt = now
	st.acked = true
	if !st.lost {
		f.inflight--
	}
	// RTT sampling (Karn's algorithm: never from retransmitted packets).
	if st.rtx == 0 && echoRtx == 0 {
		f.addRTTSample(now - st.sentAt)
	}

	// Congestion window growth.
	if f.bbr != nil {
		f.onAckBBR(st, now)
		f.cwnd = f.bbrCwnd()
	} else if f.cwnd < f.ssthresh {
		f.cwnd++
	} else {
		f.cwnd += 1 / f.cwnd
	}

	// Loss inference: any packet transmitted before this one that is still
	// unacked has effectively been "passed" — after 3 such passes it is
	// declared lost (RACK/SACK-style dup threshold).
	var lossDetected bool
	for i := 0; i < f.outstanding.Len(); i++ {
		o := f.outstanding.At(i)
		if o.acked || o.lost {
			continue
		}
		if o.sendIdx < st.sendIdx {
			o.dupCount++
			if o.dupCount >= 3 {
				o.lost = true
				f.inflight--
				f.LossLog = append(f.LossLog, now)
				f.rtxQueue.Push(o.seq)
				lossDetected = true
			}
		}
	}
	if lossDetected && f.bbr == nil && now > f.lastCutAt+f.currentRTT() {
		// At most one multiplicative decrease per RTT (per loss episode).
		// BBR deliberately does not back off on loss.
		f.ssthresh = math.Max(f.cwnd/2, 2)
		f.cwnd = f.ssthresh
		f.lastCutAt = now
	}
	f.compactOutstanding()
	f.trySend()
}

func (f *TCPFlow) addRTTSample(rtt time.Duration) {
	f.RTTSamples = append(f.RTTSamples, rtt)
	if !f.haveSample {
		f.srtt = rtt
		f.rttvar = rtt / 2
		f.haveSample = true
	} else {
		// RFC 6298 smoothing.
		diff := f.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		f.rttvar = (3*f.rttvar + diff) / 4
		f.srtt = (7*f.srtt + rtt) / 8
	}
	f.rto = f.srtt + 4*f.rttvar
	if f.rto < f.cfg.MinRTO {
		f.rto = f.cfg.MinRTO
	}
}

// compactOutstanding drops fully-acked prefix entries and recycles their
// state records. Safe to pool: once a state leaves bySeq, stale rtxQueue
// entries for its seq can no longer resolve to it.
func (f *TCPFlow) compactOutstanding() {
	for f.outstanding.Len() > 0 && f.outstanding.Front().acked {
		st := f.outstanding.Pop()
		delete(f.bySeq, st.seq)
		f.stPool = append(f.stPool, st)
	}
}

// --- Receiver ---

// onData handles a data packet arriving at the client and returns an ACK
// over the fixed-delay return path. The data packet's life ends here: the
// ACK event carries only the (seq, retransmission-echo) pair, packed into
// the event argument, and the packet itself is recycled.
func (f *TCPFlow) onData(pkt *Packet) {
	now := f.eng.Now()
	if !f.received.get(pkt.Seq) {
		f.received.set(pkt.Seq)
		f.Delivered = append(f.Delivered, DeliveryEvent{At: now, Bytes: pkt.Size})
	} else {
		f.DupDeliver++
	}
	ack := uint64(pkt.Seq) << 1
	if pkt.Retransmission {
		ack |= 1
	}
	f.eng.FreePacket(pkt)
	f.eng.afterCall(f.back, f, evTCPAck, ack)
}

// --- Derived metrics ---

// RetransmissionRate returns retransmitted/total transmissions, the
// quantity Figures 5 and 7 report.
func (f *TCPFlow) RetransmissionRate() float64 {
	if f.TxCount == 0 {
		return 0
	}
	return float64(f.RtxCount) / float64(f.TxCount)
}

// AvgQueuingDelay estimates queueing delay the way the paper does for WeHe
// data (§C.2): average RTT minus minimum RTT.
func (f *TCPFlow) AvgQueuingDelay() time.Duration {
	if len(f.RTTSamples) == 0 {
		return 0
	}
	var sum time.Duration
	minRTT := f.RTTSamples[0]
	for _, s := range f.RTTSamples {
		sum += s
		if s < minRTT {
			minRTT = s
		}
	}
	return sum/time.Duration(len(f.RTTSamples)) - minRTT
}

// DeliveredBytes returns the total unique bytes delivered to the client.
func (f *TCPFlow) DeliveredBytes() int64 {
	var total int64
	for _, d := range f.Delivered {
		total += int64(d.Bytes)
	}
	return total
}
