package netsim

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/nal-epfl/wehey/internal/trace"
)

func TestUDPReplayLosslessDeliversEverything(t *testing.T) {
	var eng Engine
	tr, err := trace.Generate("zoom", rand.New(rand.NewSource(1)), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var flow *UDPFlow
	end := HopFunc(func(pkt *Packet) { flow.Receiver().Send(pkt) })
	link := NewLink(&eng, "l", 0, 10*time.Millisecond, end)
	flow = NewUDPFlow(&eng, 1, ClassDefault, link)
	flow.Start(tr, 0)
	eng.Run(10 * time.Second)
	flow.Finish(eng.Now())

	want := int64(tr.Count(trace.ServerToClient))
	if flow.SentCount != want {
		t.Errorf("sent %d, want %d", flow.SentCount, want)
	}
	if flow.RecvCount != want {
		t.Errorf("received %d, want %d", flow.RecvCount, want)
	}
	if len(flow.LossLog) != 0 {
		t.Errorf("losses on lossless path: %d", len(flow.LossLog))
	}
	if got := flow.DeliveredBytes(); got != tr.TotalBytes(trace.ServerToClient) {
		t.Errorf("delivered %d bytes, want %d", got, tr.TotalBytes(trace.ServerToClient))
	}
}

func TestUDPLossDetectionMatchesGroundTruth(t *testing.T) {
	var eng Engine
	tr, err := trace.Generate("webex", rand.New(rand.NewSource(2)), 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var flow *UDPFlow
	end := HopFunc(func(pkt *Packet) { flow.Receiver().Send(pkt) })
	link := NewLink(&eng, "l", 0, 10*time.Millisecond, end)
	// Policer at half the trace rate → heavy, countable loss.
	rate := tr.AvgRate(trace.ServerToClient) / 2
	rl := NewRateLimiter(&eng, "tbf", rate, BurstForRTT(rate, 20*time.Millisecond), 0, link)
	truth := 0
	rl.OnDrop = func(*Packet, string) { truth++ }
	flow = NewUDPFlow(&eng, 1, ClassDifferentiated, rl)
	flow.Start(tr, 0)
	eng.Run(25 * time.Second)
	flow.Finish(eng.Now())

	if truth == 0 {
		t.Fatal("policer dropped nothing")
	}
	// Client-side gap detection must count exactly the ground truth.
	if len(flow.LossLog) != truth {
		t.Errorf("client counted %d losses, ground truth %d", len(flow.LossLog), truth)
	}
	if got := flow.LossRate(); math.Abs(got-0.5) > 0.1 {
		t.Errorf("loss rate = %v, want ≈0.5 (2x policing)", got)
	}
}

func TestUDPLossRegistrationLagsDrops(t *testing.T) {
	// A dropped packet is registered only when the next packet arrives:
	// registration times must be strictly within the arrival stream.
	var eng Engine
	var flow *UDPFlow
	end := HopFunc(func(pkt *Packet) { flow.Receiver().Send(pkt) })
	link := NewLink(&eng, "l", 0, 5*time.Millisecond, end)
	flow = NewUDPFlow(&eng, 1, ClassDefault, link)
	// Hand-built schedule: drop seq 1 by sending it to Discard.
	eng.Schedule(0, func() { flow.transmit(0, 100) })
	eng.Schedule(10*time.Millisecond, func() {
		flow.SentCount++
		flow.TxLog = append(flow.TxLog, eng.Now())
		// seq 1 vanishes (never enters the link)
	})
	eng.Schedule(20*time.Millisecond, func() { flow.transmit(2, 100) })
	flow.totalScheduled = 3
	eng.Run(time.Second)

	if len(flow.LossLog) != 1 {
		t.Fatalf("loss log = %v", flow.LossLog)
	}
	// Registered when seq 2 arrived: 20 ms send + 5 ms delay.
	if got, want := flow.LossLog[0], 25*time.Millisecond; got != want {
		t.Errorf("registered at %v, want %v", got, want)
	}
}

func TestBackgroundRateAndClassMix(t *testing.T) {
	var eng Engine
	col := &collector{eng: &eng}
	cfg := BackgroundConfig{MeanRate: 8e6, DiffFraction: 0.5, Stop: 10 * time.Second}
	bg, err := NewBackground(&eng, cfg, rand.New(rand.NewSource(3)), col)
	if err != nil {
		t.Fatal(err)
	}
	bg.Start(0)
	eng.Run(10 * time.Second)

	rate := float64(bg.SentBytes) * 8 / 10
	if math.Abs(rate-8e6)/8e6 > 0.15 {
		t.Errorf("mean rate = %.2f Mbit/s, want ≈8", rate/1e6)
	}
	frac := float64(bg.DiffPackets) / float64(bg.SentPackets)
	if math.Abs(frac-0.5) > 0.05 {
		t.Errorf("diff fraction = %v, want ≈0.5", frac)
	}
}

func TestBackgroundRateIsModulated(t *testing.T) {
	// Per-second rates must vary substantially around the mean (that
	// variation is what creates loss-rate trends).
	var eng Engine
	perSec := make([]int64, 20)
	sink := HopFunc(func(pkt *Packet) {
		s := int(eng.Now() / time.Second)
		if s < len(perSec) {
			perSec[s] += int64(pkt.Size)
		}
	})
	cfg := BackgroundConfig{MeanRate: 8e6, Stop: 20 * time.Second, ModSpread: 0.6}
	bg, err := NewBackground(&eng, cfg, rand.New(rand.NewSource(4)), sink)
	if err != nil {
		t.Fatal(err)
	}
	bg.Start(0)
	eng.Run(20 * time.Second)

	var minR, maxR float64 = math.Inf(1), 0
	for _, b := range perSec {
		r := float64(b) * 8
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
	}
	if maxR/minR < 1.25 {
		t.Errorf("rate barely varies: min %.2f max %.2f Mbit/s", minR/1e6, maxR/1e6)
	}
}

func TestBackgroundDeterminism(t *testing.T) {
	run := func() int64 {
		var eng Engine
		cfg := BackgroundConfig{MeanRate: 5e6, DiffFraction: 0.3, Stop: 3 * time.Second}
		bg, err := NewBackground(&eng, cfg, rand.New(rand.NewSource(9)), Discard)
		if err != nil {
			t.Fatal(err)
		}
		bg.Start(0)
		eng.Run(3 * time.Second)
		return bg.SentBytes
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic background: %d vs %d", a, b)
	}
}
