// Package clock is the sanctioned wall-clock access point for code outside
// the real-time layers (internal/transport, internal/testbed). Simulated
// components take time from the netsim event engine; top-level binaries
// that only need elapsed-time logging import this package instead of
// calling time.Now directly, which keeps the walltime analyzer's invariant
// sharp: any other wall-clock read in the module is a finding.
package clock

import "time"

// Now returns the current wall-clock time.
func Now() time.Time { return time.Now() }

// Since returns the wall-clock time elapsed since t.
func Since(t time.Time) time.Duration { return time.Since(t) }
