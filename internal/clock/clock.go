// Package clock is the sanctioned wall-clock access point for code outside
// the real-time layers (internal/transport, internal/testbed). Simulated
// components take time from the netsim event engine; top-level binaries
// that only need elapsed-time logging import this package instead of
// calling time.Now directly, which keeps the walltime analyzer's invariant
// sharp: any other wall-clock read in the module is a finding.
//
// Long-running components (internal/service) take a Clock value instead of
// the package-level helpers, so their tests substitute a Manual clock and
// run scheduler/backoff logic instantly and deterministically.
package clock

import (
	"sort"
	"sync"
	"time"
)

// Now returns the current wall-clock time.
func Now() time.Time { return time.Now() }

// Since returns the wall-clock time elapsed since t.
func Since(t time.Time) time.Duration { return time.Since(t) }

// Clock abstracts time for components that must be testable without real
// waiting: reading the current time and arming one-shot timers.
type Clock interface {
	// Now returns the clock's current time.
	Now() time.Time
	// Since returns Now().Sub(t).
	Since(t time.Time) time.Duration
	// NewTimer returns a timer that fires once, d from now. A
	// non-positive d fires immediately (on the System clock, as soon as
	// the runtime schedules it; on a Manual clock, on the next Advance
	// of zero or more).
	NewTimer(d time.Duration) Timer
}

// Timer is a one-shot timer armed through a Clock.
type Timer interface {
	// C returns the channel the fire time is delivered on. The channel
	// has capacity 1; a fired timer never blocks the clock.
	C() <-chan time.Time
	// Stop disarms the timer, reporting whether it was still pending.
	// After Stop returns false the value may already be in C.
	Stop() bool
}

// System is the real-time Clock backed by package time.
var System Clock = systemClock{}

type systemClock struct{}

func (systemClock) Now() time.Time                  { return time.Now() }
func (systemClock) Since(t time.Time) time.Duration { return time.Since(t) }
func (systemClock) NewTimer(d time.Duration) Timer  { return systemTimer{time.NewTimer(d)} }

type systemTimer struct{ t *time.Timer }

func (s systemTimer) C() <-chan time.Time { return s.t.C }
func (s systemTimer) Stop() bool          { return s.t.Stop() }

// Manual is a fake Clock driven explicitly by tests: time only moves when
// Advance or Set is called, and pending timers fire synchronously inside
// that call, in deadline order. The zero value is not usable; construct
// with NewManual.
type Manual struct {
	mu     sync.Mutex
	now    time.Time
	timers []*manualTimer
}

// NewManual returns a Manual clock whose current time is start.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

// Now returns the manual clock's current time.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Since returns the manual-clock time elapsed since t.
func (m *Manual) Since(t time.Time) time.Duration {
	return m.Now().Sub(t)
}

// NewTimer arms a one-shot timer d from the manual clock's current time.
func (m *Manual) NewTimer(d time.Duration) Timer {
	m.mu.Lock()
	t := &manualTimer{deadline: m.now.Add(d), ch: make(chan time.Time, 1)}
	m.timers = append(m.timers, t)
	m.mu.Unlock()
	m.fireDue()
	return t
}

// Advance moves the clock forward by d, firing every timer whose deadline
// is reached, in deadline order. d must be non-negative.
func (m *Manual) Advance(d time.Duration) {
	if d < 0 {
		panic("clock: Manual.Advance with negative duration")
	}
	m.mu.Lock()
	m.now = m.now.Add(d)
	m.mu.Unlock()
	m.fireDue()
}

// Set jumps the clock to t (which must not be earlier than the current
// time) and fires every timer due by then.
func (m *Manual) Set(t time.Time) {
	m.mu.Lock()
	if t.Before(m.now) {
		m.mu.Unlock()
		panic("clock: Manual.Set moving time backwards")
	}
	m.now = t
	m.mu.Unlock()
	m.fireDue()
}

// fireDue delivers to all timers whose deadline has passed, earliest
// first, and compacts them out of the pending list.
func (m *Manual) fireDue() {
	m.mu.Lock()
	var due []*manualTimer
	rest := m.timers[:0]
	for _, t := range m.timers {
		if !t.deadline.After(m.now) {
			due = append(due, t)
		} else {
			rest = append(rest, t)
		}
	}
	m.timers = rest
	now := m.now
	m.mu.Unlock()
	sort.SliceStable(due, func(i, j int) bool { return due[i].deadline.Before(due[j].deadline) })
	for _, t := range due {
		t.fire(now)
	}
}

type manualTimer struct {
	deadline time.Time
	ch       chan time.Time

	mu   sync.Mutex
	dead bool // stopped or fired: no future delivery
}

func (t *manualTimer) C() <-chan time.Time { return t.ch }

func (t *manualTimer) fire(now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dead {
		return
	}
	t.dead = true
	t.ch <- now // capacity 1, never delivered twice
}

// Stop disarms the timer, reporting whether it was still pending.
func (t *manualTimer) Stop() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dead {
		return false
	}
	t.dead = true
	// Leave it in the clock's list; fire() on a dead timer is a no-op.
	return true
}
