package clock

import (
	"testing"
	"time"
)

func TestManualNowAndAdvance(t *testing.T) {
	start := time.Unix(1000, 0)
	m := NewManual(start)
	if !m.Now().Equal(start) {
		t.Fatalf("Now() = %v, want %v", m.Now(), start)
	}
	m.Advance(3 * time.Second)
	if got := m.Since(start); got != 3*time.Second {
		t.Fatalf("Since(start) = %v, want 3s", got)
	}
}

func TestManualTimerFiresOnAdvance(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	tm := m.NewTimer(5 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("timer fired before its deadline")
	default:
	}
	m.Advance(4 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("timer fired 1s early")
	default:
	}
	m.Advance(time.Second)
	select {
	case at := <-tm.C():
		if !at.Equal(time.Unix(5, 0)) {
			t.Fatalf("fire time = %v, want t0+5s", at)
		}
	default:
		t.Fatal("timer did not fire at its deadline")
	}
}

func TestManualTimerOrderAcrossOneAdvance(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	late := m.NewTimer(2 * time.Second)
	early := m.NewTimer(1 * time.Second)
	m.Advance(10 * time.Second)
	// Both fired inside one Advance; each carries the clock value at
	// delivery (deadline ordering is about side-effect sequencing, the
	// delivered value is the post-advance now).
	for _, tm := range []Timer{early, late} {
		select {
		case <-tm.C():
		default:
			t.Fatal("timer did not fire")
		}
	}
}

func TestManualTimerStop(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	tm := m.NewTimer(time.Second)
	if !tm.Stop() {
		t.Fatal("Stop on a pending timer should report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	m.Advance(2 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
}

func TestManualTimerImmediate(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	tm := m.NewTimer(0)
	select {
	case <-tm.C():
	default:
		t.Fatal("zero-duration timer should fire without an Advance")
	}
	if tm.Stop() {
		t.Fatal("Stop after firing should report false")
	}
}

func TestManualSet(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	tm := m.NewTimer(30 * time.Second)
	m.Set(time.Unix(40, 0))
	select {
	case <-tm.C():
	default:
		t.Fatal("Set past the deadline should fire the timer")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Set moving time backwards should panic")
		}
	}()
	m.Set(time.Unix(10, 0))
}

func TestSystemTimer(t *testing.T) {
	tm := System.NewTimer(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(5 * time.Second):
		t.Fatal("system timer never fired")
	}
	if System.Since(System.Now()) < 0 {
		t.Fatal("system Since went negative")
	}
}
