package service

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"github.com/nal-epfl/wehey/internal/clock"
)

// TestLoadJournalJobs: the read-only loader reconstructs the same job
// snapshots scheduler recovery would, without mutating the file.
func TestLoadJournalJobs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wj")
	b := newStubBackend()
	b.fail = func(seed int64, attempt int) error {
		if seed == 2 {
			return errors.New("boom")
		}
		return nil
	}
	s, err := NewScheduler(Options{
		Workers:     1,
		JournalPath: path,
		Clock:       clock.NewManual(time.Unix(1700000000, 0)),
		Backends:    map[string]Backend{"stub": b},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	specs := []Spec{stubSpec(1), stubSpec(2), stubSpec(3)}
	for i := range specs {
		specs[i].MaxAttempts = 1 // no retries: the failure is terminal at once
	}
	specs[0].Fleet = &FleetMeta{Campaign: "c1", Session: 7, ISP: 3, Server: 1}
	jobs, err := s.SubmitBatch(specs)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, jobs[0].ID, StateDone)
	waitState(t, s, jobs[1].ID, StateFailed)
	waitState(t, s, jobs[2].ID, StateDone)
	s.Close()

	loaded, err := LoadJournalJobs(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 3 {
		t.Fatalf("loaded %d jobs, want 3", len(loaded))
	}
	if got := loaded[0]; got.State != StateDone || got.Result == nil ||
		got.Spec.Fleet == nil || got.Spec.Fleet.Session != 7 || got.Spec.Fleet.ISP != 3 {
		t.Errorf("job 1 = %+v; want done with fleet meta intact", got)
	}
	if loaded[1].State != StateFailed || loaded[1].Error == "" {
		t.Errorf("job 2 = %+v; want failed with error", loaded[1])
	}
	// Loading again is idempotent — the file was not compacted or touched.
	again, err := LoadJournalJobs(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(loaded) {
		t.Errorf("second load differs: %d vs %d jobs", len(again), len(loaded))
	}
}
