// Package service is WeHeY's measurement-campaign layer: a long-running,
// job-oriented scheduler that accepts detection+localization jobs over an
// HTTP admin plane, schedules them against per-resource concurrency
// tokens, runs them on a worker pool with deadlines and seeded-backoff
// retries, and journals every state change so a restarted server resumes
// an interrupted campaign without losing or re-running jobs.
//
// The paper's deployment constraint drives the scheduler's core rule: a
// localization session replays *simultaneously* through one server pair
// (p1, p2), so a server pair is a schedulable resource — two jobs naming
// the same pair must never overlap (§3.4). Jobs declare their pair and the
// scheduler serializes on it with a token per pair.
//
// Determinism invariants (DESIGN.md §7) hold inside the service layer even
// though it supervises real-time work: all time flows through an injected
// clock.Clock (tests use clock.Manual and run instantly) and all
// randomness — retry jitter, backend trace generation — comes from per-job
// generators seeded by the job spec. The package is inside the walltime
// and detrand lint scopes; a stray time.Now or global rand call is a
// build-gating finding.
//
// Two backends ship with the package: "sim" runs a netsim trial through
// the experiments/simcache path (repeat submissions of one spec hit the
// cache — visible in /metrics) and "testbed" drives a full real-socket
// detection+localization session through internal/testbed.
package service

import (
	"errors"
	"fmt"
	"time"
)

// State is a job's position in the lifecycle state machine:
//
//	queued ──► running ──► done
//	  ▲           │  │
//	  │           │  ├──► failed    (attempts exhausted)
//	  └─ wait-retry ◄┘  └─► canceled (user cancel, incl. while queued)
//
// Only done, failed, and canceled are terminal and journaled; a job that
// is queued, running, or waiting for a retry when the process dies is
// re-queued on recovery.
type State string

const (
	// StateQueued: admitted, waiting for a worker and (if the job names a
	// server pair) for that pair's token.
	StateQueued State = "queued"
	// StateRunning: an attempt is executing on a worker.
	StateRunning State = "running"
	// StateWaitRetry: the last attempt failed; the retry backoff timer is
	// pending.
	StateWaitRetry State = "wait-retry"
	// StateDone: the job produced a result.
	StateDone State = "done"
	// StateFailed: every attempt failed; Error holds the last failure.
	StateFailed State = "failed"
	// StateCanceled: canceled by the operator before completion.
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Backend names used by the stock registry.
const (
	// BackendSim runs a netsim trial via experiments (+ simcache).
	BackendSim = "sim"
	// BackendTestbed runs a real-socket session via internal/testbed.
	BackendTestbed = "testbed"
	// BackendNull completes instantly with a fixed result. It exists to
	// load-test the control plane itself — admission, journal, scheduler,
	// HTTP — with the measurement cost zeroed out.
	BackendNull = "null"
)

// Spec describes one measurement job. It is immutable after submission
// and round-trips through the journal and the admin plane as JSON.
type Spec struct {
	// Backend selects the execution substrate ("sim" or "testbed").
	Backend string `json:"backend"`
	// Priority orders the queue: higher runs first; ties run in
	// submission order.
	Priority int `json:"priority,omitempty"`
	// ServerPair names the replay-server pair the job occupies for its
	// whole run. Jobs sharing a pair are serialized (the paper's
	// simultaneous-replay constraint); "" means no pair constraint.
	ServerPair string `json:"server_pair,omitempty"`
	// Seed drives every random draw the job makes: backend trace
	// generation, detector subsampling, and the scheduler's retry
	// jitter. Two submissions with identical specs behave identically.
	Seed int64 `json:"seed"`
	// Deadline bounds one attempt (0 = the scheduler's default). An
	// attempt that overruns is canceled and counts as a failure.
	Deadline time.Duration `json:"deadline,omitempty"`
	// MaxAttempts caps total executions including the first
	// (0 = the scheduler's default).
	MaxAttempts int `json:"max_attempts,omitempty"`
	// Sim parameterizes the "sim" backend.
	Sim *SimJob `json:"sim,omitempty"`
	// Testbed parameterizes the "testbed" backend.
	Testbed *TestbedJob `json:"testbed,omitempty"`
	// Fleet attributes the job to a fleet-inference session (optional).
	// The service schedules and runs the job exactly as without it; the
	// aggregation layer (internal/fleet, wehey-map) reads it back from the
	// job stream to credit the result to the right network segment.
	Fleet *FleetMeta `json:"fleet,omitempty"`
}

// FleetMeta ties a job to its position in a fleet campaign: which planned
// session it is and which access ISP / server site the session runs
// through. It is opaque to the scheduler and backends.
type FleetMeta struct {
	// Campaign names the campaign the session belongs to.
	Campaign string `json:"campaign,omitempty"`
	// Session is the session's index in the campaign plan.
	Session int `json:"session"`
	// ISP is the access ISP index the session runs through.
	ISP int `json:"isp"`
	// Server is the server-site index the session measures against.
	Server int `json:"server"`
}

// SimJob parameterizes a simulation-backed localization trial (a SimSpec
// subset; the spec's Seed supplies the trial seed).
type SimJob struct {
	// App is the trace pair ("tcpbulk" or a UDP application); default
	// tcpbulk.
	App string `json:"app,omitempty"`
	// InputFactor is offered/rate at the limiter (default 1.5).
	InputFactor float64 `json:"input_factor,omitempty"`
	// QueueFactor sizes the TBF queue in bursts (default 0.5).
	QueueFactor float64 `json:"queue_factor,omitempty"`
	// BgShare is the background share through the limiter (default 0.5).
	BgShare float64 `json:"bg_share,omitempty"`
	// Placement is "common" (FN topology, default) or "noncommon" (FP).
	Placement string `json:"placement,omitempty"`
	// Duration of the simulated replay (default 3s — service jobs favour
	// turnaround; the paper-scale 45s is available by asking for it).
	Duration time.Duration `json:"duration,omitempty"`
}

// TestbedJob parameterizes a real-socket localization session.
type TestbedJob struct {
	// App selects the replayed trace and the SNI the middlebox DPI
	// throttles (default "netflix").
	App string `json:"app,omitempty"`
	// Rate is the middlebox throttling rate in bits/s (default 3 Mbit/s).
	Rate float64 `json:"rate,omitempty"`
	// Delay is the middlebox one-way propagation delay (default 5 ms).
	Delay time.Duration `json:"delay,omitempty"`
	// Duration of each replay (default 500 ms; this is wall-clock time).
	Duration time.Duration `json:"duration,omitempty"`
}

// Result is what a completed job reports back through the admin plane.
type Result struct {
	// Backend echoes the substrate that produced the result.
	Backend string `json:"backend"`
	// WeHeDetected reports WeHe's end-to-end differentiation verdict
	// (testbed backend; sim trials start from a throttled topology, so
	// it is true there by construction).
	WeHeDetected bool `json:"wehe_detected"`
	// Confirmed reports differentiation on both simultaneous paths
	// (testbed backend).
	Confirmed bool `json:"confirmed"`
	// LocalizedToISP is the headline localization answer.
	LocalizedToISP bool `json:"localized_to_isp"`
	// Evidence names the detector's evidence class.
	Evidence string `json:"evidence"`
	// LossRates are the two paths' measured loss rates.
	LossRates [2]float64 `json:"loss_rates"`
	// Detail is a one-line human-readable summary.
	Detail string `json:"detail,omitempty"`
}

// Job is the externally visible snapshot of one job. The scheduler hands
// out copies; mutating a snapshot has no effect.
type Job struct {
	// ID is the scheduler-assigned identifier ("j000001", ...).
	ID string `json:"id"`
	// Seq is the submission sequence number (monotonic across restarts).
	Seq uint64 `json:"seq"`
	// Spec is the submitted specification.
	Spec Spec `json:"spec"`
	// State is the current lifecycle state.
	State State `json:"state"`
	// Attempts counts executions started so far (this process).
	Attempts int `json:"attempts"`
	// Resumed marks a job recovered from the journal after a restart.
	Resumed bool `json:"resumed,omitempty"`
	// SubmittedAt, StartedAt, FinishedAt are scheduler-clock timestamps
	// (zero when the phase has not happened).
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitempty"`
	FinishedAt  time.Time `json:"finished_at,omitempty"`
	// RetryAt is when the next attempt unblocks (wait-retry only).
	RetryAt time.Time `json:"retry_at,omitempty"`
	// Error is the last failure message (failed, or retrying jobs).
	Error string `json:"error,omitempty"`
	// Result is the backend's output (done only).
	Result *Result `json:"result,omitempty"`
}

// Errors surfaced by the scheduler and mapped onto admin-plane statuses.
var (
	// ErrQueueFull: admission control rejected the submission.
	ErrQueueFull = errors.New("service: queue full")
	// ErrClosed: the scheduler is shutting down.
	ErrClosed = errors.New("service: scheduler closed")
	// ErrNotFound: no job with that ID.
	ErrNotFound = errors.New("service: job not found")
	// ErrCanceled marks an attempt ended by an operator cancel.
	ErrCanceled = errors.New("service: job canceled")
	// ErrDeadline marks an attempt that overran its per-attempt deadline.
	ErrDeadline = errors.New("service: attempt deadline exceeded")
)

// Validate checks a spec is executable before admission.
func (s *Spec) Validate() error {
	switch s.Backend {
	case BackendSim:
		if s.Sim == nil {
			return fmt.Errorf("service: backend %q needs a sim payload", s.Backend)
		}
	case BackendTestbed:
		if s.Testbed == nil {
			return fmt.Errorf("service: backend %q needs a testbed payload", s.Backend)
		}
	case "":
		return errors.New("service: spec has no backend")
	}
	if s.Deadline < 0 {
		return errors.New("service: negative deadline")
	}
	if s.MaxAttempts < 0 {
		return errors.New("service: negative max attempts")
	}
	if f := s.Fleet; f != nil && (f.Session < 0 || f.ISP < 0 || f.Server < 0) {
		return errors.New("service: negative fleet session attribution")
	}
	return nil
}
