package service

import (
	"container/heap"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"github.com/nal-epfl/wehey/internal/clock"
)

// Options configures a Scheduler. The zero value of every field means
// "use the default".
type Options struct {
	// Workers sizes the worker pool (default 4).
	Workers int
	// QueueLimit is the admission-control bound on queued (not running)
	// jobs; submissions beyond it are rejected with ErrQueueFull
	// (default 256).
	QueueLimit int
	// DefaultDeadline bounds one attempt when the spec does not
	// (default 5 minutes).
	DefaultDeadline time.Duration
	// Retry shapes the backoff schedule (zero value = defaults).
	Retry RetryPolicy
	// Clock supplies all time: timestamps, queue-latency accounting,
	// deadlines, and backoff timers (default clock.System; tests inject
	// clock.Manual).
	Clock clock.Clock
	// JournalPath persists the campaign journal ("" = volatile: a
	// restart forgets everything).
	JournalPath string
	// Backends maps spec backend names to executors. Nil installs the
	// stock registry (sim with an in-memory cache, testbed).
	Backends map[string]Backend
}

func (o Options) fill() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.QueueLimit <= 0 {
		o.QueueLimit = 256
	}
	if o.DefaultDeadline <= 0 {
		o.DefaultDeadline = 5 * time.Minute
	}
	o.Retry = o.Retry.fill()
	if o.Clock == nil {
		o.Clock = clock.System
	}
	if o.Backends == nil {
		o.Backends = map[string]Backend{
			BackendSim:     NewSimBackend(nil),
			BackendTestbed: &TestbedBackend{},
		}
	}
	return o
}

// job is the scheduler's mutable view of one Job. All fields are guarded
// by the scheduler mutex except those written only before publication.
type job struct {
	Job

	rng        *rand.Rand // seeded per job: retry jitter
	enqueuedAt time.Time  // last transition into the queue (latency base)
	heapIdx    int        // position in the pending heap; -1 = not queued
	cancel     context.CancelFunc
	userCancel bool // operator asked; running attempt winds down
	retryTimer clock.Timer
	runs       int // completed executions (test observability)
}

// Scheduler owns the campaign state machine: admission, the priority
// queue, server-pair tokens, the worker pool, retries, and the journal.
type Scheduler struct {
	opts    Options
	clk     clock.Clock
	journal *Journal

	mu      sync.Mutex
	cond    *sync.Cond
	jobs    map[string]*job
	pending jobHeap
	tokens  map[string]string // server pair -> job ID holding it
	nextSeq uint64
	closed  bool
	stop    chan struct{}
	wg      sync.WaitGroup

	c counters
}

// counters backs Metrics; everything is guarded by Scheduler.mu.
type counters struct {
	submitted, done, failed, canceled, retried, rejected int64
	running                                              int
	waitRetry                                            int
	latencyTotal                                         time.Duration
	latencyCount                                         int64
	journalAppends                                       int64
	journalDroppedBytes                                  int
	journalDupTerminals                                  int64
	resumed                                              int64

	// Service-time moment accumulators over successful attempts
	// (started→done on the scheduler clock). They feed the M/G/c capacity
	// model behind GET /twin: count, Σs, and Σs² give the empirical mean
	// and squared coefficient of variation. Canceled and interrupted
	// attempts are excluded — their durations measure the operator, not
	// the backend.
	svcCount                   int64
	svcTotalSec, svcTotalSqSec float64
}

// NewScheduler builds a scheduler, replaying the journal if one is
// configured: terminal jobs come back for listing, incomplete jobs are
// re-queued to run exactly once more. Call Start to begin executing.
func NewScheduler(opts Options) (*Scheduler, error) {
	opts = opts.fill()
	s := &Scheduler{
		opts:   opts,
		clk:    opts.Clock,
		jobs:   make(map[string]*job),
		tokens: make(map[string]string),
		stop:   make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.nextSeq = 1
	if opts.JournalPath != "" {
		jr, rec, err := OpenJournal(opts.JournalPath)
		if err != nil {
			return nil, err
		}
		s.journal = jr
		s.c.journalDroppedBytes = rec.DroppedBytes
		s.replay(rec.Records)
	}
	return s, nil
}

// replay rebuilds job state from journal records (no locking needed: the
// scheduler is not yet published).
func (s *Scheduler) replay(records []record) {
	now := s.clk.Now()
	for _, r := range records {
		switch r.Op {
		case recSubmit:
			if r.Spec == nil || r.ID == "" {
				continue
			}
			j := s.newJob(r.ID, r.Seq, *r.Spec, now)
			j.Resumed = true
			s.jobs[r.ID] = j
			if r.Seq >= s.nextSeq {
				s.nextSeq = r.Seq + 1
			}
		case recDone, recFail, recCancel:
			j, ok := s.jobs[r.ID]
			if !ok {
				continue
			}
			if j.State.Terminal() {
				// Duplicate completion (crash between the journal append
				// and whatever followed): first record wins.
				s.c.journalDupTerminals++
				continue
			}
			j.FinishedAt = now
			switch r.Op {
			case recDone:
				j.State = StateDone
				j.Result = r.Result
				s.c.done++
			case recFail:
				j.State = StateFailed
				j.Error = r.Error
				s.c.failed++
			case recCancel:
				j.State = StateCanceled
				s.c.canceled++
			}
		}
	}
	// Re-queue the incomplete remainder in submission order.
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, k int) bool { return s.jobs[ids[i]].Seq < s.jobs[ids[k]].Seq })
	for _, id := range ids {
		j := s.jobs[id]
		if j.State.Terminal() {
			continue
		}
		j.State = StateQueued
		heap.Push(&s.pending, j)
		s.c.submitted++
		s.c.resumed++
	}
}

// newJob constructs the in-memory record for a submission.
func (s *Scheduler) newJob(id string, seq uint64, spec Spec, now time.Time) *job {
	return &job{
		Job: Job{
			ID:          id,
			Seq:         seq,
			Spec:        spec,
			State:       StateQueued,
			SubmittedAt: now,
		},
		rng:        rand.New(rand.NewSource(jobSeed(id, spec.Seed))),
		enqueuedAt: now,
		heapIdx:    -1,
	}
}

// Start launches the worker pool.
func (s *Scheduler) Start() {
	s.mu.Lock()
	workers := s.opts.Workers
	s.mu.Unlock()
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Close stops admission, cancels running attempts, waits for the pool to
// drain, and closes the journal. Interrupted jobs stay non-terminal in
// the journal, so the next process resumes them.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.stop)
	for _, j := range s.jobs {
		if j.cancel != nil {
			j.cancel()
		}
		if j.retryTimer != nil {
			j.retryTimer.Stop()
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	if s.journal != nil {
		s.journal.Close() // every record was fsynced at append time; close cannot lose data
	}
}

// Submit admits one job, journals it, and queues it.
func (s *Scheduler) Submit(spec Spec) (Job, error) {
	if err := spec.Validate(); err != nil {
		return Job{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Job{}, ErrClosed
	}
	if _, ok := s.opts.Backends[spec.Backend]; !ok {
		return Job{}, fmt.Errorf("service: unknown backend %q", spec.Backend)
	}
	if s.pending.Len() >= s.opts.QueueLimit {
		s.c.rejected++
		return Job{}, ErrQueueFull
	}
	seq := s.nextSeq
	s.nextSeq++
	id := fmt.Sprintf("j%06d", seq)
	j := s.newJob(id, seq, spec, s.clk.Now())
	if s.journal != nil {
		//lint:ignore lockheld journal append is deliberately under s.mu so durable record order matches admission order
		if err := s.journal.Append(record{Op: recSubmit, ID: id, Seq: seq, Spec: &spec}); err != nil {
			s.nextSeq = seq // not admitted: the ID was never durable
			return Job{}, err
		}
		s.c.journalAppends++
	}
	s.jobs[id] = j
	heap.Push(&s.pending, j)
	s.c.submitted++
	s.cond.Signal()
	return j.snapshot(), nil
}

// Get returns a snapshot of one job.
func (s *Scheduler) Get(id string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, ErrNotFound
	}
	return j.snapshot(), nil
}

// List returns snapshots of every known job in submission order.
func (s *Scheduler) List() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.snapshot())
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Seq < out[k].Seq })
	return out
}

// Cancel ends a job: immediately when queued or waiting for a retry, by
// canceling the attempt's context when running. Canceling a terminal job
// is a no-op.
func (s *Scheduler) Cancel(id string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, ErrNotFound
	}
	switch j.State {
	case StateQueued:
		if j.heapIdx >= 0 {
			heap.Remove(&s.pending, j.heapIdx)
		}
		//lint:ignore lockheld terminal-state journal write stays under s.mu to serialize with admission
		s.finishLocked(j, StateCanceled, nil, "")
	case StateWaitRetry:
		if j.retryTimer != nil {
			j.retryTimer.Stop()
			j.retryTimer = nil
		}
		s.c.waitRetry--
		//lint:ignore lockheld terminal-state journal write stays under s.mu to serialize with admission
		s.finishLocked(j, StateCanceled, nil, "")
	case StateRunning:
		j.userCancel = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	return j.snapshot(), nil
}

// snapshot copies the externally visible state. Callers hold s.mu.
func (j *job) snapshot() Job { return j.Job }

// worker is one pool goroutine: claim a runnable job, execute, repeat.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var j *job
		for {
			if s.closed {
				s.mu.Unlock()
				return
			}
			if j = s.popRunnableLocked(); j != nil {
				break
			}
			s.cond.Wait()
		}
		// Claim: token, state, latency accounting, attempt context.
		if pair := j.Spec.ServerPair; pair != "" {
			s.tokens[pair] = j.ID
		}
		j.State = StateRunning
		j.Attempts++
		j.StartedAt = s.clk.Now()
		s.c.latencyTotal += j.StartedAt.Sub(j.enqueuedAt)
		s.c.latencyCount++
		s.c.running++
		ctx, cancel := context.WithCancel(context.Background())
		j.cancel = cancel
		backend := s.opts.Backends[j.Spec.Backend]
		deadline := j.Spec.Deadline
		if deadline <= 0 {
			deadline = s.opts.DefaultDeadline
		}
		s.mu.Unlock()

		s.execute(j, ctx, cancel, backend, deadline)
	}
}

// popRunnableLocked pops the best-priority job whose server pair (if any)
// is free, skipping over blocked ones.
func (s *Scheduler) popRunnableLocked() *job {
	var skipped []*job
	var picked *job
	for s.pending.Len() > 0 {
		j := heap.Pop(&s.pending).(*job)
		if pair := j.Spec.ServerPair; pair != "" {
			if _, busy := s.tokens[pair]; busy {
				skipped = append(skipped, j)
				continue
			}
		}
		picked = j
		break
	}
	for _, j := range skipped {
		heap.Push(&s.pending, j)
	}
	return picked
}

// execute runs one attempt under a clock-driven deadline and routes the
// outcome through complete.
func (s *Scheduler) execute(j *job, ctx context.Context, cancel context.CancelFunc, backend Backend, deadline time.Duration) {
	timer := s.clk.NewTimer(deadline)
	watchDone := make(chan struct{})
	timedOut := make(chan struct{}, 1)
	go func() {
		select {
		case <-timer.C():
			timedOut <- struct{}{}
			cancel()
		case <-watchDone:
		}
	}()

	res, err := runBackend(ctx, backend, j.Spec)

	timer.Stop()
	close(watchDone)
	cancel()
	overran := false
	select {
	case <-timedOut:
		overran = true
	default:
	}
	s.complete(j, res, err, overran)
}

// runBackend isolates a backend panic into an error so one bad job cannot
// take the worker (and its queued siblings) down.
func runBackend(ctx context.Context, b Backend, spec Spec) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("service: backend panic: %v", r)
		}
	}()
	return b.Run(ctx, spec)
}

// complete applies one attempt's outcome: success, operator cancel,
// shutdown interruption, retry scheduling, or terminal failure.
func (s *Scheduler) complete(j *job, res *Result, err error, overran bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if pair := j.Spec.ServerPair; pair != "" {
		delete(s.tokens, pair)
	}
	j.cancel = nil
	j.runs++
	s.c.running--

	switch {
	case err == nil:
		sec := s.clk.Now().Sub(j.StartedAt).Seconds()
		s.c.svcCount++
		s.c.svcTotalSec += sec
		s.c.svcTotalSqSec += sec * sec
		j.Result = res
		//lint:ignore lockheld terminal-state journal write stays under s.mu to serialize with admission
		s.finishLocked(j, StateDone, res, "")
	case j.userCancel:
		//lint:ignore lockheld terminal-state journal write stays under s.mu to serialize with admission
		s.finishLocked(j, StateCanceled, nil, "")
	case s.closed:
		// Shutdown interrupted the attempt: leave the job non-terminal so
		// the journal resumes it in the next process.
		j.State = StateQueued
	default:
		if overran {
			err = fmt.Errorf("%w (%v)", ErrDeadline, err)
		}
		j.Error = err.Error()
		maxAttempts := j.Spec.MaxAttempts
		if maxAttempts <= 0 {
			maxAttempts = s.opts.Retry.MaxAttempts
		}
		if j.Attempts >= maxAttempts {
			//lint:ignore lockheld terminal-state journal write stays under s.mu to serialize with admission
			s.finishLocked(j, StateFailed, nil, j.Error)
			break
		}
		// Schedule the retry: capped exponential backoff, jitter from the
		// job's seeded generator.
		d := s.opts.Retry.delay(j.Attempts, j.rng)
		j.State = StateWaitRetry
		j.RetryAt = s.clk.Now().Add(d)
		s.c.retried++
		s.c.waitRetry++
		t := s.clk.NewTimer(d)
		j.retryTimer = t
		s.wg.Add(1)
		go s.awaitRetry(j, t)
	}
	s.cond.Broadcast() // a token freed or a slot opened
}

// finishLocked moves a job into a terminal state and journals it. The
// journal append is duplicate-safe: recovery keeps the first terminal
// record per job and counts the rest.
func (s *Scheduler) finishLocked(j *job, st State, res *Result, errMsg string) {
	j.State = st
	j.FinishedAt = s.clk.Now()
	j.RetryAt = time.Time{}
	var rec record
	switch st {
	case StateDone:
		s.c.done++
		rec = record{Op: recDone, ID: j.ID, Result: res}
	case StateFailed:
		s.c.failed++
		rec = record{Op: recFail, ID: j.ID, Error: errMsg}
	case StateCanceled:
		s.c.canceled++
		rec = record{Op: recCancel, ID: j.ID}
	}
	if s.journal != nil {
		if err := s.journal.Append(rec); err == nil {
			s.c.journalAppends++
		}
		// An append failure is not fatal: the in-memory state is
		// authoritative for this process; the next process will re-run
		// the job, which exactly-once semantics tolerate in the
		// crash-before-append case anyway.
	}
}

// awaitRetry re-queues a job when its backoff timer fires (or gives up on
// shutdown/cancel).
func (s *Scheduler) awaitRetry(j *job, t clock.Timer) {
	defer s.wg.Done()
	select {
	case <-t.C():
	case <-s.stop:
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || j.State != StateWaitRetry {
		return
	}
	j.State = StateQueued
	j.RetryAt = time.Time{}
	j.retryTimer = nil
	j.enqueuedAt = s.clk.Now()
	s.c.waitRetry--
	heap.Push(&s.pending, j)
	s.cond.Signal()
}
