package service

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/nal-epfl/wehey/internal/clock"
)

// Options configures a Scheduler. The zero value of every field means
// "use the default".
type Options struct {
	// Workers sizes the worker pool (default 4).
	Workers int
	// QueueLimit is the admission-control bound on queued (not running)
	// jobs; submissions beyond it are rejected with ErrQueueFull
	// (default 256). A batch is admitted all-or-nothing.
	QueueLimit int
	// Shards sizes the scheduler's shard map (default 16). Jobs hash to a
	// shard by server pair (jobs without a pair hash by ID), so all state
	// for one pair — its exclusivity token and its queued jobs — lives
	// under one shard mutex, and Submit/Complete on different pairs never
	// contend.
	Shards int
	// DefaultDeadline bounds one attempt when the spec does not
	// (default 5 minutes).
	DefaultDeadline time.Duration
	// Retry shapes the backoff schedule (zero value = defaults).
	Retry RetryPolicy
	// Clock supplies all time: timestamps, queue-latency accounting,
	// deadlines, backoff timers, and the journal commit pipeline's dwell
	// (default clock.System; tests inject clock.Manual).
	Clock clock.Clock
	// JournalPath persists the campaign journal ("" = volatile: a
	// restart forgets everything).
	JournalPath string
	// JournalMaxBatch caps the records per journal group commit
	// (default 256).
	JournalMaxBatch int
	// JournalMaxDelay is how long the journal committer dwells for an
	// under-full batch to fill before fsyncing anyway (default 0: commit
	// immediately; batching emerges from fsync backpressure).
	JournalMaxDelay time.Duration
	// Backends maps spec backend names to executors. Nil installs the
	// stock registry (sim with an in-memory cache, testbed, null).
	Backends map[string]Backend
}

func (o Options) fill() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.QueueLimit <= 0 {
		o.QueueLimit = 256
	}
	if o.Shards <= 0 {
		o.Shards = 16
	}
	if o.DefaultDeadline <= 0 {
		o.DefaultDeadline = 5 * time.Minute
	}
	o.Retry = o.Retry.fill()
	if o.Clock == nil {
		o.Clock = clock.System
	}
	if o.Backends == nil {
		o.Backends = map[string]Backend{
			BackendSim:     NewSimBackend(nil),
			BackendTestbed: &TestbedBackend{},
			BackendNull:    NullBackend{},
		}
	}
	return o
}

// job is the scheduler's mutable view of one Job. All fields are guarded
// by the owning shard's mutex except those written only before
// publication (rng, shard, and the identity fields of Job).
type job struct {
	Job

	shard      *shard     // home shard: fixed at creation by pair (or ID)
	rng        *rand.Rand // retry jitter; seeded lazily on first retry (jitterRNG)
	enqueuedAt time.Time  // last transition into the queue (latency base)
	heapIdx    int        // position in the shard's pending heap; -1 = not queued
	claiming   bool       // popped by a worker's claim scan, not yet running
	cancel     context.CancelFunc
	userCancel bool // operator asked; running attempt winds down
	retryTimer clock.Timer
	runs       int // completed executions (test observability)
}

// shard is one slice of the scheduler's hot state: the pending queue and
// the pair-exclusivity tokens for every server pair hashing here. The
// pair → shard mapping means two jobs that could ever exclude each other
// always share a shard, so exclusivity needs no cross-shard locking —
// the intra-process rehearsal of the ROADMAP's consistent-hash-by-pair
// fleet design.
type shard struct {
	mu      sync.Mutex
	pending jobHeap
	tokens  map[string]string // server pair -> job ID holding or reserving it

	_ [64]byte // pad shards apart: neighboring locks must not share a cache line
}

// Scheduler owns the campaign state machine: admission, the sharded
// priority queues, server-pair tokens, the worker pool, retries, and the
// group-commit journal.
type Scheduler struct {
	opts    Options
	clk     clock.Clock
	journal *Journal

	shards []shard
	jobs   sync.Map // job ID -> *job (read-mostly index; state under shard locks)

	nextSeq atomic.Uint64 // last assigned submission sequence number
	queued  atomic.Int64  // jobs sitting in pending heaps (admission gauge)
	rr      atomic.Uint32 // rotates the claim scan's starting shard

	closed    atomic.Bool
	stop      chan struct{}
	closeDone chan struct{} // closed once the drain completes
	ready     chan struct{} // worker wakeups; capacity covers every queued job
	wg        sync.WaitGroup

	c counters
}

// counters backs Metrics. Everything is atomic so the metrics read path
// takes no locks — /metrics under load never contends with Submit.
type counters struct {
	submitted, done, failed, canceled, retried, rejected atomic.Int64
	resumed                                              atomic.Int64
	batchSubmits, batchJobs                              atomic.Int64
	running, waitRetry                                   atomic.Int64
	latencyTotalNs, latencyCount                         atomic.Int64
	journalAppends                                       atomic.Int64
	journalDroppedBytes                                  atomic.Int64
	journalDupTerminals                                  atomic.Int64

	// Shard-scheduler visibility: claimScans counts full claim() sweeps
	// (one per worker wakeup that found the queue non-empty candidates),
	// claimPairSkips counts jobs passed over because their server pair's
	// token was held — the contention the pair-serialization rule costs.
	claimScans     atomic.Int64
	claimPairSkips atomic.Int64

	// Service-time moment accumulators over successful attempts
	// (started→done on the scheduler clock). They feed the M/G/c capacity
	// model behind GET /twin: count, Σs, and Σs² give the empirical mean
	// and squared coefficient of variation. Canceled and interrupted
	// attempts are excluded — their durations measure the operator, not
	// the backend.
	svcCount                   atomic.Int64
	svcTotalSec, svcTotalSqSec atomicFloat64
}

// NewScheduler builds a scheduler, replaying the journal if one is
// configured: terminal jobs come back for listing, incomplete jobs are
// re-queued to run exactly once more. Call Start to begin executing.
func NewScheduler(opts Options) (*Scheduler, error) {
	opts = opts.fill()
	s := &Scheduler{
		opts:      opts,
		clk:       opts.Clock,
		shards:    make([]shard, opts.Shards),
		stop:      make(chan struct{}),
		closeDone: make(chan struct{}),
		// One wakeup slot per admissible job plus one per worker: sends
		// are non-blocking, and a full channel already guarantees enough
		// pending scans to find every runnable job.
		ready: make(chan struct{}, opts.QueueLimit+opts.Workers),
	}
	for i := range s.shards {
		s.shards[i].tokens = make(map[string]string)
	}
	if opts.JournalPath != "" {
		jr, rec, err := OpenJournalOptions(opts.JournalPath, JournalOptions{
			MaxBatch: opts.JournalMaxBatch,
			MaxDelay: opts.JournalMaxDelay,
			Clock:    opts.Clock,
		})
		if err != nil {
			return nil, err
		}
		s.journal = jr
		s.c.journalDroppedBytes.Store(int64(rec.DroppedBytes))
		s.replay(rec.Records)
	}
	return s, nil
}

// shardFor maps a job to its home shard: by server pair when it has one
// (all contenders for a pair must share a shard), by ID otherwise (no
// exclusivity constraint — any stable spread works).
func (s *Scheduler) shardFor(pair, id string) *shard {
	key := pair
	if key == "" {
		key = id
	}
	// Inline FNV-1a: no allocation on the submit hot path.
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return &s.shards[h%uint32(len(s.shards))]
}

// replay rebuilds job state from journal records (no locking needed: the
// scheduler is not yet published).
func (s *Scheduler) replay(records []record) {
	now := s.clk.Now()
	byID := make(map[string]*job)
	var maxSeq uint64
	for _, r := range records {
		switch r.Op {
		case recSubmit:
			if r.Spec == nil || r.ID == "" {
				continue
			}
			j := s.newJob(r.ID, r.Seq, *r.Spec, now)
			j.Resumed = true
			byID[r.ID] = j
			s.jobs.Store(r.ID, j)
			if r.Seq > maxSeq {
				maxSeq = r.Seq
			}
		case recDone, recFail, recCancel:
			j, ok := byID[r.ID]
			if !ok {
				continue
			}
			if j.State.Terminal() {
				// Duplicate completion (crash between the journal append
				// and whatever followed): first record wins.
				s.c.journalDupTerminals.Add(1)
				continue
			}
			j.FinishedAt = now
			switch r.Op {
			case recDone:
				j.State = StateDone
				j.Result = r.Result
				s.c.done.Add(1)
			case recFail:
				j.State = StateFailed
				j.Error = r.Error
				s.c.failed.Add(1)
			case recCancel:
				j.State = StateCanceled
				s.c.canceled.Add(1)
			}
		}
	}
	s.nextSeq.Store(maxSeq)
	// Re-queue the incomplete remainder in submission order.
	ids := make([]string, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, k int) bool { return byID[ids[i]].Seq < byID[ids[k]].Seq })
	for _, id := range ids {
		j := byID[id]
		if j.State.Terminal() {
			continue
		}
		j.State = StateQueued
		heap.Push(&j.shard.pending, j)
		s.queued.Add(1)
		s.c.submitted.Add(1)
		s.c.resumed.Add(1)
	}
}

// newJob constructs the in-memory record for a submission.
func (s *Scheduler) newJob(id string, seq uint64, spec Spec, now time.Time) *job {
	return &job{
		Job: Job{
			ID:          id,
			Seq:         seq,
			Spec:        spec,
			State:       StateQueued,
			SubmittedAt: now,
		},
		shard:      s.shardFor(spec.ServerPair, id),
		enqueuedAt: now,
		heapIdx:    -1,
	}
}

// jitterRNG returns the job's seeded jitter generator, creating it on
// first use. Seeding a rand source is ~70% of an eager newJob's cost and
// only retrying jobs ever draw from it, so the happy path skips it
// entirely; laziness is invisible to determinism because the first draw
// still comes from the same seeded stream. Callers hold the shard lock.
func (j *job) jitterRNG() *rand.Rand {
	if j.rng == nil {
		j.rng = rand.New(rand.NewSource(jobSeed(j.ID, j.Spec.Seed)))
	}
	return j.rng
}

// Start launches the worker pool and wakes it for any journal-resumed
// backlog.
func (s *Scheduler) Start() {
	for i := 0; i < s.opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	for n := s.queued.Load(); n > 0; n-- {
		s.signalReady()
	}
}

// signalReady posts one worker wakeup; dropping when the channel is full
// is safe because a full channel already holds more pending scans than
// there can be queued jobs.
func (s *Scheduler) signalReady() {
	select {
	case s.ready <- struct{}{}:
	default:
	}
}

// Close stops admission, cancels running attempts, waits for the pool to
// drain, and closes the journal — which drains the commit pipeline, so
// every in-flight append is either fsynced-and-acknowledged or rejected
// with ErrClosed, never acknowledged unsynced. Interrupted jobs stay
// non-terminal in the journal, so the next process resumes them.
func (s *Scheduler) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		// Another Close owns the drain; wait for it so every caller's
		// return means "fully stopped".
		<-s.closeDone
		return
	}
	close(s.stop)
	s.jobs.Range(func(_, v any) bool {
		j := v.(*job)
		sh := j.shard
		sh.mu.Lock()
		if j.cancel != nil {
			j.cancel()
		}
		if j.retryTimer != nil {
			j.retryTimer.Stop()
		}
		sh.mu.Unlock()
		return true
	})
	s.wg.Wait()
	if s.journal != nil {
		s.journal.Close()
	}
	close(s.closeDone)
}

// Submit admits one job, journals it durably, and queues it.
func (s *Scheduler) Submit(spec Spec) (Job, error) {
	jobs, err := s.SubmitBatch([]Spec{spec})
	if err != nil {
		return Job{}, err
	}
	return jobs[0], nil
}

// SubmitBatch admits a group of jobs as one unit: every spec is
// validated up front, queue capacity is reserved for all of them, their
// submit records ride one journal group commit (one fsync for the whole
// batch), and only then are they published to the shards. Admission is
// all-or-nothing — on any error no job of the batch was admitted.
func (s *Scheduler) SubmitBatch(specs []Spec) ([]Job, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			return nil, batchErr(i, len(specs), err)
		}
		if _, ok := s.opts.Backends[specs[i].Backend]; !ok {
			return nil, batchErr(i, len(specs), fmt.Errorf("service: unknown backend %q", specs[i].Backend))
		}
	}
	if s.closed.Load() {
		return nil, ErrClosed
	}
	// Reserve queue slots for the whole batch atomically.
	n := int64(len(specs))
	for {
		cur := s.queued.Load()
		if cur+n > int64(s.opts.QueueLimit) {
			s.c.rejected.Add(n)
			return nil, ErrQueueFull
		}
		if s.queued.CompareAndSwap(cur, cur+n) {
			break
		}
	}

	base := s.nextSeq.Add(uint64(n))
	now := s.clk.Now()
	js := make([]*job, len(specs))
	recs := make([]record, len(specs))
	for i := range specs {
		seq := base - uint64(n) + uint64(i) + 1
		id := fmt.Sprintf("j%06d", seq)
		js[i] = s.newJob(id, seq, specs[i], now)
		recs[i] = record{Op: recSubmit, ID: id, Seq: seq, Spec: &specs[i]}
	}
	if s.journal != nil {
		// Durability gate: nothing is published, and nothing is
		// acknowledged to the caller, until the batch's fsync returns.
		if err := s.journal.AppendBatch(recs); err != nil {
			s.queued.Add(-n)
			if errors.Is(err, ErrJournalClosed) {
				err = ErrClosed
			}
			return nil, err
		}
		s.c.journalAppends.Add(n)
	}

	out := make([]Job, len(js))
	for i, j := range js {
		out[i] = j.Job // snapshot before publication: workers may claim immediately
		s.jobs.Store(j.ID, j)
		sh := j.shard
		sh.mu.Lock()
		heap.Push(&sh.pending, j)
		sh.mu.Unlock()
	}
	s.c.submitted.Add(n)
	if len(specs) > 1 {
		s.c.batchSubmits.Add(1)
		s.c.batchJobs.Add(n)
	}
	for range js {
		s.signalReady()
	}
	return out, nil
}

// batchErr labels a per-spec error with its batch index (single-spec
// submissions keep the bare error).
func batchErr(i, n int, err error) error {
	if n == 1 {
		return err
	}
	return fmt.Errorf("service: batch spec %d: %w", i, err)
}

// Get returns a snapshot of one job.
func (s *Scheduler) Get(id string) (Job, error) {
	v, ok := s.jobs.Load(id)
	if !ok {
		return Job{}, ErrNotFound
	}
	j := v.(*job)
	sh := j.shard
	sh.mu.Lock()
	snap := j.Job
	sh.mu.Unlock()
	return snap, nil
}

// GetBatch returns snapshots for the requested IDs (in input order,
// minus unknowns) plus the list of IDs that do not exist.
func (s *Scheduler) GetBatch(ids []string) (jobs []Job, missing []string) {
	jobs = make([]Job, 0, len(ids))
	for _, id := range ids {
		j, err := s.Get(id)
		if err != nil {
			missing = append(missing, id)
			continue
		}
		jobs = append(jobs, j)
	}
	return jobs, missing
}

// List returns snapshots of every known job in submission order. For
// large campaigns prefer ListPage, which the admin plane serves with a
// cursor instead of buffering the full set.
func (s *Scheduler) List() []Job {
	return s.ListPage(0, 0)
}

// ListPage returns up to limit jobs with Seq > afterSeq, in submission
// order (limit <= 0 = no cap). The (afterSeq, limit) pair implements the
// admin plane's `/jobs?after=` cursor: pages are stable under concurrent
// submission because Seq is assigned monotonically.
func (s *Scheduler) ListPage(afterSeq uint64, limit int) []Job {
	type ent struct {
		seq uint64
		j   *job
	}
	ents := make([]ent, 0, 64)
	s.jobs.Range(func(_, v any) bool {
		j := v.(*job)
		if j.Seq > afterSeq { // Seq is immutable after creation
			ents = append(ents, ent{j.Seq, j})
		}
		return true
	})
	sort.Slice(ents, func(i, k int) bool { return ents[i].seq < ents[k].seq })
	if limit > 0 && len(ents) > limit {
		ents = ents[:limit]
	}
	out := make([]Job, len(ents))
	for i, e := range ents {
		sh := e.j.shard
		sh.mu.Lock()
		out[i] = e.j.Job
		sh.mu.Unlock()
	}
	return out
}

// Cancel ends a job: immediately when queued or waiting for a retry, by
// canceling the attempt's context when running. Canceling a terminal job
// is a no-op.
func (s *Scheduler) Cancel(id string) (Job, error) {
	v, ok := s.jobs.Load(id)
	if !ok {
		return Job{}, ErrNotFound
	}
	j := v.(*job)
	sh := j.shard
	var rec record
	var terminal bool
	sh.mu.Lock()
	switch j.State {
	case StateQueued:
		if j.claiming {
			// A worker holds this job between its claim scan and the
			// running transition; flag it and let the worker's next
			// lock acquisition turn it into a cancel.
			j.userCancel = true
			break
		}
		if j.heapIdx >= 0 {
			heap.Remove(&sh.pending, j.heapIdx)
			s.queued.Add(-1)
		}
		rec = s.finishLocked(j, StateCanceled, nil, "")
		terminal = true
	case StateWaitRetry:
		if j.retryTimer != nil {
			j.retryTimer.Stop()
			j.retryTimer = nil
		}
		s.c.waitRetry.Add(-1)
		rec = s.finishLocked(j, StateCanceled, nil, "")
		terminal = true
	case StateRunning:
		j.userCancel = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	snap := j.Job
	sh.mu.Unlock()
	if terminal {
		s.journalTerminal(rec)
	}
	return snap, nil
}

// worker is one pool goroutine: wait for a wakeup, then greedily claim
// and execute runnable jobs until a full scan comes up empty.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case <-s.ready:
		}
		for !s.closed.Load() {
			j := s.claim()
			if j == nil {
				break
			}
			s.run(j)
		}
	}
}

// claim selects the globally best-priority runnable job. It scans every
// shard (rotating the start to spread contention), takes each shard's
// best runnable candidate with its pair token reserved, and keeps the
// global winner; losers go back with their reservation released. The
// reservation is what keeps pair exclusivity airtight across concurrent
// scans: a candidate's pair is held from the moment it leaves its heap.
func (s *Scheduler) claim() *job {
	s.c.claimScans.Add(1)
	n := len(s.shards)
	start := int(s.rr.Add(1)) % n
	var best *job
	for i := 0; i < n; i++ {
		c := s.takeRunnable(&s.shards[(start+i)%n])
		if c == nil {
			continue
		}
		if best == nil {
			best = c
			continue
		}
		if jobLess(c, best) {
			s.unreserve(best)
			best = c
		} else {
			s.unreserve(c)
		}
	}
	return best
}

// jobLess orders jobs like the pending heap: higher priority first,
// submission order within a priority.
func jobLess(a, b *job) bool {
	if a.Spec.Priority != b.Spec.Priority {
		return a.Spec.Priority > b.Spec.Priority
	}
	return a.Seq < b.Seq
}

// takeRunnable pops the best-priority runnable job of one shard —
// skipping over pair-blocked ones — and reserves its pair token.
func (s *Scheduler) takeRunnable(sh *shard) *job {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var skipped []*job
	var picked *job
	for sh.pending.Len() > 0 {
		j := heap.Pop(&sh.pending).(*job)
		if pair := j.Spec.ServerPair; pair != "" {
			if _, busy := sh.tokens[pair]; busy {
				s.c.claimPairSkips.Add(1)
				skipped = append(skipped, j)
				continue
			}
		}
		picked = j
		break
	}
	for _, j := range skipped {
		heap.Push(&sh.pending, j)
	}
	if picked != nil {
		if pair := picked.Spec.ServerPair; pair != "" {
			sh.tokens[pair] = picked.ID
		}
		picked.claiming = true
	}
	return picked
}

// unreserve returns a losing claim candidate to its shard's queue,
// releasing the pair reservation — unless an operator canceled it while
// it was in flight, in which case the cancel lands now.
func (s *Scheduler) unreserve(j *job) {
	sh := j.shard
	var rec record
	var canceled bool
	sh.mu.Lock()
	if pair := j.Spec.ServerPair; pair != "" {
		delete(sh.tokens, pair)
	}
	j.claiming = false
	if j.userCancel {
		s.queued.Add(-1)
		rec = s.finishLocked(j, StateCanceled, nil, "")
		canceled = true
	} else {
		heap.Push(&sh.pending, j)
	}
	sh.mu.Unlock()
	if canceled {
		s.journalTerminal(rec)
		return
	}
	s.signalReady()
}

// run finalizes a claim — state, accounting, attempt context — and
// executes one attempt.
func (s *Scheduler) run(j *job) {
	sh := j.shard
	sh.mu.Lock()
	j.claiming = false
	if j.userCancel {
		// Canceled during the claim scan: release the reservation and
		// finish without running.
		if pair := j.Spec.ServerPair; pair != "" {
			delete(sh.tokens, pair)
		}
		s.queued.Add(-1)
		rec := s.finishLocked(j, StateCanceled, nil, "")
		sh.mu.Unlock()
		s.journalTerminal(rec)
		return
	}
	j.State = StateRunning
	j.Attempts++
	j.StartedAt = s.clk.Now()
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel
	enqueuedAt := j.enqueuedAt
	sh.mu.Unlock()

	s.queued.Add(-1)
	s.c.latencyTotalNs.Add(int64(j.StartedAt.Sub(enqueuedAt)))
	s.c.latencyCount.Add(1)
	s.c.running.Add(1)
	backend := s.opts.Backends[j.Spec.Backend]
	deadline := j.Spec.Deadline
	if deadline <= 0 {
		deadline = s.opts.DefaultDeadline
	}
	s.execute(j, ctx, cancel, backend, deadline)
}

// execute runs one attempt under a clock-driven deadline and routes the
// outcome through complete.
func (s *Scheduler) execute(j *job, ctx context.Context, cancel context.CancelFunc, backend Backend, deadline time.Duration) {
	timer := s.clk.NewTimer(deadline)
	watchDone := make(chan struct{})
	timedOut := make(chan struct{}, 1)
	go func() {
		select {
		case <-timer.C():
			timedOut <- struct{}{}
			cancel()
		case <-watchDone:
		}
	}()

	res, err := runBackend(ctx, backend, j.Spec)

	timer.Stop()
	close(watchDone)
	cancel()
	overran := false
	select {
	case <-timedOut:
		overran = true
	default:
	}
	s.complete(j, res, err, overran)
}

// runBackend isolates a backend panic into an error so one bad job cannot
// take the worker (and its queued siblings) down.
func runBackend(ctx context.Context, b Backend, spec Spec) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("service: backend panic: %v", r)
		}
	}()
	return b.Run(ctx, spec)
}

// complete applies one attempt's outcome: success, operator cancel,
// shutdown interruption, retry scheduling, or terminal failure. The
// shard lock covers only the state transition; the terminal journal
// append happens after it is released.
func (s *Scheduler) complete(j *job, res *Result, err error, overran bool) {
	sh := j.shard
	var rec record
	var terminal, pairFreed bool
	sh.mu.Lock()
	if pair := j.Spec.ServerPair; pair != "" {
		delete(sh.tokens, pair)
		pairFreed = sh.pending.Len() > 0
	}
	j.cancel = nil
	j.runs++

	switch {
	case err == nil:
		sec := s.clk.Now().Sub(j.StartedAt).Seconds()
		s.c.svcCount.Add(1)
		s.c.svcTotalSec.Add(sec)
		s.c.svcTotalSqSec.Add(sec * sec)
		j.Result = res
		rec = s.finishLocked(j, StateDone, res, "")
		terminal = true
	case j.userCancel:
		rec = s.finishLocked(j, StateCanceled, nil, "")
		terminal = true
	case s.closed.Load():
		// Shutdown interrupted the attempt: leave the job non-terminal so
		// the journal resumes it in the next process.
		j.State = StateQueued
	default:
		if overran {
			err = fmt.Errorf("%w (%v)", ErrDeadline, err)
		}
		j.Error = err.Error()
		maxAttempts := j.Spec.MaxAttempts
		if maxAttempts <= 0 {
			maxAttempts = s.opts.Retry.MaxAttempts
		}
		if j.Attempts >= maxAttempts {
			rec = s.finishLocked(j, StateFailed, nil, j.Error)
			terminal = true
			break
		}
		// Schedule the retry: capped exponential backoff, jitter from the
		// job's seeded generator.
		d := s.opts.Retry.delay(j.Attempts, j.jitterRNG())
		j.State = StateWaitRetry
		j.RetryAt = s.clk.Now().Add(d)
		s.c.retried.Add(1)
		s.c.waitRetry.Add(1)
		t := s.clk.NewTimer(d)
		j.retryTimer = t
		s.wg.Add(1)
		go s.awaitRetry(j, t)
	}
	sh.mu.Unlock()

	s.c.running.Add(-1)
	if terminal {
		s.journalTerminal(rec)
	}
	if pairFreed {
		// The freed pair may unblock a same-pair sibling (same shard by
		// construction): post a wakeup.
		s.signalReady()
	}
}

// finishLocked moves a job into a terminal state and returns the journal
// record describing it. Callers hold the job's shard lock and append the
// record after releasing it.
func (s *Scheduler) finishLocked(j *job, st State, res *Result, errMsg string) record {
	j.State = st
	j.FinishedAt = s.clk.Now()
	j.RetryAt = time.Time{}
	switch st {
	case StateDone:
		s.c.done.Add(1)
		return record{Op: recDone, ID: j.ID, Result: res}
	case StateFailed:
		s.c.failed.Add(1)
		return record{Op: recFail, ID: j.ID, Error: errMsg}
	default:
		s.c.canceled.Add(1)
		return record{Op: recCancel, ID: j.ID}
	}
}

// journalTerminal appends a terminal record through the group-commit
// pipeline. The append is duplicate-safe (recovery keeps the first
// terminal record per job) and its failure is not fatal: the in-memory
// state is authoritative for this process, and the next process re-runs
// the job — which exactly-once semantics tolerate in the
// crash-before-append case anyway.
func (s *Scheduler) journalTerminal(rec record) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Append(rec); err == nil {
		s.c.journalAppends.Add(1)
	}
}

// awaitRetry re-queues a job when its backoff timer fires (or gives up on
// shutdown/cancel).
func (s *Scheduler) awaitRetry(j *job, t clock.Timer) {
	defer s.wg.Done()
	select {
	case <-t.C():
	case <-s.stop:
		return
	}
	sh := j.shard
	sh.mu.Lock()
	if s.closed.Load() || j.State != StateWaitRetry {
		sh.mu.Unlock()
		return
	}
	j.State = StateQueued
	j.RetryAt = time.Time{}
	j.retryTimer = nil
	j.enqueuedAt = s.clk.Now()
	heap.Push(&sh.pending, j)
	sh.mu.Unlock()
	s.c.waitRetry.Add(-1)
	s.queued.Add(1)
	s.signalReady()
}
