package service

import (
	"math"
	"sync/atomic"
	"time"
)

// atomicFloat64 is a float64 accumulator over an atomic bit pattern,
// giving the metrics path lock-free float adds (CAS loop) and reads.
type atomicFloat64 struct {
	bits atomic.Uint64
}

// Add accumulates delta with a compare-and-swap loop.
func (f *atomicFloat64) Add(delta float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Load returns the current value.
func (f *atomicFloat64) Load() float64 {
	return math.Float64frombits(f.bits.Load())
}

// Metrics is the expvar-style counter snapshot served at /metrics. All
// counts are cumulative for the scheduler's lifetime except the gauges
// (Queued, Running, WaitRetry). The snapshot is assembled entirely from
// atomics — reading /metrics never takes a scheduler lock, so probing a
// loaded server does not perturb it.
type Metrics struct {
	// Gauges: current queue/pool occupancy.
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	WaitRetry int `json:"wait_retry"`

	// Lifecycle counters.
	Submitted int64 `json:"submitted"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	Retried   int64 `json:"retried"`
	Rejected  int64 `json:"rejected"`
	Resumed   int64 `json:"resumed"`

	// Batch-submission counters: batches accepted via SubmitBatch with
	// more than one spec, and the jobs they carried.
	BatchSubmits int64 `json:"batch_submits"`
	BatchJobs    int64 `json:"batch_jobs"`

	// Shard-scheduler visibility: the configured shard count, the number
	// of claim sweeps workers ran, and how many jobs a sweep passed over
	// because their server pair's token was held (pair-serialization
	// contention).
	SchedulerShards int   `json:"scheduler_shards"`
	ClaimScans      int64 `json:"claim_scans"`
	ClaimPairSkips  int64 `json:"claim_pair_skips"`

	// QueueLatencyMean is the mean queued→running wait over every attempt
	// started so far (scheduler-clock time).
	QueueLatencyMean time.Duration `json:"queue_latency_mean_ns"`

	// Service-time moments over successful attempts (started→done), the
	// empirical inputs to the /twin capacity model: sample count, mean in
	// seconds, and the second raw moment E[S²] in s².
	ServiceTimeCount int64   `json:"service_time_count"`
	ServiceTimeMeanS float64 `json:"service_time_mean_s,omitempty"`
	ServiceTimeEx2S2 float64 `json:"service_time_ex2_s2,omitempty"`

	// Journal health. JournalAppends counts records durably acknowledged;
	// JournalBatchCommits counts fsyncs. Their ratio is the group-commit
	// amortization factor (1.0 = no batching benefit).
	JournalAppends      int64 `json:"journal_appends"`
	JournalBatchCommits int64 `json:"journal_batch_commits"`
	JournalBatchRecords int64 `json:"journal_batch_records"`
	JournalDroppedBytes int   `json:"journal_dropped_bytes"`
	JournalDupTerminals int64 `json:"journal_dup_terminals"`

	// Simulation cache hit-through (from the "sim" backend's cache, when
	// that backend is installed): repeated identical sim jobs land as
	// SimCacheHits instead of recomputing.
	SimCacheHits     int64 `json:"sim_cache_hits"`
	SimCacheDiskHits int64 `json:"sim_cache_disk_hits"`
	SimCacheMisses   int64 `json:"sim_cache_misses"`
}

// ServiceMoments returns the empirical service-time moments over
// successful attempts: sample count, mean seconds, and the squared
// coefficient of variation (clamped at 0 against float cancellation).
// These parameterize twin.MGc for live capacity answers.
func (s *Scheduler) ServiceMoments() (count int64, mean, scv float64) {
	count = s.c.svcCount.Load()
	if count == 0 {
		return 0, 0, 0
	}
	mean = s.c.svcTotalSec.Load() / float64(count)
	ex2 := s.c.svcTotalSqSec.Load() / float64(count)
	if mean > 0 {
		scv = ex2/(mean*mean) - 1
		if scv < 0 {
			scv = 0
		}
	}
	return count, mean, scv
}

// Metrics snapshots the scheduler counters.
func (s *Scheduler) Metrics() Metrics {
	m := Metrics{
		Queued:              int(s.queued.Load()),
		Running:             int(s.c.running.Load()),
		WaitRetry:           int(s.c.waitRetry.Load()),
		Submitted:           s.c.submitted.Load(),
		Done:                s.c.done.Load(),
		Failed:              s.c.failed.Load(),
		Canceled:            s.c.canceled.Load(),
		Retried:             s.c.retried.Load(),
		Rejected:            s.c.rejected.Load(),
		Resumed:             s.c.resumed.Load(),
		BatchSubmits:        s.c.batchSubmits.Load(),
		BatchJobs:           s.c.batchJobs.Load(),
		SchedulerShards:     len(s.shards),
		ClaimScans:          s.c.claimScans.Load(),
		ClaimPairSkips:      s.c.claimPairSkips.Load(),
		JournalAppends:      s.c.journalAppends.Load(),
		JournalDroppedBytes: int(s.c.journalDroppedBytes.Load()),
		JournalDupTerminals: s.c.journalDupTerminals.Load(),
	}
	if n := s.c.latencyCount.Load(); n > 0 {
		m.QueueLatencyMean = time.Duration(s.c.latencyTotalNs.Load() / n)
	}
	m.ServiceTimeCount = s.c.svcCount.Load()
	if m.ServiceTimeCount > 0 {
		m.ServiceTimeMeanS = s.c.svcTotalSec.Load() / float64(m.ServiceTimeCount)
		m.ServiceTimeEx2S2 = s.c.svcTotalSqSec.Load() / float64(m.ServiceTimeCount)
	}
	if s.journal != nil {
		js := s.journal.Stats()
		m.JournalBatchCommits = js.Commits
		m.JournalBatchRecords = js.Records
	}
	if sb, ok := s.opts.Backends[BackendSim].(*SimBackend); ok {
		st := sb.CacheStats()
		m.SimCacheHits = st.Hits
		m.SimCacheDiskHits = st.DiskHits
		m.SimCacheMisses = st.Misses
	}
	return m
}
