package service

import "time"

// Metrics is the expvar-style counter snapshot served at /metrics. All
// counts are cumulative for the scheduler's lifetime except the gauges
// (Queued, Running, WaitRetry).
type Metrics struct {
	// Gauges: current queue/pool occupancy.
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	WaitRetry int `json:"wait_retry"`

	// Lifecycle counters.
	Submitted int64 `json:"submitted"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	Retried   int64 `json:"retried"`
	Rejected  int64 `json:"rejected"`
	Resumed   int64 `json:"resumed"`

	// QueueLatencyMean is the mean queued→running wait over every attempt
	// started so far (scheduler-clock time).
	QueueLatencyMean time.Duration `json:"queue_latency_mean_ns"`

	// Journal health.
	JournalAppends      int64 `json:"journal_appends"`
	JournalDroppedBytes int   `json:"journal_dropped_bytes"`
	JournalDupTerminals int64 `json:"journal_dup_terminals"`

	// Simulation cache hit-through (from the "sim" backend's cache, when
	// that backend is installed): repeated identical sim jobs land as
	// SimCacheHits instead of recomputing.
	SimCacheHits     int64 `json:"sim_cache_hits"`
	SimCacheDiskHits int64 `json:"sim_cache_disk_hits"`
	SimCacheMisses   int64 `json:"sim_cache_misses"`
}

// Metrics snapshots the scheduler counters.
func (s *Scheduler) Metrics() Metrics {
	s.mu.Lock()
	m := Metrics{
		Queued:              s.pending.Len(),
		Running:             s.c.running,
		WaitRetry:           s.c.waitRetry,
		Submitted:           s.c.submitted,
		Done:                s.c.done,
		Failed:              s.c.failed,
		Canceled:            s.c.canceled,
		Retried:             s.c.retried,
		Rejected:            s.c.rejected,
		Resumed:             s.c.resumed,
		JournalAppends:      s.c.journalAppends,
		JournalDroppedBytes: s.c.journalDroppedBytes,
		JournalDupTerminals: s.c.journalDupTerminals,
	}
	if s.c.latencyCount > 0 {
		m.QueueLatencyMean = s.c.latencyTotal / time.Duration(s.c.latencyCount)
	}
	sim := s.opts.Backends[BackendSim]
	s.mu.Unlock()

	if sb, ok := sim.(*SimBackend); ok {
		st := sb.CacheStats()
		m.SimCacheHits = st.Hits
		m.SimCacheDiskHits = st.DiskHits
		m.SimCacheMisses = st.Misses
	}
	return m
}
